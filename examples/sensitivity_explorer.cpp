/**
 * @file
 * Sensitivity explorer: run SNIP's statistics pipeline on a model and
 * inspect what it sees — per-layer norms, per-precision quantization
 * errors, probe amplifications, and the resulting loss/weight
 * divergence per layer. Useful for understanding why the ILP protects
 * the layers it protects.
 *
 *   ./sensitivity_explorer [--model=tinyllama_sim] [--warmup=100]
 */
#include <cstdio>

#include "core/controller.h"
#include "train/presets.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace snip;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const std::string name = args.get("model", "tinyllama_sim");
    const int64_t warmup = args.getInt("warmup", 100);

    TrainerConfig cfg = trainerPreset(modelPresetByName(name));
    Trainer trainer(cfg);
    std::printf("training %lld warmup steps on %s (%lld params)...\n",
                static_cast<long long>(warmup), name.c_str(),
                static_cast<long long>(cfg.model.parameterCount()));
    trainer.train(warmup);

    LlamaModel &model = trainer.model();
    FlopsModel flops(model.registry());
    Batch batch = trainer.nextBatch();

    TrainingStats stats =
        collectTrainingStats(model, &trainer.optimizer(), batch);
    ProbeResult bwd =
        runNoiseProbe(model, batch, stats, ProbeKind::Backward);
    ProbeResult fwd =
        runNoiseProbe(model, batch, stats, ProbeKind::Forward);
    std::printf("loss %.4f; injected noise: bwd %.3e (rel %.1e), "
                "fwd %.3e (rel %.1e)\n",
                stats.loss, bwd.noise_norm,
                bwd.noise_norm / bwd.inject_point_norm, fwd.noise_norm,
                fwd.noise_norm / fwd.inject_point_norm);

    DivergenceAnalyzer analyzer(stats, &bwd, &fwd, flops);
    const LayerScheme fp4 = LayerScheme::uniform(Precision::FP4);
    const int fp4c = candidateIndex(Precision::FP4);

    TablePrinter table({"layer", "|X|", "|W|", "|dY|", "qerrX(fp4)",
                        "qerrW(fp4)", "bwd_amp", "loss_div",
                        "weight_div"});
    const int n = model.registry().numLinear();
    auto bamp = bwd.relativeAmplification();
    for (int i = 0; i < n; ++i) {
        // Print one row per block boundary layer to keep output small.
        const LayerRole role = model.registry().roleOf(i);
        if (role != LayerRole::Down && role != LayerRole::V)
            continue;
        const LayerStats &s = stats.layers[static_cast<size_t>(i)];
        table.newRow();
        table.cell(s.name);
        table.cell(s.x_norm, 3);
        table.cell(s.w_norm, 3);
        table.cell(s.dy_norm, 5);
        table.cell(s.qerr[fp4c][0], 5);
        table.cell(s.qerr[fp4c][1], 5);
        table.cell(bamp[static_cast<size_t>(i)], 5);
        table.cell(analyzer.lossDivergence(i, fp4), 6);
        table.cell(analyzer.weightDivergence(i, fp4), 6);
    }
    table.print();
    return 0;
}
