/**
 * @file
 * Resume-pretraining scenario (the paper's evaluation methodology):
 * train a TinyLlama-class model to a checkpoint, save it to disk, then
 * resume from that checkpoint under three different precision policies
 * — BF16, SNIP at 75% FP4, and uniform FP4 — on identical data, and
 * compare losses and benchmark accuracy.
 *
 *   ./resume_pretraining [--warmup=300] [--steps=40]
 */
#include <cstdio>

#include "core/controller.h"
#include "eval/harness.h"
#include "train/checkpoint.h"
#include "train/presets.h"
#include "util/string_util.h"

using namespace snip;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const int64_t warmup = args.getInt("warmup", 300);
    const int64_t steps = args.getInt("steps", 40);

    TrainerConfig cfg = trainerPreset(tinyllamaSim());
    Trainer trainer(cfg);

    std::printf("pretraining %lld BF16 steps...\n",
                static_cast<long long>(warmup));
    trainer.train(warmup);
    if (saveCheckpoint(trainer, "resume_example.ckpt"))
        std::printf("checkpoint written to resume_example.ckpt\n");
    TrainerSnapshot ckpt = trainer.snapshot();
    auto suite = makeEvalSuite(trainer.corpus(), 15, 99);

    const size_t n_linear =
        static_cast<size_t>(trainer.model().registry().numLinear());

    struct Policy
    {
        const char *name;
        PrecisionScheme scheme;
    };
    std::vector<Policy> policies;
    policies.push_back(
        {"BF16", PrecisionScheme::uniform(n_linear, Precision::BF16)});

    // SNIP @ 75%: run the full stats->probe->ILP pipeline once.
    {
        SnipController::Config cc;
        cc.target_fp4_fraction = 0.75;
        SnipController controller(cc);
        Batch stats_batch = trainer.nextBatch();
        SchemeSelection sel = controller.updateScheme(
            trainer.model(), &trainer.optimizer(), stats_batch);
        policies.push_back({"SNIP@75%", sel.scheme});
        std::printf("\nSNIP scheme (%.1f%% FP4):\n%s\n",
                    sel.fp4_fraction * 100.0,
                    sel.scheme.renderHeatmap().c_str());
    }
    policies.push_back(
        {"FP4", PrecisionScheme::uniform(n_linear, Precision::FP4)});

    for (auto &policy : policies) {
        trainer.restore(ckpt);
        trainer.applyScheme(policy.scheme);
        auto losses = trainer.train(steps);
        EvalResult eval = evaluate(trainer.model(), suite);
        std::printf("%-9s resumed %lld steps: final loss %.4f, "
                    "avg accuracy %.1f%%\n",
                    policy.name, static_cast<long long>(steps),
                    losses.back(), eval.average);
    }
    return 0;
}
