/**
 * @file
 * Resume-pretraining scenario (the paper's evaluation methodology):
 * train a TinyLlama-class model to a checkpoint, save it to disk, then
 * resume from that checkpoint under three different precision policies
 * — BF16, SNIP at 75% FP4, and uniform FP4 — on identical data, and
 * compare losses and benchmark accuracy.
 *
 * The SNIP resume runs with the *async* controller: scheme updates are
 * solved on the background worker (through the persistent solve
 * cache), training is checkpointed mid-interval with the update still
 * in flight, and a fresh trainer+controller resume from that file and
 * walk the identical loss trajectory.
 *
 *   ./resume_pretraining [--warmup=300] [--steps=40]
 */
#include <cmath>
#include <cstdio>

#include "core/controller.h"
#include "eval/harness.h"
#include "ilp/solve_cache.h"
#include "train/checkpoint.h"
#include "train/presets.h"
#include "util/string_util.h"

using namespace snip;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const int64_t warmup = args.getInt("warmup", 300);
    const int64_t steps = args.getInt("steps", 40);

    TrainerConfig cfg = trainerPreset(tinyllamaSim());
    Trainer trainer(cfg);

    std::printf("pretraining %lld BF16 steps...\n",
                static_cast<long long>(warmup));
    trainer.train(warmup);
    if (saveCheckpoint(trainer, "resume_example.ckpt"))
        std::printf("checkpoint written to resume_example.ckpt\n");
    TrainerSnapshot ckpt = trainer.snapshot();
    auto suite = makeEvalSuite(trainer.corpus(), 15, 99);

    const size_t n_linear =
        static_cast<size_t>(trainer.model().registry().numLinear());

    struct Policy
    {
        const char *name;
        PrecisionScheme scheme;
    };
    std::vector<Policy> policies;
    policies.push_back(
        {"BF16", PrecisionScheme::uniform(n_linear, Precision::BF16)});

    // SNIP @ 75%: run the full stats->probe->ILP pipeline once.
    {
        SnipController::Config cc;
        cc.target_fp4_fraction = 0.75;
        SnipController controller(cc);
        Batch stats_batch = trainer.nextBatch();
        SchemeSelection sel = controller.updateScheme(
            trainer.model(), &trainer.optimizer(), stats_batch);
        policies.push_back({"SNIP@75%", sel.scheme});
        std::printf("\nSNIP scheme (%.1f%% FP4):\n%s\n",
                    sel.fp4_fraction * 100.0,
                    sel.scheme.renderHeatmap().c_str());
    }
    policies.push_back(
        {"FP4", PrecisionScheme::uniform(n_linear, Precision::FP4)});

    for (auto &policy : policies) {
        trainer.restore(ckpt);
        trainer.applyScheme(policy.scheme);
        auto losses = trainer.train(steps);
        EvalResult eval = evaluate(trainer.model(), suite);
        std::printf("%-9s resumed %lld steps: final loss %.4f, "
                    "avg accuracy %.1f%%\n",
                    policy.name, static_cast<long long>(steps),
                    losses.back(), eval.average);
    }

    // --- Async controller + solve cache + mid-interval resume -------
    std::printf("\nasync scheme updates with periodic re-search:\n");
    // LRU-bounded: long-running jobs re-pose many intervals, so cap
    // the persistent cache at 512 solves / 4 MiB (coldest evicted).
    SolveCache cache("resume_solve_cache.bin", /*max_entries=*/512,
                     /*max_bytes=*/size_t{4} << 20);
    SnipController::Config cc;
    cc.target_fp4_fraction = 0.75;
    cc.update_interval = steps > 4 ? steps / 2 : 2;
    cc.apply_delay = cc.update_interval / 2;
    cc.async = true;
    cc.solve.cache = &cache;

    trainer.restore(ckpt);
    SnipController controller(cc);
    std::vector<double> first_half;
    for (int64_t i = 0; i < steps / 2 + 1; ++i)
        first_half.push_back(trainer.trainStep(&controller));
    // Checkpoint while the second update may still be in flight; the
    // pending scheme and its apply boundary land in the file. keep=1
    // rotates the previous file to resume_async.ckpt.1 — the fallback
    // loadCheckpointWithFallback() walks if this one is ever torn.
    CheckpointWriteOptions copts;
    copts.keep = 1;
    CheckpointStatus save_status = CheckpointStatus::Ok;
    if (saveCheckpoint(trainer, "resume_async.ckpt", &controller,
                       &save_status, copts))
        std::printf("  checkpointed mid-interval at step %lld "
                    "(pending update: %s)\n",
                    static_cast<long long>(trainer.step()),
                    controller.hasPendingUpdate() ? "yes" : "no");
    else
        std::printf("  checkpoint write failed: %s\n",
                    checkpointStatusName(save_status));
    auto tail = trainer.train(steps - steps / 2 - 1, &controller);
    const double direct_final = tail.empty()
                                    ? first_half.back()
                                    : tail.back();

    Trainer resumed(cfg);
    SnipController resumed_controller(cc);
    CheckpointStatus load_status = CheckpointStatus::Ok;
    if (!loadCheckpoint(resumed, "resume_async.ckpt",
                        &resumed_controller, &load_status)) {
        std::printf("  could not reload resume_async.ckpt: %s\n",
                    checkpointStatusName(load_status));
        return 1;
    }
    auto resumed_tail =
        resumed.train(steps - steps / 2 - 1, &resumed_controller);
    const double resumed_final = resumed_tail.empty()
                                     ? first_half.back()
                                     : resumed_tail.back();
    const OverheadTotals &t = resumed_controller.totals();
    std::printf("  direct final loss %.6f vs resumed %.6f (%s)\n",
                direct_final, resumed_final,
                std::fabs(direct_final - resumed_final) < 1e-12
                    ? "bit-identical"
                    : "MISMATCH");
    std::printf("  resumed run: %d updates, %d solved from cache, "
                "solve time hidden %.1f ms / exposed %.1f ms\n",
                t.updates, t.cache_hits, 1e3 * t.hidden_seconds,
                1e3 * t.exposed_seconds);
    return 0;
}
