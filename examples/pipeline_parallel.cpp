/**
 * @file
 * Pipeline-parallelism scenario (Sec. 5.3): pick schemes with and
 * without the grouped per-stage constraint and compare the simulated
 * 1F1B timelines — showing why balanced per-stage FP4 fractions matter
 * for pipeline throughput.
 *
 *   ./pipeline_parallel [--stages=4] [--mb=8] [--target=0.5]
 */
#include <cstdio>

#include "core/controller.h"
#include "parallel/pipeline.h"
#include "train/presets.h"
#include "util/string_util.h"

using namespace snip;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const int n_stages = static_cast<int>(args.getInt("stages", 4));
    const int mb = static_cast<int>(args.getInt("mb", 8));
    const double target = args.getDouble("target", 0.5);

    TrainerConfig cfg = trainerPreset(tinyllamaSim());
    Trainer trainer(cfg);
    trainer.train(30); // populate optimizer moments

    LlamaModel &model = trainer.model();
    FlopsModel flops(model.registry());
    const auto split = evenStageSplit(
        static_cast<int>(model.config().n_blocks), n_stages);

    // Shared stats/analysis.
    Batch batch = trainer.nextBatch();
    TrainingStats stats =
        collectTrainingStats(model, &trainer.optimizer(), batch);
    ProbeResult bwd =
        runNoiseProbe(model, batch, stats, ProbeKind::Backward);
    ProbeResult fwd =
        runNoiseProbe(model, batch, stats, ProbeKind::Forward);
    DivergenceAnalyzer analyzer(stats, &bwd, &fwd, flops);
    DivergenceTable table =
        analyzer.analyze(makeOptionSet(OptionSetKind::Standard));

    PipelineConstraint pc;
    pc.n_stages = n_stages;
    pc.blocks_per_stage = split;

    SchemeSelection grouped = selectScheme(table, target, flops, {}, pc);
    SchemeSelection global = selectScheme(table, target, flops, {});

    for (auto &[name, sel] :
         {std::pair<const char *, SchemeSelection &>{"pipeline-aware",
                                                     grouped},
          std::pair<const char *, SchemeSelection &>{"global-only",
                                                     global}}) {
        auto stages = buildStages(flops, sel.scheme, split);
        PipelineTimeline tl = simulatePipeline(stages, mb);
        std::printf("=== %s (fp4 %.1f%%) ===\n", name,
                    sel.fp4_fraction * 100.0);
        std::printf("per-stage fp4 fractions:");
        for (const auto &st : stages)
            std::printf(" %.0f%%", st.fp4_fraction * 100.0);
        std::printf("\nmakespan %.4g, bubble %.1f%%\n%s\n", tl.makespan,
                    tl.bubble_fraction * 100.0, tl.render().c_str());
    }
    return 0;
}
