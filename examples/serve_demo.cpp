/**
 * @file
 * Serving demo: the quantized inference runtime end to end.
 *
 * Streams N synthetic requests through the continuous-batching engine
 * (prefill/decode split over the paged FP8 KV cache), then verifies
 * the decode path against the full-sequence forward:
 *
 *   - FP32-cache mode: decode logits are BIT-IDENTICAL to the last row
 *     of a full-sequence forward, at 1, 2 and 8 threads (packed GEMM
 *     pinned off — packing permutes accumulation order by contract).
 *   - FP8-cache mode: logits track the FP32 trajectory within the
 *     documented tolerance (|err| <= 8% of the row max + 0.02).
 *
 * Exits 0 only if every check passes.
 *
 * With --overload the demo instead runs the robustness smoke: a KV
 * page pool sized far below the offered load plus a stream containing
 * structurally impossible requests and tight deadlines. Passing means
 * every request still got a result (rejections and expiries carry
 * their status, nothing hangs), the engine drained, and the page
 * accounting returned to exactly zero.
 *
 *   ./serve_demo [--requests=12] [--concurrency=4] [--seed=7]
 *                [--overload]
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "nn/model.h"
#include "runtime/env_config.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"
#include "tensor/gemm.h"
#include "train/presets.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace snip;

namespace {

std::vector<int32_t>
somePrompt(int64_t n, int64_t vocab, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int32_t> t;
    for (int64_t i = 0; i < n; ++i)
        t.push_back(static_cast<int32_t>(
            rng.nextBelow(static_cast<uint64_t>(vocab))));
    return t;
}

serve::KvCacheConfig
cacheConfigFor(const ModelConfig &m, serve::KvCacheMode mode)
{
    serve::KvCacheConfig kc;
    kc.n_layers = m.n_blocks;
    kc.n_kv_heads = m.n_kv_heads;
    kc.head_dim = m.headDim();
    kc.page_tokens = 4;
    kc.max_seqs = 1;
    kc.max_seq_tokens = m.max_seq;
    kc.max_pages =
        m.n_blocks * ((m.max_seq + kc.page_tokens - 1) / kc.page_tokens);
    kc.mode = mode;
    return kc;
}

/** Prefill @p prompt then greedy-decode @p steps tokens, returning each
 *  decode-step logits row. Teacher-forced when @p forced is given. */
std::vector<std::vector<float>>
decodeTrajectory(LlamaModel &model, const std::vector<int32_t> &prompt,
                 int64_t steps, serve::KvCacheMode mode,
                 std::vector<int32_t> *generated,
                 const std::vector<int32_t> *forced = nullptr)
{
    const int64_t vocab = model.config().vocab_size;
    serve::KvCache cache(cacheConfigFor(model.config(), mode));
    const int64_t sid = 0;
    cache.beginSequence(sid);
    KvCacheHandle h;
    h.cache = &cache;
    h.seq_ids = &sid;
    h.count = 1;

    Tensor plog =
        model.forward(prompt, 1, static_cast<int64_t>(prompt.size()),
                      ForwardMode::Prefill, h);
    const float *last =
        plog.data() + (static_cast<int64_t>(prompt.size()) - 1) * vocab;
    int32_t tok = 0;
    for (int64_t v = 1; v < vocab; ++v)
        if (last[v] > last[tok])
            tok = static_cast<int32_t>(v);
    if (forced)
        tok = (*forced)[0];
    if (generated)
        generated->push_back(tok);

    std::vector<std::vector<float>> rows;
    std::vector<float> logits(static_cast<size_t>(vocab));
    for (int64_t s = 0; s < steps; ++s) {
        model.decodeStep(&tok, 1, h, logits.data());
        rows.push_back(logits);
        tok = 0;
        for (int64_t v = 1; v < vocab; ++v)
            if (logits[static_cast<size_t>(v)] >
                logits[static_cast<size_t>(tok)])
                tok = static_cast<int32_t>(v);
        if (forced)
            tok = (*forced)[static_cast<size_t>(s + 1)];
        if (generated)
            generated->push_back(tok);
    }
    cache.endSequence(sid);
    return rows;
}

/** Per-request latency table: the engine-reported numbers a span
 *  trace (SNIP_TRACE=json:...) should be eyeballed against. */
void
printRequestTable(const std::vector<serve::RequestResult> &results)
{
    TablePrinter table(
        {"request", "tokens", "ttft_ms", "itl_mean_ms", "itl_max_ms"});
    for (const serve::RequestResult &r : results) {
        double itl_sum = 0.0, itl_max = 0.0;
        for (double itl : r.itl_s) {
            itl_sum += itl;
            itl_max = std::max(itl_max, itl);
        }
        const double itl_mean =
            r.itl_s.empty()
                ? 0.0
                : itl_sum / static_cast<double>(r.itl_s.size());
        table.newRow();
        table.cell(r.id);
        table.cell(static_cast<int64_t>(r.tokens.size()));
        table.cell(r.ttft_s * 1e3, 3);
        table.cell(itl_mean * 1e3, 3);
        table.cell(itl_max * 1e3, 3);
    }
    table.print();
}

std::vector<float>
fullSeqLastRow(LlamaModel &model, const std::vector<int32_t> &tokens)
{
    const int64_t len = static_cast<int64_t>(tokens.size());
    const int64_t vocab = model.config().vocab_size;
    Tensor logits = model.forward(tokens, 1, len, ForwardMode::Train);
    const float *row = logits.data() + (len - 1) * vocab;
    return std::vector<float>(row, row + vocab);
}

bool
checkBitIdentity(LlamaModel &model, uint64_t seed)
{
    // Bitwise claims require the legacy unpacked GEMM: packed kernels
    // reorder the accumulation by contract.
    if (!setGemmPackModeByName("off")) {
        std::printf("FAIL: cannot pin SNIP_GEMM_PACK=off\n");
        return false;
    }
    const ModelConfig &cfg = model.config();
    const auto prompt = somePrompt(7, cfg.vocab_size, seed);
    const int64_t steps = 8;
    bool ok = true;
    for (int threads : {1, 2, 8}) {
        runtime::setGlobalThreadCount(threads);
        std::vector<int32_t> generated;
        const auto rows = decodeTrajectory(
            model, prompt, steps, serve::KvCacheMode::Fp32, &generated);
        std::vector<int32_t> ctx = prompt;
        int64_t mismatches = 0;
        for (int64_t s = 0; s < steps; ++s) {
            ctx.push_back(generated[static_cast<size_t>(s)]);
            const auto ref = fullSeqLastRow(model, ctx);
            const auto &got = rows[static_cast<size_t>(s)];
            for (size_t v = 0; v < ref.size(); ++v)
                if (got[v] != ref[v])
                    ++mismatches;
        }
        std::printf("  fp32 cache, %d thread(s): %s\n", threads,
                    mismatches == 0 ? "bit-identical"
                                    : "MISMATCH vs full sequence");
        ok = ok && mismatches == 0;
    }
    setGemmPackModeByName("auto");
    return ok;
}

bool
checkFp8Tolerance(LlamaModel &model, uint64_t seed)
{
    runtime::setGlobalThreadCount(1);
    const ModelConfig &cfg = model.config();
    const auto prompt = somePrompt(8, cfg.vocab_size, seed);
    const int64_t steps = 8;

    std::vector<int32_t> fp32_tokens;
    const auto ref = decodeTrajectory(
        model, prompt, steps, serve::KvCacheMode::Fp32, &fp32_tokens);
    const auto got =
        decodeTrajectory(model, prompt, steps, serve::KvCacheMode::Fp8,
                         nullptr, &fp32_tokens);

    float worst_rel = 0.0f;
    bool ok = true;
    for (size_t s = 0; s < ref.size(); ++s) {
        float max_abs = 0.0f;
        for (float r : ref[s])
            max_abs = std::max(max_abs, std::fabs(r));
        const float tol = 0.08f * max_abs + 0.02f;
        for (size_t v = 0; v < ref[s].size(); ++v) {
            const float err = std::fabs(got[s][v] - ref[s][v]);
            worst_rel = std::max(worst_rel, err / tol);
            ok = ok && err <= tol;
        }
    }
    std::printf("  fp8 cache vs fp32: worst error %.0f%% of tolerance "
                "(8%% of row max + 0.02) — %s\n",
                worst_rel * 100.0f, ok ? "within" : "EXCEEDED");
    return ok;
}

/**
 * Overload smoke: a pool far too small for the offered stream, spiked
 * with never-fit requests and tight deadlines. The engine must give
 * every request a result, never deadlock, and account every KV page
 * back to the pool.
 */
int
runOverloadSmoke(LlamaModel &model, int64_t requests, uint64_t seed)
{
    const ModelConfig &cfg = model.config();

    serve::SyntheticStreamConfig sc;
    sc.n_requests = requests;
    sc.seed = seed;
    sc.vocab = cfg.vocab_size;
    sc.min_prompt = 4;
    sc.max_prompt = 16;
    sc.min_new = 4;
    sc.max_new = 12;
    sc.arrival_rate = 500.0; // slam the queue
    sc.deadline_s = 0.05;    // tight per-request deadline
    auto queue = serve::RequestQueue::synthetic(sc);

    // Spike in structurally impossible traffic: an empty prompt and a
    // request whose worst case exceeds max_seq.
    serve::ServeRequest empty;
    empty.id = requests;
    empty.arrival_s = 0.0;
    queue.push(empty);
    serve::ServeRequest huge;
    huge.id = requests + 1;
    huge.arrival_s = 0.0;
    huge.prompt = somePrompt(4, cfg.vocab_size, seed + 3);
    huge.max_new_tokens = cfg.max_seq; // 4 + max_seq > max_seq
    queue.push(huge);
    const int64_t total = requests + 2;

    serve::EngineConfig ec;
    ec.max_concurrency = 4;
    // A pool that covers barely one worst-case sequence: admission
    // overcommit is guaranteed, so preemption must kick in.
    ec.kv_page_tokens = 4;
    ec.max_pages =
        cfg.n_blocks * ((cfg.max_seq + 3) / 4) + cfg.n_blocks;
    serve::Engine engine(model, ec);
    auto results = engine.run(queue);

    const serve::ServeStats &s = engine.stats();
    std::printf("overload smoke: %zu results for %lld requests — "
                "%lld ok, %lld rejected, %lld preempted, "
                "%lld expired (%lld admission retries)\n",
                results.size(), static_cast<long long>(total),
                static_cast<long long>(s.requests - s.rejected -
                                       s.preempted - s.expired),
                static_cast<long long>(s.rejected),
                static_cast<long long>(s.preempted),
                static_cast<long long>(s.expired),
                static_cast<long long>(s.admission_retries));
    for (const serve::RequestResult &r : results)
        if (r.status != serve::RequestStatus::Ok)
            std::printf("  request %lld: %s\n",
                        static_cast<long long>(r.id),
                        serve::requestStatusName(r.status));

    bool ok = true;
    if (results.size() != static_cast<size_t>(total)) {
        std::printf("FAIL: %zu results, expected %lld\n",
                    results.size(), static_cast<long long>(total));
        ok = false;
    }
    if (engine.kvCache().pagesInUse() != 0) {
        std::printf("FAIL: %lld KV pages leaked\n",
                    static_cast<long long>(
                        engine.kvCache().pagesInUse()));
        ok = false;
    }
    if (s.rejected == 0) {
        std::printf("FAIL: the never-fit spikes were not rejected\n");
        ok = false;
    }
    std::printf("%s\n", ok ? "OK" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const int64_t requests = args.getInt("requests", 12);
    const int64_t concurrency = args.getInt("concurrency", 4);
    const uint64_t seed =
        static_cast<uint64_t>(args.getInt("seed", 7));

    std::printf("%s", runtime::envConfig().dump().c_str());

    ModelConfig cfg = tinyTestModel();
    LlamaModel model(cfg, seed);
    model.setScheme(PrecisionScheme::uniform(
        model.registry().numLinear(), Precision::FP8));

    if (args.has("overload"))
        return runOverloadSmoke(model, requests, seed);

    // 1. Stream synthetic requests through the continuous batcher.
    serve::SyntheticStreamConfig sc;
    sc.n_requests = requests;
    sc.seed = seed;
    sc.vocab = cfg.vocab_size;
    sc.min_prompt = 4;
    sc.max_prompt = 16;
    sc.min_new = 4;
    sc.max_new = 12;
    sc.arrival_rate = 200.0; // open loop: ~200 req/s

    serve::EngineConfig ec;
    ec.max_concurrency = concurrency;
    serve::Engine engine(model, ec);
    auto queue = serve::RequestQueue::synthetic(sc);
    auto results = engine.run(queue);

    const serve::ServeStats &s = engine.stats();
    const serve::KvCacheConfig &kc = engine.kvCache().config();
    std::printf("served %lld requests (%s KV cache, %lld-token pages): "
                "%.0f tok/s, %lld coalesced decode steps, "
                "peak %lld KV pages\n",
                static_cast<long long>(s.requests),
                serve::kvCacheModeName(kc.mode),
                static_cast<long long>(kc.page_tokens),
                s.tokensPerSecond(),
                static_cast<long long>(s.decode_steps),
                static_cast<long long>(s.peak_kv_pages));
    std::printf("  ttft p50 %.3f ms  p99 %.3f ms   itl p50 %.3f ms  "
                "p99 %.3f ms\n",
                s.p50_ttft_s * 1e3, s.p99_ttft_s * 1e3,
                s.p50_itl_s * 1e3, s.p99_itl_s * 1e3);
    printRequestTable(results);
    if (results.size() != static_cast<size_t>(requests)) {
        std::printf("FAIL: expected %lld results, got %zu\n",
                    static_cast<long long>(requests), results.size());
        return 1;
    }
    const int64_t leaked = engine.kvCache().pagesInUse();
    if (leaked != 0) {
        std::printf("FAIL: %lld KV pages leaked after drain\n",
                    static_cast<long long>(leaked));
        return 1;
    }

    // 2. Decode-vs-full-sequence verification.
    std::printf("verifying decode against full-sequence forward:\n");
    const bool bit_ok = checkBitIdentity(model, seed + 1);
    const bool fp8_ok = checkFp8Tolerance(model, seed + 2);
    runtime::setGlobalThreadCount(0); // back to default sizing

    if (!bit_ok || !fp8_ok) {
        std::printf("FAIL\n");
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
