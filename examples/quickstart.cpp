/**
 * @file
 * Quickstart: the smallest complete SNIP workflow.
 *
 * Builds a tiny Llama-like model, trains briefly in BF16, lets SNIP
 * pick a mixed FP8/FP4 scheme for a 50% FP4-FLOP target, and continues
 * training under that scheme — printing the chosen per-layer precision
 * heatmap and the loss along the way.
 *
 *   ./quickstart [--steps=N] [--target=0.5]
 */
#include <cstdio>

#include "core/controller.h"
#include "train/presets.h"
#include "util/string_util.h"

using namespace snip;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const int64_t steps = args.getInt("steps", 60);
    const double target = args.getDouble("target", 0.5);

    // 1. A small Llama-architecture model + synthetic data + AdamW.
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);

    // 2. Warm up in BF16 so optimizer moments exist.
    std::printf("warmup (BF16):\n");
    trainer.train(20, nullptr, [](int64_t step, double loss) {
        if (step % 5 == 0)
            std::printf("  step %3lld  loss %.4f\n",
                        static_cast<long long>(step), loss);
    });

    // 3. Let SNIP choose a per-layer scheme for the FP4 target.
    SnipController::Config cc;
    cc.target_fp4_fraction = target;
    cc.update_interval = 50; // re-run the Fig. 6 pipeline every 50 steps
    SnipController controller(cc);

    // 4. Train with the controller managing precision.
    std::printf("mixed-precision training (SNIP, target %.0f%% FP4):\n",
                target * 100);
    trainer.train(steps, &controller, [](int64_t step, double loss) {
        if (step % 10 == 0)
            std::printf("  step %3lld  loss %.4f\n",
                        static_cast<long long>(step), loss);
    });

    const SchemeSelection &sel = controller.lastSelection();
    std::printf("\nSNIP selected (achieved %.1f%% FP4 FLOPs, ILP "
                "objective %.3e):\n%s",
                sel.fp4_fraction * 100.0, sel.ilp.objective,
                sel.scheme.renderHeatmap().c_str());
    std::printf("final loss: %.4f\n", trainer.lossHistory().back());
    return 0;
}
