#include "optim/adamw.h"

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace snip {

AdamW::AdamW(ParamList params, AdamWConfig config)
    : params_(std::move(params)), config_(config)
{
    states_.reserve(params_.size());
    for (auto &p : params_) {
        SNIP_ASSERT(p.value && p.grad && p.value->sameShape(*p.grad),
                    "bad param ref: ", p.name);
        states_.push_back(
            {Tensor::zeros(p.value->shape()),
             Tensor::zeros(p.value->shape())});
    }
}

int
AdamW::paramIndexOf(const Tensor *w) const
{
    for (size_t i = 0; i < params_.size(); ++i) {
        if (params_[i].value == w)
            return static_cast<int>(i);
    }
    return -1;
}

void
AdamW::step()
{
    ++step_count_;
    // Every parameter is about to change: packed+quantized weight
    // panels cached from this step are stale.
    invalidateWeightPacks();
    const double b1 = config_.beta1;
    const double b2 = config_.beta2;
    const double bias1 =
        1.0 - std::pow(b1, static_cast<double>(step_count_));
    const double bias2 =
        1.0 - std::pow(b2, static_cast<double>(step_count_));
    const double lr = config_.lr;

    // Global gradient-norm clipping.
    double clip_scale = 1.0;
    if (config_.grad_clip > 0.0) {
        double total_sq = 0.0;
        for (auto &p : params_)
            total_sq += sumSquares(*p.grad);
        const double norm = std::sqrt(total_sq);
        if (norm > config_.grad_clip)
            clip_scale = config_.grad_clip / norm;
    }

    for (size_t i = 0; i < params_.size(); ++i) {
        float *w = params_[i].value->data();
        const float *g = params_[i].grad->data();
        float *m = states_[i].m.data();
        float *v = states_[i].v.data();
        const int64_t n = params_[i].value->numel();
        for (int64_t j = 0; j < n; ++j) {
            const double gj = static_cast<double>(g[j]) * clip_scale;
            // Decoupled weight decay.
            double wj = static_cast<double>(w[j]) *
                        (1.0 - lr * config_.weight_decay);
            const double mj = b1 * m[j] + (1.0 - b1) * gj;
            const double vj = b2 * v[j] + (1.0 - b2) * gj * gj;
            m[j] = static_cast<float>(mj);
            v[j] = static_cast<float>(vj);
            const double mhat = mj / bias1;
            const double vhat = vj / bias2;
            wj -= lr * mhat / (std::sqrt(vhat) + config_.eps);
            w[j] = static_cast<float>(wj);
        }
    }
}

double
AdamW::updateSensitivityNorm(size_t idx) const
{
    SNIP_ASSERT(idx < params_.size());
    const float *g = params_[idx].grad->data();
    const float *m = states_[idx].m.data();
    const float *v = states_[idx].v.data();
    const int64_t n = params_[idx].value->numel();
    const double b1 = config_.beta1;
    const double b2 = config_.beta2;
    const double eps = config_.eps;

    double acc = 0.0;
    for (int64_t j = 0; j < n; ++j) {
        const double sv = std::sqrt(static_cast<double>(v[j]));
        const double denom = sv + eps;
        const double t1 = (1.0 - b1) / denom;
        const double t2 =
            sv > 0.0 ? (1.0 - b2) * static_cast<double>(m[j]) * g[j] /
                           (sv * denom * denom)
                     : 0.0;
        const double d = t1 - t2;
        acc += d * d;
    }
    // Theorem 4.1: ||h(g+dg)-h(g)|| ~ ||dh/dg||_F ||dg|| / sqrt(NK);
    // we return the norm already divided by sqrt(numel).
    return std::sqrt(acc) /
           std::sqrt(static_cast<double>(std::max<int64_t>(1, n)));
}

double
AdamW::updateScaleFactor() const
{
    const double t = static_cast<double>(step_count_ + 1);
    const double bias1 = 1.0 - std::pow(config_.beta1, t);
    const double bias2 = 1.0 - std::pow(config_.beta2, t);
    return config_.lr * std::sqrt(bias2) / bias1;
}

void
AdamW::restore(const std::vector<State> &states, int64_t step_count)
{
    SNIP_ASSERT(states.size() == states_.size());
    for (size_t i = 0; i < states.size(); ++i) {
        SNIP_ASSERT(states[i].m.sameShape(states_[i].m));
        states_[i] = states[i];
    }
    step_count_ = step_count;
}

} // namespace snip
