/**
 * @file
 * Learning-rate schedules (constant, cosine decay, linear warmup).
 */
#ifndef SNIP_OPTIM_LR_SCHEDULE_H
#define SNIP_OPTIM_LR_SCHEDULE_H

#include <cstdint>
#include <string>

namespace snip {

/** Shape of the learning-rate curve. */
enum class LrScheduleKind
{
    Constant,
    Cosine,       ///< cosine decay from base to min over total steps
    WarmupCosine, ///< linear warmup then cosine decay
};

/** Stateless LR schedule evaluated per step. */
class LrSchedule
{
  public:
    LrSchedule(LrScheduleKind kind, double base_lr, int64_t total_steps,
               int64_t warmup_steps = 0, double min_lr = 0.0);

    /** Learning rate at 0-based step @p step. */
    double at(int64_t step) const;

    LrScheduleKind kind() const { return kind_; }
    double baseLr() const { return base_lr_; }

    /** Parse "constant"/"cosine"/"warmup_cosine". */
    static LrScheduleKind kindByName(const std::string &name);

  private:
    LrScheduleKind kind_;
    double base_lr_;
    int64_t total_steps_;
    int64_t warmup_steps_;
    double min_lr_;
};

} // namespace snip

#endif // SNIP_OPTIM_LR_SCHEDULE_H
