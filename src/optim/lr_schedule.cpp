#include "optim/lr_schedule.h"

#include <cmath>

#include "util/logging.h"

namespace snip {

LrSchedule::LrSchedule(LrScheduleKind kind, double base_lr,
                       int64_t total_steps, int64_t warmup_steps,
                       double min_lr)
    : kind_(kind),
      base_lr_(base_lr),
      total_steps_(total_steps),
      warmup_steps_(warmup_steps),
      min_lr_(min_lr)
{
    SNIP_ASSERT(total_steps >= 0 && warmup_steps >= 0);
}

double
LrSchedule::at(int64_t step) const
{
    switch (kind_) {
        case LrScheduleKind::Constant:
            return base_lr_;
        case LrScheduleKind::Cosine:
        case LrScheduleKind::WarmupCosine:
            break;
    }
    if (kind_ == LrScheduleKind::WarmupCosine && step < warmup_steps_ &&
        warmup_steps_ > 0) {
        return base_lr_ * static_cast<double>(step + 1) /
               static_cast<double>(warmup_steps_);
    }
    const int64_t decay_start =
        kind_ == LrScheduleKind::WarmupCosine ? warmup_steps_ : 0;
    const int64_t decay_total = std::max<int64_t>(
        1, total_steps_ - decay_start);
    const double progress =
        std::min(1.0, static_cast<double>(step - decay_start) /
                          static_cast<double>(decay_total));
    const double cosine = 0.5 * (1.0 + std::cos(M_PI * progress));
    return min_lr_ + (base_lr_ - min_lr_) * cosine;
}

LrScheduleKind
LrSchedule::kindByName(const std::string &name)
{
    if (name == "constant")
        return LrScheduleKind::Constant;
    if (name == "cosine")
        return LrScheduleKind::Cosine;
    if (name == "warmup_cosine")
        return LrScheduleKind::WarmupCosine;
    fatal("unknown LR schedule: ", name);
}

} // namespace snip
