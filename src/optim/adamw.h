/**
 * @file
 * AdamW optimizer (Loshchilov & Hutter) with FP32 master state.
 *
 * Beyond the standard update, the optimizer exposes the quantities
 * SNIP's weight-divergence analysis needs (Sec. 4.3.2): the per-layer
 * Frobenius norm of
 *
 *     (1-b1)/(sqrt(v)+eps) - (1-b2) * m * g / (sqrt(v) (sqrt(v)+eps)^2)
 *
 * (the derivative of the Adam update direction h(g) with respect to the
 * gradient) and the shared scale alpha*sqrt(1-b2^t)/(1-b1^t).
 */
#ifndef SNIP_OPTIM_ADAMW_H
#define SNIP_OPTIM_ADAMW_H

#include <vector>

#include "nn/param.h"
#include "tensor/tensor.h"

namespace snip {

/** Hyperparameters of AdamW. */
struct AdamWConfig
{
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.95;
    double eps = 1e-8;
    double weight_decay = 0.01;
    /** Global grad-norm clip; <= 0 disables clipping. */
    double grad_clip = 1.0;
};

/** Decoupled-weight-decay Adam over a fixed parameter list. */
class AdamW
{
  public:
    /** Moment state of one parameter tensor. */
    struct State
    {
        Tensor m;
        Tensor v;
    };

    AdamW(ParamList params, AdamWConfig config);

    /** Apply one update from the gradients currently in the params. */
    void step();

    /** Override the learning rate (schedules call this per step). */
    void setLr(double lr) { config_.lr = lr; }

    /** Number of step() calls so far (the Adam t counter). */
    int64_t stepCount() const { return step_count_; }

    const AdamWConfig &config() const { return config_; }

    size_t numParams() const { return params_.size(); }

    const ParamRef &param(size_t idx) const { return params_[idx]; }

    const State &state(size_t idx) const { return states_[idx]; }

    /** Index of the parameter whose value tensor is @p w, or -1. */
    int paramIndexOf(const Tensor *w) const;

    /**
     * ||dh/dg||_F for parameter @p idx using its current gradient and
     * moments, divided by sqrt(numel) per the Theorem 4.1 estimate.
     * Returns the sensitivity of the Adam update to gradient error.
     */
    double updateSensitivityNorm(size_t idx) const;

    /** alpha * sqrt(1-b2^t) / (1-b1^t) at the *next* step. */
    double updateScaleFactor() const;

    /** Deep-copy optimizer state (checkpointing). */
    std::vector<State> snapshot() const { return states_; }

    /** Restore a snapshot taken on an identical parameter list. */
    void restore(const std::vector<State> &states, int64_t step_count);

  private:
    ParamList params_;
    AdamWConfig config_;
    std::vector<State> states_;
    int64_t step_count_ = 0;
};

} // namespace snip

#endif // SNIP_OPTIM_ADAMW_H
