/**
 * @file
 * Binary checkpoint serialization for Trainer state.
 *
 * Simple self-describing format (v2, magic "SNIPCKP2"): parameter
 * count and clocks, the optimizer lr, the model's active precision
 * scheme, the quantizer/noise RNG stream states, then the FP32
 * parameter tensors and optimizer moments. The scheme + RNG states
 * make resumes bit-exact even under stochastic-rounding schemes.
 * Checkpoints let the examples/benches reproduce the paper's "resume
 * pretraining from a released checkpoint" workflow (Sec. 6.1) across
 * process runs; outdated v1 files are reported as unreadable (callers
 * regenerate them).
 *
 * When a SnipController is passed, an optional trailing section also
 * persists the controller's update state — its epoch counter, last
 * applied scheme, and any in-flight async update (saving waits for the
 * background solve and records its outcome plus its apply boundary).
 * Loading such a checkpoint re-arms the pending update, so a run
 * checkpointed mid-interval resumes with the identical scheme
 * sequence. Files written without a controller load with or without
 * one, and controller-bearing files load fine when no controller is
 * supplied (the section is skipped).
 */
#ifndef SNIP_TRAIN_CHECKPOINT_H
#define SNIP_TRAIN_CHECKPOINT_H

#include <string>

#include "train/trainer.h"

namespace snip {

/**
 * Serialize the trainer's current state. With @p controller, the
 * scheme/controller section is appended (see file comment); exporting
 * blocks until any in-flight async update has solved. Returns false on
 * I/O error.
 */
bool saveCheckpoint(const Trainer &trainer, const std::string &path,
                    SnipController *controller = nullptr);

/**
 * Restore state saved by saveCheckpoint into an identically configured
 * trainer. With @p controller, also restores the controller section
 * when present (and re-applies the persisted precision scheme to the
 * model). fatal() on structural mismatch; returns false on I/O error.
 */
bool loadCheckpoint(Trainer &trainer, const std::string &path,
                    SnipController *controller = nullptr);

} // namespace snip

#endif // SNIP_TRAIN_CHECKPOINT_H
