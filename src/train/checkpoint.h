/**
 * @file
 * Binary checkpoint serialization for Trainer state.
 *
 * Simple self-describing format: magic, version, parameter count, then
 * per parameter (name, shape, FP32 data), then the optimizer moments and
 * step counters. Checkpoints let the examples/benches reproduce the
 * paper's "resume pretraining from a released checkpoint" workflow
 * (Sec. 6.1) across process runs.
 */
#ifndef SNIP_TRAIN_CHECKPOINT_H
#define SNIP_TRAIN_CHECKPOINT_H

#include <string>

#include "train/trainer.h"

namespace snip {

/** Serialize the trainer's current state. Returns false on I/O error. */
bool saveCheckpoint(const Trainer &trainer, const std::string &path);

/**
 * Restore state saved by saveCheckpoint into an identically configured
 * trainer. fatal() on structural mismatch; returns false on I/O error.
 */
bool loadCheckpoint(Trainer &trainer, const std::string &path);

} // namespace snip

#endif // SNIP_TRAIN_CHECKPOINT_H
