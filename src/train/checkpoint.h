/**
 * @file
 * Binary checkpoint serialization for Trainer state.
 *
 * Self-describing format (v3, magic "SNIPCKP3"): parameter count and
 * clocks, the optimizer lr, the model's active precision scheme, the
 * quantizer/noise RNG stream states, then the FP32 parameter tensors
 * and optimizer moments, an optional controller section, and a CRC-32
 * footer over everything before it. The scheme + RNG states make
 * resumes bit-exact even under stochastic-rounding schemes; the footer
 * makes torn writes and bit rot detectable instead of silently
 * half-loading. Outdated v1 files are reported as unreadable (callers
 * regenerate them); v2 files (no footer) still load.
 *
 * Durability: the image is staged to <path>.tmp, fsync'd, renamed
 * over <path>, and the parent directory fsync'd — so a crash at any
 * point leaves either the old complete checkpoint or the new one.
 * CheckpointWriteOptions::keep additionally rotates the previous
 * checkpoints to <path>.1, <path>.2, ... before publishing (the live
 * file is moved aside only at publish time and rolled back if the
 * final rename fails, so a failed save never leaves <path> empty),
 * and loadCheckpointWithFallback() walks that chain to the newest
 * checkpoint that still validates.
 *
 * Concurrency contract: checkpoint save/load runs on the trainer
 * thread only — the functions below share no mutable state (all
 * buffers are locals), so there is nothing for a mutex annotation
 * (src/util/thread_annotations.h) to guard. Concurrent saves of the
 * SAME path from different processes are serialized by the atomic
 * rename publish, not by in-process locking.
 *
 * When a SnipController is passed, an optional trailing section also
 * persists the controller's update state — its epoch counter, last
 * applied scheme, and any in-flight async update (saving waits for the
 * background solve and records its outcome plus its apply boundary).
 * Loading such a checkpoint re-arms the pending update, so a run
 * checkpointed mid-interval resumes with the identical scheme
 * sequence. Files written without a controller load with or without
 * one, and controller-bearing files load fine when no controller is
 * supplied (the section is skipped).
 */
#ifndef SNIP_TRAIN_CHECKPOINT_H
#define SNIP_TRAIN_CHECKPOINT_H

#include <string>

#include "train/trainer.h"

namespace snip {

/** Why a checkpoint operation succeeded or failed. */
enum class CheckpointStatus
{
    Ok,              ///< loaded/saved completely
    FileMissing,     ///< path absent or unreadable
    BadMagic,        ///< not a SNIP checkpoint
    OutdatedVersion, ///< v1 file: regenerate it
    Truncated,       ///< file ends mid-section (torn write)
    CrcMismatch,     ///< footer checksum does not cover the payload
    Malformed,       ///< structure disagrees with the trainer (shape /
                     ///< parameter-count / scheme / section mismatch)
    WriteFailed,     ///< staging write failed (e.g. disk full)
    SyncFailed,      ///< fsync of the staged image failed
    RenameFailed,    ///< publish rename failed (tmp file left behind)
    TornWrite,       ///< injected torn write reached the final path
};

/** Human-readable name for logs ("ok", "crc_mismatch", ...). */
const char *checkpointStatusName(CheckpointStatus status);

/** Durability/rotation knobs for saveCheckpoint. */
struct CheckpointWriteOptions
{
    /** Previous checkpoints retained as <path>.1 (newest) through
     *  <path>.keep (oldest); 0 = overwrite in place. */
    int keep = 0;
    /** fsync the staged file before rename and the directory after
     *  (crash durability); disable only for throwaway test files. */
    bool durable = true;
};

/**
 * Serialize the trainer's current state. With @p controller, the
 * scheme/controller section is appended (see file comment); exporting
 * blocks until any in-flight async update has solved. Returns false on
 * failure, with the reason in @p status when non-null; the previously
 * published checkpoint (if any) is never damaged by a failed save.
 */
bool saveCheckpoint(const Trainer &trainer, const std::string &path,
                    SnipController *controller = nullptr,
                    CheckpointStatus *status = nullptr,
                    const CheckpointWriteOptions &options = {});

/**
 * Restore state saved by saveCheckpoint into an identically configured
 * trainer. With @p controller, also restores the controller section
 * when present (and re-applies the persisted precision scheme to the
 * model). The file is parsed and verified completely before any state
 * is touched, so a failed load (false; reason in @p status) never
 * half-restores the trainer.
 */
bool loadCheckpoint(Trainer &trainer, const std::string &path,
                    SnipController *controller = nullptr,
                    CheckpointStatus *status = nullptr);

/**
 * loadCheckpoint, falling back through the rotation chain: try
 * @p path, then <path>.1, <path>.2, ... (up to @p max_fallbacks)
 * until one validates. @p status reports the primary path's failure
 * when even the fallbacks fail, and Ok on any success;
 * @p loaded_path (optional) receives the file that actually loaded.
 */
bool loadCheckpointWithFallback(Trainer &trainer, const std::string &path,
                                SnipController *controller = nullptr,
                                CheckpointStatus *status = nullptr,
                                int max_fallbacks = 8,
                                std::string *loaded_path = nullptr);

} // namespace snip

#endif // SNIP_TRAIN_CHECKPOINT_H
