/**
 * @file
 * End-to-end training driver: model + AdamW + synthetic data + optional
 * SnipController, with in-memory snapshots so different quantization
 * schemes can be compared from an identical checkpoint on identical
 * data (the paper's resume-pretraining methodology, Sec. 6.1).
 */
#ifndef SNIP_TRAIN_TRAINER_H
#define SNIP_TRAIN_TRAINER_H

#include <array>
#include <functional>
#include <memory>

#include "core/controller.h"
#include "data/batch.h"
#include "nn/model.h"
#include "optim/adamw.h"
#include "optim/lr_schedule.h"

namespace snip {

/** Everything needed to construct a training run. */
struct TrainerConfig
{
    ModelConfig model;
    CorpusConfig corpus;
    int64_t batch_size = 2;
    AdamWConfig adamw;
    LrScheduleKind lr_kind = LrScheduleKind::Constant;
    int64_t lr_total_steps = 1000;
    int64_t lr_warmup_steps = 0;
    uint64_t seed = 42;
    uint64_t data_seed = 7;
};

/** Full training state snapshot (parameters + optimizer + clock +
 *  active scheme + stochastic streams). The scheme and RNG states make
 *  restores bit-exact even under quantized training: the restored run
 *  quantizes with the same precisions and replays the stochastic
 *  rounding / probe-noise draws exactly where the snapshot left them. */
struct TrainerSnapshot
{
    std::vector<Tensor> param_values;
    std::vector<AdamW::State> opt_states;
    int64_t opt_step_count = 0;
    int64_t step = 0;
    /** Optimizer lr at snapshot time. The schedule overwrites it every
     *  step, but the SNIP statistics pass reads it *before* that, so a
     *  restore must reproduce the exact pre-step value. */
    double lr = 0.0;
    PrecisionScheme scheme;
    std::array<uint64_t, 4> quant_rng_state{};
    std::array<uint64_t, 4> noise_rng_state{};
};

/** Owns one training run. */
class Trainer
{
  public:
    explicit Trainer(const TrainerConfig &config);

    /** Train @p n_steps; returns the per-step losses. An optional
     *  SnipController regenerates the scheme on its cadence; an
     *  optional callback observes (step, loss). */
    std::vector<double>
    train(int64_t n_steps, SnipController *controller = nullptr,
          const std::function<void(int64_t, double)> &on_step = nullptr);

    /** One training step on the next batch; returns its loss. */
    double trainStep(SnipController *controller = nullptr);

    /** Evaluate the loss on @p n_batches *without* updating weights,
     *  replaying a fixed eval stream (seeded separately). */
    double evalLoss(int64_t n_batches);

    /** Next batch from the training stream (advances it). */
    Batch nextBatch() { return iter_->next(); }

    /** Apply a precision scheme to the model. */
    void applyScheme(const PrecisionScheme &scheme)
    {
        model_->setScheme(scheme);
    }

    /** Capture the full training state. */
    TrainerSnapshot snapshot() const;

    /** Restore a snapshot taken on this (or an identical) trainer.
     *  Also resets the data stream so replays see the same batches. */
    void restore(const TrainerSnapshot &snap);

    LlamaModel &model() { return *model_; }
    AdamW &optimizer() { return *opt_; }

    /** Execution pool for this run. One pool instance is shared per
     *  process: the trainer resolves runtime::globalThreadPool() — the
     *  same pool the GEMM/quantizer kernels dispatch to — hands it to
     *  any SnipController it drives (trainStep), and the bench harness
     *  passes it to evaluate(). (Resolved per call so
     *  setGlobalThreadCount() sweeps in tests/benches never leave a
     *  stale handle.) */
    runtime::ThreadPool &pool();
    const SyntheticCorpus &corpus() const { return corpus_; }
    const TrainerConfig &config() const { return config_; }
    int64_t step() const { return step_; }
    const std::vector<double> &lossHistory() const { return losses_; }

  private:
    TrainerConfig config_;
    SyntheticCorpus corpus_;
    std::unique_ptr<LlamaModel> model_;
    std::unique_ptr<AdamW> opt_;
    std::unique_ptr<BatchIterator> iter_;
    LrSchedule lr_;
    int64_t step_ = 0;
    std::vector<double> losses_;
};

} // namespace snip

#endif // SNIP_TRAIN_TRAINER_H
