/**
 * @file
 * Model and trainer presets for the paper's four evaluation models
 * (Sec. 6.1), scaled to CPU-simulator size while preserving the
 * architectural structure the per-layer sensitivity signal depends on
 * (layer roles, depth, GQA for the 70B).
 *
 * Paper model -> preset:
 *   TinyLlama 1B (22 blocks)  -> tinyllama_sim  (22 blocks, d=32)
 *   OpenLlama 3B (26 blocks)  -> openllama3b_sim (26 blocks, d=40)
 *   OpenLlama 7B (32 blocks)  -> openllama7b_sim (32 blocks, d=48)
 *   industry 70B (80 blocks)  -> llama70b_sim   (40 blocks, d=64, GQA)
 */
#ifndef SNIP_TRAIN_PRESETS_H
#define SNIP_TRAIN_PRESETS_H

#include <string>

#include "train/trainer.h"

namespace snip {

/** TinyLlama-1B-shaped simulator model (22 transformer blocks). */
ModelConfig tinyllamaSim();

/** OpenLlama-3B-shaped simulator model (26 blocks). */
ModelConfig openllama3bSim();

/** OpenLlama-7B-shaped simulator model (32 blocks). */
ModelConfig openllama7bSim();

/** 70B-dense-shaped simulator model (40 blocks, grouped-query attn). */
ModelConfig llama70bSim();

/** Look up a preset by name; fatal() on unknown names. */
ModelConfig modelPresetByName(const std::string &name);

/** A TrainerConfig with sensible defaults for a preset model. */
TrainerConfig trainerPreset(const ModelConfig &model, uint64_t seed = 42);

/** Shrink a model preset for fast unit tests (4 blocks, short seq). */
ModelConfig tinyTestModel();

} // namespace snip

#endif // SNIP_TRAIN_PRESETS_H
