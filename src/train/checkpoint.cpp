#include "train/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "runtime/fault_injection.h"
#include "util/crc32.h"
#include "util/file_io.h"
#include "util/logging.h"

namespace snip {

namespace {

// v2 added the quantizer/noise RNG stream states (bit-exact resume
// under stochastic rounding) and the optional controller section; v3
// added the CRC-32 footer. v2 payloads are identical to v3's, so they
// still load (without the integrity check).
constexpr uint64_t kMagic = 0x534E4950434B5033ull;    // "SNIPCKP3"
constexpr uint64_t kMagicV2 = 0x534E4950434B5032ull;  // "SNIPCKP2"
constexpr uint64_t kMagicV1 = 0x534E4950434B5031ull;  // "SNIPCKP1"
constexpr uint64_t kCtlMagic = 0x534E495043544C31ull; // "SNIPCTL1"
constexpr uint64_t kFooterMagic = 0x534E4950434B4631ull; // "SNIPCKF1"
constexpr size_t kFooterBytes = 3 * sizeof(uint64_t);

// Bounds a corrupt v2 file (no CRC to catch it) can't push a
// resize/loop through before the shape checks reject it.
constexpr uint64_t kMaxSchemeLayers = 1u << 20;
constexpr uint64_t kMaxTensorRank = 8;

// ------------------------------------------------- payload writing

void
putU64(std::string &out, uint64_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putF64(std::string &out, double v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putTensor(std::string &out, const Tensor &t)
{
    putU64(out, static_cast<uint64_t>(t.rank()));
    for (int d = 0; d < t.rank(); ++d)
        putU64(out, static_cast<uint64_t>(t.size(d)));
    out.append(reinterpret_cast<const char *>(t.data()),
               sizeof(float) * static_cast<size_t>(t.numel()));
}

void
putScheme(std::string &out, const PrecisionScheme &scheme)
{
    putU64(out, static_cast<uint64_t>(scheme.layers.size()));
    for (const auto &layer : scheme.layers) {
        for (Precision p : layer.gemm)
            out.push_back(static_cast<char>(p));
    }
}

// ------------------------------------------------- payload reading

/** Bounded memory cursor. `truncated` distinguishes "the file ended
 *  mid-field" from structural mismatches found with bytes to spare. */
struct Reader
{
    const char *p;
    const char *end;
    bool truncated = false;

    size_t left() const { return static_cast<size_t>(end - p); }

    bool
    bytes(void *dst, size_t n)
    {
        if (left() < n) {
            truncated = true;
            return false;
        }
        std::memcpy(dst, p, n);
        p += n;
        return true;
    }

    bool u64(uint64_t &v) { return bytes(&v, sizeof(v)); }
    bool f64(double &v) { return bytes(&v, sizeof(v)); }
};

bool
readTensorInto(Reader &r, Tensor &t)
{
    uint64_t rank;
    if (!r.u64(rank) || rank > kMaxTensorRank)
        return false;
    std::vector<int64_t> shape;
    for (uint64_t d = 0; d < rank; ++d) {
        uint64_t dim;
        if (!r.u64(dim))
            return false;
        shape.push_back(static_cast<int64_t>(dim));
    }
    if (shape != t.shape())
        return false;
    return r.bytes(t.data(),
                   sizeof(float) * static_cast<size_t>(t.numel()));
}

bool
readScheme(Reader &r, PrecisionScheme &scheme)
{
    uint64_t n_layers;
    if (!r.u64(n_layers) || n_layers > kMaxSchemeLayers)
        return false;
    scheme.layers.assign(n_layers, LayerScheme{});
    for (auto &layer : scheme.layers) {
        for (auto &p : layer.gemm) {
            char c;
            if (!r.bytes(&c, 1))
                return false;
            const int v = static_cast<unsigned char>(c);
            if (v > static_cast<int>(Precision::FP4))
                return false;
            p = static_cast<Precision>(v);
        }
    }
    return true;
}

/**
 * Parse everything after the version magic into @p snap /
 * @p state, touching no live state. @p snap enters as the shapes
 * template (trainer.snapshot()).
 */
bool
parsePayload(Reader &r, TrainerSnapshot &snap, bool *have_ctl,
             SnipController::PersistState &state)
{
    uint64_t n_params, step, opt_step;
    if (!r.u64(n_params) || !r.u64(step) || !r.u64(opt_step))
        return false;
    if (n_params != snap.param_values.size())
        return false;
    snap.step = static_cast<int64_t>(step);
    snap.opt_step_count = static_cast<int64_t>(opt_step);
    if (!r.f64(snap.lr))
        return false;
    if (!readScheme(r, snap.scheme))
        return false;
    for (auto &s : snap.quant_rng_state) {
        if (!r.u64(s))
            return false;
    }
    for (auto &s : snap.noise_rng_state) {
        if (!r.u64(s))
            return false;
    }
    for (auto &t : snap.param_values) {
        if (!readTensorInto(r, t))
            return false;
    }
    for (auto &s : snap.opt_states) {
        if (!readTensorInto(r, s.m) || !readTensorInto(r, s.v))
            return false;
    }

    // Optional trailing controller section (absent in old files).
    *have_ctl = false;
    if (r.left() > 0) {
        uint64_t ctl_magic, has_selection, pending;
        if (!r.u64(ctl_magic) || ctl_magic != kCtlMagic)
            return false;
        if (!r.u64(state.epoch) || !r.u64(has_selection) ||
            !readScheme(r, state.applied_scheme) ||
            !r.f64(state.applied_fp4_fraction) || !r.u64(pending))
            return false;
        state.has_selection = has_selection != 0;
        state.pending = pending != 0;
        if (state.pending) {
            uint64_t apply_step;
            if (!r.u64(apply_step) ||
                !readScheme(r, state.pending_scheme) ||
                !r.f64(state.pending_fp4_fraction))
                return false;
            state.pending_apply_step = static_cast<int64_t>(apply_step);
        }
        *have_ctl = true;
    }
    return r.left() == 0;
}

/** The complete v3 file image: payload (magic through the optional
 *  controller section) + CRC footer. */
std::string
serializeImage(const Trainer &trainer, SnipController *controller)
{
    std::string image;
    TrainerSnapshot snap = trainer.snapshot();
    putU64(image, kMagic);
    putU64(image, static_cast<uint64_t>(snap.param_values.size()));
    putU64(image, static_cast<uint64_t>(snap.step));
    putU64(image, static_cast<uint64_t>(snap.opt_step_count));
    putF64(image, snap.lr);
    putScheme(image, snap.scheme);
    for (uint64_t s : snap.quant_rng_state)
        putU64(image, s);
    for (uint64_t s : snap.noise_rng_state)
        putU64(image, s);
    for (const auto &t : snap.param_values)
        putTensor(image, t);
    for (const auto &s : snap.opt_states) {
        putTensor(image, s.m);
        putTensor(image, s.v);
    }

    if (controller) {
        // exportState() waits for any in-flight background solve, so
        // the pending update's outcome lands in the file.
        SnipController::PersistState state = controller->exportState();
        putU64(image, kCtlMagic);
        putU64(image, state.epoch);
        putU64(image, state.has_selection ? 1 : 0);
        putScheme(image, state.applied_scheme);
        putF64(image, state.applied_fp4_fraction);
        putU64(image, state.pending ? 1 : 0);
        if (state.pending) {
            putU64(image,
                   static_cast<uint64_t>(state.pending_apply_step));
            putScheme(image, state.pending_scheme);
            putF64(image, state.pending_fp4_fraction);
        }
    }

    const uint64_t payload_size = image.size();
    putU64(image, kFooterMagic);
    putU64(image, payload_size);
    putU64(image, crc32(image.data(), payload_size));
    return image;
}

std::string
rotationName(const std::string &path, int i)
{
    return path + "." + std::to_string(i);
}

/** Shift <path>.1 -> <path>.2 -> ... -> <path>.keep (oldest drops).
 *  The live file at <path> is NOT touched here: saveCheckpoint moves
 *  it aside itself, right before the publish rename, so a failed
 *  publish can roll it back and never leave <path> empty. */
void
rotateBackups(const std::string &path, int keep)
{
    for (int i = keep; i >= 2; --i)
        (void)std::rename(rotationName(path, i - 1).c_str(),
                          rotationName(path, i).c_str());
}

bool
failWith(CheckpointStatus *status, CheckpointStatus s)
{
    if (status)
        *status = s;
    return false;
}

} // namespace

const char *
checkpointStatusName(CheckpointStatus status)
{
    switch (status) {
        case CheckpointStatus::Ok:
            return "ok";
        case CheckpointStatus::FileMissing:
            return "file_missing";
        case CheckpointStatus::BadMagic:
            return "bad_magic";
        case CheckpointStatus::OutdatedVersion:
            return "outdated_version";
        case CheckpointStatus::Truncated:
            return "truncated";
        case CheckpointStatus::CrcMismatch:
            return "crc_mismatch";
        case CheckpointStatus::Malformed:
            return "malformed";
        case CheckpointStatus::WriteFailed:
            return "write_failed";
        case CheckpointStatus::SyncFailed:
            return "sync_failed";
        case CheckpointStatus::RenameFailed:
            return "rename_failed";
        case CheckpointStatus::TornWrite:
            return "torn_write";
    }
    return "unknown";
}

bool
saveCheckpoint(const Trainer &trainer, const std::string &path,
               SnipController *controller, CheckpointStatus *status,
               const CheckpointWriteOptions &options)
{
    const std::string image = serializeImage(trainer, controller);
    const std::string tmp = path + ".tmp";

    if (SNIP_FAULT_POINT("ckpt.write")) {
        // Simulated ENOSPC mid-write: half the image lands in the
        // staging file, the caller sees the error, nothing published.
        (void)fsio::writeFile(tmp, image.substr(0, image.size() / 2));
        std::remove(tmp.c_str());
        return failWith(status, CheckpointStatus::WriteFailed);
    }
    if (!fsio::writeFile(tmp, image)) {
        std::remove(tmp.c_str());
        return failWith(status, CheckpointStatus::WriteFailed);
    }
    if (options.durable &&
        (SNIP_FAULT_POINT("ckpt.fsync") || !fsio::syncFile(tmp))) {
        std::remove(tmp.c_str());
        return failWith(status, CheckpointStatus::SyncFailed);
    }
    if (SNIP_FAULT_POINT("ckpt.rename")) {
        // Simulated crash before the publish rename: the staged image
        // survives at <tmp>, the published path is untouched.
        return failWith(status, CheckpointStatus::RenameFailed);
    }
    // Publish: shift the numbered backups, move the live file to
    // <path>.1, then rename the staged image into place. The live file
    // moves last and is rolled back if the final rename fails, so a
    // failed save always leaves a loadable checkpoint at <path>.
    rotateBackups(path, options.keep);
    bool live_rotated = false;
    if (options.keep > 0)
        live_rotated = std::rename(path.c_str(),
                                   rotationName(path, 1).c_str()) == 0;
    if (SNIP_FAULT_POINT("ckpt.torn")) {
        // Simulated torn publish (non-atomic filesystem / power cut
        // mid-writeback): a truncated image lands at the final path.
        // Rotation already ran, so <path>.1 holds the last good file.
        (void)fsio::writeFile(path, image.substr(0, image.size() / 2));
        std::remove(tmp.c_str());
        return failWith(status, CheckpointStatus::TornWrite);
    }
    if (SNIP_FAULT_POINT("ckpt.publish") ||
        std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        if (live_rotated)
            (void)std::rename(rotationName(path, 1).c_str(),
                              path.c_str());
        return failWith(status, CheckpointStatus::RenameFailed);
    }
    if (options.durable)
        (void)fsio::syncParentDir(path);
    if (status)
        *status = CheckpointStatus::Ok;
    return true;
}

bool
loadCheckpoint(Trainer &trainer, const std::string &path,
               SnipController *controller, CheckpointStatus *status)
{
    std::string file;
    if (!fsio::readFile(path, &file))
        return failWith(status, CheckpointStatus::FileMissing);
    if (file.size() < sizeof(uint64_t))
        return failWith(status, CheckpointStatus::Truncated);

    uint64_t magic;
    std::memcpy(&magic, file.data(), sizeof(magic));
    size_t payload_size = file.size();
    if (magic == kMagicV1) {
        // Outdated format (no RNG stream states): report unreadable so
        // callers (e.g. the bench checkpoint cache) regenerate it.
        warn("outdated SNIPCKP1 checkpoint, ignoring: ", path);
        return failWith(status, CheckpointStatus::OutdatedVersion);
    }
    if (magic == kMagic) {
        // v3: verify the footer before looking at anything else. A
        // missing/garbled footer means the tail was torn off; a CRC
        // mismatch means the bytes changed under us.
        if (file.size() < sizeof(uint64_t) + kFooterBytes)
            return failWith(status, CheckpointStatus::Truncated);
        uint64_t fmagic, fsize, fcrc;
        const char *footer = file.data() + file.size() - kFooterBytes;
        std::memcpy(&fmagic, footer, sizeof(fmagic));
        std::memcpy(&fsize, footer + 8, sizeof(fsize));
        std::memcpy(&fcrc, footer + 16, sizeof(fcrc));
        if (fmagic != kFooterMagic ||
            fsize != file.size() - kFooterBytes) {
            warn("checkpoint ", path, " has a torn/missing footer");
            return failWith(status, CheckpointStatus::Truncated);
        }
        payload_size = static_cast<size_t>(fsize);
        if (crc32(file.data(), payload_size) != fcrc) {
            warn("checkpoint ", path, " failed its CRC check");
            return failWith(status, CheckpointStatus::CrcMismatch);
        }
    } else if (magic != kMagicV2) {
        warn("not a SNIP checkpoint: ", path);
        return failWith(status, CheckpointStatus::BadMagic);
    }

    // Parse the whole payload into locals BEFORE touching the trainer,
    // so any failure below leaves it exactly as it was.
    Reader r{file.data() + sizeof(uint64_t),
             file.data() + payload_size};
    TrainerSnapshot snap = trainer.snapshot(); // shapes template
    bool have_ctl = false;
    SnipController::PersistState state;
    if (!parsePayload(r, snap, &have_ctl, state)) {
        const CheckpointStatus s = r.truncated
                                       ? CheckpointStatus::Truncated
                                       : CheckpointStatus::Malformed;
        warn("checkpoint ", path, " unreadable: ",
             checkpointStatusName(s));
        return failWith(status, s);
    }

    trainer.restore(snap);
    if (controller && have_ctl)
        controller->importState(state);
    if (status)
        *status = CheckpointStatus::Ok;
    return true;
}

bool
loadCheckpointWithFallback(Trainer &trainer, const std::string &path,
                           SnipController *controller,
                           CheckpointStatus *status, int max_fallbacks,
                           std::string *loaded_path)
{
    CheckpointStatus primary = CheckpointStatus::FileMissing;
    for (int i = 0; i <= max_fallbacks; ++i) {
        const std::string p = i == 0 ? path : rotationName(path, i);
        CheckpointStatus s = CheckpointStatus::Ok;
        if (loadCheckpoint(trainer, p, controller, &s)) {
            if (i > 0)
                inform("recovered from fallback checkpoint ", p);
            if (status)
                *status = CheckpointStatus::Ok;
            if (loaded_path)
                *loaded_path = p;
            return true;
        }
        if (i == 0)
            primary = s;
        else if (s == CheckpointStatus::FileMissing)
            break; // end of the rotation chain
        if (s != CheckpointStatus::FileMissing)
            warn("checkpoint ", p, " unreadable (",
                 checkpointStatusName(s), "); trying fallback");
    }
    if (status)
        *status = primary;
    return false;
}

} // namespace snip
