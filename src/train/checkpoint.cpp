#include "train/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "util/logging.h"

namespace snip {

namespace {

// v2 added the quantizer/noise RNG stream states (bit-exact resume
// under stochastic rounding) and the optional controller section.
constexpr uint64_t kMagic = 0x534E4950434B5032ull;    // "SNIPCKP2"
constexpr uint64_t kMagicV1 = 0x534E4950434B5031ull;  // "SNIPCKP1"
constexpr uint64_t kCtlMagic = 0x534E495043544C31ull; // "SNIPCTL1"

void
writeU64(std::ostream &out, uint64_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

bool
readU64(std::istream &in, uint64_t &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(in);
}

void
writeTensor(std::ostream &out, const Tensor &t)
{
    writeU64(out, static_cast<uint64_t>(t.rank()));
    for (int d = 0; d < t.rank(); ++d)
        writeU64(out, static_cast<uint64_t>(t.size(d)));
    out.write(reinterpret_cast<const char *>(t.data()),
              static_cast<std::streamsize>(sizeof(float) *
                                           static_cast<size_t>(t.numel())));
}

bool
readTensorInto(std::istream &in, Tensor &t)
{
    uint64_t rank;
    if (!readU64(in, rank))
        return false;
    std::vector<int64_t> shape;
    for (uint64_t d = 0; d < rank; ++d) {
        uint64_t dim;
        if (!readU64(in, dim))
            return false;
        shape.push_back(static_cast<int64_t>(dim));
    }
    if (shape != t.shape())
        fatal("checkpoint tensor shape mismatch");
    in.read(reinterpret_cast<char *>(t.data()),
            static_cast<std::streamsize>(sizeof(float) *
                                         static_cast<size_t>(t.numel())));
    return static_cast<bool>(in);
}

void
writeScheme(std::ostream &out, const PrecisionScheme &scheme)
{
    writeU64(out, static_cast<uint64_t>(scheme.layers.size()));
    for (const auto &layer : scheme.layers) {
        for (Precision p : layer.gemm)
            out.put(static_cast<char>(p));
    }
}

bool
readScheme(std::istream &in, PrecisionScheme &scheme)
{
    uint64_t n_layers;
    if (!readU64(in, n_layers))
        return false;
    scheme.layers.assign(n_layers, LayerScheme{});
    for (auto &layer : scheme.layers) {
        for (auto &p : layer.gemm) {
            int c = in.get();
            if (c == EOF || c < 0 ||
                c > static_cast<int>(Precision::FP4))
                return false;
            p = static_cast<Precision>(c);
        }
    }
    return static_cast<bool>(in);
}

void
writeF64(std::ostream &out, double v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

bool
readF64(std::istream &in, double &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(in);
}

} // namespace

bool
saveCheckpoint(const Trainer &trainer, const std::string &path,
               SnipController *controller)
{
    // Write to a temp file and rename, so a crash mid-save never
    // leaves a truncated file at the checkpoint path.
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;

    TrainerSnapshot snap = trainer.snapshot();
    writeU64(out, kMagic);
    writeU64(out, static_cast<uint64_t>(snap.param_values.size()));
    writeU64(out, static_cast<uint64_t>(snap.step));
    writeU64(out, static_cast<uint64_t>(snap.opt_step_count));
    writeF64(out, snap.lr);
    writeScheme(out, snap.scheme);
    for (uint64_t s : snap.quant_rng_state)
        writeU64(out, s);
    for (uint64_t s : snap.noise_rng_state)
        writeU64(out, s);
    for (const auto &t : snap.param_values)
        writeTensor(out, t);
    for (const auto &s : snap.opt_states) {
        writeTensor(out, s.m);
        writeTensor(out, s.v);
    }

    if (controller) {
        // exportState() waits for any in-flight background solve, so
        // the pending update's outcome lands in the file.
        SnipController::PersistState state = controller->exportState();
        writeU64(out, kCtlMagic);
        writeU64(out, state.epoch);
        writeU64(out, state.has_selection ? 1 : 0);
        writeScheme(out, state.applied_scheme);
        writeF64(out, state.applied_fp4_fraction);
        writeU64(out, state.pending ? 1 : 0);
        if (state.pending) {
            writeU64(out,
                     static_cast<uint64_t>(state.pending_apply_step));
            writeScheme(out, state.pending_scheme);
            writeF64(out, state.pending_fp4_fraction);
        }
    }
    out.close();
    if (!out) {
        std::remove(tmp.c_str());
        return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool
loadCheckpoint(Trainer &trainer, const std::string &path,
               SnipController *controller)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;

    uint64_t magic, n_params, step, opt_step;
    if (!readU64(in, magic))
        return false;
    if (magic == kMagicV1) {
        // Outdated format (no RNG stream states): report unreadable so
        // callers (e.g. the bench checkpoint cache) regenerate it.
        warn("outdated SNIPCKP1 checkpoint, ignoring: ", path);
        return false;
    }
    if (magic != kMagic)
        fatal("not a SNIP checkpoint: ", path);
    if (!readU64(in, n_params) || !readU64(in, step) ||
        !readU64(in, opt_step))
        return false;

    TrainerSnapshot snap = trainer.snapshot(); // shapes template
    if (n_params != snap.param_values.size())
        fatal("checkpoint parameter count mismatch");
    snap.step = static_cast<int64_t>(step);
    snap.opt_step_count = static_cast<int64_t>(opt_step);
    if (!readF64(in, snap.lr))
        return false;
    if (!readScheme(in, snap.scheme))
        return false;
    for (auto &s : snap.quant_rng_state) {
        if (!readU64(in, s))
            return false;
    }
    for (auto &s : snap.noise_rng_state) {
        if (!readU64(in, s))
            return false;
    }
    for (auto &t : snap.param_values) {
        if (!readTensorInto(in, t))
            return false;
    }
    for (auto &s : snap.opt_states) {
        if (!readTensorInto(in, s.m) || !readTensorInto(in, s.v))
            return false;
    }

    // Optional trailing controller section (absent in old files).
    // Parse it fully BEFORE touching the trainer, so a file truncated
    // mid-section reports failure without mutating any state.
    bool have_ctl = false;
    SnipController::PersistState state;
    uint64_t ctl_magic;
    if (readU64(in, ctl_magic)) {
        if (ctl_magic != kCtlMagic)
            fatal("corrupt controller section in ", path);
        uint64_t has_selection, pending;
        if (!readU64(in, state.epoch) || !readU64(in, has_selection) ||
            !readScheme(in, state.applied_scheme) ||
            !readF64(in, state.applied_fp4_fraction) ||
            !readU64(in, pending))
            return false;
        state.has_selection = has_selection != 0;
        state.pending = pending != 0;
        if (state.pending) {
            uint64_t apply_step;
            if (!readU64(in, apply_step) ||
                !readScheme(in, state.pending_scheme) ||
                !readF64(in, state.pending_fp4_fraction))
                return false;
            state.pending_apply_step = static_cast<int64_t>(apply_step);
        }
        have_ctl = true;
    }

    trainer.restore(snap);
    if (controller && have_ctl)
        controller->importState(state);
    return true;
}

} // namespace snip
