#include "train/checkpoint.h"

#include <cstdint>
#include <fstream>

#include "util/logging.h"

namespace snip {

namespace {

constexpr uint64_t kMagic = 0x534E4950434B5031ull; // "SNIPCKP1"

void
writeU64(std::ostream &out, uint64_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

bool
readU64(std::istream &in, uint64_t &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(in);
}

void
writeTensor(std::ostream &out, const Tensor &t)
{
    writeU64(out, static_cast<uint64_t>(t.rank()));
    for (int d = 0; d < t.rank(); ++d)
        writeU64(out, static_cast<uint64_t>(t.size(d)));
    out.write(reinterpret_cast<const char *>(t.data()),
              static_cast<std::streamsize>(sizeof(float) *
                                           static_cast<size_t>(t.numel())));
}

bool
readTensorInto(std::istream &in, Tensor &t)
{
    uint64_t rank;
    if (!readU64(in, rank))
        return false;
    std::vector<int64_t> shape;
    for (uint64_t d = 0; d < rank; ++d) {
        uint64_t dim;
        if (!readU64(in, dim))
            return false;
        shape.push_back(static_cast<int64_t>(dim));
    }
    if (shape != t.shape())
        fatal("checkpoint tensor shape mismatch");
    in.read(reinterpret_cast<char *>(t.data()),
            static_cast<std::streamsize>(sizeof(float) *
                                         static_cast<size_t>(t.numel())));
    return static_cast<bool>(in);
}

} // namespace

bool
saveCheckpoint(const Trainer &trainer, const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;

    TrainerSnapshot snap = trainer.snapshot();
    writeU64(out, kMagic);
    writeU64(out, static_cast<uint64_t>(snap.param_values.size()));
    writeU64(out, static_cast<uint64_t>(snap.step));
    writeU64(out, static_cast<uint64_t>(snap.opt_step_count));
    for (const auto &t : snap.param_values)
        writeTensor(out, t);
    for (const auto &s : snap.opt_states) {
        writeTensor(out, s.m);
        writeTensor(out, s.v);
    }
    return static_cast<bool>(out);
}

bool
loadCheckpoint(Trainer &trainer, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;

    uint64_t magic, n_params, step, opt_step;
    if (!readU64(in, magic) || magic != kMagic)
        fatal("not a SNIP checkpoint: ", path);
    if (!readU64(in, n_params) || !readU64(in, step) ||
        !readU64(in, opt_step))
        return false;

    TrainerSnapshot snap = trainer.snapshot(); // shapes template
    if (n_params != snap.param_values.size())
        fatal("checkpoint parameter count mismatch");
    snap.step = static_cast<int64_t>(step);
    snap.opt_step_count = static_cast<int64_t>(opt_step);
    for (auto &t : snap.param_values) {
        if (!readTensorInto(in, t))
            return false;
    }
    for (auto &s : snap.opt_states) {
        if (!readTensorInto(in, s.m) || !readTensorInto(in, s.v))
            return false;
    }
    trainer.restore(snap);
    return true;
}

} // namespace snip
