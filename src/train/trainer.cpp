#include "train/trainer.h"

#include "runtime/thread_pool.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "tensor/gemm.h"
#include "util/logging.h"

namespace snip {

runtime::ThreadPool &
Trainer::pool()
{
    return runtime::globalThreadPool();
}

Trainer::Trainer(const TrainerConfig &config)
    : config_(config),
      corpus_(config.corpus),
      model_(std::make_unique<LlamaModel>(config.model, config.seed)),
      opt_(std::make_unique<AdamW>(model_->params(), config.adamw)),
      iter_(std::make_unique<BatchIterator>(corpus_, config.batch_size,
                                            config.data_seed)),
      lr_(config.lr_kind, config.adamw.lr, config.lr_total_steps,
          config.lr_warmup_steps)
{
    SNIP_ASSERT(config.corpus.seq_len <= config.model.max_seq,
                "corpus sequences longer than the model's max_seq");
}

double
Trainer::trainStep(SnipController *controller)
{
    trace::TraceScope step_span(trace::Category::Train, "step", "step",
                                step_);
    Batch batch = iter_->next();
    {
        // The apply boundary is a phase of every step, controller or
        // not: a near-zero span here means "nothing adopted".
        trace::TraceScope span(trace::Category::Train, "scheme_apply",
                               "step", step_);
        if (controller)
            controller->maybeUpdate(*model_, opt_.get(), batch, step_,
                                    &pool());
    }

    model_->zeroGrad();
    LossResult loss = [&] {
        trace::TraceScope span(trace::Category::Train, "fwd", "step",
                               step_);
        return model_->forwardLoss(batch.tokens, batch.targets,
                                   batch.batch, batch.seq);
    }();
    {
        trace::TraceScope span(trace::Category::Train, "bwd", "step",
                               step_);
        model_->backward(loss.dlogits);
    }
    {
        trace::TraceScope span(trace::Category::Train, "optim", "step",
                               step_);
        opt_->setLr(lr_.at(step_));
        opt_->step();
    }
    ++step_;
    losses_.push_back(loss.loss);
    telemetry::stepBoundary(step_);
    return loss.loss;
}

std::vector<double>
Trainer::train(int64_t n_steps, SnipController *controller,
               const std::function<void(int64_t, double)> &on_step)
{
    std::vector<double> out;
    out.reserve(static_cast<size_t>(n_steps));
    for (int64_t i = 0; i < n_steps; ++i) {
        double loss = trainStep(controller);
        out.push_back(loss);
        if (on_step)
            on_step(step_ - 1, loss);
    }
    return out;
}

double
Trainer::evalLoss(int64_t n_batches)
{
    BatchIterator eval_iter(corpus_, config_.batch_size,
                            config_.data_seed ^ 0xE7A1ull);
    double total = 0.0;
    for (int64_t i = 0; i < n_batches; ++i) {
        Batch b = eval_iter.next();
        LossResult r =
            model_->forwardLoss(b.tokens, b.targets, b.batch, b.seq);
        total += r.loss;
    }
    return n_batches > 0 ? total / static_cast<double>(n_batches) : 0.0;
}

TrainerSnapshot
Trainer::snapshot() const
{
    TrainerSnapshot snap;
    auto params = const_cast<LlamaModel &>(*model_).params();
    snap.param_values.reserve(params.size());
    for (auto &p : params)
        snap.param_values.push_back(*p.value);
    snap.opt_states = opt_->snapshot();
    snap.opt_step_count = opt_->stepCount();
    snap.step = step_;
    snap.lr = opt_->config().lr;
    snap.scheme = model_->currentScheme();
    const LlamaModel &model = *model_;
    snap.quant_rng_state = model.quantizer().rng().state();
    snap.noise_rng_state = model.noiseRng().state();
    return snap;
}

void
Trainer::restore(const TrainerSnapshot &snap)
{
    auto params = model_->params();
    SNIP_ASSERT(snap.param_values.size() == params.size(),
                "snapshot/model mismatch");
    for (size_t i = 0; i < params.size(); ++i) {
        SNIP_ASSERT(params[i].value->sameShape(snap.param_values[i]));
        *params[i].value = snap.param_values[i];
        params[i].grad->zero();
    }
    // The ParamRef writes above bypass Linear::weight(): stale every
    // packed-weight panel in the process.
    invalidateWeightPacks();
    opt_->restore(snap.opt_states, snap.opt_step_count);
    opt_->setLr(snap.lr);
    model_->setScheme(snap.scheme);
    model_->quantizer().rng().setState(snap.quant_rng_state);
    model_->noiseRng().setState(snap.noise_rng_state);
    step_ = snap.step;
    // Replay the data stream to the snapshot position so resumed runs
    // see the batches they would have seen.
    iter_->reset();
    for (int64_t i = 0; i < snap.step; ++i)
        (void)iter_->next();
}

} // namespace snip
