#include "train/presets.h"

#include "util/logging.h"

namespace snip {

ModelConfig
tinyllamaSim()
{
    ModelConfig m;
    m.name = "tinyllama_sim";
    m.vocab_size = 64;
    m.d_model = 32;
    m.n_blocks = 22;
    m.n_heads = 4;
    m.n_kv_heads = 4;
    m.ffn_hidden = 96;
    m.max_seq = 64;
    return m;
}

ModelConfig
openllama3bSim()
{
    ModelConfig m;
    m.name = "openllama3b_sim";
    m.vocab_size = 64;
    m.d_model = 40;
    m.n_blocks = 26;
    m.n_heads = 4;
    m.n_kv_heads = 4;
    m.ffn_hidden = 120;
    m.max_seq = 64;
    return m;
}

ModelConfig
openllama7bSim()
{
    ModelConfig m;
    m.name = "openllama7b_sim";
    m.vocab_size = 64;
    m.d_model = 48;
    m.n_blocks = 32;
    m.n_heads = 4;
    m.n_kv_heads = 4;
    m.ffn_hidden = 144;
    m.max_seq = 64;
    return m;
}

ModelConfig
llama70bSim()
{
    ModelConfig m;
    m.name = "llama70b_sim";
    m.vocab_size = 64;
    m.d_model = 64;
    m.n_blocks = 40;
    m.n_heads = 8;
    m.n_kv_heads = 2; // grouped-query attention like Llama-70B
    m.ffn_hidden = 192;
    m.max_seq = 64;
    return m;
}

ModelConfig
tinyTestModel()
{
    ModelConfig m;
    m.name = "tiny_test";
    m.vocab_size = 64;
    m.d_model = 16;
    m.n_blocks = 4;
    m.n_heads = 2;
    m.n_kv_heads = 2;
    m.ffn_hidden = 32;
    m.max_seq = 32;
    return m;
}

ModelConfig
modelPresetByName(const std::string &name)
{
    if (name == "tinyllama_sim")
        return tinyllamaSim();
    if (name == "openllama3b_sim")
        return openllama3bSim();
    if (name == "openllama7b_sim")
        return openllama7bSim();
    if (name == "llama70b_sim")
        return llama70bSim();
    if (name == "tiny_test")
        return tinyTestModel();
    fatal("unknown model preset: ", name);
}

TrainerConfig
trainerPreset(const ModelConfig &model, uint64_t seed)
{
    TrainerConfig cfg;
    cfg.model = model;
    cfg.corpus.vocab_size = model.vocab_size;
    cfg.corpus.seq_len = 32;
    cfg.corpus.seed = 1234;
    cfg.corpus.markov_frac = 0.3;
    cfg.batch_size = 4;
    cfg.adamw.lr = 2e-3;
    cfg.adamw.beta1 = 0.9;
    cfg.adamw.beta2 = 0.95;
    cfg.adamw.weight_decay = 0.01;
    cfg.adamw.grad_clip = 1.0;
    cfg.lr_kind = LrScheduleKind::WarmupCosine;
    cfg.lr_total_steps = 2000;
    cfg.lr_warmup_steps = 30;
    cfg.seed = seed;
    cfg.data_seed = seed ^ 0xDA7A;
    return cfg;
}

} // namespace snip
