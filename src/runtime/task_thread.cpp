#include "runtime/task_thread.h"

#include "util/logging.h"

namespace snip {
namespace runtime {

TaskThread::~TaskThread()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    if (worker_.joinable())
        worker_.join();
}

void
TaskThread::submit(std::function<void()> fn)
{
    SNIP_ASSERT(fn, "null task submitted");
    {
        std::unique_lock<std::mutex> lock(mu_);
        SNIP_ASSERT(!stop_, "submit after TaskThread shutdown");
        queue_.push_back(std::move(fn));
        ++submitted_;
        if (!started_) {
            started_ = true;
            worker_ = std::thread([this] { workerLoop(); });
        }
    }
    wake_cv_.notify_one();
}

void
TaskThread::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    const int64_t target = submitted_;
    idle_cv_.wait(lock, [&] { return completed_ >= target; });
}

int64_t
TaskThread::submitted() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return submitted_;
}

int64_t
TaskThread::completed() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return completed_;
}

bool
TaskThread::busy() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return completed_ < submitted_;
}

void
TaskThread::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_cv_.wait(lock,
                          [&] { return stop_ || !queue_.empty(); });
            // Drain remaining tasks even when stopping, so destruction
            // never drops submitted work.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mu_);
            ++completed_;
        }
        idle_cv_.notify_all();
    }
}

} // namespace runtime
} // namespace snip
