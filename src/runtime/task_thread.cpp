#include "runtime/task_thread.h"

#include "util/logging.h"

namespace snip {
namespace runtime {

TaskThread::~TaskThread()
{
    {
        util::MutexLock lock(mu_);
        stop_ = true;
    }
    wake_cv_.notifyAll();
    if (worker_.joinable())
        worker_.join();
}

void
TaskThread::submit(std::function<void()> fn)
{
    SNIP_ASSERT(fn, "null task submitted");
    {
        util::MutexLock lock(mu_);
        SNIP_ASSERT(!stop_, "submit after TaskThread shutdown");
        queue_.push_back(std::move(fn));
        ++submitted_;
        if (!started_) {
            started_ = true;
            worker_ = std::thread([this] { workerLoop(); });
        }
    }
    wake_cv_.notifyOne();
}

void
TaskThread::drain()
{
    util::MutexLock lock(mu_);
    const int64_t target = submitted_;
    while (completed_ < target)
        idle_cv_.wait(mu_);
}

int64_t
TaskThread::submitted() const
{
    util::MutexLock lock(mu_);
    return submitted_;
}

int64_t
TaskThread::completed() const
{
    util::MutexLock lock(mu_);
    return completed_;
}

bool
TaskThread::busy() const
{
    util::MutexLock lock(mu_);
    return completed_ < submitted_;
}

void
TaskThread::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            util::MutexLock lock(mu_);
            while (!stop_ && queue_.empty())
                wake_cv_.wait(mu_);
            // Drain remaining tasks even when stopping, so destruction
            // never drops submitted work.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            util::MutexLock lock(mu_);
            ++completed_;
        }
        idle_cv_.notifyAll();
    }
}

} // namespace runtime
} // namespace snip
