/**
 * @file
 * Deterministic parallel execution runtime.
 *
 * A fixed-size, work-stealing-free thread pool plus a parallelFor
 * primitive built on static range partitioning: the loop range is cut
 * into chunks whose boundaries depend only on the range and the grain —
 * never on the number of workers — and each chunk is executed as one
 * self-contained unit. Kernels built on it (GEMM, quantization, stats,
 * eval) therefore produce bit-identical results for ANY thread count:
 * floating-point accumulation order inside a chunk is fixed, and chunks
 * write disjoint outputs. This is the data-parallel partition/join
 * discipline of DaPPA and the Parallel PM model (see PAPERS.md) applied
 * to a CPU pool.
 *
 * Contract for parallelFor bodies: fn(i0, i1) must only write state
 * reachable from indices [i0, i1) (disjoint-write rule) and must not
 * depend on chunk boundaries for its numerics. All library kernels obey
 * this.
 *
 * One pool is shared per process (globalThreadPool()); its size comes
 * from the SNIP_THREADS environment variable, defaulting to
 * std::thread::hardware_concurrency(). Nested parallelFor calls (from
 * inside a worker, or re-entrantly from a caller thread that is already
 * executing chunks) run inline and serial, so composed kernels are
 * deadlock-free by construction.
 */
#ifndef SNIP_RUNTIME_THREAD_POOL_H
#define SNIP_RUNTIME_THREAD_POOL_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace snip {
namespace runtime {

/** Worker count from SNIP_THREADS (clamped to [1, 512]), else
 *  hardware_concurrency(), else 1. */
int defaultThreadCount();

/**
 * Fixed-size thread pool executing chunked index ranges.
 *
 * The pool owns numThreads()-1 worker threads; the thread that submits
 * a parallelFor participates as the remaining worker, so a 1-thread
 * pool spawns no threads at all and runs everything inline.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; <= 0 means defaultThreadCount(). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total workers (including the submitting thread). */
    int numThreads() const { return n_threads_; }

    /**
     * Apply fn(i0, i1) to chunks covering [begin, end).
     *
     * Chunk boundaries are begin + j*grain for j = 0.. — a pure
     * function of (begin, end, grain). Chunks are claimed dynamically
     * but, by the disjoint-write rule, scheduling order cannot affect
     * results. Empty ranges return immediately; grain < 1 is treated
     * as 1. The first exception thrown by fn is rethrown on the
     * calling thread after all chunks finish. Re-entrant calls run
     * inline and serial.
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)> &fn);

    /** True when the current thread is executing a parallelFor chunk
     *  (worker or participating caller). */
    static bool inParallelRegion();

  private:
    struct Job;

    void workerLoop();
    static void runChunks(Job &job);

    int n_threads_;
    std::vector<std::thread> workers_;

    /** Serializes concurrent parallelFor submissions from distinct
     *  non-worker threads (the pool runs one job at a time). Lock
     *  hierarchy: submit_mu_ is taken strictly before mu_, never the
     *  reverse (workers only ever take mu_). */
    util::Mutex submit_mu_ SNIP_ACQUIRED_BEFORE(mu_);

    util::Mutex mu_;
    util::CondVar wake_cv_;
    util::CondVar done_cv_;
    std::shared_ptr<Job> job_ SNIP_GUARDED_BY(mu_);
    /** Recycled Job storage: parallelFor reuses it whenever no
     *  straggling worker still references the previous job, making
     *  steady-state submissions allocation-free (the zero-alloc GEMM
     *  contract, tests/test_workspace.cpp). Only the submitter touches
     *  it, serialized by submit_mu_. */
    std::shared_ptr<Job> job_storage_ SNIP_GUARDED_BY(submit_mu_);
    uint64_t generation_ SNIP_GUARDED_BY(mu_) = 0;
    bool stop_ SNIP_GUARDED_BY(mu_) = false;
};

/** The process-wide shared pool (created on first use). */
ThreadPool &globalThreadPool();

/**
 * Replace the global pool with one of @p threads workers (<= 0 restores
 * the SNIP_THREADS/hardware default). Intended for tests and benches
 * that sweep thread counts; must not race with in-flight parallel work.
 */
void setGlobalThreadCount(int threads);

/** parallelFor on the global pool. */
void parallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)> &fn);

/** @p pool if non-null, else the global pool (helper for call sites
 *  that thread an explicit pool handle through). */
ThreadPool &poolOrGlobal(ThreadPool *pool);

} // namespace runtime
} // namespace snip

#endif // SNIP_RUNTIME_THREAD_POOL_H
