/**
 * @file
 * Process-wide runtime configuration captured from the environment.
 *
 * Historically every subsystem called std::getenv for its own knob
 * (SNIP_THREADS in the thread pool, SNIP_SIMD in the dispatcher, ...)
 * at first use, which made it impossible to answer "what configuration
 * is this process actually running under?" without replicating each
 * parser. EnvConfig centralizes the capture and the parsing: the
 * environment is read once, on first use, into an immutable snapshot
 * that every subsystem resolves its knob from and that benches can
 * print verbatim via dump().
 *
 * Knobs:
 *   SNIP_THREADS    worker count for the global pool (>=1, capped 512)
 *   SNIP_SIMD       kernel backend: auto|avx2|scalar
 *   SNIP_GEMM_PACK  packed-GEMM policy: auto|on|off
 *   SNIP_ATTN       attention scheduling: par|serial
 *   SNIP_TELEMETRY  telemetry sink: off|on|json:<path>
 *   SNIP_TRACE      span-trace sink: off|on|json:<path>
 *   SNIP_KV_CACHE   serving KV-cache storage: fp8|fp32
 *   SNIP_KV_PAGE    serving KV-cache page size in tokens (1..4096)
 *   SNIP_FAULT      fault-injection schedule:
 *                   <site>:<n|every-k|p=x[@seed]>[,...] (off when
 *                   unset; see runtime/fault_injection.h)
 *
 * Only the knobs whose grammar is owned here (threads, KV page size)
 * are parsed eagerly; the string-valued specs are handed to their
 * owning modules (simd::, gemmPackMode(), ...) untouched so the parse
 * warnings keep firing from the subsystem that understands them.
 */
#ifndef SNIP_RUNTIME_ENV_CONFIG_H
#define SNIP_RUNTIME_ENV_CONFIG_H

#include <cstdint>
#include <string>

namespace snip {
namespace runtime {

/** One captured environment variable: present/absent plus raw text. */
struct EnvKnob
{
    bool set = false;
    std::string value;

    /** The captured text, or null when the variable was unset —
     *  exactly what std::getenv would have returned at capture time. */
    const char *
    cstrOrNull() const
    {
        return set ? value.c_str() : nullptr;
    }
};

/** Immutable snapshot of every SNIP_* environment knob. */
class EnvConfig
{
  public:
    /** Read the current environment into a fresh snapshot. */
    static EnvConfig fromEnvironment();

    /** Parsed SNIP_THREADS: the historical defaultThreadCount()
     *  contract (valid integer >= 1 capped at 512; otherwise a warning
     *  and std::thread::hardware_concurrency, floored at 1). */
    int threads() const { return threads_; }

    /** Parsed SNIP_KV_PAGE: tokens per KV-cache page, default 16,
     *  clamped to [1, 4096] with a warning on invalid input. */
    int64_t kvPageTokens() const { return kv_page_tokens_; }

    const EnvKnob &threadsKnob() const { return threads_knob_; }
    const EnvKnob &simd() const { return simd_; }
    const EnvKnob &gemmPack() const { return gemm_pack_; }
    const EnvKnob &attn() const { return attn_; }
    const EnvKnob &telemetry() const { return telemetry_; }
    const EnvKnob &trace() const { return trace_; }
    const EnvKnob &kvCache() const { return kv_cache_; }
    const EnvKnob &kvPage() const { return kv_page_; }
    const EnvKnob &fault() const { return fault_; }

    /** Human-readable multi-line rendering of every knob: the
     *  effective value plus the raw environment text (or "unset"). */
    std::string dump() const;

  private:
    EnvKnob threads_knob_;
    EnvKnob simd_;
    EnvKnob gemm_pack_;
    EnvKnob attn_;
    EnvKnob telemetry_;
    EnvKnob trace_;
    EnvKnob kv_cache_;
    EnvKnob kv_page_;
    EnvKnob fault_;
    int threads_ = 1;
    int64_t kv_page_tokens_ = 16;
};

/** The process-wide snapshot, captured on first use. */
const EnvConfig &envConfig();

/**
 * Re-capture the environment into the process-wide snapshot and
 * return it. Test-only: callers own the race (no in-flight readers),
 * mirroring simd::reinitFromEnv() / setAttnModeByName().
 */
const EnvConfig &reloadEnvConfig();

} // namespace runtime
} // namespace snip

#endif // SNIP_RUNTIME_ENV_CONFIG_H
