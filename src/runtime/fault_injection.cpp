#include "runtime/fault_injection.h"

#include <cmath>
#include <cstdlib>
#include <map>
#include <string_view>
#include <vector>

#include "runtime/env_config.h"
#include "telemetry/telemetry.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace snip {
namespace fault {

namespace detail {

std::atomic<int> g_mode{-1};

} // namespace detail

namespace {

constexpr uint64_t kDefaultSeed = 0x5EEDull;

enum class TriggerKind
{
    Nth,    ///< fire on exactly the n-th hit
    EveryK, ///< fire on hits k, 2k, 3k, ...
    Prob,   ///< fire each hit with probability p (own Rng stream)
};

struct Site
{
    TriggerKind kind = TriggerKind::Nth;
    uint64_t n = 0; ///< Nth/EveryK operand
    double p = 0.0; ///< Prob operand
    Rng rng{0};     ///< Prob stream (seeded per site at install)
    int64_t hits = 0;
    int64_t injected = 0;
};

/** Schedule + counters behind every armed evaluation. The hot path
 *  never reaches here while disarmed. The transparent comparator lets
 *  shouldInject look up a `const char *` site without constructing a
 *  std::string. */
struct Registry
{
    util::Mutex mu;
    std::map<std::string, Site, std::less<>> sites SNIP_GUARDED_BY(mu);
    int64_t total_injected SNIP_GUARDED_BY(mu) = 0;
};

Registry &
registry()
{
    static Registry *r = new Registry; // leaked, like env_config
    return *r;
}

/** FNV-1a, mixing the site name into the per-site Prob seed so two
 *  sites sharing one spec seed still draw decorrelated streams. */
uint64_t
hashSiteName(const std::string &name)
{
    uint64_t h = 0xCBF29CE484222325ull;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

bool
parseU64(std::string_view text, uint64_t *out)
{
    if (text.empty())
        return false;
    uint64_t v = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = v;
    return true;
}

/** One `<site>:<trigger>` clause -> (name, Site). */
bool
parseClause(std::string_view clause, std::string *name, Site *site)
{
    const size_t colon = clause.find(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 >= clause.size())
        return false;
    *name = std::string(clause.substr(0, colon));
    std::string_view trig = clause.substr(colon + 1);

    if (trig.substr(0, 6) == "every-") {
        site->kind = TriggerKind::EveryK;
        return parseU64(trig.substr(6), &site->n) && site->n > 0;
    }
    if (trig.substr(0, 2) == "p=") {
        site->kind = TriggerKind::Prob;
        std::string_view prob = trig.substr(2);
        uint64_t seed = kDefaultSeed;
        const size_t at = prob.find('@');
        if (at != std::string_view::npos) {
            if (!parseU64(prob.substr(at + 1), &seed))
                return false;
            prob = prob.substr(0, at);
        }
        char *end = nullptr;
        const std::string prob_str(prob);
        site->p = std::strtod(prob_str.c_str(), &end);
        // NaN compares false against both bounds — reject it
        // explicitly or strtod("nan") slips through as a schedule
        // that never fires.
        if (end == prob_str.c_str() || *end != '\0' ||
            !std::isfinite(site->p) || site->p < 0.0 || site->p > 1.0)
            return false;
        site->rng = Rng(seed ^ hashSiteName(*name));
        return true;
    }
    site->kind = TriggerKind::Nth;
    return parseU64(trig, &site->n) && site->n > 0;
}

bool
parseSpec(std::string_view spec,
          std::vector<std::pair<std::string, Site>> *out)
{
    while (!spec.empty()) {
        const size_t comma = spec.find(',');
        const std::string_view clause = spec.substr(0, comma);
        std::string name;
        Site site;
        if (!parseClause(clause, &name, &site))
            return false;
        out->emplace_back(std::move(name), site);
        spec = comma == std::string_view::npos
                   ? std::string_view{}
                   : spec.substr(comma + 1);
    }
    return true;
}

} // namespace

namespace detail {

int
resolveMode()
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    int mode = g_mode.load(std::memory_order_acquire);
    if (mode >= 0)
        return mode; // raced with another resolver/configure()
    const char *spec = runtime::envConfig().fault().cstrOrNull();
    std::vector<std::pair<std::string, Site>> parsed;
    if (spec != nullptr && *spec != '\0' &&
        std::string_view(spec) != "off" &&
        !parseSpec(spec, &parsed)) {
        warn("unknown SNIP_FAULT value '", spec,
             "' (expected <site>:<n|every-k|p=x[@seed]>[,...]); fault "
             "injection disabled");
        parsed.clear();
    }
    reg.sites.clear();
    reg.total_injected = 0;
    for (auto &entry : parsed)
        reg.sites[entry.first] = entry.second;
    mode = reg.sites.empty() ? 0 : 1;
    g_mode.store(mode, std::memory_order_release);
    return mode;
}

bool
shouldInject(const char *site)
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    auto it = reg.sites.find(std::string_view(site));
    if (it == reg.sites.end())
        return false;
    Site &s = it->second;
    ++s.hits;
    bool fire = false;
    switch (s.kind) {
        case TriggerKind::Nth:
            fire = static_cast<uint64_t>(s.hits) == s.n;
            break;
        case TriggerKind::EveryK:
            fire = static_cast<uint64_t>(s.hits) % s.n == 0;
            break;
        case TriggerKind::Prob:
            fire = s.rng.nextBernoulli(s.p);
            break;
    }
    if (fire) {
        ++s.injected;
        ++reg.total_injected;
        warn("fault injected: ", site, " (hit ", s.hits, ")");
        telemetry::count(telemetry::Counter::FaultsInjected);
    }
    return fire;
}

} // namespace detail

bool
configureFromSpec(const char *spec)
{
    std::vector<std::pair<std::string, Site>> parsed;
    if (spec != nullptr && *spec != '\0' &&
        std::string_view(spec) != "off" && !parseSpec(spec, &parsed))
        return false;
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    reg.sites.clear();
    reg.total_injected = 0;
    for (auto &entry : parsed)
        reg.sites[entry.first] = entry.second;
    detail::g_mode.store(reg.sites.empty() ? 0 : 1,
                         std::memory_order_release);
    return true;
}

void
reset()
{
    configureFromSpec(nullptr);
}

int64_t
siteHits(const std::string &site)
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    auto it = reg.sites.find(site);
    return it == reg.sites.end() ? 0 : it->second.hits;
}

int64_t
siteInjected(const std::string &site)
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    auto it = reg.sites.find(site);
    return it == reg.sites.end() ? 0 : it->second.injected;
}

int64_t
totalInjected()
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    return reg.total_injected;
}

} // namespace fault
} // namespace snip
