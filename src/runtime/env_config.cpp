#include "runtime/env_config.h"

#include <cstdlib>
#include <thread>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"

namespace snip {
namespace runtime {

namespace {

EnvKnob
captureKnob(const char *name)
{
    EnvKnob k;
    if (const char *v = std::getenv(name)) {
        k.set = true;
        k.value = v;
    }
    return k;
}

int
parseThreads(const EnvKnob &knob)
{
    if (knob.set) {
        const char *env = knob.value.c_str();
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && v >= 1)
            return static_cast<int>(std::min<long>(v, 512));
        warn("ignoring invalid SNIP_THREADS value '", env, "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

int64_t
parseKvPage(const EnvKnob &knob)
{
    constexpr int64_t kDefault = 16;
    if (!knob.set)
        return kDefault;
    const char *env = knob.value.c_str();
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 1) {
        warn("ignoring invalid SNIP_KV_PAGE value '", env, "'");
        return kDefault;
    }
    return std::min<long>(v, 4096);
}

void
appendKnob(std::string *out, const char *name, const EnvKnob &knob,
           const std::string &effective)
{
    out->append(strformat("  %-14s = %-10s (%s)\n", name,
                          effective.c_str(),
                          knob.set
                              ? ("env \"" + knob.value + "\"").c_str()
                              : "unset"));
}

util::Mutex g_mu;
// Intentionally leaked so late readers (static destructors, atexit
// telemetry flushes) never see a destroyed snapshot. The POINTER is
// guarded; the snapshot it points at is immutable after publication
// (reloadEnvConfig is a test-only seam, documented in the header).
EnvConfig *g_config SNIP_GUARDED_BY(g_mu) = nullptr;

} // namespace

EnvConfig
EnvConfig::fromEnvironment()
{
    EnvConfig c;
    c.threads_knob_ = captureKnob("SNIP_THREADS");
    c.simd_ = captureKnob("SNIP_SIMD");
    c.gemm_pack_ = captureKnob("SNIP_GEMM_PACK");
    c.attn_ = captureKnob("SNIP_ATTN");
    c.telemetry_ = captureKnob("SNIP_TELEMETRY");
    c.trace_ = captureKnob("SNIP_TRACE");
    c.kv_cache_ = captureKnob("SNIP_KV_CACHE");
    c.kv_page_ = captureKnob("SNIP_KV_PAGE");
    c.fault_ = captureKnob("SNIP_FAULT");
    c.threads_ = parseThreads(c.threads_knob_);
    c.kv_page_tokens_ = parseKvPage(c.kv_page_);
    return c;
}

std::string
EnvConfig::dump() const
{
    std::string out = "runtime config:\n";
    appendKnob(&out, "SNIP_THREADS", threads_knob_,
               strformat("%d", threads_));
    appendKnob(&out, "SNIP_SIMD", simd_,
               simd_.set ? simd_.value : "auto");
    appendKnob(&out, "SNIP_GEMM_PACK", gemm_pack_,
               gemm_pack_.set ? gemm_pack_.value : "auto");
    appendKnob(&out, "SNIP_ATTN", attn_, attn_.set ? attn_.value : "par");
    appendKnob(&out, "SNIP_TELEMETRY", telemetry_,
               telemetry_.set ? telemetry_.value : "off");
    appendKnob(&out, "SNIP_TRACE", trace_,
               trace_.set ? trace_.value : "off");
    appendKnob(&out, "SNIP_KV_CACHE", kv_cache_,
               kv_cache_.set ? kv_cache_.value : "fp8");
    appendKnob(&out, "SNIP_KV_PAGE", kv_page_,
               strformat("%lld",
                         static_cast<long long>(kv_page_tokens_)));
    appendKnob(&out, "SNIP_FAULT", fault_,
               fault_.set ? fault_.value : "off");
    return out;
}

const EnvConfig &
envConfig()
{
    util::MutexLock lk(g_mu);
    if (g_config == nullptr)
        g_config = new EnvConfig(EnvConfig::fromEnvironment());
    return *g_config;
}

const EnvConfig &
reloadEnvConfig()
{
    util::MutexLock lk(g_mu);
    if (g_config == nullptr)
        g_config = new EnvConfig;
    *g_config = EnvConfig::fromEnvironment();
    return *g_config;
}

} // namespace runtime
} // namespace snip
