/**
 * @file
 * Zero-steady-state-allocation scratch memory for the packed GEMM path.
 *
 * A WorkspaceArena is a bump allocator over one large 64-byte-aligned
 * slab. Requests are served by advancing a watermark; ArenaScope
 * restores the watermark on destruction, so a caller's transient
 * buffers (packed panels, scale tables) vanish without any free. When
 * a request overflows the slab the arena remembers the high-water
 * mark, and the next reset() re-allocates one slab big enough for the
 * whole episode — after at most one warm-up pass the arena never
 * touches the heap again (tests/test_workspace.cpp counts allocations
 * to hold it to that).
 *
 * One arena exists per thread (forCurrentThread()), covering both
 * pool workers packing their A-panels and caller threads staging the
 * shared B-panel. Buffers are plain float storage: no constructors,
 * no ownership — a pointer is valid until the enclosing ArenaScope
 * closes or reset() is called. Arenas are not thread-safe and never
 * shared; passing an arena pointer to another thread is a bug, but
 * *reading* memory obtained from another thread's arena (the shared
 * packed-B panel) is fine for the lifetime of its scope.
 */
#ifndef SNIP_RUNTIME_WORKSPACE_ARENA_H
#define SNIP_RUNTIME_WORKSPACE_ARENA_H

#include <cstddef>
#include <cstdint>

namespace snip {
namespace runtime {

class WorkspaceArena
{
  public:
    WorkspaceArena() = default;
    ~WorkspaceArena();

    WorkspaceArena(const WorkspaceArena &) = delete;
    WorkspaceArena &operator=(const WorkspaceArena &) = delete;

    /**
     * A 64-byte-aligned buffer of @p count floats, valid until the
     * enclosing ArenaScope closes (or reset()). Grows the slab when
     * the episode needs more than any previous one did.
     */
    float *getFloats(size_t count);

    /** Rewind the watermark to zero and, if the last episode
     *  overflowed into spill blocks, coalesce into one slab. */
    void reset();

    /** Current watermark (bytes handed out since the last reset). */
    size_t used() const { return used_; }

    /** Slab bytes owned (stable in steady state; tests assert on it). */
    size_t reservedBytes() const { return slab_bytes_ + spill_bytes_; }

    /** Heap allocations the arena has performed since construction
     *  (slab growth); stable in steady state. */
    int64_t allocCount() const { return alloc_count_; }

    /** The calling thread's arena (created on first use). */
    static WorkspaceArena &forCurrentThread();

  private:
    char *slab_ = nullptr;      ///< main slab (aligned)
    size_t slab_bytes_ = 0;
    size_t used_ = 0;           ///< watermark within the episode
    size_t spill_bytes_ = 0;    ///< overflow blocks live this episode
    int64_t alloc_count_ = 0;

    struct Spill;
    Spill *spills_ = nullptr;   ///< singly-linked overflow blocks

    friend class ArenaScope;
};

/** RAII watermark: buffers obtained inside the scope are released
 *  (watermark rewound) when it closes. Scopes nest. */
class ArenaScope
{
  public:
    explicit ArenaScope(WorkspaceArena &arena)
        : arena_(arena), saved_(arena.used_)
    {
    }
    ~ArenaScope()
    {
        arena_.used_ = saved_;
        if (saved_ == 0)
            arena_.reset(); // top-level close: coalesce any spills
    }

    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

  private:
    WorkspaceArena &arena_;
    size_t saved_;
};

} // namespace runtime
} // namespace snip

#endif // SNIP_RUNTIME_WORKSPACE_ARENA_H
