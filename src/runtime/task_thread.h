/**
 * @file
 * A single dedicated background executor.
 *
 * TaskThread complements ThreadPool: the pool runs *data-parallel*
 * chunked loops on the trainer's critical path, while a TaskThread runs
 * whole *tasks* (e.g. an ILP solve) off the critical path, one at a
 * time, in submission order. Keeping the two separate means background
 * work never contends for the pool's job slot with the kernels the
 * trainer is executing — the pool serializes concurrent submissions, so
 * routing long-running background tasks through it would stall training.
 *
 * The worker thread is started lazily on the first submit(), so a
 * TaskThread that is never used (e.g. a controller in inline mode)
 * costs nothing. Tasks run strictly FIFO; drain() blocks until every
 * previously submitted task has finished. The destructor drains and
 * joins.
 */
#ifndef SNIP_RUNTIME_TASK_THREAD_H
#define SNIP_RUNTIME_TASK_THREAD_H

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>

#include "util/thread_annotations.h"

namespace snip {
namespace runtime {

/** FIFO single-thread task executor (see file comment). */
class TaskThread
{
  public:
    TaskThread() = default;
    ~TaskThread();

    TaskThread(const TaskThread &) = delete;
    TaskThread &operator=(const TaskThread &) = delete;

    /** Enqueue @p fn; starts the worker on first use. Tasks must not
     *  throw (a throwing task panics — background work has no caller
     *  to rethrow into). */
    void submit(std::function<void()> fn);

    /** Block until all tasks submitted so far have completed. */
    void drain();

    /** Tasks submitted / completed so far (monotonic counters). */
    int64_t submitted() const;
    int64_t completed() const;

    /** True when a task is queued or running. */
    bool busy() const;

  private:
    void workerLoop();

    mutable util::Mutex mu_;
    util::CondVar wake_cv_;
    util::CondVar idle_cv_;
    std::deque<std::function<void()>> queue_ SNIP_GUARDED_BY(mu_);
    /** Started (at most once) under mu_ by the first submit(); joined
     *  by the destructor after stop_ is set, when no other thread may
     *  touch this object anymore — so the join itself needs no lock. */
    std::thread worker_;
    int64_t submitted_ SNIP_GUARDED_BY(mu_) = 0;
    int64_t completed_ SNIP_GUARDED_BY(mu_) = 0;
    bool started_ SNIP_GUARDED_BY(mu_) = false;
    bool stop_ SNIP_GUARDED_BY(mu_) = false;
};

} // namespace runtime
} // namespace snip

#endif // SNIP_RUNTIME_TASK_THREAD_H
