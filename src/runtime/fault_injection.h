/**
 * @file
 * Deterministic fault injection for the durable-state and overload
 * seams (checkpoint writes, solve-cache load/rewrite, telemetry
 * export, KV page allocation, serve admission, scheme solves).
 *
 * A fault *site* is a named branch compiled into production code:
 *
 *   if (SNIP_FAULT_POINT("ckpt.rename")) { <fail like a crash here> }
 *
 * Sites follow the SNIP_TRACE zero-overhead discipline: disabled
 * (SNIP_FAULT unset — the production configuration), every site is one
 * relaxed atomic flag load and a predicted branch, no allocation, no
 * lock, no clock — so arming the framework in tests cannot change what
 * ships, and leaving it off provably changes nothing (test_faults.cpp
 * pins bit-identical training/serving at 1/2/8 threads).
 *
 * Schedules come from the SNIP_FAULT environment variable (captured
 * once via runtime/env_config) or configureFromSpec():
 *
 *   SNIP_FAULT=<site>:<trigger>[,<site>:<trigger>...]
 *
 * with three trigger forms:
 *
 *   <n>          fire on exactly the n-th hit of the site (1-based)
 *   every-<k>    fire on every k-th hit (k, 2k, 3k, ...)
 *   p=<x>[@<s>]  fire each hit with probability x, drawn from a
 *                dedicated per-site xoshiro256** stream seeded by
 *                s (default 0x5EED) mixed with the site name — so a
 *                probabilistic schedule is a pure function of the
 *                spec and the hit sequence, bit-reproducible across
 *                runs and never entangled with any model RNG.
 *
 * Example: SNIP_FAULT=ckpt.rename:2,kv.alloc:every-7,serve.admit:p=0.1
 *
 * Every injection is logged (warn) and counted in telemetry
 * (Counter::FaultsInjected); per-site hit/injection counts are
 * queryable for test assertions.
 */
#ifndef SNIP_RUNTIME_FAULT_INJECTION_H
#define SNIP_RUNTIME_FAULT_INJECTION_H

#include <atomic>
#include <cstdint>
#include <string>

namespace snip {
namespace fault {

namespace detail {

/** -1 = unresolved (parse SNIP_FAULT on first use), 0 = off,
 *  1 = armed (at least one site scheduled). */
extern std::atomic<int> g_mode;

int resolveMode();

/** Slow path behind an armed SNIP_FAULT_POINT: bump the site's hit
 *  counter and evaluate its trigger. Unscheduled sites return false
 *  (and are not tracked). */
bool shouldInject(const char *site);

inline bool
on()
{
    int mode = g_mode.load(std::memory_order_relaxed);
    if (mode < 0)
        mode = resolveMode();
    return mode == 1;
}

} // namespace detail

/** True when a fault schedule is armed (hot-path fast check). */
inline bool
enabled()
{
    return detail::on();
}

/** Parse a SNIP_FAULT-style spec and install it, replacing any
 *  previous schedule and zeroing all counters. nullptr, "" and "off"
 *  disarm. Returns false (schedule unchanged) on a malformed spec. */
bool configureFromSpec(const char *spec);

/** Disarm and clear every schedule and counter (test teardown). */
void reset();

/** Times @p site has been evaluated while armed. */
int64_t siteHits(const std::string &site);

/** Times @p site actually fired. */
int64_t siteInjected(const std::string &site);

/** Total injections across all sites since the last configure/reset. */
int64_t totalInjected();

} // namespace fault
} // namespace snip

/**
 * One named fault site. Evaluates to true when the armed schedule
 * says this hit of @p site fails; false (one relaxed load + branch)
 * whenever fault injection is off. @p site must be a string literal.
 */
#define SNIP_FAULT_POINT(site)                                         \
    (::snip::fault::detail::on() &&                                    \
     ::snip::fault::detail::shouldInject(site))

#endif // SNIP_RUNTIME_FAULT_INJECTION_H
