#include "runtime/workspace_arena.h"

#include <algorithm>
#include <cstdlib>
#include <new>

#include "telemetry/telemetry.h"

namespace snip {
namespace runtime {

namespace {

constexpr size_t kAlign = 64;
constexpr size_t kMinSlabBytes = size_t{1} << 20; // 1 MiB

size_t
roundUp(size_t v, size_t a)
{
    return (v + a - 1) / a * a;
}

char *
alignedAlloc(size_t bytes)
{
    // operator new with alignment keeps the arena visible to the
    // allocation-counting tests (they interpose operator new).
    return static_cast<char *>(
        ::operator new(bytes, std::align_val_t{kAlign}));
}

void
alignedFree(char *p)
{
    ::operator delete(p, std::align_val_t{kAlign});
}

} // namespace

/** Overflow block: used only in the episode that first outgrows the
 *  slab; reset() folds its size into the next slab and frees it. */
struct WorkspaceArena::Spill
{
    Spill *next;
    size_t bytes;
    char *data;
};

WorkspaceArena::~WorkspaceArena()
{
    reset();                 // fold spills into the accounting
    alignedFree(slab_);
}

float *
WorkspaceArena::getFloats(size_t count)
{
    const size_t bytes = roundUp(count * sizeof(float), kAlign);
    if (used_ + bytes <= slab_bytes_) {
        float *p = reinterpret_cast<float *>(slab_ + used_);
        used_ += bytes;
        telemetry::gaugeMax(telemetry::MaxGauge::ArenaHighWaterBytes,
                            static_cast<int64_t>(used_ + spill_bytes_));
        return p;
    }
    if (used_ == 0) {
        // Empty arena: grow the slab in place of spilling.
        alignedFree(slab_);
        slab_bytes_ = std::max(roundUp(bytes, kAlign), kMinSlabBytes);
        slab_ = alignedAlloc(slab_bytes_);
        ++alloc_count_;
        used_ = bytes;
        telemetry::gaugeMax(telemetry::MaxGauge::ArenaHighWaterBytes,
                            static_cast<int64_t>(used_));
        telemetry::gaugeSet(telemetry::LastGauge::ArenaReservedBytes,
                            static_cast<int64_t>(reservedBytes()));
        return reinterpret_cast<float *>(slab_);
    }
    // Mid-episode overflow: live buffers pin the slab, so satisfy the
    // request from a spill block; reset() coalesces afterwards.
    Spill *s = new Spill;
    ++alloc_count_;
    s->bytes = bytes;
    s->data = alignedAlloc(bytes);
    ++alloc_count_;
    s->next = spills_;
    spills_ = s;
    spill_bytes_ += bytes;
    telemetry::gaugeMax(telemetry::MaxGauge::ArenaHighWaterBytes,
                        static_cast<int64_t>(used_ + spill_bytes_));
    telemetry::gaugeSet(telemetry::LastGauge::ArenaReservedBytes,
                        static_cast<int64_t>(reservedBytes()));
    return reinterpret_cast<float *>(s->data);
}

void
WorkspaceArena::reset()
{
    used_ = 0;
    if (spills_ == nullptr)
        return;
    size_t total = slab_bytes_ + spill_bytes_;
    while (spills_) {
        Spill *s = spills_;
        spills_ = s->next;
        alignedFree(s->data);
        delete s;
    }
    spill_bytes_ = 0;
    alignedFree(slab_);
    slab_bytes_ = roundUp(total, kAlign);
    slab_ = alignedAlloc(slab_bytes_);
    ++alloc_count_;
    telemetry::gaugeSet(telemetry::LastGauge::ArenaReservedBytes,
                        static_cast<int64_t>(reservedBytes()));
}

WorkspaceArena &
WorkspaceArena::forCurrentThread()
{
    static thread_local WorkspaceArena arena;
    return arena;
}

} // namespace runtime
} // namespace snip
