#include "runtime/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "runtime/env_config.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/logging.h"

namespace snip {
namespace runtime {

namespace {

/** Set while the current thread executes chunks (worker or caller), so
 *  nested parallelFor calls degrade to inline serial execution. */
thread_local bool t_in_parallel_region = false;

} // namespace

int
defaultThreadCount()
{
    return envConfig().threads();
}

/** One parallelFor invocation. Heap-held via shared_ptr so a worker
 *  that wakes late can never touch a dead job. */
struct ThreadPool::Job
{
    int64_t begin = 0;
    int64_t grain = 1;
    int64_t n_chunks = 0;
    const std::function<void(int64_t, int64_t)> *fn = nullptr;
    int64_t end = 0;

    std::atomic<int64_t> next_chunk{0};
    std::atomic<int64_t> done_chunks{0};
    /** Workers currently inside runChunks for this job (incremented
     *  under mu_ when a worker picks the job up). The submitter only
     *  recycles the storage once this drops to zero, so a straggler
     *  that finished its chunks but is still unwinding can never see
     *  the fields reinitialized under it. */
    std::atomic<int> active_workers{0};

    util::Mutex err_mu;
    /** First exception thrown by a chunk; rethrown by the submitter.
     *  The final read happens after all chunks completed (the
     *  done_chunks acquire), but taking err_mu there too keeps the
     *  contract machine-checked at negligible cost. */
    std::exception_ptr error SNIP_GUARDED_BY(err_mu);
};

ThreadPool::ThreadPool(int threads)
    : n_threads_(threads > 0 ? threads : defaultThreadCount())
{
    workers_.reserve(static_cast<size_t>(n_threads_ - 1));
    for (int i = 0; i < n_threads_ - 1; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        util::MutexLock lk(mu_);
        stop_ = true;
    }
    wake_cv_.notifyAll();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::inParallelRegion()
{
    return t_in_parallel_region;
}

void
ThreadPool::runChunks(Job &job)
{
    const bool telem = telemetry::enabled();
    const auto busy0 = telem ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point();
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    for (;;) {
        // Relaxed: the ticket only claims an index; the chunk's
        // output is published by the done_chunks release below.
        const int64_t chunk =
            job.next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= job.n_chunks)
            break;
        const int64_t i0 = job.begin + chunk * job.grain;
        const int64_t i1 = std::min(i0 + job.grain, job.end);
        try {
            (*job.fn)(i0, i1);
        } catch (...) {
            util::MutexLock lk(job.err_mu);
            if (!job.error)
                job.error = std::current_exception();
        }
        // Release: publishes this chunk's writes (and any stored
        // exception) to the submitter's acquire load in parallelFor.
        job.done_chunks.fetch_add(1, std::memory_order_release);
    }
    t_in_parallel_region = was_in_region;
    if (telem)
        telemetry::addSeconds(
            telemetry::Seconds::PoolBusy,
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - busy0)
                .count());
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            util::MutexLock lk(mu_);
            while (!stop_ && generation_ == seen)
                wake_cv_.wait(mu_);
            if (stop_)
                return;
            seen = generation_;
            job = job_;
            if (job)
                job->active_workers.fetch_add(
                    1, std::memory_order_relaxed);
        }
        if (!job)
            continue;
        runChunks(*job);
        // Read completion BEFORE dropping the active count: after the
        // decrement the submitter may recycle the Job's fields.
        // Acquire pairs with the other workers' release increments:
        // whoever observes the last chunk retired wakes the submitter.
        const bool all_done =
            job->done_chunks.load(std::memory_order_acquire) >=
            job->n_chunks;
        job->active_workers.fetch_sub(1, std::memory_order_release);
        if (all_done) {
            util::MutexLock lk(mu_);
            done_cv_.notifyAll();
        }
    }
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const std::function<void(int64_t, int64_t)> &fn)
{
    if (end <= begin)
        return;
    if (grain < 1)
        grain = 1;
    const int64_t n = end - begin;
    const int64_t n_chunks = (n + grain - 1) / grain;

    // Sampled span (1 in 16 per submitter): B*H fan-outs issue
    // thousands of jobs per step and would flood the flight recorder.
    static thread_local uint32_t t_trace_tick = 0;
    const bool traced =
        trace::enabled() && ((++t_trace_tick & 15u) == 0);
    trace::TraceScope trace_span(traced, trace::Category::Pool,
                                 "parallel_for", "n", n, "chunks",
                                 n_chunks);

    // Counted on every path (inline included) so job/chunk totals are
    // thread-count invariant: the chunking never depends on n_threads_.
    const bool telem = telemetry::enabled();
    const auto wall0 = telem ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point();
    if (telem) {
        telemetry::count(telemetry::Counter::PoolJobs);
        telemetry::count(telemetry::Counter::PoolChunks, n_chunks);
    }

    // Inline serial path: 1-thread pool, a single chunk, or a nested
    // call from inside a parallel region. Chunk boundaries are identical
    // to the parallel path, so numerics cannot differ.
    if (n_threads_ == 1 || n_chunks == 1 || t_in_parallel_region) {
        for (int64_t c = 0; c < n_chunks; ++c) {
            const int64_t i0 = begin + c * grain;
            fn(i0, std::min(i0 + grain, end));
        }
        if (telem) {
            const double s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 wall0)
                                 .count();
            telemetry::addSeconds(telemetry::Seconds::PoolWall, s);
            telemetry::addSeconds(telemetry::Seconds::PoolBusy, s);
            telemetry::recordTimer(telemetry::Timer::PoolJob, s);
        }
        return;
    }

    util::MutexLock submit_lk(submit_mu_);

    // Reuse the recycled Job unless a straggling worker from the
    // previous submission is still unwinding (acquire pairs with the
    // worker's release decrement; a stale non-zero read just costs one
    // allocation).
    std::shared_ptr<Job> job;
    if (job_storage_ &&
        job_storage_->active_workers.load(std::memory_order_acquire) ==
            0) {
        job = job_storage_;
        job->next_chunk.store(0, std::memory_order_relaxed);
        job->done_chunks.store(0, std::memory_order_relaxed);
        {
            util::MutexLock err_lk(job->err_mu);
            job->error = nullptr;
        }
    } else {
        job = std::make_shared<Job>();
        job_storage_ = job;
    }
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->n_chunks = n_chunks;
    job->fn = &fn;

    {
        util::MutexLock lk(mu_);
        job_ = job;
        ++generation_;
    }
    wake_cv_.notifyAll();

    // The submitting thread works too.
    runChunks(*job);

    {
        util::MutexLock lk(mu_);
        // Acquire pairs with each worker's release increment, making
        // every chunk's writes visible to the submitter.
        while (job->done_chunks.load(std::memory_order_acquire) <
               job->n_chunks)
            done_cv_.wait(mu_);
        job_.reset();
    }

    if (telem) {
        const double s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall0)
                .count();
        telemetry::addSeconds(telemetry::Seconds::PoolWall, s);
        telemetry::recordTimer(telemetry::Timer::PoolJob, s);
    }

    {
        util::MutexLock err_lk(job->err_mu);
        if (job->error)
            std::rethrow_exception(job->error);
    }
}

namespace {

util::Mutex g_pool_mu;
// Intentionally leaked: a static destructor would join worker threads
// at exit, which deadlocks or crashes in processes that fork() with
// the pool alive (gtest death tests) and is hostage to static
// destruction order. The OS reclaims the threads at process exit.
ThreadPool *g_pool SNIP_GUARDED_BY(g_pool_mu) = nullptr;

} // namespace

ThreadPool &
globalThreadPool()
{
    util::MutexLock lk(g_pool_mu);
    if (!g_pool)
        g_pool = new ThreadPool();
    return *g_pool;
}

void
setGlobalThreadCount(int threads)
{
    util::MutexLock lk(g_pool_mu);
    delete g_pool; // join old workers before spawning replacements
    g_pool = new ThreadPool(threads);
}

void
parallelFor(int64_t begin, int64_t end, int64_t grain,
            const std::function<void(int64_t, int64_t)> &fn)
{
    globalThreadPool().parallelFor(begin, end, grain, fn);
}

ThreadPool &
poolOrGlobal(ThreadPool *pool)
{
    return pool ? *pool : globalThreadPool();
}

} // namespace runtime
} // namespace snip
