#include "tensor/tensor.h"

#include "util/rng.h"

namespace snip {

namespace {

int64_t
shapeNumel(const std::vector<int64_t> &shape)
{
    int64_t n = 1;
    for (int64_t d : shape) {
        SNIP_ASSERT(d >= 0, "negative dimension");
        n *= d;
    }
    return n;
}

} // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : data_(static_cast<size_t>(shapeNumel(shape)), 0.0f),
      shape_(std::move(shape))
{
}

Tensor::Tensor(int64_t rows, int64_t cols)
    : Tensor(std::vector<int64_t>{rows, cols})
{
}

Tensor
Tensor::zeros(std::vector<int64_t> shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::full(std::vector<int64_t> shape, float value)
{
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor
Tensor::randn(std::vector<int64_t> shape, Rng &rng, float stddev)
{
    Tensor t(std::move(shape));
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = static_cast<float>(rng.nextGaussian()) * stddev;
    return t;
}

Tensor
Tensor::uniform(std::vector<int64_t> shape, Rng &rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = lo + (hi - lo) * rng.nextFloat();
    return t;
}

int64_t
Tensor::size(int i) const
{
    int r = rank();
    if (i < 0)
        i += r;
    SNIP_ASSERT(i >= 0 && i < r, "dimension index out of range");
    return shape_[static_cast<size_t>(i)];
}

void
Tensor::fill(float value)
{
    for (auto &v : data_)
        v = value;
}

Tensor &
Tensor::reshape(std::vector<int64_t> shape)
{
    SNIP_ASSERT(shapeNumel(shape) == numel(), "reshape changes numel");
    shape_ = std::move(shape);
    return *this;
}

} // namespace snip
