/**
 * @file
 * Elementwise and reduction operations on Tensors.
 *
 * All reductions accumulate in double to keep Frobenius norms (the core
 * statistic SNIP collects) accurate even for large tensors.
 */
#ifndef SNIP_TENSOR_OPS_H
#define SNIP_TENSOR_OPS_H

#include <functional>

#include "tensor/tensor.h"

namespace snip {

/** Frobenius norm ||t||_F (ℓ2 norm of the flattened tensor). */
double frobeniusNorm(const Tensor &t);

/** Sum of squared elements. */
double sumSquares(const Tensor &t);

/** Largest |element|; 0 for empty tensors. */
float maxAbs(const Tensor &t);

/** Mean of all elements; 0 for empty tensors. */
double mean(const Tensor &t);

/** ||a - b||_F; shapes must match. */
double diffNorm(const Tensor &a, const Tensor &b);

/** dst += src (same shape). */
void addInPlace(Tensor &dst, const Tensor &src);

/** dst += alpha * src (same shape). */
void addScaled(Tensor &dst, const Tensor &src, float alpha);

/** dst *= alpha. */
void scaleInPlace(Tensor &dst, float alpha);

/** Elementwise a - b. */
Tensor sub(const Tensor &a, const Tensor &b);

/** Elementwise a + b. */
Tensor add(const Tensor &a, const Tensor &b);

/** Elementwise product a ⊙ b. */
Tensor hadamard(const Tensor &a, const Tensor &b);

/** Apply @p fn to every element in place. */
void apply(Tensor &t, const std::function<float(float)> &fn);

/** Per-row ℓ2 norms of a rank-2 tensor; result has size rows. */
std::vector<double> rowNorms(const Tensor &t);

/** Transpose of a rank-2 tensor. */
Tensor transpose(const Tensor &t);

/** True if any element is NaN or Inf. */
bool hasNonFinite(const Tensor &t);

} // namespace snip

#endif // SNIP_TENSOR_OPS_H
