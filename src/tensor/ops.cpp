#include "tensor/ops.h"

#include <cmath>

#include "simd/dispatch.h"
#include "simd/kernels.h"

namespace snip {

// The three norm/max reductions below are the hot statistics paths
// (Step 1 collects a Frobenius norm per streamed tensor), so they
// dispatch to the active KernelTable backend. Per the backend contract
// (simd/kernels.h): maxAbs is bit-exact across backends; the
// sum-of-squares reductions may differ in low-order bits.

double
sumSquares(const Tensor &t)
{
    return simd::activeKernels().sumSquares(t.data(), t.numel());
}

double
frobeniusNorm(const Tensor &t)
{
    return std::sqrt(sumSquares(t));
}

float
maxAbs(const Tensor &t)
{
    return simd::activeKernels().maxAbs(t.data(), t.numel());
}

double
mean(const Tensor &t)
{
    if (t.numel() == 0)
        return 0.0;
    const float *p = t.data();
    double acc = 0.0;
    for (int64_t i = 0; i < t.numel(); ++i)
        acc += p[i];
    return acc / static_cast<double>(t.numel());
}

double
diffNorm(const Tensor &a, const Tensor &b)
{
    SNIP_ASSERT(a.sameShape(b));
    double sum_sq = 0.0, max_err = 0.0;
    simd::activeKernels().errorStats(a.data(), b.data(), a.numel(),
                                     &sum_sq, &max_err);
    return std::sqrt(sum_sq);
}

void
addInPlace(Tensor &dst, const Tensor &src)
{
    SNIP_ASSERT(dst.sameShape(src));
    float *pd = dst.data();
    const float *ps = src.data();
    for (int64_t i = 0; i < dst.numel(); ++i)
        pd[i] += ps[i];
}

void
addScaled(Tensor &dst, const Tensor &src, float alpha)
{
    SNIP_ASSERT(dst.sameShape(src));
    float *pd = dst.data();
    const float *ps = src.data();
    for (int64_t i = 0; i < dst.numel(); ++i)
        pd[i] += alpha * ps[i];
}

void
scaleInPlace(Tensor &dst, float alpha)
{
    float *pd = dst.data();
    for (int64_t i = 0; i < dst.numel(); ++i)
        pd[i] *= alpha;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    SNIP_ASSERT(a.sameShape(b));
    Tensor out(a.shape());
    float *po = out.data();
    const float *pa = a.data();
    const float *pb = b.data();
    for (int64_t i = 0; i < a.numel(); ++i)
        po[i] = pa[i] - pb[i];
    return out;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    SNIP_ASSERT(a.sameShape(b));
    Tensor out(a.shape());
    float *po = out.data();
    const float *pa = a.data();
    const float *pb = b.data();
    for (int64_t i = 0; i < a.numel(); ++i)
        po[i] = pa[i] + pb[i];
    return out;
}

Tensor
hadamard(const Tensor &a, const Tensor &b)
{
    SNIP_ASSERT(a.sameShape(b));
    Tensor out(a.shape());
    float *po = out.data();
    const float *pa = a.data();
    const float *pb = b.data();
    for (int64_t i = 0; i < a.numel(); ++i)
        po[i] = pa[i] * pb[i];
    return out;
}

void
apply(Tensor &t, const std::function<float(float)> &fn)
{
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = fn(p[i]);
}

std::vector<double>
rowNorms(const Tensor &t)
{
    SNIP_ASSERT(t.rank() == 2);
    int64_t rows = t.size(0), cols = t.size(1);
    std::vector<double> out(static_cast<size_t>(rows), 0.0);
    const float *p = t.data();
    for (int64_t r = 0; r < rows; ++r) {
        double acc = 0.0;
        for (int64_t c = 0; c < cols; ++c) {
            double v = p[r * cols + c];
            acc += v * v;
        }
        out[static_cast<size_t>(r)] = std::sqrt(acc);
    }
    return out;
}

Tensor
transpose(const Tensor &t)
{
    SNIP_ASSERT(t.rank() == 2);
    int64_t rows = t.size(0), cols = t.size(1);
    Tensor out(cols, rows);
    const float *p = t.data();
    float *q = out.data();
    for (int64_t r = 0; r < rows; ++r)
        for (int64_t c = 0; c < cols; ++c)
            q[c * rows + r] = p[r * cols + c];
    return out;
}

bool
hasNonFinite(const Tensor &t)
{
    const float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
        if (!std::isfinite(p[i]))
            return true;
    }
    return false;
}

} // namespace snip
