/**
 * @file
 * Single-precision GEMM: packed cache-blocked pipeline + legacy path.
 *
 * Three transpose variants cover the needs of linear-layer training:
 *   - NT: C[M,N] = A[M,K] * B[N,K]^T   (forward:  Y  = X  W^T)
 *   - NN: C[M,N] = A[M,K] * B[K,N]     (backward: dX = dY W)
 *   - TN: C[M,N] = A[K,M]^T * B[K,N]   (backward: dW = dY^T X)
 *
 * Large shapes run the PACKED pipeline: operand panels are copied once
 * into contiguous, strip-major buffers (simd/kernels.h PackAFn/PackBFn,
 * kGemmPackMR x kGemmPackNR register tiles) staged in per-thread
 * workspace arenas (runtime/workspace_arena.h), and the block
 * microkernel streams them with zero steady-state heap allocations.
 * The quantizing entry points additionally FUSE the nearest-rounding
 * grid-snap quantizer into the pack, so no quantized tensor copy is
 * ever materialized, and an optional PackedWeightCache keeps a
 * weight's packed+quantized panel alive across the GEMMs of one
 * training step. Small shapes (and SNIP_GEMM_PACK=off) run the legacy
 * unpacked kernels unchanged.
 *
 *   SNIP_GEMM_PACK=auto   pack when the shape outgrows the pack
 *                         overhead (default)
 *   SNIP_GEMM_PACK=on     always pack
 *   SNIP_GEMM_PACK=off    never pack (bit-identical to the pre-packed
 *                         library, for A/B comparison)
 *
 * Determinism contract: all paths fan kGemmBlockM-row M-blocks of C
 * out over the thread pool; workers own whole rows of C and every
 * per-element accumulation order is a pure function of the shape, so
 * WITHIN one (backend, packed-or-not) configuration results are
 * bit-identical for any thread count. The packed and unpacked paths
 * may differ from each other in low-order bits (the packed microkernel
 * accumulates each C element k-ascending in one lane; the unpacked NT
 * kernel stripes across 8 lanes and reduces).
 */
#ifndef SNIP_TENSOR_GEMM_H
#define SNIP_TENSOR_GEMM_H

#include <cstdint>
#include <memory>

#include "quant/quantizer.h"
#include "tensor/tensor.h"

namespace snip {

/** C[M,N] (+)= A[M,K] * B[N,K]^T. */
void gemmNT(const float *a, const float *b, float *c, int64_t m, int64_t n,
            int64_t k, bool accumulate = false);

/** C[M,N] (+)= A[M,K] * B[K,N]. */
void gemmNN(const float *a, const float *b, float *c, int64_t m, int64_t n,
            int64_t k, bool accumulate = false);

/** C[M,N] (+)= A[K,M]^T * B[K,N]. */
void gemmTN(const float *a, const float *b, float *c, int64_t m, int64_t n,
            int64_t k, bool accumulate = false);

// ------------------------------------------------ strided-batch GEMM
//
// count independent GEMMs of one shape in a single call: item i reads
// A_i = a + i*a_stride and writes C through the variant-specific
// grouping below. The batched driver fans ITEMS (not M-blocks) over
// the thread pool — each worker owns whole items, so per-item
// accumulation order is identical to running the per-item entry
// points one by one, for any thread count. Whether the batch takes
// the packed pipeline is decided from the aggregate work
// count*m*n*k (gemmBatchedPackEnabled below), NOT the per-item
// shape: attention-style batches of small GEMMs amortize the pack
// cost across the batch. Under SNIP_GEMM_PACK=off every item runs
// the per-item legacy kernels, bit-identical to a loop of
// gemmNT/NN/TN calls.

/**
 * C_i[M,N] (+)= A_i[M,K] * B_{i/group}[N,K]^T for i in [0, count).
 * B_j = b + j*b_stride: @p group consecutive items share one B
 * operand (GQA query heads reading one kv head), whose packed panel
 * is built once and streamed by all of them. count must be a
 * multiple of group.
 */
void gemmBatchedNT(const float *a, int64_t a_stride, const float *b,
                   int64_t b_stride, float *c, int64_t c_stride,
                   int64_t count, int64_t m, int64_t n, int64_t k,
                   int64_t group = 1, bool accumulate = false);

/** C_i[M,N] (+)= A_i[M,K] * B_{i/group}[K,N]; grouping as in NT. */
void gemmBatchedNN(const float *a, int64_t a_stride, const float *b,
                   int64_t b_stride, float *c, int64_t c_stride,
                   int64_t count, int64_t m, int64_t n, int64_t k,
                   int64_t group = 1, bool accumulate = false);

/**
 * C_{i/group}[M,N] (+)= sum over each group of A_i[K,M]^T * B_i[K,N]:
 * here @p group consecutive items REDUCE into one shared C (GQA
 * dK/dV accumulation). Each worker owns whole groups and adds the
 * items of a group in ascending order (each item's product is fully
 * formed in a scratch panel, then added — the same fixed order as a
 * serial compute-then-scatter-add loop), so the reduction is
 * bit-identical for any thread count.
 */
void gemmBatchedTN(const float *a, int64_t a_stride, const float *b,
                   int64_t b_stride, float *c, int64_t c_stride,
                   int64_t count, int64_t m, int64_t n, int64_t k,
                   int64_t group = 1, bool accumulate = false);

/** True when a batch of this aggregate shape takes the packed
 *  pipeline under the active SNIP_GEMM_PACK mode (Auto packs once
 *  count*m*n*k — the amortization unit — outgrows the pack cost). */
bool gemmBatchedPackEnabled(int64_t count, int64_t m, int64_t n,
                            int64_t k);

/** Y = X * W^T for rank-2 tensors X[M,K], W[N,K]. */
Tensor matmulNT(const Tensor &x, const Tensor &w);

/** Y = A * B for rank-2 tensors A[M,K], B[K,N]. */
Tensor matmulNN(const Tensor &a, const Tensor &b);

/** Y = A^T * B for rank-2 tensors A[K,M], B[K,N]. */
Tensor matmulTN(const Tensor &a, const Tensor &b);

// --------------------------------------------------- packed-path mode

/** SNIP_GEMM_PACK spellings. */
enum class GemmPackMode
{
    Auto,
    On,
    Off,
};

/** The active mode (resolves SNIP_GEMM_PACK on first call). */
GemmPackMode gemmPackMode();

/** Select a mode programmatically ("auto" | "on" | "off"); false and
 *  unchanged for unknown names. For tests and benches; must not race
 *  with in-flight GEMMs. */
bool setGemmPackModeByName(const char *name);

/** True when a GEMM of this shape takes the packed pipeline under the
 *  active mode (Auto packs once the work outgrows the pack cost). */
bool gemmPackEnabled(int64_t m, int64_t n, int64_t k);

// ----------------------------------------------- packed-weight cache

/**
 * Per-layer cache of packed (+ fused-quantized) weight panels, one
 * slot per GEMM orientation (Fwd consumes W as the NT B operand, Dgrad
 * as the NN B operand). A hit skips the whole scale-compute + pack
 * phase, so within one training step the weight is packed+quantized
 * once per orientation no matter how many forwards run (stats passes,
 * probes, pipeline microbatches), and the region-scale pass is shared
 * between the orientations when their policies agree.
 *
 * Invalidation: invalidateWeightPacks() (bumped by the optimizer step
 * and checkpoint restore) stales every cache in the process;
 * invalidate() stales one layer (Linear calls it when the weight is
 * mutated through its non-const accessor). Buffers are retained across
 * invalidations, so steady-state repacks allocate nothing.
 *
 * Not thread-safe against concurrent GEMMs on the SAME layer (a layer
 * runs one GEMM at a time by construction); distinct layers may pack
 * concurrently.
 */
class PackedWeightCache
{
  public:
    PackedWeightCache();
    ~PackedWeightCache();

    PackedWeightCache(const PackedWeightCache &) = delete;
    PackedWeightCache &operator=(const PackedWeightCache &) = delete;

    /** Drop validity (weight content changed); keeps the buffers, and
     *  disables implicit reuse for the rest of the current epoch (a
     *  mutable reference may still be live). */
    void invalidate();

    /**
     * True when Linear may hand this cache to the GEMM implicitly:
     * some weight mutator has announced itself at least once
     * (invalidateWeightPacks(), i.e. the single-writer training
     * discipline is established) and no mutable reference escaped this
     * layer during the current epoch. Explicit callers of the
     * gemmPacked* entry points may pass the cache regardless — passing
     * it IS the opt-in.
     */
    bool implicitCachingActive() const;

    struct Impl;
    Impl &impl() { return *impl_; }

  private:
    std::unique_ptr<Impl> impl_;
};

/** Stale every PackedWeightCache in the process. Weight mutators
 *  (optimizer step, checkpoint restore) must call this. */
void invalidateWeightPacks();

/** Current weight-pack epoch: 0 until the first invalidateWeightPacks()
 *  call, then bumped by every one. Caches derived from weights (packed
 *  panels, quantized inference copies) key on this to notice mutation. */
uint64_t weightPackEpoch();

// ------------------------------------- quantizing packed entry points
//
// The packed pipeline with fused quantize-on-pack. aq/bq describe the
// nearest-rounding fake quantization of each operand (null = use the
// operand as-is; stochastic-rounding operands must be materialized by
// the caller first — their RNG stream is order-sensitive). Results are
// bit-identical to quantizing a copy with FakeQuantizer and running
// the packed GEMM on it. These entries always pack regardless of mode
// (callers gate on gemmPackEnabled()); after warm-up they perform zero
// heap allocations (tests/test_workspace.cpp counts).

/** C[M,N] (+)= q(A[M,K]) * q(B[N,K])^T; @p bcache may cache packed B. */
void gemmPackedNT(const float *a, int64_t m, int64_t k,
                  const QuantConfig *aq, const float *b, int64_t n,
                  const QuantConfig *bq, PackedWeightCache *bcache,
                  float *c, bool accumulate = false);

/** C[M,N] (+)= q(A[M,K]) * q(B[K,N]); @p bcache may cache packed B. */
void gemmPackedNN(const float *a, int64_t m, int64_t k,
                  const QuantConfig *aq, const float *b, int64_t n,
                  const QuantConfig *bq, PackedWeightCache *bcache,
                  float *c, bool accumulate = false);

/** C[M,N] (+)= q(A[K,M])^T * q(B[K,N]) (no cache: both Wgrad operands
 *  change every step). */
void gemmPackedTN(const float *a, int64_t m, int64_t k,
                  const QuantConfig *aq, const float *b, int64_t n,
                  const QuantConfig *bq, float *c,
                  bool accumulate = false);

/** Y = q(X) * q(W)^T (packed, fused quantization). */
Tensor quantMatmulNT(const Tensor &x, const QuantConfig *xq,
                     const Tensor &w, const QuantConfig *wq,
                     PackedWeightCache *wcache);

/** Y = q(dY) * q(W) (packed, fused quantization). */
Tensor quantMatmulNN(const Tensor &dy, const QuantConfig *dq,
                     const Tensor &w, const QuantConfig *wq,
                     PackedWeightCache *wcache);

/** dW (+)= q(dY)^T * q(X) (packed, fused quantization). */
void quantGemmTN(const Tensor &dy, const QuantConfig *dq,
                 const Tensor &x, const QuantConfig *xq, Tensor &dw,
                 bool accumulate);

} // namespace snip

#endif // SNIP_TENSOR_GEMM_H
