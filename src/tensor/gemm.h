/**
 * @file
 * Single-precision GEMM kernels.
 *
 * Three transpose variants cover the needs of linear-layer training:
 *   - NT: C[M,N] = A[M,K] * B[N,K]^T   (forward:  Y  = X  W^T)
 *   - NN: C[M,N] = A[M,K] * B[K,N]     (backward: dX = dY W)
 *   - TN: C[M,N] = A[K,M]^T * B[K,N]   (backward: dW = dY^T X)
 * Kernels are cache-blocked and dispatch their inner block microkernel
 * through the runtime-selected SIMD backend (simd/dispatch.h,
 * SNIP_SIMD=auto|avx2|scalar); raw-pointer entry points serve hot
 * paths and Tensor wrappers serve everything else.
 *
 * All three kernels fan M-blocks of C out over the shared thread pool
 * (runtime/thread_pool.h). Workers own whole rows of C and, within one
 * backend, the per-element accumulation order is fixed, so results are
 * bit-identical to the serial kernel for any thread count (set
 * SNIP_THREADS=1 to force serial execution). Different SIMD backends
 * may differ in low-order bits (FMA contraction, vector-lane
 * accumulation order).
 */
#ifndef SNIP_TENSOR_GEMM_H
#define SNIP_TENSOR_GEMM_H

#include <cstdint>

#include "tensor/tensor.h"

namespace snip {

/** C[M,N] (+)= A[M,K] * B[N,K]^T. */
void gemmNT(const float *a, const float *b, float *c, int64_t m, int64_t n,
            int64_t k, bool accumulate = false);

/** C[M,N] (+)= A[M,K] * B[K,N]. */
void gemmNN(const float *a, const float *b, float *c, int64_t m, int64_t n,
            int64_t k, bool accumulate = false);

/** C[M,N] (+)= A[K,M]^T * B[K,N]. */
void gemmTN(const float *a, const float *b, float *c, int64_t m, int64_t n,
            int64_t k, bool accumulate = false);

/** Y = X * W^T for rank-2 tensors X[M,K], W[N,K]. */
Tensor matmulNT(const Tensor &x, const Tensor &w);

/** Y = A * B for rank-2 tensors A[M,K], B[K,N]. */
Tensor matmulNN(const Tensor &a, const Tensor &b);

/** Y = A^T * B for rank-2 tensors A[K,M], B[K,N]. */
Tensor matmulTN(const Tensor &a, const Tensor &b);

} // namespace snip

#endif // SNIP_TENSOR_GEMM_H
