/**
 * @file
 * Dense row-major float tensor.
 *
 * The training stack is CPU-only and single-precision end to end; reduced
 * precision enters exclusively through fake quantization (quant/), exactly
 * as in the paper's experimental setup (Sec. 6.1), so one float container
 * suffices. Shapes up to rank 4 are supported; storage is always
 * contiguous row-major.
 */
#ifndef SNIP_TENSOR_TENSOR_H
#define SNIP_TENSOR_TENSOR_H

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "util/logging.h"

namespace snip {

class Rng;

/**
 * Contiguous row-major float tensor with value semantics.
 *
 * Copies are deep; moves are cheap. Element access is bounds-checked in
 * debug builds (SNIP_ASSERT compiles to a real check in all builds, so
 * hot loops should use data() pointers instead).
 */
class Tensor
{
  public:
    /** Empty tensor (rank 0, no elements). */
    Tensor() = default;

    /** Uninitialized-to-zero tensor with the given shape. */
    explicit Tensor(std::vector<int64_t> shape);

    /** Convenience rank-2 constructor. */
    Tensor(int64_t rows, int64_t cols);

    /** All-zero tensor. */
    static Tensor zeros(std::vector<int64_t> shape);

    /** Tensor filled with a constant. */
    static Tensor full(std::vector<int64_t> shape, float value);

    /** I.i.d. Gaussian entries: N(0, stddev^2). */
    static Tensor randn(std::vector<int64_t> shape, Rng &rng,
                        float stddev = 1.0f);

    /** Uniform entries in [lo, hi). */
    static Tensor uniform(std::vector<int64_t> shape, Rng &rng, float lo,
                          float hi);

    /** Number of elements. */
    int64_t numel() const { return static_cast<int64_t>(data_.size()); }

    /** Tensor rank (number of dimensions). */
    int rank() const { return static_cast<int>(shape_.size()); }

    /** Size of dimension @p i (negative i counts from the back). */
    int64_t size(int i) const;

    /** Full shape vector. */
    const std::vector<int64_t> &shape() const { return shape_; }

    /** True if shapes match exactly. */
    bool sameShape(const Tensor &other) const
    {
        return shape_ == other.shape_;
    }

    /** Raw storage pointers. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access. */
    float &
    at(int64_t i)
    {
        SNIP_ASSERT(i >= 0 && i < numel());
        return data_[static_cast<size_t>(i)];
    }
    float
    at(int64_t i) const
    {
        SNIP_ASSERT(i >= 0 && i < numel());
        return data_[static_cast<size_t>(i)];
    }

    /** Rank-2 element access (row, col). */
    float &
    at(int64_t r, int64_t c)
    {
        SNIP_ASSERT(rank() == 2);
        return data_[static_cast<size_t>(r * shape_[1] + c)];
    }
    float
    at(int64_t r, int64_t c) const
    {
        SNIP_ASSERT(rank() == 2);
        return data_[static_cast<size_t>(r * shape_[1] + c)];
    }

    /** Rank-3 element access. */
    float &
    at(int64_t a, int64_t b, int64_t c)
    {
        SNIP_ASSERT(rank() == 3);
        return data_[static_cast<size_t>((a * shape_[1] + b) * shape_[2] +
                                         c)];
    }
    float
    at(int64_t a, int64_t b, int64_t c) const
    {
        SNIP_ASSERT(rank() == 3);
        return data_[static_cast<size_t>((a * shape_[1] + b) * shape_[2] +
                                         c)];
    }

    /** Set every element to @p value. */
    void fill(float value);

    /** Set every element to zero. */
    void zero() { fill(0.0f); }

    /**
     * Reinterpret the storage with a new shape of identical element
     * count. Returns *this for chaining.
     */
    Tensor &reshape(std::vector<int64_t> shape);

    /** Deep equality (exact float comparison). */
    bool operator==(const Tensor &other) const
    {
        return shape_ == other.shape_ && data_ == other.data_;
    }

  private:
    std::vector<float> data_;
    std::vector<int64_t> shape_;
};

} // namespace snip

#endif // SNIP_TENSOR_TENSOR_H
