#include "tensor/gemm.h"

#include <cstring>

#include "runtime/thread_pool.h"

namespace snip {

namespace {

/// Block sizes chosen so an A-panel plus a B-panel fit in L1/L2.
constexpr int64_t kBlockM = 64;
constexpr int64_t kBlockN = 64;
constexpr int64_t kBlockK = 128;

/// Number of kBlockM-row blocks (the parallelFor unit for all three
/// variants: every worker owns whole rows of C, so outputs are disjoint
/// and the per-element accumulation order never depends on thread
/// count).
int64_t
mBlocks(int64_t m)
{
    return (m + kBlockM - 1) / kBlockM;
}

} // namespace

void
gemmNN(const float *a, const float *b, float *c, int64_t m, int64_t n,
       int64_t k, bool accumulate)
{
    runtime::parallelFor(0, mBlocks(m), 1, [=](int64_t b0, int64_t b1) {
        for (int64_t bi = b0; bi < b1; ++bi) {
            const int64_t i0 = bi * kBlockM;
            const int64_t i1 = std::min(i0 + kBlockM, m);
            if (!accumulate)
                std::memset(c + i0 * n, 0,
                            sizeof(float) *
                                static_cast<size_t>((i1 - i0) * n));
            for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
                int64_t k1 = std::min(k0 + kBlockK, k);
                for (int64_t i = i0; i < i1; ++i) {
                    const float *arow = a + i * k;
                    float *crow = c + i * n;
                    for (int64_t kk = k0; kk < k1; ++kk) {
                        float av = arow[kk];
                        const float *brow = b + kk * n;
                        for (int64_t j = 0; j < n; ++j)
                            crow[j] += av * brow[j];
                    }
                }
            }
        }
    });
}

void
gemmNT(const float *a, const float *b, float *c, int64_t m, int64_t n,
       int64_t k, bool accumulate)
{
    // Each task owns an M-block x all-N stripe of C; within the stripe
    // the N-blocked loop order matches the serial kernel exactly, and
    // each C element is produced by a single dot product, so results are
    // bit-identical for any thread count.
    runtime::parallelFor(0, mBlocks(m), 1, [=](int64_t b0, int64_t b1) {
        for (int64_t bi = b0; bi < b1; ++bi) {
            const int64_t i0 = bi * kBlockM;
            const int64_t i1 = std::min(i0 + kBlockM, m);
            if (!accumulate)
                std::memset(c + i0 * n, 0,
                            sizeof(float) *
                                static_cast<size_t>((i1 - i0) * n));
            for (int64_t j0 = 0; j0 < n; j0 += kBlockN) {
                int64_t j1 = std::min(j0 + kBlockN, n);
                for (int64_t i = i0; i < i1; ++i) {
                    const float *arow = a + i * k;
                    float *crow = c + i * n;
                    for (int64_t j = j0; j < j1; ++j) {
                        const float *brow = b + j * k;
                        float acc = 0.0f;
                        for (int64_t kk = 0; kk < k; ++kk)
                            acc += arow[kk] * brow[kk];
                        crow[j] += acc;
                    }
                }
            }
        }
    });
}

void
gemmTN(const float *a, const float *b, float *c, int64_t m, int64_t n,
       int64_t k, bool accumulate)
{
    // C[i,j] += sum_kk A[kk,i] * B[kk,j]; kk stays the outer loop so A
    // and B are read row-wise, while workers partition the i (row-of-C)
    // dimension. Per C row the kk accumulation order is unchanged, so
    // any thread count reproduces the serial result bit for bit.
    runtime::parallelFor(0, mBlocks(m), 1, [=](int64_t b0, int64_t b1) {
        for (int64_t bi = b0; bi < b1; ++bi) {
            const int64_t i0 = bi * kBlockM;
            const int64_t i1 = std::min(i0 + kBlockM, m);
            if (!accumulate)
                std::memset(c + i0 * n, 0,
                            sizeof(float) *
                                static_cast<size_t>((i1 - i0) * n));
            for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
                int64_t k1 = std::min(k0 + kBlockK, k);
                for (int64_t kk = k0; kk < k1; ++kk) {
                    const float *arow = a + kk * m;
                    const float *brow = b + kk * n;
                    for (int64_t i = i0; i < i1; ++i) {
                        float av = arow[i];
                        if (av == 0.0f)
                            continue;
                        float *crow = c + i * n;
                        for (int64_t j = 0; j < n; ++j)
                            crow[j] += av * brow[j];
                    }
                }
            }
        }
    });
}

Tensor
matmulNT(const Tensor &x, const Tensor &w)
{
    SNIP_ASSERT(x.rank() == 2 && w.rank() == 2);
    SNIP_ASSERT(x.size(1) == w.size(1), "inner dimensions disagree");
    Tensor y(x.size(0), w.size(0));
    gemmNT(x.data(), w.data(), y.data(), x.size(0), w.size(0), x.size(1));
    return y;
}

Tensor
matmulNN(const Tensor &a, const Tensor &b)
{
    SNIP_ASSERT(a.rank() == 2 && b.rank() == 2);
    SNIP_ASSERT(a.size(1) == b.size(0), "inner dimensions disagree");
    Tensor y(a.size(0), b.size(1));
    gemmNN(a.data(), b.data(), y.data(), a.size(0), b.size(1), a.size(1));
    return y;
}

Tensor
matmulTN(const Tensor &a, const Tensor &b)
{
    SNIP_ASSERT(a.rank() == 2 && b.rank() == 2);
    SNIP_ASSERT(a.size(0) == b.size(0), "inner dimensions disagree");
    Tensor y(a.size(1), b.size(1));
    gemmTN(a.data(), b.data(), y.data(), a.size(1), b.size(1), a.size(0));
    return y;
}

} // namespace snip
