#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "quant/codec.h"
#include "quant/scaling.h"
#include "runtime/env_config.h"
#include "runtime/thread_pool.h"
#include "runtime/workspace_arena.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "util/thread_annotations.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/logging.h"

namespace snip {

namespace {

using simd::kGemmPackMR;
using simd::kGemmPackNR;
using simd::packStrips;

/// Number of kGemmBlockM-row blocks (the parallelFor unit for all
/// paths: every worker owns whole rows of C, so outputs are disjoint
/// and the per-element accumulation order never depends on thread
/// count).
int64_t
mBlocks(int64_t m)
{
    return (m + simd::kGemmBlockM - 1) / simd::kGemmBlockM;
}

// ------------------------------------------------------- legacy path

/** One legacy gemmBlocked invocation; the parallelFor lambda captures
 *  only a pointer to this (fits every std::function SBO, so the call
 *  allocates nothing). */
struct LegacyCtx
{
    simd::GemmBlockFn block_fn;
    const float *a;
    const float *b;
    float *c;
    int64_t m, n, k;
    bool accumulate;
};

/**
 * Pre-packing driver, kept verbatim behind SNIP_GEMM_PACK=off (and for
 * shapes below the Auto threshold): fan M-blocks of C out over the
 * thread pool and hand each block to the dispatched backend
 * microkernel. Zeroing happens here (backend-independent) so the
 * kernels always accumulate.
 */
void
gemmBlockedLegacy(simd::GemmBlockFn block_fn, const float *a,
                  const float *b, float *c, int64_t m, int64_t n,
                  int64_t k, bool accumulate)
{
    telemetry::ScopedTimer timer(telemetry::Timer::Gemm);
    telemetry::count(telemetry::Counter::GemmCalls);
    telemetry::count(telemetry::Counter::GemmLegacyCalls);
    telemetry::count(telemetry::Counter::GemmFlops, 2 * m * n * k);
    trace::TraceScope span(trace::Category::Gemm, "gemm", "m", m, "n",
                           n);
    LegacyCtx ctx{block_fn, a, b, c, m, n, k, accumulate};
    const LegacyCtx *pc = &ctx;
    runtime::parallelFor(0, mBlocks(m), 1, [pc](int64_t b0, int64_t b1) {
        for (int64_t bi = b0; bi < b1; ++bi) {
            const int64_t i0 = bi * simd::kGemmBlockM;
            const int64_t i1 =
                std::min(i0 + simd::kGemmBlockM, pc->m);
            if (!pc->accumulate)
                std::memset(pc->c + i0 * pc->n, 0,
                            sizeof(float) *
                                static_cast<size_t>((i1 - i0) * pc->n));
            pc->block_fn(pc->a, pc->b, pc->c, i0, i1, pc->m, pc->n,
                         pc->k);
        }
    });
}

// -------------------------------------------------------------- mode

std::atomic<int> g_pack_mode{-1}; // -1 = unresolved

bool
parsePackMode(const char *spec, GemmPackMode *out)
{
    if (spec == nullptr || *spec == '\0' ||
        std::strcmp(spec, "auto") == 0) {
        *out = GemmPackMode::Auto;
        return true;
    }
    if (std::strcmp(spec, "on") == 0) {
        *out = GemmPackMode::On;
        return true;
    }
    if (std::strcmp(spec, "off") == 0) {
        *out = GemmPackMode::Off;
        return true;
    }
    return false;
}

// ---------------------------------------------- fused-quant plumbing

/** Region grid of a scaling spec on a rows x cols source matrix;
 *  mirrors forEachRegion() (quant/scaling.cpp) exactly. */
struct RegionGeom
{
    int64_t rb, cb;  ///< region edge in rows / cols
    int64_t nrr, ncr; ///< region-grid extents
};

RegionGeom
regionGeom(int64_t rows, int64_t cols, const ScalingSpec &spec)
{
    const int64_t nb = std::max<int64_t>(1, spec.block);
    RegionGeom g{rows, cols, 1, 1};
    switch (spec.granularity) {
        case Granularity::Tensorwise:
            break;
        case Granularity::Rowwise:
            g.rb = 1;
            break;
        case Granularity::Columnwise:
            g.cb = 1;
            break;
        case Granularity::Blockwise:
            g.rb = nb;
            g.cb = nb;
            break;
        case Granularity::Tilewise:
            g.rb = 1;
            g.cb = nb;
            break;
    }
    g.rb = std::max<int64_t>(1, std::min(g.rb, rows));
    g.cb = std::max<int64_t>(1, std::min(g.cb, cols));
    g.nrr = (rows + g.rb - 1) / g.rb;
    g.ncr = (cols + g.cb - 1) / g.cb;
    return g;
}

struct ScaleCtx
{
    const simd::KernelTable *kt;
    const float *p;
    int64_t rows, cols;
    RegionGeom geom;
    double fmt_max;
    float *scale;
    float *inv;
};

/**
 * Per-region scale pass: the same max-|x| reduction and float
 * narrowing the materializing quantizer performs (quant/quantizer.cpp),
 * so fused quantize-on-pack is bit-identical to quantize-then-pack.
 * Regions are independent, so any parallel partition is deterministic.
 */
void
computeRegionScales(const simd::KernelTable &kt, const float *p,
                    int64_t rows, int64_t cols, const RegionGeom &geom,
                    double fmt_max, float *scale, float *inv)
{
    ScaleCtx ctx{&kt, p, rows, cols, geom, fmt_max, scale, inv};
    const ScaleCtx *pc = &ctx;
    runtime::parallelFor(
        0, geom.nrr * geom.ncr, 8, [pc](int64_t g0, int64_t g1) {
            const RegionGeom &g = pc->geom;
            for (int64_t reg = g0; reg < g1; ++reg) {
                const int64_t r0 = (reg / g.ncr) * g.rb;
                const int64_t r1 = std::min(pc->rows, r0 + g.rb);
                const int64_t c0 = (reg % g.ncr) * g.cb;
                const int64_t c1 = std::min(pc->cols, c0 + g.cb);
                double max_abs = 0.0;
                for (int64_t r = r0; r < r1; ++r) {
                    max_abs = std::max(
                        max_abs,
                        static_cast<double>(pc->kt->maxAbs(
                            pc->p + r * pc->cols + c0, c1 - c0)));
                }
                const double s = regionScale(max_abs, pc->fmt_max);
                pc->scale[reg] = static_cast<float>(s);
                pc->inv[reg] = static_cast<float>(1.0 / s);
            }
        });
}

/** A fully-resolved fused-quant operand: grid constants plus bound
 *  scale buffers. pq points into this object — never copy it. */
struct OperandQuant
{
    QuantGrid grid;
    const QuantConfig *cfg = nullptr;
    simd::PackQuant pq;

    OperandQuant() = default;
    OperandQuant(const OperandQuant &) = delete;
    OperandQuant &operator=(const OperandQuant &) = delete;
};

/** Bind @p oq to (source, cfg), computing scales into the caller's
 *  buffers (arena or cache vectors). */
void
setupOperandQuant(OperandQuant &oq, const simd::KernelTable &kt,
                  const QuantConfig &cfg, const float *src, int64_t rows,
                  int64_t cols, float *scale, float *inv)
{
    SNIP_ASSERT(cfg.rounding == Rounding::Nearest,
                "stochastic rounding cannot fuse into a pack; "
                "materialize the operand first");
    SNIP_ASSERT(cfg.format.name != "bf16",
                "bf16 operands take the passthrough path");
    const RegionGeom geom = regionGeom(rows, cols, cfg.scaling);
    computeRegionScales(kt, src, rows, cols, geom,
                        cfg.format.maxValue(), scale, inv);
    oq.grid = quantGrid(cfg.format);
    oq.cfg = &cfg;
    oq.pq.fmt = &cfg.format;
    oq.pq.grid = &oq.grid;
    oq.pq.scale = scale;
    oq.pq.inv_scale = inv;
    oq.pq.row_block = geom.rb;
    oq.pq.col_block = geom.cb;
    oq.pq.regions_per_row = geom.ncr;
}

int64_t
regionCount(int64_t rows, int64_t cols, const ScalingSpec &spec)
{
    const RegionGeom g = regionGeom(rows, cols, spec);
    return g.nrr * g.ncr;
}

// ----------------------------------------------------- packed driver

/** One packed GEMM invocation (lambdas capture a pointer to this). */
struct PackedCtx
{
    const simd::KernelTable *kt;
    const float *a;
    int64_t a_ld;
    bool a_k_major;
    const float *b;
    int64_t b_ld;
    bool b_k_major;
    float *c;
    int64_t m, n, k;
    bool accumulate;
    const float *bp = nullptr;
    float *bp_mut = nullptr;
    const simd::PackQuant *aq = nullptr;
    const simd::PackQuant *bq = nullptr;
};

/** Pack the whole B operand into bp_mut, one strip per parallel
 *  unit (pure copies + grid snaps: deterministic under any
 *  partition). */
void
packBPhase(const PackedCtx *ctx)
{
    const int64_t strips = packStrips(ctx->n, kGemmPackNR);
    runtime::parallelFor(
        0, strips, 1, [ctx](int64_t s0, int64_t s1) {
            const int64_t j0 = s0 * kGemmPackNR;
            const int64_t j1 =
                std::min(ctx->n, s1 * kGemmPackNR);
            ctx->kt->packB(ctx->b, ctx->b_ld, ctx->b_k_major,
                           ctx->bp_mut, j0, j1, ctx->n, ctx->k,
                           ctx->bq);
        });
}

/**
 * The packed loop nest: every M-block packs its A panel into the
 * executing thread's arena (fused-quantizing when configured), then
 * streams the shared packed B panel through the register-tiled block
 * microkernel. M-block ownership and the per-element k-ascending
 * accumulation are identical for any thread count.
 */
void
gemmPhase(const PackedCtx *ctx)
{
    runtime::parallelFor(
        0, mBlocks(ctx->m), 1, [ctx](int64_t b0, int64_t b1) {
            for (int64_t bi = b0; bi < b1; ++bi) {
                const int64_t i0 = bi * simd::kGemmBlockM;
                const int64_t i1 =
                    std::min(i0 + simd::kGemmBlockM, ctx->m);
                const int64_t mb = i1 - i0;
                runtime::WorkspaceArena &arena =
                    runtime::WorkspaceArena::forCurrentThread();
                runtime::ArenaScope scope(arena);
                // +8: PackAFn transpose-store headroom (kernels.h).
                float *ap = arena.getFloats(static_cast<size_t>(
                    packStrips(mb, kGemmPackMR) * kGemmPackMR *
                        ctx->k +
                    8));
                ctx->kt->packA(ctx->a, ctx->a_ld, ctx->a_k_major, ap,
                               i0, i1, ctx->k, ctx->aq);
                if (!ctx->accumulate)
                    std::memset(
                        ctx->c + i0 * ctx->n, 0,
                        sizeof(float) *
                            static_cast<size_t>(mb * ctx->n));
                ctx->kt->gemmPackedBlock(ap, ctx->bp,
                                         ctx->c + i0 * ctx->n, ctx->n,
                                         mb, ctx->n, ctx->k);
            }
        });
}

// ------------------------------------------------ packed-weight cache

/**
 * Weight-pack epoch. 0 means "no weight mutator has ever announced
 * itself": until the first invalidateWeightPacks() call (optimizer
 * step, checkpoint restore) the single-writer discipline the implicit
 * per-layer caches rely on is not established — code that mutates
 * weights through raw ParamRef pointers without telling anyone (e.g.
 * finite-difference gradient checks) is then still correct, because
 * Linear only hands its cache to the GEMM once the epoch is non-zero.
 * Explicit PackedWeightCache users (benches, tests) opt in regardless.
 */
std::atomic<uint64_t> g_weight_epoch{0};

uint64_t
policyKey(const QuantConfig *cfg)
{
    if (cfg == nullptr)
        return 0;
    uint64_t h = 1469598103934665603ull; // FNV-1a
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    for (char ch : cfg->format.name)
        mix(static_cast<uint64_t>(static_cast<unsigned char>(ch)));
    mix(static_cast<uint64_t>(cfg->scaling.granularity));
    mix(static_cast<uint64_t>(cfg->scaling.block));
    mix(static_cast<uint64_t>(cfg->rounding));
    return h | 1; // never collides with the "no quantization" key 0
}

} // namespace

struct PackedWeightCache::Impl
{
    /** One packed panel + its scale tables for one GEMM orientation of
     *  the weight (0 = NT B operand, 1 = NN B operand). */
    struct Slot
    {
        std::vector<float> packed, scale, inv;
        bool valid = false;
        uint64_t epoch = 0;
        uint64_t key = 0;
        int64_t n = 0, k = 0;
        int64_t src_rows = 0, src_cols = 0;
    };
    util::Mutex mu;
    Slot slots[2] SNIP_GUARDED_BY(mu);
    /** Epoch in which a mutable weight reference escaped (non-const
     *  Linear::weight()): implicit caching stays off until the next
     *  epoch re-establishes the single-writer discipline. ~0 = never.
     *  Atomic (not mu-guarded) so implicitCachingActive() can poll it
     *  from the hot path without taking the cache lock. */
    std::atomic<uint64_t> disabled_epoch{~uint64_t{0}};
};

PackedWeightCache::PackedWeightCache() : impl_(new Impl) {}
PackedWeightCache::~PackedWeightCache() = default;

void
PackedWeightCache::invalidate()
{
    util::MutexLock lk(impl_->mu);
    impl_->slots[0].valid = false;
    impl_->slots[1].valid = false;
    // Release pairs with the acquire in implicitCachingActive(): a
    // thread that observes the new disabled_epoch also observes the
    // slot invalidation above.
    impl_->disabled_epoch.store(
        g_weight_epoch.load(std::memory_order_acquire),
        std::memory_order_release);
}

bool
PackedWeightCache::implicitCachingActive() const
{
    const uint64_t epoch =
        g_weight_epoch.load(std::memory_order_acquire);
    return epoch > 0 &&
           impl_->disabled_epoch.load(std::memory_order_acquire) !=
               epoch;
}

void
invalidateWeightPacks()
{
    g_weight_epoch.fetch_add(1, std::memory_order_acq_rel);
}

uint64_t
weightPackEpoch()
{
    return g_weight_epoch.load(std::memory_order_acquire);
}

namespace {

/**
 * Return the packed B panel for a cached weight, (re)building it when
 * stale. The scale pass is shared with the sibling orientation when
 * its policy and epoch agree — the weight is then quantized once per
 * step even though both orientations pack it. Buffers are retained
 * across epochs, so a steady-state repack allocates nothing.
 */
const float *
cachedPackB(PackedWeightCache *cache, int orient, PackedCtx *ctx,
            const QuantConfig *cfg, int64_t src_rows, int64_t src_cols)
{
    PackedWeightCache::Impl &impl = cache->impl();
    util::MutexLock lk(impl.mu);
    PackedWeightCache::Impl::Slot &slot = impl.slots[orient];
    const uint64_t epoch =
        g_weight_epoch.load(std::memory_order_acquire);
    const uint64_t key = policyKey(cfg);
    if (slot.valid && slot.epoch == epoch && slot.key == key &&
        slot.n == ctx->n && slot.k == ctx->k) {
        telemetry::count(telemetry::Counter::PackCacheHits);
        return slot.packed.data();
    }
    telemetry::count(telemetry::Counter::PackCacheRebuilds);
    slot.packed.resize(static_cast<size_t>(
        packStrips(ctx->n, kGemmPackNR) * kGemmPackNR * ctx->k));
    OperandQuant bq;
    if (cfg != nullptr) {
        const int64_t nreg =
            regionCount(src_rows, src_cols, cfg->scaling);
        slot.scale.resize(static_cast<size_t>(nreg));
        slot.inv.resize(static_cast<size_t>(nreg));
        PackedWeightCache::Impl::Slot &other = impl.slots[1 - orient];
        if (other.valid && other.epoch == epoch && other.key == key &&
            other.src_rows == src_rows && other.src_cols == src_cols &&
            other.scale.size() == slot.scale.size()) {
            // Sibling orientation already quantized this weight under
            // the same policy this step: reuse its scale pass.
            std::copy(other.scale.begin(), other.scale.end(),
                      slot.scale.begin());
            std::copy(other.inv.begin(), other.inv.end(),
                      slot.inv.begin());
            const RegionGeom geom =
                regionGeom(src_rows, src_cols, cfg->scaling);
            bq.grid = quantGrid(cfg->format);
            bq.cfg = cfg;
            bq.pq = {&cfg->format, &bq.grid,      slot.scale.data(),
                     slot.inv.data(), geom.rb,    geom.cb,
                     geom.ncr};
        } else {
            setupOperandQuant(bq, *ctx->kt, *cfg, ctx->b, src_rows,
                              src_cols, slot.scale.data(),
                              slot.inv.data());
        }
        ctx->bq = &bq.pq;
    }
    ctx->bp_mut = slot.packed.data();
    packBPhase(ctx);
    ctx->bq = nullptr;
    ctx->bp_mut = nullptr;
    slot.valid = true;
    slot.epoch = epoch;
    slot.key = key;
    slot.n = ctx->n;
    slot.k = ctx->k;
    slot.src_rows = src_rows;
    slot.src_cols = src_cols;
    return slot.packed.data();
}

/**
 * Shared packed driver. Source layouts per variant:
 *   NT: A = src[M,K] (row-major), B = src[N,K]  -> b_k_major = false
 *   NN: A = src[M,K],             B = src[K,N]  -> b_k_major = true
 *   TN: A = src[K,M] (a_k_major), B = src[K,N]
 * (a_rows, a_cols) / (b_rows, b_cols) are SOURCE dims — the geometry
 * fake quantization is defined on.
 */
void
packedGemm(const float *a, int64_t a_ld, bool a_k_major, int64_t a_rows,
           int64_t a_cols, const QuantConfig *aq_cfg, const float *b,
           int64_t b_ld, bool b_k_major, int64_t b_rows, int64_t b_cols,
           const QuantConfig *bq_cfg, PackedWeightCache *bcache,
           int orient, float *c, int64_t m, int64_t n, int64_t k,
           bool accumulate)
{
    if (m <= 0 || n <= 0)
        return;
    if (k <= 0) {
        if (!accumulate)
            std::memset(c, 0,
                        sizeof(float) * static_cast<size_t>(m * n));
        return;
    }
    telemetry::ScopedTimer timer(telemetry::Timer::Gemm);
    telemetry::count(telemetry::Counter::GemmCalls);
    telemetry::count(telemetry::Counter::GemmPackedCalls);
    telemetry::count(telemetry::Counter::GemmFlops, 2 * m * n * k);
    trace::TraceScope span(trace::Category::Gemm, "gemm_packed", "m",
                           m, "n", n);
    const simd::KernelTable &kt = simd::activeKernels();
    runtime::WorkspaceArena &arena =
        runtime::WorkspaceArena::forCurrentThread();
    runtime::ArenaScope scope(arena);

    PackedCtx ctx;
    ctx.kt = &kt;
    ctx.a = a;
    ctx.a_ld = a_ld;
    ctx.a_k_major = a_k_major;
    ctx.b = b;
    ctx.b_ld = b_ld;
    ctx.b_k_major = b_k_major;
    ctx.c = c;
    ctx.m = m;
    ctx.n = n;
    ctx.k = k;
    ctx.accumulate = accumulate;

    OperandQuant aq;
    if (aq_cfg != nullptr) {
        const int64_t nreg = regionCount(a_rows, a_cols, aq_cfg->scaling);
        float *scale = arena.getFloats(static_cast<size_t>(nreg));
        float *inv = arena.getFloats(static_cast<size_t>(nreg));
        setupOperandQuant(aq, kt, *aq_cfg, a, a_rows, a_cols, scale,
                          inv);
        ctx.aq = &aq.pq;
    }

    if (bcache != nullptr) {
        ctx.bp = cachedPackB(bcache, orient, &ctx, bq_cfg, b_rows,
                             b_cols);
    } else {
        OperandQuant bq;
        if (bq_cfg != nullptr) {
            const int64_t nreg =
                regionCount(b_rows, b_cols, bq_cfg->scaling);
            float *scale = arena.getFloats(static_cast<size_t>(nreg));
            float *inv = arena.getFloats(static_cast<size_t>(nreg));
            setupOperandQuant(bq, kt, *bq_cfg, b, b_rows, b_cols, scale,
                              inv);
            ctx.bq = &bq.pq;
        }
        float *bp = arena.getFloats(static_cast<size_t>(
            packStrips(n, kGemmPackNR) * kGemmPackNR * k));
        ctx.bp_mut = bp;
        packBPhase(&ctx);
        ctx.bq = nullptr;
        ctx.bp = bp;
    }
    gemmPhase(&ctx);
}

// ------------------------------------------------- strided-batch path

/** One strided-batch GEMM invocation (lambdas capture a pointer). */
struct BatchedCtx
{
    const simd::KernelTable *kt;
    simd::GemmBlockFn block_fn; ///< per-item legacy kernel
    const float *a;
    int64_t a_stride, a_ld;
    bool a_k_major;
    const float *b;
    int64_t b_stride, b_ld;
    bool b_k_major;
    float *c;
    int64_t c_stride;
    int64_t count, m, n, k, group;
    bool accumulate;
    bool packed;
    float *bp = nullptr;    ///< per-group packed B panels (NT/NN)
    int64_t bp_stride = 0;
};

/** One batch item on the legacy kernels: the same zero + block-kernel
 *  sequence gemmBlockedLegacy runs, serial over the item's M-blocks
 *  (the worker owns the whole item). */
void
runItemLegacy(const BatchedCtx *ctx, const float *a, const float *b,
              float *c, bool accumulate)
{
    for (int64_t bi = 0; bi < mBlocks(ctx->m); ++bi) {
        const int64_t i0 = bi * simd::kGemmBlockM;
        const int64_t i1 = std::min(i0 + simd::kGemmBlockM, ctx->m);
        if (!accumulate)
            std::memset(c + i0 * ctx->n, 0,
                        sizeof(float) *
                            static_cast<size_t>((i1 - i0) * ctx->n));
        ctx->block_fn(a, b, c, i0, i1, ctx->m, ctx->n, ctx->k);
    }
}

/** One batch item through the packed microkernel against an already-
 *  packed B panel: per M-block the same packA + zero + block stream
 *  gemmPhase issues, so per-element accumulation order matches the
 *  per-item gemmPacked* entry points exactly. */
void
runItemPacked(const BatchedCtx *ctx, const float *a, const float *bp,
              float *c, bool accumulate)
{
    runtime::WorkspaceArena &arena =
        runtime::WorkspaceArena::forCurrentThread();
    for (int64_t bi = 0; bi < mBlocks(ctx->m); ++bi) {
        const int64_t i0 = bi * simd::kGemmBlockM;
        const int64_t i1 = std::min(i0 + simd::kGemmBlockM, ctx->m);
        const int64_t mb = i1 - i0;
        runtime::ArenaScope scope(arena);
        // +8: PackAFn transpose-store headroom (kernels.h).
        float *ap = arena.getFloats(static_cast<size_t>(
            packStrips(mb, kGemmPackMR) * kGemmPackMR * ctx->k + 8));
        ctx->kt->packA(a, ctx->a_ld, ctx->a_k_major, ap, i0, i1, ctx->k,
                       nullptr);
        if (!accumulate)
            std::memset(c + i0 * ctx->n, 0,
                        sizeof(float) *
                            static_cast<size_t>(mb * ctx->n));
        ctx->kt->gemmPackedBlock(ap, bp, c + i0 * ctx->n, ctx->n, mb,
                                 ctx->n, ctx->k);
    }
}

/** Shared NT/NN batched driver: pack each group's shared B once
 *  (phase 1), then fan whole items over the pool (phase 2). */
void
gemmBatchedStreamB(simd::GemmBlockFn block_fn, const float *a,
                   int64_t a_stride, const float *b, int64_t b_stride,
                   int64_t b_ld, bool b_k_major, float *c,
                   int64_t c_stride, int64_t count, int64_t m, int64_t n,
                   int64_t k, int64_t group, bool accumulate)
{
    if (count <= 0 || m <= 0 || n <= 0)
        return;
    SNIP_ASSERT(group >= 1 && count % group == 0,
                "batched GEMM: count must be a multiple of group");
    BatchedCtx ctx;
    ctx.kt = &simd::activeKernels();
    ctx.block_fn = block_fn;
    ctx.a = a;
    ctx.a_stride = a_stride;
    ctx.a_ld = k;
    ctx.a_k_major = false;
    ctx.b = b;
    ctx.b_stride = b_stride;
    ctx.b_ld = b_ld;
    ctx.b_k_major = b_k_major;
    ctx.c = c;
    ctx.c_stride = c_stride;
    ctx.count = count;
    ctx.m = m;
    ctx.n = n;
    ctx.k = k;
    ctx.group = group;
    ctx.accumulate = accumulate;
    if (k <= 0) {
        if (!accumulate)
            for (int64_t i = 0; i < count; ++i)
                std::memset(c + i * c_stride, 0,
                            sizeof(float) * static_cast<size_t>(m * n));
        return;
    }
    ctx.packed = gemmBatchedPackEnabled(count, m, n, k);

    telemetry::ScopedTimer timer(telemetry::Timer::Gemm);
    telemetry::count(telemetry::Counter::GemmCalls);
    telemetry::count(ctx.packed ? telemetry::Counter::GemmPackedCalls
                                : telemetry::Counter::GemmLegacyCalls);
    telemetry::count(telemetry::Counter::GemmBatchedItems, count);
    telemetry::count(telemetry::Counter::GemmFlops,
                     2 * count * m * n * k);
    trace::TraceScope span(trace::Category::Gemm, "gemm_batched",
                           "items", count, "m", m);
    runtime::WorkspaceArena &arena =
        runtime::WorkspaceArena::forCurrentThread();
    runtime::ArenaScope scope(arena);
    const BatchedCtx *pc = &ctx;
    if (ctx.packed) {
        const int64_t groups = count / group;
        ctx.bp_stride = packStrips(n, kGemmPackNR) * kGemmPackNR * k;
        ctx.bp =
            arena.getFloats(static_cast<size_t>(groups * ctx.bp_stride));
        runtime::parallelFor(0, groups, 1, [pc](int64_t g0, int64_t g1) {
            for (int64_t g = g0; g < g1; ++g)
                pc->kt->packB(pc->b + g * pc->b_stride, pc->b_ld,
                              pc->b_k_major,
                              pc->bp + g * pc->bp_stride, 0, pc->n,
                              pc->n, pc->k, nullptr);
        });
    }
    runtime::parallelFor(0, count, 1, [pc](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            const float *ai = pc->a + i * pc->a_stride;
            float *ci = pc->c + i * pc->c_stride;
            if (pc->packed)
                runItemPacked(pc, ai,
                              pc->bp + (i / pc->group) * pc->bp_stride,
                              ci, pc->accumulate);
            else
                runItemLegacy(pc, ai,
                              pc->b + (i / pc->group) * pc->b_stride,
                              ci, pc->accumulate);
        }
    });
}

/** One TN batch item through the packed pipeline into @p c (packs its
 *  own B — both TN operands change per item). */
void
runItemPackedTN(const BatchedCtx *ctx, const float *a, const float *b,
                float *c, bool accumulate)
{
    runtime::WorkspaceArena &arena =
        runtime::WorkspaceArena::forCurrentThread();
    runtime::ArenaScope scope(arena);
    float *bp = arena.getFloats(static_cast<size_t>(
        packStrips(ctx->n, kGemmPackNR) * kGemmPackNR * ctx->k));
    ctx->kt->packB(b, ctx->b_ld, ctx->b_k_major, bp, 0, ctx->n, ctx->n,
                   ctx->k, nullptr);
    runItemPacked(ctx, a, bp, c, accumulate);
}

} // namespace

// --------------------------------------------------------- mode API

GemmPackMode
gemmPackMode()
{
    int mode = g_pack_mode.load(std::memory_order_acquire);
    if (mode < 0) {
        GemmPackMode m = GemmPackMode::Auto;
        const char *spec =
            runtime::envConfig().gemmPack().cstrOrNull();
        if (!parsePackMode(spec, &m)) {
            warn("unknown SNIP_GEMM_PACK value '", spec,
                 "' (expected auto|on|off); using auto");
            m = GemmPackMode::Auto;
        }
        mode = static_cast<int>(m);
        g_pack_mode.store(mode, std::memory_order_release);
    }
    return static_cast<GemmPackMode>(mode);
}

bool
setGemmPackModeByName(const char *name)
{
    GemmPackMode m;
    if (!parsePackMode(name, &m))
        return false;
    g_pack_mode.store(static_cast<int>(m), std::memory_order_release);
    return true;
}

bool
gemmPackEnabled(int64_t m, int64_t n, int64_t k)
{
    switch (gemmPackMode()) {
        case GemmPackMode::Off:
            return false;
        case GemmPackMode::On:
            return m > 0 && n > 0 && k > 0;
        case GemmPackMode::Auto:
            break;
    }
    // Packing copies O(MK + NK) to save on the O(MNK) streaming; below
    // this threshold the copy dominates and the legacy path wins.
    return m >= 4 && n >= kGemmPackNR && k >= 32 &&
           m * n * k >= (int64_t{1} << 18);
}

bool
gemmBatchedPackEnabled(int64_t count, int64_t m, int64_t n, int64_t k)
{
    switch (gemmPackMode()) {
        case GemmPackMode::Off:
            return false;
        case GemmPackMode::On:
            return count > 0 && m > 0 && n > 0 && k > 0;
        case GemmPackMode::Auto:
            break;
    }
    // The amortization unit is the WHOLE batch: the pack copies
    // O(count*(mk + nk)) to save on O(count*mnk) streaming, so a batch
    // of per-head attention GEMMs — each too small to pack alone —
    // clears the same work threshold the single-GEMM heuristic uses.
    // The per-item floors only keep degenerate panels (k or n of 1-4)
    // off the packed kernels, where strip padding would dominate.
    return m >= 4 && n >= 8 && k >= 8 &&
           count * m * n * k >= (int64_t{1} << 18);
}

// ------------------------------------------------------- entry points

void
gemmNT(const float *a, const float *b, float *c, int64_t m, int64_t n,
       int64_t k, bool accumulate)
{
    if (gemmPackEnabled(m, n, k)) {
        gemmPackedNT(a, m, k, nullptr, b, n, nullptr, nullptr, c,
                     accumulate);
        return;
    }
    gemmBlockedLegacy(simd::activeKernels().gemmNtBlock, a, b, c, m, n,
                      k, accumulate);
}

void
gemmNN(const float *a, const float *b, float *c, int64_t m, int64_t n,
       int64_t k, bool accumulate)
{
    if (gemmPackEnabled(m, n, k)) {
        gemmPackedNN(a, m, k, nullptr, b, n, nullptr, nullptr, c,
                     accumulate);
        return;
    }
    gemmBlockedLegacy(simd::activeKernels().gemmNnBlock, a, b, c, m, n,
                      k, accumulate);
}

void
gemmTN(const float *a, const float *b, float *c, int64_t m, int64_t n,
       int64_t k, bool accumulate)
{
    if (gemmPackEnabled(m, n, k)) {
        gemmPackedTN(a, m, k, nullptr, b, n, nullptr, c, accumulate);
        return;
    }
    gemmBlockedLegacy(simd::activeKernels().gemmTnBlock, a, b, c, m, n,
                      k, accumulate);
}

void
gemmBatchedNT(const float *a, int64_t a_stride, const float *b,
              int64_t b_stride, float *c, int64_t c_stride, int64_t count,
              int64_t m, int64_t n, int64_t k, int64_t group,
              bool accumulate)
{
    gemmBatchedStreamB(simd::activeKernels().gemmNtBlock, a, a_stride, b,
                       b_stride, /*b_ld=*/k, /*b_k_major=*/false, c,
                       c_stride, count, m, n, k, group, accumulate);
}

void
gemmBatchedNN(const float *a, int64_t a_stride, const float *b,
              int64_t b_stride, float *c, int64_t c_stride, int64_t count,
              int64_t m, int64_t n, int64_t k, int64_t group,
              bool accumulate)
{
    gemmBatchedStreamB(simd::activeKernels().gemmNnBlock, a, a_stride, b,
                       b_stride, /*b_ld=*/n, /*b_k_major=*/true, c,
                       c_stride, count, m, n, k, group, accumulate);
}

void
gemmBatchedTN(const float *a, int64_t a_stride, const float *b,
              int64_t b_stride, float *c, int64_t c_stride, int64_t count,
              int64_t m, int64_t n, int64_t k, int64_t group,
              bool accumulate)
{
    if (count <= 0 || m <= 0 || n <= 0)
        return;
    SNIP_ASSERT(group >= 1 && count % group == 0,
                "batched GEMM: count must be a multiple of group");
    BatchedCtx ctx;
    ctx.kt = &simd::activeKernels();
    ctx.block_fn = ctx.kt->gemmTnBlock;
    ctx.a = a;
    ctx.a_stride = a_stride;
    ctx.a_ld = m;
    ctx.a_k_major = true;
    ctx.b = b;
    ctx.b_stride = b_stride;
    ctx.b_ld = n;
    ctx.b_k_major = true;
    ctx.c = c;
    ctx.c_stride = c_stride;
    ctx.count = count;
    ctx.m = m;
    ctx.n = n;
    ctx.k = k;
    ctx.group = group;
    ctx.accumulate = accumulate;
    const int64_t groups = count / group;
    if (k <= 0) {
        if (!accumulate)
            for (int64_t g = 0; g < groups; ++g)
                std::memset(c + g * c_stride, 0,
                            sizeof(float) * static_cast<size_t>(m * n));
        return;
    }
    ctx.packed = gemmBatchedPackEnabled(count, m, n, k);
    telemetry::ScopedTimer timer(telemetry::Timer::Gemm);
    telemetry::count(telemetry::Counter::GemmCalls);
    telemetry::count(ctx.packed ? telemetry::Counter::GemmPackedCalls
                                : telemetry::Counter::GemmLegacyCalls);
    telemetry::count(telemetry::Counter::GemmBatchedItems, count);
    telemetry::count(telemetry::Counter::GemmFlops,
                     2 * count * m * n * k);
    trace::TraceScope span(trace::Category::Gemm,
                           "gemm_batched_grouped", "items", count, "m",
                           m);
    const BatchedCtx *pc = &ctx;
    // Workers own whole GROUPS: the items of a group reduce into the
    // group's shared C sequentially (each item's product is fully
    // formed in scratch, then added — the fixed per-kv-head order a
    // serial compute-then-scatter-add loop uses), so the reduction is
    // bit-identical for any thread count.
    runtime::parallelFor(0, groups, 1, [pc](int64_t g0, int64_t g1) {
        runtime::WorkspaceArena &arena =
            runtime::WorkspaceArena::forCurrentThread();
        for (int64_t g = g0; g < g1; ++g) {
            float *cg = pc->c + g * pc->c_stride;
            if (!pc->accumulate)
                std::memset(cg, 0,
                            sizeof(float) *
                                static_cast<size_t>(pc->m * pc->n));
            runtime::ArenaScope scope(arena);
            float *tmp = arena.getFloats(
                static_cast<size_t>(pc->m * pc->n));
            for (int64_t t = 0; t < pc->group; ++t) {
                const int64_t i = g * pc->group + t;
                const float *ai = pc->a + i * pc->a_stride;
                const float *bi = pc->b + i * pc->b_stride;
                if (pc->packed)
                    runItemPackedTN(pc, ai, bi, tmp,
                                    /*accumulate=*/false);
                else
                    runItemLegacy(pc, ai, bi, tmp,
                                  /*accumulate=*/false);
                const int64_t numel = pc->m * pc->n;
                for (int64_t e = 0; e < numel; ++e)
                    cg[e] += tmp[e];
            }
        }
    });
}

void
gemmPackedNT(const float *a, int64_t m, int64_t k, const QuantConfig *aq,
             const float *b, int64_t n, const QuantConfig *bq,
             PackedWeightCache *bcache, float *c, bool accumulate)
{
    packedGemm(a, k, /*a_k_major=*/false, m, k, aq, b, k,
               /*b_k_major=*/false, n, k, bq, bcache, /*orient=*/0, c,
               m, n, k, accumulate);
}

void
gemmPackedNN(const float *a, int64_t m, int64_t k, const QuantConfig *aq,
             const float *b, int64_t n, const QuantConfig *bq,
             PackedWeightCache *bcache, float *c, bool accumulate)
{
    packedGemm(a, k, /*a_k_major=*/false, m, k, aq, b, n,
               /*b_k_major=*/true, k, n, bq, bcache, /*orient=*/1, c, m,
               n, k, accumulate);
}

void
gemmPackedTN(const float *a, int64_t m, int64_t k, const QuantConfig *aq,
             const float *b, int64_t n, const QuantConfig *bq, float *c,
             bool accumulate)
{
    packedGemm(a, m, /*a_k_major=*/true, k, m, aq, b, n,
               /*b_k_major=*/true, k, n, bq, /*bcache=*/nullptr,
               /*orient=*/0, c, m, n, k, accumulate);
}

// ---------------------------------------------------- Tensor wrappers

Tensor
matmulNT(const Tensor &x, const Tensor &w)
{
    SNIP_ASSERT(x.rank() == 2 && w.rank() == 2);
    SNIP_ASSERT(x.size(1) == w.size(1), "inner dimensions disagree");
    Tensor y(x.size(0), w.size(0));
    gemmNT(x.data(), w.data(), y.data(), x.size(0), w.size(0), x.size(1));
    return y;
}

Tensor
matmulNN(const Tensor &a, const Tensor &b)
{
    SNIP_ASSERT(a.rank() == 2 && b.rank() == 2);
    SNIP_ASSERT(a.size(1) == b.size(0), "inner dimensions disagree");
    Tensor y(a.size(0), b.size(1));
    gemmNN(a.data(), b.data(), y.data(), a.size(0), b.size(1), a.size(1));
    return y;
}

Tensor
matmulTN(const Tensor &a, const Tensor &b)
{
    SNIP_ASSERT(a.rank() == 2 && b.rank() == 2);
    SNIP_ASSERT(a.size(0) == b.size(0), "inner dimensions disagree");
    Tensor y(a.size(1), b.size(1));
    gemmTN(a.data(), b.data(), y.data(), a.size(1), b.size(1), a.size(0));
    return y;
}

Tensor
quantMatmulNT(const Tensor &x, const QuantConfig *xq, const Tensor &w,
              const QuantConfig *wq, PackedWeightCache *wcache)
{
    SNIP_ASSERT(x.rank() == 2 && w.rank() == 2);
    SNIP_ASSERT(x.size(1) == w.size(1), "inner dimensions disagree");
    Tensor y(x.size(0), w.size(0));
    gemmPackedNT(x.data(), x.size(0), x.size(1), xq, w.data(), w.size(0),
                 wq, wcache, y.data());
    return y;
}

Tensor
quantMatmulNN(const Tensor &dy, const QuantConfig *dq, const Tensor &w,
              const QuantConfig *wq, PackedWeightCache *wcache)
{
    SNIP_ASSERT(dy.rank() == 2 && w.rank() == 2);
    SNIP_ASSERT(dy.size(1) == w.size(0), "inner dimensions disagree");
    Tensor y(dy.size(0), w.size(1));
    gemmPackedNN(dy.data(), dy.size(0), dy.size(1), dq, w.data(),
                 w.size(1), wq, wcache, y.data());
    return y;
}

void
quantGemmTN(const Tensor &dy, const QuantConfig *dq, const Tensor &x,
            const QuantConfig *xq, Tensor &dw, bool accumulate)
{
    SNIP_ASSERT(dy.rank() == 2 && x.rank() == 2);
    SNIP_ASSERT(dy.size(0) == x.size(0), "inner dimensions disagree");
    SNIP_ASSERT(dw.rank() == 2 && dw.size(0) == dy.size(1) &&
                dw.size(1) == x.size(1));
    gemmPackedTN(dy.data(), dy.size(1), dy.size(0), dq, x.data(),
                 x.size(1), xq, dw.data(), accumulate);
}

} // namespace snip
