#include "tensor/gemm.h"

#include <cstring>

#include "runtime/thread_pool.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"

namespace snip {

namespace {

/// Number of kGemmBlockM-row blocks (the parallelFor unit for all
/// three variants: every worker owns whole rows of C, so outputs are
/// disjoint and the per-element accumulation order never depends on
/// thread count).
int64_t
mBlocks(int64_t m)
{
    return (m + simd::kGemmBlockM - 1) / simd::kGemmBlockM;
}

/**
 * Shared driver: fan M-blocks of C out over the thread pool and hand
 * each block to the dispatched backend microkernel. Zeroing happens
 * here (backend-independent) so the kernels always accumulate.
 */
void
gemmBlocked(simd::GemmBlockFn block_fn, const float *a, const float *b,
            float *c, int64_t m, int64_t n, int64_t k, bool accumulate)
{
    runtime::parallelFor(0, mBlocks(m), 1, [=](int64_t b0, int64_t b1) {
        for (int64_t bi = b0; bi < b1; ++bi) {
            const int64_t i0 = bi * simd::kGemmBlockM;
            const int64_t i1 = std::min(i0 + simd::kGemmBlockM, m);
            if (!accumulate)
                std::memset(c + i0 * n, 0,
                            sizeof(float) *
                                static_cast<size_t>((i1 - i0) * n));
            block_fn(a, b, c, i0, i1, m, n, k);
        }
    });
}

} // namespace

void
gemmNN(const float *a, const float *b, float *c, int64_t m, int64_t n,
       int64_t k, bool accumulate)
{
    gemmBlocked(simd::activeKernels().gemmNnBlock, a, b, c, m, n, k,
                accumulate);
}

void
gemmNT(const float *a, const float *b, float *c, int64_t m, int64_t n,
       int64_t k, bool accumulate)
{
    gemmBlocked(simd::activeKernels().gemmNtBlock, a, b, c, m, n, k,
                accumulate);
}

void
gemmTN(const float *a, const float *b, float *c, int64_t m, int64_t n,
       int64_t k, bool accumulate)
{
    gemmBlocked(simd::activeKernels().gemmTnBlock, a, b, c, m, n, k,
                accumulate);
}

Tensor
matmulNT(const Tensor &x, const Tensor &w)
{
    SNIP_ASSERT(x.rank() == 2 && w.rank() == 2);
    SNIP_ASSERT(x.size(1) == w.size(1), "inner dimensions disagree");
    Tensor y(x.size(0), w.size(0));
    gemmNT(x.data(), w.data(), y.data(), x.size(0), w.size(0), x.size(1));
    return y;
}

Tensor
matmulNN(const Tensor &a, const Tensor &b)
{
    SNIP_ASSERT(a.rank() == 2 && b.rank() == 2);
    SNIP_ASSERT(a.size(1) == b.size(0), "inner dimensions disagree");
    Tensor y(a.size(0), b.size(1));
    gemmNN(a.data(), b.data(), y.data(), a.size(0), b.size(1), a.size(1));
    return y;
}

Tensor
matmulTN(const Tensor &a, const Tensor &b)
{
    SNIP_ASSERT(a.rank() == 2 && b.rank() == 2);
    SNIP_ASSERT(a.size(0) == b.size(0), "inner dimensions disagree");
    Tensor y(a.size(1), b.size(1));
    gemmTN(a.data(), b.data(), y.data(), a.size(1), b.size(1), a.size(0));
    return y;
}

} // namespace snip
