/**
 * @file
 * Step 4 of the SNIP workflow: turn statistics and probe responses into
 * the two quality metrics of Sec. 4 — loss divergence (forward) and
 * weight divergence (backward) — per layer and per precision option.
 *
 * Loss divergence (Sec. 4.2), for a layer whose forward GEMM quantizes
 * X and W with errors dX,dW:
 *
 *   dL ~ sqrt( (||grad_X L|| ||dX|| / sqrt(MK))^2
 *            + (||grad_W L|| ||dW|| / sqrt(NK))^2 ) / |L|
 *
 * Weight divergence (Sec. 4.3) combines three channels of gradient
 * error, each converted to a weight-update change via the AdamW
 * sensitivity of Sec. 4.3.2:
 *   1. the layer's own Wgrad GEMM quantization (direct dW error);
 *   2. its Dgrad GEMM error, which perturbs the backward stream and
 *      corrupts the gradients of *earlier* layers — scaled by the
 *      per-layer amplification measured by the Step-2 backward probe
 *      (the backward map dY_top -> g_l is linear in the gradient, so a
 *      relative perturbation injected mid-stream is modeled as the
 *      top-injected response scaled by its relative size);
 *   3. its forward-GEMM output error, which perturbs downstream
 *      activations and thereby every layer's gradient — scaled by the
 *      Step-3 forward-probe amplification.
 */
#ifndef SNIP_CORE_DIVERGENCE_H
#define SNIP_CORE_DIVERGENCE_H

#include "core/flops_model.h"
#include "core/noise_probe.h"
#include "core/stats_collector.h"

namespace snip {

/** What the quality metric q_ij is built from (ablations + the
 *  min-abs-err / min-rel-err baselines reuse this analyzer). */
enum class QualityMetric
{
    Snip,       ///< loss divergence + weight divergence (the paper's Q)
    LossOnly,   ///< forward loss divergence only (ablation)
    WeightOnly, ///< backward weight divergence only (ablation)
    AbsError,   ///< sum of absolute quantization errors (baseline)
    RelError,   ///< sum of relative quantization errors (baseline)
};

/** Parse "snip"/"loss_only"/"weight_only"/"abs_err"/"rel_err". */
QualityMetric qualityMetricByName(const std::string &name);

/** Cost breakdown of one (layer, option) cell. */
struct OptionCost
{
    double loss_div = 0.0;
    double weight_div = 0.0;
    double quality = 0.0;    ///< per the selected metric
    double efficiency = 0.0; ///< e_ij, share of total FLOPs in FP4
};

/** The full (layers x options) cost table the ILP consumes. */
struct DivergenceTable
{
    std::vector<LayerScheme> options;
    /** cell[layer][option]. */
    std::vector<std::vector<OptionCost>> cell;

    int numLayers() const { return static_cast<int>(cell.size()); }
    int numOptions() const
    {
        return static_cast<int>(options.size());
    }
};

/** Analyzer inputs beyond the stats themselves. */
struct DivergenceOptions
{
    QualityMetric metric = QualityMetric::Snip;
    /** Relative weight of weight divergence in Q (paper uses 1). */
    double weight_div_scale = 1.0;
};

/** Builds DivergenceTables from collected statistics. */
class DivergenceAnalyzer
{
  public:
    /**
     * @param bwd_probe Step-2 result; may be null only for metrics that
     *                  do not need weight divergence
     * @param fwd_probe Step-3 result; same caveat
     */
    DivergenceAnalyzer(const TrainingStats &stats,
                       const ProbeResult *bwd_probe,
                       const ProbeResult *fwd_probe,
                       const FlopsModel &flops);

    /** Build the cost table for an option set. */
    DivergenceTable analyze(const std::vector<LayerScheme> &options,
                            const DivergenceOptions &opts = {}) const;

    /**
     * Sec. 4.2 estimate of the forward loss impact of quantizing one
     * layer's X and W at @p precision (Fig. 13's "Estimation" series).
     * Returns the *relative* loss change |L'-L|/|L|.
     */
    double estimateLossImpact(int layer, Precision precision) const;

    /** Loss divergence of one (layer, option). */
    double lossDivergence(int layer, const LayerScheme &opt) const;

    /** Weight divergence of one (layer, option). */
    double weightDivergence(int layer, const LayerScheme &opt) const;

  private:
    /** Quant error of a role tensor at a precision (0 for BF16). */
    double qerr(int layer, Precision p, TensorRole role) const;

    /** Direct dW error of the layer's Wgrad GEMM under @p p. */
    double directWgradError(int layer, Precision p) const;

    /** Relative backward-stream error added by the Dgrad GEMM. */
    double dgradRelativeError(int layer, Precision p) const;

    /** Relative forward-stream error added by the Fwd GEMM. */
    double fwdRelativeError(int layer, Precision p) const;

    const TrainingStats &stats_;
    const FlopsModel &flops_;
    std::vector<double> bwd_amp_; ///< Step-2 amplification per layer
    std::vector<double> fwd_amp_; ///< Step-3 amplification per layer
    bool has_probes_ = false;
};

} // namespace snip

#endif // SNIP_CORE_DIVERGENCE_H
