#include "core/flops_model.h"

#include "util/logging.h"

namespace snip {

double
precisionThroughput(Precision p)
{
    switch (p) {
        case Precision::BF16:
            return 1.0;
        case Precision::FP8:
            return 2.0;
        case Precision::FP6:
            // No published Blackwell FP6 GEMM rate; assume bandwidth-
            // proportional 16/6.
            return 16.0 / 6.0;
        case Precision::FP4:
            return 4.0;
    }
    return 1.0;
}

FlopsModel::FlopsModel(const LayerRegistry &registry)
    : layer_flops_(registry.allFlopsPerToken())
{
    for (double f : layer_flops_)
        total_flops_ += f;
}

double
FlopsModel::fp4Fraction(const PrecisionScheme &scheme) const
{
    return scheme.fp4FlopFraction(layer_flops_);
}

double
FlopsModel::efficiencyContribution(int layer,
                                   const LayerScheme &opt) const
{
    SNIP_ASSERT(layer >= 0 &&
                layer < static_cast<int>(layer_flops_.size()));
    return layer_flops_[static_cast<size_t>(layer)] / total_flops_ *
           opt.fp4Fraction();
}

double
FlopsModel::layerTime(int layer, const LayerScheme &opt) const
{
    SNIP_ASSERT(layer >= 0 &&
                layer < static_cast<int>(layer_flops_.size()));
    const double per_gemm =
        layer_flops_[static_cast<size_t>(layer)] / kGemmsPerLayer;
    double t = 0.0;
    for (int g = 0; g < kGemmsPerLayer; ++g) {
        t += per_gemm /
             precisionThroughput(opt.gemm[static_cast<size_t>(g)]);
    }
    return t;
}

double
FlopsModel::blockTime(int block, const PrecisionScheme &scheme) const
{
    double t = 0.0;
    for (int r = 0; r < kRolesPerBlock; ++r) {
        int idx = block * kRolesPerBlock + r;
        t += layerTime(idx, scheme.layers[static_cast<size_t>(idx)]);
    }
    return t;
}

double
FlopsModel::totalTime(const PrecisionScheme &scheme) const
{
    SNIP_ASSERT(scheme.layers.size() == layer_flops_.size());
    double t = 0.0;
    for (size_t i = 0; i < layer_flops_.size(); ++i)
        t += layerTime(static_cast<int>(i), scheme.layers[i]);
    return t;
}

} // namespace snip
