#include "core/snip_optimizer.h"

#include "util/logging.h"

namespace snip {

IlpProblem
buildIlp(const DivergenceTable &table, double target_fp4_fraction,
         const FlopsModel &flops, const PipelineConstraint &pipeline)
{
    SNIP_ASSERT(target_fp4_fraction >= 0.0 &&
                target_fp4_fraction <= 1.0,
                "target must be in [0,1]");
    const int m = table.numLayers();
    const int n = table.numOptions();

    IlpProblem problem;
    problem.target = target_fp4_fraction;
    problem.quality.resize(static_cast<size_t>(m));
    problem.efficiency.resize(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
        auto &qrow = problem.quality[static_cast<size_t>(i)];
        auto &erow = problem.efficiency[static_cast<size_t>(i)];
        qrow.resize(static_cast<size_t>(n));
        erow.resize(static_cast<size_t>(n));
        for (int j = 0; j < n; ++j) {
            const OptionCost &c =
                table.cell[static_cast<size_t>(i)][static_cast<size_t>(j)];
            qrow[static_cast<size_t>(j)] = c.quality;
            erow[static_cast<size_t>(j)] = c.efficiency;
        }
    }

    if (pipeline.n_stages > 1) {
        SNIP_ASSERT(m % kRolesPerBlock == 0);
        const int n_blocks = m / kRolesPerBlock;
        std::vector<int> per_stage = pipeline.blocks_per_stage;
        if (per_stage.empty()) {
            // Even split: ceil for the first stages, remainder last.
            const int K = pipeline.n_stages;
            const int base = (n_blocks + K - 1) / K;
            int assigned = 0;
            for (int k = 0; k < K; ++k) {
                int take = std::min(base, n_blocks - assigned);
                per_stage.push_back(take);
                assigned += take;
            }
            SNIP_ASSERT(assigned == n_blocks, "bad stage split");
        }
        int first_block = 0;
        for (int take : per_stage) {
            IlpGroup g;
            g.first = first_block * kRolesPerBlock;
            g.count = take * kRolesPerBlock;
            // Stage target proportional to the stage's FLOP share, so
            // every stage reaches the same *local* FP4 fraction and the
            // pipeline stays balanced (Sec. 5.3).
            double stage_flops = 0.0;
            for (int i = g.first; i < g.first + g.count; ++i)
                stage_flops +=
                    flops.layerFlops()[static_cast<size_t>(i)];
            g.target = target_fp4_fraction * stage_flops /
                       flops.totalFlops();
            problem.groups.push_back(g);
            first_block += take;
        }
    }
    return problem;
}

SchemeSelection
selectScheme(const DivergenceTable &table, double target_fp4_fraction,
             const FlopsModel &flops, const IlpSolveOptions &solve,
             const PipelineConstraint &pipeline)
{
    IlpProblem problem =
        buildIlp(table, target_fp4_fraction, flops, pipeline);
    SchemeSelection sel;
    sel.ilp = solveIlp(problem, solve);
    if (!sel.ilp.feasible) {
        fatal("SNIP ILP infeasible at target ", target_fp4_fraction,
              " — option set lacks an all-FP4 option?");
    }
    sel.scheme = PrecisionScheme(static_cast<size_t>(table.numLayers()));
    for (int i = 0; i < table.numLayers(); ++i) {
        sel.scheme.layers[static_cast<size_t>(i)] =
            table.options[static_cast<size_t>(
                sel.ilp.choice[static_cast<size_t>(i)])];
    }
    sel.fp4_fraction = flops.fp4Fraction(sel.scheme);
    return sel;
}

} // namespace snip
