#include "core/noise_probe.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace snip {

std::vector<double>
ProbeResult::relativeAmplification() const
{
    std::vector<double> out(grad_delta.size(), 0.0);
    if (noise_norm <= 0.0 || inject_point_norm <= 0.0)
        return out;
    const double rho = noise_norm / inject_point_norm;
    for (size_t i = 0; i < grad_delta.size(); ++i)
        out[i] = grad_delta[i] / rho;
    return out;
}

ProbeResult
runNoiseProbe(LlamaModel &model, const Batch &batch,
              const TrainingStats &baseline, ProbeKind kind,
              const ProbeOptions &options)
{
    const LayerRegistry &reg = model.registry();
    SNIP_ASSERT(baseline.layers.size() ==
                static_cast<size_t>(reg.numLinear()));
    SNIP_ASSERT(!baseline.layers.empty() &&
                baseline.layers[0].dw_dump.numel() > 0,
                "probe requires gradient dumps (StatsOptions::"
                "dump_gradients)");

    ProbeResult result;
    result.kind = kind;
    result.inject_point_norm = kind == ProbeKind::Forward
                                   ? baseline.hidden_norm
                                   : baseline.hidden_grad_norm;
    const double eps = options.relative_eps * result.inject_point_norm;
    SNIP_ASSERT(eps > 0.0, "degenerate injection point");

    // Probes run at high precision like the stats pass.
    const PrecisionScheme active = model.currentScheme();
    model.setScheme(PrecisionScheme::uniform(
        static_cast<size_t>(reg.numLinear()), Precision::BF16));

    if (kind == ProbeKind::Forward)
        model.setForwardNoise(eps);
    else
        model.setBackwardNoise(eps);

    model.zeroGrad();
    LossResult loss = model.forwardLoss(batch.tokens, batch.targets,
                                        batch.batch, batch.seq);
    model.backward(loss.dlogits);

    model.setForwardNoise(0.0);
    model.setBackwardNoise(0.0);
    result.noise_norm = model.lastNoiseNorm();
    model.setScheme(active);

    result.grad_delta.resize(static_cast<size_t>(reg.numLinear()));
    for (int i = 0; i < reg.numLinear(); ++i) {
        const Tensor &noisy = model.linear(i).grad();
        result.grad_delta[static_cast<size_t>(i)] = diffNorm(
            noisy, baseline.layers[static_cast<size_t>(i)].dw_dump);
    }
    return result;
}

} // namespace snip
