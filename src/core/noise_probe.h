/**
 * @file
 * Steps 2-3 of the SNIP workflow (Fig. 6): noise-injection probes.
 *
 * Computing the second-order derivatives ||d(dL/dW_l)/dX_j||_F exactly
 * is prohibitive, so the paper estimates them stochastically via
 * Theorem 4.2: inject a small Gaussian perturbation at the last layer —
 * into the backward gradient stream (Step 2) or the forward activations
 * (Step 3) — rerun forward+backward on the *same batch* without
 * updating weights, and measure the per-layer Frobenius norm of the
 * change in each weight gradient against the Step-1 dump.
 */
#ifndef SNIP_CORE_NOISE_PROBE_H
#define SNIP_CORE_NOISE_PROBE_H

#include <vector>

#include "core/stats_collector.h"

namespace snip {

/** Where the probe injects its perturbation. */
enum class ProbeKind
{
    Backward, ///< Step 2: noise into the last block's incoming gradient
    Forward,  ///< Step 3: noise into the last block's output activation
};

/** Result of one probe pass. */
struct ProbeResult
{
    ProbeKind kind = ProbeKind::Backward;
    /** ||dW_l(noisy) - dW_l(baseline)||_F per layer. */
    std::vector<double> grad_delta;
    /** Actual norm of the injected noise (the eps of Theorem 4.2). */
    double noise_norm = 0.0;
    /** Norm of the stream at the injection point (baseline pass). */
    double inject_point_norm = 0.0;

    /**
     * Per-layer sensitivity to a *unit-relative* perturbation of the
     * injected stream: grad_delta[l] / (noise_norm/inject_point_norm).
     */
    std::vector<double> relativeAmplification() const;
};

/** Probe controls. */
struct ProbeOptions
{
    /** Noise norm as a fraction of the injection-point norm. */
    double relative_eps = 1e-3;
};

/**
 * Run one probe: injects noise of norm relative_eps * (injection-point
 * norm from @p baseline), reruns forward+backward in uniform BF16 on
 * the same batch, and diffs each layer's dW against the dumps stored in
 * @p baseline. Weights are not updated; gradients are left dirty (the
 * caller snapshots/zeroes as needed). The model's active scheme is
 * restored on return.
 */
ProbeResult runNoiseProbe(LlamaModel &model, const Batch &batch,
                          const TrainingStats &baseline, ProbeKind kind,
                          const ProbeOptions &options = {});

} // namespace snip

#endif // SNIP_CORE_NOISE_PROBE_H
