/**
 * @file
 * Step 6 / orchestration: the SnipController runs the whole Fig. 6
 * workflow — collect stats, probe, analyze, solve, apply — periodically
 * during training.
 *
 * The paper runs analysis + ILP asynchronously on the CPU while GPU
 * training continues; in this CPU-only reproduction the controller runs
 * them inline but accounts for the overhead separately (the extra
 * passes of Steps 1-3 and the solve time), so the paper's overhead
 * discussion (Sec. 6.3) can still be reproduced.
 */
#ifndef SNIP_CORE_CONTROLLER_H
#define SNIP_CORE_CONTROLLER_H

#include "core/snip_optimizer.h"

namespace snip {

namespace runtime {
class ThreadPool;
} // namespace runtime

/** Overhead accounting of one scheme update. */
struct UpdateOverhead
{
    /** Extra forward+backward passes run (Steps 1-3 => 3). */
    int extra_passes = 0;
    /** ILP wall-clock seconds. */
    double solve_seconds = 0.0;
    /** ILP nodes explored. */
    int64_t ilp_nodes = 0;
};

/** Periodic scheme-update driver. */
class SnipController
{
  public:
    /** All knobs of the SNIP pipeline. */
    struct Config
    {
        /** Efficiency target E_t: required FP4 FLOP fraction. */
        double target_fp4_fraction = 0.5;
        /** Steps between scheme regenerations (paper: ~100k real
         *  steps; scaled down here). */
        int64_t update_interval = 100;
        /** Regenerate at step 0 (before the first update)? */
        bool update_at_start = true;
        OptionSetKind option_set = OptionSetKind::Standard;
        QualityMetric metric = QualityMetric::Snip;
        double weight_div_scale = 1.0;
        ProbeOptions probe;
        IlpSolveOptions solve;
        PipelineConstraint pipeline;
        /** Pool for the statistics sweep (Step 1); null = the
         *  process-wide shared pool, i.e. the same instance the
         *  trainer's kernels run on. */
        runtime::ThreadPool *pool = nullptr;
    };

    explicit SnipController(const Config &config) : config_(config) {}

    /**
     * Run Steps 1-6 once on @p batch and apply the resulting scheme to
     * the model. Leaves parameter gradients dirty — callers zero them
     * before their next real training pass.
     *
     * @param pool overrides Config::pool for this update when non-null
     *             (the Trainer threads its own pool through here); both
     *             null means the process-wide shared pool.
     */
    SchemeSelection updateScheme(LlamaModel &model, AdamW *optimizer,
                                 const Batch &batch,
                                 runtime::ThreadPool *pool = nullptr);

    /**
     * Trainer hook: regenerate the scheme when @p step hits the update
     * cadence. Returns true when an update ran. @p pool as in
     * updateScheme().
     */
    bool maybeUpdate(LlamaModel &model, AdamW *optimizer,
                     const Batch &batch, int64_t step,
                     runtime::ThreadPool *pool = nullptr);

    const Config &config() const { return config_; }

    bool hasSelection() const { return has_selection_; }
    const SchemeSelection &lastSelection() const { return selection_; }
    const TrainingStats &lastStats() const { return stats_; }
    const DivergenceTable &lastTable() const { return table_; }
    const UpdateOverhead &lastOverhead() const { return overhead_; }

  private:
    Config config_;
    SchemeSelection selection_;
    TrainingStats stats_;
    DivergenceTable table_;
    UpdateOverhead overhead_;
    bool has_selection_ = false;
};

} // namespace snip

#endif // SNIP_CORE_CONTROLLER_H
