/**
 * @file
 * Step 6 / orchestration: the SnipController runs the whole Fig. 6
 * workflow — collect stats, probe, analyze, solve, apply — periodically
 * during training.
 *
 * Two execution modes mirror the paper's Sec. 6.3 overhead discussion:
 *
 *  - **Inline** (Config::async = false, the default): Steps 1-6 run
 *    synchronously at the update boundary, exactly the historical
 *    behaviour. All solve time is *exposed* (the trainer waits).
 *  - **Async** (Config::async = true): Steps 1-3 still run inline at
 *    the boundary (they need the model), but the snapshot is handed to
 *    the background SchemeUpdateService (src/async/), which runs the
 *    divergence analysis and the ILP solve on a dedicated worker while
 *    training continues. The resulting scheme is applied at the
 *    predetermined boundary `snapshot_step + apply_delay`; if the
 *    worker is late the trainer blocks there (that residue is the
 *    *exposed* solve time, the rest is *hidden*). Because both the
 *    snapshot content and the application step are independent of
 *    worker timing and thread count, the scheme sequence and the
 *    training losses are bit-identical across thread counts — and
 *    with apply_delay = 0 they are bit-identical to inline mode.
 *
 * Solve results can be memoized across runs via Config::solve.cache
 * (ilp/solve_cache.h): repeated or warm-restarted searches that pose a
 * bit-identical problem skip the ILP entirely.
 *
 * UpdateOverhead splits each update's solver cost into hidden vs
 * exposed seconds so the paper's "the search overhead is hidden by
 * asynchronous execution" claim (Sec. 6.3) is measurable; see
 * bench/fig12_pipeline_timeline.cpp.
 */
#ifndef SNIP_CORE_CONTROLLER_H
#define SNIP_CORE_CONTROLLER_H

#include <memory>

#include "core/snip_optimizer.h"

namespace snip {

namespace runtime {
class ThreadPool;
} // namespace runtime

class SchemeUpdateService;
struct SchemeUpdateRequest;
struct SchemeUpdateResult;

/** Overhead accounting of one scheme update. */
struct UpdateOverhead
{
    /** Extra forward+backward passes run (Steps 1-3 => 3). */
    int extra_passes = 0;
    /** ILP wall-clock seconds (the solver's own timer). */
    double solve_seconds = 0.0;
    /** ILP nodes explored. */
    int64_t ilp_nodes = 0;
    /** Worker wall-clock of Steps 4-5 (analysis + solve). Inline mode:
     *  the same work measured on the trainer thread. */
    double work_seconds = 0.0;
    /** Portion of work_seconds overlapped with training steps. Always
     *  0 in inline mode. */
    double hidden_seconds = 0.0;
    /** Portion the trainer actually waited for (inline work, or the
     *  blocking wait at the apply boundary in async mode). */
    double exposed_seconds = 0.0;
    /** True when the ILP solution came out of the solve cache. */
    bool solve_cached = false;
    /** Update id this accounting belongs to (1-based). */
    uint64_t epoch = 0;
};

/** Running totals across all updates of one controller. */
struct OverheadTotals
{
    int updates = 0;
    double work_seconds = 0.0;
    double hidden_seconds = 0.0;
    double exposed_seconds = 0.0;
    int cache_hits = 0;
    /** Updates whose solve failed, resolved by keeping the current
     *  scheme (skip-update semantics). */
    int skipped = 0;
};

/** Periodic scheme-update driver. */
class SnipController
{
  public:
    /** All knobs of the SNIP pipeline. */
    struct Config
    {
        /** Efficiency target E_t: required FP4 FLOP fraction. */
        double target_fp4_fraction = 0.5;
        /** Steps between scheme regenerations (paper: ~100k real
         *  steps; scaled down here). */
        int64_t update_interval = 100;
        /** Regenerate at step 0 (before the first update)? */
        bool update_at_start = true;
        OptionSetKind option_set = OptionSetKind::Standard;
        QualityMetric metric = QualityMetric::Snip;
        double weight_div_scale = 1.0;
        ProbeOptions probe;
        /** Solver knobs; solve.cache (optional, not owned) enables the
         *  persistent solve cache. */
        IlpSolveOptions solve;
        PipelineConstraint pipeline;
        /** Pool for the statistics sweep (Step 1); null = the
         *  process-wide shared pool, i.e. the same instance the
         *  trainer's kernels run on. */
        runtime::ThreadPool *pool = nullptr;

        /** Run Steps 4-5 on the background worker (see file comment).
         */
        bool async = false;
        /** Steps between the snapshot boundary and the deterministic
         *  application boundary in async mode. Clamped to
         *  [0, update_interval - 1] so an update is always adopted
         *  before the next snapshot. 0 = submit-and-wait (bit-identical
         *  to inline mode). */
        int64_t apply_delay = 8;
    };

    explicit SnipController(const Config &config);
    ~SnipController();

    /**
     * Run Steps 1-6 once on @p batch and apply the resulting scheme to
     * the model — the synchronous path, regardless of Config::async.
     * Leaves parameter gradients dirty — callers zero them before
     * their next real training pass.
     *
     * @param pool overrides Config::pool for this update when non-null
     *             (the Trainer threads its own pool through here); both
     *             null means the process-wide shared pool.
     */
    SchemeSelection updateScheme(LlamaModel &model, AdamW *optimizer,
                                 const Batch &batch,
                                 runtime::ThreadPool *pool = nullptr);

    /**
     * Trainer hook, called every step. Regenerates the scheme when
     * @p step hits the update cadence; in async mode also adopts a
     * pending background result once @p step reaches its apply
     * boundary. Returns true when a scheme was applied to the model
     * during this call. @p pool as in updateScheme().
     */
    bool maybeUpdate(LlamaModel &model, AdamW *optimizer,
                     const Batch &batch, int64_t step,
                     runtime::ThreadPool *pool = nullptr);

    const Config &config() const { return config_; }

    bool hasSelection() const { return has_selection_; }
    const SchemeSelection &lastSelection() const { return selection_; }
    const TrainingStats &lastStats() const { return stats_; }
    const DivergenceTable &lastTable() const { return table_; }
    const UpdateOverhead &lastOverhead() const { return overhead_; }
    const OverheadTotals &totals() const { return totals_; }

    /** Updates snapshotted so far (== epoch of the newest snapshot). */
    uint64_t epoch() const { return epoch_; }

    /** True when an async update has been submitted but not applied. */
    bool hasPendingUpdate() const { return pending_; }
    /** Boundary the pending update will be applied at. */
    int64_t pendingApplyStep() const { return pending_apply_step_; }

    /**
     * Serializable controller state (train/checkpoint.cpp). Exporting
     * waits for any in-flight solve and captures its outcome, so a
     * checkpoint taken mid-interval resumes with the identical pending
     * scheme re-armed at the identical apply step.
     */
    struct PersistState
    {
        uint64_t epoch = 0;
        bool has_selection = false;
        PrecisionScheme applied_scheme; ///< last applied (Step 6)
        double applied_fp4_fraction = 0.0;
        bool pending = false;
        int64_t pending_apply_step = 0;
        PrecisionScheme pending_scheme;
        double pending_fp4_fraction = 0.0;
    };

    PersistState exportState();
    void importState(const PersistState &state);

  private:
    /** Steps 1-3 on the trainer thread -> self-contained snapshot. */
    SchemeUpdateRequest makeSnapshot(LlamaModel &model, AdamW *optimizer,
                                     const Batch &batch, int64_t step,
                                     runtime::ThreadPool *pool);
    /** Block for the pending epoch and apply it (Step 6). */
    void adoptPending(LlamaModel &model);
    void applyResult(LlamaModel &model, const SchemeUpdateResult &result,
                     double waited_seconds);
    int64_t effectiveApplyDelay() const;

    Config config_;
    std::unique_ptr<SchemeUpdateService> service_;
    SchemeSelection selection_;
    TrainingStats stats_;
    DivergenceTable table_;
    UpdateOverhead overhead_;
    OverheadTotals totals_;
    bool has_selection_ = false;

    uint64_t epoch_ = 0;
    bool pending_ = false;
    uint64_t pending_epoch_ = 0;
    int64_t pending_apply_step_ = 0;
    /** Pending update re-armed from a checkpoint: already solved, just
     *  awaiting its apply boundary. */
    bool rearmed_ = false;
    SchemeSelection rearmed_selection_;
    /** Trainer seconds already spent blocked on the pending epoch
     *  outside adoptPending (exportState's wait); charged to
     *  exposed_seconds when the update is adopted. */
    double pending_wait_seconds_ = 0.0;
};

} // namespace snip

#endif // SNIP_CORE_CONTROLLER_H
