/**
 * @file
 * Analytical FLOPs / throughput model.
 *
 * The paper's efficiency metric is the fraction of linear-layer FLOPs
 * executed in FP4 (Sec. 5.1, Sec. 6.1), since no GPU at submission time
 * natively ran both FP8 and FP4. For the pipeline timeline (Fig. 12) a
 * relative-throughput model is also needed; per NVIDIA Blackwell
 * (Sec. 2.2), FP4 has 2x the TFLOPS of FP8 and 4x that of BF16.
 */
#ifndef SNIP_CORE_FLOPS_MODEL_H
#define SNIP_CORE_FLOPS_MODEL_H

#include "nn/layer_registry.h"
#include "schemes/scheme.h"

namespace snip {

/** Relative GEMM throughput vs BF16 (Blackwell ratios). */
double precisionThroughput(Precision p);

/** FLOPs and time accounting over a model's linear layers. */
class FlopsModel
{
  public:
    /** Empty model (no layers); a value-type placeholder so snapshot
     *  structs (async/scheme_service.h) can default-construct. */
    FlopsModel() = default;

    explicit FlopsModel(const LayerRegistry &registry);

    /** Per-layer GEMM FLOPs per token (all three GEMMs). */
    const std::vector<double> &layerFlops() const { return layer_flops_; }

    /** Sum of layerFlops(). */
    double totalFlops() const { return total_flops_; }

    /** Fraction of linear FLOPs in FP4 under @p scheme (metric E). */
    double fp4Fraction(const PrecisionScheme &scheme) const;

    /**
     * Efficiency contribution e_{i,option}: this layer's share of total
     * FLOPs times the option's FP4 fraction — the ILP's e coefficients.
     */
    double efficiencyContribution(int layer, const LayerScheme &opt) const;

    /**
     * Relative execution time of one layer's GEMMs under a scheme,
     * normalized so BF16 execution of the same layer costs
     * layerFlops(i). Lower precision divides time by its throughput.
     */
    double layerTime(int layer, const LayerScheme &opt) const;

    /** Sum of layerTime over a block's seven layers. */
    double blockTime(int block, const PrecisionScheme &scheme) const;

    /** Total relative time of the whole model under a scheme. */
    double totalTime(const PrecisionScheme &scheme) const;

  private:
    std::vector<double> layer_flops_;
    double total_flops_ = 0.0;
};

} // namespace snip

#endif // SNIP_CORE_FLOPS_MODEL_H
