#include "core/controller.h"

#include <algorithm>
#include <chrono>

#include "async/scheme_service.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/logging.h"

namespace snip {

namespace {

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

SnipController::SnipController(const Config &config)
    : config_(config),
      service_(std::make_unique<SchemeUpdateService>(
          config.async ? SchemeUpdateService::Mode::Async
                       : SchemeUpdateService::Mode::Inline))
{
}

SnipController::~SnipController() = default;

int64_t
SnipController::effectiveApplyDelay() const
{
    int64_t delay = std::max<int64_t>(0, config_.apply_delay);
    // An update must be adopted before the next snapshot boundary, or
    // the handoff would hold two epochs in flight.
    if (config_.update_interval > 0)
        delay = std::min(delay, config_.update_interval - 1);
    return delay;
}

SchemeUpdateRequest
SnipController::makeSnapshot(LlamaModel &model, AdamW *optimizer,
                             const Batch &batch, int64_t step,
                             runtime::ThreadPool *pool)
{
    // Steps 1-3: instrumented iteration + the two noise probes. These
    // need the model, so they always run on the trainer thread.
    StatsOptions stats_opts;
    stats_opts.pool = pool ? pool : config_.pool;
    stats_ = collectTrainingStats(model, optimizer, batch, stats_opts);
    ProbeResult bwd = runNoiseProbe(model, batch, stats_,
                                    ProbeKind::Backward, config_.probe);
    ProbeResult fwd = runNoiseProbe(model, batch, stats_,
                                    ProbeKind::Forward, config_.probe);

    SchemeUpdateRequest req;
    req.epoch = ++epoch_;
    req.snapshot_step = step;
    req.apply_step = step + effectiveApplyDelay();
    // The probes above already diffed against the gradient dumps and
    // the analysis never reads them, so keep them out of the snapshot
    // copy: park them aside, copy the light scalars, put them back.
    std::vector<Tensor> dumps;
    dumps.reserve(stats_.layers.size());
    for (auto &layer : stats_.layers)
        dumps.push_back(std::move(layer.dw_dump));
    req.stats = stats_;
    for (size_t i = 0; i < dumps.size(); ++i)
        stats_.layers[i].dw_dump = std::move(dumps[i]);
    req.bwd_probe = std::move(bwd);
    req.fwd_probe = std::move(fwd);
    req.flops = FlopsModel(model.registry());
    req.options = makeOptionSet(config_.option_set);
    req.divergence.metric = config_.metric;
    req.divergence.weight_div_scale = config_.weight_div_scale;
    req.target_fp4_fraction = config_.target_fp4_fraction;
    req.solve = config_.solve;
    req.pipeline = config_.pipeline;

    overhead_ = UpdateOverhead{};
    overhead_.extra_passes = 3;
    overhead_.epoch = req.epoch;
    return req;
}

void
SnipController::applyResult(LlamaModel &model,
                            const SchemeUpdateResult &result,
                            double waited_seconds)
{
    if (result.failed) {
        // Skip-update semantics: the worker's solve failed, so this
        // epoch resolves by keeping the scheme already on the model.
        // Training continues deterministically — the boundary was
        // honored, nothing was applied.
        warn("scheme update epoch ", result.epoch,
             " resolved as a skip; keeping the current scheme");
        ++totals_.skipped;
        totals_.exposed_seconds += waited_seconds;
        overhead_.epoch = result.epoch;
        overhead_.exposed_seconds = waited_seconds;
        telemetry::count(telemetry::Counter::SchemeUpdateSkips);
        telemetry::recordTimer(telemetry::Timer::SchemeWait,
                               waited_seconds);
        return;
    }

    // Step 6: apply.
    model.setScheme(result.selection.scheme);
    selection_ = result.selection;
    table_ = result.table;
    has_selection_ = true;

    overhead_.epoch = result.epoch;
    overhead_.solve_seconds = result.selection.ilp.solve_seconds;
    overhead_.ilp_nodes = result.selection.ilp.nodes_explored;
    overhead_.work_seconds = result.work_seconds;
    overhead_.exposed_seconds = waited_seconds;
    overhead_.hidden_seconds =
        std::max(0.0, result.work_seconds - waited_seconds);
    overhead_.solve_cached = result.selection.ilp.from_cache;

    ++totals_.updates;
    totals_.work_seconds += overhead_.work_seconds;
    totals_.hidden_seconds += overhead_.hidden_seconds;
    totals_.exposed_seconds += overhead_.exposed_seconds;
    totals_.cache_hits += overhead_.solve_cached ? 1 : 0;

    telemetry::count(telemetry::Counter::SchemeUpdates);
    if (overhead_.solve_cached)
        telemetry::count(telemetry::Counter::SchemeSolveCached);
    telemetry::addSeconds(telemetry::Seconds::SchemeWork,
                          overhead_.work_seconds);
    telemetry::addSeconds(telemetry::Seconds::SchemeHidden,
                          overhead_.hidden_seconds);
    telemetry::addSeconds(telemetry::Seconds::SchemeExposed,
                          overhead_.exposed_seconds);
    telemetry::recordTimer(telemetry::Timer::SchemeWait, waited_seconds);

    debugLog("SNIP scheme updated: epoch=", result.epoch,
             " fp4_fraction=", selection_.fp4_fraction,
             " objective=", selection_.ilp.objective,
             selection_.ilp.from_cache ? " (cached solve)" : "");
}

SchemeSelection
SnipController::updateScheme(LlamaModel &model, AdamW *optimizer,
                             const Batch &batch,
                             runtime::ThreadPool *pool)
{
    // Synchronous Steps 1-6 on the caller. Bypasses the service so a
    // manual update never races a pending async epoch.
    SchemeUpdateRequest req =
        makeSnapshot(model, optimizer, batch, /*step=*/0, pool);
    req.apply_step = req.snapshot_step;
    SchemeUpdateResult result = runSchemeUpdateGuarded(req);
    applyResult(model, result, /*waited_seconds=*/result.work_seconds);
    return selection_;
}

void
SnipController::adoptPending(LlamaModel &model)
{
    SNIP_ASSERT(pending_, "no pending update to adopt");
    if (rearmed_) {
        // Re-armed from a checkpoint: the solve happened before the
        // checkpoint was written, so adoption is free in this process.
        SchemeUpdateResult result;
        result.epoch = pending_epoch_;
        result.apply_step = pending_apply_step_;
        result.selection = rearmed_selection_;
        applyResult(model, result, /*waited_seconds=*/0.0);
        rearmed_ = false;
        pending_ = false;
        return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    SchemeUpdateResult result = [&] {
        trace::TraceScope span(trace::Category::Scheme, "handoff_wait",
                               "epoch",
                               static_cast<int64_t>(pending_epoch_));
        return service_->wait(pending_epoch_);
    }();
    // Any earlier blocking wait on this epoch (exportState during a
    // mid-interval checkpoint) was trainer time too.
    applyResult(model, result,
                secondsSince(t0) + pending_wait_seconds_);
    pending_wait_seconds_ = 0.0;
    pending_ = false;
}

bool
SnipController::maybeUpdate(LlamaModel &model, AdamW *optimizer,
                            const Batch &batch, int64_t step,
                            runtime::ThreadPool *pool)
{
    bool applied = false;
    // Deterministic handoff: a pending update is adopted exactly when
    // the trainer reaches its apply boundary, blocking if the worker
    // has not finished — never earlier, never later.
    if (pending_ && step >= pending_apply_step_) {
        adoptPending(model);
        applied = true;
    }

    const bool due =
        (!has_selection_ && !pending_ && config_.update_at_start) ||
        (config_.update_interval > 0 && step > 0 &&
         step % config_.update_interval == 0);
    if (!due)
        return applied;

    if (pending_) {
        // A snapshot boundary arrived while an update was still in
        // flight (apply_delay clamped == interval - 1 and a start
        // trigger offset). Adopt it first so one epoch is in flight at
        // a time.
        adoptPending(model);
        applied = true;
    }

    if (!config_.async) {
        updateScheme(model, optimizer, batch, pool);
        return true;
    }

    SchemeUpdateRequest req =
        makeSnapshot(model, optimizer, batch, step, pool);
    pending_epoch_ = req.epoch;
    pending_apply_step_ = req.apply_step;
    pending_ = true;
    service_->submit(std::move(req));
    if (pending_apply_step_ <= step) {
        // apply_delay == 0: submit-and-wait, bit-identical to inline.
        adoptPending(model);
        applied = true;
    }
    return applied;
}

SnipController::PersistState
SnipController::exportState()
{
    PersistState state;
    state.epoch = epoch_;
    state.has_selection = has_selection_;
    state.applied_scheme = selection_.scheme;
    state.applied_fp4_fraction = selection_.fp4_fraction;
    state.pending = pending_;
    if (pending_) {
        state.pending_apply_step = pending_apply_step_;
        if (rearmed_) {
            state.pending_scheme = rearmed_selection_.scheme;
            state.pending_fp4_fraction = rearmed_selection_.fp4_fraction;
        } else {
            // Wait for the in-flight solve; its outcome is part of the
            // checkpoint. The update stays pending in this process,
            // and the time blocked here counts as exposed when it is
            // eventually adopted.
            const auto t0 = std::chrono::steady_clock::now();
            SchemeUpdateResult result = service_->wait(pending_epoch_);
            pending_wait_seconds_ += secondsSince(t0);
            if (result.failed) {
                // The pending epoch resolved as a skip: a resumed run
                // has nothing to re-arm (the current scheme simply
                // stays), so persist "no pending update".
                state.pending = false;
            } else {
                state.pending_scheme = result.selection.scheme;
                state.pending_fp4_fraction =
                    result.selection.fp4_fraction;
            }
        }
    }
    return state;
}

void
SnipController::importState(const PersistState &state)
{
    epoch_ = state.epoch;
    has_selection_ = state.has_selection;
    selection_ = SchemeSelection{};
    selection_.scheme = state.applied_scheme;
    selection_.fp4_fraction = state.applied_fp4_fraction;
    stats_ = TrainingStats{};
    table_ = DivergenceTable{};
    overhead_ = UpdateOverhead{};
    pending_ = state.pending;
    pending_wait_seconds_ = 0.0;
    rearmed_ = false;
    if (pending_) {
        pending_epoch_ = epoch_;
        pending_apply_step_ = state.pending_apply_step;
        rearmed_ = true;
        rearmed_selection_ = SchemeSelection{};
        rearmed_selection_.scheme = state.pending_scheme;
        rearmed_selection_.fp4_fraction = state.pending_fp4_fraction;
    }
}

} // namespace snip
