#include "core/controller.h"

#include "util/logging.h"

namespace snip {

SchemeSelection
SnipController::updateScheme(LlamaModel &model, AdamW *optimizer,
                             const Batch &batch,
                             runtime::ThreadPool *pool)
{
    FlopsModel flops(model.registry());

    // Steps 1-3: instrumented iteration + the two noise probes.
    StatsOptions stats_opts;
    stats_opts.pool = pool ? pool : config_.pool;
    stats_ = collectTrainingStats(model, optimizer, batch, stats_opts);
    ProbeResult bwd = runNoiseProbe(model, batch, stats_,
                                    ProbeKind::Backward, config_.probe);
    ProbeResult fwd = runNoiseProbe(model, batch, stats_,
                                    ProbeKind::Forward, config_.probe);

    // Step 4: divergence analysis.
    DivergenceAnalyzer analyzer(stats_, &bwd, &fwd, flops);
    DivergenceOptions dopts;
    dopts.metric = config_.metric;
    dopts.weight_div_scale = config_.weight_div_scale;
    table_ = analyzer.analyze(makeOptionSet(config_.option_set), dopts);

    // Step 5: solve the ILP.
    selection_ = selectScheme(table_, config_.target_fp4_fraction, flops,
                              config_.solve, config_.pipeline);

    // Step 6: apply.
    model.setScheme(selection_.scheme);
    has_selection_ = true;

    overhead_.extra_passes = 3;
    overhead_.solve_seconds = selection_.ilp.solve_seconds;
    overhead_.ilp_nodes = selection_.ilp.nodes_explored;

    debugLog("SNIP scheme updated: fp4_fraction=",
             selection_.fp4_fraction,
             " objective=", selection_.ilp.objective);
    return selection_;
}

bool
SnipController::maybeUpdate(LlamaModel &model, AdamW *optimizer,
                            const Batch &batch, int64_t step,
                            runtime::ThreadPool *pool)
{
    const bool due =
        (!has_selection_ && config_.update_at_start) ||
        (config_.update_interval > 0 && step > 0 &&
         step % config_.update_interval == 0);
    if (!due)
        return false;
    updateScheme(model, optimizer, batch, pool);
    return true;
}

} // namespace snip
