/**
 * @file
 * Step 5 of the SNIP workflow: build and solve the ILP of Sec. 5.2
 * (plus the pipeline-aware variant of Sec. 5.3), and turn the solution
 * into a PrecisionScheme.
 */
#ifndef SNIP_CORE_SNIP_OPTIMIZER_H
#define SNIP_CORE_SNIP_OPTIMIZER_H

#include "core/divergence.h"
#include "ilp/solver.h"

namespace snip {

/** Pipeline constraint configuration (Sec. 5.3). */
struct PipelineConstraint
{
    /** Number of pipeline stages K; 0 disables grouping. */
    int n_stages = 0;
    /** Blocks per stage (must sum to n_blocks); empty = even split
     *  with the remainder in the last stage. */
    std::vector<int> blocks_per_stage;
};

/** Outcome of one scheme-selection solve. */
struct SchemeSelection
{
    PrecisionScheme scheme;
    IlpSolution ilp;
    /** Achieved FP4 FLOP fraction of the selected scheme. */
    double fp4_fraction = 0.0;
};

/**
 * Build the ILP from a cost table: items = layers, options = the
 * table's option list, q = quality, e = efficiency contribution,
 * target = @p target_fp4_fraction. With a PipelineConstraint, one
 * efficiency constraint per stage is emitted, each proportional to the
 * stage's share of the FLOPs (so stages finish together — the paper's
 * balance goal).
 */
IlpProblem buildIlp(const DivergenceTable &table,
                    double target_fp4_fraction,
                    const FlopsModel &flops,
                    const PipelineConstraint &pipeline = {});

/** Solve and convert back to a PrecisionScheme. fatal() if infeasible
 *  (cannot happen for targets in [0,1] with an all-FP4 option). */
SchemeSelection selectScheme(const DivergenceTable &table,
                             double target_fp4_fraction,
                             const FlopsModel &flops,
                             const IlpSolveOptions &solve = {},
                             const PipelineConstraint &pipeline = {});

} // namespace snip

#endif // SNIP_CORE_SNIP_OPTIMIZER_H
