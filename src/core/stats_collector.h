/**
 * @file
 * Step 1 of the SNIP workflow (Fig. 6): collect statistics during one
 * instrumented high-precision training iteration.
 *
 * For every quantizable linear layer the collector records (Sec. 3.1):
 *   - Frobenius norms of inputs X, weights W, outputs Y, output
 *     gradients dY, input gradients dX, and weight gradients dW;
 *   - quantization-error norms of X/W/dY under every candidate
 *     precision's role policy;
 *   - the AdamW update-sensitivity term of Sec. 4.3.2.
 * It also snapshots each layer's dW tensor (the "gradient dump") for the
 * noise probes of Steps 2-3 to diff against.
 */
#ifndef SNIP_CORE_STATS_COLLECTOR_H
#define SNIP_CORE_STATS_COLLECTOR_H

#include <vector>

#include "data/batch.h"
#include "nn/model.h"
#include "optim/adamw.h"

namespace snip {

/** Candidate precisions the statistics pass measures errors for, in
 *  ascending-error order (FP8 < FP6 < FP4). */
inline constexpr Precision kCandidatePrecisions[] = {
    Precision::FP8, Precision::FP6, Precision::FP4};
inline constexpr int kNumCandidates = 3;

/** Index of a precision in kCandidatePrecisions; -1 for BF16. */
int candidateIndex(Precision p);

/** Per-layer statistics from the instrumented iteration. */
struct LayerStats
{
    int idx = -1;
    std::string name;
    /** GEMM dimensions: X is [M,K], W is [N,K], Y/dY are [M,N]. */
    int64_t m = 0, n = 0, k = 0;

    double x_norm = 0.0;
    double w_norm = 0.0;
    double y_norm = 0.0;
    double dy_norm = 0.0;
    double dx_norm = 0.0;
    double dw_norm = 0.0;

    /** qerr[candidate][role]: ||q(t)-t||_F under rolePolicy. Roles are
     *  indexed by TensorRole (Activation, Weight, OutputGrad). */
    double qerr[kNumCandidates][3] = {};

    /** ||dh/dg||_F / sqrt(numel) of the AdamW update (Sec. 4.3.2). */
    double opt_sensitivity = 0.0;

    /** Baseline weight-gradient dump for probe diffs. */
    Tensor dw_dump;
};

/** Everything Step 1 produces. */
struct TrainingStats
{
    std::vector<LayerStats> layers;
    /** Training loss L of the instrumented iteration. */
    double loss = 0.0;
    /** alpha * sqrt(1-b2^t) / (1-b1^t) shared across layers. */
    double opt_scale = 0.0;
    /** Norm of the last block's output (forward injection point). */
    double hidden_norm = 0.0;
    /** Norm of the gradient entering the last block. */
    double hidden_grad_norm = 0.0;
};

namespace runtime {
class ThreadPool;
} // namespace runtime

/** Knobs for the statistics pass. */
struct StatsOptions
{
    /** Also measure per-candidate quantization error norms. */
    bool measure_quant_errors = true;
    /** Keep per-layer dW dumps (needed by the probes). */
    bool dump_gradients = true;
    /** Pool for the per-candidate error sweep; null = the process-wide
     *  shared pool (runtime::globalThreadPool()). */
    runtime::ThreadPool *pool = nullptr;
};

/**
 * Run one instrumented forward+backward in uniform BF16 (the paper
 * collects statistics at high precision), restoring the model's active
 * scheme afterwards. Gradients are left in the model (zeroed first), so
 * the caller may follow up with probes and/or an optimizer step.
 *
 * @param optimizer may be null; optimizer-dependent statistics are then
 *                  left at zero (e.g. before the first step).
 */
TrainingStats collectTrainingStats(LlamaModel &model, AdamW *optimizer,
                                   const Batch &batch,
                                   const StatsOptions &options = {});

} // namespace snip

#endif // SNIP_CORE_STATS_COLLECTOR_H
