#include "core/stats_collector.h"

#include "quant/error_metrics.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace snip {

int
candidateIndex(Precision p)
{
    for (int c = 0; c < kNumCandidates; ++c) {
        if (kCandidatePrecisions[c] == p)
            return c;
    }
    return -1;
}

namespace {

/** LinearTap that fills LayerStats as tensors stream past. */
class CollectorTap : public LinearTap
{
  public:
    CollectorTap(std::vector<LayerStats> &layers, FakeQuantizer &quantizer,
                 const StatsOptions &options)
        : layers_(layers), quantizer_(quantizer), options_(options)
    {
    }

    void
    onForward(int idx, const Tensor &x, const Tensor &w,
              const Tensor &y) override
    {
        LayerStats &s = layers_[static_cast<size_t>(idx)];
        s.m = x.size(0);
        s.k = x.size(1);
        s.n = w.size(0);
        s.x_norm = frobeniusNorm(x);
        s.w_norm = frobeniusNorm(w);
        s.y_norm = frobeniusNorm(y);
        if (options_.measure_quant_errors) {
            // Each (candidate, role) measurement quantizes its own
            // tensor copy with nearest rounding (measureQuantError
            // forces Nearest, which never touches the quantizer's Rng),
            // so the sweep is embarrassingly parallel and writes
            // disjoint qerr slots.
            runtime::poolOrGlobal(options_.pool)
                .parallelFor(0, kNumCandidates * 2, 1,
                             [&](int64_t t0, int64_t t1) {
                for (int64_t t = t0; t < t1; ++t) {
                    const int c = static_cast<int>(t / 2);
                    const Precision p = kCandidatePrecisions[c];
                    const TensorRole role = (t % 2 == 0)
                                                ? TensorRole::Activation
                                                : TensorRole::Weight;
                    const Tensor &src =
                        role == TensorRole::Activation ? x : w;
                    s.qerr[c][static_cast<int>(role)] =
                        measureQuantError(src, rolePolicy(p, role),
                                          quantizer_)
                            .abs_error;
                }
            });
        }
    }

    void
    onBackward(int idx, const Tensor &dy, const Tensor &dx,
               const Tensor &dw) override
    {
        LayerStats &s = layers_[static_cast<size_t>(idx)];
        s.dy_norm = frobeniusNorm(dy);
        s.dx_norm = frobeniusNorm(dx);
        s.dw_norm = frobeniusNorm(dw);
        if (options_.measure_quant_errors) {
            runtime::poolOrGlobal(options_.pool)
                .parallelFor(0, kNumCandidates, 1,
                             [&](int64_t c0, int64_t c1) {
                for (int64_t c = c0; c < c1; ++c) {
                    const Precision p =
                        kCandidatePrecisions[static_cast<int>(c)];
                    s.qerr[c][static_cast<int>(TensorRole::OutputGrad)] =
                        measureQuantError(
                            dy, rolePolicy(p, TensorRole::OutputGrad),
                            quantizer_)
                            .abs_error;
                }
            });
        }
        if (options_.dump_gradients)
            s.dw_dump = dw;
    }

  private:
    std::vector<LayerStats> &layers_;
    FakeQuantizer &quantizer_;
    const StatsOptions &options_;
};

} // namespace

TrainingStats
collectTrainingStats(LlamaModel &model, AdamW *optimizer,
                     const Batch &batch, const StatsOptions &options)
{
    const LayerRegistry &reg = model.registry();
    TrainingStats stats;
    stats.layers.resize(static_cast<size_t>(reg.numLinear()));
    for (int i = 0; i < reg.numLinear(); ++i) {
        stats.layers[static_cast<size_t>(i)].idx = i;
        stats.layers[static_cast<size_t>(i)].name = reg.layerName(i);
    }

    // The paper collects statistics during a *high-precision* iteration
    // (Sec. 3.1); temporarily run uniform BF16.
    const PrecisionScheme active = model.currentScheme();
    model.setScheme(PrecisionScheme::uniform(
        static_cast<size_t>(reg.numLinear()), Precision::BF16));

    CollectorTap tap(stats.layers, model.quantizer(), options);
    model.setTap(&tap);
    model.zeroGrad();
    LossResult loss =
        model.forwardLoss(batch.tokens, batch.targets, batch.batch,
                          batch.seq);
    model.backward(loss.dlogits);
    model.setTap(nullptr);
    model.setScheme(active);

    stats.loss = loss.loss;
    stats.hidden_norm = model.lastHiddenNorm();
    stats.hidden_grad_norm = model.lastHiddenGradNorm();

    if (optimizer) {
        stats.opt_scale = optimizer->updateScaleFactor();
        for (int i = 0; i < reg.numLinear(); ++i) {
            // Pointer-identity lookup only: go through the const
            // accessor so the layer's packed-weight cache stays armed
            // (the non-const weight() assumes an impending mutation).
            const Linear &lin = model.linear(i);
            const int pidx = optimizer->paramIndexOf(&lin.weight());
            SNIP_ASSERT(pidx >= 0, "linear weight not in optimizer");
            stats.layers[static_cast<size_t>(i)].opt_sensitivity =
                optimizer->updateSensitivityNorm(
                    static_cast<size_t>(pidx));
        }
    }
    return stats;
}

} // namespace snip
