#include "core/divergence.h"

#include <cmath>

#include "util/logging.h"

namespace snip {

QualityMetric
qualityMetricByName(const std::string &name)
{
    if (name == "snip")
        return QualityMetric::Snip;
    if (name == "loss_only")
        return QualityMetric::LossOnly;
    if (name == "weight_only")
        return QualityMetric::WeightOnly;
    if (name == "abs_err")
        return QualityMetric::AbsError;
    if (name == "rel_err")
        return QualityMetric::RelError;
    fatal("unknown quality metric: ", name);
}

DivergenceAnalyzer::DivergenceAnalyzer(const TrainingStats &stats,
                                       const ProbeResult *bwd_probe,
                                       const ProbeResult *fwd_probe,
                                       const FlopsModel &flops)
    : stats_(stats), flops_(flops)
{
    const size_t n = stats.layers.size();
    bwd_amp_.assign(n, 0.0);
    fwd_amp_.assign(n, 0.0);
    if (bwd_probe && fwd_probe) {
        SNIP_ASSERT(bwd_probe->grad_delta.size() == n &&
                    fwd_probe->grad_delta.size() == n);
        bwd_amp_ = bwd_probe->relativeAmplification();
        fwd_amp_ = fwd_probe->relativeAmplification();
        has_probes_ = true;
    }
}

double
DivergenceAnalyzer::qerr(int layer, Precision p, TensorRole role) const
{
    if (p == Precision::BF16) {
        // BF16 rounding error of FP32 values is ~2^-8 relative —
        // treated as the zero reference, like the paper's baseline.
        return 0.0;
    }
    const int c = candidateIndex(p);
    SNIP_ASSERT(c >= 0);
    return stats_.layers[static_cast<size_t>(layer)]
        .qerr[c][static_cast<int>(role)];
}

double
DivergenceAnalyzer::lossDivergence(int layer, const LayerScheme &opt) const
{
    const LayerStats &s = stats_.layers[static_cast<size_t>(layer)];
    const Precision p = opt.of(GemmKind::Fwd);
    const double dx_err = qerr(layer, p, TensorRole::Activation);
    const double dw_err = qerr(layer, p, TensorRole::Weight);
    const double mk = std::sqrt(static_cast<double>(s.m * s.k));
    const double nk = std::sqrt(static_cast<double>(s.n * s.k));
    // Sec. 4.2: |L(X+dX,W+dW)-L| ~ sqrt(term_x^2 + term_w^2) with
    // term_x = ||grad_X L|| ||dX|| / sqrt(MK), and grad_X L is exactly
    // the layer's input gradient dX from the backward pass.
    const double term_x = mk > 0 ? s.dx_norm * dx_err / mk : 0.0;
    const double term_w = nk > 0 ? s.dw_norm * dw_err / nk : 0.0;
    const double abs_div = std::sqrt(term_x * term_x + term_w * term_w);
    const double denom = std::max(std::fabs(stats_.loss), 1e-12);
    return abs_div / denom;
}

double
DivergenceAnalyzer::directWgradError(int layer, Precision p) const
{
    const LayerStats &s = stats_.layers[static_cast<size_t>(layer)];
    // dW = dY^T X; contraction is over the M (token) dimension:
    // ||ddY^T X|| ~ ||ddY|| ||X|| / sqrt(M).
    const double ddy = qerr(layer, p, TensorRole::OutputGrad);
    const double dx = qerr(layer, p, TensorRole::Activation);
    const double sm = std::sqrt(static_cast<double>(std::max<int64_t>(
        1, s.m)));
    const double t1 = ddy * s.x_norm / sm;
    const double t2 = s.dy_norm * dx / sm;
    return std::sqrt(t1 * t1 + t2 * t2);
}

double
DivergenceAnalyzer::dgradRelativeError(int layer, Precision p) const
{
    const LayerStats &s = stats_.layers[static_cast<size_t>(layer)];
    if (s.dx_norm <= 0.0)
        return 0.0;
    // dX = dY W; contraction over the N dimension.
    const double ddy = qerr(layer, p, TensorRole::OutputGrad);
    const double dw = qerr(layer, p, TensorRole::Weight);
    const double sn = std::sqrt(static_cast<double>(std::max<int64_t>(
        1, s.n)));
    const double t1 = ddy * s.w_norm / sn;
    const double t2 = s.dy_norm * dw / sn;
    return std::sqrt(t1 * t1 + t2 * t2) / s.dx_norm;
}

double
DivergenceAnalyzer::fwdRelativeError(int layer, Precision p) const
{
    const LayerStats &s = stats_.layers[static_cast<size_t>(layer)];
    if (s.y_norm <= 0.0)
        return 0.0;
    // Y = X W^T; contraction over the K dimension.
    const double dx = qerr(layer, p, TensorRole::Activation);
    const double dw = qerr(layer, p, TensorRole::Weight);
    const double sk = std::sqrt(static_cast<double>(std::max<int64_t>(
        1, s.k)));
    const double t1 = dx * s.w_norm / sk;
    const double t2 = s.x_norm * dw / sk;
    return std::sqrt(t1 * t1 + t2 * t2) / s.y_norm;
}

double
DivergenceAnalyzer::weightDivergence(int layer,
                                     const LayerScheme &opt) const
{
    const int n_layers = static_cast<int>(stats_.layers.size());
    // Gradient error per affected layer l, then through AdamW:
    // ||W'_l - W_l|| ~ opt_scale * sens_l * ||dg_l||.
    auto update_error = [&](int l, double dg) {
        const LayerStats &sl = stats_.layers[static_cast<size_t>(l)];
        const double w_norm = std::max(sl.w_norm, 1e-12);
        return stats_.opt_scale * sl.opt_sensitivity * dg / w_norm;
    };

    double total = 0.0;

    // Channel 1: this layer's own Wgrad quantization.
    total += update_error(layer,
                          directWgradError(layer, opt.of(GemmKind::Wgrad)));

    if (has_probes_) {
        // Channel 2: Dgrad error perturbs the backward stream feeding
        // every *earlier* layer (l < layer).
        const double r_bwd =
            dgradRelativeError(layer, opt.of(GemmKind::Dgrad));
        if (r_bwd > 0.0) {
            for (int l = 0; l < layer; ++l)
                total += update_error(
                    l, bwd_amp_[static_cast<size_t>(l)] * r_bwd);
        }

        // Channel 3: Fwd error perturbs downstream activations and,
        // through the loss, every layer's gradient.
        const double r_fwd =
            fwdRelativeError(layer, opt.of(GemmKind::Fwd));
        if (r_fwd > 0.0) {
            for (int l = 0; l < n_layers; ++l)
                total += update_error(
                    l, fwd_amp_[static_cast<size_t>(l)] * r_fwd);
        }
    }

    // Definition 4.4 averages over layers.
    return total / static_cast<double>(std::max(1, n_layers));
}

DivergenceTable
DivergenceAnalyzer::analyze(const std::vector<LayerScheme> &options,
                            const DivergenceOptions &opts) const
{
    DivergenceTable table;
    table.options = options;
    const int n_layers = static_cast<int>(stats_.layers.size());
    table.cell.resize(static_cast<size_t>(n_layers));

    for (int i = 0; i < n_layers; ++i) {
        auto &row = table.cell[static_cast<size_t>(i)];
        row.resize(options.size());
        for (size_t j = 0; j < options.size(); ++j) {
            const LayerScheme &opt = options[j];
            OptionCost &c = row[j];
            c.loss_div = lossDivergence(i, opt);
            c.weight_div = weightDivergence(i, opt);
            c.efficiency = flops_.efficiencyContribution(i, opt);
            switch (opts.metric) {
              case QualityMetric::Snip:
                c.quality = c.loss_div +
                            opts.weight_div_scale * c.weight_div;
                break;
              case QualityMetric::LossOnly:
                c.quality = c.loss_div;
                break;
              case QualityMetric::WeightOnly:
                c.quality = c.weight_div;
                break;
              case QualityMetric::AbsError:
              case QualityMetric::RelError: {
                // Each GEMM consumes two quantized operands: Fwd (X,W),
                // Dgrad (dY,W), Wgrad (dY,X). The baselines sum those
                // operand errors, absolute or input-norm-relative.
                static constexpr TensorRole kOperands[kGemmsPerLayer][2] =
                    {{TensorRole::Activation, TensorRole::Weight},
                     {TensorRole::OutputGrad, TensorRole::Weight},
                     {TensorRole::OutputGrad, TensorRole::Activation}};
                const LayerStats &s =
                    stats_.layers[static_cast<size_t>(i)];
                auto role_norm = [&](TensorRole role) {
                    switch (role) {
                      case TensorRole::Activation:
                        return s.x_norm;
                      case TensorRole::Weight:
                        return s.w_norm;
                      case TensorRole::OutputGrad:
                        return s.dy_norm;
                    }
                    return 0.0;
                };
                double q = 0.0;
                for (int g = 0; g < kGemmsPerLayer; ++g) {
                    const Precision p = opt.gemm[static_cast<size_t>(g)];
                    for (TensorRole role : kOperands[g]) {
                        double err = qerr(i, p, role);
                        if (opts.metric == QualityMetric::RelError) {
                            const double norm = role_norm(role);
                            err = norm > 0 ? err / norm : 0.0;
                        }
                        q += err;
                    }
                }
                c.quality = q;
                break;
              }
            }
        }
    }
    return table;
}

double
DivergenceAnalyzer::estimateLossImpact(int layer, Precision precision) const
{
    return lossDivergence(layer, LayerScheme::uniform(precision));
}

} // namespace snip
