/**
 * @file
 * AVX2+FMA backend.
 *
 * This translation unit is the only one compiled with -mavx2 -mfma
 * (per-file options in CMakeLists.txt), and it is only entered behind
 * the CPUID check in simd/dispatch.cpp, so the binary still runs on
 * baseline x86-64.
 *
 * Kernel contracts (simd/kernels.h):
 *   - GEMM blocks keep the scalar backend's block decomposition and a
 *     fixed per-element accumulation order, so results are
 *     bit-identical across thread counts *within this backend*; FMA
 *     contraction and 8-lane accumulators make low-order bits differ
 *     from the scalar backend (tests bound the relative error).
 *   - The quantize / bf16-round / max-abs kernels reproduce the scalar
 *     codec bit for bit (tests assert exact equality): every step
 *     below is an exact power-of-two scale, an exact bit manipulation,
 *     or the same correctly-rounded float op the scalar path performs.
 */
#include "simd/kernels.h"

#if defined(SNIP_SIMD_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "quant/codec.h"

namespace snip {
namespace simd {

namespace {

// ------------------------------------------------------------- GEMM

float
hsum8(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_add_ps(lo, hi);
    __m128 sh = _mm_movehl_ps(lo, lo);
    lo = _mm_add_ps(lo, sh);
    sh = _mm_shuffle_ps(lo, lo, 0x1);
    lo = _mm_add_ss(lo, sh);
    return _mm_cvtss_f32(lo);
}

/** One dot product arow·brow with 8-wide FMA and a scalar tail. */
float
dotAvx2(const float *arow, const float *brow, int64_t k)
{
    const int64_t k8 = k & ~int64_t{7};
    __m256 acc = _mm256_setzero_ps();
    for (int64_t kk = 0; kk < k8; kk += 8)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                              _mm256_loadu_ps(brow + kk), acc);
    float sum = hsum8(acc);
    for (int64_t kk = k8; kk < k; ++kk)
        sum += arow[kk] * brow[kk];
    return sum;
}

/**
 * NT register-tiled microkernel: a 2-row x 4-column tile of C is held
 * in eight 8-lane accumulators, so every A load feeds four FMAs and
 * every B load two. Operand panels are contiguous along K already (A
 * row-major M x K, B row-major N x K), so no copy-pack step is needed
 * — the packed layout the microkernel wants is the layout it gets.
 * The tile walk over a block is a pure function of the block bounds,
 * never of the thread count.
 */
void
gemmNtBlockAvx2(const float *a, const float *b, float *c, int64_t i0,
                int64_t i1, int64_t /*m*/, int64_t n, int64_t k)
{
    const int64_t k8 = k & ~int64_t{7};
    for (int64_t j0 = 0; j0 < n; j0 += kGemmBlockN) {
        const int64_t j1 = std::min(j0 + kGemmBlockN, n);
        int64_t i = i0;
        for (; i + 2 <= i1; i += 2) {
            const float *a0 = a + i * k;
            const float *a1 = a0 + k;
            float *c0 = c + i * n;
            float *c1 = c0 + n;
            int64_t j = j0;
            for (; j + 4 <= j1; j += 4) {
                const float *b0 = b + j * k;
                const float *b1 = b0 + k;
                const float *b2 = b1 + k;
                const float *b3 = b2 + k;
                __m256 acc00 = _mm256_setzero_ps();
                __m256 acc01 = _mm256_setzero_ps();
                __m256 acc02 = _mm256_setzero_ps();
                __m256 acc03 = _mm256_setzero_ps();
                __m256 acc10 = _mm256_setzero_ps();
                __m256 acc11 = _mm256_setzero_ps();
                __m256 acc12 = _mm256_setzero_ps();
                __m256 acc13 = _mm256_setzero_ps();
                for (int64_t kk = 0; kk < k8; kk += 8) {
                    __m256 va0 = _mm256_loadu_ps(a0 + kk);
                    __m256 va1 = _mm256_loadu_ps(a1 + kk);
                    __m256 vb0 = _mm256_loadu_ps(b0 + kk);
                    __m256 vb1 = _mm256_loadu_ps(b1 + kk);
                    __m256 vb2 = _mm256_loadu_ps(b2 + kk);
                    __m256 vb3 = _mm256_loadu_ps(b3 + kk);
                    acc00 = _mm256_fmadd_ps(va0, vb0, acc00);
                    acc01 = _mm256_fmadd_ps(va0, vb1, acc01);
                    acc02 = _mm256_fmadd_ps(va0, vb2, acc02);
                    acc03 = _mm256_fmadd_ps(va0, vb3, acc03);
                    acc10 = _mm256_fmadd_ps(va1, vb0, acc10);
                    acc11 = _mm256_fmadd_ps(va1, vb1, acc11);
                    acc12 = _mm256_fmadd_ps(va1, vb2, acc12);
                    acc13 = _mm256_fmadd_ps(va1, vb3, acc13);
                }
                float s00 = hsum8(acc00), s01 = hsum8(acc01);
                float s02 = hsum8(acc02), s03 = hsum8(acc03);
                float s10 = hsum8(acc10), s11 = hsum8(acc11);
                float s12 = hsum8(acc12), s13 = hsum8(acc13);
                for (int64_t kk = k8; kk < k; ++kk) {
                    float av0 = a0[kk], av1 = a1[kk];
                    s00 += av0 * b0[kk];
                    s01 += av0 * b1[kk];
                    s02 += av0 * b2[kk];
                    s03 += av0 * b3[kk];
                    s10 += av1 * b0[kk];
                    s11 += av1 * b1[kk];
                    s12 += av1 * b2[kk];
                    s13 += av1 * b3[kk];
                }
                c0[j] += s00;
                c0[j + 1] += s01;
                c0[j + 2] += s02;
                c0[j + 3] += s03;
                c1[j] += s10;
                c1[j + 1] += s11;
                c1[j + 2] += s12;
                c1[j + 3] += s13;
            }
            for (; j < j1; ++j) {
                const float *brow = b + j * k;
                c0[j] += dotAvx2(a0, brow, k);
                c1[j] += dotAvx2(a1, brow, k);
            }
        }
        for (; i < i1; ++i) {
            const float *arow = a + i * k;
            float *crow = c + i * n;
            for (int64_t j = j0; j < j1; ++j)
                crow[j] += dotAvx2(arow, b + j * k, k);
        }
    }
}

/** Shared NN/TN inner sweep: crow[0..n) += av * brow[0..n). */
inline void
axpyRowAvx2(float av, const float *brow, float *crow, int64_t n)
{
    const __m256 vav = _mm256_set1_ps(av);
    const int64_t n8 = n & ~int64_t{7};
    for (int64_t j = 0; j < n8; j += 8) {
        __m256 cv = _mm256_loadu_ps(crow + j);
        cv = _mm256_fmadd_ps(vav, _mm256_loadu_ps(brow + j), cv);
        _mm256_storeu_ps(crow + j, cv);
    }
    for (int64_t j = n8; j < n; ++j)
        crow[j] += av * brow[j];
}

void
gemmNnBlockAvx2(const float *a, const float *b, float *c, int64_t i0,
                int64_t i1, int64_t /*m*/, int64_t n, int64_t k)
{
    // Same k-blocked structure as the scalar backend; per C element
    // the kk addition order is unchanged (an unrolled pair issues its
    // two FMAs in kk order), so this backend is thread-count-invariant.
    for (int64_t k0 = 0; k0 < k; k0 += kGemmBlockK) {
        const int64_t k1 = std::min(k0 + kGemmBlockK, k);
        for (int64_t i = i0; i < i1; ++i) {
            const float *arow = a + i * k;
            float *crow = c + i * n;
            const int64_t n8 = n & ~int64_t{7};
            int64_t kk = k0;
            for (; kk + 2 <= k1; kk += 2) {
                const __m256 va0 = _mm256_set1_ps(arow[kk]);
                const __m256 va1 = _mm256_set1_ps(arow[kk + 1]);
                const float *b0 = b + kk * n;
                const float *b1 = b0 + n;
                for (int64_t j = 0; j < n8; j += 8) {
                    __m256 cv = _mm256_loadu_ps(crow + j);
                    cv = _mm256_fmadd_ps(va0, _mm256_loadu_ps(b0 + j),
                                         cv);
                    cv = _mm256_fmadd_ps(va1, _mm256_loadu_ps(b1 + j),
                                         cv);
                    _mm256_storeu_ps(crow + j, cv);
                }
                for (int64_t j = n8; j < n; ++j) {
                    crow[j] += arow[kk] * b0[j];
                    crow[j] += arow[kk + 1] * b1[j];
                }
            }
            for (; kk < k1; ++kk)
                axpyRowAvx2(arow[kk], b + kk * n, crow, n);
        }
    }
}

void
gemmTnBlockAvx2(const float *a, const float *b, float *c, int64_t i0,
                int64_t i1, int64_t m, int64_t n, int64_t k)
{
    for (int64_t k0 = 0; k0 < k; k0 += kGemmBlockK) {
        const int64_t k1 = std::min(k0 + kGemmBlockK, k);
        for (int64_t kk = k0; kk < k1; ++kk) {
            const float *arow = a + kk * m;
            const float *brow = b + kk * n;
            for (int64_t i = i0; i < i1; ++i) {
                float av = arow[i];
                if (av == 0.0f)
                    continue;
                axpyRowAvx2(av, brow, c + i * n, n);
            }
        }
    }
}

// ------------------------------------------------------------ packed

__m256 quantize8Avx2(__m256 x, const QuantGrid &g);
inline void transpose8x8(__m256 r0, __m256 r1, __m256 r2, __m256 r3,
                         __m256 r4, __m256 r5, __m256 r6, __m256 r7,
                         __m256 out[8]);

/** Scalar fused quantize for pack tails/gathers (bit-exact with the
 *  vector path by the backend contract). */
inline float
packQuantOneAvx2(float x, const PackQuant *pq, int64_t sr, int64_t sc)
{
    if (pq == nullptr)
        return x;
    const int64_t reg = (sr / pq->row_block) * pq->regions_per_row +
                        sc / pq->col_block;
    return quantizeNearest(x * pq->scale[reg], *pq->fmt) *
           pq->inv_scale[reg];
}

/**
 * Copy (optionally fused-quantizing) a contiguous source row into a
 * packed panel with stride @p stride at lane @p r: for kk in [0, k),
 * dst[kk*stride + r] = q(row[kk]). @p src_row is the source-matrix row
 * of the run (regions advance along the columns only). The 8-wide
 * vector quantize runs per region segment; the strided scatter stays
 * scalar (pack cost is O(MK + NK) against the GEMM's O(MNK)).
 */
inline void
packRowAvx2(const float *row, float *dst, int64_t stride, int64_t r,
            int64_t k, const PackQuant *pq, int64_t src_row)
{
    if (pq == nullptr) {
        for (int64_t kk = 0; kk < k; ++kk)
            dst[kk * stride + r] = row[kk];
        return;
    }
    const QuantGrid &g = *pq->grid;
    const int64_t reg_row =
        (src_row / pq->row_block) * pq->regions_per_row;
    int64_t kk = 0;
    while (kk < k) {
        const int64_t reg = reg_row + kk / pq->col_block;
        const int64_t seg_end =
            std::min(k, (kk / pq->col_block + 1) * pq->col_block);
        const __m256 vs = _mm256_set1_ps(pq->scale[reg]);
        const __m256 vi = _mm256_set1_ps(pq->inv_scale[reg]);
        for (; kk + 8 <= seg_end; kk += 8) {
            __m256 q = _mm256_mul_ps(
                quantize8Avx2(
                    _mm256_mul_ps(_mm256_loadu_ps(row + kk), vs), g),
                vi);
            alignas(32) float t[8];
            _mm256_store_ps(t, q);
            for (int u = 0; u < 8; ++u)
                dst[(kk + u) * stride + r] = t[u];
        }
        for (; kk < seg_end; ++kk)
            dst[kk * stride + r] =
                quantizeNearest(row[kk] * pq->scale[reg], *pq->fmt) *
                pq->inv_scale[reg];
    }
}

void
packAAvx2(const float *src, int64_t ld, bool k_major, float *ap,
          int64_t i0, int64_t i1, int64_t k, const PackQuant *pq)
{
    const int64_t mb = i1 - i0;
    const int64_t strips = packStrips(mb, kGemmPackMR);
    for (int64_t s = 0; s < strips; ++s) {
        float *dst = ap + s * kGemmPackMR * k;
        const int64_t rows = std::min(kGemmPackMR, mb - s * kGemmPackMR);
        if (!k_major && rows == kGemmPackMR) {
            // Full strip: 6 rows x 8 columns per step through the 8x8
            // transpose; out[t] then holds {A[i0..i0+5, kk+t], x, x}
            // and is stored 8 wide at stride 6 — the two garbage
            // lanes land in the next step's (or strip's) territory and
            // are overwritten, except after the very last step, which
            // spills into the PackA headroom the caller guarantees
            // (simd/kernels.h).
            const float *r0 = src + (i0 + s * kGemmPackMR) * ld;
            int64_t reg_of_row[6];
            if (pq != nullptr)
                for (int64_t r = 0; r < 6; ++r)
                    reg_of_row[r] = ((i0 + s * kGemmPackMR + r) /
                                     pq->row_block) *
                                    pq->regions_per_row;
            int64_t kk = 0;
            while (kk < k) {
                const int64_t seg_end =
                    pq == nullptr
                        ? k
                        : std::min(k, (kk / pq->col_block + 1) *
                                          pq->col_block);
                const int64_t vec_end =
                    kk + ((seg_end - kk) & ~int64_t{7});
                for (; kk < vec_end; kk += 8) {
                    __m256 rows8[8], out[8];
                    for (int64_t r = 0; r < 6; ++r) {
                        __m256 v = _mm256_loadu_ps(r0 + r * ld + kk);
                        if (pq != nullptr) {
                            const int64_t reg =
                                reg_of_row[r] + kk / pq->col_block;
                            v = _mm256_mul_ps(
                                quantize8Avx2(
                                    _mm256_mul_ps(
                                        v, _mm256_set1_ps(
                                               pq->scale[reg])),
                                    *pq->grid),
                                _mm256_set1_ps(pq->inv_scale[reg]));
                        }
                        rows8[r] = v;
                    }
                    rows8[6] = _mm256_setzero_ps();
                    rows8[7] = _mm256_setzero_ps();
                    transpose8x8(rows8[0], rows8[1], rows8[2],
                                 rows8[3], rows8[4], rows8[5],
                                 rows8[6], rows8[7], out);
                    for (int64_t t = 0; t < 8; ++t)
                        _mm256_storeu_ps(
                            dst + (kk + t) * kGemmPackMR, out[t]);
                }
                for (; kk < seg_end; ++kk)
                    for (int64_t r = 0; r < 6; ++r)
                        dst[kk * kGemmPackMR + r] = packQuantOneAvx2(
                            r0[r * ld + kk], pq,
                            i0 + s * kGemmPackMR + r, kk);
            }
            continue;
        }
        const int64_t i0s = i0 + s * kGemmPackMR;
        if (k_major && rows == kGemmPackMR && i0s + 8 <= ld &&
            (pq == nullptr ||
             i0s / pq->col_block == (i0s + kGemmPackMR - 1) /
                                        pq->col_block)) {
            // TN gather, full strip: the strip's 6 source columns are
            // contiguous per source row, so each kk is one (8-wide,
            // 6-valid) load + vector quantize + 6-lane masked store.
            // Needs 8 readable floats from the strip start on the last
            // source row, and (when quantizing) one column region
            // across the 6 lanes; rare boundary strips fall through to
            // the scalar path below.
            const __m256i mask6 =
                _mm256_setr_epi32(-1, -1, -1, -1, -1, -1, 0, 0);
            if (pq == nullptr) {
                for (int64_t kk = 0; kk < k; ++kk)
                    _mm256_maskstore_ps(
                        dst + kk * kGemmPackMR, mask6,
                        _mm256_loadu_ps(src + kk * ld + i0s));
            } else {
                const QuantGrid &g = *pq->grid;
                const int64_t reg_col = i0s / pq->col_block;
                for (int64_t kk = 0; kk < k; ++kk) {
                    const int64_t reg =
                        (kk / pq->row_block) * pq->regions_per_row +
                        reg_col;
                    __m256 v = _mm256_mul_ps(
                        _mm256_loadu_ps(src + kk * ld + i0s),
                        _mm256_set1_ps(pq->scale[reg]));
                    v = _mm256_mul_ps(
                        quantize8Avx2(v, g),
                        _mm256_set1_ps(pq->inv_scale[reg]));
                    _mm256_maskstore_ps(dst + kk * kGemmPackMR, mask6,
                                        v);
                }
            }
            continue;
        }
        for (int64_t r = 0; r < kGemmPackMR; ++r) {
            if (r >= rows) {
                for (int64_t kk = 0; kk < k; ++kk)
                    dst[kk * kGemmPackMR + r] = 0.0f;
                continue;
            }
            const int64_t i = i0 + s * kGemmPackMR + r;
            if (k_major) {
                // TN gather: stride-ld walk, scalar fused quantize.
                for (int64_t kk = 0; kk < k; ++kk)
                    dst[kk * kGemmPackMR + r] = packQuantOneAvx2(
                        src[kk * ld + i], pq, kk, i);
            } else {
                packRowAvx2(src + i * ld, dst, kGemmPackMR, r, k, pq,
                            i);
            }
        }
    }
}

/**
 * 8x8 in-register transpose: out[t] holds lane t of each input row.
 */
inline void
transpose8x8(__m256 r0, __m256 r1, __m256 r2, __m256 r3, __m256 r4,
             __m256 r5, __m256 r6, __m256 r7, __m256 out[8])
{
    __m256 t0 = _mm256_unpacklo_ps(r0, r1);
    __m256 t1 = _mm256_unpackhi_ps(r0, r1);
    __m256 t2 = _mm256_unpacklo_ps(r2, r3);
    __m256 t3 = _mm256_unpackhi_ps(r2, r3);
    __m256 t4 = _mm256_unpacklo_ps(r4, r5);
    __m256 t5 = _mm256_unpackhi_ps(r4, r5);
    __m256 t6 = _mm256_unpacklo_ps(r6, r7);
    __m256 t7 = _mm256_unpackhi_ps(r6, r7);
    __m256 s0 = _mm256_shuffle_ps(t0, t2, 0x44);
    __m256 s1 = _mm256_shuffle_ps(t0, t2, 0xEE);
    __m256 s2 = _mm256_shuffle_ps(t1, t3, 0x44);
    __m256 s3 = _mm256_shuffle_ps(t1, t3, 0xEE);
    __m256 s4 = _mm256_shuffle_ps(t4, t6, 0x44);
    __m256 s5 = _mm256_shuffle_ps(t4, t6, 0xEE);
    __m256 s6 = _mm256_shuffle_ps(t5, t7, 0x44);
    __m256 s7 = _mm256_shuffle_ps(t5, t7, 0xEE);
    out[0] = _mm256_permute2f128_ps(s0, s4, 0x20);
    out[1] = _mm256_permute2f128_ps(s1, s5, 0x20);
    out[2] = _mm256_permute2f128_ps(s2, s6, 0x20);
    out[3] = _mm256_permute2f128_ps(s3, s7, 0x20);
    out[4] = _mm256_permute2f128_ps(s0, s4, 0x31);
    out[5] = _mm256_permute2f128_ps(s1, s5, 0x31);
    out[6] = _mm256_permute2f128_ps(s2, s6, 0x31);
    out[7] = _mm256_permute2f128_ps(s3, s7, 0x31);
}

/**
 * Vectorized NT-orientation B pack of one full 8-row half-strip over
 * one k run that stays inside a single column region per row: loads 8
 * source rows 8 columns at a time, quantizes each row vector with its
 * own scale, transposes, and stores 8 contiguous lanes per kk at
 * dst[kk*16 + half]. Requires k0 and k_end both multiples of 8 away
 * from each other... handled by the caller (tail goes scalar).
 */
inline void
packHalfStripTransposed(const float *src, int64_t ld, float *dst,
                        int64_t half, int64_t k0, int64_t k_end,
                        const PackQuant *pq, const int64_t *reg_of_row,
                        int64_t reg_col)
{
    __m256 out[8];
    for (int64_t kk = k0; kk + 8 <= k_end; kk += 8) {
        __m256 rows[8];
        for (int r = 0; r < 8; ++r) {
            __m256 v = _mm256_loadu_ps(src + r * ld + kk);
            if (pq != nullptr) {
                const int64_t reg = reg_of_row[r] + reg_col;
                v = _mm256_mul_ps(
                    quantize8Avx2(
                        _mm256_mul_ps(
                            v, _mm256_set1_ps(pq->scale[reg])),
                        *pq->grid),
                    _mm256_set1_ps(pq->inv_scale[reg]));
            }
            rows[r] = v;
        }
        transpose8x8(rows[0], rows[1], rows[2], rows[3], rows[4],
                     rows[5], rows[6], rows[7], out);
        for (int t = 0; t < 8; ++t)
            _mm256_storeu_ps(dst + (kk + t) * kGemmPackNR + half,
                             out[t]);
    }
}

void
packBAvx2(const float *src, int64_t ld, bool k_major, float *bp,
          int64_t j0, int64_t j1, int64_t n, int64_t k,
          const PackQuant *pq)
{
    for (int64_t s0 = j0; s0 < j1; s0 += kGemmPackNR) {
        float *dst = bp + (s0 / kGemmPackNR) * kGemmPackNR * k;
        const int64_t cols = std::min(kGemmPackNR, n - s0);
        if (k_major) {
            // Source rows run along j: 16 contiguous floats per kk.
            const bool full = cols == kGemmPackNR;
            const bool one_region =
                pq == nullptr ||
                s0 / pq->col_block ==
                    (s0 + cols - 1) / pq->col_block;
            for (int64_t kk = 0; kk < k; ++kk) {
                const float *in = src + kk * ld + s0;
                float *out = dst + kk * kGemmPackNR;
                if (full && one_region && pq != nullptr) {
                    const int64_t reg =
                        (kk / pq->row_block) * pq->regions_per_row +
                        s0 / pq->col_block;
                    const __m256 vs = _mm256_set1_ps(pq->scale[reg]);
                    const __m256 vi =
                        _mm256_set1_ps(pq->inv_scale[reg]);
                    const QuantGrid &g = *pq->grid;
                    _mm256_storeu_ps(
                        out, _mm256_mul_ps(
                                 quantize8Avx2(
                                     _mm256_mul_ps(
                                         _mm256_loadu_ps(in), vs),
                                     g),
                                 vi));
                    _mm256_storeu_ps(
                        out + 8,
                        _mm256_mul_ps(
                            quantize8Avx2(
                                _mm256_mul_ps(
                                    _mm256_loadu_ps(in + 8), vs),
                                g),
                            vi));
                } else if (full && pq == nullptr) {
                    _mm256_storeu_ps(out, _mm256_loadu_ps(in));
                    _mm256_storeu_ps(out + 8, _mm256_loadu_ps(in + 8));
                } else {
                    int64_t r = 0;
                    for (; r < cols; ++r)
                        out[r] = packQuantOneAvx2(in[r], pq, kk,
                                                  s0 + r);
                    for (; r < kGemmPackNR; ++r)
                        out[r] = 0.0f;
                }
            }
        } else if (cols == kGemmPackNR) {
            // NT orientation, full strip: 8x8 transpose blocks keep
            // both the loads and the stores vectorized.
            for (int64_t half = 0; half < 2; ++half) {
                const float *hsrc = src + (s0 + half * 8) * ld;
                if (pq == nullptr) {
                    const int64_t k8 = k & ~int64_t{7};
                    packHalfStripTransposed(hsrc, ld, dst, half * 8, 0,
                                            k8, nullptr, nullptr, 0);
                    for (int64_t kk = k8; kk < k; ++kk)
                        for (int64_t r = 0; r < 8; ++r)
                            dst[kk * kGemmPackNR + half * 8 + r] =
                                hsrc[r * ld + kk];
                    continue;
                }
                int64_t reg_of_row[8];
                for (int64_t r = 0; r < 8; ++r)
                    reg_of_row[r] = ((s0 + half * 8 + r) /
                                     pq->row_block) *
                                    pq->regions_per_row;
                int64_t kk = 0;
                while (kk < k) {
                    const int64_t seg_end = std::min(
                        k, (kk / pq->col_block + 1) * pq->col_block);
                    const int64_t vec_end =
                        kk + ((seg_end - kk) & ~int64_t{7});
                    packHalfStripTransposed(hsrc, ld, dst, half * 8,
                                            kk, vec_end, pq,
                                            reg_of_row,
                                            kk / pq->col_block);
                    for (int64_t t = vec_end; t < seg_end; ++t)
                        for (int64_t r = 0; r < 8; ++r)
                            dst[t * kGemmPackNR + half * 8 + r] =
                                packQuantOneAvx2(hsrc[r * ld + t], pq,
                                                 s0 + half * 8 + r, t);
                    kk = seg_end;
                }
            }
        } else {
            // NT orientation, ragged strip: per-row pack.
            for (int64_t r = 0; r < kGemmPackNR; ++r) {
                if (r >= cols) {
                    for (int64_t kk = 0; kk < k; ++kk)
                        dst[kk * kGemmPackNR + r] = 0.0f;
                    continue;
                }
                const int64_t j = s0 + r;
                packRowAvx2(src + j * ld, dst, kGemmPackNR, r, k, pq,
                            j);
            }
        }
    }
}

/**
 * 6 x 16 register-tiled packed microkernel: twelve 8-lane accumulators
 * hold the C tile; each k step issues two B loads, six A broadcasts
 * and twelve FMAs. Lanes map one-to-one onto C columns, so every C
 * element accumulates its k-products in ascending-k order — the
 * packed path's fixed accumulation order (no cross-lane reduction at
 * all, unlike the unpacked NT kernel's hsum).
 */
inline void
microKernel6x16(const float *as, const float *bs, float *c, int64_t ldc,
                int64_t mr, int64_t jn, int64_t k)
{
    __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
    __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
    __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
    __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
    __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
    __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
    for (int64_t kk = 0; kk < k; ++kk) {
        // Pull the B strip (and A strip) a few iterations ahead: the
        // panels stream from L2/L3 at large k and the FMA chain hides
        // no miss latency on its own.
        _mm_prefetch(reinterpret_cast<const char *>(bs + (kk + 24) * 16),
                     _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char *>(as + (kk + 16) * 6),
                     _MM_HINT_T0);
        const __m256 b0 = _mm256_loadu_ps(bs + kk * 16);
        const __m256 b1 = _mm256_loadu_ps(bs + kk * 16 + 8);
        const float *a = as + kk * 6;
        __m256 va = _mm256_broadcast_ss(a + 0);
        c00 = _mm256_fmadd_ps(va, b0, c00);
        c01 = _mm256_fmadd_ps(va, b1, c01);
        va = _mm256_broadcast_ss(a + 1);
        c10 = _mm256_fmadd_ps(va, b0, c10);
        c11 = _mm256_fmadd_ps(va, b1, c11);
        va = _mm256_broadcast_ss(a + 2);
        c20 = _mm256_fmadd_ps(va, b0, c20);
        c21 = _mm256_fmadd_ps(va, b1, c21);
        va = _mm256_broadcast_ss(a + 3);
        c30 = _mm256_fmadd_ps(va, b0, c30);
        c31 = _mm256_fmadd_ps(va, b1, c31);
        va = _mm256_broadcast_ss(a + 4);
        c40 = _mm256_fmadd_ps(va, b0, c40);
        c41 = _mm256_fmadd_ps(va, b1, c41);
        va = _mm256_broadcast_ss(a + 5);
        c50 = _mm256_fmadd_ps(va, b0, c50);
        c51 = _mm256_fmadd_ps(va, b1, c51);
    }
    const __m256 *acc[6][2] = {{&c00, &c01}, {&c10, &c11},
                               {&c20, &c21}, {&c30, &c31},
                               {&c40, &c41}, {&c50, &c51}};
    if (jn == 16) {
        for (int64_t r = 0; r < mr; ++r) {
            float *crow = c + r * ldc;
            _mm256_storeu_ps(
                crow, _mm256_add_ps(_mm256_loadu_ps(crow), *acc[r][0]));
            _mm256_storeu_ps(crow + 8,
                             _mm256_add_ps(_mm256_loadu_ps(crow + 8),
                                           *acc[r][1]));
        }
        return;
    }
    alignas(32) float t[16];
    for (int64_t r = 0; r < mr; ++r) {
        _mm256_store_ps(t, *acc[r][0]);
        _mm256_store_ps(t + 8, *acc[r][1]);
        float *crow = c + r * ldc;
        for (int64_t j = 0; j < jn; ++j)
            crow[j] += t[j];
    }
}

void
gemmPackedBlockAvx2(const float *ap, const float *bp, float *c,
                    int64_t ldc, int64_t mb, int64_t n, int64_t k)
{
    const int64_t m_strips = packStrips(mb, kGemmPackMR);
    const int64_t n_strips = packStrips(n, kGemmPackNR);
    for (int64_t js = 0; js < n_strips; ++js) {
        const float *bs = bp + js * kGemmPackNR * k;
        const int64_t j0 = js * kGemmPackNR;
        const int64_t jn = std::min(kGemmPackNR, n - j0);
        for (int64_t ms = 0; ms < m_strips; ++ms) {
            const int64_t i0 = ms * kGemmPackMR;
            microKernel6x16(ap + ms * kGemmPackMR * k, bs,
                            c + i0 * ldc + j0, ldc,
                            std::min(kGemmPackMR, mb - i0), jn, k);
        }
    }
}

// --------------------------------------------------- quantize / misc

/**
 * Eight-lane grid snap, bit-exact against quantizeNearest() (see
 * QuantGrid in quant/codec.h for why each step is exact). Handling of
 * the scalar path's special cases, in blend order: generic result →
 * NaN forced to -max (the scalar "x > 0 ? +max : -max" on
 * non-finites sends NaN negative regardless of its sign bit) → ±0
 * preserved as +0. ±Inf needs no own blend: its binade scales the
 * normal-path result to +Inf, the min() clamp brings it to max_value,
 * and the sign bit is restored by OR.
 */
inline __m256
quantize8Avx2(__m256 x, const QuantGrid &g)
{
    const __m256i abs_mask = _mm256_set1_epi32(0x7FFFFFFF);
    const __m256i mant_mask = _mm256_set1_epi32(0x007FFFFF);
    const __m256i exp_mask = _mm256_set1_epi32(0x7F800000);
    const __m256i retag_exp =
        _mm256_set1_epi32((127 + g.mantissa_bits) << 23);

    __m256 ax = _mm256_and_ps(x, _mm256_castsi256_ps(abs_mask));
    __m256 sign = _mm256_andnot_ps(_mm256_castsi256_ps(abs_mask), x);
    __m256i bits = _mm256_castps_si256(ax);

    // Normal range: grid index = mantissa-retagged ax, exact in float.
    __m256 q = _mm256_castsi256_ps(_mm256_or_si256(
        _mm256_and_si256(bits, mant_mask), retag_exp));
    __m256 r = _mm256_round_ps(
        q, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    __m256 binade = _mm256_castsi256_ps(_mm256_and_si256(bits, exp_mask));
    __m256 res_norm = _mm256_mul_ps(
        _mm256_mul_ps(r, _mm256_set1_ps(g.two_pow_neg_mant)), binade);

    // Subnormal range: index = ax / min_subnormal via two exact
    // power-of-two scales.
    __m256 qs = _mm256_mul_ps(
        _mm256_mul_ps(ax, _mm256_set1_ps(g.inv_min_sub_hi)),
        _mm256_set1_ps(g.inv_min_sub_lo));
    __m256 rs = _mm256_round_ps(
        qs, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    __m256 res_sub = _mm256_mul_ps(rs, _mm256_set1_ps(g.min_subnormal));

    __m256 is_sub =
        _mm256_cmp_ps(ax, _mm256_set1_ps(g.min_normal), _CMP_LT_OQ);
    __m256 res = _mm256_blendv_ps(res_norm, res_sub, is_sub);
    // Saturation: values at or above max_value (and +Inf, and the
    // rare round-up past the top grid point) all clamp here.
    res = _mm256_min_ps(res, _mm256_set1_ps(g.max_value));
    __m256 out = _mm256_or_ps(res, sign);

    __m256 nan_mask = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);
    out = _mm256_blendv_ps(out, _mm256_set1_ps(-g.max_value), nan_mask);
    __m256 zero_mask =
        _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_EQ_OQ);
    return _mm256_blendv_ps(out, _mm256_setzero_ps(), zero_mask);
}

void
quantizeNearestAvx2(float *p, int64_t count, const FloatFormat &fmt,
                    const QuantGrid &g, float scale, float inv_scale)
{
    const __m256 vscale = _mm256_set1_ps(scale);
    const __m256 vinv = _mm256_set1_ps(inv_scale);
    const int64_t n8 = count & ~int64_t{7};
    for (int64_t i = 0; i < n8; i += 8) {
        __m256 x = _mm256_mul_ps(_mm256_loadu_ps(p + i), vscale);
        _mm256_storeu_ps(p + i,
                         _mm256_mul_ps(quantize8Avx2(x, g), vinv));
    }
    // Scalar codec on the tail: trivially bit-exact.
    for (int64_t i = n8; i < count; ++i)
        p[i] = quantizeNearest(p[i] * scale, fmt) * inv_scale;
}

void
bf16RoundAvx2(float *p, int64_t count)
{
    // Same integer arithmetic as the scalar kernel, eight at a time.
    const __m256i bias = _mm256_set1_epi32(0x7FFF);
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i mask = _mm256_set1_epi32(
        static_cast<int>(0xFFFF0000u));
    const int64_t n8 = count & ~int64_t{7};
    for (int64_t i = 0; i < n8; i += 8) {
        __m256i u = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p + i));
        __m256i lsb =
            _mm256_and_si256(_mm256_srli_epi32(u, 16), one);
        u = _mm256_add_epi32(u, _mm256_add_epi32(bias, lsb));
        u = _mm256_and_si256(u, mask);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p + i), u);
    }
    for (int64_t i = n8; i < count; ++i) {
        uint32_t u;
        std::memcpy(&u, &p[i], sizeof(u));
        u += 0x7FFFu + ((u >> 16) & 1u);
        u &= 0xFFFF0000u;
        std::memcpy(&p[i], &u, sizeof(u));
    }
}

float
maxAbsAvx2(const float *p, int64_t count)
{
    const __m256 abs_mask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
    __m256 acc = _mm256_setzero_ps();
    const int64_t n8 = count & ~int64_t{7};
    for (int64_t i = 0; i < n8; i += 8) {
        __m256 ax = _mm256_and_ps(_mm256_loadu_ps(p + i), abs_mask);
        // maxps returns the second operand on unordered, so putting
        // the accumulator second ignores NaN inputs like std::max.
        acc = _mm256_max_ps(ax, acc);
    }
    __m128 lo = _mm_max_ps(_mm256_castps256_ps128(acc),
                           _mm256_extractf128_ps(acc, 1));
    lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 0x1));
    float max_abs = _mm_cvtss_f32(lo);
    for (int64_t i = n8; i < count; ++i)
        max_abs = std::max(max_abs, std::fabs(p[i]));
    return max_abs;
}

void
errorStatsAvx2(const float *ref, const float *q, int64_t count,
               double *sum_sq, double *max_err)
{
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d vmax = _mm256_setzero_pd();
    const __m256d abs_mask = _mm256_castsi256_pd(
        _mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
    const int64_t n8 = count & ~int64_t{7};
    for (int64_t i = 0; i < n8; i += 8) {
        __m256 vr = _mm256_loadu_ps(ref + i);
        __m256 vq = _mm256_loadu_ps(q + i);
        __m256d d0 = _mm256_sub_pd(
            _mm256_cvtps_pd(_mm256_castps256_ps128(vq)),
            _mm256_cvtps_pd(_mm256_castps256_ps128(vr)));
        __m256d d1 =
            _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(vq, 1)),
                          _mm256_cvtps_pd(_mm256_extractf128_ps(vr, 1)));
        acc0 = _mm256_fmadd_pd(d0, d0, acc0);
        acc1 = _mm256_fmadd_pd(d1, d1, acc1);
        vmax = _mm256_max_pd(_mm256_and_pd(d0, abs_mask), vmax);
        vmax = _mm256_max_pd(_mm256_and_pd(d1, abs_mask), vmax);
    }
    __m256d acc = _mm256_add_pd(acc0, acc1);
    __m128d s = _mm_add_pd(_mm256_castpd256_pd128(acc),
                           _mm256_extractf128_pd(acc, 1));
    double sum = _mm_cvtsd_f64(s) +
                 _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
    __m128d m = _mm_max_pd(_mm256_castpd256_pd128(vmax),
                           _mm256_extractf128_pd(vmax, 1));
    double max_e = std::max(_mm_cvtsd_f64(m),
                            _mm_cvtsd_f64(_mm_unpackhi_pd(m, m)));
    for (int64_t i = n8; i < count; ++i) {
        double d = static_cast<double>(q[i]) - ref[i];
        sum += d * d;
        max_e = std::max(max_e, std::fabs(d));
    }
    *sum_sq = sum;
    *max_err = max_e;
}

void
attnSoftmaxFwdAvx2(float *prob, int64_t seq, float scale)
{
    // Bit-exact with the scalar kernel: the scale multiply and the
    // normalize multiply are per-element IEEE ops (vectorizable as
    // is), the max is a selection over the same value set (maxps with
    // the accumulator second ignores NaN like std::max, and a ±0
    // pick cannot change exp(x - maxv)), while exp() and the double
    // row-sum keep the scalar accumulation order.
    const __m256 vscale = _mm256_set1_ps(scale);
    for (int64_t i = 0; i < seq; ++i) {
        float *row = prob + i * seq;
        const int64_t len = i + 1;
        const int64_t len8 = len & ~int64_t{7};
        float maxv = -1e30f;
        if (len8 > 0) {
            __m256 vmax = _mm256_set1_ps(-1e30f);
            for (int64_t j = 0; j < len8; j += 8) {
                __m256 v = _mm256_mul_ps(_mm256_loadu_ps(row + j),
                                         vscale);
                _mm256_storeu_ps(row + j, v);
                vmax = _mm256_max_ps(v, vmax);
            }
            __m128 lo = _mm_max_ps(_mm256_castps256_ps128(vmax),
                                   _mm256_extractf128_ps(vmax, 1));
            lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
            lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 0x1));
            maxv = _mm_cvtss_f32(lo);
        }
        for (int64_t j = len8; j < len; ++j) {
            row[j] *= scale;
            maxv = std::max(maxv, row[j]);
        }
        double denom = 0.0;
        for (int64_t j = 0; j < len; ++j) {
            row[j] = std::exp(row[j] - maxv);
            denom += row[j];
        }
        const float inv = static_cast<float>(1.0 / std::max(denom, 1e-30));
        const __m256 vinv = _mm256_set1_ps(inv);
        for (int64_t j = 0; j < len8; j += 8)
            _mm256_storeu_ps(
                row + j,
                _mm256_mul_ps(_mm256_loadu_ps(row + j), vinv));
        for (int64_t j = len8; j < len; ++j)
            row[j] *= inv;
        if (len < seq)
            std::memset(row + len, 0,
                        sizeof(float) * static_cast<size_t>(seq - len));
    }
}

void
attnSoftmaxBwdAvx2(const float *prob, const float *dp, float *ds,
                   int64_t seq, float scale)
{
    // dot stays a scalar double reduction; the elementwise
    // prob * (dp - dot) * scale keeps the scalar association per lane,
    // so results are bit-exact with the scalar kernel. Loads of a row
    // complete before its stores, so ds may alias dp.
    const __m256 vscale = _mm256_set1_ps(scale);
    for (int64_t i = 0; i < seq; ++i) {
        const float *prow = prob + i * seq;
        const float *dprow = dp + i * seq;
        float *dsrow = ds + i * seq;
        const int64_t len = i + 1;
        const int64_t len8 = len & ~int64_t{7};
        double dot = 0.0;
        for (int64_t j = 0; j < len; ++j)
            dot += static_cast<double>(dprow[j]) * prow[j];
        const float dotf = static_cast<float>(dot);
        const __m256 vdot = _mm256_set1_ps(dotf);
        for (int64_t j = 0; j < len8; j += 8) {
            __m256 d = _mm256_sub_ps(_mm256_loadu_ps(dprow + j), vdot);
            __m256 r = _mm256_mul_ps(
                _mm256_mul_ps(_mm256_loadu_ps(prow + j), d), vscale);
            _mm256_storeu_ps(dsrow + j, r);
        }
        for (int64_t j = len8; j < len; ++j)
            dsrow[j] = prow[j] * (dprow[j] - dotf) * scale;
        if (len < seq)
            std::memset(dsrow + len, 0,
                        sizeof(float) * static_cast<size_t>(seq - len));
    }
}

double
sumSquaresAvx2(const float *p, int64_t count)
{
    // Two 4-wide double accumulators mirror errorStatsAvx2: each float
    // is widened to double before squaring, so only the lane-order of
    // the final additions differs from the scalar backend.
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    const int64_t n8 = count & ~int64_t{7};
    for (int64_t i = 0; i < n8; i += 8) {
        __m256 v = _mm256_loadu_ps(p + i);
        __m256d d0 = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
        __m256d d1 = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
        acc0 = _mm256_fmadd_pd(d0, d0, acc0);
        acc1 = _mm256_fmadd_pd(d1, d1, acc1);
    }
    __m256d acc = _mm256_add_pd(acc0, acc1);
    __m128d s = _mm_add_pd(_mm256_castpd256_pd128(acc),
                           _mm256_extractf128_pd(acc, 1));
    double sum = _mm_cvtsd_f64(s) +
                 _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
    for (int64_t i = n8; i < count; ++i)
        sum += static_cast<double>(p[i]) * p[i];
    return sum;
}

} // namespace

const KernelTable &
avx2Kernels()
{
    static const KernelTable table = {
        "avx2",          gemmNtBlockAvx2, gemmNnBlockAvx2,
        gemmTnBlockAvx2, packAAvx2,       packBAvx2,
        gemmPackedBlockAvx2,
        quantizeNearestAvx2,
        bf16RoundAvx2,   maxAbsAvx2,      errorStatsAvx2,
        sumSquaresAvx2,
        attnSoftmaxFwdAvx2,
        attnSoftmaxBwdAvx2,
    };
    return table;
}

bool
avx2Compiled()
{
    return true;
}

} // namespace simd
} // namespace snip

#else // !SNIP_SIMD_HAVE_AVX2

namespace snip {
namespace simd {

const KernelTable &
avx2Kernels()
{
    // Never selected: dispatch treats AVX2 as unavailable in builds
    // without the backend. Returning the scalar table keeps the
    // symbol defined without an #ifdef in every caller.
    return scalarKernels();
}

bool
avx2Compiled()
{
    return false;
}

} // namespace simd
} // namespace snip

#endif // SNIP_SIMD_HAVE_AVX2
