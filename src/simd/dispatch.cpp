#include "simd/dispatch.h"

#include <atomic>
#include <cstring>

#include "runtime/env_config.h"
#include "simd/kernels.h"
#include "util/logging.h"

namespace snip {
namespace simd {

namespace {

std::atomic<const KernelTable *> g_active{nullptr};

bool
hostHasAvx2()
{
#if defined(SNIP_SIMD_HAVE_AVX2)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

/** Map a SNIP_SIMD spelling onto a table; null for unknown names. */
const KernelTable *
resolve(const char *spec)
{
    if (spec == nullptr || *spec == '\0' ||
        std::strcmp(spec, "auto") == 0) {
        return cpuSupportsAvx2() ? &avx2Kernels() : &scalarKernels();
    }
    if (std::strcmp(spec, "scalar") == 0)
        return &scalarKernels();
    if (std::strcmp(spec, "avx2") == 0) {
        if (cpuSupportsAvx2())
            return &avx2Kernels();
        warn("SNIP_SIMD=avx2 requested but ",
             avx2Compiled() ? "this CPU lacks AVX2+FMA"
                            : "the AVX2 backend is not compiled in",
             "; using the scalar backend");
        return &scalarKernels();
    }
    return nullptr;
}

const KernelTable *
resolveFromEnv()
{
    const char *spec = runtime::envConfig().simd().cstrOrNull();
    const KernelTable *t = resolve(spec);
    if (t == nullptr) {
        warn("unknown SNIP_SIMD value '", spec,
             "' (expected auto|avx2|scalar); using auto");
        t = resolve("auto");
    }
    return t;
}

} // namespace

const KernelTable &
activeKernels()
{
    const KernelTable *t = g_active.load(std::memory_order_acquire);
    if (t == nullptr) {
        // Benign race: every initializer computes the same answer.
        t = resolveFromEnv();
        g_active.store(t, std::memory_order_release);
    }
    return *t;
}

Backend
activeBackend()
{
    return &activeKernels() == &scalarKernels() ? Backend::Scalar
                                                : Backend::Avx2;
}

const char *
activeBackendName()
{
    return activeKernels().name;
}

bool
cpuSupportsAvx2()
{
    static const bool supported = hostHasAvx2();
    return supported;
}

bool
setBackendByName(const char *name)
{
    if (name != nullptr && std::strcmp(name, "avx2") == 0 &&
        !cpuSupportsAvx2()) {
        return false;
    }
    const KernelTable *t = resolve(name);
    if (t == nullptr)
        return false;
    g_active.store(t, std::memory_order_release);
    return true;
}

void
reinitFromEnv()
{
    // Tests mutate SNIP_SIMD with setenv(); refresh the shared
    // snapshot so the re-resolution below sees the new value.
    runtime::reloadEnvConfig();
    g_active.store(resolveFromEnv(), std::memory_order_release);
}

} // namespace simd
} // namespace snip
