/**
 * @file
 * Portable scalar backend: the plain C++ kernels every build compiles.
 *
 * These are the reference implementations — the GEMM blocks are the
 * cache-blocked loops the library shipped before runtime dispatch
 * existed, and the quantize sweep calls the scalar codec directly.
 * tests/test_simd.cpp holds the AVX2 backend to these outputs.
 */
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "quant/codec.h"
#include "simd/kernels.h"

namespace snip {
namespace simd {

namespace {

void
gemmNtBlockScalar(const float *a, const float *b, float *c, int64_t i0,
                  int64_t i1, int64_t /*m*/, int64_t n, int64_t k)
{
    // Each C element is one dot product; the N-blocked loop order is
    // fixed, so any thread count reproduces the same bits.
    for (int64_t j0 = 0; j0 < n; j0 += kGemmBlockN) {
        int64_t j1 = std::min(j0 + kGemmBlockN, n);
        for (int64_t i = i0; i < i1; ++i) {
            const float *arow = a + i * k;
            float *crow = c + i * n;
            for (int64_t j = j0; j < j1; ++j) {
                const float *brow = b + j * k;
                float acc = 0.0f;
                for (int64_t kk = 0; kk < k; ++kk)
                    acc += arow[kk] * brow[kk];
                crow[j] += acc;
            }
        }
    }
}

void
gemmNnBlockScalar(const float *a, const float *b, float *c, int64_t i0,
                  int64_t i1, int64_t /*m*/, int64_t n, int64_t k)
{
    for (int64_t k0 = 0; k0 < k; k0 += kGemmBlockK) {
        int64_t k1 = std::min(k0 + kGemmBlockK, k);
        for (int64_t i = i0; i < i1; ++i) {
            const float *arow = a + i * k;
            float *crow = c + i * n;
            for (int64_t kk = k0; kk < k1; ++kk) {
                float av = arow[kk];
                const float *brow = b + kk * n;
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    }
}

void
gemmTnBlockScalar(const float *a, const float *b, float *c, int64_t i0,
                  int64_t i1, int64_t m, int64_t n, int64_t k)
{
    // C[i,j] += sum_kk A[kk,i] * B[kk,j]; kk stays the outer loop so A
    // and B are read row-wise. Per C row the kk order is fixed.
    for (int64_t k0 = 0; k0 < k; k0 += kGemmBlockK) {
        int64_t k1 = std::min(k0 + kGemmBlockK, k);
        for (int64_t kk = k0; kk < k1; ++kk) {
            const float *arow = a + kk * m;
            const float *brow = b + kk * n;
            for (int64_t i = i0; i < i1; ++i) {
                float av = arow[i];
                if (av == 0.0f)
                    continue;
                float *crow = c + i * n;
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    }
}

void
quantizeNearestScalar(float *p, int64_t count, const FloatFormat &fmt,
                      const QuantGrid & /*grid*/, float scale,
                      float inv_scale)
{
    for (int64_t i = 0; i < count; ++i)
        p[i] = quantizeNearest(p[i] * scale, fmt) * inv_scale;
}

void
bf16RoundScalar(float *p, int64_t count)
{
    for (int64_t i = 0; i < count; ++i) {
        uint32_t u;
        std::memcpy(&u, &p[i], sizeof(u));
        u += 0x7FFFu + ((u >> 16) & 1u);
        u &= 0xFFFF0000u;
        std::memcpy(&p[i], &u, sizeof(u));
    }
}

float
maxAbsScalar(const float *p, int64_t count)
{
    float max_abs = 0.0f;
    for (int64_t i = 0; i < count; ++i)
        max_abs = std::max(max_abs, std::fabs(p[i]));
    return max_abs;
}

void
errorStatsScalar(const float *ref, const float *q, int64_t count,
                 double *sum_sq, double *max_err)
{
    double acc = 0.0;
    double max_e = 0.0;
    for (int64_t i = 0; i < count; ++i) {
        double d = static_cast<double>(q[i]) - ref[i];
        acc += d * d;
        max_e = std::max(max_e, std::fabs(d));
    }
    *sum_sq = acc;
    *max_err = max_e;
}

double
sumSquaresScalar(const float *p, int64_t count)
{
    double acc = 0.0;
    for (int64_t i = 0; i < count; ++i)
        acc += static_cast<double>(p[i]) * p[i];
    return acc;
}

} // namespace

const KernelTable &
scalarKernels()
{
    static const KernelTable table = {
        "scalar",          gemmNtBlockScalar, gemmNnBlockScalar,
        gemmTnBlockScalar, quantizeNearestScalar,
        bf16RoundScalar,   maxAbsScalar,      errorStatsScalar,
        sumSquaresScalar,
    };
    return table;
}

} // namespace simd
} // namespace snip
