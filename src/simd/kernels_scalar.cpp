/**
 * @file
 * Portable scalar backend: the plain C++ kernels every build compiles.
 *
 * These are the reference implementations — the GEMM blocks are the
 * cache-blocked loops the library shipped before runtime dispatch
 * existed, and the quantize sweep calls the scalar codec directly.
 * tests/test_simd.cpp holds the AVX2 backend to these outputs.
 */
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "quant/codec.h"
#include "simd/kernels.h"

namespace snip {
namespace simd {

namespace {

void
gemmNtBlockScalar(const float *a, const float *b, float *c, int64_t i0,
                  int64_t i1, int64_t /*m*/, int64_t n, int64_t k)
{
    // Each C element is one dot product; the N-blocked loop order is
    // fixed, so any thread count reproduces the same bits.
    for (int64_t j0 = 0; j0 < n; j0 += kGemmBlockN) {
        int64_t j1 = std::min(j0 + kGemmBlockN, n);
        for (int64_t i = i0; i < i1; ++i) {
            const float *arow = a + i * k;
            float *crow = c + i * n;
            for (int64_t j = j0; j < j1; ++j) {
                const float *brow = b + j * k;
                float acc = 0.0f;
                for (int64_t kk = 0; kk < k; ++kk)
                    acc += arow[kk] * brow[kk];
                crow[j] += acc;
            }
        }
    }
}

void
gemmNnBlockScalar(const float *a, const float *b, float *c, int64_t i0,
                  int64_t i1, int64_t /*m*/, int64_t n, int64_t k)
{
    for (int64_t k0 = 0; k0 < k; k0 += kGemmBlockK) {
        int64_t k1 = std::min(k0 + kGemmBlockK, k);
        for (int64_t i = i0; i < i1; ++i) {
            const float *arow = a + i * k;
            float *crow = c + i * n;
            for (int64_t kk = k0; kk < k1; ++kk) {
                float av = arow[kk];
                const float *brow = b + kk * n;
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    }
}

void
gemmTnBlockScalar(const float *a, const float *b, float *c, int64_t i0,
                  int64_t i1, int64_t m, int64_t n, int64_t k)
{
    // C[i,j] += sum_kk A[kk,i] * B[kk,j]; kk stays the outer loop so A
    // and B are read row-wise. Per C row the kk order is fixed.
    for (int64_t k0 = 0; k0 < k; k0 += kGemmBlockK) {
        int64_t k1 = std::min(k0 + kGemmBlockK, k);
        for (int64_t kk = k0; kk < k1; ++kk) {
            const float *arow = a + kk * m;
            const float *brow = b + kk * n;
            for (int64_t i = i0; i < i1; ++i) {
                float av = arow[i];
                if (av == 0.0f)
                    continue;
                float *crow = c + i * n;
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    }
}

// ------------------------------------------------------------ packing

/** Quantize one value during a pack; identity when @p pq is null.
 *  (sr, sc) are SOURCE-matrix coordinates for the region lookup. */
inline float
packQuantOne(float x, const PackQuant *pq, int64_t sr, int64_t sc)
{
    if (pq == nullptr)
        return x;
    const int64_t reg = (sr / pq->row_block) * pq->regions_per_row +
                        sc / pq->col_block;
    return quantizeNearest(x * pq->scale[reg], *pq->fmt) *
           pq->inv_scale[reg];
}

void
packAScalar(const float *src, int64_t ld, bool k_major, float *ap,
            int64_t i0, int64_t i1, int64_t k, const PackQuant *pq)
{
    const int64_t mb = i1 - i0;
    const int64_t strips = packStrips(mb, kGemmPackMR);
    for (int64_t s = 0; s < strips; ++s) {
        float *dst = ap + s * kGemmPackMR * k;
        const int64_t rows = std::min(kGemmPackMR, mb - s * kGemmPackMR);
        for (int64_t r = 0; r < kGemmPackMR; ++r) {
            if (r >= rows) {
                for (int64_t kk = 0; kk < k; ++kk)
                    dst[kk * kGemmPackMR + r] = 0.0f;
                continue;
            }
            const int64_t i = i0 + s * kGemmPackMR + r;
            if (k_major) {
                for (int64_t kk = 0; kk < k; ++kk)
                    dst[kk * kGemmPackMR + r] =
                        packQuantOne(src[kk * ld + i], pq, kk, i);
            } else {
                const float *row = src + i * ld;
                for (int64_t kk = 0; kk < k; ++kk)
                    dst[kk * kGemmPackMR + r] =
                        packQuantOne(row[kk], pq, i, kk);
            }
        }
    }
}

void
packBScalar(const float *src, int64_t ld, bool k_major, float *bp,
            int64_t j0, int64_t j1, int64_t n, int64_t k,
            const PackQuant *pq)
{
    for (int64_t s0 = j0; s0 < j1; s0 += kGemmPackNR) {
        float *dst = bp + (s0 / kGemmPackNR) * kGemmPackNR * k;
        const int64_t cols = std::min(kGemmPackNR, n - s0);
        for (int64_t r = 0; r < kGemmPackNR; ++r) {
            if (r >= cols) {
                for (int64_t kk = 0; kk < k; ++kk)
                    dst[kk * kGemmPackNR + r] = 0.0f;
                continue;
            }
            const int64_t j = s0 + r;
            if (k_major) {
                for (int64_t kk = 0; kk < k; ++kk)
                    dst[kk * kGemmPackNR + r] =
                        packQuantOne(src[kk * ld + j], pq, kk, j);
            } else {
                const float *row = src + j * ld;
                for (int64_t kk = 0; kk < k; ++kk)
                    dst[kk * kGemmPackNR + r] =
                        packQuantOne(row[kk], pq, j, kk);
            }
        }
    }
}

void
gemmPackedBlockScalar(const float *ap, const float *bp, float *c,
                      int64_t ldc, int64_t mb, int64_t n, int64_t k)
{
    const int64_t m_strips = packStrips(mb, kGemmPackMR);
    const int64_t n_strips = packStrips(n, kGemmPackNR);
    for (int64_t js = 0; js < n_strips; ++js) {
        const float *bs = bp + js * kGemmPackNR * k;
        const int64_t j0 = js * kGemmPackNR;
        const int64_t jn = std::min(kGemmPackNR, n - j0);
        for (int64_t ms = 0; ms < m_strips; ++ms) {
            const float *as = ap + ms * kGemmPackMR * k;
            const int64_t i0 = ms * kGemmPackMR;
            const int64_t mr = std::min(kGemmPackMR, mb - i0);
            // Per C element the sum runs over k ascending — the fixed
            // accumulation order of the packed-path contract.
            float acc[kGemmPackMR][kGemmPackNR] = {};
            for (int64_t kk = 0; kk < k; ++kk) {
                const float *av = as + kk * kGemmPackMR;
                const float *bv = bs + kk * kGemmPackNR;
                for (int64_t r = 0; r < kGemmPackMR; ++r) {
                    const float a = av[r];
                    for (int64_t j = 0; j < kGemmPackNR; ++j)
                        acc[r][j] += a * bv[j];
                }
            }
            for (int64_t r = 0; r < mr; ++r) {
                float *crow = c + (i0 + r) * ldc + j0;
                for (int64_t j = 0; j < jn; ++j)
                    crow[j] += acc[r][j];
            }
        }
    }
}

void
quantizeNearestScalar(float *p, int64_t count, const FloatFormat &fmt,
                      const QuantGrid & /*grid*/, float scale,
                      float inv_scale)
{
    for (int64_t i = 0; i < count; ++i)
        p[i] = quantizeNearest(p[i] * scale, fmt) * inv_scale;
}

void
bf16RoundScalar(float *p, int64_t count)
{
    for (int64_t i = 0; i < count; ++i) {
        uint32_t u;
        std::memcpy(&u, &p[i], sizeof(u));
        u += 0x7FFFu + ((u >> 16) & 1u);
        u &= 0xFFFF0000u;
        std::memcpy(&p[i], &u, sizeof(u));
    }
}

float
maxAbsScalar(const float *p, int64_t count)
{
    float max_abs = 0.0f;
    for (int64_t i = 0; i < count; ++i)
        max_abs = std::max(max_abs, std::fabs(p[i]));
    return max_abs;
}

void
errorStatsScalar(const float *ref, const float *q, int64_t count,
                 double *sum_sq, double *max_err)
{
    double acc = 0.0;
    double max_e = 0.0;
    for (int64_t i = 0; i < count; ++i) {
        double d = static_cast<double>(q[i]) - ref[i];
        acc += d * d;
        max_e = std::max(max_e, std::fabs(d));
    }
    *sum_sq = acc;
    *max_err = max_e;
}

double
sumSquaresScalar(const float *p, int64_t count)
{
    double acc = 0.0;
    for (int64_t i = 0; i < count; ++i)
        acc += static_cast<double>(p[i]) * p[i];
    return acc;
}

void
attnSoftmaxFwdScalar(float *prob, int64_t seq, float scale)
{
    // The reference semantics every backend must reproduce bit for
    // bit: scale + running max over the causal prefix, scalar exp,
    // double row-sum, float normalize, exact zeros above the diagonal.
    for (int64_t i = 0; i < seq; ++i) {
        float *row = prob + i * seq;
        float maxv = -1e30f;
        for (int64_t j = 0; j <= i; ++j) {
            row[j] *= scale;
            maxv = std::max(maxv, row[j]);
        }
        double denom = 0.0;
        for (int64_t j = 0; j <= i; ++j) {
            row[j] = std::exp(row[j] - maxv);
            denom += row[j];
        }
        const float inv = static_cast<float>(1.0 / std::max(denom, 1e-30));
        for (int64_t j = 0; j <= i; ++j)
            row[j] *= inv;
        for (int64_t j = i + 1; j < seq; ++j)
            row[j] = 0.0f;
    }
}

void
attnSoftmaxBwdScalar(const float *prob, const float *dp, float *ds,
                     int64_t seq, float scale)
{
    for (int64_t i = 0; i < seq; ++i) {
        const float *prow = prob + i * seq;
        const float *dprow = dp + i * seq;
        float *dsrow = ds + i * seq;
        double dot = 0.0;
        for (int64_t j = 0; j <= i; ++j)
            dot += static_cast<double>(dprow[j]) * prow[j];
        for (int64_t j = 0; j < seq; ++j) {
            dsrow[j] =
                j <= i
                    ? prow[j] * (dprow[j] - static_cast<float>(dot)) *
                          scale
                    : 0.0f;
        }
    }
}

} // namespace

const KernelTable &
scalarKernels()
{
    static const KernelTable table = {
        "scalar",          gemmNtBlockScalar, gemmNnBlockScalar,
        gemmTnBlockScalar, packAScalar,       packBScalar,
        gemmPackedBlockScalar,
        quantizeNearestScalar,
        bf16RoundScalar,   maxAbsScalar,      errorStatsScalar,
        sumSquaresScalar,
        attnSoftmaxFwdScalar,
        attnSoftmaxBwdScalar,
    };
    return table;
}

} // namespace simd
} // namespace snip
