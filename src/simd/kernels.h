/**
 * @file
 * Portable kernel-backend interface for the three hot paths.
 *
 * A KernelTable bundles the architecture-specific inner kernels the
 * library dispatches at runtime (simd/dispatch.h): the GEMM block
 * microkernels, the nearest-rounding grid-snap sweep, and the
 * error-metric reductions. Backends implement the same block
 * decomposition (the constants below) and a fixed per-block
 * accumulation order, so each backend keeps the PR 1 guarantee that
 * results are bit-identical for any thread count. Different backends
 * may legitimately differ in low-order bits of GEMM and sum-of-squares
 * results (FMA contraction, vector-lane accumulation order); the
 * quantize, bf16-round and max-abs kernels are required to agree
 * bit-for-bit across backends. tests/test_simd.cpp enforces both
 * contracts.
 */
#ifndef SNIP_SIMD_KERNELS_H
#define SNIP_SIMD_KERNELS_H

#include <cstdint>

#include "quant/codec.h"

namespace snip {
namespace simd {

/// GEMM block sizes shared by every backend (an A-panel plus a B-panel
/// fit in L1/L2). The M-block is also the parallelFor unit in
/// tensor/gemm.cpp: workers own whole rows of C, so the decomposition
/// — and therefore each backend's accumulation order — never depends
/// on thread count.
constexpr int64_t kGemmBlockM = 64;
constexpr int64_t kGemmBlockN = 64;
constexpr int64_t kGemmBlockK = 128;

/**
 * One C-row-block of a GEMM: rows [i0, i1) of the M dimension.
 *
 * The caller (tensor/gemm.cpp) has already zeroed the rows when not
 * accumulating, so every kernel unconditionally adds into C. @p m is
 * the full M extent (needed by the TN variant, whose A is K x M).
 */
using GemmBlockFn = void (*)(const float *a, const float *b, float *c,
                             int64_t i0, int64_t i1, int64_t m, int64_t n,
                             int64_t k);

/**
 * In-place nearest-rounding fake quantization of @p count values:
 * p[i] = quantizeNearest(p[i] * scale, fmt) * inv_scale.
 * Must match the scalar codec (quant/codec.h) bit for bit. @p grid is
 * quantGrid(fmt), hoisted by the caller so per-span calls (one per
 * row segment of a scaling region, as few as 128 elements) don't pay
 * the constant setup.
 */
using QuantizeNearestFn = void (*)(float *p, int64_t count,
                                   const FloatFormat &fmt,
                                   const QuantGrid &grid, float scale,
                                   float inv_scale);

/** In-place bf16 round-to-nearest-even of @p count values (the
 *  tensorwise bf16 fast path; pure bit manipulation, exact). */
using Bf16RoundFn = void (*)(float *p, int64_t count);

/** Largest |p[i]| over @p count values; 0 for empty runs. NaN inputs
 *  are ignored (never returned), matching a scalar max-reduction. */
using MaxAbsFn = float (*)(const float *p, int64_t count);

/**
 * Error-metric reduction: *sum_sq = sum((q[i]-ref[i])^2) accumulated
 * in double, *max_err = max |q[i]-ref[i]|. max_err must be exact;
 * sum_sq may differ across backends in low-order bits.
 */
using ErrorStatsFn = void (*)(const float *ref, const float *q,
                              int64_t count, double *sum_sq,
                              double *max_err);

/**
 * sum(p[i]^2) accumulated in double — the Frobenius-norm reduction the
 * stats collector and eval paths lean on (tensor/ops.cpp dispatches
 * here). Like sum_sq above, backends may differ in low-order bits.
 */
using SumSquaresFn = double (*)(const float *p, int64_t count);

/** The dispatchable kernel set of one backend. */
struct KernelTable
{
    const char *name;
    GemmBlockFn gemmNtBlock; ///< C[i,:] += A[i,:] * B^T (B is N x K)
    GemmBlockFn gemmNnBlock; ///< C[i,:] += A[i,:] * B   (B is K x N)
    GemmBlockFn gemmTnBlock; ///< C[i,:] += A[:,i]^T * B (A is K x M)
    QuantizeNearestFn quantizeNearest;
    Bf16RoundFn bf16Round;
    MaxAbsFn maxAbs;
    ErrorStatsFn errorStats;
    SumSquaresFn sumSquares;
};

/** The portable plain-C++ backend (always available). */
const KernelTable &scalarKernels();

/** True when the AVX2+FMA backend was compiled in. */
bool avx2Compiled();

/** The AVX2+FMA backend; only valid to *call into* when
 *  dispatch.h's cpuSupportsAvx2() is true. */
const KernelTable &avx2Kernels();

} // namespace simd
} // namespace snip

#endif // SNIP_SIMD_KERNELS_H
