/**
 * @file
 * Portable kernel-backend interface for the three hot paths.
 *
 * A KernelTable bundles the architecture-specific inner kernels the
 * library dispatches at runtime (simd/dispatch.h): the GEMM block
 * microkernels, the nearest-rounding grid-snap sweep, and the
 * error-metric reductions. Backends implement the same block
 * decomposition (the constants below) and a fixed per-block
 * accumulation order, so each backend keeps the PR 1 guarantee that
 * results are bit-identical for any thread count. Different backends
 * may legitimately differ in low-order bits of GEMM and sum-of-squares
 * results (FMA contraction, vector-lane accumulation order); the
 * quantize, bf16-round and max-abs kernels are required to agree
 * bit-for-bit across backends. tests/test_simd.cpp enforces both
 * contracts.
 */
#ifndef SNIP_SIMD_KERNELS_H
#define SNIP_SIMD_KERNELS_H

#include <cstdint>

#include "quant/codec.h"

namespace snip {
namespace simd {

/// GEMM block sizes shared by every backend (an A-panel plus a B-panel
/// fit in L1/L2). The M-block is also the parallelFor unit in
/// tensor/gemm.cpp: workers own whole rows of C, so the decomposition
/// — and therefore each backend's accumulation order — never depends
/// on thread count.
constexpr int64_t kGemmBlockM = 64;
constexpr int64_t kGemmBlockN = 64;
constexpr int64_t kGemmBlockK = 128;

/// Packed-path register-tile edges, shared by every backend: packed A
/// panels hold kGemmPackMR-row strips, packed B panels kGemmPackNR-
/// column strips (6 x 16 is the classic AVX2+FMA sweet spot — twelve
/// 8-lane accumulators). The parallelFor unit of the packed path stays
/// the kGemmBlockM row block, so M-block ownership is identical to the
/// unpacked path and thread count still cannot change numerics.
constexpr int64_t kGemmPackMR = 6;
constexpr int64_t kGemmPackNR = 16;

/// Strip count of a packed dimension (panels are zero-padded to whole
/// strips).
constexpr int64_t
packStrips(int64_t extent, int64_t strip)
{
    return (extent + strip - 1) / strip;
}

/**
 * Fused quantize-on-pack parameters: the grid-snap (nearest-rounding)
 * quantizer applied to every element as it is copied into a packed
 * panel, so no quantized tensor copy is ever materialized. Scales are
 * per scaling region of the SOURCE matrix (quant/scaling.h geometry):
 * the region of source element (r, c) is
 *     (r / row_block) * regions_per_row + c / col_block
 * and the caller precomputes scale[] / inv_scale[] exactly as the
 * materializing quantizer would, so fused and materialized results are
 * bit-identical (both backends' grid snap already is). Stochastic
 * rounding is NOT fusable (its RNG stream consumes draws in row-major
 * region order); callers materialize those operands first.
 */
struct PackQuant
{
    const FloatFormat *fmt = nullptr;
    const QuantGrid *grid = nullptr;
    const float *scale = nullptr;
    const float *inv_scale = nullptr;
    int64_t row_block = 0;
    int64_t col_block = 0;
    int64_t regions_per_row = 0;
};

/**
 * One C-row-block of a GEMM: rows [i0, i1) of the M dimension.
 *
 * The caller (tensor/gemm.cpp) has already zeroed the rows when not
 * accumulating, so every kernel unconditionally adds into C. @p m is
 * the full M extent (needed by the TN variant, whose A is K x M).
 */
using GemmBlockFn = void (*)(const float *a, const float *b, float *c,
                             int64_t i0, int64_t i1, int64_t m, int64_t n,
                             int64_t k);

/**
 * In-place nearest-rounding fake quantization of @p count values:
 * p[i] = quantizeNearest(p[i] * scale, fmt) * inv_scale.
 * Must match the scalar codec (quant/codec.h) bit for bit. @p grid is
 * quantGrid(fmt), hoisted by the caller so per-span calls (one per
 * row segment of a scaling region, as few as 128 elements) don't pay
 * the constant setup.
 */
using QuantizeNearestFn = void (*)(float *p, int64_t count,
                                   const FloatFormat &fmt,
                                   const QuantGrid &grid, float scale,
                                   float inv_scale);

/** In-place bf16 round-to-nearest-even of @p count values (the
 *  tensorwise bf16 fast path; pure bit manipulation, exact). */
using Bf16RoundFn = void (*)(float *p, int64_t count);

/** Largest |p[i]| over @p count values; 0 for empty runs. NaN inputs
 *  are ignored (never returned), matching a scalar max-reduction. */
using MaxAbsFn = float (*)(const float *p, int64_t count);

/**
 * Error-metric reduction: *sum_sq = sum((q[i]-ref[i])^2) accumulated
 * in double, *max_err = max |q[i]-ref[i]|. max_err must be exact;
 * sum_sq may differ across backends in low-order bits.
 */
using ErrorStatsFn = void (*)(const float *ref, const float *q,
                              int64_t count, double *sum_sq,
                              double *max_err);

/**
 * Pack rows [i0, i1) of the logical GEMM A operand (M x K) into
 * kGemmPackMR-row strips:
 *     ap[s*MR*k + kk*MR + r] = A[i0 + s*MR + r, kk]
 * (zero for i0+s*MR+r >= i1). When @p k_major is false the source is
 * A itself, row-major [M, K] with leading dimension @p ld = K; when
 * true the source is the TN variant's A, row-major [K, M] with
 * @p ld = M, and the element is src[kk*ld + i]. @p pq (nullable)
 * applies fused quantize-on-pack; its region coordinates are SOURCE
 * coordinates ((i, kk) when !k_major, (kk, i) when k_major).
 *
 * Callers must size the destination with at least 8 floats of
 * headroom past the final strip: vectorized backends store transposed
 * 8-lane groups at stride kGemmPackMR, so the last store of the last
 * strip spills two lanes past the panel (every earlier spill is
 * overwritten by later in-panel stores).
 */
using PackAFn = void (*)(const float *src, int64_t ld, bool k_major,
                         float *ap, int64_t i0, int64_t i1, int64_t k,
                         const PackQuant *pq);

/**
 * Pack columns [j0, j1) of the logical GEMM B operand (K x N) into
 * kGemmPackNR-column strips:
 *     bp[s*NR*k + kk*NR + r] = B[kk, s*NR + r]
 * (zero for s*NR+r >= n; @p j0 must be strip-aligned — it is a
 * parallelFor boundary). When @p k_major the source is row-major
 * [K, N] with @p ld = N (the NN/TN B operand); otherwise it is
 * row-major [N, K] with @p ld = K (the NT B operand, e.g. weights) and
 * the element is src[j*ld + kk]. @p bp points at the panel base (strip
 * offsets are computed from j0). Region coordinates for @p pq are
 * SOURCE coordinates ((kk, j) when k_major, (j, kk) otherwise).
 */
using PackBFn = void (*)(const float *src, int64_t ld, bool k_major,
                         float *bp, int64_t j0, int64_t j1, int64_t n,
                         int64_t k, const PackQuant *pq);

/**
 * One M-row-block of the packed GEMM: C[0..mb) x [0..n) at @p c
 * (leading dimension @p ldc) += Ap * Bp, where ap holds the block's
 * packed A panel and bp the full packed B panel. Strip walk order and
 * the per-element k-ascending accumulation are pure functions of the
 * arguments, so the packed path keeps the bit-exactness-for-any-
 * thread-count contract (it may differ from the unpacked kernels in
 * low-order bits — a separate, documented contract).
 */
using GemmPackedBlockFn = void (*)(const float *ap, const float *bp,
                                   float *c, int64_t ldc, int64_t mb,
                                   int64_t n, int64_t k);

/**
 * sum(p[i]^2) accumulated in double — the Frobenius-norm reduction the
 * stats collector and eval paths lean on (tensor/ops.cpp dispatches
 * here). Like sum_sq above, backends may differ in low-order bits.
 */
using SumSquaresFn = double (*)(const float *p, int64_t count);

/**
 * Fused scale + causal mask + rowwise softmax over one [seq, seq]
 * attention-score matrix, in place: for row i, entries j <= i are
 * scaled by @p scale, max-shifted, exponentiated and normalized by a
 * double-accumulated row sum; entries j > i become exactly 0.
 *
 * Contract: bit-exact across backends AND bit-exact against the
 * historical open-coded loop in nn/attention.cpp (the multiplies are
 * per-element IEEE ops, exp() and the row-sum accumulation stay
 * scalar), so SNIP_ATTN=serial keeps pre-batching bits while sharing
 * this kernel. tests/test_simd.cpp enforces the agreement.
 */
using AttnSoftmaxFwdFn = void (*)(float *prob, int64_t seq, float scale);

/**
 * Softmax backward with the score scale folded in, one [seq, seq]
 * item: ds[i][j] = prob[i][j] * (dp[i][j] - rowdot(dp[i], prob[i]))
 * * scale for j <= i (rowdot over j <= i, accumulated in double),
 * 0 above the diagonal. @p ds may alias @p dp (each row's dot is
 * fully reduced before the row is overwritten). Same cross-backend
 * bit-exactness contract as AttnSoftmaxFwdFn.
 */
using AttnSoftmaxBwdFn = void (*)(const float *prob, const float *dp,
                                  float *ds, int64_t seq, float scale);

/** The dispatchable kernel set of one backend. */
struct KernelTable
{
    const char *name;
    GemmBlockFn gemmNtBlock; ///< C[i,:] += A[i,:] * B^T (B is N x K)
    GemmBlockFn gemmNnBlock; ///< C[i,:] += A[i,:] * B   (B is K x N)
    GemmBlockFn gemmTnBlock; ///< C[i,:] += A[:,i]^T * B (A is K x M)
    PackAFn packA;           ///< strip-pack (+ fused quantize) A panels
    PackBFn packB;           ///< strip-pack (+ fused quantize) B panels
    GemmPackedBlockFn gemmPackedBlock; ///< packed-panel M-block GEMM
    QuantizeNearestFn quantizeNearest;
    Bf16RoundFn bf16Round;
    MaxAbsFn maxAbs;
    ErrorStatsFn errorStats;
    SumSquaresFn sumSquares;
    AttnSoftmaxFwdFn attnSoftmaxFwd; ///< scale+mask+softmax, one item
    AttnSoftmaxBwdFn attnSoftmaxBwd; ///< softmax backward, one item
};

/** The portable plain-C++ backend (always available). */
const KernelTable &scalarKernels();

/** True when the AVX2+FMA backend was compiled in. */
bool avx2Compiled();

/** The AVX2+FMA backend; only valid to *call into* when
 *  dispatch.h's cpuSupportsAvx2() is true. */
const KernelTable &avx2Kernels();

} // namespace simd
} // namespace snip

#endif // SNIP_SIMD_KERNELS_H
