/**
 * @file
 * Runtime kernel-backend dispatch.
 *
 * At first use the library picks a KernelTable (simd/kernels.h) from
 * the SNIP_SIMD environment variable:
 *
 *   SNIP_SIMD=auto    CPUID-detect: AVX2+FMA backend when the host
 *                     supports it, scalar otherwise (default).
 *   SNIP_SIMD=avx2    Force the AVX2 backend; falls back to scalar
 *                     with a warning when the host (or the build)
 *                     lacks AVX2+FMA.
 *   SNIP_SIMD=scalar  Force the portable scalar backend.
 *
 * The AVX2 translation unit is compiled with -mavx2 -mfma but is only
 * ever *called* behind this CPUID check, so the binary still runs on
 * baseline x86-64 (and non-x86 builds compile the scalar backend
 * only).
 *
 * Determinism contract: within one backend, results are bit-identical
 * for any thread count (see runtime/thread_pool.h); switching backends
 * may change low-order bits of GEMM and sum-of-squares reductions,
 * while quantization itself is bit-exact across backends.
 */
#ifndef SNIP_SIMD_DISPATCH_H
#define SNIP_SIMD_DISPATCH_H

namespace snip {
namespace simd {

struct KernelTable;

/** Kernel backends the dispatcher can select. */
enum class Backend
{
    Scalar,
    Avx2,
};

/** The currently selected kernel set (resolves SNIP_SIMD on first
 *  call; thread-safe). */
const KernelTable &activeKernels();

/** Backend behind activeKernels(). */
Backend activeBackend();

/** "scalar" or "avx2" — the backend actually in use (after any
 *  fallback), for logs, tests and bench context. */
const char *activeBackendName();

/** True when the AVX2 backend is compiled in AND the CPU reports
 *  AVX2+FMA support. */
bool cpuSupportsAvx2();

/**
 * Programmatically select a backend by SNIP_SIMD spelling
 * ("auto" | "avx2" | "scalar"). Returns false (selection unchanged)
 * for unknown names or for "avx2" on hosts without AVX2+FMA support.
 * Intended for tests and benches; must not race with in-flight
 * parallel kernels.
 */
bool setBackendByName(const char *name);

/** Re-resolve the backend from the SNIP_SIMD environment variable
 *  (tests use this after setenv()). */
void reinitFromEnv();

} // namespace simd
} // namespace snip

#endif // SNIP_SIMD_DISPATCH_H
