/**
 * @file
 * Persistent, content-addressed cache of ILP solutions.
 *
 * The scheme-search pipeline is deterministic: identical training state
 * produces a bit-identical DivergenceTable and therefore a bit-identical
 * IlpProblem. Warm-restarted or repeated searches (bench sweeps, resumed
 * pretraining, the async service re-solving a checkpointed interval)
 * hence re-pose problems the process — or a previous process — has
 * already solved. The cache maps ilpProblemHash() x solve options to the
 * stored IlpSolution so those solves are skipped entirely.
 *
 * Entries are verified against the live problem on every hit
 * (verifySolution), so a hash collision or a stale file can never
 * smuggle in an invalid scheme — it just degrades to a miss.
 *
 * On-disk format (binary, alongside the train/checkpoint format):
 * magic "SNIPSLC2", entry count, then per entry the key, feasibility,
 * objective, achieved efficiency, node count, original solve seconds
 * and the choice vector, closed by a CRC-32 trailer ("SNIPSLC1" files,
 * no trailer, still load). The file is rewritten atomically
 * (tmp + rename) after each insert when a path is configured. Every
 * entry is validated on load (finite objectives, bounded counts); a
 * truncated or corrupt tail drops only the bad entries — the validated
 * prefix is kept — and an unreadable file is an empty cache.
 *
 * The cache is LRU-bounded: setLimits() caps the entry count and the
 * approximate in-memory bytes (0 = unlimited, the default). Lookups
 * refresh recency; inserts evict from the cold end before the file is
 * rewritten, so the persisted cache respects the bounds too. Entries
 * are persisted most-recently-used first and reloaded in that order,
 * so recency survives restarts.
 *
 * Thread-safe: the async worker and the trainer thread may look up and
 * insert concurrently.
 */
#ifndef SNIP_ILP_SOLVE_CACHE_H
#define SNIP_ILP_SOLVE_CACHE_H

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "ilp/problem.h"
#include "util/thread_annotations.h"

namespace snip {

/** Problem-hash -> IlpSolution store, optionally file-backed. */
class SolveCache
{
  public:
    /** In-memory cache (no persistence). */
    SolveCache() = default;

    /** File-backed cache: loads @p path if it exists and rewrites it
     *  after every insert. Optional LRU bounds as in setLimits(). */
    explicit SolveCache(std::string path, size_t max_entries = 0,
                        size_t max_bytes = 0);

    /**
     * Bound the cache: at most @p max_entries entries and (approximate,
     * per entryBytes()) @p max_bytes bytes; 0 disables a bound. Takes
     * effect immediately (evicting the least-recently-used entries) and
     * on every subsequent insert/load. The most recent entry is never
     * evicted.
     */
    void setLimits(size_t max_entries, size_t max_bytes);

    /** Copy the solution stored under @p key into @p out. Counts a hit
     *  or a miss. */
    bool lookup(uint64_t key, IlpSolution *out);

    /** Store (or overwrite) @p key; persists when file-backed. */
    void insert(uint64_t key, const IlpSolution &solution);

    /** Reload from the configured path, replacing the in-memory map.
     *  Returns false (leaving the cache empty) when the file is
     *  missing or corrupt. */
    bool load();

    /** Rewrite the configured path; false on I/O error or when
     *  path-less. */
    bool save() const;

    size_t size() const;
    int64_t hits() const;
    int64_t misses() const;
    /** Entries dropped by the LRU bounds since construction. */
    int64_t evictions() const;
    /** Approximate bytes held (sum of entryBytes()). */
    size_t bytesUsed() const;
    void resetStats();
    const std::string &path() const { return path_; }

    /** Approximate in-memory footprint of one cached solution. */
    static size_t entryBytes(const IlpSolution &solution);

  private:
    struct Entry
    {
        IlpSolution solution;
        std::list<uint64_t>::iterator lru_it;
    };

    /** Persist the current contents (caller holds mu_). */
    bool saveLocked() const SNIP_REQUIRES(mu_);
    void insertLocked(uint64_t key, const IlpSolution &solution)
        SNIP_REQUIRES(mu_);
    /** Evict cold entries over the bounds. */
    void enforceLimitsLocked() SNIP_REQUIRES(mu_);
    void touchLocked(Entry &entry, uint64_t key) SNIP_REQUIRES(mu_);

    mutable util::Mutex mu_;
    std::unordered_map<uint64_t, Entry> entries_ SNIP_GUARDED_BY(mu_);
    /** front = most recently used */
    std::list<uint64_t> lru_ SNIP_GUARDED_BY(mu_);
    /** Set once in the constructor, immutable afterwards — readable
     *  without the lock. */
    std::string path_;
    size_t max_entries_ SNIP_GUARDED_BY(mu_) = 0;
    size_t max_bytes_ SNIP_GUARDED_BY(mu_) = 0;
    size_t bytes_ SNIP_GUARDED_BY(mu_) = 0;
    int64_t hits_ SNIP_GUARDED_BY(mu_) = 0;
    int64_t misses_ SNIP_GUARDED_BY(mu_) = 0;
    int64_t evictions_ SNIP_GUARDED_BY(mu_) = 0;
};

} // namespace snip

#endif // SNIP_ILP_SOLVE_CACHE_H
