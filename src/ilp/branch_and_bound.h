/**
 * @file
 * Exact branch & bound for the single-constraint multiple-choice
 * knapsack, using the LP relaxation for bounding and its rounding for
 * the initial incumbent.
 */
#ifndef SNIP_ILP_BRANCH_AND_BOUND_H
#define SNIP_ILP_BRANCH_AND_BOUND_H

#include "ilp/problem.h"

namespace snip {

/** Limits on the search. */
struct BnbLimits
{
    /** Hard wall-clock limit (paper: 30 s per solve, Sec. 6.1). */
    double time_limit_seconds = 30.0;
    /** Node cap as a second backstop. */
    int64_t max_nodes = 10'000'000;
};

/**
 * Solve a single-constraint instance exactly (up to the limits; if a
 * limit is hit, the best incumbent is returned and the solution is
 * still feasible, just possibly not optimal).
 */
IlpSolution solveBranchAndBound(const IlpProblem &problem,
                                const BnbLimits &limits = {});

} // namespace snip

#endif // SNIP_ILP_BRANCH_AND_BOUND_H
