/**
 * @file
 * The ILP SNIP solves (Sec. 5.2): a multiple-choice knapsack.
 *
 *   minimize   sum_i sum_j q[i][j] x[i][j]
 *   subject to sum_i sum_j e[i][j] x[i][j] >= target          (2)
 *              sum_j x[i][j] = 1  for every item i            (3)
 *              x[i][j] in {0,1}                               (4)
 *
 * With pipeline parallelism (Sec. 5.3) the single constraint (2) is
 * replaced by one constraint per group of consecutive items (5); since
 * groups do not interact, the grouped problem decomposes into
 * independent subproblems, which the solver front-end exploits.
 */
#ifndef SNIP_ILP_PROBLEM_H
#define SNIP_ILP_PROBLEM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snip {

/** A contiguous range of items sharing one efficiency constraint. */
struct IlpGroup
{
    int first = 0;   ///< first item index
    int count = 0;   ///< number of items
    double target = 0.0;
};

/** Instance data for the multiple-choice knapsack. */
struct IlpProblem
{
    /** quality[i][j]: quality loss of option j for item i (>= 0). */
    std::vector<std::vector<double>> quality;
    /** efficiency[i][j]: efficiency contribution of option j. */
    std::vector<std::vector<double>> efficiency;
    /** Required total efficiency (ignored when groups are present). */
    double target = 0.0;
    /** Optional per-group constraints; empty means one global one. */
    std::vector<IlpGroup> groups;

    int numItems() const { return static_cast<int>(quality.size()); }

    int
    numOptions(int item) const
    {
        return static_cast<int>(quality[static_cast<size_t>(item)].size());
    }

    /** Sum of max-e options; the constraint is infeasible above this. */
    double maxAchievableEfficiency() const;

    /** panic() on ragged arrays, negative sizes, etc. */
    void validate() const;

    /**
     * Restrict to items [first, first+count) with the given target
     * (used for group decomposition).
     */
    IlpProblem slice(int first, int count, double sub_target) const;
};

/** Result of solving an IlpProblem. */
struct IlpSolution
{
    /** Chosen option index per item (empty if infeasible). */
    std::vector<int> choice;
    double objective = 0.0;
    double achieved_efficiency = 0.0;
    bool feasible = false;
    /** Search statistics. */
    int64_t nodes_explored = 0;
    double solve_seconds = 0.0;
    /** True when the solution came out of a SolveCache rather than a
     *  fresh search (solve_seconds is then the lookup time). */
    bool from_cache = false;
};

/**
 * Content hash of an instance: FNV-1a over the exact bit patterns of
 * every quality/efficiency coefficient, the target, and the group
 * layout. Two problems hash equal iff their doubles are bit-identical,
 * which is the right notion for a solve cache fed by a deterministic
 * pipeline (same stats -> same bits -> same hash).
 */
uint64_t ilpProblemHash(const IlpProblem &problem);

/** Recompute objective/efficiency of @p choice on @p problem and check
 *  all constraints; used to cross-validate the two solvers. */
bool verifySolution(const IlpProblem &problem,
                    const std::vector<int> &choice, double *objective_out,
                    double *efficiency_out);

} // namespace snip

#endif // SNIP_ILP_PROBLEM_H
