/**
 * @file
 * LP relaxation of the multiple-choice knapsack.
 *
 * The classic MCKP result: after removing dominated options and taking
 * the lower convex hull of each item's (efficiency, quality) point set,
 * the LP optimum is obtained greedily by applying hull "upgrade"
 * increments in order of increasing marginal cost dq/de until the
 * efficiency target is met; at most one increment is fractional. The
 * bound is used by branch & bound for pruning; its greedy rounding
 * provides the initial incumbent.
 */
#ifndef SNIP_ILP_LP_RELAXATION_H
#define SNIP_ILP_LP_RELAXATION_H

#include <vector>

#include "ilp/problem.h"

namespace snip {

/** Result of the LP relaxation on a single-constraint problem. */
struct LpResult
{
    bool feasible = false;
    /** Optimal LP objective (lower bound on the ILP). */
    double bound = 0.0;
    /** Integral base choice per item (hull start). */
    std::vector<int> base_choice;
    /**
     * Item with the fractional upgrade, or -1 if the LP solution is
     * integral; frac_from/frac_to are the two options it mixes.
     */
    int frac_item = -1;
    int frac_from = -1;
    int frac_to = -1;
    double frac_weight = 0.0; ///< fraction assigned to frac_to
    /** Greedy-rounded (integral, feasible) choice, if one exists. */
    std::vector<int> rounded_choice;
    bool rounded_feasible = false;
};

/**
 * Solve the LP relaxation of a *single-constraint* problem (groups are
 * handled by decomposition before this is called). @p fixed, when
 * non-empty, pins item i to option fixed[i] (>= 0) — used inside branch
 * & bound; -1 leaves the item free.
 */
LpResult solveLpRelaxation(const IlpProblem &problem,
                           const std::vector<int> &fixed = {});

} // namespace snip

#endif // SNIP_ILP_LP_RELAXATION_H
