#include "ilp/problem.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace snip {

namespace {

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001B3ull;

inline void
hashU64(uint64_t &h, uint64_t v)
{
    for (int b = 0; b < 8; ++b) {
        h ^= (v >> (b * 8)) & 0xFFu;
        h *= kFnvPrime;
    }
}

inline void
hashDouble(uint64_t &h, double d)
{
    // Hash the exact bit pattern: the cache must only hit when the
    // instance is bit-identical, and +0.0/-0.0 or NaN aliasing would
    // be wrong to conflate here.
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    hashU64(h, bits);
}

} // namespace

uint64_t
ilpProblemHash(const IlpProblem &problem)
{
    uint64_t h = kFnvOffset;
    hashU64(h, static_cast<uint64_t>(problem.numItems()));
    for (int i = 0; i < problem.numItems(); ++i) {
        hashU64(h, static_cast<uint64_t>(problem.numOptions(i)));
        for (int j = 0; j < problem.numOptions(i); ++j) {
            hashDouble(h, problem.quality[static_cast<size_t>(i)]
                                         [static_cast<size_t>(j)]);
            hashDouble(h, problem.efficiency[static_cast<size_t>(i)]
                                            [static_cast<size_t>(j)]);
        }
    }
    hashDouble(h, problem.target);
    hashU64(h, static_cast<uint64_t>(problem.groups.size()));
    for (const auto &g : problem.groups) {
        hashU64(h, static_cast<uint64_t>(g.first));
        hashU64(h, static_cast<uint64_t>(g.count));
        hashDouble(h, g.target);
    }
    return h;
}

double
IlpProblem::maxAchievableEfficiency() const
{
    double total = 0.0;
    for (const auto &opts : efficiency) {
        double best = 0.0;
        for (double e : opts)
            best = std::max(best, e);
        total += best;
    }
    return total;
}

void
IlpProblem::validate() const
{
    SNIP_ASSERT(quality.size() == efficiency.size(),
                "quality/efficiency item counts differ");
    for (int i = 0; i < numItems(); ++i) {
        SNIP_ASSERT(!quality[static_cast<size_t>(i)].empty(),
                    "item with no options");
        SNIP_ASSERT(quality[static_cast<size_t>(i)].size() ==
                    efficiency[static_cast<size_t>(i)].size(),
                    "ragged item ", i);
    }
    int covered = 0;
    for (const auto &g : groups) {
        SNIP_ASSERT(g.first >= 0 && g.count > 0 &&
                    g.first + g.count <= numItems(),
                    "bad group bounds");
        covered += g.count;
    }
    if (!groups.empty())
        SNIP_ASSERT(covered == numItems(),
                    "groups must partition the items");
}

IlpProblem
IlpProblem::slice(int first, int count, double sub_target) const
{
    IlpProblem sub;
    sub.target = sub_target;
    sub.quality.assign(quality.begin() + first,
                       quality.begin() + first + count);
    sub.efficiency.assign(efficiency.begin() + first,
                          efficiency.begin() + first + count);
    return sub;
}

bool
verifySolution(const IlpProblem &problem, const std::vector<int> &choice,
               double *objective_out, double *efficiency_out)
{
    if (choice.size() != static_cast<size_t>(problem.numItems()))
        return false;
    double obj = 0.0, eff = 0.0;
    for (int i = 0; i < problem.numItems(); ++i) {
        int j = choice[static_cast<size_t>(i)];
        if (j < 0 || j >= problem.numOptions(i))
            return false;
        obj += problem.quality[static_cast<size_t>(i)]
                              [static_cast<size_t>(j)];
        eff += problem.efficiency[static_cast<size_t>(i)]
                                 [static_cast<size_t>(j)];
    }
    if (objective_out)
        *objective_out = obj;
    if (efficiency_out)
        *efficiency_out = eff;

    constexpr double kTol = 1e-9;
    if (problem.groups.empty())
        return eff + kTol >= problem.target;
    for (const auto &g : problem.groups) {
        double ge = 0.0;
        for (int i = g.first; i < g.first + g.count; ++i) {
            ge += problem.efficiency[static_cast<size_t>(i)]
                      [static_cast<size_t>(choice[static_cast<size_t>(i)])];
        }
        if (ge + kTol < g.target)
            return false;
    }
    return true;
}

} // namespace snip
