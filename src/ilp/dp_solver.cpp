#include "ilp/dp_solver.h"

#include <chrono>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace snip {

IlpSolution
solveDp(const IlpProblem &problem, int resolution)
{
    problem.validate();
    SNIP_ASSERT(problem.groups.empty(),
                "decompose groups before the DP solver");
    SNIP_ASSERT(resolution > 0);
    const auto start = std::chrono::steady_clock::now();

    const int m = problem.numItems();
    IlpSolution sol;

    // Trivial target: pick the cheapest option everywhere.
    if (problem.target <= 0.0) {
        sol.feasible = true;
        sol.choice.assign(static_cast<size_t>(m), 0);
        for (int i = 0; i < m; ++i) {
            const auto &q = problem.quality[static_cast<size_t>(i)];
            int best = 0;
            for (int j = 1; j < problem.numOptions(i); ++j) {
                if (q[static_cast<size_t>(j)] <
                    q[static_cast<size_t>(best)])
                    best = j;
            }
            sol.choice[static_cast<size_t>(i)] = best;
        }
        verifySolution(problem, sol.choice, &sol.objective,
                       &sol.achieved_efficiency);
        sol.solve_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
        return sol;
    }

    const double unit = problem.target / static_cast<double>(resolution);
    const int target_units = resolution;

    constexpr double kInf = std::numeric_limits<double>::infinity();
    // dp[u] = min cost to accumulate >= u*unit? We track "accumulated
    // units capped at target_units": dp_next[min(u + w, T)].
    std::vector<double> dp(static_cast<size_t>(target_units) + 1, kInf);
    dp[0] = 0.0;
    // Backtracking table: chosen option for (item, units-before).
    std::vector<std::vector<int8_t>> back(
        static_cast<size_t>(m),
        std::vector<int8_t>(static_cast<size_t>(target_units) + 1, -1));
    // Also remember, per item and units-after, the units-before.
    std::vector<std::vector<int>> prev_units(
        static_cast<size_t>(m),
        std::vector<int>(static_cast<size_t>(target_units) + 1, -1));

    std::vector<double> dp_next(static_cast<size_t>(target_units) + 1);
    for (int i = 0; i < m; ++i) {
        std::fill(dp_next.begin(), dp_next.end(), kInf);
        const auto &q = problem.quality[static_cast<size_t>(i)];
        const auto &e = problem.efficiency[static_cast<size_t>(i)];
        const int n_opts = problem.numOptions(i);
        SNIP_ASSERT(n_opts <= 127, "too many options for int8 backtrack");
        for (int u = 0; u <= target_units; ++u) {
            if (dp[static_cast<size_t>(u)] == kInf)
                continue;
            for (int j = 0; j < n_opts; ++j) {
                const int w = static_cast<int>(
                    std::floor(e[static_cast<size_t>(j)] / unit + 1e-9));
                const int nu = std::min(target_units, u + std::max(0, w));
                const double cost = dp[static_cast<size_t>(u)] +
                                    q[static_cast<size_t>(j)];
                if (cost < dp_next[static_cast<size_t>(nu)]) {
                    dp_next[static_cast<size_t>(nu)] = cost;
                    back[static_cast<size_t>(i)]
                        [static_cast<size_t>(nu)] =
                            static_cast<int8_t>(j);
                    prev_units[static_cast<size_t>(i)]
                              [static_cast<size_t>(nu)] = u;
                }
            }
        }
        dp.swap(dp_next);
    }

    sol.solve_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (dp[static_cast<size_t>(target_units)] == kInf)
        return sol; // infeasible at this discretization

    // Backtrack from the full-target cell.
    sol.choice.assign(static_cast<size_t>(m), -1);
    int u = target_units;
    for (int i = m - 1; i >= 0; --i) {
        const int j =
            back[static_cast<size_t>(i)][static_cast<size_t>(u)];
        SNIP_ASSERT(j >= 0, "broken DP backtrack");
        sol.choice[static_cast<size_t>(i)] = j;
        u = prev_units[static_cast<size_t>(i)][static_cast<size_t>(u)];
    }
    sol.feasible = verifySolution(problem, sol.choice, &sol.objective,
                                  &sol.achieved_efficiency);
    return sol;
}

} // namespace snip
