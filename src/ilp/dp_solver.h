/**
 * @file
 * Dynamic-programming solver for the multiple-choice knapsack.
 *
 * The efficiency axis is discretized into `resolution` units of the
 * target; option efficiencies are rounded *down* and the target is kept
 * whole, so every DP-feasible solution is feasible for the original
 * continuous constraint (conservative). At the default resolution the
 * discretization error is negligible for SNIP-sized instances, and on
 * instances whose efficiencies are exact multiples of target/resolution
 * the DP is exact — the cross-validation tests against branch & bound
 * exploit this.
 */
#ifndef SNIP_ILP_DP_SOLVER_H
#define SNIP_ILP_DP_SOLVER_H

#include "ilp/problem.h"

namespace snip {

/** Solve a single-constraint instance by DP over discretized units. */
IlpSolution solveDp(const IlpProblem &problem, int resolution = 20000);

} // namespace snip

#endif // SNIP_ILP_DP_SOLVER_H
