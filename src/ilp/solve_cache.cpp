#include "ilp/solve_cache.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "runtime/fault_injection.h"
#include "telemetry/telemetry.h"
#include "util/crc32.h"
#include "util/file_io.h"
#include "util/logging.h"

namespace snip {

namespace {

// v2 appended the CRC-32 trailer; v1 files (no trailer) still load.
constexpr uint64_t kMagic = 0x534E4950534C4332ull;   // "SNIPSLC2"
constexpr uint64_t kMagicV1 = 0x534E4950534C4331ull; // "SNIPSLC1"

// Sanity bounds a corrupt entry can't push an allocation or loop
// through before validation rejects it.
constexpr uint64_t kMaxChoices = 1u << 20;
constexpr int64_t kMaxNodes = int64_t{1} << 40;

void
putU64(std::string &out, uint64_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putF64(std::string &out, double v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

struct Reader
{
    const char *p;
    const char *end;

    bool
    bytes(void *dst, size_t n)
    {
        // Signed comparison: end < p must read as "empty", never as a
        // huge unsigned remainder.
        if (end - p < static_cast<ptrdiff_t>(n))
            return false;
        std::memcpy(dst, p, n);
        p += n;
        return true;
    }

    bool u64(uint64_t &v) { return bytes(&v, sizeof(v)); }
    bool f64(double &v) { return bytes(&v, sizeof(v)); }
};

/** One persisted entry; false on truncation or an invalid field, so
 *  a corrupt tail degrades to "keep the good prefix". */
bool
readEntry(Reader &r, uint64_t *key, IlpSolution *sol)
{
    uint64_t feasible = 0, nodes = 0, n_choice = 0;
    if (!r.u64(*key) || !r.u64(feasible) || !r.f64(sol->objective) ||
        !r.f64(sol->achieved_efficiency) || !r.u64(nodes) ||
        !r.f64(sol->solve_seconds) || !r.u64(n_choice))
        return false;
    if (feasible > 1 || !std::isfinite(sol->objective) ||
        !std::isfinite(sol->achieved_efficiency) ||
        !std::isfinite(sol->solve_seconds) || sol->solve_seconds < 0.0 ||
        nodes > static_cast<uint64_t>(kMaxNodes) ||
        n_choice > kMaxChoices)
        return false;
    sol->feasible = feasible != 0;
    sol->nodes_explored = static_cast<int64_t>(nodes);
    sol->choice.resize(n_choice);
    for (uint64_t i = 0; i < n_choice; ++i) {
        uint64_t c = 0;
        if (!r.u64(c) || c > kMaxChoices)
            return false;
        sol->choice[i] = static_cast<int>(c);
    }
    return true;
}

} // namespace

SolveCache::SolveCache(std::string path, size_t max_entries,
                       size_t max_bytes)
    : path_(std::move(path)),
      max_entries_(max_entries),
      max_bytes_(max_bytes)
{
    load();
}

size_t
SolveCache::entryBytes(const IlpSolution &solution)
{
    // Key + fixed solution fields + choice payload; close enough for a
    // budget knob (allocator overhead is ignored).
    return sizeof(uint64_t) + sizeof(IlpSolution) +
           solution.choice.size() * sizeof(int);
}

void
SolveCache::setLimits(size_t max_entries, size_t max_bytes)
{
    util::MutexLock lock(mu_);
    max_entries_ = max_entries;
    max_bytes_ = max_bytes;
    const size_t before = entries_.size();
    const int64_t evictions_before = evictions_;
    enforceLimitsLocked();
    telemetry::count(telemetry::Counter::SolveCacheEvicts,
                     evictions_ - evictions_before);
    if (entries_.size() != before && !path_.empty() && !saveLocked())
        warn("could not persist solve cache to ", path_);
}

void
SolveCache::touchLocked(Entry &entry, uint64_t key)
{
    (void)key;
    lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

bool
SolveCache::lookup(uint64_t key, IlpSolution *out)
{
    util::MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        telemetry::count(telemetry::Counter::SolveCacheMisses);
        return false;
    }
    ++hits_;
    telemetry::count(telemetry::Counter::SolveCacheHits);
    touchLocked(it->second, key);
    if (out)
        *out = it->second.solution;
    return true;
}

void
SolveCache::insertLocked(uint64_t key, const IlpSolution &solution)
{
    IlpSolution stored = solution;
    stored.from_cache = false; // stored entries are canonical solves
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        bytes_ -= entryBytes(it->second.solution);
        it->second.solution = std::move(stored);
        bytes_ += entryBytes(it->second.solution);
        touchLocked(it->second, key);
    } else {
        lru_.push_front(key);
        bytes_ += entryBytes(stored);
        entries_[key] = Entry{std::move(stored), lru_.begin()};
    }
    enforceLimitsLocked();
}

void
SolveCache::enforceLimitsLocked()
{
    // Evict cold entries until both bounds hold; the freshest entry
    // always survives, so an insert can never evict itself.
    while (lru_.size() > 1 &&
           ((max_entries_ > 0 && entries_.size() > max_entries_) ||
            (max_bytes_ > 0 && bytes_ > max_bytes_))) {
        const uint64_t victim = lru_.back();
        auto it = entries_.find(victim);
        bytes_ -= entryBytes(it->second.solution);
        entries_.erase(it);
        lru_.pop_back();
        ++evictions_;
    }
}

void
SolveCache::insert(uint64_t key, const IlpSolution &solution)
{
    util::MutexLock lock(mu_);
    // Diffed around the locked call (rather than counted inside
    // enforceLimitsLocked) so load() trimming stays a non-eviction in
    // telemetry too.
    const int64_t evictions_before = evictions_;
    insertLocked(key, solution);
    telemetry::count(telemetry::Counter::SolveCacheEvicts,
                     evictions_ - evictions_before);
    if (!path_.empty() && !saveLocked())
        warn("could not persist solve cache to ", path_);
}

bool
SolveCache::load()
{
    util::MutexLock lock(mu_);
    entries_.clear();
    lru_.clear();
    bytes_ = 0;
    if (path_.empty())
        return false;
    std::string file;
    if (!fsio::readFile(path_, &file))
        return false;
    if (SNIP_FAULT_POINT("solve_cache.load") && !file.empty()) {
        // Simulated on-disk corruption: flip one mid-file bit after
        // the read, exercising the validated-parse salvage path.
        file[file.size() / 2] =
            static_cast<char>(file[file.size() / 2] ^ 0x40);
    }

    Reader r{file.data(), file.data() + file.size()};
    uint64_t magic = 0, count = 0;
    if (!r.u64(magic) || (magic != kMagic && magic != kMagicV1) ||
        !r.u64(count)) {
        warn("ignoring unreadable solve cache ", path_);
        return false;
    }
    bool clean = true;
    if (magic == kMagic) {
        // v2: the last 8 bytes hold the CRC of everything before
        // them. A mismatch doesn't discard the file outright — the
        // per-entry validation below salvages the good prefix.
        uint64_t stored = 0;
        if (file.size() < 3 * sizeof(uint64_t)) {
            // Too short to hold magic + count + CRC: the trailer
            // overlaps the header already consumed, so there is no
            // entry region at all — don't move r.end behind r.p.
            clean = false;
            r.end = r.p;
        } else {
            std::memcpy(&stored,
                        file.data() + file.size() - sizeof(uint64_t),
                        sizeof(stored));
            clean = crc32(file.data(),
                          file.size() - sizeof(uint64_t)) == stored;
            r.end = file.data() + file.size() - sizeof(uint64_t);
        }
        if (!clean)
            warn("solve cache ", path_,
                 " failed its CRC check; salvaging valid entries");
    }

    // Entries are persisted most-recently-used first; re-inserting in
    // reverse file order rebuilds the same recency (and applies the
    // bounds: the file's coldest entries fall off first). A bad entry
    // ends the parse — the stream can't be resynchronized past it —
    // and the validated prefix is kept.
    std::vector<std::pair<uint64_t, IlpSolution>> loaded;
    loaded.reserve(static_cast<size_t>(
        std::min<uint64_t>(count, kMaxChoices)));
    for (uint64_t e = 0; e < count; ++e) {
        uint64_t key = 0;
        IlpSolution sol;
        if (!readEntry(r, &key, &sol)) {
            warn("solve cache ", path_, ": entry ", e, " of ", count,
                 " is corrupt; keeping the ", loaded.size(),
                 " entries before it");
            clean = false;
            break;
        }
        loaded.emplace_back(key, std::move(sol));
    }
    const int64_t evictions_before = evictions_;
    for (auto it = loaded.rbegin(); it != loaded.rend(); ++it)
        insertLocked(it->first, it->second);
    evictions_ = evictions_before; // load trimming is not an eviction
    return clean;
}

bool
SolveCache::save() const
{
    util::MutexLock lock(mu_);
    return saveLocked();
}

bool
SolveCache::saveLocked() const
{
    if (path_.empty())
        return false;
    if (SNIP_FAULT_POINT("solve_cache.rewrite"))
        return false; // simulated rewrite failure; callers warn
    std::string image;
    putU64(image, kMagic);
    putU64(image, static_cast<uint64_t>(entries_.size()));
    for (uint64_t key : lru_) { // MRU first: recency persists
        const IlpSolution &sol = entries_.at(key).solution;
        putU64(image, key);
        putU64(image, sol.feasible ? 1 : 0);
        putF64(image, sol.objective);
        putF64(image, sol.achieved_efficiency);
        putU64(image, static_cast<uint64_t>(sol.nodes_explored));
        putF64(image, sol.solve_seconds);
        putU64(image, static_cast<uint64_t>(sol.choice.size()));
        for (int c : sol.choice)
            putU64(image, static_cast<uint64_t>(c));
    }
    putU64(image, crc32(image.data(), image.size()));
    // A cache is reconstructible state: readers-only atomicity is
    // enough (a crash just re-solves), so skip the fsync.
    return fsio::writeFileAtomic(path_, image, /*durable=*/false);
}

size_t
SolveCache::size() const
{
    util::MutexLock lock(mu_);
    return entries_.size();
}

int64_t
SolveCache::hits() const
{
    util::MutexLock lock(mu_);
    return hits_;
}

int64_t
SolveCache::misses() const
{
    util::MutexLock lock(mu_);
    return misses_;
}

int64_t
SolveCache::evictions() const
{
    util::MutexLock lock(mu_);
    return evictions_;
}

size_t
SolveCache::bytesUsed() const
{
    util::MutexLock lock(mu_);
    return bytes_;
}

void
SolveCache::resetStats()
{
    util::MutexLock lock(mu_);
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

} // namespace snip
