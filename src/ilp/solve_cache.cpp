#include "ilp/solve_cache.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "telemetry/telemetry.h"
#include "util/logging.h"

namespace snip {

namespace {

constexpr uint64_t kMagic = 0x534E4950534C4331ull; // "SNIPSLC1"

void
writeU64(std::ostream &out, uint64_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

bool
readU64(std::istream &in, uint64_t &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(in);
}

void
writeF64(std::ostream &out, double v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

bool
readF64(std::istream &in, double &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(in);
}

} // namespace

SolveCache::SolveCache(std::string path, size_t max_entries,
                       size_t max_bytes)
    : path_(std::move(path)),
      max_entries_(max_entries),
      max_bytes_(max_bytes)
{
    load();
}

size_t
SolveCache::entryBytes(const IlpSolution &solution)
{
    // Key + fixed solution fields + choice payload; close enough for a
    // budget knob (allocator overhead is ignored).
    return sizeof(uint64_t) + sizeof(IlpSolution) +
           solution.choice.size() * sizeof(int);
}

void
SolveCache::setLimits(size_t max_entries, size_t max_bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    max_entries_ = max_entries;
    max_bytes_ = max_bytes;
    const size_t before = entries_.size();
    const int64_t evictions_before = evictions_;
    enforceLimitsLocked();
    telemetry::count(telemetry::Counter::SolveCacheEvicts,
                     evictions_ - evictions_before);
    if (entries_.size() != before && !path_.empty() && !saveLocked())
        warn("could not persist solve cache to ", path_);
}

void
SolveCache::touchLocked(Entry &entry, uint64_t key)
{
    (void)key;
    lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

bool
SolveCache::lookup(uint64_t key, IlpSolution *out)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        telemetry::count(telemetry::Counter::SolveCacheMisses);
        return false;
    }
    ++hits_;
    telemetry::count(telemetry::Counter::SolveCacheHits);
    touchLocked(it->second, key);
    if (out)
        *out = it->second.solution;
    return true;
}

void
SolveCache::insertLocked(uint64_t key, const IlpSolution &solution)
{
    IlpSolution stored = solution;
    stored.from_cache = false; // stored entries are canonical solves
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        bytes_ -= entryBytes(it->second.solution);
        it->second.solution = std::move(stored);
        bytes_ += entryBytes(it->second.solution);
        touchLocked(it->second, key);
    } else {
        lru_.push_front(key);
        bytes_ += entryBytes(stored);
        entries_[key] = Entry{std::move(stored), lru_.begin()};
    }
    enforceLimitsLocked();
}

void
SolveCache::enforceLimitsLocked()
{
    // Evict cold entries until both bounds hold; the freshest entry
    // always survives, so an insert can never evict itself.
    while (lru_.size() > 1 &&
           ((max_entries_ > 0 && entries_.size() > max_entries_) ||
            (max_bytes_ > 0 && bytes_ > max_bytes_))) {
        const uint64_t victim = lru_.back();
        auto it = entries_.find(victim);
        bytes_ -= entryBytes(it->second.solution);
        entries_.erase(it);
        lru_.pop_back();
        ++evictions_;
    }
}

void
SolveCache::insert(uint64_t key, const IlpSolution &solution)
{
    std::lock_guard<std::mutex> lock(mu_);
    // Diffed around the locked call (rather than counted inside
    // enforceLimitsLocked) so load() trimming stays a non-eviction in
    // telemetry too.
    const int64_t evictions_before = evictions_;
    insertLocked(key, solution);
    telemetry::count(telemetry::Counter::SolveCacheEvicts,
                     evictions_ - evictions_before);
    if (!path_.empty() && !saveLocked())
        warn("could not persist solve cache to ", path_);
}

bool
SolveCache::load()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    lru_.clear();
    bytes_ = 0;
    if (path_.empty())
        return false;
    std::ifstream in(path_, std::ios::binary);
    if (!in)
        return false;

    uint64_t magic = 0, count = 0;
    if (!readU64(in, magic) || magic != kMagic || !readU64(in, count)) {
        warn("ignoring unreadable solve cache ", path_);
        return false;
    }
    // Entries are persisted most-recently-used first; re-inserting in
    // reverse file order rebuilds the same recency (and applies the
    // bounds: the file's coldest entries fall off first).
    std::vector<std::pair<uint64_t, IlpSolution>> loaded;
    loaded.reserve(static_cast<size_t>(count));
    for (uint64_t e = 0; e < count; ++e) {
        uint64_t key = 0, feasible = 0, nodes = 0, n_choice = 0;
        IlpSolution sol;
        if (!readU64(in, key) || !readU64(in, feasible) ||
            !readF64(in, sol.objective) ||
            !readF64(in, sol.achieved_efficiency) ||
            !readU64(in, nodes) || !readF64(in, sol.solve_seconds) ||
            !readU64(in, n_choice)) {
            warn("truncated solve cache ", path_, "; dropping it");
            entries_.clear();
            lru_.clear();
            bytes_ = 0;
            return false;
        }
        sol.feasible = feasible != 0;
        sol.nodes_explored = static_cast<int64_t>(nodes);
        sol.choice.resize(n_choice);
        for (uint64_t i = 0; i < n_choice; ++i) {
            uint64_t c = 0;
            if (!readU64(in, c)) {
                warn("truncated solve cache ", path_, "; dropping it");
                entries_.clear();
                lru_.clear();
                bytes_ = 0;
                return false;
            }
            sol.choice[i] = static_cast<int>(c);
        }
        loaded.emplace_back(key, std::move(sol));
    }
    const int64_t evictions_before = evictions_;
    for (auto it = loaded.rbegin(); it != loaded.rend(); ++it)
        insertLocked(it->first, it->second);
    evictions_ = evictions_before; // load trimming is not an eviction
    return true;
}

bool
SolveCache::save() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return saveLocked();
}

bool
SolveCache::saveLocked() const
{
    if (path_.empty())
        return false;
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        writeU64(out, kMagic);
        writeU64(out, static_cast<uint64_t>(entries_.size()));
        for (uint64_t key : lru_) { // MRU first: recency persists
            const IlpSolution &sol = entries_.at(key).solution;
            writeU64(out, key);
            writeU64(out, sol.feasible ? 1 : 0);
            writeF64(out, sol.objective);
            writeF64(out, sol.achieved_efficiency);
            writeU64(out, static_cast<uint64_t>(sol.nodes_explored));
            writeF64(out, sol.solve_seconds);
            writeU64(out, static_cast<uint64_t>(sol.choice.size()));
            for (int c : sol.choice)
                writeU64(out, static_cast<uint64_t>(c));
        }
        if (!out)
            return false;
    }
    return std::rename(tmp.c_str(), path_.c_str()) == 0;
}

size_t
SolveCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

int64_t
SolveCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

int64_t
SolveCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

int64_t
SolveCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

size_t
SolveCache::bytesUsed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
}

void
SolveCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

} // namespace snip
