#include "ilp/lp_relaxation.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace snip {

namespace {

/** One hull upgrade step of an item. */
struct Segment
{
    int item;
    int hull_pos;   ///< index into the item's hull (target point)
    double delta_e;
    double delta_q;
    double slope;   ///< delta_q / delta_e
};

/**
 * Pareto + lower-convex-hull filter of one item's options, starting
 * from the min-quality option. Returns option indices in upgrade order
 * (hull[0] is the base).
 */
std::vector<int>
buildHull(const std::vector<double> &q, const std::vector<double> &e)
{
    const int n = static_cast<int>(q.size());
    std::vector<int> order(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j)
        order[static_cast<size_t>(j)] = j;
    // Sort by efficiency ascending; ties by quality ascending.
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (e[static_cast<size_t>(a)] != e[static_cast<size_t>(b)])
            return e[static_cast<size_t>(a)] < e[static_cast<size_t>(b)];
        return q[static_cast<size_t>(a)] < q[static_cast<size_t>(b)];
    });
    // Collapse equal-efficiency options to the cheapest one, so hull
    // segments always have delta_e > 0.
    std::vector<int> dedup;
    for (int k = 0; k < n; ++k) {
        int j = order[static_cast<size_t>(k)];
        if (!dedup.empty() &&
            e[static_cast<size_t>(dedup.back())] ==
                e[static_cast<size_t>(j)])
            continue;
        dedup.push_back(j);
    }
    // Pareto pass: keep strictly improving efficiency at non-decreasing
    // quality floor.
    std::vector<int> pareto;
    double best_q = std::numeric_limits<double>::infinity();
    for (int k = static_cast<int>(dedup.size()) - 1; k >= 0; --k) {
        int j = dedup[static_cast<size_t>(k)];
        if (q[static_cast<size_t>(j)] < best_q) {
            best_q = q[static_cast<size_t>(j)];
            pareto.push_back(j);
        }
    }
    std::reverse(pareto.begin(), pareto.end()); // ascending e, ascending q

    // Lower convex hull: marginal slopes must be increasing.
    std::vector<int> hull;
    for (int j : pareto) {
        while (hull.size() >= 2) {
            int a = hull[hull.size() - 2];
            int b = hull[hull.size() - 1];
            double s1 = (q[static_cast<size_t>(b)] -
                         q[static_cast<size_t>(a)]) /
                        (e[static_cast<size_t>(b)] -
                         e[static_cast<size_t>(a)]);
            double s2 = (q[static_cast<size_t>(j)] -
                         q[static_cast<size_t>(b)]) /
                        (e[static_cast<size_t>(j)] -
                         e[static_cast<size_t>(b)]);
            if (s2 <= s1 + 1e-15)
                hull.pop_back();
            else
                break;
        }
        hull.push_back(j);
    }
    return hull;
}

} // namespace

LpResult
solveLpRelaxation(const IlpProblem &problem, const std::vector<int> &fixed)
{
    const int m = problem.numItems();
    SNIP_ASSERT(problem.groups.empty(),
                "LP relaxation expects a single-constraint problem");
    SNIP_ASSERT(fixed.empty() || fixed.size() == static_cast<size_t>(m));

    LpResult res;
    res.base_choice.assign(static_cast<size_t>(m), 0);

    double base_q = 0.0, base_e = 0.0;
    std::vector<std::vector<int>> hulls(static_cast<size_t>(m));
    std::vector<Segment> segments;

    for (int i = 0; i < m; ++i) {
        const auto &q = problem.quality[static_cast<size_t>(i)];
        const auto &e = problem.efficiency[static_cast<size_t>(i)];
        if (!fixed.empty() && fixed[static_cast<size_t>(i)] >= 0) {
            int j = fixed[static_cast<size_t>(i)];
            res.base_choice[static_cast<size_t>(i)] = j;
            base_q += q[static_cast<size_t>(j)];
            base_e += e[static_cast<size_t>(j)];
            continue;
        }
        auto hull = buildHull(q, e);
        res.base_choice[static_cast<size_t>(i)] = hull[0];
        base_q += q[static_cast<size_t>(hull[0])];
        base_e += e[static_cast<size_t>(hull[0])];
        for (size_t h = 1; h < hull.size(); ++h) {
            Segment s;
            s.item = i;
            s.hull_pos = static_cast<int>(h);
            s.delta_e = e[static_cast<size_t>(hull[h])] -
                        e[static_cast<size_t>(hull[h - 1])];
            s.delta_q = q[static_cast<size_t>(hull[h])] -
                        q[static_cast<size_t>(hull[h - 1])];
            s.slope = s.delta_q / s.delta_e;
            segments.push_back(s);
        }
        hulls[static_cast<size_t>(i)] = std::move(hull);
    }

    double need = problem.target - base_e;
    res.bound = base_q;
    if (need <= 1e-12) {
        res.feasible = true;
        res.rounded_choice = res.base_choice;
        res.rounded_feasible = true;
        return res;
    }

    // Stable sort keeps each item's segments in hull order on slope
    // ties, which the greedy requires.
    std::stable_sort(segments.begin(), segments.end(),
                     [](const Segment &a, const Segment &b) {
                         return a.slope < b.slope;
                     });

    std::vector<int> choice = res.base_choice;
    for (const Segment &s : segments) {
        const auto &hull = hulls[static_cast<size_t>(s.item)];
        if (s.delta_e >= need - 1e-15) {
            // Fractional (or exactly final) segment.
            const double frac = need / s.delta_e;
            res.bound += frac * s.delta_q;
            res.feasible = true;
            res.base_choice = choice;
            if (frac >= 1.0 - 1e-12) {
                // Exactly integral.
                res.base_choice[static_cast<size_t>(s.item)] =
                    hull[static_cast<size_t>(s.hull_pos)];
                res.rounded_choice = res.base_choice;
                res.rounded_feasible = true;
                return res;
            }
            res.frac_item = s.item;
            res.frac_from = hull[static_cast<size_t>(s.hull_pos - 1)];
            res.frac_to = hull[static_cast<size_t>(s.hull_pos)];
            res.frac_weight = frac;
            // Rounding up the fractional segment gives a feasible
            // integral solution.
            res.rounded_choice = choice;
            res.rounded_choice[static_cast<size_t>(s.item)] =
                hull[static_cast<size_t>(s.hull_pos)];
            res.rounded_feasible = true;
            return res;
        }
        need -= s.delta_e;
        res.bound += s.delta_q;
        choice[static_cast<size_t>(s.item)] =
            hulls[static_cast<size_t>(s.item)]
                 [static_cast<size_t>(s.hull_pos)];
    }
    // Ran out of upgrades: infeasible.
    res.feasible = false;
    return res;
}

} // namespace snip
