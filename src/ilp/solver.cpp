#include "ilp/solver.h"

#include "util/logging.h"

namespace snip {

IlpBackend
ilpBackendByName(const std::string &name)
{
    if (name == "bnb")
        return IlpBackend::BranchAndBound;
    if (name == "dp")
        return IlpBackend::Dp;
    fatal("unknown ILP backend: ", name);
}

namespace {

IlpSolution
solveSingle(const IlpProblem &problem, const IlpSolveOptions &options)
{
    switch (options.backend) {
        case IlpBackend::BranchAndBound:
            return solveBranchAndBound(problem, options.bnb_limits);
        case IlpBackend::Dp:
            return solveDp(problem, options.dp_resolution);
    }
    panic("bad backend");
}

} // namespace

IlpSolution
solveIlp(const IlpProblem &problem, const IlpSolveOptions &options)
{
    problem.validate();
    if (problem.groups.empty())
        return solveSingle(problem, options);

    IlpSolution total;
    total.feasible = true;
    total.choice.assign(static_cast<size_t>(problem.numItems()), 0);
    for (const auto &g : problem.groups) {
        IlpProblem sub = problem.slice(g.first, g.count, g.target);
        IlpSolution s = solveSingle(sub, options);
        total.nodes_explored += s.nodes_explored;
        total.solve_seconds += s.solve_seconds;
        if (!s.feasible) {
            total.feasible = false;
            total.choice.clear();
            return total;
        }
        for (int i = 0; i < g.count; ++i) {
            total.choice[static_cast<size_t>(g.first + i)] =
                s.choice[static_cast<size_t>(i)];
        }
        total.objective += s.objective;
        total.achieved_efficiency += s.achieved_efficiency;
    }
    return total;
}

} // namespace snip
