#include "ilp/solver.h"

#include <chrono>
#include <cstring>

#include "ilp/solve_cache.h"
#include "util/logging.h"

namespace snip {

IlpBackend
ilpBackendByName(const std::string &name)
{
    if (name == "bnb")
        return IlpBackend::BranchAndBound;
    if (name == "dp")
        return IlpBackend::Dp;
    fatal("unknown ILP backend: ", name);
}

namespace {

IlpSolution
solveSingle(const IlpProblem &problem, const IlpSolveOptions &options)
{
    switch (options.backend) {
        case IlpBackend::BranchAndBound:
            return solveBranchAndBound(problem, options.bnb_limits);
        case IlpBackend::Dp:
            return solveDp(problem, options.dp_resolution);
    }
    panic("bad backend");
}

IlpSolution
solveUncached(const IlpProblem &problem, const IlpSolveOptions &options)
{
    if (problem.groups.empty())
        return solveSingle(problem, options);

    IlpSolution total;
    total.feasible = true;
    total.choice.assign(static_cast<size_t>(problem.numItems()), 0);
    for (const auto &g : problem.groups) {
        IlpProblem sub = problem.slice(g.first, g.count, g.target);
        IlpSolution s = solveSingle(sub, options);
        total.nodes_explored += s.nodes_explored;
        total.solve_seconds += s.solve_seconds;
        if (!s.feasible) {
            total.feasible = false;
            total.choice.clear();
            return total;
        }
        for (int i = 0; i < g.count; ++i) {
            total.choice[static_cast<size_t>(g.first + i)] =
                s.choice[static_cast<size_t>(i)];
        }
        total.objective += s.objective;
        total.achieved_efficiency += s.achieved_efficiency;
    }
    return total;
}

inline void
mixU64(uint64_t &h, uint64_t v)
{
    // Same FNV-1a step ilpProblemHash uses, continued over the knobs.
    for (int b = 0; b < 8; ++b) {
        h ^= (v >> (b * 8)) & 0xFFu;
        h *= 0x100000001B3ull;
    }
}

} // namespace

uint64_t
solveCacheKey(const IlpProblem &problem, const IlpSolveOptions &options)
{
    uint64_t h = ilpProblemHash(problem);
    mixU64(h, static_cast<uint64_t>(options.backend));
    if (options.backend == IlpBackend::Dp) {
        mixU64(h, static_cast<uint64_t>(options.dp_resolution));
    } else {
        // B&B limits can truncate the search, so a solution obtained
        // under tighter limits must not serve a looser request.
        uint64_t bits;
        double t = options.bnb_limits.time_limit_seconds;
        std::memcpy(&bits, &t, sizeof(bits));
        mixU64(h, bits);
        mixU64(h, static_cast<uint64_t>(options.bnb_limits.max_nodes));
    }
    return h;
}

IlpSolution
solveIlp(const IlpProblem &problem, const IlpSolveOptions &options)
{
    problem.validate();
    if (!options.cache)
        return solveUncached(problem, options);

    const auto start = std::chrono::steady_clock::now();
    const uint64_t key = solveCacheKey(problem, options);
    IlpSolution cached;
    if (options.cache->lookup(key, &cached)) {
        // Trust nothing from disk: a collision or stale file must not
        // produce an invalid scheme. Re-verify against the live
        // instance and fall through to a fresh solve on mismatch.
        double obj = 0.0, eff = 0.0;
        const bool valid =
            cached.feasible &&
            verifySolution(problem, cached.choice, &obj, &eff);
        if (valid) {
            cached.objective = obj;
            cached.achieved_efficiency = eff;
            cached.from_cache = true;
            cached.nodes_explored = 0;
            cached.solve_seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            return cached;
        }
        warn("solve cache entry failed verification; re-solving");
    }
    IlpSolution fresh = solveUncached(problem, options);
    if (fresh.feasible)
        options.cache->insert(key, fresh);
    return fresh;
}

} // namespace snip
