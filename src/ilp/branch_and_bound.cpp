#include "ilp/branch_and_bound.h"

#include <chrono>
#include <cmath>

#include "ilp/lp_relaxation.h"
#include "util/logging.h"

namespace snip {

namespace {

using Clock = std::chrono::steady_clock;

/** Mutable search state shared across the recursion. */
struct SearchState
{
    const IlpProblem *problem;
    BnbLimits limits;
    Clock::time_point start;
    double incumbent_obj = std::numeric_limits<double>::infinity();
    std::vector<int> incumbent;
    int64_t nodes = 0;
    bool hit_limit = false;

    bool
    expired()
    {
        if (nodes >= limits.max_nodes)
            return true;
        // Check the clock sparsely; it is not free.
        if ((nodes & 0x3F) == 0) {
            double s = std::chrono::duration<double>(Clock::now() - start)
                           .count();
            if (s > limits.time_limit_seconds)
                return true;
        }
        return false;
    }
};

void
updateIncumbent(SearchState &st, const std::vector<int> &choice)
{
    double obj, eff;
    if (verifySolution(*st.problem, choice, &obj, &eff) &&
        obj < st.incumbent_obj) {
        st.incumbent_obj = obj;
        st.incumbent = choice;
    }
}

void
branch(SearchState &st, std::vector<int> &fixed)
{
    ++st.nodes;
    if (st.expired()) {
        st.hit_limit = true;
        return;
    }

    LpResult lp = solveLpRelaxation(*st.problem, fixed);
    if (!lp.feasible)
        return; // no completion satisfies the constraint
    if (lp.bound >= st.incumbent_obj - 1e-12)
        return; // cannot improve
    if (lp.rounded_feasible)
        updateIncumbent(st, lp.rounded_choice);
    if (lp.frac_item < 0) {
        // LP optimum is integral: it is optimal for this subtree.
        updateIncumbent(st, lp.base_choice);
        return;
    }

    // Branch on the fractional item, trying the LP's preferred options
    // first for better early incumbents.
    const int item = lp.frac_item;
    const int n_opts = st.problem->numOptions(item);
    std::vector<int> order;
    order.push_back(lp.frac_to);
    order.push_back(lp.frac_from);
    for (int j = 0; j < n_opts; ++j) {
        if (j != lp.frac_to && j != lp.frac_from)
            order.push_back(j);
    }
    for (int j : order) {
        fixed[static_cast<size_t>(item)] = j;
        branch(st, fixed);
        if (st.hit_limit)
            break;
    }
    fixed[static_cast<size_t>(item)] = -1;
}

} // namespace

IlpSolution
solveBranchAndBound(const IlpProblem &problem, const BnbLimits &limits)
{
    problem.validate();
    SNIP_ASSERT(problem.groups.empty(),
                "decompose groups before branch & bound");

    SearchState st;
    st.problem = &problem;
    st.limits = limits;
    st.start = Clock::now();

    std::vector<int> fixed(static_cast<size_t>(problem.numItems()), -1);
    branch(st, fixed);

    IlpSolution sol;
    sol.nodes_explored = st.nodes;
    sol.solve_seconds =
        std::chrono::duration<double>(Clock::now() - st.start).count();
    if (st.incumbent.empty())
        return sol; // infeasible
    sol.feasible = true;
    sol.choice = st.incumbent;
    verifySolution(problem, sol.choice, &sol.objective,
                   &sol.achieved_efficiency);
    return sol;
}

} // namespace snip
