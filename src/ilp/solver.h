/**
 * @file
 * Solver front-end: group decomposition + backend selection.
 *
 * Grouped (pipeline-aware, Sec. 5.3) instances decompose into one
 * independent subproblem per group, because each group has its own
 * efficiency constraint and items appear in exactly one group.
 */
#ifndef SNIP_ILP_SOLVER_H
#define SNIP_ILP_SOLVER_H

#include <string>

#include "ilp/branch_and_bound.h"
#include "ilp/dp_solver.h"

namespace snip {

/** Which backend solves each (sub)problem. */
enum class IlpBackend
{
    BranchAndBound,
    Dp,
};

/** Parse "bnb"/"dp". */
IlpBackend ilpBackendByName(const std::string &name);

/** Options for solveIlp. The DP backend is the default: it is exact up
 *  to a fine discretization and has predictable sub-second runtime,
 *  whereas branch & bound is exact but can hit its (paper-matching)
 *  30 s limit on degenerate instances. */
struct IlpSolveOptions
{
    IlpBackend backend = IlpBackend::Dp;
    BnbLimits bnb_limits;
    int dp_resolution = 20000;
};

/**
 * Solve a (possibly grouped) instance. Statistics are summed across
 * subproblems; the solution is feasible iff every subproblem was.
 */
IlpSolution solveIlp(const IlpProblem &problem,
                     const IlpSolveOptions &options = {});

} // namespace snip

#endif // SNIP_ILP_SOLVER_H
