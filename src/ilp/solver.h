/**
 * @file
 * Solver front-end: group decomposition + backend selection.
 *
 * Grouped (pipeline-aware, Sec. 5.3) instances decompose into one
 * independent subproblem per group, because each group has its own
 * efficiency constraint and items appear in exactly one group.
 *
 * Reentrancy: solveIlp() is a pure function of its snapshot-style
 * inputs — it reads only the IlpProblem and options it is handed and
 * touches no global or thread-local state — so the async scheme-update
 * worker (src/async/) may solve while the trainer thread runs, or
 * solves another instance. The optional SolveCache is internally
 * synchronized.
 */
#ifndef SNIP_ILP_SOLVER_H
#define SNIP_ILP_SOLVER_H

#include <string>

#include "ilp/branch_and_bound.h"
#include "ilp/dp_solver.h"

namespace snip {

class SolveCache;

/** Which backend solves each (sub)problem. */
enum class IlpBackend
{
    BranchAndBound,
    Dp,
};

/** Parse "bnb"/"dp". */
IlpBackend ilpBackendByName(const std::string &name);

/** Options for solveIlp. The DP backend is the default: it is exact up
 *  to a fine discretization and has predictable sub-second runtime,
 *  whereas branch & bound is exact but can hit its (paper-matching)
 *  30 s limit on degenerate instances. */
struct IlpSolveOptions
{
    IlpBackend backend = IlpBackend::Dp;
    BnbLimits bnb_limits;
    int dp_resolution = 20000;
    /** Optional persistent solve cache (ilp/solve_cache.h). Hits skip
     *  the search entirely; every hit is re-verified against the live
     *  problem before being trusted. Not owned. */
    SolveCache *cache = nullptr;
};

/** Cache key of one (problem, options) pairing: the content hash of
 *  the instance folded with the solver knobs that can change the
 *  returned solution. */
uint64_t solveCacheKey(const IlpProblem &problem,
                       const IlpSolveOptions &options);

/**
 * Solve a (possibly grouped) instance. Statistics are summed across
 * subproblems; the solution is feasible iff every subproblem was.
 * With options.cache set, the whole instance is looked up first and
 * the solution stored back after a fresh solve.
 */
IlpSolution solveIlp(const IlpProblem &problem,
                     const IlpSolveOptions &options = {});

} // namespace snip

#endif // SNIP_ILP_SOLVER_H
