#include "nn/swiglu.h"

#include <cmath>

#include "runtime/workspace_arena.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace snip {

SwiGluMlp::SwiGluMlp(const ModelConfig &config, int block, Rng &rng,
                     FakeQuantizer *quantizer)
{
    const int64_t d = config.d_model;
    const int64_t f = config.ffn_hidden;
    auto name = [block](const char *role) {
        return strformat("blk%02d.%s", block, role);
    };
    gate_ = std::make_unique<Linear>(name("Gate"), f, d, rng,
                                     config.init_std, quantizer);
    up_ = std::make_unique<Linear>(name("Up"), f, d, rng, config.init_std,
                                   quantizer);
    down_ = std::make_unique<Linear>(name("Down"), d, f, rng,
                                     config.init_std, quantizer);
}

Linear &
SwiGluMlp::linear(LayerRole role)
{
    switch (role) {
        case LayerRole::Gate:
            return *gate_;
        case LayerRole::Up:
            return *up_;
        case LayerRole::Down:
            return *down_;
        default:
            panic("not an MLP role");
    }
}

ParamList
SwiGluMlp::params()
{
    return {gate_->param(), up_->param(), down_->param()};
}

Tensor
SwiGluMlp::forward(const Tensor &x)
{
    g_ = gate_->forward(x);
    u_ = up_->forward(x);

    s_ = Tensor(g_.shape());
    Tensor h(g_.shape());
    const float *pg = g_.data();
    const float *pu = u_.data();
    float *ps = s_.data();
    float *ph = h.data();
    for (int64_t i = 0; i < g_.numel(); ++i) {
        const float sig = 1.0f / (1.0f + std::exp(-pg[i]));
        ps[i] = pg[i] * sig;
        ph[i] = ps[i] * pu[i];
    }
    return down_->forward(h);
}

void
SwiGluMlp::forwardInference(const float *x, int64_t rows, float *y)
{
    const int64_t f = gate_->outFeatures();
    runtime::WorkspaceArena &arena =
        runtime::WorkspaceArena::forCurrentThread();
    runtime::ArenaScope scope(arena);
    const size_t hidden = static_cast<size_t>(rows * f);
    float *g = arena.getFloats(hidden);
    float *u = arena.getFloats(hidden);
    float *h = arena.getFloats(hidden);
    gate_->forwardInference(x, rows, g);
    up_->forwardInference(x, rows, u);
    for (size_t i = 0; i < hidden; ++i) {
        const float sig = 1.0f / (1.0f + std::exp(-g[i]));
        const float s = g[i] * sig;
        h[i] = s * u[i];
    }
    down_->forwardInference(h, rows, y);
}

Tensor
SwiGluMlp::backward(const Tensor &dy)
{
    Tensor dh = down_->backward(dy);

    Tensor dgp(g_.shape());
    Tensor dup(g_.shape());
    const float *pdh = dh.data();
    const float *pg = g_.data();
    const float *pu = u_.data();
    const float *ps = s_.data();
    float *pdg = dgp.data();
    float *pdu = dup.data();
    for (int64_t i = 0; i < g_.numel(); ++i) {
        pdu[i] = pdh[i] * ps[i];
        const float sig = 1.0f / (1.0f + std::exp(-pg[i]));
        // d silu(g)/dg = sig * (1 + g * (1 - sig))
        const float dsilu = sig * (1.0f + pg[i] * (1.0f - sig));
        pdg[i] = pdh[i] * pu[i] * dsilu;
    }

    Tensor dx = gate_->backward(dgp);
    Tensor dxu = up_->backward(dup);
    const float *pxu = dxu.data();
    float *px = dx.data();
    for (int64_t i = 0; i < dx.numel(); ++i)
        px[i] += pxu[i];
    return dx;
}

} // namespace snip
