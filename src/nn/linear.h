/**
 * @file
 * Quantized linear layer — the operator SNIP tunes.
 *
 * Implements the mixed-precision GEMM recipe of Fig. 5: before each of
 * the three GEMMs, operands are fake-quantized according to the layer's
 * assigned LayerScheme; the GEMM output stays in high precision; the
 * master weight remains FP32. Gradients flow straight-through the
 * quantizers (standard STE), matching the paper's training framework.
 */
#ifndef SNIP_NN_LINEAR_H
#define SNIP_NN_LINEAR_H

#include <string>

#include "nn/param.h"
#include "quant/quantizer.h"
#include "schemes/scheme.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace snip {

class Rng;

/**
 * Observer interface over linear-layer tensors.
 *
 * SNIP's statistics pass (Step 1 of Fig. 6) registers a tap on every
 * linear layer and receives the exact tensors each GEMM consumes or
 * produces, without Linear knowing anything about statistics.
 */
class LinearTap
{
  public:
    virtual ~LinearTap() = default;

    /** Called after the forward GEMM of layer @p idx. */
    virtual void onForward(int idx, const Tensor &x, const Tensor &w,
                           const Tensor &y) = 0;

    /** Called after the backward GEMMs of layer @p idx. */
    virtual void onBackward(int idx, const Tensor &dy, const Tensor &dx,
                            const Tensor &dw) = 0;
};

/**
 * y = x W^T with per-GEMM fake quantization.
 *
 * One forward() must be followed by at most one backward() (the layer
 * saves its input activation in between).
 *
 * Large GEMMs take the packed pipeline (tensor/gemm.h,
 * SNIP_GEMM_PACK): nearest-rounded operands are quantized ON THE PACK
 * (no quantized tensor copy is materialized — the quantization
 * decision is a pack policy), stochastic-rounded operands (FP4
 * gradients) are materialized first, and the layer's PackedWeightCache
 * keeps the packed+quantized weight panels alive across the GEMMs of
 * one step. Mutating the weight through the non-const weight()
 * accessor invalidates the cache; the optimizer and checkpoint paths
 * invalidate globally via invalidateWeightPacks().
 */
class Linear
{
  public:
    /**
     * @param name         diagnostic name ("blk00.Q")
     * @param out_features rows of W
     * @param in_features  cols of W
     * @param rng          weight initialization stream
     * @param init_std     Gaussian init stddev
     * @param quantizer    shared fake quantizer (may be null: all GEMMs
     *                     then run unquantized FP32, used by tests)
     */
    Linear(std::string name, int64_t out_features, int64_t in_features,
           Rng &rng, float init_std, FakeQuantizer *quantizer = nullptr);

    /** Forward GEMM; saves @p x for the backward pass. */
    Tensor forward(const Tensor &x);

    /**
     * Inference-only forward on raw buffers: y[rows, out] = x W^T
     * with the layer's forward fake quantization applied (activation
     * tiles quantized into arena scratch; the quantized weight copy is
     * cached and rebuilt only when the weight-pack epoch moves or the
     * scheme changes). Saves nothing, fires no tap, and after warm-up
     * performs zero heap allocations. Rows are bit-identical to
     * forward()'s legacy (non-packed) path, i.e. to forward() itself
     * under SNIP_GEMM_PACK=off. Stochastic-rounding schemes are a
     * training-only feature and hard-error here.
     */
    void forwardInference(const float *x, int64_t rows, float *y);

    /** Backward GEMMs; accumulates into grad(), returns dX. */
    Tensor backward(const Tensor &dy);

    /** Assign this layer's precision scheme. */
    void setScheme(const LayerScheme &scheme) { scheme_ = scheme; }

    const LayerScheme &scheme() const { return scheme_; }

    /** Attach/detach the stats tap; @p idx is the global layer index. */
    void
    setTap(LinearTap *tap, int idx)
    {
        tap_ = tap;
        tap_idx_ = idx;
    }

    /** Master (FP32) weight [out, in]. The non-const accessor assumes
     *  the caller may mutate and drops the packed-weight cache. */
    Tensor &
    weight()
    {
        w_packs_.invalidate();
        w_inf_valid_ = false;
        return w_;
    }
    const Tensor &weight() const { return w_; }

    /** Weight gradient (same shape as weight). */
    Tensor &grad() { return grad_w_; }
    const Tensor &grad() const { return grad_w_; }

    /** Most recent saved input activation (valid after forward()). */
    const Tensor &savedInput() const { return saved_x_; }

    void zeroGrad() { grad_w_.zero(); }

    int64_t outFeatures() const { return w_.size(0); }
    int64_t inFeatures() const { return w_.size(1); }

    /** Parameter reference for the optimizer. */
    ParamRef param() { return {name_, &w_, &grad_w_}; }

    const std::string &name() const { return name_; }

  private:
    /**
     * How one operand of one GEMM is quantized under the current
     * scheme: a pack policy (`fused` — applied during the operand
     * pack, nothing materialized), a materialization (`materialize` —
     * stochastic rounding, whose RNG stream is order-sensitive), or
     * passthrough (BF16 / no quantizer; both false).
     */
    struct QuantPlan
    {
        bool fused = false;
        bool materialize = false;
        QuantConfig cfg;

        const QuantConfig *fusedCfg() const
        {
            return fused ? &cfg : nullptr;
        }
    };

    QuantPlan plan(GemmKind kind, TensorRole role) const;

    /** Legacy-path materialization of @p t under @p plan. */
    Tensor materialized(const Tensor &t, const QuantPlan &plan);

    /**
     * Resolve one packed-GEMM operand: returns the tensor to feed the
     * GEMM (@p t, or @p storage after materializing a
     * stochastic-rounded copy into it) and sets @p fused to the
     * pack-policy config (null when materialized or passthrough).
     * @p plan and @p storage must outlive the GEMM call.
     */
    const Tensor &packedSrc(const Tensor &t, const QuantPlan &plan,
                            Tensor &storage, const QuantConfig **fused);

    /** The weight cache, or null while implicit reuse is unsafe. */
    PackedWeightCache *activeCache();

    /** The quantized weight copy forwardInference() feeds its GEMM
     *  (w_ itself for passthrough plans), rebuilt when stale. */
    const Tensor &inferenceWeight(const QuantPlan &wp);

    std::string name_;
    Tensor w_;
    Tensor grad_w_;
    Tensor saved_x_;
    LayerScheme scheme_;
    FakeQuantizer *quantizer_ = nullptr;
    LinearTap *tap_ = nullptr;
    int tap_idx_ = -1;
    /** Packed+quantized weight panels, one slot per GEMM orientation. */
    PackedWeightCache w_packs_;

    // Quantized-weight copy for the inference path, keyed on the
    // global weight-pack epoch and the format it was built under.
    Tensor w_inf_;
    bool w_inf_valid_ = false;
    uint64_t w_inf_epoch_ = 0;
    std::string w_inf_format_;
};

} // namespace snip

#endif // SNIP_NN_LINEAR_H
