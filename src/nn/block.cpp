#include "nn/block.h"

#include "runtime/workspace_arena.h"
#include "tensor/ops.h"
#include "util/string_util.h"

namespace snip {

TransformerBlock::TransformerBlock(const ModelConfig &config, int block,
                                   Rng &rng, FakeQuantizer *quantizer,
                                   const Rope *rope)
{
    norm1_ = std::make_unique<RMSNorm>(
        strformat("blk%02d.norm1", block), config.d_model,
        config.norm_eps);
    norm2_ = std::make_unique<RMSNorm>(
        strformat("blk%02d.norm2", block), config.d_model,
        config.norm_eps);
    attn_ = std::make_unique<Attention>(config, block, rng, quantizer,
                                        rope);
    mlp_ = std::make_unique<SwiGluMlp>(config, block, rng, quantizer);
}

Linear &
TransformerBlock::linear(LayerRole role)
{
    switch (role) {
        case LayerRole::Q:
        case LayerRole::K:
        case LayerRole::V:
        case LayerRole::O:
            return attn_->linear(role);
        default:
            return mlp_->linear(role);
    }
}

ParamList
TransformerBlock::params()
{
    ParamList out;
    out.push_back(norm1_->param());
    for (auto &p : attn_->params())
        out.push_back(p);
    out.push_back(norm2_->param());
    for (auto &p : mlp_->params())
        out.push_back(p);
    return out;
}

Tensor
TransformerBlock::forward(const Tensor &x, int64_t batch, int64_t seq,
                          ForwardMode mode, const KvCacheHandle &kv)
{
    Tensor h = attn_->forward(norm1_->forward(x), batch, seq, mode, kv);
    addInPlace(h, x);
    Tensor y = mlp_->forward(norm2_->forward(h));
    addInPlace(y, h);
    return y;
}

void
TransformerBlock::decodeForward(float *x, int64_t count,
                                const KvCacheHandle &kv)
{
    const int64_t d = norm1_->dim();
    runtime::WorkspaceArena &arena =
        runtime::WorkspaceArena::forCurrentThread();
    runtime::ArenaScope scope(arena);
    const size_t n = static_cast<size_t>(count * d);
    float *nx = arena.getFloats(n);
    float *h = arena.getFloats(n);

    // h = Attn(norm1(x)); x += h — float addition commutes bitwise, so
    // the in-place accumulate matches the train path's h + x exactly.
    norm1_->forwardInference(x, count, nx);
    attn_->decodeForward(nx, count, kv, h);
    for (size_t i = 0; i < n; ++i)
        x[i] += h[i];

    norm2_->forwardInference(x, count, nx);
    mlp_->forwardInference(nx, count, h);
    for (size_t i = 0; i < n; ++i)
        x[i] += h[i];
}

Tensor
TransformerBlock::backward(const Tensor &dy)
{
    Tensor dh = norm2_->backward(mlp_->backward(dy));
    addInPlace(dh, dy);
    Tensor dx = norm1_->backward(attn_->backward(dh));
    addInPlace(dx, dh);
    return dx;
}

} // namespace snip
