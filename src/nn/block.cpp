#include "nn/block.h"

#include "tensor/ops.h"
#include "util/string_util.h"

namespace snip {

TransformerBlock::TransformerBlock(const ModelConfig &config, int block,
                                   Rng &rng, FakeQuantizer *quantizer,
                                   const Rope *rope)
{
    norm1_ = std::make_unique<RMSNorm>(
        strformat("blk%02d.norm1", block), config.d_model,
        config.norm_eps);
    norm2_ = std::make_unique<RMSNorm>(
        strformat("blk%02d.norm2", block), config.d_model,
        config.norm_eps);
    attn_ = std::make_unique<Attention>(config, block, rng, quantizer,
                                        rope);
    mlp_ = std::make_unique<SwiGluMlp>(config, block, rng, quantizer);
}

Linear &
TransformerBlock::linear(LayerRole role)
{
    switch (role) {
        case LayerRole::Q:
        case LayerRole::K:
        case LayerRole::V:
        case LayerRole::O:
            return attn_->linear(role);
        default:
            return mlp_->linear(role);
    }
}

ParamList
TransformerBlock::params()
{
    ParamList out;
    out.push_back(norm1_->param());
    for (auto &p : attn_->params())
        out.push_back(p);
    out.push_back(norm2_->param());
    for (auto &p : mlp_->params())
        out.push_back(p);
    return out;
}

Tensor
TransformerBlock::forward(const Tensor &x, int64_t batch, int64_t seq)
{
    Tensor h = attn_->forward(norm1_->forward(x), batch, seq);
    addInPlace(h, x);
    Tensor y = mlp_->forward(norm2_->forward(h));
    addInPlace(y, h);
    return y;
}

Tensor
TransformerBlock::backward(const Tensor &dy)
{
    Tensor dh = norm2_->backward(mlp_->backward(dy));
    addInPlace(dh, dy);
    Tensor dx = norm1_->backward(attn_->backward(dh));
    addInPlace(dx, dh);
    return dx;
}

} // namespace snip
