#include "nn/layer_registry.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace snip {

int64_t
ModelConfig::parameterCount() const
{
    int64_t head_dim = headDim();
    int64_t kv_dim = kvDim();
    int64_t per_block = d_model * d_model            // Q
                        + kv_dim * d_model           // K
                        + kv_dim * d_model           // V
                        + d_model * n_heads * head_dim // O
                        + 2 * ffn_hidden * d_model   // Gate, Up
                        + d_model * ffn_hidden       // Down
                        + 2 * d_model;               // two RMSNorm gains
    return vocab_size * d_model       // embedding
           + n_blocks * per_block
           + d_model                  // final norm
           + vocab_size * d_model;    // lm head
}

void
ModelConfig::validate() const
{
    // Positivity first: the divisibility checks below divide by the
    // head counts.
    if (vocab_size <= 0 || d_model <= 0 || n_blocks <= 0 ||
        n_heads <= 0 || n_kv_heads <= 0 || ffn_hidden <= 0 ||
        max_seq <= 0)
        fatal("model dimensions must be positive");
    if (d_model % n_heads != 0)
        fatal("d_model (", d_model, ") not divisible by n_heads (",
              n_heads, ")");
    if (n_heads % n_kv_heads != 0)
        fatal("n_heads (", n_heads, ") not divisible by n_kv_heads (",
              n_kv_heads, ")");
    if (headDim() % 2 != 0)
        fatal("head dim (", headDim(), ") must be even for RoPE");
}

LayerRegistry::LayerRegistry(const ModelConfig &config) : config_(config)
{
    config_.validate();
}

int
LayerRegistry::index(int block, LayerRole role) const
{
    SNIP_ASSERT(block >= 0 && block < config_.n_blocks);
    return block * kRolesPerBlock + static_cast<int>(role);
}

std::string
LayerRegistry::layerName(int idx) const
{
    return strformat("blk%02d.%s", blockOf(idx),
                     layerRoleName(roleOf(idx)));
}

int64_t
LayerRegistry::outFeatures(int idx) const
{
    switch (roleOf(idx)) {
        case LayerRole::Q:
            return config_.n_heads * config_.headDim();
        case LayerRole::K:
        case LayerRole::V:
            return config_.kvDim();
        case LayerRole::O:
            return config_.d_model;
        case LayerRole::Gate:
        case LayerRole::Up:
            return config_.ffn_hidden;
        case LayerRole::Down:
            return config_.d_model;
    }
    panic("bad role");
}

int64_t
LayerRegistry::inFeatures(int idx) const
{
    switch (roleOf(idx)) {
        case LayerRole::Q:
        case LayerRole::K:
        case LayerRole::V:
        case LayerRole::Gate:
        case LayerRole::Up:
            return config_.d_model;
        case LayerRole::O:
            return config_.n_heads * config_.headDim();
        case LayerRole::Down:
            return config_.ffn_hidden;
    }
    panic("bad role");
}

double
LayerRegistry::flopsPerToken(int idx) const
{
    return static_cast<double>(kGemmsPerLayer) * 2.0 *
           static_cast<double>(outFeatures(idx)) *
           static_cast<double>(inFeatures(idx));
}

std::vector<double>
LayerRegistry::allFlopsPerToken() const
{
    std::vector<double> out(static_cast<size_t>(numLinear()));
    for (int i = 0; i < numLinear(); ++i)
        out[static_cast<size_t>(i)] = flopsPerToken(i);
    return out;
}

} // namespace snip
