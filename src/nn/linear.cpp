#include "nn/linear.h"

#include <cstring>

#include "quant/scaling.h"
#include "runtime/workspace_arena.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace snip {

Linear::Linear(std::string name, int64_t out_features, int64_t in_features,
               Rng &rng, float init_std, FakeQuantizer *quantizer)
    : name_(std::move(name)),
      w_(Tensor::randn({out_features, in_features}, rng, init_std)),
      grad_w_(out_features, in_features),
      quantizer_(quantizer)
{
}

Linear::QuantPlan
Linear::plan(GemmKind kind, TensorRole role) const
{
    QuantPlan p;
    const Precision prec = scheme_.of(kind);
    // BF16 GEMMs are the high-precision reference: the FP32 master is
    // used directly (bf16 rounding of FP32 master weights is treated as
    // exact, as the paper treats its BF16 baseline).
    if (quantizer_ == nullptr || prec == Precision::BF16)
        return p;
    p.cfg = rolePolicy(prec, role);
    if (p.cfg.rounding == Rounding::Stochastic)
        p.materialize = true; // RNG stream order forbids fusing
    else
        p.fused = true;
    return p;
}

Tensor
Linear::materialized(const Tensor &t, const QuantPlan &plan)
{
    if (!plan.fused && !plan.materialize)
        return t;
    return quantizer_->quantize(t, plan.cfg);
}

const Tensor &
Linear::packedSrc(const Tensor &t, const QuantPlan &plan, Tensor &storage,
                  const QuantConfig **fused)
{
    if (plan.materialize) {
        storage = quantizer_->quantize(t, plan.cfg);
        *fused = nullptr;
        return storage;
    }
    *fused = plan.fusedCfg();
    return t;
}

PackedWeightCache *
Linear::activeCache()
{
    return w_packs_.implicitCachingActive() ? &w_packs_ : nullptr;
}

Tensor
Linear::forward(const Tensor &x)
{
    SNIP_ASSERT(x.rank() == 2 && x.size(1) == inFeatures(),
                "bad input shape for ", name_);
    saved_x_ = x;
    Tensor y;
    if (gemmPackEnabled(x.size(0), outFeatures(), inFeatures())) {
        QuantPlan xp = plan(GemmKind::Fwd, TensorRole::Activation);
        QuantPlan wp = plan(GemmKind::Fwd, TensorRole::Weight);
        Tensor xs;
        const QuantConfig *xq = nullptr;
        const Tensor &xa = packedSrc(x, xp, xs, &xq);
        y = quantMatmulNT(xa, xq, w_, wp.fusedCfg(), activeCache());
    } else {
        Tensor xq =
            materialized(x, plan(GemmKind::Fwd, TensorRole::Activation));
        Tensor wq =
            materialized(w_, plan(GemmKind::Fwd, TensorRole::Weight));
        y = matmulNT(xq, wq);
    }
    if (tap_)
        tap_->onForward(tap_idx_, x, w_, y);
    return y;
}

const Tensor &
Linear::inferenceWeight(const QuantPlan &wp)
{
    if (!wp.fused && !wp.materialize)
        return w_; // passthrough plan: the FP32 master is the operand
    const uint64_t epoch = weightPackEpoch();
    if (!w_inf_valid_ || w_inf_epoch_ != epoch ||
        w_inf_format_ != wp.cfg.format.name) {
        SNIP_ASSERT(wp.cfg.rounding == Rounding::Nearest,
                    "stochastic-rounding weights are training-only (",
                    name_, ")");
        w_inf_ = quantizer_->quantize(w_, wp.cfg);
        w_inf_valid_ = true;
        w_inf_epoch_ = epoch;
        w_inf_format_ = wp.cfg.format.name;
    }
    return w_inf_;
}

void
Linear::forwardInference(const float *x, int64_t rows, float *y)
{
    const int64_t in = inFeatures();
    const int64_t out = outFeatures();
    const QuantPlan xp = plan(GemmKind::Fwd, TensorRole::Activation);
    const QuantPlan wp = plan(GemmKind::Fwd, TensorRole::Weight);
    const Tensor &w = inferenceWeight(wp);

    if (!xp.fused && !xp.materialize) {
        gemmNT(x, w.data(), y, rows, out, in);
        return;
    }

    // Quantize the activation rows into arena scratch, replicating
    // FakeQuantizer::quantizeInPlace exactly for the row-local
    // granularities (a decode row must quantize identically to the
    // same row inside a full-sequence activation, which only holds
    // when no region spans rows).
    SNIP_ASSERT(xp.cfg.rounding == Rounding::Nearest,
                "stochastic-rounding activations are training-only (",
                name_, ")");
    const Granularity gran = xp.cfg.scaling.granularity;
    SNIP_ASSERT(gran == Granularity::Tilewise ||
                    gran == Granularity::Rowwise,
                "inference needs row-local activation scaling (", name_,
                " uses ", granularityName(gran), ")");
    const int64_t nb =
        gran == Granularity::Tilewise
            ? std::max<int64_t>(1, xp.cfg.scaling.block)
            : in;
    const simd::KernelTable &kt = simd::activeKernels();
    const QuantGrid grid = quantGrid(xp.cfg.format);
    const double fmt_max = xp.cfg.format.maxValue();

    runtime::WorkspaceArena &arena =
        runtime::WorkspaceArena::forCurrentThread();
    runtime::ArenaScope scope(arena);
    float *xq = arena.getFloats(static_cast<size_t>(rows * in));
    std::memcpy(xq, x, static_cast<size_t>(rows * in) * sizeof(float));
    for (int64_t r = 0; r < rows; ++r) {
        float *row = xq + r * in;
        for (int64_t c0 = 0; c0 < in; c0 += nb) {
            const int64_t len = std::min(nb, in - c0);
            const double max_abs =
                static_cast<double>(kt.maxAbs(row + c0, len));
            const double scale = regionScale(max_abs, fmt_max);
            kt.quantizeNearest(row + c0, len, xp.cfg.format, grid,
                               static_cast<float>(scale),
                               static_cast<float>(1.0 / scale));
        }
    }
    gemmNT(xq, w.data(), y, rows, out, in);
}

Tensor
Linear::backward(const Tensor &dy)
{
    SNIP_ASSERT(dy.rank() == 2 && dy.size(1) == outFeatures(),
                "bad grad shape for ", name_);
    SNIP_ASSERT(saved_x_.numel() > 0, "backward before forward in ",
                name_);
    const int64_t rows = dy.size(0);

    // dX = dY W (Dgrad GEMM).
    Tensor dx;
    if (gemmPackEnabled(rows, inFeatures(), outFeatures())) {
        QuantPlan dp = plan(GemmKind::Dgrad, TensorRole::OutputGrad);
        QuantPlan wp = plan(GemmKind::Dgrad, TensorRole::Weight);
        Tensor dys;
        const QuantConfig *dq = nullptr;
        const Tensor &dya = packedSrc(dy, dp, dys, &dq);
        dx = quantMatmulNN(dya, dq, w_, wp.fusedCfg(), activeCache());
    } else {
        Tensor dyq = materialized(
            dy, plan(GemmKind::Dgrad, TensorRole::OutputGrad));
        Tensor wq =
            materialized(w_, plan(GemmKind::Dgrad, TensorRole::Weight));
        dx = matmulNN(dyq, wq);
    }

    // dW = dY^T X (Wgrad GEMM). Without a tap the packed path
    // accumulates straight into grad_w_ (one add of the full k-sum per
    // element — bit-identical to materializing dW and adding it).
    if (gemmPackEnabled(outFeatures(), inFeatures(), rows)) {
        QuantPlan dp = plan(GemmKind::Wgrad, TensorRole::OutputGrad);
        QuantPlan xp = plan(GemmKind::Wgrad, TensorRole::Activation);
        Tensor dys;
        const QuantConfig *dq = nullptr;
        const Tensor &dya = packedSrc(dy, dp, dys, &dq);
        if (tap_) {
            // The tap observes the dW increment, so materialize it.
            Tensor dw(outFeatures(), inFeatures());
            quantGemmTN(dya, dq, saved_x_, xp.fusedCfg(), dw,
                        /*accumulate=*/false);
            addInPlace(grad_w_, dw);
            tap_->onBackward(tap_idx_, dy, dx, dw);
            return dx;
        }
        quantGemmTN(dya, dq, saved_x_, xp.fusedCfg(), grad_w_,
                    /*accumulate=*/true);
        return dx;
    }
    Tensor dyq =
        materialized(dy, plan(GemmKind::Wgrad, TensorRole::OutputGrad));
    Tensor xq = materialized(
        saved_x_, plan(GemmKind::Wgrad, TensorRole::Activation));
    Tensor dw = matmulTN(dyq, xq);
    addInPlace(grad_w_, dw);
    if (tap_)
        tap_->onBackward(tap_idx_, dy, dx, dw);
    return dx;
}

} // namespace snip
