#include "nn/linear.h"

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace snip {

Linear::Linear(std::string name, int64_t out_features, int64_t in_features,
               Rng &rng, float init_std, FakeQuantizer *quantizer)
    : name_(std::move(name)),
      w_(Tensor::randn({out_features, in_features}, rng, init_std)),
      grad_w_(out_features, in_features),
      quantizer_(quantizer)
{
}

Tensor
Linear::quantized(const Tensor &t, GemmKind kind, TensorRole role)
{
    const Precision p = scheme_.of(kind);
    // BF16 GEMMs are the high-precision reference: the FP32 master is
    // used directly (bf16 rounding of FP32 master weights is treated as
    // exact, as the paper treats its BF16 baseline).
    if (quantizer_ == nullptr || p == Precision::BF16)
        return t;
    return quantizer_->quantize(t, rolePolicy(p, role));
}

Tensor
Linear::forward(const Tensor &x)
{
    SNIP_ASSERT(x.rank() == 2 && x.size(1) == inFeatures(),
                "bad input shape for ", name_);
    saved_x_ = x;
    Tensor xq = quantized(x, GemmKind::Fwd, TensorRole::Activation);
    Tensor wq = quantized(w_, GemmKind::Fwd, TensorRole::Weight);
    Tensor y = matmulNT(xq, wq);
    if (tap_)
        tap_->onForward(tap_idx_, x, w_, y);
    return y;
}

Tensor
Linear::backward(const Tensor &dy)
{
    SNIP_ASSERT(dy.rank() == 2 && dy.size(1) == outFeatures(),
                "bad grad shape for ", name_);
    SNIP_ASSERT(saved_x_.numel() > 0, "backward before forward in ",
                name_);

    // dX = dY W (Dgrad GEMM).
    Tensor dyq_d = quantized(dy, GemmKind::Dgrad, TensorRole::OutputGrad);
    Tensor wq_d = quantized(w_, GemmKind::Dgrad, TensorRole::Weight);
    Tensor dx = matmulNN(dyq_d, wq_d);

    // dW = dY^T X (Wgrad GEMM).
    Tensor dyq_w = quantized(dy, GemmKind::Wgrad, TensorRole::OutputGrad);
    Tensor xq_w =
        quantized(saved_x_, GemmKind::Wgrad, TensorRole::Activation);
    Tensor dw = matmulTN(dyq_w, xq_w);
    addInPlace(grad_w_, dw);

    if (tap_)
        tap_->onBackward(tap_idx_, dy, dx, dw);
    return dx;
}

} // namespace snip
