/**
 * @file
 * Forward-pass modes and the KV-cache handle for incremental decoding.
 *
 * Historically the model had one implicit full-sequence forward shape.
 * The serving runtime (src/serve/) needs three distinct contracts:
 *
 *   Train    full-sequence forward that saves every activation a
 *            subsequent backward() needs. The historical behavior;
 *            bit-identical to the pre-ForwardMode code.
 *   Prefill  full-sequence forward over a prompt that additionally
 *            appends every post-RoPE K/V row into the KV cache and
 *            releases attention activations on return (backward() is
 *            a hard error afterwards).
 *   Decode   single-token-per-sequence incremental forward: Q/K/V are
 *            projected for one new token per sequence, K/V appended to
 *            the cache, and attention gathers the full history from
 *            cache pages. No activations are saved.
 */
#ifndef SNIP_NN_FORWARD_MODE_H
#define SNIP_NN_FORWARD_MODE_H

#include <cstdint>

namespace snip {

namespace serve {
class KvCache;
} // namespace serve

/** Which forward contract a Model/Block/Attention call runs under. */
enum class ForwardMode
{
    Train,
    Prefill,
    Decode,
};

/** Name for logging/assertions. */
inline const char *
forwardModeName(ForwardMode mode)
{
    switch (mode) {
        case ForwardMode::Train:
            return "Train";
        case ForwardMode::Prefill:
            return "Prefill";
        case ForwardMode::Decode:
            return "Decode";
    }
    return "?";
}

/**
 * Non-owning view of the KV cache rows a Prefill/Decode forward
 * touches: one cache plus the sequence slot for each batch row.
 * Train-mode calls pass the default (invalid) handle.
 */
struct KvCacheHandle
{
    serve::KvCache *cache = nullptr;
    /** Sequence slot per batch row, [count]. Must outlive the call. */
    const int64_t *seq_ids = nullptr;
    int64_t count = 0;

    bool
    valid() const
    {
        return cache != nullptr && seq_ids != nullptr && count > 0;
    }
};

} // namespace snip

#endif // SNIP_NN_FORWARD_MODE_H
