/**
 * @file
 * Token embedding table (kept in high precision per the paper).
 */
#ifndef SNIP_NN_EMBEDDING_H
#define SNIP_NN_EMBEDDING_H

#include <cstdint>
#include <string>
#include <vector>

#include "nn/param.h"
#include "tensor/tensor.h"

namespace snip {

class Rng;

/** Lookup table: token id -> d_model vector. */
class Embedding
{
  public:
    Embedding(std::string name, int64_t vocab, int64_t dim, Rng &rng,
              float init_std);

    /** Gather rows for @p tokens; output is [tokens.size(), dim]. */
    Tensor forward(const std::vector<int32_t> &tokens);

    /** Scatter-add gradients back into the table. */
    void backward(const Tensor &d_out);

    Tensor &table() { return table_; }
    const Tensor &table() const { return table_; }
    Tensor &grad() { return grad_table_; }

    void zeroGrad() { grad_table_.zero(); }

    ParamRef param() { return {name_, &table_, &grad_table_}; }

  private:
    std::string name_;
    int64_t vocab_;
    int64_t dim_;
    Tensor table_;
    Tensor grad_table_;
    std::vector<int32_t> saved_tokens_;
};

} // namespace snip

#endif // SNIP_NN_EMBEDDING_H
