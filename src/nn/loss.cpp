#include "nn/loss.h"

#include <cmath>

#include "util/logging.h"

namespace snip {

namespace {

/** Row max and log-sum-exp for one logits row. */
void
rowLogSumExp(const float *row, int64_t vocab, double &max_out,
             double &lse_out)
{
    double maxv = row[0];
    for (int64_t v = 1; v < vocab; ++v)
        maxv = std::max(maxv, static_cast<double>(row[v]));
    double sum = 0.0;
    for (int64_t v = 0; v < vocab; ++v)
        sum += std::exp(static_cast<double>(row[v]) - maxv);
    max_out = maxv;
    lse_out = maxv + std::log(sum);
}

} // namespace

LossResult
softmaxCrossEntropy(const Tensor &logits,
                    const std::vector<int32_t> &targets,
                    int32_t ignore_index)
{
    SNIP_ASSERT(logits.rank() == 2);
    const int64_t rows = logits.size(0);
    const int64_t vocab = logits.size(1);
    SNIP_ASSERT(rows == static_cast<int64_t>(targets.size()));

    LossResult res;
    res.dlogits = Tensor(logits.shape());

    int64_t valid = 0;
    for (int64_t r = 0; r < rows; ++r)
        valid += (targets[static_cast<size_t>(r)] != ignore_index);
    res.valid_count = valid;
    if (valid == 0)
        return res;

    const float *pl = logits.data();
    float *pd = res.dlogits.data();
    const float inv_valid = 1.0f / static_cast<float>(valid);
    double total = 0.0;

    for (int64_t r = 0; r < rows; ++r) {
        const int32_t t = targets[static_cast<size_t>(r)];
        if (t == ignore_index)
            continue;
        SNIP_ASSERT(t >= 0 && t < vocab, "target out of range");
        const float *row = pl + r * vocab;
        float *drow = pd + r * vocab;
        double maxv, lse;
        rowLogSumExp(row, vocab, maxv, lse);
        total += lse - row[t];
        for (int64_t v = 0; v < vocab; ++v) {
            const double p = std::exp(static_cast<double>(row[v]) - lse);
            drow[v] = static_cast<float>(p) * inv_valid;
        }
        drow[t] -= inv_valid;
    }
    res.loss = total / static_cast<double>(valid);
    return res;
}

double
sequenceLogProb(const Tensor &logits, const std::vector<int32_t> &targets,
                int64_t row0, int64_t row1)
{
    SNIP_ASSERT(logits.rank() == 2);
    const int64_t vocab = logits.size(1);
    SNIP_ASSERT(row0 >= 0 && row1 <= logits.size(0) && row0 <= row1);
    const float *pl = logits.data();
    double total = 0.0;
    for (int64_t r = row0; r < row1; ++r) {
        const int32_t t = targets[static_cast<size_t>(r)];
        SNIP_ASSERT(t >= 0 && t < vocab);
        const float *row = pl + r * vocab;
        double maxv, lse;
        rowLogSumExp(row, vocab, maxv, lse);
        total += static_cast<double>(row[t]) - lse;
    }
    return total;
}

} // namespace snip
