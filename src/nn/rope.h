/**
 * @file
 * Rotary position embeddings (RoPE), Llama-style half rotation.
 *
 * RoPE is an orthogonal per-position rotation, so its backward pass is
 * the inverse rotation applied to the gradient.
 */
#ifndef SNIP_NN_ROPE_H
#define SNIP_NN_ROPE_H

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace snip {

/** Precomputed cos/sin tables for a (max_seq, head_dim) pair. */
class Rope
{
  public:
    Rope(int64_t max_seq, int64_t head_dim, double theta = 10000.0);

    /**
     * Rotate q/k projections in place.
     *
     * @param x        [batch*seq, n_heads*head_dim]
     * @param batch    batch size
     * @param seq      sequence length (position = row % seq)
     * @param n_heads  heads contained in x's feature dimension
     * @param inverse  apply the inverse rotation (backward pass)
     */
    void apply(Tensor &x, int64_t batch, int64_t seq, int64_t n_heads,
               bool inverse = false) const;

    /**
     * Rotate one token's heads in place at absolute position @p pos
     * (the incremental-decode entry; apply() is a loop over this).
     *
     * @param row     [n_heads * head_dim] floats
     * @param n_heads heads contained in the row
     * @param pos     absolute sequence position, < maxSeq()
     * @param inverse apply the inverse rotation
     */
    void applyRow(float *row, int64_t n_heads, int64_t pos,
                  bool inverse = false) const;

    int64_t headDim() const { return head_dim_; }
    int64_t maxSeq() const { return max_seq_; }

  private:
    int64_t max_seq_;
    int64_t head_dim_;
    /** cos/sin per (position, pair index), pair count = head_dim/2. */
    std::vector<float> cos_;
    std::vector<float> sin_;
};

} // namespace snip

#endif // SNIP_NN_ROPE_H
