#include "nn/rope.h"

#include <cmath>

#include "util/logging.h"

namespace snip {

Rope::Rope(int64_t max_seq, int64_t head_dim, double theta)
    : max_seq_(max_seq), head_dim_(head_dim)
{
    SNIP_ASSERT(head_dim % 2 == 0, "RoPE needs even head_dim");
    const int64_t pairs = head_dim / 2;
    cos_.resize(static_cast<size_t>(max_seq * pairs));
    sin_.resize(static_cast<size_t>(max_seq * pairs));
    // Each pair's frequency is independent of the position, so hoist
    // the pow() out of the position loop: O(pairs) transcendental
    // setup instead of O(max_seq * pairs). The table is bit-identical
    // (same pow() value feeds the same angle product per entry).
    std::vector<double> freqs(static_cast<size_t>(pairs));
    for (int64_t p = 0; p < pairs; ++p)
        freqs[static_cast<size_t>(p)] =
            std::pow(theta, -2.0 * static_cast<double>(p) /
                                static_cast<double>(head_dim));
    for (int64_t pos = 0; pos < max_seq; ++pos) {
        for (int64_t p = 0; p < pairs; ++p) {
            double angle = static_cast<double>(pos) *
                           freqs[static_cast<size_t>(p)];
            cos_[static_cast<size_t>(pos * pairs + p)] =
                static_cast<float>(std::cos(angle));
            sin_[static_cast<size_t>(pos * pairs + p)] =
                static_cast<float>(std::sin(angle));
        }
    }
}

void
Rope::apply(Tensor &x, int64_t batch, int64_t seq, int64_t n_heads,
            bool inverse) const
{
    SNIP_ASSERT(x.rank() == 2 && x.size(0) == batch * seq &&
                x.size(1) == n_heads * head_dim_);
    SNIP_ASSERT(seq <= max_seq_, "sequence longer than RoPE table");
    float *px = x.data();
    const int64_t cols = n_heads * head_dim_;

    for (int64_t row = 0; row < batch * seq; ++row)
        applyRow(px + row * cols, n_heads, row % seq, inverse);
}

void
Rope::applyRow(float *row, int64_t n_heads, int64_t pos,
               bool inverse) const
{
    SNIP_ASSERT(pos >= 0 && pos < max_seq_,
                "position beyond RoPE table");
    const int64_t pairs = head_dim_ / 2;
    const float *crow = cos_.data() + pos * pairs;
    const float *srow = sin_.data() + pos * pairs;
    for (int64_t h = 0; h < n_heads; ++h) {
        float *head = row + h * head_dim_;
        for (int64_t p = 0; p < pairs; ++p) {
            const float c = crow[p];
            const float s = inverse ? -srow[p] : srow[p];
            const float a = head[p];
            const float b = head[p + pairs];
            head[p] = a * c - b * s;
            head[p + pairs] = a * s + b * c;
        }
    }
}

} // namespace snip
