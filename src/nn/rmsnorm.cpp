#include "nn/rmsnorm.h"

#include <cmath>

#include "util/logging.h"

namespace snip {

RMSNorm::RMSNorm(std::string name, int64_t dim, float eps)
    : name_(std::move(name)),
      dim_(dim),
      eps_(eps),
      gain_(Tensor::full({dim}, 1.0f)),
      grad_gain_(Tensor::zeros({dim}))
{
}

Tensor
RMSNorm::forward(const Tensor &x)
{
    SNIP_ASSERT(x.rank() == 2 && x.size(1) == dim_);
    const int64_t rows = x.size(0);
    saved_x_ = x;
    saved_inv_rms_.assign(static_cast<size_t>(rows), 0.0f);

    Tensor y(x.shape());
    const float *px = x.data();
    const float *pg = gain_.data();
    float *py = y.data();
    for (int64_t r = 0; r < rows; ++r) {
        const float *row = px + r * dim_;
        double ss = 0.0;
        for (int64_t c = 0; c < dim_; ++c)
            ss += static_cast<double>(row[c]) * row[c];
        float inv_rms = static_cast<float>(
            1.0 / std::sqrt(ss / static_cast<double>(dim_) + eps_));
        saved_inv_rms_[static_cast<size_t>(r)] = inv_rms;
        float *out = py + r * dim_;
        for (int64_t c = 0; c < dim_; ++c)
            out[c] = row[c] * inv_rms * pg[c];
    }
    return y;
}

void
RMSNorm::forwardInference(const float *x, int64_t rows, float *y) const
{
    const float *pg = gain_.data();
    for (int64_t r = 0; r < rows; ++r) {
        const float *row = x + r * dim_;
        double ss = 0.0;
        for (int64_t c = 0; c < dim_; ++c)
            ss += static_cast<double>(row[c]) * row[c];
        const float inv_rms = static_cast<float>(
            1.0 / std::sqrt(ss / static_cast<double>(dim_) + eps_));
        float *out = y + r * dim_;
        for (int64_t c = 0; c < dim_; ++c)
            out[c] = row[c] * inv_rms * pg[c];
    }
}

Tensor
RMSNorm::backward(const Tensor &dy)
{
    SNIP_ASSERT(dy.sameShape(saved_x_), "backward before forward");
    const int64_t rows = dy.size(0);

    Tensor dx(dy.shape());
    const float *px = saved_x_.data();
    const float *pdy = dy.data();
    const float *pg = gain_.data();
    float *pdx = dx.data();
    float *pdg = grad_gain_.data();

    for (int64_t r = 0; r < rows; ++r) {
        const float *xrow = px + r * dim_;
        const float *dyrow = pdy + r * dim_;
        float *dxrow = pdx + r * dim_;
        const float inv_rms = saved_inv_rms_[static_cast<size_t>(r)];

        // dgain_c += dy_c * x_c * inv_rms
        // dx_c = g_c*dy_c*inv_rms - x_c * inv_rms^3/dim * sum_j(g_j dy_j x_j)
        double dot = 0.0;
        for (int64_t c = 0; c < dim_; ++c)
            dot += static_cast<double>(pg[c]) * dyrow[c] * xrow[c];
        const float k = static_cast<float>(
            dot * inv_rms * inv_rms * inv_rms / static_cast<double>(dim_));
        for (int64_t c = 0; c < dim_; ++c) {
            pdg[c] += dyrow[c] * xrow[c] * inv_rms;
            dxrow[c] = pg[c] * dyrow[c] * inv_rms - xrow[c] * k;
        }
    }
    return dx;
}

} // namespace snip
