/**
 * @file
 * One pre-norm transformer block (Fig. 4):
 *   h = x + Attn(RMSNorm(x));  y = h + SwiGLU-MLP(RMSNorm(h)).
 */
#ifndef SNIP_NN_BLOCK_H
#define SNIP_NN_BLOCK_H

#include <memory>

#include "nn/attention.h"
#include "nn/rmsnorm.h"
#include "nn/swiglu.h"

namespace snip {

/** Transformer block owning its norms, attention and MLP. */
class TransformerBlock
{
  public:
    TransformerBlock(const ModelConfig &config, int block, Rng &rng,
                     FakeQuantizer *quantizer, const Rope *rope);

    /** Train/Prefill forward; @p kv is required for Prefill (the
     *  attention appends its K/V rows there). */
    Tensor forward(const Tensor &x, int64_t batch, int64_t seq,
                   ForwardMode mode, const KvCacheHandle &kv = {});

    /** Deprecated training-only signature; forwards to Train mode. */
    Tensor
    forward(const Tensor &x, int64_t batch, int64_t seq)
    {
        return forward(x, batch, seq, ForwardMode::Train);
    }

    /**
     * Single-token decode through the block, in place: @p x is
     * [count, d_model] and is updated to the block output. Uses arena
     * scratch only; zero heap allocations after warm-up.
     */
    void decodeForward(float *x, int64_t count, const KvCacheHandle &kv);

    Tensor backward(const Tensor &dy);

    /** Access any of the seven quantizable linears by role. */
    Linear &linear(LayerRole role);

    ParamList params();

  private:
    std::unique_ptr<RMSNorm> norm1_, norm2_;
    std::unique_ptr<Attention> attn_;
    std::unique_ptr<SwiGluMlp> mlp_;
};

} // namespace snip

#endif // SNIP_NN_BLOCK_H
