/**
 * @file
 * One pre-norm transformer block (Fig. 4):
 *   h = x + Attn(RMSNorm(x));  y = h + SwiGLU-MLP(RMSNorm(h)).
 */
#ifndef SNIP_NN_BLOCK_H
#define SNIP_NN_BLOCK_H

#include <memory>

#include "nn/attention.h"
#include "nn/rmsnorm.h"
#include "nn/swiglu.h"

namespace snip {

/** Transformer block owning its norms, attention and MLP. */
class TransformerBlock
{
  public:
    TransformerBlock(const ModelConfig &config, int block, Rng &rng,
                     FakeQuantizer *quantizer, const Rope *rope);

    Tensor forward(const Tensor &x, int64_t batch, int64_t seq);

    Tensor backward(const Tensor &dy);

    /** Access any of the seven quantizable linears by role. */
    Linear &linear(LayerRole role);

    ParamList params();

  private:
    std::unique_ptr<RMSNorm> norm1_, norm2_;
    std::unique_ptr<Attention> attn_;
    std::unique_ptr<SwiGluMlp> mlp_;
};

} // namespace snip

#endif // SNIP_NN_BLOCK_H
