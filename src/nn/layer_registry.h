/**
 * @file
 * Model configuration and the global linear-layer index registry.
 *
 * Every quantizable linear layer in the model has a global index
 * (block * 7 + role) used consistently by the stats collector, the
 * divergence analyzer, the ILP, and the heatmap renderers.
 */
#ifndef SNIP_NN_LAYER_REGISTRY_H
#define SNIP_NN_LAYER_REGISTRY_H

#include <cstdint>
#include <string>

#include "schemes/scheme.h"

namespace snip {

/** Architecture hyperparameters of a Llama-like model. */
struct ModelConfig
{
    /** Name used in logs/checkpoints, e.g. "tinyllama_sim". */
    std::string name = "model";
    int64_t vocab_size = 128;
    int64_t d_model = 64;
    int64_t n_blocks = 4;
    int64_t n_heads = 4;
    /** Key/value heads; < n_heads enables grouped-query attention. */
    int64_t n_kv_heads = 4;
    int64_t ffn_hidden = 128;
    int64_t max_seq = 64;
    double rope_theta = 10000.0;
    float init_std = 0.02f;
    /** RMSNorm epsilon. */
    float norm_eps = 1e-5f;

    int64_t headDim() const { return d_model / n_heads; }
    int64_t kvDim() const { return n_kv_heads * headDim(); }

    /** Total parameter count of the transformer (for reporting). */
    int64_t parameterCount() const;

    /** Abort with fatal() if the configuration is inconsistent. */
    void validate() const;
};

/**
 * Maps (block, role) <-> global linear-layer index and reports layer
 * shapes and FLOPs.
 */
class LayerRegistry
{
  public:
    explicit LayerRegistry(const ModelConfig &config);

    /** Number of quantizable linear layers (blocks * 7). */
    int numLinear() const
    {
        return static_cast<int>(config_.n_blocks) * kRolesPerBlock;
    }

    /** Global index of (block, role). */
    int index(int block, LayerRole role) const;

    /** Block id of a global index. */
    int blockOf(int idx) const { return idx / kRolesPerBlock; }

    /** Role of a global index. */
    LayerRole roleOf(int idx) const
    {
        return static_cast<LayerRole>(idx % kRolesPerBlock);
    }

    /** Human-readable name like "blk03.Down". */
    std::string layerName(int idx) const;

    /** Output features (rows of W) of the layer. */
    int64_t outFeatures(int idx) const;

    /** Input features (cols of W) of the layer. */
    int64_t inFeatures(int idx) const;

    /**
     * GEMM FLOPs this layer executes per token per training step:
     * 3 GEMMs x 2*out*in (Fwd, Dgrad, Wgrad have identical shapes).
     */
    double flopsPerToken(int idx) const;

    /** flopsPerToken for every layer, in index order. */
    std::vector<double> allFlopsPerToken() const;

    const ModelConfig &config() const { return config_; }

  private:
    ModelConfig config_;
};

} // namespace snip

#endif // SNIP_NN_LAYER_REGISTRY_H
