#include "nn/model.h"

#include <cmath>
#include <cstring>

#include "runtime/workspace_arena.h"
#include "tensor/ops.h"

namespace snip {

namespace {

/** Add N(0, eps^2/numel) noise to t; returns the noise norm. */
double
injectNoise(Tensor &t, double eps, Rng &rng)
{
    // Theorem 4.1 draws delta ~ N(0, eps^2/d I) so that E||delta|| = eps.
    const double stddev =
        eps / std::sqrt(static_cast<double>(std::max<int64_t>(
                  1, t.numel())));
    double acc = 0.0;
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
        const double n = rng.nextGaussian() * stddev;
        p[i] += static_cast<float>(n);
        acc += n * n;
    }
    return std::sqrt(acc);
}

} // namespace

LlamaModel::LlamaModel(const ModelConfig &config, uint64_t seed)
    : config_(config),
      registry_(config),
      quantizer_(seed ^ 0x51A9C0DEull),
      noise_rng_(seed ^ 0x0123456789ABCDEFull)
{
    Rng init_rng(seed);
    rope_ = std::make_unique<Rope>(config.max_seq, config.headDim(),
                                   config.rope_theta);
    embedding_ = std::make_unique<Embedding>(
        "embedding", config.vocab_size, config.d_model, init_rng,
        config.init_std);
    for (int b = 0; b < config.n_blocks; ++b) {
        blocks_.push_back(std::make_unique<TransformerBlock>(
            config, b, init_rng, &quantizer_, rope_.get()));
    }
    final_norm_ = std::make_unique<RMSNorm>("final_norm", config.d_model,
                                            config.norm_eps);
    // LM head is unquantized (quantizer = nullptr): the paper keeps the
    // output projection in high precision.
    lm_head_ = std::make_unique<Linear>("lm_head", config.vocab_size,
                                        config.d_model, init_rng,
                                        config.init_std, nullptr);
}

Tensor
LlamaModel::forward(const std::vector<int32_t> &tokens, int64_t batch,
                    int64_t seq, ForwardMode mode,
                    const KvCacheHandle &kv)
{
    SNIP_ASSERT(static_cast<int64_t>(tokens.size()) == batch * seq,
                "token count != batch*seq");
    SNIP_ASSERT(seq <= config_.max_seq, "sequence too long");

    if (mode == ForwardMode::Decode) {
        SNIP_ASSERT(seq == 1, "Decode forward takes one token per "
                              "sequence; use decodeStep directly");
        Tensor logits(batch, config_.vocab_size);
        decodeStep(tokens.data(), batch, kv, logits.data());
        return logits;
    }
    if (mode == ForwardMode::Prefill) {
        SNIP_ASSERT(kv.valid() && kv.count == batch,
                    "prefill needs a cache handle covering every batch "
                    "row");
        SNIP_ASSERT(fwd_noise_eps_ == 0.0,
                    "noise injection is a training probe; disable it "
                    "before prefill");
    }
    batch_ = batch;
    seq_ = seq;

    Tensor x = embedding_->forward(tokens);
    for (auto &blk : blocks_)
        x = blk->forward(x, batch, seq, mode, kv);

    last_hidden_norm_ = frobeniusNorm(x);
    if (fwd_noise_eps_ > 0.0)
        last_noise_norm_ = injectNoise(x, fwd_noise_eps_, noise_rng_);

    Tensor xn = final_norm_->forward(x);
    return lm_head_->forward(xn);
}

void
LlamaModel::decodeStep(const int32_t *tokens, int64_t count,
                       const KvCacheHandle &kv, float *logits)
{
    SNIP_ASSERT(kv.valid() && kv.count == count,
                "decode needs a cache handle covering every row");
    const int64_t d = config_.d_model;
    runtime::WorkspaceArena &arena =
        runtime::WorkspaceArena::forCurrentThread();
    runtime::ArenaScope scope(arena);
    float *x = arena.getFloats(static_cast<size_t>(count * d));
    float *xn = arena.getFloats(static_cast<size_t>(count * d));

    const float *table = embedding_->table().data();
    for (int64_t i = 0; i < count; ++i) {
        const int32_t t = tokens[i];
        SNIP_ASSERT(t >= 0 && t < config_.vocab_size,
                    "token id out of range");
        std::memcpy(x + i * d, table + static_cast<int64_t>(t) * d,
                    static_cast<size_t>(d) * sizeof(float));
    }

    for (auto &blk : blocks_)
        blk->decodeForward(x, count, kv);

    final_norm_->forwardInference(x, count, xn);
    lm_head_->forwardInference(xn, count, logits);
}

void
LlamaModel::backward(const Tensor &dlogits)
{
    Tensor dxn = lm_head_->backward(dlogits);
    Tensor dx = final_norm_->backward(dxn);

    last_hidden_grad_norm_ = frobeniusNorm(dx);
    if (bwd_noise_eps_ > 0.0)
        last_noise_norm_ = injectNoise(dx, bwd_noise_eps_, noise_rng_);

    for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it)
        dx = (*it)->backward(dx);
    embedding_->backward(dx);
}

LossResult
LlamaModel::forwardLoss(const std::vector<int32_t> &tokens,
                        const std::vector<int32_t> &targets, int64_t batch,
                        int64_t seq)
{
    Tensor logits = forward(tokens, batch, seq);
    return softmaxCrossEntropy(logits, targets);
}

void
LlamaModel::zeroGrad()
{
    for (auto &p : params())
        p.grad->zero();
}

ParamList
LlamaModel::params()
{
    ParamList out;
    out.push_back(embedding_->param());
    for (auto &blk : blocks_)
        for (auto &p : blk->params())
            out.push_back(p);
    out.push_back(final_norm_->param());
    out.push_back(lm_head_->param());
    return out;
}

Linear &
LlamaModel::linear(int idx)
{
    SNIP_ASSERT(idx >= 0 && idx < registry_.numLinear());
    return blocks_[static_cast<size_t>(registry_.blockOf(idx))]->linear(
        registry_.roleOf(idx));
}

void
LlamaModel::setScheme(const PrecisionScheme &scheme)
{
    SNIP_ASSERT(scheme.layers.size() ==
                static_cast<size_t>(registry_.numLinear()),
                "scheme size mismatch");
    for (int i = 0; i < registry_.numLinear(); ++i)
        linear(i).setScheme(scheme.layers[static_cast<size_t>(i)]);
}

PrecisionScheme
LlamaModel::currentScheme() const
{
    auto *self = const_cast<LlamaModel *>(this);
    PrecisionScheme s(static_cast<size_t>(registry_.numLinear()));
    for (int i = 0; i < registry_.numLinear(); ++i)
        s.layers[static_cast<size_t>(i)] = self->linear(i).scheme();
    return s;
}

void
LlamaModel::setTap(LinearTap *tap)
{
    for (int i = 0; i < registry_.numLinear(); ++i)
        linear(i).setTap(tap, i);
}

} // namespace snip
