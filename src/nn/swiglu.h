/**
 * @file
 * SwiGLU feed-forward network: down( silu(gate(x)) ⊙ up(x) ).
 *
 * Gate, Up and Down are quantizable Linear layers; the SiLU activation
 * and the Hadamard product stay in high precision (Sec. 2.2).
 */
#ifndef SNIP_NN_SWIGLU_H
#define SNIP_NN_SWIGLU_H

#include <memory>

#include "nn/layer_registry.h"
#include "nn/linear.h"

namespace snip {

/** The Llama MLP with SwiGLU activation. */
class SwiGluMlp
{
  public:
    SwiGluMlp(const ModelConfig &config, int block, Rng &rng,
              FakeQuantizer *quantizer);

    /** x is [T, d_model]; returns [T, d_model]. */
    Tensor forward(const Tensor &x);

    /**
     * Inference-only forward on raw buffers: writes the MLP output for
     * @p rows rows of @p x into @p y (may not alias) using arena
     * scratch for the hidden activations. Saves no state; rows are
     * bit-identical to forward() under SNIP_GEMM_PACK=off.
     */
    void forwardInference(const float *x, int64_t rows, float *y);

    /** Backprop through all three projections. */
    Tensor backward(const Tensor &dy);

    /** Access a projection by role (Gate/Up/Down only). */
    Linear &linear(LayerRole role);

    ParamList params();

  private:
    std::unique_ptr<Linear> gate_, up_, down_;
    Tensor g_, u_, s_; ///< saved gate output, up output, silu(gate)
};

} // namespace snip

#endif // SNIP_NN_SWIGLU_H
