#include "nn/attention.h"

#include <cmath>

#include "tensor/gemm.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace snip {

namespace {

/**
 * Copy the [seq, width] slice for (batch b, head h) out of a
 * [batch*seq, n_heads*width] tensor into a contiguous buffer.
 */
void
gatherHead(const float *src, float *dst, int64_t b, int64_t h, int64_t seq,
           int64_t n_heads, int64_t width)
{
    const int64_t cols = n_heads * width;
    for (int64_t s = 0; s < seq; ++s) {
        const float *row = src + (b * seq + s) * cols + h * width;
        float *out = dst + s * width;
        for (int64_t c = 0; c < width; ++c)
            out[c] = row[c];
    }
}

/** Accumulate a contiguous [seq, width] buffer back into the slice. */
void
scatterHeadAdd(float *dst, const float *src, int64_t b, int64_t h,
               int64_t seq, int64_t n_heads, int64_t width)
{
    const int64_t cols = n_heads * width;
    for (int64_t s = 0; s < seq; ++s) {
        float *row = dst + (b * seq + s) * cols + h * width;
        const float *in = src + s * width;
        for (int64_t c = 0; c < width; ++c)
            row[c] += in[c];
    }
}

} // namespace

Attention::Attention(const ModelConfig &config, int block, Rng &rng,
                     FakeQuantizer *quantizer, const Rope *rope)
    : config_(config), rope_(rope)
{
    const int64_t d = config.d_model;
    const int64_t q_dim = config.n_heads * config.headDim();
    const int64_t kv_dim = config.kvDim();
    auto name = [block](const char *role) {
        return strformat("blk%02d.%s", block, role);
    };
    wq_ = std::make_unique<Linear>(name("Q"), q_dim, d, rng,
                                   config.init_std, quantizer);
    wk_ = std::make_unique<Linear>(name("K"), kv_dim, d, rng,
                                   config.init_std, quantizer);
    wv_ = std::make_unique<Linear>(name("V"), kv_dim, d, rng,
                                   config.init_std, quantizer);
    wo_ = std::make_unique<Linear>(name("O"), d, q_dim, rng,
                                   config.init_std, quantizer);
}

Linear &
Attention::linear(LayerRole role)
{
    switch (role) {
        case LayerRole::Q:
            return *wq_;
        case LayerRole::K:
            return *wk_;
        case LayerRole::V:
            return *wv_;
        case LayerRole::O:
            return *wo_;
        default:
            panic("not an attention role");
    }
}

ParamList
Attention::params()
{
    return {wq_->param(), wk_->param(), wv_->param(), wo_->param()};
}

Tensor
Attention::forward(const Tensor &x, int64_t batch, int64_t seq)
{
    batch_ = batch;
    seq_ = seq;
    const int64_t hd = config_.headDim();
    const int64_t n_heads = config_.n_heads;
    const int64_t n_kv = config_.n_kv_heads;

    q_ = wq_->forward(x);
    k_ = wk_->forward(x);
    v_ = wv_->forward(x);
    rope_->apply(q_, batch, seq, n_heads);
    rope_->apply(k_, batch, seq, n_kv);

    probs_ = Tensor(batch * n_heads * seq, seq);
    ctx_ = Tensor(batch * seq, n_heads * hd);
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    const int64_t group = n_heads / n_kv;

    std::vector<float> qb(static_cast<size_t>(seq * hd));
    std::vector<float> kb(static_cast<size_t>(seq * hd));
    std::vector<float> vb(static_cast<size_t>(seq * hd));
    std::vector<float> cb(static_cast<size_t>(seq * hd));

    for (int64_t b = 0; b < batch; ++b) {
        for (int64_t h = 0; h < n_heads; ++h) {
            const int64_t kvh = h / group;
            gatherHead(q_.data(), qb.data(), b, h, seq, n_heads, hd);
            gatherHead(k_.data(), kb.data(), b, kvh, seq, n_kv, hd);
            gatherHead(v_.data(), vb.data(), b, kvh, seq, n_kv, hd);

            float *prob = probs_.data() + (b * n_heads + h) * seq * seq;
            gemmNT(qb.data(), kb.data(), prob, seq, seq, hd);

            // Scale, causal mask, rowwise softmax (fp32).
            for (int64_t i = 0; i < seq; ++i) {
                float *row = prob + i * seq;
                float maxv = -1e30f;
                for (int64_t j = 0; j <= i; ++j) {
                    row[j] *= scale;
                    maxv = std::max(maxv, row[j]);
                }
                double denom = 0.0;
                for (int64_t j = 0; j <= i; ++j) {
                    row[j] = std::exp(row[j] - maxv);
                    denom += row[j];
                }
                const float inv =
                    static_cast<float>(1.0 / std::max(denom, 1e-30));
                for (int64_t j = 0; j <= i; ++j)
                    row[j] *= inv;
                for (int64_t j = i + 1; j < seq; ++j)
                    row[j] = 0.0f;
            }

            gemmNN(prob, vb.data(), cb.data(), seq, hd, seq);
            // ctx slice is written exactly once per (b,h): plain copy.
            const int64_t cols = n_heads * hd;
            for (int64_t s = 0; s < seq; ++s) {
                float *dst = ctx_.data() + (b * seq + s) * cols + h * hd;
                const float *src = cb.data() + s * hd;
                for (int64_t c = 0; c < hd; ++c)
                    dst[c] = src[c];
            }
        }
    }
    return wo_->forward(ctx_);
}

Tensor
Attention::backward(const Tensor &dy)
{
    SNIP_ASSERT(batch_ > 0, "backward before forward");
    const int64_t batch = batch_, seq = seq_;
    const int64_t hd = config_.headDim();
    const int64_t n_heads = config_.n_heads;
    const int64_t n_kv = config_.n_kv_heads;
    const int64_t group = n_heads / n_kv;
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

    Tensor dctx = wo_->backward(dy);

    Tensor dq(batch * seq, n_heads * hd);
    Tensor dk(batch * seq, n_kv * hd);
    Tensor dv(batch * seq, n_kv * hd);

    std::vector<float> qb(static_cast<size_t>(seq * hd));
    std::vector<float> kb(static_cast<size_t>(seq * hd));
    std::vector<float> vb(static_cast<size_t>(seq * hd));
    std::vector<float> dcb(static_cast<size_t>(seq * hd));
    std::vector<float> dqb(static_cast<size_t>(seq * hd));
    std::vector<float> dkb(static_cast<size_t>(seq * hd));
    std::vector<float> dvb(static_cast<size_t>(seq * hd));
    std::vector<float> dp(static_cast<size_t>(seq * seq));
    std::vector<float> ds(static_cast<size_t>(seq * seq));

    for (int64_t b = 0; b < batch; ++b) {
        for (int64_t h = 0; h < n_heads; ++h) {
            const int64_t kvh = h / group;
            gatherHead(q_.data(), qb.data(), b, h, seq, n_heads, hd);
            gatherHead(k_.data(), kb.data(), b, kvh, seq, n_kv, hd);
            gatherHead(v_.data(), vb.data(), b, kvh, seq, n_kv, hd);
            gatherHead(dctx.data(), dcb.data(), b, h, seq, n_heads, hd);

            const float *prob =
                probs_.data() + (b * n_heads + h) * seq * seq;

            // dV = P^T dCtx ; dP = dCtx V^T.
            gemmTN(prob, dcb.data(), dvb.data(), seq, hd, seq);
            gemmNT(dcb.data(), vb.data(), dp.data(), seq, seq, hd);

            // Softmax backward: dS = P .* (dP - rowdot(dP, P)).
            for (int64_t i = 0; i < seq; ++i) {
                const float *prow = prob + i * seq;
                const float *dprow = dp.data() + i * seq;
                float *dsrow = ds.data() + i * seq;
                double dot = 0.0;
                for (int64_t j = 0; j <= i; ++j)
                    dot += static_cast<double>(dprow[j]) * prow[j];
                for (int64_t j = 0; j < seq; ++j) {
                    dsrow[j] =
                        j <= i
                            ? prow[j] * (dprow[j] -
                                         static_cast<float>(dot)) * scale
                            : 0.0f;
                }
            }

            // dQ = dS_raw K ; dK = dS_raw^T Q (scale folded into ds).
            gemmNN(ds.data(), kb.data(), dqb.data(), seq, hd, seq);
            gemmTN(ds.data(), qb.data(), dkb.data(), seq, hd, seq);

            scatterHeadAdd(dq.data(), dqb.data(), b, h, seq, n_heads, hd);
            scatterHeadAdd(dk.data(), dkb.data(), b, kvh, seq, n_kv, hd);
            scatterHeadAdd(dv.data(), dvb.data(), b, kvh, seq, n_kv, hd);
        }
    }

    // Undo RoPE on the gradients (rotations are orthogonal).
    rope_->apply(dq, batch, seq, n_heads, /*inverse=*/true);
    rope_->apply(dk, batch, seq, n_kv, /*inverse=*/true);

    Tensor dx = wq_->backward(dq);
    Tensor dxk = wk_->backward(dk);
    Tensor dxv = wv_->backward(dv);
    const float *pk = dxk.data();
    const float *pv = dxv.data();
    float *px = dx.data();
    for (int64_t i = 0; i < dx.numel(); ++i)
        px[i] += pk[i] + pv[i];
    return dx;
}

} // namespace snip
