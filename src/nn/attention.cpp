#include "nn/attention.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "runtime/env_config.h"
#include "runtime/thread_pool.h"
#include "runtime/workspace_arena.h"
#include "serve/kv_cache.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "tensor/gemm.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace snip {

namespace {

/**
 * Copy the [seq, width] slice for (batch b, head h) out of a
 * [batch*seq, n_heads*width] tensor into a contiguous buffer.
 */
void
gatherHead(const float *src, float *dst, int64_t b, int64_t h, int64_t seq,
           int64_t n_heads, int64_t width)
{
    const int64_t cols = n_heads * width;
    for (int64_t s = 0; s < seq; ++s) {
        const float *row = src + (b * seq + s) * cols + h * width;
        float *out = dst + s * width;
        for (int64_t c = 0; c < width; ++c)
            out[c] = row[c];
    }
}

/** Accumulate a contiguous [seq, width] buffer back into the slice. */
void
scatterHeadAdd(float *dst, const float *src, int64_t b, int64_t h,
               int64_t seq, int64_t n_heads, int64_t width)
{
    const int64_t cols = n_heads * width;
    for (int64_t s = 0; s < seq; ++s) {
        float *row = dst + (b * seq + s) * cols + h * width;
        const float *in = src + s * width;
        for (int64_t c = 0; c < width; ++c)
            row[c] += in[c];
    }
}

// -------------------------------------------------------------- mode

std::atomic<int> g_attn_mode{-1}; // -1 = unresolved

bool
parseAttnMode(const char *spec, AttnMode *out)
{
    if (spec == nullptr || *spec == '\0' ||
        std::strcmp(spec, "par") == 0) {
        *out = AttnMode::Par;
        return true;
    }
    if (std::strcmp(spec, "serial") == 0) {
        *out = AttnMode::Serial;
        return true;
    }
    return false;
}

// ------------------------------------------------------- serial core

/**
 * The historical per-(b,h) loop, kept bit-for-bit for A/B
 * (SNIP_ATTN=serial): per-head gathers into arena scratch, per-head
 * GEMMs through the ordinary entry points, fused softmax kernel (bit-
 * exact against the old open-coded loops by the kernel contract).
 */
void
forwardSerial(const AttnShape &s, const float *q, const float *k,
              const float *v, float *probs, float *ctx)
{
    const int64_t seq = s.seq, hd = s.head_dim;
    const int64_t n_heads = s.n_heads, n_kv = s.n_kv_heads;
    const int64_t group = n_heads / n_kv;
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    const simd::KernelTable &kt = simd::activeKernels();

    runtime::WorkspaceArena &arena =
        runtime::WorkspaceArena::forCurrentThread();
    runtime::ArenaScope scope(arena);
    const size_t buf = static_cast<size_t>(seq * hd);
    float *qb = arena.getFloats(buf);
    float *kb = arena.getFloats(buf);
    float *vb = arena.getFloats(buf);
    float *cb = arena.getFloats(buf);

    for (int64_t b = 0; b < s.batch; ++b) {
        for (int64_t h = 0; h < n_heads; ++h) {
            const int64_t kvh = h / group;
            gatherHead(q, qb, b, h, seq, n_heads, hd);
            gatherHead(k, kb, b, kvh, seq, n_kv, hd);
            gatherHead(v, vb, b, kvh, seq, n_kv, hd);

            float *prob = probs + (b * n_heads + h) * seq * seq;
            gemmNT(qb, kb, prob, seq, seq, hd);
            kt.attnSoftmaxFwd(prob, seq, scale);
            gemmNN(prob, vb, cb, seq, hd, seq);

            // ctx slice is written exactly once per (b,h): plain copy.
            const int64_t cols = n_heads * hd;
            for (int64_t ss = 0; ss < seq; ++ss) {
                float *dst = ctx + (b * seq + ss) * cols + h * hd;
                const float *src = cb + ss * hd;
                for (int64_t c = 0; c < hd; ++c)
                    dst[c] = src[c];
            }
        }
    }
}

void
backwardSerial(const AttnShape &s, const float *q, const float *k,
               const float *v, const float *probs, const float *dctx,
               float *dq, float *dk, float *dv)
{
    const int64_t seq = s.seq, hd = s.head_dim;
    const int64_t n_heads = s.n_heads, n_kv = s.n_kv_heads;
    const int64_t group = n_heads / n_kv;
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    const simd::KernelTable &kt = simd::activeKernels();

    runtime::WorkspaceArena &arena =
        runtime::WorkspaceArena::forCurrentThread();
    runtime::ArenaScope scope(arena);
    const size_t buf = static_cast<size_t>(seq * hd);
    const size_t sq = static_cast<size_t>(seq * seq);
    float *qb = arena.getFloats(buf);
    float *kb = arena.getFloats(buf);
    float *vb = arena.getFloats(buf);
    float *dcb = arena.getFloats(buf);
    float *dqb = arena.getFloats(buf);
    float *dkb = arena.getFloats(buf);
    float *dvb = arena.getFloats(buf);
    float *dp = arena.getFloats(sq);
    float *ds = arena.getFloats(sq);

    for (int64_t b = 0; b < s.batch; ++b) {
        for (int64_t h = 0; h < n_heads; ++h) {
            const int64_t kvh = h / group;
            gatherHead(q, qb, b, h, seq, n_heads, hd);
            gatherHead(k, kb, b, kvh, seq, n_kv, hd);
            gatherHead(v, vb, b, kvh, seq, n_kv, hd);
            gatherHead(dctx, dcb, b, h, seq, n_heads, hd);

            const float *prob = probs + (b * n_heads + h) * seq * seq;

            // dV = P^T dCtx ; dP = dCtx V^T.
            gemmTN(prob, dcb, dvb, seq, hd, seq);
            gemmNT(dcb, vb, dp, seq, seq, hd);

            // Softmax backward (scale folded): dS = P .* (dP - rowdot).
            kt.attnSoftmaxBwd(prob, dp, ds, seq, scale);

            // dQ = dS_raw K ; dK = dS_raw^T Q.
            gemmNN(ds, kb, dqb, seq, hd, seq);
            gemmTN(ds, qb, dkb, seq, hd, seq);

            scatterHeadAdd(dq, dqb, b, h, seq, n_heads, hd);
            scatterHeadAdd(dk, dkb, b, kvh, seq, n_kv, hd);
            scatterHeadAdd(dv, dvb, b, kvh, seq, n_kv, hd);
        }
    }
}

// ------------------------------------------------------ batched core

/** One batched attention invocation: dims plus every buffer the
 *  parallelFor lambdas touch (they capture a pointer to this). */
struct ParCtx
{
    AttnShape s;
    int64_t count;    ///< batch * n_heads, ordered (b, h)
    int64_t kv_count; ///< batch * n_kv_heads, ordered (b, kvh)
    int64_t group;    ///< n_heads / n_kv_heads
    float scale;
    const simd::KernelTable *kt;
    const float *q, *k, *v;
    const float *dctx;
    float *probs;
    float *ctx;
    float *qg, *kg, *vg;      ///< gathered [*, seq, hd] head slabs
    float *cg, *dcg;          ///< context / dContext head slabs
    float *dqg, *dkg, *dvg;   ///< per-head / per-kv-head grad slabs
    float *dp, *ds;           ///< [count, seq*seq] softmax scratch
    float *dq, *dk, *dv;
    // Bound per gather call (lambdas capture only the ctx pointer so
    // the parallelFor std::function stays within its SBO — no alloc).
    const float *gather_src;
    float *gather_dst;
};

/** Gather all query heads (items ordered (b, h) — identical to the
 *  serial loop's visit order) into a [count, seq, hd] slab. */
void
gatherQ(ParCtx *c, const float *src, float *dst)
{
    c->gather_src = src;
    c->gather_dst = dst;
    const ParCtx *pc = c;
    runtime::parallelFor(0, pc->count, 1, [pc](int64_t i0, int64_t i1) {
        const int64_t seq = pc->s.seq, hd = pc->s.head_dim;
        for (int64_t i = i0; i < i1; ++i)
            gatherHead(pc->gather_src, pc->gather_dst + i * seq * hd,
                       i / pc->s.n_heads, i % pc->s.n_heads, seq,
                       pc->s.n_heads, hd);
    });
}

/** Gather all kv heads (items ordered (b, kvh)) into a kv slab. */
void
gatherKV(ParCtx *c, const float *src, float *dst)
{
    c->gather_src = src;
    c->gather_dst = dst;
    const ParCtx *pc = c;
    runtime::parallelFor(
        0, pc->kv_count, 1, [pc](int64_t i0, int64_t i1) {
            const int64_t seq = pc->s.seq, hd = pc->s.head_dim;
            for (int64_t i = i0; i < i1; ++i)
                gatherHead(pc->gather_src,
                           pc->gather_dst + i * seq * hd,
                           i / pc->s.n_kv_heads, i % pc->s.n_kv_heads,
                           seq, pc->s.n_kv_heads, hd);
        });
}

/**
 * Batched schedule (SNIP_ATTN=par). Item i = b*n_heads + h walks the
 * same (b, h) order as the serial loop, and — because query heads are
 * numbered kvh*group + g — its kv head is simply i / group, so the
 * strided-batch GEMMs read the gathered slabs directly. All scratch
 * comes from workspace arenas: zero steady-state heap allocations.
 */
void
forwardPar(const AttnShape &s, const float *q, const float *k,
           const float *v, float *probs, float *ctx)
{
    ParCtx c;
    c.s = s;
    c.count = s.batch * s.n_heads;
    c.kv_count = s.batch * s.n_kv_heads;
    c.group = s.n_heads / s.n_kv_heads;
    c.scale = 1.0f / std::sqrt(static_cast<float>(s.head_dim));
    c.kt = &simd::activeKernels();
    c.q = q;
    c.k = k;
    c.v = v;
    c.probs = probs;
    c.ctx = ctx;

    const int64_t seq = s.seq, hd = s.head_dim;
    runtime::WorkspaceArena &arena =
        runtime::WorkspaceArena::forCurrentThread();
    runtime::ArenaScope scope(arena);
    c.qg = arena.getFloats(static_cast<size_t>(c.count * seq * hd));
    c.kg = arena.getFloats(static_cast<size_t>(c.kv_count * seq * hd));
    c.vg = arena.getFloats(static_cast<size_t>(c.kv_count * seq * hd));
    c.cg = arena.getFloats(static_cast<size_t>(c.count * seq * hd));

    gatherQ(&c, q, c.qg);
    gatherKV(&c, k, c.kg);
    gatherKV(&c, v, c.vg);
    const ParCtx *pc = &c;

    // Scores: one strided-batch NT over every (b,h); each kv head's
    // packed K panel is built once and streamed by its group.
    gemmBatchedNT(c.qg, seq * hd, c.kg, seq * hd, probs, seq * seq,
                  c.count, seq, seq, hd, c.group);

    // Fused scale + causal mask + softmax, one item per work unit.
    runtime::parallelFor(0, c.count, 1, [pc](int64_t i0, int64_t i1) {
        const int64_t sq = pc->s.seq * pc->s.seq;
        for (int64_t i = i0; i < i1; ++i)
            pc->kt->attnSoftmaxFwd(pc->probs + i * sq, pc->s.seq,
                                   pc->scale);
    });

    // Context: strided-batch NN against the shared V panels.
    gemmBatchedNN(probs, seq * seq, c.vg, seq * hd, c.cg, seq * hd,
                  c.count, seq, hd, seq, c.group);

    // Scatter the context slabs back; each (b,h) slice is written
    // exactly once, so items are disjoint.
    runtime::parallelFor(0, c.count, 1, [pc](int64_t i0, int64_t i1) {
        const int64_t seq2 = pc->s.seq, hd2 = pc->s.head_dim;
        const int64_t cols = pc->s.n_heads * hd2;
        for (int64_t i = i0; i < i1; ++i) {
            const int64_t b = i / pc->s.n_heads;
            const int64_t h = i % pc->s.n_heads;
            const float *src = pc->cg + i * seq2 * hd2;
            for (int64_t ss = 0; ss < seq2; ++ss) {
                float *dst =
                    pc->ctx + (b * seq2 + ss) * cols + h * hd2;
                for (int64_t cc = 0; cc < hd2; ++cc)
                    dst[cc] = src[ss * hd2 + cc];
            }
        }
    });
}

void
backwardPar(const AttnShape &s, const float *q, const float *k,
            const float *v, const float *probs, const float *dctx,
            float *dq, float *dk, float *dv)
{
    ParCtx c;
    c.s = s;
    c.count = s.batch * s.n_heads;
    c.kv_count = s.batch * s.n_kv_heads;
    c.group = s.n_heads / s.n_kv_heads;
    c.scale = 1.0f / std::sqrt(static_cast<float>(s.head_dim));
    c.kt = &simd::activeKernels();
    c.q = q;
    c.k = k;
    c.v = v;
    c.dctx = dctx;
    c.probs = const_cast<float *>(probs);
    c.dq = dq;
    c.dk = dk;
    c.dv = dv;

    const int64_t seq = s.seq, hd = s.head_dim;
    runtime::WorkspaceArena &arena =
        runtime::WorkspaceArena::forCurrentThread();
    runtime::ArenaScope scope(arena);
    c.qg = arena.getFloats(static_cast<size_t>(c.count * seq * hd));
    c.kg = arena.getFloats(static_cast<size_t>(c.kv_count * seq * hd));
    c.vg = arena.getFloats(static_cast<size_t>(c.kv_count * seq * hd));
    c.dcg = arena.getFloats(static_cast<size_t>(c.count * seq * hd));
    c.dqg = arena.getFloats(static_cast<size_t>(c.count * seq * hd));
    c.dkg = arena.getFloats(static_cast<size_t>(c.kv_count * seq * hd));
    c.dvg = arena.getFloats(static_cast<size_t>(c.kv_count * seq * hd));
    c.dp = arena.getFloats(static_cast<size_t>(c.count * seq * seq));
    // attnSoftmaxBwd supports ds aliasing dp (kernels.h), so dS
    // overwrites dP in place — one O(count*seq^2) slab, not two.
    c.ds = c.dp;

    gatherQ(&c, q, c.qg);
    gatherKV(&c, k, c.kg);
    gatherKV(&c, v, c.vg);
    gatherQ(&c, dctx, c.dcg);
    const ParCtx *pc = &c;

    // dV = P^T dCtx, reduced per kv head (group items add in fixed
    // ascending order — the GQA scatter stays bit-identical at any
    // thread count); dP = dCtx V^T against the shared V panels.
    gemmBatchedTN(c.probs, seq * seq, c.dcg, seq * hd, c.dvg, seq * hd,
                  c.count, seq, hd, seq, c.group);
    gemmBatchedNT(c.dcg, seq * hd, c.vg, seq * hd, c.dp, seq * seq,
                  c.count, seq, seq, hd, c.group);

    // Fused softmax backward per item.
    runtime::parallelFor(0, c.count, 1, [pc](int64_t i0, int64_t i1) {
        const int64_t sq = pc->s.seq * pc->s.seq;
        for (int64_t i = i0; i < i1; ++i)
            pc->kt->attnSoftmaxBwd(pc->probs + i * sq, pc->dp + i * sq,
                                   pc->ds + i * sq, pc->s.seq,
                                   pc->scale);
    });

    // dQ = dS K (shared K panels); dK = dS^T Q (per-kv-head reduce).
    gemmBatchedNN(c.ds, seq * seq, c.kg, seq * hd, c.dqg, seq * hd,
                  c.count, seq, hd, seq, c.group);
    gemmBatchedTN(c.ds, seq * seq, c.qg, seq * hd, c.dkg, seq * hd,
                  c.count, seq, hd, seq, c.group);

    // Scatter-add the slabs back: dq items and dk/dv kv items each own
    // disjoint slices of their outputs.
    runtime::parallelFor(0, c.count, 1, [pc](int64_t i0, int64_t i1) {
        const int64_t seq2 = pc->s.seq, hd2 = pc->s.head_dim;
        for (int64_t i = i0; i < i1; ++i)
            scatterHeadAdd(pc->dq, pc->dqg + i * seq2 * hd2,
                           i / pc->s.n_heads, i % pc->s.n_heads, seq2,
                           pc->s.n_heads, hd2);
    });
    runtime::parallelFor(0, c.kv_count, 1, [pc](int64_t i0, int64_t i1) {
        const int64_t seq2 = pc->s.seq, hd2 = pc->s.head_dim;
        for (int64_t i = i0; i < i1; ++i) {
            const int64_t b = i / pc->s.n_kv_heads;
            const int64_t kvh = i % pc->s.n_kv_heads;
            scatterHeadAdd(pc->dk, pc->dkg + i * seq2 * hd2, b, kvh,
                           seq2, pc->s.n_kv_heads, hd2);
            scatterHeadAdd(pc->dv, pc->dvg + i * seq2 * hd2, b, kvh,
                           seq2, pc->s.n_kv_heads, hd2);
        }
    });
}

// ------------------------------------------------------- decode core

/**
 * One decode invocation: everything the parallelFor lambda touches
 * (it captures a pointer to this, keeping the std::function inside
 * its SBO — no allocation).
 */
struct DecodeCtx
{
    const KvCacheHandle *kv;
    int64_t block;
    int64_t n_heads, n_kv, group, hd;
    float scale;
    const float *q; ///< post-RoPE queries [count, n_heads*hd]
    float *ctx;     ///< output pre-O     [count, n_heads*hd]
};

/**
 * Decode attention for items (row, kvh): gather the cached K/V head
 * into worker arena scratch and run each query head of the group as a
 * 1-row score/softmax/context chain. The softmax replicates the last
 * row of the scalar reference kernel (kernels_scalar.cpp) exactly —
 * scale + running max, scalar exp, double row-sum, float normalize —
 * so a decode row is bit-identical to row L-1 of the full-sequence
 * core.
 */
void
decodeAttendItems(const DecodeCtx *dc, int64_t i0, int64_t i1)
{
    const int64_t hd = dc->hd;
    runtime::WorkspaceArena &arena =
        runtime::WorkspaceArena::forCurrentThread();
    for (int64_t i = i0; i < i1; ++i) {
        const int64_t row = i / dc->n_kv;
        const int64_t kvh = i % dc->n_kv;
        const int64_t sid = dc->kv->seq_ids[row];
        const serve::KvCache &cache = *dc->kv->cache;
        const int64_t len = cache.length(sid, dc->block);

        runtime::ArenaScope scope(arena);
        float *kb = arena.getFloats(static_cast<size_t>(len * hd));
        float *vb = arena.getFloats(static_cast<size_t>(len * hd));
        float *sc = arena.getFloats(static_cast<size_t>(len));
        cache.gatherHeadK(sid, dc->block, kvh, kb);
        cache.gatherHeadV(sid, dc->block, kvh, vb);

        for (int64_t g = 0; g < dc->group; ++g) {
            const int64_t h = kvh * dc->group + g;
            const float *qh = dc->q + row * dc->n_heads * hd + h * hd;
            gemmNT(qh, kb, sc, 1, len, hd);

            float maxv = -1e30f;
            for (int64_t j = 0; j < len; ++j) {
                sc[j] *= dc->scale;
                maxv = std::max(maxv, sc[j]);
            }
            double denom = 0.0;
            for (int64_t j = 0; j < len; ++j) {
                sc[j] = std::exp(sc[j] - maxv);
                denom += sc[j];
            }
            const float inv =
                static_cast<float>(1.0 / std::max(denom, 1e-30));
            for (int64_t j = 0; j < len; ++j)
                sc[j] *= inv;

            float *ch = dc->ctx + row * dc->n_heads * hd + h * hd;
            gemmNN(sc, vb, ch, 1, hd, len);
        }
    }
}

void
validateShape(const AttnShape &s)
{
    SNIP_ASSERT(s.n_heads > 0 && s.n_kv_heads > 0,
                "attention needs positive head counts");
    SNIP_ASSERT(s.n_heads % s.n_kv_heads == 0, "n_heads (", s.n_heads,
                ") not divisible by n_kv_heads (", s.n_kv_heads, ")");
    SNIP_ASSERT(s.batch > 0 && s.seq > 0 && s.head_dim > 0,
                "attention dims must be positive");
}

} // namespace

// ---------------------------------------------------------- mode API

AttnMode
attnMode()
{
    int mode = g_attn_mode.load(std::memory_order_acquire);
    if (mode < 0) {
        AttnMode m = AttnMode::Par;
        const char *spec = runtime::envConfig().attn().cstrOrNull();
        if (!parseAttnMode(spec, &m)) {
            warn("unknown SNIP_ATTN value '", spec,
                 "' (expected par|serial); using par");
            m = AttnMode::Par;
        }
        mode = static_cast<int>(m);
        g_attn_mode.store(mode, std::memory_order_release);
    }
    return static_cast<AttnMode>(mode);
}

bool
setAttnModeByName(const char *name)
{
    AttnMode m;
    if (!parseAttnMode(name, &m))
        return false;
    g_attn_mode.store(static_cast<int>(m), std::memory_order_release);
    return true;
}

// --------------------------------------------------------- core API

void
attentionForwardCore(const AttnShape &s, const float *q, const float *k,
                     const float *v, float *probs, float *ctx)
{
    validateShape(s);
    telemetry::ScopedTimer timer(telemetry::Timer::AttnFwd);
    telemetry::count(telemetry::Counter::AttnFwdCalls);
    trace::TraceScope span(trace::Category::Attn, "attn_fwd", "batch",
                           s.batch, "heads", s.n_heads);
    if (attnMode() == AttnMode::Par)
        forwardPar(s, q, k, v, probs, ctx);
    else
        forwardSerial(s, q, k, v, probs, ctx);
}

void
attentionBackwardCore(const AttnShape &s, const float *q, const float *k,
                      const float *v, const float *probs,
                      const float *dctx, float *dq, float *dk, float *dv)
{
    validateShape(s);
    telemetry::ScopedTimer timer(telemetry::Timer::AttnBwd);
    telemetry::count(telemetry::Counter::AttnBwdCalls);
    trace::TraceScope span(trace::Category::Attn, "attn_bwd", "batch",
                           s.batch, "heads", s.n_heads);
    if (attnMode() == AttnMode::Par)
        backwardPar(s, q, k, v, probs, dctx, dq, dk, dv);
    else
        backwardSerial(s, q, k, v, probs, dctx, dq, dk, dv);
}

// ------------------------------------------------------------ module

Attention::Attention(const ModelConfig &config, int block, Rng &rng,
                     FakeQuantizer *quantizer, const Rope *rope)
    : config_(config), block_(block), rope_(rope)
{
    // GQA shape validation: a truncating group = n_heads / n_kv_heads
    // silently maps query heads onto the wrong kv head, and a
    // non-divisible d_model truncates headDim() — both produce garbage
    // output instead of failing. Catch them at construction.
    SNIP_ASSERT(config.n_heads > 0 && config.n_kv_heads > 0,
                "attention needs positive head counts");
    SNIP_ASSERT(config.d_model % config.n_heads == 0, "d_model (",
                config.d_model, ") not divisible by n_heads (",
                config.n_heads, ")");
    SNIP_ASSERT(config.n_heads % config.n_kv_heads == 0, "n_heads (",
                config.n_heads, ") not divisible by n_kv_heads (",
                config.n_kv_heads, ")");
    const int64_t d = config.d_model;
    const int64_t q_dim = config.n_heads * config.headDim();
    const int64_t kv_dim = config.kvDim();
    auto name = [block](const char *role) {
        return strformat("blk%02d.%s", block, role);
    };
    wq_ = std::make_unique<Linear>(name("Q"), q_dim, d, rng,
                                   config.init_std, quantizer);
    wk_ = std::make_unique<Linear>(name("K"), kv_dim, d, rng,
                                   config.init_std, quantizer);
    wv_ = std::make_unique<Linear>(name("V"), kv_dim, d, rng,
                                   config.init_std, quantizer);
    wo_ = std::make_unique<Linear>(name("O"), d, q_dim, rng,
                                   config.init_std, quantizer);
}

Linear &
Attention::linear(LayerRole role)
{
    switch (role) {
        case LayerRole::Q:
            return *wq_;
        case LayerRole::K:
            return *wk_;
        case LayerRole::V:
            return *wv_;
        case LayerRole::O:
            return *wo_;
        default:
            panic("not an attention role");
    }
}

ParamList
Attention::params()
{
    return {wq_->param(), wk_->param(), wv_->param(), wo_->param()};
}

int64_t
Attention::savedStateBytes() const
{
    return static_cast<int64_t>(sizeof(float)) *
           (q_.numel() + k_.numel() + v_.numel() + probs_.numel() +
            ctx_.numel());
}

Tensor
Attention::forward(const Tensor &x, int64_t batch, int64_t seq,
                   ForwardMode mode, const KvCacheHandle &kv)
{
    SNIP_ASSERT(mode != ForwardMode::Decode,
                "Decode is served by decodeForward(), not forward()");
    last_mode_ = mode;
    batch_ = batch;
    seq_ = seq;
    const int64_t hd = config_.headDim();
    const int64_t n_heads = config_.n_heads;
    const int64_t n_kv = config_.n_kv_heads;

    q_ = wq_->forward(x);
    k_ = wk_->forward(x);
    v_ = wv_->forward(x);
    rope_->apply(q_, batch, seq, n_heads);
    rope_->apply(k_, batch, seq, n_kv);

    if (mode == ForwardMode::Prefill) {
        SNIP_ASSERT(kv.valid() && kv.count == batch,
                    "prefill needs a cache handle covering every batch "
                    "row");
        const int64_t kv_dim = config_.kvDim();
        const float *pk = k_.data();
        const float *pv = v_.data();
        for (int64_t b = 0; b < batch; ++b) {
            const int64_t sid = kv.seq_ids[b];
            SNIP_ASSERT(kv.cache->length(sid, block_) == 0,
                        "prefill into a non-empty sequence ", sid);
            for (int64_t ss = 0; ss < seq; ++ss) {
                const int64_t row = b * seq + ss;
                kv.cache->append(sid, block_, pk + row * kv_dim,
                                 pv + row * kv_dim);
            }
        }
    }

    probs_ = Tensor(batch * n_heads * seq, seq);
    ctx_ = Tensor(batch * seq, n_heads * hd);
    const AttnShape s{batch, seq, n_heads, n_kv, hd};
    attentionForwardCore(s, q_.data(), k_.data(), v_.data(),
                         probs_.data(), ctx_.data());
    Tensor y = wo_->forward(ctx_);

    if (mode == ForwardMode::Prefill) {
        // A prefill is never backpropagated: drop the saved state now
        // instead of pinning O(B*H*S^2) probabilities per block.
        q_ = Tensor();
        k_ = Tensor();
        v_ = Tensor();
        probs_ = Tensor();
        ctx_ = Tensor();
        batch_ = 0;
        seq_ = 0;
    }
    return y;
}

void
Attention::decodeForward(const float *x, int64_t count,
                         const KvCacheHandle &kv, float *y)
{
    SNIP_ASSERT(kv.valid() && kv.count == count,
                "decode needs a cache handle covering every row");
    last_mode_ = ForwardMode::Decode;
    const int64_t hd = config_.headDim();
    const int64_t n_heads = config_.n_heads;
    const int64_t n_kv = config_.n_kv_heads;
    const int64_t q_dim = n_heads * hd;
    const int64_t kv_dim = config_.kvDim();

    runtime::WorkspaceArena &arena =
        runtime::WorkspaceArena::forCurrentThread();
    runtime::ArenaScope scope(arena);
    float *q = arena.getFloats(static_cast<size_t>(count * q_dim));
    float *kb = arena.getFloats(static_cast<size_t>(count * kv_dim));
    float *vb = arena.getFloats(static_cast<size_t>(count * kv_dim));
    float *ctx = arena.getFloats(static_cast<size_t>(count * q_dim));

    wq_->forwardInference(x, count, q);
    wk_->forwardInference(x, count, kb);
    wv_->forwardInference(x, count, vb);

    // Rotate at each sequence's current position, then append the new
    // K/V rows serially (the cache is not thread-safe; gathers below
    // run against an immutable cache).
    for (int64_t i = 0; i < count; ++i) {
        const int64_t sid = kv.seq_ids[i];
        const int64_t pos = kv.cache->length(sid, block_);
        rope_->applyRow(q + i * q_dim, n_heads, pos);
        rope_->applyRow(kb + i * kv_dim, n_kv, pos);
        kv.cache->append(sid, block_, kb + i * kv_dim,
                         vb + i * kv_dim);
    }

    DecodeCtx dc;
    dc.kv = &kv;
    dc.block = block_;
    dc.n_heads = n_heads;
    dc.n_kv = n_kv;
    dc.group = n_heads / n_kv;
    dc.hd = hd;
    dc.scale = 1.0f / std::sqrt(static_cast<float>(hd));
    dc.q = q;
    dc.ctx = ctx;
    const DecodeCtx *pdc = &dc;
    runtime::parallelFor(0, count * n_kv, 1,
                         [pdc](int64_t i0, int64_t i1) {
                             decodeAttendItems(pdc, i0, i1);
                         });

    wo_->forwardInference(ctx, count, y);
}

Tensor
Attention::backward(const Tensor &dy)
{
    SNIP_ASSERT(last_mode_ == ForwardMode::Train,
                "Attention::backward after a ",
                forwardModeName(last_mode_),
                "-mode forward: inference modes save no state and "
                "cannot be backpropagated");
    SNIP_ASSERT(batch_ > 0, "backward before forward");
    const int64_t batch = batch_, seq = seq_;
    const int64_t hd = config_.headDim();
    const int64_t n_heads = config_.n_heads;
    const int64_t n_kv = config_.n_kv_heads;

    Tensor dctx = wo_->backward(dy);

    Tensor dq(batch * seq, n_heads * hd);
    Tensor dk(batch * seq, n_kv * hd);
    Tensor dv(batch * seq, n_kv * hd);

    const AttnShape s{batch, seq, n_heads, n_kv, hd};
    attentionBackwardCore(s, q_.data(), k_.data(), v_.data(),
                          probs_.data(), dctx.data(), dq.data(),
                          dk.data(), dv.data());

    // Undo RoPE on the gradients (rotations are orthogonal).
    rope_->apply(dq, batch, seq, n_heads, /*inverse=*/true);
    rope_->apply(dk, batch, seq, n_kv, /*inverse=*/true);

    // The saved forward state is no longer needed: release it here so
    // O(B*H*S^2) probabilities (and q/k/v/ctx) are not pinned between
    // steps. The next backward() needs a fresh forward() first.
    q_ = Tensor();
    k_ = Tensor();
    v_ = Tensor();
    probs_ = Tensor();
    ctx_ = Tensor();
    batch_ = 0;
    seq_ = 0;

    Tensor dx = wq_->backward(dq);
    Tensor dxk = wk_->backward(dk);
    Tensor dxv = wv_->backward(dv);
    const float *pk = dxk.data();
    const float *pv = dxv.data();
    float *px = dx.data();
    for (int64_t i = 0; i < dx.numel(); ++i)
        px[i] += pk[i] + pv[i];
    return dx;
}

} // namespace snip
