#include "nn/embedding.h"

#include <cstring>

#include "util/logging.h"
#include "util/rng.h"

namespace snip {

Embedding::Embedding(std::string name, int64_t vocab, int64_t dim,
                     Rng &rng, float init_std)
    : name_(std::move(name)),
      vocab_(vocab),
      dim_(dim),
      table_(Tensor::randn({vocab, dim}, rng, init_std)),
      grad_table_(vocab, dim)
{
}

Tensor
Embedding::forward(const std::vector<int32_t> &tokens)
{
    saved_tokens_ = tokens;
    Tensor out(static_cast<int64_t>(tokens.size()), dim_);
    const float *pt = table_.data();
    float *po = out.data();
    for (size_t i = 0; i < tokens.size(); ++i) {
        int32_t id = tokens[i];
        SNIP_ASSERT(id >= 0 && id < vocab_, "token id out of range: ", id);
        std::memcpy(po + static_cast<int64_t>(i) * dim_, pt + id * dim_,
                    sizeof(float) * static_cast<size_t>(dim_));
    }
    return out;
}

void
Embedding::backward(const Tensor &d_out)
{
    SNIP_ASSERT(d_out.rank() == 2 &&
                d_out.size(0) ==
                    static_cast<int64_t>(saved_tokens_.size()) &&
                d_out.size(1) == dim_);
    const float *pd = d_out.data();
    float *pg = grad_table_.data();
    for (size_t i = 0; i < saved_tokens_.size(); ++i) {
        int32_t id = saved_tokens_[i];
        const float *src = pd + static_cast<int64_t>(i) * dim_;
        float *dst = pg + id * dim_;
        for (int64_t c = 0; c < dim_; ++c)
            dst[c] += src[c];
    }
}

} // namespace snip
