/**
 * @file
 * Root-mean-square layer normalization (the Llama norm).
 *
 * RMSNorm stays in high precision per the paper's framework (Sec. 2.2):
 * only linear-layer GEMMs are quantized.
 */
#ifndef SNIP_NN_RMSNORM_H
#define SNIP_NN_RMSNORM_H

#include <string>
#include <vector>

#include "nn/param.h"
#include "tensor/tensor.h"

namespace snip {

/** y = x / rms(x) * gain, rowwise; gain is learnable. */
class RMSNorm
{
  public:
    RMSNorm(std::string name, int64_t dim, float eps = 1e-5f);

    /** Normalize each row of x [rows, dim]. */
    Tensor forward(const Tensor &x);

    /**
     * Inference-only forward on raw buffers: normalizes @p rows rows
     * of @p x into @p y (may not alias) without saving state or
     * allocating. Row results are bit-identical to forward().
     */
    void forwardInference(const float *x, int64_t rows, float *y) const;

    /** Backprop; accumulates gain gradient, returns dX. */
    Tensor backward(const Tensor &dy);

    int64_t dim() const { return dim_; }

    Tensor &gain() { return gain_; }
    Tensor &grad() { return grad_gain_; }

    void zeroGrad() { grad_gain_.zero(); }

    ParamRef param() { return {name_, &gain_, &grad_gain_}; }

  private:
    std::string name_;
    int64_t dim_;
    float eps_;
    Tensor gain_;
    Tensor grad_gain_;
    Tensor saved_x_;
    std::vector<float> saved_inv_rms_;
};

} // namespace snip

#endif // SNIP_NN_RMSNORM_H
