/**
 * @file
 * Causal multi-head self-attention with RoPE and optional grouped-query
 * attention (GQA).
 *
 * The four projections (Q, K, V, O) are quantizable Linear layers; the
 * attention math itself (scores, softmax, context) stays in high
 * precision, as in the paper's framework (Sec. 2.2).
 *
 * The attention math runs one of two schedules (SNIP_ATTN):
 *
 *   SNIP_ATTN=par     batched runtime (default): the (batch, head)
 *                     iteration space fans over runtime::parallelFor
 *                     with deterministic ownership (workers own whole
 *                     (b,h) slices; GQA dK/dV reduce per kv head in a
 *                     fixed sequential order), the per-head GEMMs run
 *                     as single strided-batch calls
 *                     (tensor/gemm.h gemmBatched*), and all scratch
 *                     lives in per-thread workspace arenas — zero
 *                     steady-state heap allocations in the core.
 *   SNIP_ATTN=serial  the historical per-(b,h) loop, kept for A/B:
 *                     per-head GEMMs through the ordinary entry
 *                     points, same arena scratch.
 *
 * Both schedules share the fused scale+mask+softmax kernels
 * (simd/kernels.h, bit-exact across backends and against the old
 * open-coded loops), and both are bit-identical for any thread count.
 * par == serial bit for bit whenever the per-item GEMMs take the same
 * packed-or-not path (always under SNIP_GEMM_PACK=on or =off); under
 * =auto the batched heuristic may pack small per-head GEMMs the
 * per-item heuristic would not, which changes low-order GEMM bits
 * exactly as the documented packed-vs-unpacked contract allows.
 */
#ifndef SNIP_NN_ATTENTION_H
#define SNIP_NN_ATTENTION_H

#include <memory>

#include "nn/forward_mode.h"
#include "nn/layer_registry.h"
#include "nn/linear.h"
#include "nn/rope.h"

namespace snip {

/** SNIP_ATTN spellings. */
enum class AttnMode
{
    Par,
    Serial,
};

/** The active attention schedule (resolves SNIP_ATTN on first call). */
AttnMode attnMode();

/** Select a schedule programmatically ("par" | "serial"); false and
 *  unchanged for unknown names. For tests and benches; must not race
 *  with in-flight attention calls. */
bool setAttnModeByName(const char *name);

/** Dimensions of one attention invocation (head_dim applies to both
 *  query and kv heads; n_heads must be a multiple of n_kv_heads). */
struct AttnShape
{
    int64_t batch;
    int64_t seq;
    int64_t n_heads;
    int64_t n_kv_heads;
    int64_t head_dim;
};

/**
 * The attention core: scores, scale+causal-mask+softmax, context —
 * everything between the QKV projections and the output projection.
 * Exposed so the zero-allocation harness (tests/test_workspace.cpp)
 * and the benches can drive it on preallocated buffers.
 *
 * @param q     post-RoPE queries   [batch*seq, n_heads*head_dim]
 * @param k     post-RoPE keys      [batch*seq, n_kv_heads*head_dim]
 * @param v     values              [batch*seq, n_kv_heads*head_dim]
 * @param probs softmax probabilities out, [batch*n_heads*seq, seq]
 * @param ctx   attention output pre-O, [batch*seq, n_heads*head_dim]
 */
void attentionForwardCore(const AttnShape &s, const float *q,
                          const float *k, const float *v, float *probs,
                          float *ctx);

/**
 * Backward through the attention core. dq/dk/dv must be zeroed by the
 * caller (gradients are accumulated, pre-inverse-RoPE); shapes match
 * q/k/v, @p dctx matches ctx.
 */
void attentionBackwardCore(const AttnShape &s, const float *q,
                           const float *k, const float *v,
                           const float *probs, const float *dctx,
                           float *dq, float *dk, float *dv);

/** Self-attention sub-block of one transformer block. */
class Attention
{
  public:
    /**
     * @param config    model hyperparameters (GQA shape validated here:
     *                  positive head counts, d_model % n_heads == 0,
     *                  n_heads % n_kv_heads == 0)
     * @param block     owning block index (for layer names)
     * @param rng       weight init stream
     * @param quantizer shared fake quantizer for the projections
     * @param rope      shared rotary tables (non-owning, must outlive)
     */
    Attention(const ModelConfig &config, int block, Rng &rng,
              FakeQuantizer *quantizer, const Rope *rope);

    /**
     * x is [batch*seq, d_model]; returns the same shape.
     *
     * Train runs the historical path unchanged (bit-identical to the
     * pre-ForwardMode signature). Prefill additionally appends every
     * post-RoPE K/V row to @p kv (cache per kv.seq_ids[b], which must
     * be freshly begun) and releases the saved backward state — a
     * prefill cannot be backpropagated. Decode is not served here; use
     * decodeForward().
     */
    Tensor forward(const Tensor &x, int64_t batch, int64_t seq,
                   ForwardMode mode, const KvCacheHandle &kv = {});

    /** Deprecated training-only signature; forwards to Train mode. */
    Tensor
    forward(const Tensor &x, int64_t batch, int64_t seq)
    {
        return forward(x, batch, seq, ForwardMode::Train);
    }

    /**
     * Single-token decode step for @p count independent sequences.
     * x/y are [count, d_model] raw buffers (arena-friendly: no Tensor
     * allocation, no saved state, zero heap allocations after
     * warm-up). For each row i the query attends over the full cached
     * history of kv.seq_ids[i] plus the new token, whose K/V rows are
     * appended to the cache. Output rows are bit-identical to the last
     * row of a Train/Prefill forward over the same prefix under
     * SNIP_GEMM_PACK=off with an FP32-mode cache.
     */
    void decodeForward(const float *x, int64_t count,
                       const KvCacheHandle &kv, float *y);

    /**
     * Backprop through projections and attention math. Releases the
     * saved forward state (q/k/v, probabilities, context) on return,
     * so peak memory drops between steps; a new forward() must precede
     * the next backward(). Hard error unless the preceding forward ran
     * in Train mode.
     */
    Tensor backward(const Tensor &dy);

    /** Access a projection by role (Q/K/V/O only). */
    Linear &linear(LayerRole role);

    /** Parameters of the four projections. */
    ParamList params();

    /** Bytes pinned by the saved forward state (q/k/v, probs, ctx):
     *  positive after forward(), 0 after backward() releases it. */
    int64_t savedStateBytes() const;

  private:
    ModelConfig config_;
    int block_;
    const Rope *rope_;
    std::unique_ptr<Linear> wq_, wk_, wv_, wo_;

    // Saved forward state (released at the end of backward()).
    ForwardMode last_mode_ = ForwardMode::Train;
    int64_t batch_ = 0, seq_ = 0;
    Tensor q_, k_, v_;   ///< post-RoPE projections, [T, dims]
    Tensor probs_;       ///< softmax probabilities, [B*H*S, S]
    Tensor ctx_;         ///< attention output pre-O, [T, H*hd]
};

} // namespace snip

#endif // SNIP_NN_ATTENTION_H
