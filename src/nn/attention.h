/**
 * @file
 * Causal multi-head self-attention with RoPE and optional grouped-query
 * attention (GQA).
 *
 * The four projections (Q, K, V, O) are quantizable Linear layers; the
 * attention math itself (scores, softmax, context) stays in high
 * precision, as in the paper's framework (Sec. 2.2).
 */
#ifndef SNIP_NN_ATTENTION_H
#define SNIP_NN_ATTENTION_H

#include <memory>

#include "nn/layer_registry.h"
#include "nn/linear.h"
#include "nn/rope.h"

namespace snip {

/** Self-attention sub-block of one transformer block. */
class Attention
{
  public:
    /**
     * @param config    model hyperparameters
     * @param block     owning block index (for layer names)
     * @param rng       weight init stream
     * @param quantizer shared fake quantizer for the projections
     * @param rope      shared rotary tables (non-owning, must outlive)
     */
    Attention(const ModelConfig &config, int block, Rng &rng,
              FakeQuantizer *quantizer, const Rope *rope);

    /** x is [batch*seq, d_model]; returns the same shape. */
    Tensor forward(const Tensor &x, int64_t batch, int64_t seq);

    /** Backprop through projections and attention math. */
    Tensor backward(const Tensor &dy);

    /** Access a projection by role (Q/K/V/O only). */
    Linear &linear(LayerRole role);

    /** Parameters of the four projections. */
    ParamList params();

  private:
    ModelConfig config_;
    const Rope *rope_;
    std::unique_ptr<Linear> wq_, wk_, wv_, wo_;

    // Saved forward state.
    int64_t batch_ = 0, seq_ = 0;
    Tensor q_, k_, v_;   ///< post-RoPE projections, [T, dims]
    Tensor probs_;       ///< softmax probabilities, [B*H*S, S]
    Tensor ctx_;         ///< attention output pre-O, [T, H*hd]
};

} // namespace snip

#endif // SNIP_NN_ATTENTION_H
