/**
 * @file
 * The full Llama-like language model (Fig. 4), with the instrumentation
 * hooks SNIP's statistics pipeline needs:
 *   - per-linear precision schemes (Fig. 5),
 *   - a LinearTap broadcast to all quantizable layers (Step 1, Fig. 6),
 *   - Gaussian noise injection at the last layer in the forward or the
 *     backward pass (Steps 2-3, Fig. 6).
 */
#ifndef SNIP_NN_MODEL_H
#define SNIP_NN_MODEL_H

#include <memory>
#include <vector>

#include "nn/block.h"
#include "nn/embedding.h"
#include "nn/loss.h"
#include "util/rng.h"

namespace snip {

/**
 * Embedding -> N transformer blocks -> final RMSNorm -> LM head.
 *
 * The LM head and embedding stay in high precision (the paper quantizes
 * only the linear layers inside transformer blocks, Sec. 2.1).
 */
class LlamaModel
{
  public:
    /**
     * @param config model hyperparameters (validated here)
     * @param seed   initialization seed; also seeds the fake quantizer's
     *               stochastic-rounding stream and the noise stream
     */
    LlamaModel(const ModelConfig &config, uint64_t seed);

    /**
     * Run the forward pass for @p tokens laid out as batch x seq
     * (flattened row-major). Returns logits [batch*seq, vocab].
     *
     * Train saves the state backward() needs. Prefill additionally
     * populates @p kv (one freshly-begun sequence per batch row, ids
     * in kv.seq_ids) with every layer's post-RoPE K/V, and saves no
     * backward state. Decode requires seq == 1 and routes to
     * decodeStep().
     */
    Tensor forward(const std::vector<int32_t> &tokens, int64_t batch,
                   int64_t seq, ForwardMode mode,
                   const KvCacheHandle &kv = {});

    /** Deprecated training-only signature; forwards to Train mode. */
    Tensor
    forward(const std::vector<int32_t> &tokens, int64_t batch,
            int64_t seq)
    {
        return forward(tokens, batch, seq, ForwardMode::Train);
    }

    /**
     * One decode step for @p count independent sequences: tokens[i] is
     * the next input token of sequence kv.seq_ids[i]; the next-token
     * logits land in @p logits [count, vocab]. K/V rows for the new
     * tokens are appended to the cache. Zero heap allocations after
     * warm-up (all scratch comes from workspace arenas).
     */
    void decodeStep(const int32_t *tokens, int64_t count,
                    const KvCacheHandle &kv, float *logits);

    /** Backprop from dLogits through the whole model. */
    void backward(const Tensor &dlogits);

    /** Convenience: forward + cross-entropy. Does not run backward. */
    LossResult forwardLoss(const std::vector<int32_t> &tokens,
                           const std::vector<int32_t> &targets,
                           int64_t batch, int64_t seq);

    /** Zero every parameter gradient. */
    void zeroGrad();

    /** All trainable parameters (embedding, norms, linears, head). */
    ParamList params();

    /** Quantizable linear layer by global index (block*7 + role). */
    Linear &linear(int idx);

    /** Apply a whole-model precision scheme (one entry per linear). */
    void setScheme(const PrecisionScheme &scheme);

    /** Currently applied scheme. */
    PrecisionScheme currentScheme() const;

    /** Attach @p tap to every quantizable linear (nullptr to detach). */
    void setTap(LinearTap *tap);

    /**
     * Inject N(0, eps^2/d * I) noise into the last block's output during
     * the next forward passes (Step 3 of Fig. 6). 0 disables.
     */
    void setForwardNoise(double eps) { fwd_noise_eps_ = eps; }

    /**
     * Inject noise into the gradient entering the last block during the
     * next backward passes (Step 2 of Fig. 6). 0 disables.
     */
    void setBackwardNoise(double eps) { bwd_noise_eps_ = eps; }

    /** Norm of the most recently injected noise (for Theorem 4.2). */
    double lastNoiseNorm() const { return last_noise_norm_; }

    /**
     * Norm of the last block's output during the most recent forward
     * pass, pre-noise (the forward injection point). Always recorded.
     */
    double lastHiddenNorm() const { return last_hidden_norm_; }

    /**
     * Norm of the gradient entering the last block during the most
     * recent backward pass, pre-noise (the backward injection point).
     */
    double lastHiddenGradNorm() const { return last_hidden_grad_norm_; }

    const ModelConfig &config() const { return config_; }
    const LayerRegistry &registry() const { return registry_; }

    /** The shared fake quantizer (tests reseed its stream). */
    FakeQuantizer &quantizer() { return quantizer_; }
    const FakeQuantizer &quantizer() const { return quantizer_; }

    /** Noise stream used for Steps 2-3 probes. */
    Rng &noiseRng() { return noise_rng_; }
    const Rng &noiseRng() const { return noise_rng_; }

  private:
    ModelConfig config_;
    LayerRegistry registry_;
    FakeQuantizer quantizer_;
    Rng noise_rng_;

    std::unique_ptr<Embedding> embedding_;
    std::vector<std::unique_ptr<TransformerBlock>> blocks_;
    std::unique_ptr<RMSNorm> final_norm_;
    std::unique_ptr<Linear> lm_head_;
    std::unique_ptr<Rope> rope_;

    int64_t batch_ = 0, seq_ = 0;
    double fwd_noise_eps_ = 0.0;
    double bwd_noise_eps_ = 0.0;
    double last_noise_norm_ = 0.0;
    double last_hidden_norm_ = 0.0;
    double last_hidden_grad_norm_ = 0.0;
};

} // namespace snip

#endif // SNIP_NN_MODEL_H
