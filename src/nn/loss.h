/**
 * @file
 * Softmax cross-entropy over the vocabulary.
 */
#ifndef SNIP_NN_LOSS_H
#define SNIP_NN_LOSS_H

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace snip {

/** Loss value plus the gradient with respect to the logits. */
struct LossResult
{
    /** Mean negative log-likelihood over non-ignored positions. */
    double loss = 0.0;
    /** dLoss/dLogits, same shape as the logits. */
    Tensor dlogits;
    /** Positions that contributed (targets != ignore_index). */
    int64_t valid_count = 0;
};

/**
 * Mean token cross-entropy.
 *
 * @param logits       [T, vocab]
 * @param targets      T target ids; entries equal to @p ignore_index are
 *                     skipped (used to mask prompt tokens in eval)
 * @param ignore_index sentinel for masked positions
 */
LossResult softmaxCrossEntropy(const Tensor &logits,
                               const std::vector<int32_t> &targets,
                               int32_t ignore_index = -1);

/**
 * Sum of log-probabilities of @p targets under @p logits restricted to
 * rows [row0, row1) — the scoring primitive of the eval harness
 * (LM-Evaluation-Harness-style option log-likelihood).
 */
double sequenceLogProb(const Tensor &logits,
                       const std::vector<int32_t> &targets, int64_t row0,
                       int64_t row1);

} // namespace snip

#endif // SNIP_NN_LOSS_H
