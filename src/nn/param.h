/**
 * @file
 * Named references to trainable parameter tensors.
 *
 * Modules own their weight and gradient storage; the optimizer and the
 * checkpointer operate on flat lists of these non-owning references.
 */
#ifndef SNIP_NN_PARAM_H
#define SNIP_NN_PARAM_H

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace snip {

/** Non-owning view of one trainable parameter and its gradient. */
struct ParamRef
{
    std::string name;
    Tensor *value = nullptr;
    Tensor *grad = nullptr;
};

/** Convenience alias for a module's full parameter list. */
using ParamList = std::vector<ParamRef>;

} // namespace snip

#endif // SNIP_NN_PARAM_H
