#include "quant/quantizer.h"

#include <cmath>
#include <cstring>

#include "runtime/thread_pool.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "util/string_util.h"

namespace snip {

std::string
QuantConfig::describe() const
{
    return strformat("%s/%s%d/%s", format.name.c_str(),
                     granularityName(scaling.granularity), scaling.block,
                     roundingName(rounding));
}

const char *
precisionName(Precision p)
{
    switch (p) {
        case Precision::BF16:
            return "BF16";
        case Precision::FP8:
            return "FP8";
        case Precision::FP6:
            return "FP6";
        case Precision::FP4:
            return "FP4";
    }
    return "?";
}

int
precisionBits(Precision p)
{
    switch (p) {
        case Precision::BF16:
            return 16;
        case Precision::FP8:
            return 8;
        case Precision::FP6:
            return 6;
        case Precision::FP4:
            return 4;
    }
    return 0;
}

const char *
tensorRoleName(TensorRole role)
{
    switch (role) {
        case TensorRole::Activation:
            return "activation";
        case TensorRole::Weight:
            return "weight";
        case TensorRole::OutputGrad:
            return "output_grad";
    }
    return "?";
}

namespace {
Rounding g_fp4_grad_rounding = Rounding::Stochastic;
} // namespace

void
setFp4GradRounding(Rounding rounding)
{
    g_fp4_grad_rounding = rounding;
}

Rounding
fp4GradRounding()
{
    return g_fp4_grad_rounding;
}

QuantConfig
rolePolicy(Precision precision, TensorRole role)
{
    QuantConfig cfg;
    switch (precision) {
        case Precision::BF16:
            cfg.format = bf16();
            cfg.scaling = {Granularity::Tensorwise, 0};
            cfg.rounding = Rounding::Nearest;
            return cfg;
        case Precision::FP8:
            cfg.format = (role == TensorRole::OutputGrad) ? fp8E5m2()
                                                          : fp8E4m3();
            break;
        case Precision::FP6:
            cfg.format = fp6E3m2();
            break;
        case Precision::FP4:
            cfg.format = fp4E2m1();
            break;
    }
    if (role == TensorRole::Weight) {
        cfg.scaling = {Granularity::Blockwise, 128};
    } else {
        cfg.scaling = {Granularity::Tilewise, 128};
    }
    cfg.rounding = (precision == Precision::FP4 &&
                    role == TensorRole::OutputGrad)
                       ? g_fp4_grad_rounding
                       : Rounding::Nearest;
    return cfg;
}

FakeQuantizer::FakeQuantizer(uint64_t seed) : rng_(seed) {}

Tensor
FakeQuantizer::quantize(const Tensor &t, const QuantConfig &cfg)
{
    Tensor out = t;
    quantizeInPlace(out, cfg);
    return out;
}

void
FakeQuantizer::quantizeInPlace(Tensor &t, const QuantConfig &cfg)
{
    const simd::KernelTable &kt = simd::activeKernels();
    if (cfg.format.name == "bf16" && cfg.rounding == Rounding::Nearest) {
        // Fast path: bf16 needs no rescaling, so the whole tensor is
        // one tight round-to-nearest-even sweep (exact bit
        // manipulation in every backend).
        float *p = t.data();
        runtime::parallelFor(0, t.numel(), 1 << 15,
                             [p, &kt](int64_t i0, int64_t i1) {
                                 kt.bf16Round(p + i0, i1 - i0);
                             });
        return;
    }
    int64_t rows, cols;
    matrixView(t, rows, cols);
    if (rows == 0 || cols == 0)
        return;
    float *p = t.data();
    const double fmt_max = cfg.format.maxValue();
    const bool stochastic = cfg.rounding == Rounding::Stochastic;
    // Stochastic rounding draws from one per-region stream seeded by
    // (call key, region index): the member stream advances exactly once
    // per call (so repeated calls remain one deterministic sequence)
    // and every region's draws are independent of how regions are
    // scheduled across threads — results are bit-identical for any
    // thread count.
    const uint64_t call_key = stochastic ? rng_.nextU64() : 0;

    const std::vector<ScalingRegion> regions =
        collectRegions(rows, cols, cfg.scaling);
    const QuantGrid grid = quantGrid(cfg.format);
    runtime::parallelFor(
        0, static_cast<int64_t>(regions.size()), 8,
        [&](int64_t g0, int64_t g1) {
            const simd::KernelTable &kt = simd::activeKernels();
            for (int64_t g = g0; g < g1; ++g) {
                const ScalingRegion &reg =
                    regions[static_cast<size_t>(g)];
                double max_abs = 0.0;
                for (int64_t r = reg.r0; r < reg.r1; ++r) {
                    max_abs = std::max(
                        max_abs, static_cast<double>(kt.maxAbs(
                                     p + r * cols + reg.c0,
                                     reg.c1 - reg.c0)));
                }
                const double scale = regionScale(max_abs, fmt_max);
                const float fscale = static_cast<float>(scale);
                const float inv = static_cast<float>(1.0 / scale);
                if (!stochastic) {
                    // Nearest rounding takes the vectorized grid-snap
                    // kernel (bit-exact across backends).
                    for (int64_t r = reg.r0; r < reg.r1; ++r) {
                        kt.quantizeNearest(p + r * cols + reg.c0,
                                           reg.c1 - reg.c0, cfg.format,
                                           grid, fscale, inv);
                    }
                    continue;
                }
                // Stochastic rounding stays scalar: the per-region RNG
                // stream consumes one draw per element in row-major
                // order, and that sequence is part of the determinism
                // contract.
                Rng region_rng(call_key +
                               0x9E3779B97F4A7C15ull *
                                   (static_cast<uint64_t>(g) + 1));
                for (int64_t r = reg.r0; r < reg.r1; ++r) {
                    float *row = p + r * cols;
                    for (int64_t c = reg.c0; c < reg.c1; ++c) {
                        row[c] = quantizeValue(row[c] * fscale,
                                               cfg.format, cfg.rounding,
                                               &region_rng) *
                                 inv;
                    }
                }
            }
        });
}

} // namespace snip
