/**
 * @file
 * Scaling-factor granularities for fake quantization.
 *
 * Low-precision formats have tiny dynamic ranges, so every region of a
 * tensor is rescaled such that its max-|value| maps to the format's max
 * representable value before quantization (Sec. 2.3):
 *
 *     scale = FPX_MAX / max(abs(region));  q = Q(x*scale) / scale
 *
 * Following the DeepSeek-V3 recipe the paper adopts, activations and
 * gradients use 1xNB tile-wise scaling and weights NBxNB block-wise
 * scaling with NB = 128; tensor-, row- and column-wise granularities are
 * also provided for ablations.
 */
#ifndef SNIP_QUANT_SCALING_H
#define SNIP_QUANT_SCALING_H

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace snip {

/** Region shape that shares one scaling factor. */
enum class Granularity
{
    Tensorwise,  ///< one scale for the whole tensor
    Rowwise,     ///< one scale per row
    Columnwise,  ///< one scale per column
    Blockwise,   ///< one scale per NB x NB block
    Tilewise,    ///< one scale per 1 x NB tile (DeepSeek-V3 activations)
};

/** Name for logging/tables. */
const char *granularityName(Granularity g);

/** Granularity plus its block edge (ignored for tensor/row/column). */
struct ScalingSpec
{
    Granularity granularity = Granularity::Tensorwise;
    int block = 128;
};

/**
 * Invoke @p fn once per scaling region of a tensor viewed as a
 * rows x cols matrix. The callback receives a list of flat element
 * offsets... — to avoid allocation it instead receives (row0, row1,
 * col0, col1) half-open bounds of the region.
 */
void forEachRegion(
    int64_t rows, int64_t cols, const ScalingSpec &spec,
    const std::function<void(int64_t, int64_t, int64_t, int64_t)> &fn);

/** One scaling region as half-open (row, col) bounds. */
struct ScalingRegion
{
    int64_t r0 = 0, r1 = 0, c0 = 0, c1 = 0;
};

/**
 * Materialize the regions forEachRegion() would visit, in the same
 * order. Regions are disjoint, so parallel sweeps (runtime/) can
 * process them independently; the returned order is the canonical
 * region index used to derive per-region stochastic-rounding streams.
 */
std::vector<ScalingRegion> collectRegions(int64_t rows, int64_t cols,
                                          const ScalingSpec &spec);

/**
 * Scale for one region: fmt_max / maxabs. Returns 1.0 when the region is
 * all zeros (nothing to scale; quantization is then exact).
 */
double regionScale(double max_abs, double fmt_max);

/** Number of scaling factors a spec produces for a rows x cols tensor
 *  (the paper's <1% memory-overhead claim is checked against this). */
int64_t scaleCount(int64_t rows, int64_t cols, const ScalingSpec &spec);

/** View any tensor as a 2-D matrix: rows = numel/lastdim, cols =
 *  lastdim. Rank-0/1 tensors become a single row. */
void matrixView(const Tensor &t, int64_t &rows, int64_t &cols);

} // namespace snip

#endif // SNIP_QUANT_SCALING_H
