#include "quant/codec.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace snip {

const char *
roundingName(Rounding r)
{
    switch (r) {
        case Rounding::Nearest:
            return "nearest";
        case Rounding::Stochastic:
            return "stochastic";
    }
    return "?";
}

double
ulpAt(float x, const FloatFormat &fmt)
{
    double ax = std::fabs(static_cast<double>(x));
    double max_v = fmt.maxValue();
    if (ax > max_v)
        ax = max_v;
    double min_normal = fmt.minNormal();
    if (ax < min_normal)
        return fmt.minSubnormal();
    // frexp gives ax = m * 2^e with m in [0.5, 1), so the binade
    // exponent is e-1; exact and much faster than log2+floor.
    int e;
    std::frexp(ax, &e);
    return std::ldexp(1.0, (e - 1) - fmt.mantissa_bits);
}

QuantGrid
quantGrid(const FloatFormat &fmt)
{
    QuantGrid g;
    g.max_value = static_cast<float>(fmt.maxValue());
    g.min_normal = static_cast<float>(fmt.minNormal());
    g.min_subnormal = static_cast<float>(fmt.minSubnormal());
    // 1/minSubnormal = 2^(bias + mantissa_bits - 1); split into two
    // factors so each stays a normal float even for bf16 (2^133).
    int t = fmt.bias + fmt.mantissa_bits - 1;
    int hi = t / 2;
    g.inv_min_sub_hi = std::ldexp(1.0f, hi);
    g.inv_min_sub_lo = std::ldexp(1.0f, t - hi);
    g.two_pow_neg_mant = std::ldexp(1.0f, -fmt.mantissa_bits);
    g.mantissa_bits = fmt.mantissa_bits;
    return g;
}

namespace {

/**
 * Common quantization path: clamp, express x as (grid index) * ulp, round
 * the index by the chosen rule, return index * ulp with the sign
 * restored.
 */
float
quantizeImpl(float x, const FloatFormat &fmt, Rounding mode, Rng *rng)
{
    if (x == 0.0f || !std::isfinite(x))
        return std::isfinite(x) ? 0.0f : (x > 0 ? 1.0f : -1.0f) *
                                             static_cast<float>(
                                                 fmt.maxValue());
    double ax = std::fabs(static_cast<double>(x));
    double max_v = fmt.maxValue();
    bool saturated = false;
    if (ax >= max_v) {
        ax = max_v;
        saturated = true;
    }
    double sign = x < 0 ? -1.0 : 1.0;
    if (saturated)
        return static_cast<float>(sign * max_v);

    double ulp = ulpAt(static_cast<float>(ax), fmt);
    double q = ax / ulp;
    double lo = std::floor(q);
    double frac = q - lo;
    double rounded;
    if (mode == Rounding::Stochastic) {
        SNIP_ASSERT(rng != nullptr, "stochastic rounding needs an Rng");
        rounded = lo + (rng->nextDouble() < frac ? 1.0 : 0.0);
    } else {
        if (frac > 0.5) {
            rounded = lo + 1.0;
        } else if (frac < 0.5) {
            rounded = lo;
        } else {
            // Ties to even grid index.
            rounded = (static_cast<int64_t>(lo) % 2 == 0) ? lo : lo + 1.0;
        }
    }
    double result = rounded * ulp;
    // Rounding up across a binade boundary lands exactly on the next
    // power of two, which is itself on the grid, so no fixup is needed;
    // only the very top can exceed max.
    if (result > max_v)
        result = max_v;
    return static_cast<float>(sign * result);
}

} // namespace

float
quantizeNearest(float x, const FloatFormat &fmt)
{
    return quantizeImpl(x, fmt, Rounding::Nearest, nullptr);
}

float
quantizeStochastic(float x, const FloatFormat &fmt, Rng &rng)
{
    return quantizeImpl(x, fmt, Rounding::Stochastic, &rng);
}

float
quantizeValue(float x, const FloatFormat &fmt, Rounding mode, Rng *rng)
{
    return quantizeImpl(x, fmt, mode, rng);
}

} // namespace snip
