#include "quant/scaling.h"

namespace snip {

const char *
granularityName(Granularity g)
{
    switch (g) {
        case Granularity::Tensorwise:
            return "tensorwise";
        case Granularity::Rowwise:
            return "rowwise";
        case Granularity::Columnwise:
            return "columnwise";
        case Granularity::Blockwise:
            return "blockwise";
        case Granularity::Tilewise:
            return "tilewise";
    }
    return "?";
}

void
forEachRegion(
    int64_t rows, int64_t cols, const ScalingSpec &spec,
    const std::function<void(int64_t, int64_t, int64_t, int64_t)> &fn)
{
    const int64_t nb = std::max<int64_t>(1, spec.block);
    switch (spec.granularity) {
        case Granularity::Tensorwise:
            fn(0, rows, 0, cols);
            break;
        case Granularity::Rowwise:
            for (int64_t r = 0; r < rows; ++r)
                fn(r, r + 1, 0, cols);
            break;
        case Granularity::Columnwise:
            for (int64_t c = 0; c < cols; ++c)
                fn(0, rows, c, c + 1);
            break;
        case Granularity::Blockwise:
            for (int64_t r = 0; r < rows; r += nb)
                for (int64_t c = 0; c < cols; c += nb)
                    fn(r, std::min(r + nb, rows), c, std::min(c + nb, cols));
            break;
        case Granularity::Tilewise:
            for (int64_t r = 0; r < rows; ++r)
                for (int64_t c = 0; c < cols; c += nb)
                    fn(r, r + 1, c, std::min(c + nb, cols));
            break;
    }
}

std::vector<ScalingRegion>
collectRegions(int64_t rows, int64_t cols, const ScalingSpec &spec)
{
    std::vector<ScalingRegion> regions;
    regions.reserve(static_cast<size_t>(scaleCount(rows, cols, spec)));
    forEachRegion(rows, cols, spec,
                  [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
                      regions.push_back({r0, r1, c0, c1});
                  });
    return regions;
}

double
regionScale(double max_abs, double fmt_max)
{
    if (max_abs <= 0.0)
        return 1.0;
    return fmt_max / max_abs;
}

int64_t
scaleCount(int64_t rows, int64_t cols, const ScalingSpec &spec)
{
    const int64_t nb = std::max<int64_t>(1, spec.block);
    auto ceil_div = [](int64_t a, int64_t b) { return (a + b - 1) / b; };
    switch (spec.granularity) {
        case Granularity::Tensorwise:
            return 1;
        case Granularity::Rowwise:
            return rows;
        case Granularity::Columnwise:
            return cols;
        case Granularity::Blockwise:
            return ceil_div(rows, nb) * ceil_div(cols, nb);
        case Granularity::Tilewise:
            return rows * ceil_div(cols, nb);
    }
    return 0;
}

void
matrixView(const Tensor &t, int64_t &rows, int64_t &cols)
{
    if (t.rank() == 0 || t.numel() == 0) {
        rows = t.numel() > 0 ? 1 : 0;
        cols = t.numel();
        return;
    }
    cols = t.size(-1);
    rows = cols > 0 ? t.numel() / cols : 0;
}

} // namespace snip
