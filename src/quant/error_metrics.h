/**
 * @file
 * Quantization-error measurements.
 *
 * SNIP's statistics pass records, for every layer tensor and every
 * candidate precision, the Frobenius norm of the quantization error
 * ||q(x) - x||_F (Sec. 3.1). The min-abs-err and min-rel-err baselines
 * rank layers by exactly these numbers.
 */
#ifndef SNIP_QUANT_ERROR_METRICS_H
#define SNIP_QUANT_ERROR_METRICS_H

#include "quant/quantizer.h"
#include "tensor/tensor.h"

namespace snip {

/** Error norms of quantizing one tensor under one config. */
struct QuantError
{
    /** ||q(x) - x||_F. */
    double abs_error = 0.0;
    /** ||q(x) - x||_F / ||x||_F (0 when ||x|| = 0). */
    double rel_error = 0.0;
    /** max_i |q(x)_i - x_i|. */
    double max_error = 0.0;
    /** ||x||_F of the unquantized tensor. */
    double input_norm = 0.0;
};

/**
 * Measure the error of fake-quantizing @p t under @p cfg.
 *
 * Stochastic configs are measured with nearest rounding so the statistic
 * is deterministic (the expected SR error has the same magnitude).
 */
QuantError measureQuantError(const Tensor &t, const QuantConfig &cfg,
                             FakeQuantizer &quantizer);

} // namespace snip

#endif // SNIP_QUANT_ERROR_METRICS_H
