/**
 * @file
 * Scalar value codec: snap a float onto a low-precision format's grid.
 *
 * Two rounding modes are provided. Round-to-nearest-even is the default;
 * stochastic rounding (Croci et al., used by the paper for FP4 output
 * gradients) rounds to the two neighbouring grid points with probability
 * proportional to proximity, making the quantizer unbiased in
 * expectation and preventing training stagnation.
 */
#ifndef SNIP_QUANT_CODEC_H
#define SNIP_QUANT_CODEC_H

#include "quant/format.h"

namespace snip {

class Rng;

/** Rounding rule applied when a value falls between grid points. */
enum class Rounding
{
    /** Round to nearest, ties to even mantissa. */
    Nearest,
    /** Stochastic rounding (requires an Rng). */
    Stochastic,
};

/** Name for logging/tables. */
const char *roundingName(Rounding r);

/**
 * Quantize one value to @p fmt with round-to-nearest-even.
 *
 * Magnitudes above maxValue() saturate; subnormals flush onto the
 * subnormal grid; ±0 is preserved as 0.
 */
float quantizeNearest(float x, const FloatFormat &fmt);

/** Quantize one value with stochastic rounding driven by @p rng. */
float quantizeStochastic(float x, const FloatFormat &fmt, Rng &rng);

/**
 * Quantize one value with the requested mode. @p rng may be null for
 * Rounding::Nearest.
 */
float quantizeValue(float x, const FloatFormat &fmt, Rounding mode,
                    Rng *rng);

/** Spacing of the format's grid at value @p x (the ULP). */
double ulpAt(float x, const FloatFormat &fmt);

/**
 * Precomputed float-domain constants describing a format's grid, for
 * vectorized grid-snap kernels (simd/). All fields are exact powers of
 * two or exactly representable floats, so a kernel built on them can
 * reproduce quantizeNearest() bit for bit:
 *   - a normal-range value ax in [min_normal, max_value] quantizes as
 *     roundeven(retag(ax)) * 2^-mantissa_bits * binade(ax), where
 *     retag(ax) keeps ax's mantissa and forces the exponent to
 *     mantissa_bits (the grid index, exact in float);
 *   - a subnormal-range value quantizes as
 *     roundeven(ax * inv_min_sub_hi * inv_min_sub_lo) * min_subnormal
 *     (the inverse subnormal spacing is split into two power-of-two
 *     factors because e.g. bf16's 2^133 overflows a single float).
 */
struct QuantGrid
{
    float max_value;        ///< saturation bound (fmt.maxValue())
    float min_normal;       ///< normal/subnormal grid boundary
    float min_subnormal;    ///< grid spacing below min_normal
    float inv_min_sub_hi;   ///< 1/min_subnormal = hi * lo, both
    float inv_min_sub_lo;   ///<   powers of two within float range
    float two_pow_neg_mant; ///< 2^-mantissa_bits
    int mantissa_bits;
};

/** Grid constants for @p fmt (see QuantGrid). */
QuantGrid quantGrid(const FloatFormat &fmt);

} // namespace snip

#endif // SNIP_QUANT_CODEC_H
