/**
 * @file
 * Scalar value codec: snap a float onto a low-precision format's grid.
 *
 * Two rounding modes are provided. Round-to-nearest-even is the default;
 * stochastic rounding (Croci et al., used by the paper for FP4 output
 * gradients) rounds to the two neighbouring grid points with probability
 * proportional to proximity, making the quantizer unbiased in
 * expectation and preventing training stagnation.
 */
#ifndef SNIP_QUANT_CODEC_H
#define SNIP_QUANT_CODEC_H

#include "quant/format.h"

namespace snip {

class Rng;

/** Rounding rule applied when a value falls between grid points. */
enum class Rounding
{
    /** Round to nearest, ties to even mantissa. */
    Nearest,
    /** Stochastic rounding (requires an Rng). */
    Stochastic,
};

/** Name for logging/tables. */
const char *roundingName(Rounding r);

/**
 * Quantize one value to @p fmt with round-to-nearest-even.
 *
 * Magnitudes above maxValue() saturate; subnormals flush onto the
 * subnormal grid; ±0 is preserved as 0.
 */
float quantizeNearest(float x, const FloatFormat &fmt);

/** Quantize one value with stochastic rounding driven by @p rng. */
float quantizeStochastic(float x, const FloatFormat &fmt, Rng &rng);

/**
 * Quantize one value with the requested mode. @p rng may be null for
 * Rounding::Nearest.
 */
float quantizeValue(float x, const FloatFormat &fmt, Rounding mode,
                    Rng *rng);

/** Spacing of the format's grid at value @p x (the ULP). */
double ulpAt(float x, const FloatFormat &fmt);

} // namespace snip

#endif // SNIP_QUANT_CODEC_H
