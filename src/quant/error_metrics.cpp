#include "quant/error_metrics.h"

#include <cmath>

#include "tensor/ops.h"

namespace snip {

QuantError
measureQuantError(const Tensor &t, const QuantConfig &cfg,
                  FakeQuantizer &quantizer)
{
    QuantConfig det = cfg;
    det.rounding = Rounding::Nearest;
    Tensor q = quantizer.quantize(t, det);

    QuantError err;
    err.input_norm = frobeniusNorm(t);
    const float *pt = t.data();
    const float *pq = q.data();
    double acc = 0.0;
    double max_e = 0.0;
    for (int64_t i = 0; i < t.numel(); ++i) {
        double d = static_cast<double>(pq[i]) - pt[i];
        acc += d * d;
        max_e = std::max(max_e, std::fabs(d));
    }
    err.abs_error = std::sqrt(acc);
    err.max_error = max_e;
    err.rel_error = err.input_norm > 0 ? err.abs_error / err.input_norm
                                       : 0.0;
    return err;
}

} // namespace snip
