#include "quant/error_metrics.h"

#include <cmath>

#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "tensor/ops.h"

namespace snip {

QuantError
measureQuantError(const Tensor &t, const QuantConfig &cfg,
                  FakeQuantizer &quantizer)
{
    QuantConfig det = cfg;
    det.rounding = Rounding::Nearest;
    Tensor q = quantizer.quantize(t, det);

    QuantError err;
    err.input_norm = frobeniusNorm(t);
    // Vectorized accumulators via the dispatched backend; max_error is
    // exact, the sum of squares may differ across backends in
    // low-order bits.
    double acc = 0.0;
    double max_e = 0.0;
    simd::activeKernels().errorStats(t.data(), q.data(), t.numel(),
                                     &acc, &max_e);
    err.abs_error = std::sqrt(acc);
    err.max_error = max_e;
    err.rel_error = err.input_norm > 0 ? err.abs_error / err.input_norm
                                       : 0.0;
    return err;
}

} // namespace snip
