#include "quant/format.h"

#include <cmath>

#include "util/logging.h"

namespace snip {

double
FloatFormat::maxValue() const
{
    int codes = (1 << exponent_bits) - 1;
    int emax;
    double max_mantissa;
    if (!finite_only) {
        // IEEE-like: the all-ones exponent is Inf/NaN.
        emax = codes - 1 - bias;
        max_mantissa = 2.0 - std::ldexp(1.0, -mantissa_bits);
    } else if (has_nan) {
        // E4M3-FN style: top binade usable, all-ones mantissa is NaN.
        emax = codes - bias;
        max_mantissa = 2.0 - std::ldexp(2.0, -mantissa_bits);
    } else {
        // MX style: every code is a value.
        emax = codes - bias;
        max_mantissa = 2.0 - std::ldexp(1.0, -mantissa_bits);
    }
    return std::ldexp(max_mantissa, emax);
}

double
FloatFormat::minNormal() const
{
    return std::ldexp(1.0, 1 - bias);
}

double
FloatFormat::minSubnormal() const
{
    return std::ldexp(1.0, 1 - bias - mantissa_bits);
}

int
FloatFormat::magnitudeCount() const
{
    int codes = (1 << exponent_bits) - 1;
    int binades = finite_only ? codes : codes - 1;
    int per_binade = 1 << mantissa_bits;
    int count = (per_binade - 1) + binades * per_binade;
    if (finite_only && has_nan)
        count -= 1; // top mantissa pattern is NaN
    return count;
}

const FloatFormat &
fp4E2m1()
{
    static const FloatFormat f{"fp4_e2m1", 2, 1, 1, true, false};
    return f;
}

const FloatFormat &
fp8E4m3()
{
    static const FloatFormat f{"fp8_e4m3", 4, 3, 7, true, true};
    return f;
}

const FloatFormat &
fp8E5m2()
{
    static const FloatFormat f{"fp8_e5m2", 5, 2, 15, false, true};
    return f;
}

const FloatFormat &
fp6E3m2()
{
    static const FloatFormat f{"fp6_e3m2", 3, 2, 3, true, false};
    return f;
}

const FloatFormat &
bf16()
{
    static const FloatFormat f{"bf16", 8, 7, 127, false, true};
    return f;
}

const FloatFormat &
fp16()
{
    static const FloatFormat f{"fp16", 5, 10, 15, false, true};
    return f;
}

const FloatFormat &
formatByName(const std::string &name)
{
    for (const FloatFormat *f :
         {&fp4E2m1(), &fp8E4m3(), &fp8E5m2(), &fp6E3m2(), &bf16(),
          &fp16()}) {
        if (f->name == name)
            return *f;
    }
    fatal("unknown float format: ", name);
}

} // namespace snip
