/**
 * @file
 * Fake quantization of whole tensors, plus the per-role policies the
 * paper's training recipe assigns (Sec. 2.3 / 6.1).
 */
#ifndef SNIP_QUANT_QUANTIZER_H
#define SNIP_QUANT_QUANTIZER_H

#include "quant/codec.h"
#include "quant/scaling.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace snip {

/** Everything needed to fake-quantize one tensor. */
struct QuantConfig
{
    FloatFormat format = bf16();
    ScalingSpec scaling;
    Rounding rounding = Rounding::Nearest;

    /** Short description like "fp4_e2m1/tilewise128/stochastic". */
    std::string describe() const;
};

/** Precision levels a layer can be assigned (the ILP's options build on
 *  these). BF16 means "leave the GEMM in high precision". FP6 (MX
 *  E3M2) demonstrates the paper's extensibility claim — "new methods
 *  can be incorporated as additional quantization options" (Sec. 3.2):
 *  it slots into the statistics, divergence and scheme machinery like
 *  any other level, though the paper's FP4-FLOP-fraction efficiency
 *  metric grants it no efficiency credit. */
enum class Precision { BF16 = 0, FP8 = 1, FP6 = 2, FP4 = 3 };

/** Name for tables ("BF16"/"FP8"/"FP6"/"FP4"). */
const char *precisionName(Precision p);

/** Bits per element of a precision level (16/8/6/4). */
int precisionBits(Precision p);

/** Role a tensor plays in a linear layer's GEMMs. */
enum class TensorRole { Activation, Weight, OutputGrad };

/** Name for tables. */
const char *tensorRoleName(TensorRole role);

/**
 * The paper's quantization recipe for a (precision, role) pair:
 *  - activations & gradients: 1x128 tile-wise; weights: 128x128
 *    block-wise (DeepSeek-V3);
 *  - FP8 uses E4M3 for forward tensors, E5M2 for gradients;
 *  - FP4 uses E2M1 everywhere, with stochastic rounding on gradients.
 * BF16 quantizes tensor-wise with scale 1 semantics (the bf16 grid is
 * wide enough that no rescaling is needed).
 */
QuantConfig rolePolicy(Precision precision, TensorRole role);

/**
 * Ablation knob: override the rounding mode used for FP4 gradients
 * (default Rounding::Stochastic per the paper). Affects subsequent
 * rolePolicy() results process-wide; intended for the rounding-mode
 * ablation bench and tests only.
 */
void setFp4GradRounding(Rounding rounding);

/** Current FP4-gradient rounding mode. */
Rounding fp4GradRounding();

/**
 * Applies quantize-dequantize to tensors.
 *
 * Owns the Rng seeding stochastic rounding so repeated calls advance
 * one deterministic stream: each stochastic call draws one 64-bit call
 * key from it, and every scaling region derives an independent stream
 * from (call key, region index). Regions are swept in parallel on the
 * shared thread pool (runtime/thread_pool.h); because the per-region
 * streams and region order are fixed, results are bit-identical for
 * any thread count. Nearest-rounding calls never touch the Rng, so
 * distinct tensors may be quantized concurrently with Nearest configs.
 */
class FakeQuantizer
{
  public:
    explicit FakeQuantizer(uint64_t seed = 0xF00DF00Dull);

    /** Quantize-dequantize a copy of @p t under @p cfg. */
    Tensor quantize(const Tensor &t, const QuantConfig &cfg);

    /** Quantize-dequantize @p t in place. */
    void quantizeInPlace(Tensor &t, const QuantConfig &cfg);

    /** Access the rounding Rng (tests use this to fix the stream). */
    Rng &rng() { return rng_; }
    const Rng &rng() const { return rng_; }

  private:
    Rng rng_;
};

} // namespace snip

#endif // SNIP_QUANT_QUANTIZER_H
