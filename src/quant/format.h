/**
 * @file
 * Floating-point format descriptions for sub-16-bit training.
 *
 * The paper trains with fake quantization into FP8 (E4M3 for forward
 * tensors, E5M2 for gradients, following common practice and the
 * DeepSeek-V3 recipe) and FP4 E2M1 (MX specification). A format here is
 * a generic EeMm description: e exponent bits, m mantissa bits, a bias,
 * and flags describing how the top exponent code is used:
 *   - IEEE-like (E5M2, BF16, FP16): all-ones exponent reserved for
 *     Inf/NaN.
 *   - finite-only with NaN (E4M3-FN): all-ones exponent holds normal
 *     values; only the all-ones mantissa in the top binade is NaN.
 *   - finite-only without NaN (MX E2M1, E3M2): every code is a value.
 */
#ifndef SNIP_QUANT_FORMAT_H
#define SNIP_QUANT_FORMAT_H

#include <string>

namespace snip {

/**
 * Description of a low-precision floating-point format.
 *
 * All quantization in this library is *fake*: values are snapped onto the
 * representable grid of the format but stored back as float, exactly as
 * the paper's GPU implementation does (Sec. 6.1).
 */
struct FloatFormat
{
    /** Human-readable name, e.g. "fp8_e4m3". */
    std::string name;
    /** Exponent bits. */
    int exponent_bits = 0;
    /** Mantissa (fraction) bits. */
    int mantissa_bits = 0;
    /** Exponent bias. */
    int bias = 0;
    /** True if the all-ones exponent encodes normal values (no Inf). */
    bool finite_only = false;
    /** True if one NaN pattern exists (only relevant when finite_only). */
    bool has_nan = true;

    /** Largest representable finite magnitude. */
    double maxValue() const;

    /** Smallest positive *normal* magnitude, 2^(1-bias). */
    double minNormal() const;

    /** Smallest positive subnormal magnitude (grid spacing at zero). */
    double minSubnormal() const;

    /** Total bit width including sign. */
    int bits() const { return 1 + exponent_bits + mantissa_bits; }

    /** Number of distinct positive finite magnitudes (for testing). */
    int magnitudeCount() const;
};

/** FP4 E2M1 per the MX specification: ±{0, .5, 1, 1.5, 2, 3, 4, 6}. */
const FloatFormat &fp4E2m1();

/** FP8 E4M3 (finite-only / FN variant), max 448. */
const FloatFormat &fp8E4m3();

/** FP8 E5M2 (IEEE-like), max 57344; used for gradients. */
const FloatFormat &fp8E5m2();

/** FP6 E3M2 (MX), max 28; available as an extra quantization option. */
const FloatFormat &fp6E3m2();

/** bfloat16: 8 exponent bits, 7 mantissa bits. */
const FloatFormat &bf16();

/** IEEE half precision (E5M10). */
const FloatFormat &fp16();

/** Look up a format by name; fatal() on unknown names. */
const FloatFormat &formatByName(const std::string &name);

} // namespace snip

#endif // SNIP_QUANT_FORMAT_H
