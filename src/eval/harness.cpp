#include "eval/harness.h"

#include "nn/loss.h"
#include "util/logging.h"

namespace snip {

double
EvalResult::taskAccuracy(const std::string &name) const
{
    for (const auto &t : tasks) {
        if (t.name == name || t.analog_of == name)
            return t.accuracy;
    }
    fatal("no such eval task: ", name);
}

bool
scoreItem(LlamaModel &model, const EvalItem &item)
{
    SNIP_ASSERT(!item.options.empty());
    double best = -1e300;
    int best_idx = 0;
    for (size_t o = 0; o < item.options.size(); ++o) {
        const auto &opt = item.options[o];
        std::vector<int32_t> seq = item.context;
        seq.insert(seq.end(), opt.begin(), opt.end());
        const int64_t len = static_cast<int64_t>(seq.size());
        SNIP_ASSERT(len >= 2 && len <= model.config().max_seq,
                    "item length out of range");

        Tensor logits = model.forward(seq, /*batch=*/1, /*seq=*/len);
        // Row r predicts token r+1: option tokens live at positions
        // [ctx, len); the rows scoring them are [ctx-1, len-1).
        const int64_t ctx = static_cast<int64_t>(item.context.size());
        std::vector<int32_t> shifted(static_cast<size_t>(len), 0);
        for (int64_t r = 0; r + 1 < len; ++r)
            shifted[static_cast<size_t>(r)] =
                seq[static_cast<size_t>(r + 1)];
        double lp = sequenceLogProb(logits, shifted, ctx - 1, len - 1);
        lp /= static_cast<double>(opt.size()); // length normalization
        if (lp > best) {
            best = lp;
            best_idx = static_cast<int>(o);
        }
    }
    return best_idx == item.correct;
}

TaskScore
evaluateTask(LlamaModel &model, const EvalTask &task)
{
    TaskScore score;
    score.name = task.name;
    score.analog_of = task.analog_of;
    score.n_items = static_cast<int>(task.items.size());
    int correct = 0;
    for (const auto &item : task.items)
        correct += scoreItem(model, item);
    score.accuracy = score.n_items > 0
                         ? 100.0 * correct / score.n_items
                         : 0.0;
    return score;
}

EvalResult
evaluate(LlamaModel &model, const std::vector<EvalTask> &suite)
{
    // lm-eval scores trained checkpoints at high precision; the
    // quantization scheme affects *training*, not inference. Run the
    // suite in uniform BF16 and restore the active scheme after.
    const PrecisionScheme active = model.currentScheme();
    model.setScheme(PrecisionScheme::uniform(
        static_cast<size_t>(model.registry().numLinear()),
        Precision::BF16));

    EvalResult result;
    double sum = 0.0;
    for (const auto &task : suite) {
        result.tasks.push_back(evaluateTask(model, task));
        sum += result.tasks.back().accuracy;
    }
    result.average = suite.empty()
                         ? 0.0
                         : sum / static_cast<double>(suite.size());
    model.setScheme(active);
    return result;
}

} // namespace snip
