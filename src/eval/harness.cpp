#include "eval/harness.h"

#include <algorithm>
#include <memory>

#include "nn/loss.h"
#include "runtime/thread_pool.h"
#include "util/logging.h"

namespace snip {

double
EvalResult::taskAccuracy(const std::string &name) const
{
    for (const auto &t : tasks) {
        if (t.name == name || t.analog_of == name)
            return t.accuracy;
    }
    fatal("no such eval task: ", name);
}

bool
scoreItem(LlamaModel &model, const EvalItem &item)
{
    SNIP_ASSERT(!item.options.empty());
    double best = -1e300;
    int best_idx = 0;
    for (size_t o = 0; o < item.options.size(); ++o) {
        const auto &opt = item.options[o];
        std::vector<int32_t> seq = item.context;
        seq.insert(seq.end(), opt.begin(), opt.end());
        const int64_t len = static_cast<int64_t>(seq.size());
        SNIP_ASSERT(len >= 2 && len <= model.config().max_seq,
                    "item length out of range");

        Tensor logits = model.forward(seq, /*batch=*/1, /*seq=*/len);
        // Row r predicts token r+1: option tokens live at positions
        // [ctx, len); the rows scoring them are [ctx-1, len-1).
        const int64_t ctx = static_cast<int64_t>(item.context.size());
        std::vector<int32_t> shifted(static_cast<size_t>(len), 0);
        for (int64_t r = 0; r + 1 < len; ++r)
            shifted[static_cast<size_t>(r)] =
                seq[static_cast<size_t>(r + 1)];
        double lp = sequenceLogProb(logits, shifted, ctx - 1, len - 1);
        lp /= static_cast<double>(opt.size()); // length normalization
        if (lp > best) {
            best = lp;
            best_idx = static_cast<int>(o);
        }
    }
    return best_idx == item.correct;
}

TaskScore
evaluateTask(LlamaModel &model, const EvalTask &task)
{
    TaskScore score;
    score.name = task.name;
    score.analog_of = task.analog_of;
    score.n_items = static_cast<int>(task.items.size());
    int correct = 0;
    for (const auto &item : task.items)
        correct += scoreItem(model, item);
    score.accuracy = score.n_items > 0
                         ? 100.0 * correct / score.n_items
                         : 0.0;
    return score;
}

namespace {

/** Fresh model with @p model's weights, pinned to uniform BF16 (the
 *  precision evaluation always runs at). Forward passes on distinct
 *  replicas share no mutable state, so shards can score items
 *  concurrently. */
std::unique_ptr<LlamaModel>
makeEvalReplica(LlamaModel &model)
{
    auto rep = std::make_unique<LlamaModel>(model.config(), /*seed=*/1);
    ParamList src = model.params();
    ParamList dst = rep->params();
    SNIP_ASSERT(src.size() == dst.size(), "replica parameter mismatch");
    for (size_t i = 0; i < src.size(); ++i) {
        SNIP_ASSERT(dst[i].value->sameShape(*src[i].value));
        *dst[i].value = *src[i].value;
    }
    rep->setScheme(PrecisionScheme::uniform(
        static_cast<size_t>(rep->registry().numLinear()),
        Precision::BF16));
    return rep;
}

/** evaluateTask over item shards spread across @p models. Every item's
 *  verdict is independent of which replica scores it (identical weights,
 *  deterministic BF16 forward), so the accuracy is identical for any
 *  shard count. */
TaskScore
evaluateTaskSharded(const std::vector<LlamaModel *> &models,
                    const EvalTask &task, runtime::ThreadPool &pool)
{
    TaskScore score;
    score.name = task.name;
    score.analog_of = task.analog_of;
    score.n_items = static_cast<int>(task.items.size());

    const int64_t n = static_cast<int64_t>(task.items.size());
    const int64_t shards = static_cast<int64_t>(models.size());
    std::vector<int> correct(static_cast<size_t>(shards), 0);
    pool.parallelFor(0, shards, 1, [&](int64_t s0, int64_t s1) {
        for (int64_t s = s0; s < s1; ++s) {
            const int64_t i0 = s * n / shards;
            const int64_t i1 = (s + 1) * n / shards;
            int c = 0;
            for (int64_t i = i0; i < i1; ++i)
                c += scoreItem(*models[static_cast<size_t>(s)],
                               task.items[static_cast<size_t>(i)]);
            correct[static_cast<size_t>(s)] = c;
        }
    });
    int total = 0;
    for (int c : correct)
        total += c;
    score.accuracy = score.n_items > 0
                         ? 100.0 * total / score.n_items
                         : 0.0;
    return score;
}

} // namespace

EvalResult
evaluate(LlamaModel &model, const std::vector<EvalTask> &suite,
         runtime::ThreadPool *pool)
{
    // lm-eval scores trained checkpoints at high precision; the
    // quantization scheme affects *training*, not inference. Run the
    // suite in uniform BF16 and restore the active scheme after.
    const PrecisionScheme active = model.currentScheme();
    model.setScheme(PrecisionScheme::uniform(
        static_cast<size_t>(model.registry().numLinear()),
        Precision::BF16));

    runtime::ThreadPool &p = runtime::poolOrGlobal(pool);
    int64_t max_items = 0;
    for (const auto &task : suite)
        max_items = std::max(max_items,
                             static_cast<int64_t>(task.items.size()));
    // Each extra shard costs a full weight replica, so cap the fan-out:
    // past ~8 shards eval is short enough that replica construction and
    // memory dominate any further speedup on many-core hosts.
    constexpr int64_t kMaxEvalShards = 8;
    const int64_t shards = std::min<int64_t>(
        {p.numThreads(), std::max<int64_t>(max_items, 1),
         kMaxEvalShards});

    // Shard 0 is the caller's model; extra shards get weight replicas.
    std::vector<std::unique_ptr<LlamaModel>> replicas;
    std::vector<LlamaModel *> models;
    models.push_back(&model);
    for (int64_t s = 1; s < shards; ++s) {
        replicas.push_back(makeEvalReplica(model));
        models.push_back(replicas.back().get());
    }

    EvalResult result;
    double sum = 0.0;
    for (const auto &task : suite) {
        result.tasks.push_back(shards > 1
                                   ? evaluateTaskSharded(models, task, p)
                                   : evaluateTask(model, task));
        sum += result.tasks.back().accuracy;
    }
    result.average = suite.empty()
                         ? 0.0
                         : sum / static_cast<double>(suite.size());
    model.setScheme(active);
    return result;
}

} // namespace snip
