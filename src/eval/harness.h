/**
 * @file
 * LM-Evaluation-Harness-style scoring (Sec. 6.1, "Evaluation").
 *
 * Each multiple-choice item is scored 0-shot by running the model over
 * context+option and picking the option with the highest length-
 * normalized log-likelihood — the same methodology lm-eval uses for
 * ARC/HellaSwag/PiQA etc.
 */
#ifndef SNIP_EVAL_HARNESS_H
#define SNIP_EVAL_HARNESS_H

#include <string>
#include <vector>

#include "data/tasks.h"
#include "nn/model.h"

namespace snip {

/** Accuracy of one task. */
struct TaskScore
{
    std::string name;
    std::string analog_of;
    double accuracy = 0.0; ///< percent correct
    int n_items = 0;
};

/** Accuracy across the whole suite. */
struct EvalResult
{
    std::vector<TaskScore> tasks;
    /** Unweighted mean of task accuracies (the paper's "Average"). */
    double average = 0.0;

    /** Accuracy of the task named @p name; fatal() if missing. */
    double taskAccuracy(const std::string &name) const;
};

namespace runtime {
class ThreadPool;
} // namespace runtime

/** Score one item; returns true if the model picks the correct option. */
bool scoreItem(LlamaModel &model, const EvalItem &item);

/** Evaluate one task. */
TaskScore evaluateTask(LlamaModel &model, const EvalTask &task);

/**
 * Evaluate the full suite.
 *
 * Items are sharded across the pool (@p pool, null = the process-wide
 * shared pool), each shard scoring on its own BF16 replica of the
 * model. Replicas are exact weight copies and the BF16 forward pass is
 * deterministic, so the returned accuracies are identical for every
 * thread count.
 */
EvalResult evaluate(LlamaModel &model, const std::vector<EvalTask> &suite,
                    runtime::ThreadPool *pool = nullptr);

} // namespace snip

#endif // SNIP_EVAL_HARNESS_H
