/**
 * @file
 * Lightweight stats registry: counters, gauges and histogram-backed
 * timers with per-thread sharded accumulation, folded into a global
 * snapshot at step/bench boundaries and exported as a per-step JSON
 * time series.
 *
 * Design (the YTsaurus profiling_manager idiom adapted to the
 * ThreadPool determinism contract):
 *
 *  - Every metric is a fixed enum slot, so the hot path is an array
 *    index — no string hashing, no maps, no locks.
 *  - Each thread owns one Shard (created on first use, registered
 *    once, never freed). The owning thread updates cells with plain
 *    relaxed load+store pairs — never an atomic RMW, never a lock —
 *    so instrumented kernels pay a couple of L1 accesses per event.
 *    Cells are std::atomic only so the folding reader is race-free in
 *    the C++ memory model; on x86-64 the relaxed load/store compile to
 *    plain MOVs.
 *  - Cells accumulate *cumulatively* and are never reset. A fold
 *    (telemetry::stepBoundary / telemetry::snapshot) sums the shards
 *    and reports per-step deltas against the previous fold, so a
 *    thread that keeps writing concurrently (the async scheme worker)
 *    can never lose an update to a reset race — at worst its latest
 *    events land in the next step's delta.
 *  - Telemetry observes, it never steers: no kernel branches on a
 *    telemetry value, so enabling it cannot perturb the bit-exactness
 *    contract. With telemetry disabled every hot-path call is a single
 *    relaxed flag load and a predicted branch.
 *
 * Enabling: the SNIP_TELEMETRY environment variable —
 *
 *   SNIP_TELEMETRY=off          disabled (default when unset)
 *   SNIP_TELEMETRY=on           collect in memory (snapshot()/summary())
 *   SNIP_TELEMETRY=json:<path>  collect and write the per-step JSON
 *                               time series to <path> (atomically:
 *                               tmp + rename, so a concurrent reader
 *                               always sees a complete document)
 *
 * or programmatically via configure() (tests, benches).
 *
 * The JSON document: {"schema": "snip-telemetry-v1", "meta": {...},
 * "series": [ {per-step record}, ... ]}. Each step record carries the
 * deltas for that step grouped by subsystem (gemm, pack_cache, arena,
 * pool, attn, scheme, solve_cache) plus derived rates (gemm.gflops,
 * pool.utilization, solve_cache.hit_rate). See README "Telemetry".
 */
#ifndef SNIP_TELEMETRY_TELEMETRY_H
#define SNIP_TELEMETRY_TELEMETRY_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace snip {
namespace telemetry {

/** Monotonic event counts (fold = sum across shards; exported as
 *  per-step deltas). Deterministic workloads produce thread-count-
 *  independent totals for all of these (tests/test_telemetry.cpp). */
enum class Counter : int
{
    GemmCalls,         ///< GEMM driver invocations (any path)
    GemmPackedCalls,   ///< ... that ran the packed pipeline
    GemmLegacyCalls,   ///< ... that ran the pre-packing path
    GemmBatchedItems,  ///< items executed by strided-batch drivers
    GemmFlops,         ///< 2*m*n*k summed over all GEMM work
    PackCacheHits,     ///< PackedWeightCache: panel served as-is
    PackCacheRebuilds, ///< PackedWeightCache: panel (re)packed
    PoolJobs,          ///< parallelFor invocations (incl. inline)
    PoolChunks,        ///< chunks those invocations were cut into
    AttnFwdCalls,      ///< attentionForwardCore invocations
    AttnBwdCalls,      ///< attentionBackwardCore invocations
    SolveCacheHits,    ///< ILP SolveCache lookup hits
    SolveCacheMisses,  ///< ILP SolveCache lookup misses
    SolveCacheEvicts,  ///< ILP SolveCache LRU evictions
    SchemeUpdates,     ///< scheme updates applied to the model
    SchemeSolveCached, ///< ... whose ILP came from the solve cache
    SchemePublishes,   ///< results published by the update service
    SchemeUpdateSkips, ///< failed updates resolved by keeping the
                       ///< current scheme (skip-update semantics)
    ServeRequests,     ///< requests retired by the serving engine
    ServePrefillTokens,///< prompt tokens prefilled
    ServeDecodeTokens, ///< tokens produced by decode steps
    ServeDecodeSteps,  ///< coalesced decode iterations
    ServeRejected,     ///< requests rejected at admission
    ServePreempted,    ///< sequences cancelled to relieve the KV pool
    ServeExpired,      ///< requests cancelled past their deadline
    KvPageAllocs,      ///< KV-cache pages taken from the free list
    KvPageReleases,    ///< KV-cache pages returned on retirement
    FaultsInjected,    ///< injected faults fired (SNIP_FAULT)
    kCount
};

/** Wall-clock accumulators (fold = sum; exported as deltas). */
enum class Seconds : int
{
    PoolBusy,     ///< worker seconds inside parallelFor chunks
    PoolWall,     ///< submitter seconds inside parallelFor
    SchemeWork,   ///< Steps 4-5 worker wall (controller accounting)
    SchemeHidden, ///< ... portion overlapped with training
    SchemeExposed,///< ... portion the trainer waited for
    SchemeWorker, ///< update-service worker busy seconds
    ServePrefill, ///< engine seconds inside prefill forwards
    ServeDecode,  ///< engine seconds inside decode steps
    kCount
};

/** High-water marks (owner keeps a running max; fold = max across
 *  shards; exported as the cumulative value). */
enum class MaxGauge : int
{
    ArenaHighWaterBytes, ///< peak bytes live in any one arena episode
    KvPagesPeak,         ///< peak KV-cache pages in use
    kCount
};

/** Last-value gauges (owner overwrites; fold = sum across shards). */
enum class LastGauge : int
{
    ArenaReservedBytes, ///< slab bytes currently owned per arena
    // Serve gauges are owned by the single engine thread (LastGauge
    // folds by summing shards, so only one thread may write them).
    KvPagesInUse,       ///< KV-cache pages currently allocated
    ServeActiveSeqs,    ///< sequences in the engine's active batch
    kCount
};

/** Histogram-backed timers: count + total seconds + log2(ns) buckets
 *  (fold = sum; exported as deltas). */
enum class Timer : int
{
    Gemm,        ///< one GEMM driver invocation
    AttnFwd,     ///< one attentionForwardCore invocation
    AttnBwd,     ///< one attentionBackwardCore invocation
    PoolJob,     ///< one parallelFor, submitter wall
    SchemeWait,  ///< one handoff: trainer blocked at apply boundary
    kCount
};

constexpr int kNumCounters = static_cast<int>(Counter::kCount);
constexpr int kNumSeconds = static_cast<int>(Seconds::kCount);
constexpr int kNumMaxGauges = static_cast<int>(MaxGauge::kCount);
constexpr int kNumLastGauges = static_cast<int>(LastGauge::kCount);
constexpr int kNumTimers = static_cast<int>(Timer::kCount);
/** Bucket i holds durations in [2^(i-1), 2^i) nanoseconds; the last
 *  bucket absorbs everything >= ~134 ms. */
constexpr int kTimerBuckets = 28;

namespace detail {

/** One thread's accumulation cells. Atomics exist purely so the
 *  folding reader is defined behavior; the owner is the only writer
 *  and uses relaxed load+store (a plain add on x86-64). */
struct alignas(64) Shard
{
    std::atomic<int64_t> counters[kNumCounters];
    std::atomic<double> seconds[kNumSeconds];
    std::atomic<int64_t> max_gauges[kNumMaxGauges];
    std::atomic<int64_t> last_gauges[kNumLastGauges];
    struct TimerCell
    {
        std::atomic<int64_t> count;
        std::atomic<double> sum_seconds;
        std::atomic<int64_t> buckets[kTimerBuckets];
    };
    TimerCell timers[kNumTimers];

    Shard();
};

/** -1 = unresolved (parse SNIP_TELEMETRY on first use), 0 = off,
 *  1 = on. */
extern std::atomic<int> g_mode;

int resolveMode();
Shard &shardSlow();

/** Write tmp + rename, so concurrent readers (and concurrent writer
 *  processes racing for the same path) always see a complete
 *  document. Shared with the trace exporter (telemetry/trace.h). */
bool writeFileAtomic(const std::string &path,
                     const std::string &content);

inline bool
on()
{
    int mode = g_mode.load(std::memory_order_relaxed);
    if (mode < 0)
        mode = resolveMode();
    return mode == 1;
}

extern thread_local Shard *t_shard;

inline Shard &
shard()
{
    Shard *s = t_shard;
    return s != nullptr ? *s : shardSlow();
}

/** Owner-only add: relaxed load+store, never an RMW. */
inline void
add(std::atomic<int64_t> &cell, int64_t v)
{
    cell.store(cell.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
}

inline void
add(std::atomic<double> &cell, double v)
{
    cell.store(cell.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
}

} // namespace detail

/** True when telemetry is collecting (hot-path fast check). */
inline bool
enabled()
{
    return detail::on();
}

// ------------------------------------------------------ hot-path API
// Every call is a no-op (one relaxed flag load) when disabled, and a
// couple of thread-local plain memory accesses when enabled. None of
// them can allocate once the calling thread's shard exists.

inline void
count(Counter c, int64_t v = 1)
{
    if (!detail::on())
        return;
    detail::add(detail::shard().counters[static_cast<int>(c)], v);
}

inline void
addSeconds(Seconds s, double v)
{
    if (!detail::on())
        return;
    detail::add(detail::shard().seconds[static_cast<int>(s)], v);
}

inline void
gaugeMax(MaxGauge g, int64_t v)
{
    if (!detail::on())
        return;
    std::atomic<int64_t> &cell =
        detail::shard().max_gauges[static_cast<int>(g)];
    if (v > cell.load(std::memory_order_relaxed))
        cell.store(v, std::memory_order_relaxed);
}

inline void
gaugeSet(LastGauge g, int64_t v)
{
    if (!detail::on())
        return;
    detail::shard().last_gauges[static_cast<int>(g)].store(
        v, std::memory_order_relaxed);
}

inline void
recordTimer(Timer t, double seconds)
{
    if (!detail::on())
        return;
    detail::Shard::TimerCell &cell =
        detail::shard().timers[static_cast<int>(t)];
    detail::add(cell.count, 1);
    detail::add(cell.sum_seconds, seconds);
    int64_t ns = static_cast<int64_t>(seconds * 1e9);
    int bucket = 0;
    while (ns > 0 && bucket < kTimerBuckets - 1) {
        ns >>= 1;
        ++bucket;
    }
    detail::add(cell.buckets[bucket], 1);
}

/** RAII timer: samples the clock only when telemetry is enabled and
 *  records into @p t on destruction. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer t) : t_(t), armed_(detail::on())
    {
        if (armed_)
            t0_ = std::chrono::steady_clock::now();
    }
    ~ScopedTimer()
    {
        if (armed_)
            recordTimer(t_, std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0_)
                                .count());
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Timer t_;
    bool armed_;
    std::chrono::steady_clock::time_point t0_;
};

// ---------------------------------------------------- fold/export API

/** Cumulative totals across all shards at one fold point. */
struct Snapshot
{
    int64_t counters[kNumCounters] = {};
    double seconds[kNumSeconds] = {};
    int64_t max_gauges[kNumMaxGauges] = {};
    int64_t last_gauges[kNumLastGauges] = {};
    struct TimerStat
    {
        int64_t count = 0;
        double sum_seconds = 0.0;
        int64_t buckets[kTimerBuckets] = {};
    };
    TimerStat timers[kNumTimers];

    int64_t counter(Counter c) const
    {
        return counters[static_cast<int>(c)];
    }
    double secondsOf(Seconds s) const
    {
        return seconds[static_cast<int>(s)];
    }
    int64_t maxGauge(MaxGauge g) const
    {
        return max_gauges[static_cast<int>(g)];
    }
    int64_t lastGauge(LastGauge g) const
    {
        return last_gauges[static_cast<int>(g)];
    }
    const TimerStat &timer(Timer t) const
    {
        return timers[static_cast<int>(t)];
    }
};

/** Fold every shard into cumulative totals (cheap; any thread; safe
 *  concurrently with writers, which at worst land in the next fold). */
Snapshot snapshot();

/**
 * Close one step of the time series: fold, diff against the previous
 * boundary, append a step record tagged @p step, and periodically
 * rewrite the configured JSON file. Call at a point where no parallel
 * kernels are in flight (the trainer calls it once per trainStep).
 * No-op when disabled.
 */
void stepBoundary(int64_t step);

/** Rewrite the configured JSON file now (atomic tmp + rename). No-op
 *  without a path. Returns false on I/O error. */
bool flush();

/** Steps recorded since configure/enable (size of the series). */
int64_t stepsRecorded();

/** One-line human summary of the cumulative totals (fig12, logs). */
std::string summary();

/** Programmatic configuration (tests/benches); overrides the
 *  environment, resets the series, the baseline fold and the step
 *  clock — cumulative shard cells are NOT cleared (they are
 *  monotonic), so deltas restart cleanly from here. */
struct Config
{
    bool enabled = false;
    /** Empty = collect in memory only. */
    std::string json_path;
    /** Rewrite the JSON file every this many boundaries (and at
     *  process exit / flush()). */
    int flush_every = 32;
};

void configure(const Config &config);

/** Parse a SNIP_TELEMETRY-style spec ("off" | "on" | "json:<path>")
 *  and configure() from it. Returns false (no change) on a malformed
 *  spec. */
bool configureFromSpec(const char *spec);

} // namespace telemetry
} // namespace snip

#endif // SNIP_TELEMETRY_TELEMETRY_H
