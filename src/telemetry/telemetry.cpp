#include "telemetry/telemetry.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <unistd.h>

#include "runtime/env_config.h"
#include "runtime/fault_injection.h"
#include "runtime/thread_pool.h"
#include "simd/dispatch.h"
#include "tensor/gemm.h"
#include "util/file_io.h"
#include "util/logging.h"
#include "util/thread_annotations.h"

namespace snip {
namespace telemetry {

namespace detail {

std::atomic<int> g_mode{-1};
thread_local Shard *t_shard = nullptr;

Shard::Shard()
{
    for (auto &c : counters)
        c.store(0, std::memory_order_relaxed);
    for (auto &s : seconds)
        s.store(0.0, std::memory_order_relaxed);
    for (auto &g : max_gauges)
        g.store(0, std::memory_order_relaxed);
    for (auto &g : last_gauges)
        g.store(0, std::memory_order_relaxed);
    for (auto &t : timers) {
        t.count.store(0, std::memory_order_relaxed);
        t.sum_seconds.store(0.0, std::memory_order_relaxed);
        for (auto &b : t.buckets)
            b.store(0, std::memory_order_relaxed);
    }
}

} // namespace detail

namespace {

using detail::Shard;

/** Registry state behind every slow path (shard creation, folds,
 *  export). Hot-path reads never take this lock. */
struct Registry
{
    /** Lock hierarchy: mu and flush_mu are never nested — a flusher
     *  renders under mu, releases it, then serializes the file write
     *  under flush_mu (SNIP_ACQUIRED_BEFORE documents the one legal
     *  order should that ever change). */
    util::Mutex mu SNIP_ACQUIRED_BEFORE(flush_mu);
    /** All shards ever created. Never freed: a dead thread's cells
     *  stay part of the cumulative totals (and thread_local cleanup
     *  order stays irrelevant). Intentionally leaked, like the global
     *  thread pool. The vector is guarded; the shard CELLS are not —
     *  they are owner-written atomics the folder reads relaxed. */
    std::vector<Shard *> shards SNIP_GUARDED_BY(mu);

    Config config SNIP_GUARDED_BY(mu);
    bool atexit_registered SNIP_GUARDED_BY(mu) = false;

    /** Baseline of the previous boundary (deltas are taken against
     *  it) and the boundary wall clock. */
    Snapshot prev SNIP_GUARDED_BY(mu);
    std::chrono::steady_clock::time_point prev_time
        SNIP_GUARDED_BY(mu);
    bool have_prev_time SNIP_GUARDED_BY(mu) = false;

    /** Rendered per-step JSON objects, joined at flush(). */
    std::vector<std::string> series SNIP_GUARDED_BY(mu);
    int boundaries_since_flush SNIP_GUARDED_BY(mu) = 0;

    /** Export writes happen outside mu (see prepareFlushLocked), so
     *  concurrent flushers need their own serialization: the staging
     *  file name is pid-derived, and two unserialized writers would
     *  truncate each other's staging data mid-write. flush_seq (under
     *  mu) stamps each prepared document; flush_published (under
     *  flush_mu) drops a snapshot that lost the race to a newer one
     *  instead of publishing stale data over it. */
    util::Mutex flush_mu;
    uint64_t flush_seq SNIP_GUARDED_BY(mu) = 0;
    uint64_t flush_published SNIP_GUARDED_BY(flush_mu) = 0;
};

Registry &
registry()
{
    static Registry *r = new Registry; // leaked; see shards comment
    return *r;
}

Snapshot
foldLocked(Registry &reg) SNIP_REQUIRES(reg.mu)
{
    Snapshot out;
    for (Shard *shard : reg.shards) {
        for (int i = 0; i < kNumCounters; ++i)
            out.counters[i] +=
                shard->counters[i].load(std::memory_order_relaxed);
        for (int i = 0; i < kNumSeconds; ++i)
            out.seconds[i] +=
                shard->seconds[i].load(std::memory_order_relaxed);
        for (int i = 0; i < kNumMaxGauges; ++i) {
            const int64_t v =
                shard->max_gauges[i].load(std::memory_order_relaxed);
            if (v > out.max_gauges[i])
                out.max_gauges[i] = v;
        }
        for (int i = 0; i < kNumLastGauges; ++i)
            out.last_gauges[i] +=
                shard->last_gauges[i].load(std::memory_order_relaxed);
        for (int i = 0; i < kNumTimers; ++i) {
            Snapshot::TimerStat &t = out.timers[i];
            const Shard::TimerCell &c = shard->timers[i];
            t.count += c.count.load(std::memory_order_relaxed);
            t.sum_seconds +=
                c.sum_seconds.load(std::memory_order_relaxed);
            for (int b = 0; b < kTimerBuckets; ++b)
                t.buckets[b] +=
                    c.buckets[b].load(std::memory_order_relaxed);
        }
    }
    return out;
}

// ------------------------------------------------------ JSON helpers

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char ch : s) {
        switch (ch) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\t':
                out += "\\t";
                break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
}

void
appendInt(std::string &out, const char *key, int64_t v, bool first)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %" PRId64,
                  first ? "" : ", ", key, v);
    out += buf;
}

void
appendDouble(std::string &out, const char *key, double v, bool first)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %.9g", first ? "" : ", ",
                  key, v);
    out += buf;
}

int64_t
counterDelta(const Snapshot &now, const Snapshot &prev, Counter c)
{
    return now.counter(c) - prev.counter(c);
}

double
secondsDelta(const Snapshot &now, const Snapshot &prev, Seconds s)
{
    return now.secondsOf(s) - prev.secondsOf(s);
}

/** One per-step record: subsystem-grouped deltas + derived rates. */
std::string
renderStepRecord(int64_t step, double wall_seconds, const Snapshot &now,
                 const Snapshot &prev, int pool_threads)
{
    std::string r = "{";
    appendInt(r, "step", step, true);
    appendDouble(r, "wall_s", wall_seconds, false);

    const double gemm_s = now.timer(Timer::Gemm).sum_seconds -
                          prev.timer(Timer::Gemm).sum_seconds;
    const int64_t flops = counterDelta(now, prev, Counter::GemmFlops);
    r += ", \"gemm\": {";
    appendInt(r, "calls", counterDelta(now, prev, Counter::GemmCalls),
              true);
    appendInt(r, "packed_calls",
              counterDelta(now, prev, Counter::GemmPackedCalls), false);
    appendInt(r, "legacy_calls",
              counterDelta(now, prev, Counter::GemmLegacyCalls), false);
    appendInt(r, "batched_items",
              counterDelta(now, prev, Counter::GemmBatchedItems), false);
    appendInt(r, "flops", flops, false);
    appendDouble(r, "seconds", gemm_s, false);
    appendDouble(r, "gflops",
                 gemm_s > 0.0 ? static_cast<double>(flops) / gemm_s / 1e9
                              : 0.0,
                 false);
    r += "}";

    r += ", \"pack_cache\": {";
    appendInt(r, "hits", counterDelta(now, prev, Counter::PackCacheHits),
              true);
    appendInt(r, "rebuilds",
              counterDelta(now, prev, Counter::PackCacheRebuilds), false);
    r += "}";

    r += ", \"arena\": {";
    appendInt(r, "high_water_bytes",
              now.maxGauge(MaxGauge::ArenaHighWaterBytes), true);
    appendInt(r, "reserved_bytes",
              now.lastGauge(LastGauge::ArenaReservedBytes), false);
    r += "}";

    const double busy = secondsDelta(now, prev, Seconds::PoolBusy);
    const double wall = secondsDelta(now, prev, Seconds::PoolWall);
    r += ", \"pool\": {";
    appendInt(r, "jobs", counterDelta(now, prev, Counter::PoolJobs),
              true);
    appendInt(r, "chunks", counterDelta(now, prev, Counter::PoolChunks),
              false);
    appendDouble(r, "busy_s", busy, false);
    appendDouble(r, "wall_s", wall, false);
    appendInt(r, "threads", pool_threads, false);
    appendDouble(r, "utilization",
                 wall > 0.0 && pool_threads > 0
                     ? busy / (wall * pool_threads)
                     : 0.0,
                 false);
    r += "}";

    r += ", \"attn\": {";
    appendInt(r, "fwd_calls",
              counterDelta(now, prev, Counter::AttnFwdCalls), true);
    appendInt(r, "bwd_calls",
              counterDelta(now, prev, Counter::AttnBwdCalls), false);
    appendDouble(r, "fwd_s",
                 now.timer(Timer::AttnFwd).sum_seconds -
                     prev.timer(Timer::AttnFwd).sum_seconds,
                 false);
    appendDouble(r, "bwd_s",
                 now.timer(Timer::AttnBwd).sum_seconds -
                     prev.timer(Timer::AttnBwd).sum_seconds,
                 false);
    r += "}";

    r += ", \"scheme\": {";
    appendInt(r, "updates",
              counterDelta(now, prev, Counter::SchemeUpdates), true);
    appendInt(r, "publishes",
              counterDelta(now, prev, Counter::SchemePublishes), false);
    appendDouble(r, "work_s",
                 secondsDelta(now, prev, Seconds::SchemeWork), false);
    appendDouble(r, "hidden_s",
                 secondsDelta(now, prev, Seconds::SchemeHidden), false);
    appendDouble(r, "exposed_s",
                 secondsDelta(now, prev, Seconds::SchemeExposed), false);
    appendDouble(r, "worker_busy_s",
                 secondsDelta(now, prev, Seconds::SchemeWorker), false);
    appendInt(r, "solve_cached",
              counterDelta(now, prev, Counter::SchemeSolveCached), false);
    appendInt(r, "skipped",
              counterDelta(now, prev, Counter::SchemeUpdateSkips), false);
    appendDouble(r, "handoff_wait_s",
                 now.timer(Timer::SchemeWait).sum_seconds -
                     prev.timer(Timer::SchemeWait).sum_seconds,
                 false);
    r += "}";

    r += ", \"serve\": {";
    appendInt(r, "requests",
              counterDelta(now, prev, Counter::ServeRequests), true);
    appendInt(r, "prefill_tokens",
              counterDelta(now, prev, Counter::ServePrefillTokens),
              false);
    appendInt(r, "decode_tokens",
              counterDelta(now, prev, Counter::ServeDecodeTokens),
              false);
    appendInt(r, "decode_steps",
              counterDelta(now, prev, Counter::ServeDecodeSteps), false);
    appendDouble(r, "prefill_s",
                 secondsDelta(now, prev, Seconds::ServePrefill), false);
    appendDouble(r, "decode_s",
                 secondsDelta(now, prev, Seconds::ServeDecode), false);
    appendInt(r, "kv_page_allocs",
              counterDelta(now, prev, Counter::KvPageAllocs), false);
    appendInt(r, "kv_page_releases",
              counterDelta(now, prev, Counter::KvPageReleases), false);
    appendInt(r, "kv_pages_in_use",
              now.lastGauge(LastGauge::KvPagesInUse), false);
    appendInt(r, "kv_pages_peak", now.maxGauge(MaxGauge::KvPagesPeak),
              false);
    appendInt(r, "rejected",
              counterDelta(now, prev, Counter::ServeRejected), false);
    appendInt(r, "preempted",
              counterDelta(now, prev, Counter::ServePreempted), false);
    appendInt(r, "expired",
              counterDelta(now, prev, Counter::ServeExpired), false);
    appendInt(r, "active_seqs",
              now.lastGauge(LastGauge::ServeActiveSeqs), false);
    r += "}";

    r += ", \"faults\": {";
    appendInt(r, "injected",
              counterDelta(now, prev, Counter::FaultsInjected), true);
    r += "}";

    const int64_t hits = counterDelta(now, prev, Counter::SolveCacheHits);
    const int64_t misses =
        counterDelta(now, prev, Counter::SolveCacheMisses);
    r += ", \"solve_cache\": {";
    appendInt(r, "hits", hits, true);
    appendInt(r, "misses", misses, false);
    appendInt(r, "evictions",
              counterDelta(now, prev, Counter::SolveCacheEvicts), false);
    appendDouble(r, "hit_rate",
                 hits + misses > 0
                     ? static_cast<double>(hits) /
                           static_cast<double>(hits + misses)
                     : 0.0,
                 false);
    r += "}}";
    return r;
}

const char *const kTimerNames[kNumTimers] = {
    "gemm", "attn_fwd", "attn_bwd", "pool_job", "scheme_wait"};

/** Cumulative timer histograms: the per-step records stay lean, the
 *  full log2(ns) distributions land once per document. */
std::string
renderTotals(const Snapshot &snap)
{
    std::string r = "{\"timers\": {";
    for (int i = 0; i < kNumTimers; ++i) {
        const Snapshot::TimerStat &t = snap.timers[i];
        if (i > 0)
            r += ", ";
        r += "\"";
        r += kTimerNames[i];
        r += "\": {";
        appendInt(r, "count", t.count, true);
        appendDouble(r, "sum_s", t.sum_seconds, false);
        r += ", \"log2ns_buckets\": [";
        for (int b = 0; b < kTimerBuckets; ++b) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%s%" PRId64,
                          b > 0 ? ", " : "", t.buckets[b]);
            r += buf;
        }
        r += "]}";
    }
    r += "}}";
    return r;
}

std::string
renderDocumentLocked(Registry &reg) SNIP_REQUIRES(reg.mu)
{
    std::string doc = "{\"schema\": \"snip-telemetry-v1\", \"meta\": {";
    appendInt(doc, "pid", static_cast<int64_t>(::getpid()), true);
    appendInt(doc, "threads", runtime::defaultThreadCount(), false);
    doc += ", \"simd\": \"";
    appendEscaped(doc, simd::activeBackendName());
    doc += "\", \"gemm_pack\": \"";
    switch (gemmPackMode()) {
        case GemmPackMode::On:
            doc += "on";
            break;
        case GemmPackMode::Off:
            doc += "off";
            break;
        case GemmPackMode::Auto:
            doc += "auto";
            break;
    }
    doc += "\"}, \"series\": [";
    for (size_t i = 0; i < reg.series.size(); ++i) {
        if (i > 0)
            doc += ", ";
        doc += reg.series[i];
    }
    doc += "], \"totals\": ";
    doc += renderTotals(foldLocked(reg));
    doc += "}\n";
    return doc;
}

/**
 * Render the export under the lock; the CALLER writes the file after
 * releasing reg.mu. File I/O must never hold the registry mutex: the
 * write seam reenters telemetry (the "telemetry.export" fault point
 * counts its injection, which may create this thread's shard — a
 * self-deadlock if the mutex were still held), and a slow disk would
 * stall every thread's first counter bump besides.
 *
 * Returns the path to write (empty = nothing to do) in @p path, the
 * rendered document in @p doc, and its freshness stamp in @p seq —
 * pass all three to writeExport() after dropping reg.mu.
 */
void
prepareFlushLocked(Registry &reg, std::string *path, std::string *doc,
                   uint64_t *seq) SNIP_REQUIRES(reg.mu)
{
    reg.boundaries_since_flush = 0;
    path->clear();
    if (reg.config.json_path.empty())
        return;
    *path = reg.config.json_path;
    *doc = renderDocumentLocked(reg);
    *seq = ++reg.flush_seq;
}

/** Write a document prepared under reg.mu, serialized against other
 *  exporters and skipped when a newer snapshot already landed. */
bool
writeExport(Registry &reg, uint64_t seq, const std::string &path,
            const std::string &doc) SNIP_EXCLUDES(reg.mu)
{
    util::MutexLock lk(reg.flush_mu);
    if (seq <= reg.flush_published)
        return true; // a newer snapshot was already published
    if (!detail::writeFileAtomic(path, doc))
        return false;
    reg.flush_published = seq;
    return true;
}

void
applyConfigLocked(Registry &reg, const Config &config)
    SNIP_REQUIRES(reg.mu)
{
    reg.config = config;
    reg.series.clear();
    reg.boundaries_since_flush = 0;
    reg.prev = foldLocked(reg);
    reg.prev_time = std::chrono::steady_clock::now();
    reg.have_prev_time = true;
    if (config.enabled && !config.json_path.empty() &&
        !reg.atexit_registered) {
        // Benches and tests rarely flush explicitly; make sure a
        // normally-exiting process always leaves a complete document.
        reg.atexit_registered = true;
        std::atexit([] { (void)flush(); });
    }
    detail::g_mode.store(config.enabled ? 1 : 0,
                         std::memory_order_release);
}

bool
parseSpec(const char *spec, Config *out)
{
    if (spec == nullptr || *spec == '\0' ||
        std::strcmp(spec, "off") == 0) {
        out->enabled = false;
        out->json_path.clear();
        return true;
    }
    if (std::strcmp(spec, "on") == 0) {
        out->enabled = true;
        out->json_path.clear();
        return true;
    }
    if (std::strncmp(spec, "json:", 5) == 0 && spec[5] != '\0') {
        out->enabled = true;
        out->json_path = spec + 5;
        return true;
    }
    return false;
}

} // namespace

namespace detail {

bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    // Exports are observability, not durable state: a lost export is
    // re-rendered at the next flush, so readers-only atomicity
    // (durable = false) is enough. Both the telemetry and the trace
    // exporter funnel through this one seam.
    if (SNIP_FAULT_POINT("telemetry.export"))
        return false;
    return fsio::writeFileAtomic(path, content, /*durable=*/false);
}

int
resolveMode()
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    int mode = g_mode.load(std::memory_order_acquire);
    if (mode >= 0)
        return mode; // raced with another resolver/configure()
    Config config;
    const char *spec =
        runtime::envConfig().telemetry().cstrOrNull();
    if (!parseSpec(spec, &config)) {
        warn("unknown SNIP_TELEMETRY value '", spec,
             "' (expected off|on|json:<path>); telemetry disabled");
        config = Config{};
    }
    applyConfigLocked(reg, config);
    return config.enabled ? 1 : 0;
}

Shard &
shardSlow()
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    if (t_shard == nullptr) {
        t_shard = new Shard; // leaked; see Registry::shards
        reg.shards.push_back(t_shard);
    }
    return *t_shard;
}

} // namespace detail

Snapshot
snapshot()
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    return foldLocked(reg);
}

void
stepBoundary(int64_t step)
{
    if (!detail::on())
        return;
    // Resolve outside the registry lock: both may take their own.
    const int pool_threads = runtime::globalThreadPool().numThreads();
    Registry &reg = registry();
    std::string flush_path, flush_doc;
    uint64_t flush_seq = 0;
    {
        util::MutexLock lk(reg.mu);
        const auto now_time = std::chrono::steady_clock::now();
        double wall_seconds = 0.0;
        if (reg.have_prev_time)
            wall_seconds =
                std::chrono::duration<double>(now_time - reg.prev_time)
                    .count();
        const Snapshot now = foldLocked(reg);
        reg.series.push_back(
            renderStepRecord(step, wall_seconds, now, reg.prev,
                             pool_threads));
        reg.prev = now;
        reg.prev_time = now_time;
        reg.have_prev_time = true;
        if (reg.config.flush_every > 0 &&
            ++reg.boundaries_since_flush >= reg.config.flush_every)
            prepareFlushLocked(reg, &flush_path, &flush_doc,
                               &flush_seq);
    }
    if (!flush_path.empty())
        (void)writeExport(reg, flush_seq, flush_path, flush_doc);
}

bool
flush()
{
    if (detail::g_mode.load(std::memory_order_acquire) != 1)
        return true;
    Registry &reg = registry();
    std::string path, doc;
    uint64_t seq = 0;
    {
        util::MutexLock lk(reg.mu);
        prepareFlushLocked(reg, &path, &doc, &seq);
    }
    if (path.empty())
        return true;
    return writeExport(reg, seq, path, doc);
}

int64_t
stepsRecorded()
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    return static_cast<int64_t>(reg.series.size());
}

std::string
summary()
{
    const Snapshot s = snapshot();
    const double gemm_s = s.timer(Timer::Gemm).sum_seconds;
    const int64_t lookups = s.counter(Counter::SolveCacheHits) +
                            s.counter(Counter::SolveCacheMisses);
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "gemm %lld calls %.2f GFLOP %s%.1f GFLOP/s; pack cache %lld/%lld "
        "hit; arena hw %lld B; pool %lld jobs; attn %lld+%lld; scheme "
        "%lld updates (%.0f%% hidden); solve cache %lld/%lld hit",
        static_cast<long long>(s.counter(Counter::GemmCalls)),
        static_cast<double>(s.counter(Counter::GemmFlops)) / 1e9,
        gemm_s > 0.0 ? "@ " : "",
        gemm_s > 0.0
            ? static_cast<double>(s.counter(Counter::GemmFlops)) /
                  gemm_s / 1e9
            : 0.0,
        static_cast<long long>(s.counter(Counter::PackCacheHits)),
        static_cast<long long>(s.counter(Counter::PackCacheHits) +
                               s.counter(Counter::PackCacheRebuilds)),
        static_cast<long long>(s.maxGauge(MaxGauge::ArenaHighWaterBytes)),
        static_cast<long long>(s.counter(Counter::PoolJobs)),
        static_cast<long long>(s.counter(Counter::AttnFwdCalls)),
        static_cast<long long>(s.counter(Counter::AttnBwdCalls)),
        static_cast<long long>(s.counter(Counter::SchemeUpdates)),
        s.secondsOf(Seconds::SchemeWork) > 0.0
            ? 100.0 * s.secondsOf(Seconds::SchemeHidden) /
                  s.secondsOf(Seconds::SchemeWork)
            : 0.0,
        static_cast<long long>(s.counter(Counter::SolveCacheHits)),
        static_cast<long long>(lookups));
    return buf;
}

void
configure(const Config &config)
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    applyConfigLocked(reg, config);
}

bool
configureFromSpec(const char *spec)
{
    Config config;
    if (!parseSpec(spec, &config))
        return false;
    configure(config);
    return true;
}

} // namespace telemetry
} // namespace snip
