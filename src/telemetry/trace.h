/**
 * @file
 * Structured span tracing: a lock-free per-thread flight recorder with
 * Chrome-trace-event/Perfetto JSON export.
 *
 * Where the telemetry registry (telemetry.h) answers "how much / how
 * fast on average", the tracer answers "what happened to THIS request"
 * and "where did THIS step's time go": every instrumented scope — a
 * trainStep phase, a scheme-worker solve, a coalesced decode iteration
 * — lands as one timestamped span, drained into a timeline you can
 * open in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
 *
 * Design (the PR 6 sharded-cell discipline applied to events):
 *
 *  - Each thread owns one fixed-capacity ring of span cells, created
 *    on its first span, registered once, never freed. The owner is the
 *    only writer and uses relaxed load+store pairs — no hot-path RMW,
 *    no lock, no allocation once the ring exists. Recording a span is
 *    two clock samples plus a handful of plain stores.
 *  - The ring is a flight recorder: when it wraps, the NEWEST spans
 *    win and the oldest are overwritten. Cells are seqlock-stamped
 *    (ticket written last on publish, re-checked by the reader), so a
 *    drain that races a writer skips torn cells instead of exporting
 *    garbage; export points (process exit, flush()) are normally
 *    quiescent anyway.
 *  - Span names and arg keys are static strings (string literals at
 *    the instrumentation site) — recording never copies or hashes
 *    text.
 *  - Tracing observes, it never steers: no kernel branches on trace
 *    state, so SNIP_TRACE=off|on cannot change training numerics.
 *    Disabled, every hook is one relaxed flag load and a predicted
 *    branch.
 *
 * Enabling: the SNIP_TRACE environment variable —
 *
 *   SNIP_TRACE=off          disabled (default when unset)
 *   SNIP_TRACE=on           record in memory (renderJson() on demand)
 *   SNIP_TRACE=json:<path>  record and write the Chrome trace JSON to
 *                           <path> at exit/flush() (atomically: tmp +
 *                           rename, like the telemetry export)
 *
 * or programmatically via configure() (tests, benches — e.g.
 * `serve_throughput --trace`).
 *
 * The document is the Chrome trace-event format:
 * {"traceEvents": [{"ph": "X", "pid": ..., "tid": ..., "ts": <us>,
 * "dur": <us>, "cat": ..., "name": ..., "args": {...}}, ...]} plus
 * thread-name metadata events. `tools/trace_report.py` summarizes one
 * (per-category time, slowest requests, decode-width histogram) and
 * structurally validates it in CI (--check).
 */
#ifndef SNIP_TELEMETRY_TRACE_H
#define SNIP_TELEMETRY_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace snip {
namespace trace {

/** Span category; exported as the Chrome event "cat" field so
 *  Perfetto can color/filter by subsystem. */
enum class Category : int
{
    Train,  ///< trainStep phases: fwd, bwd, optim, scheme_apply
    Scheme, ///< async update service: snapshot, solve, handoff_wait
    Pool,   ///< sampled parallelFor jobs
    Gemm,   ///< GEMM driver invocations
    Attn,   ///< attention fwd/bwd core invocations
    Serve,  ///< request lifecycle: queued, prefill, decode_step, ...
    kCount
};

constexpr int kNumCategories = static_cast<int>(Category::kCount);

/** Spans retained per thread before the flight recorder wraps and the
 *  oldest are overwritten (newest always win). */
constexpr int64_t kRingCapacity = 8192;

namespace detail {

/** One recorded span. Fields are atomics purely so a concurrent
 *  drain is defined behavior; the owning thread writes them with
 *  relaxed stores. `seq` is the publish ticket (seqlock stamp): it is
 *  zeroed before the fields are rewritten and re-stamped last, and the
 *  reader re-checks it after copying the fields. */
struct SpanCell
{
    std::atomic<uint64_t> seq{0};
    std::atomic<int64_t> ts_ns{0};
    std::atomic<int64_t> dur_ns{0};
    std::atomic<int> cat{0};
    std::atomic<const char *> name{nullptr};
    std::atomic<const char *> arg_key[2];
    std::atomic<int64_t> arg_val[2];

    SpanCell()
    {
        arg_key[0].store(nullptr, std::memory_order_relaxed);
        arg_key[1].store(nullptr, std::memory_order_relaxed);
        arg_val[0].store(0, std::memory_order_relaxed);
        arg_val[1].store(0, std::memory_order_relaxed);
    }
};

/** One thread's flight recorder. Created on the thread's first span,
 *  registered once, intentionally leaked (a dead thread's spans stay
 *  exportable, and thread_local destruction order stays irrelevant). */
struct Ring
{
    SpanCell cells[kRingCapacity];
    /** Publish ticket of the newest span (1-based; owner-only relaxed
     *  load+store increments, never an RMW). */
    std::atomic<uint64_t> head{0};
    /** Small stable thread id assigned at registration (1-based). */
    int tid = 0;
    /** Optional static display name (Perfetto thread_name metadata). */
    std::atomic<const char *> thread_name{nullptr};
};

/** -1 = unresolved (parse SNIP_TRACE on first use), 0 = off, 1 = on. */
extern std::atomic<int> g_mode;

int resolveMode();
Ring &ringSlow();

inline bool
on()
{
    int mode = g_mode.load(std::memory_order_relaxed);
    if (mode < 0)
        mode = resolveMode();
    return mode == 1;
}

extern thread_local Ring *t_ring;

inline Ring &
ring()
{
    Ring *r = t_ring;
    return r != nullptr ? *r : ringSlow();
}

} // namespace detail

/** True when tracing is recording (hot-path fast check). */
inline bool
enabled()
{
    return detail::on();
}

/** Monotonic nanoseconds since the process's trace epoch (the first
 *  trace query). All span timestamps share this epoch, so spans from
 *  different threads line up on one timeline. */
int64_t nowNs();

/**
 * Record one complete span on the calling thread's ring. No-op when
 * disabled. @p name and the arg keys must be string literals (or
 * otherwise outlive the process) — the recorder stores the pointers.
 * Zero heap allocations once this thread's ring exists.
 */
inline void
record(Category cat, const char *name, int64_t ts_ns, int64_t dur_ns,
       const char *k0 = nullptr, int64_t v0 = 0,
       const char *k1 = nullptr, int64_t v1 = 0)
{
    if (!detail::on())
        return;
    detail::Ring &r = detail::ring();
    const uint64_t ticket =
        r.head.load(std::memory_order_relaxed) + 1;
    detail::SpanCell &c =
        r.cells[(ticket - 1) % static_cast<uint64_t>(kRingCapacity)];
    // Seqlock publish: invalidate, write fields, stamp, bump head.
    c.seq.store(0, std::memory_order_release);
    c.ts_ns.store(ts_ns, std::memory_order_relaxed);
    c.dur_ns.store(dur_ns, std::memory_order_relaxed);
    c.cat.store(static_cast<int>(cat), std::memory_order_relaxed);
    c.name.store(name, std::memory_order_relaxed);
    c.arg_key[0].store(k0, std::memory_order_relaxed);
    c.arg_val[0].store(v0, std::memory_order_relaxed);
    c.arg_key[1].store(k1, std::memory_order_relaxed);
    c.arg_val[1].store(v1, std::memory_order_relaxed);
    c.seq.store(ticket, std::memory_order_release);
    r.head.store(ticket, std::memory_order_release);
}

/**
 * RAII span: samples the clock only when tracing is enabled and
 * records [construction, destruction) with the args captured at
 * construction. The `armed` overload lets sampled call sites (the
 * thread pool) force-disarm without a second branch structure.
 */
class TraceScope
{
  public:
    TraceScope(Category cat, const char *name,
               const char *k0 = nullptr, int64_t v0 = 0,
               const char *k1 = nullptr, int64_t v1 = 0)
        : TraceScope(detail::on(), cat, name, k0, v0, k1, v1)
    {
    }

    TraceScope(bool armed, Category cat, const char *name,
               const char *k0 = nullptr, int64_t v0 = 0,
               const char *k1 = nullptr, int64_t v1 = 0)
        : cat_(cat), name_(name), k0_(k0), v0_(v0), k1_(k1), v1_(v1),
          armed_(armed && detail::on())
    {
        if (armed_)
            t0_ns_ = nowNs();
    }

    ~TraceScope()
    {
        if (armed_)
            record(cat_, name_, t0_ns_, nowNs() - t0_ns_, k0_, v0_,
                   k1_, v1_);
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    Category cat_;
    const char *name_;
    const char *k0_;
    int64_t v0_;
    const char *k1_;
    int64_t v1_;
    bool armed_;
    int64_t t0_ns_ = 0;
};

/** Name the calling thread on the exported timeline (Perfetto
 *  thread_name metadata). @p name must be a static string. No-op when
 *  disabled. */
void setCurrentThreadName(const char *name);

/** Render the Chrome trace-event JSON document from every thread's
 *  ring (newest <= kRingCapacity spans per thread). Any thread; safe
 *  concurrently with writers (torn cells are skipped). */
std::string renderJson();

/** Write the document to the configured json path now (atomic tmp +
 *  rename). No-op without a path. Returns false on I/O error. */
bool flush();

/** Spans currently resident across all rings (post-wrap: at most
 *  kRingCapacity per thread). */
int64_t spansRecorded();

/** Programmatic configuration (tests, benches); overrides the
 *  environment. Rings are NOT cleared (spans already recorded stay
 *  exportable); the mode flag and sink path are replaced. */
struct Config
{
    bool enabled = false;
    /** Empty = record in memory only. */
    std::string json_path;
};

void configure(const Config &config);

/** Parse a SNIP_TRACE-style spec ("off" | "on" | "json:<path>") and
 *  configure() from it. Returns false (no change) on a malformed
 *  spec. */
bool configureFromSpec(const char *spec);

} // namespace trace
} // namespace snip

#endif // SNIP_TELEMETRY_TRACE_H
