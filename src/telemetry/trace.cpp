#include "telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include <unistd.h>

#include "runtime/env_config.h"
#include "telemetry/telemetry.h"
#include "util/logging.h"
#include "util/thread_annotations.h"

namespace snip {
namespace trace {

namespace detail {

std::atomic<int> g_mode{-1};
thread_local Ring *t_ring = nullptr;

} // namespace detail

namespace {

using detail::Ring;
using detail::SpanCell;

const char *const kCategoryNames[kNumCategories] = {
    "train", "scheme", "pool", "gemm", "attn", "serve"};

/** Registry state behind every slow path (ring creation, export).
 *  Hot-path recording never takes this lock. */
struct Registry
{
    util::Mutex mu;
    /** All rings ever created, in registration order (the order
     *  assigns tids). Never freed; see Ring. The vector is guarded;
     *  ring CELLS are owner-written under the seqlock protocol the
     *  exporter reads with acquire loads. */
    std::vector<Ring *> rings SNIP_GUARDED_BY(mu);

    Config config SNIP_GUARDED_BY(mu);
    bool atexit_registered SNIP_GUARDED_BY(mu) = false;
};

Registry &
registry()
{
    static Registry *r = new Registry; // leaked; see rings comment
    return *r;
}

/** Steady-clock origin shared by every span. Resolved once on first
 *  use (thread-safe magic static; no lock or allocation afterwards). */
std::chrono::steady_clock::time_point
traceEpoch()
{
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return epoch;
}

void
appendEscaped(std::string &out, const char *s)
{
    for (; *s != '\0'; ++s) {
        const char ch = *s;
        switch (ch) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\t':
                out += "\\t";
                break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
}

/** A consistent copy of one cell, or failure when the read raced the
 *  owner mid-rewrite (seqlock double-check). */
struct SpanCopy
{
    int64_t ts_ns = 0;
    int64_t dur_ns = 0;
    int cat = 0;
    const char *name = nullptr;
    const char *arg_key[2] = {nullptr, nullptr};
    int64_t arg_val[2] = {0, 0};
};

bool
readCell(const SpanCell &c, uint64_t ticket, SpanCopy *out)
{
    if (c.seq.load(std::memory_order_acquire) != ticket)
        return false;
    out->ts_ns = c.ts_ns.load(std::memory_order_relaxed);
    out->dur_ns = c.dur_ns.load(std::memory_order_relaxed);
    out->cat = c.cat.load(std::memory_order_relaxed);
    out->name = c.name.load(std::memory_order_relaxed);
    out->arg_key[0] = c.arg_key[0].load(std::memory_order_relaxed);
    out->arg_val[0] = c.arg_val[0].load(std::memory_order_relaxed);
    out->arg_key[1] = c.arg_key[1].load(std::memory_order_relaxed);
    out->arg_val[1] = c.arg_val[1].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    return c.seq.load(std::memory_order_relaxed) == ticket &&
           out->name != nullptr;
}

void
appendEvent(std::string &out, int64_t pid, int tid, const SpanCopy &s,
            bool first)
{
    if (!first)
        out += ",\n";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "    {\"ph\": \"X\", \"pid\": %lld, \"tid\": %d, "
                  "\"ts\": %.3f, \"dur\": %.3f",
                  static_cast<long long>(pid), tid,
                  static_cast<double>(s.ts_ns) / 1e3,
                  static_cast<double>(s.dur_ns) / 1e3);
    out += buf;
    out += ", \"cat\": \"";
    out += (s.cat >= 0 && s.cat < kNumCategories)
               ? kCategoryNames[s.cat]
               : "other";
    out += "\", \"name\": \"";
    appendEscaped(out, s.name);
    out += "\"";
    if (s.arg_key[0] != nullptr || s.arg_key[1] != nullptr) {
        out += ", \"args\": {";
        bool first_arg = true;
        for (int a = 0; a < 2; ++a) {
            if (s.arg_key[a] == nullptr)
                continue;
            if (!first_arg)
                out += ", ";
            first_arg = false;
            out += "\"";
            appendEscaped(out, s.arg_key[a]);
            std::snprintf(buf, sizeof(buf), "\": %lld",
                          static_cast<long long>(s.arg_val[a]));
            out += buf;
        }
        out += "}";
    }
    out += "}";
}

void
appendThreadNameEvent(std::string &out, int64_t pid, int tid,
                      const char *name, bool first)
{
    if (!first)
        out += ",\n";
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "    {\"ph\": \"M\", \"pid\": %lld, \"tid\": %d, "
                  "\"name\": \"thread_name\", \"args\": {\"name\": \"",
                  static_cast<long long>(pid), tid);
    out += buf;
    appendEscaped(out, name);
    out += "\"}}";
}

std::string
renderJsonLocked(Registry &reg) SNIP_REQUIRES(reg.mu)
{
    const int64_t pid = static_cast<int64_t>(::getpid());
    std::string doc = "{\"traceEvents\": [\n";
    bool first = true;
    for (const Ring *r : reg.rings) {
        if (const char *tn =
                r->thread_name.load(std::memory_order_acquire)) {
            appendThreadNameEvent(doc, pid, r->tid, tn, first);
            first = false;
        }
        const uint64_t head = r->head.load(std::memory_order_acquire);
        const uint64_t cap = static_cast<uint64_t>(kRingCapacity);
        const uint64_t lo = head > cap ? head - cap + 1 : 1;
        for (uint64_t ticket = lo; ticket <= head; ++ticket) {
            SpanCopy s;
            if (!readCell(r->cells[(ticket - 1) % cap], ticket, &s))
                continue; // torn by a concurrent writer; skip
            appendEvent(doc, pid, r->tid, s, first);
            first = false;
        }
    }
    doc += "\n  ], \"displayTimeUnit\": \"ms\"}\n";
    return doc;
}

bool
flushLocked(Registry &reg) SNIP_REQUIRES(reg.mu)
{
    if (reg.config.json_path.empty())
        return true;
    return telemetry::detail::writeFileAtomic(reg.config.json_path,
                                              renderJsonLocked(reg));
}

void
applyConfigLocked(Registry &reg, const Config &config)
    SNIP_REQUIRES(reg.mu)
{
    reg.config = config;
    if (config.enabled && !config.json_path.empty() &&
        !reg.atexit_registered) {
        // Benches and tests rarely flush explicitly; make sure a
        // normally-exiting process always leaves a complete document.
        reg.atexit_registered = true;
        std::atexit([] { (void)flush(); });
    }
    // Pin the shared epoch before any recorder can observe mode=on,
    // so the first span never pays the magic-static guard.
    (void)traceEpoch();
    detail::g_mode.store(config.enabled ? 1 : 0,
                         std::memory_order_release);
}

bool
parseSpec(const char *spec, Config *out)
{
    if (spec == nullptr || *spec == '\0' ||
        std::strcmp(spec, "off") == 0) {
        out->enabled = false;
        out->json_path.clear();
        return true;
    }
    if (std::strcmp(spec, "on") == 0) {
        out->enabled = true;
        out->json_path.clear();
        return true;
    }
    if (std::strncmp(spec, "json:", 5) == 0 && spec[5] != '\0') {
        out->enabled = true;
        out->json_path = spec + 5;
        return true;
    }
    return false;
}

} // namespace

namespace detail {

int
resolveMode()
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    int mode = g_mode.load(std::memory_order_acquire);
    if (mode >= 0)
        return mode; // raced with another resolver/configure()
    Config config;
    const char *spec = runtime::envConfig().trace().cstrOrNull();
    if (!parseSpec(spec, &config)) {
        warn("unknown SNIP_TRACE value '", spec,
             "' (expected off|on|json:<path>); tracing disabled");
        config = Config{};
    }
    applyConfigLocked(reg, config);
    return config.enabled ? 1 : 0;
}

Ring &
ringSlow()
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    if (t_ring == nullptr) {
        t_ring = new Ring; // leaked; see Registry::rings
        reg.rings.push_back(t_ring);
        t_ring->tid = static_cast<int>(reg.rings.size());
    }
    return *t_ring;
}

} // namespace detail

int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - traceEpoch())
        .count();
}

void
setCurrentThreadName(const char *name)
{
    if (!detail::on())
        return;
    detail::ring().thread_name.store(name, std::memory_order_release);
}

std::string
renderJson()
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    return renderJsonLocked(reg);
}

bool
flush()
{
    if (detail::g_mode.load(std::memory_order_acquire) != 1)
        return true;
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    return flushLocked(reg);
}

int64_t
spansRecorded()
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    int64_t n = 0;
    for (const Ring *r : reg.rings) {
        const uint64_t head = r->head.load(std::memory_order_acquire);
        n += static_cast<int64_t>(
            std::min(head, static_cast<uint64_t>(kRingCapacity)));
    }
    return n;
}

void
configure(const Config &config)
{
    Registry &reg = registry();
    util::MutexLock lk(reg.mu);
    applyConfigLocked(reg, config);
}

bool
configureFromSpec(const char *spec)
{
    Config config;
    if (!parseSpec(spec, &config))
        return false;
    configure(config);
    return true;
}

} // namespace trace
} // namespace snip
