#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace snip {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    va_end(args);
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

ArgParser::ArgParser(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string tok = argv[i];
        if (startsWith(tok, "--")) {
            std::string body = tok.substr(2);
            size_t eq = body.find('=');
            if (eq == std::string::npos)
                kv_.emplace_back(body, "");
            else
                kv_.emplace_back(body.substr(0, eq), body.substr(eq + 1));
        } else {
            pos_.push_back(tok);
        }
    }
}

std::string
ArgParser::get(const std::string &key, const std::string &def) const
{
    for (const auto &[k, v] : kv_) {
        if (k == key)
            return v;
    }
    return def;
}

int64_t
ArgParser::getInt(const std::string &key, int64_t def) const
{
    std::string v = get(key, "");
    if (v.empty())
        return def;
    return std::strtoll(v.c_str(), nullptr, 10);
}

double
ArgParser::getDouble(const std::string &key, double def) const
{
    std::string v = get(key, "");
    if (v.empty())
        return def;
    return std::strtod(v.c_str(), nullptr);
}

bool
ArgParser::has(const std::string &key) const
{
    for (const auto &[k, v] : kv_) {
        (void)v;
        if (k == key)
            return true;
    }
    return false;
}

} // namespace snip
