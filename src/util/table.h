/**
 * @file
 * Lightweight result-table formatting.
 *
 * The benchmark harnesses print the paper's tables and figure series as
 * aligned ASCII tables (for reading in a terminal) and optionally CSV
 * (for plotting). TablePrinter collects rows of strings/numbers and
 * renders both forms.
 */
#ifndef SNIP_UTIL_TABLE_H
#define SNIP_UTIL_TABLE_H

#include <string>
#include <vector>

namespace snip {

/**
 * Accumulates a rectangular table of cells and pretty-prints it.
 *
 * Columns are sized to the widest cell. Numeric convenience overloads
 * format with a fixed precision.
 */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls append to it. */
    void newRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &value);

    /** Append a formatted double cell (fixed, @p precision digits). */
    void cell(double value, int precision = 2);

    /** Append an integer cell. */
    void cell(int64_t value);

    /** Render as an aligned ASCII table. */
    std::string toString() const;

    /** Render as CSV (no escaping of commas inside cells is attempted). */
    std::string toCsv() const;

    /** Print the ASCII form to stdout. */
    void print() const;

    /** Number of data rows accumulated so far. */
    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Write a string to a file, creating/overwriting it. Returns success. */
bool writeFile(const std::string &path, const std::string &contents);

} // namespace snip

#endif // SNIP_UTIL_TABLE_H
