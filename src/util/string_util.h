/**
 * @file
 * Small string helpers shared by the CLI front-ends and formatters.
 */
#ifndef SNIP_UTIL_STRING_UTIL_H
#define SNIP_UTIL_STRING_UTIL_H

#include <string>
#include <vector>

namespace snip {

/** Split @p s on @p sep; empty fields are preserved. */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip leading/trailing ASCII whitespace. */
std::string trim(const std::string &s);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** True if @p s begins with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/**
 * Minimal command-line flag parser for the bench/example binaries.
 *
 * Accepts "--key=value" and "--flag" tokens; everything else is kept as
 * a positional argument.
 */
class ArgParser
{
  public:
    ArgParser(int argc, char **argv);

    /** Value for --key=value, or @p def if absent. */
    std::string get(const std::string &key, const std::string &def) const;

    /** Integer value for --key=value, or @p def. */
    int64_t getInt(const std::string &key, int64_t def) const;

    /** Double value for --key=value, or @p def. */
    double getDouble(const std::string &key, double def) const;

    /** True if --key or --key=... was present. */
    bool has(const std::string &key) const;

    /** Positional (non --) arguments in order. */
    const std::vector<std::string> &positional() const { return pos_; }

  private:
    std::vector<std::pair<std::string, std::string>> kv_;
    std::vector<std::string> pos_;
};

} // namespace snip

#endif // SNIP_UTIL_STRING_UTIL_H
