#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace snip {

namespace {

/** SplitMix64 step, used for seeding and stream splitting. */
uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::nextU64()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::nextDouble()
{
    return (nextU64() >> 11) * 0x1.0p-53;
}

float
Rng::nextFloat()
{
    return (nextU64() >> 40) * 0x1.0p-24f;
}

uint64_t
Rng::nextBelow(uint64_t n)
{
    SNIP_ASSERT(n > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -n % n;
    for (;;) {
        uint64_t r = nextU64();
        if (r >= threshold)
            return r % n;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    SNIP_ASSERT(lo <= hi);
    return lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::nextGaussian()
{
    // Box-Muller; draw u1 in (0,1] to avoid log(0).
    double u1 = 1.0 - nextDouble();
    double u2 = nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double
Rng::nextGaussian(double mean, double stddev)
{
    return mean + stddev * nextGaussian();
}

bool
Rng::nextBernoulli(double p)
{
    return nextDouble() < p;
}

Rng
Rng::split()
{
    uint64_t child_seed = nextU64() ^ 0xA5A5A5A55A5A5A5Aull;
    return Rng(child_seed);
}

} // namespace snip
