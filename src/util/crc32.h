/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
 * range — the checksum behind the checkpoint and solve-cache file
 * footers. Streamable: feed the previous return value back as @p seed
 * to continue a running checksum across buffers.
 */
#ifndef SNIP_UTIL_CRC32_H
#define SNIP_UTIL_CRC32_H

#include <cstddef>
#include <cstdint>

namespace snip {

/** CRC-32 of @p n bytes at @p data, continuing from @p seed (pass 0
 *  to start; pass a previous return value to extend). */
uint32_t crc32(const void *data, size_t n, uint32_t seed = 0);

} // namespace snip

#endif // SNIP_UTIL_CRC32_H
