#include "util/crc32.h"

namespace snip {

namespace {

struct Crc32Table
{
    uint32_t entries[256];

    Crc32Table()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            entries[i] = c;
        }
    }
};

} // namespace

uint32_t
crc32(const void *data, size_t n, uint32_t seed)
{
    static const Crc32Table table;
    const unsigned char *p = static_cast<const unsigned char *>(data);
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < n; ++i)
        c = table.entries[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace snip
