/**
 * @file
 * Concurrency-contract vocabulary: Clang thread-safety-analysis macros
 * plus the annotated mutex family every locked subsystem uses.
 *
 * The repo's determinism guarantee (training and serving bit-identical
 * at 1/2/8 threads) rests on hand-maintained mutex <-> data contracts.
 * This header makes those contracts machine-checkable: a member
 * declared `SNIP_GUARDED_BY(mu_)` can only be touched while `mu_` is
 * held, a function declared `SNIP_REQUIRES(mu_)` can only be called
 * with it held, and clang's `-Wthread-safety` (promoted to an error in
 * CI for clang builds) rejects every violation at compile time.
 *
 * Under GCC (which has no thread-safety analysis) every macro expands
 * to nothing, so the annotations are free documentation there and the
 * build stays portable.
 *
 * Why a wrapper mutex instead of std::mutex: the analysis only tracks
 * capabilities through *annotated* acquire/release functions, and
 * libstdc++'s std::mutex / std::lock_guard carry no annotations. The
 * `Mutex` / `MutexLock` / `CondVar` types below are thin, zero-
 * overhead shims over the std primitives whose operations ARE
 * annotated — use them for any new locked state.
 *
 * Condition-variable discipline: CondVar::wait(mu) is annotated
 * SNIP_REQUIRES(mu) — the caller holds the lock before and after, and
 * the temporary release inside the wait is invisible to the analysis
 * (the standard treatment, same as abseil). Write waits as explicit
 * `while (!condition) cv.wait(mu);` loops rather than lambda
 * predicates: the loop condition is then checked in the annotated
 * caller's scope, whereas a lambda body is a separate function the
 * analysis would re-check without knowing the lock is held.
 *
 * TSan annotations (SNIP_TSAN_*): the intentional lock-free designs in
 * this codebase (telemetry shards, the seqlock trace ring) perform all
 * cross-thread communication through std::atomic, which ThreadSanitizer
 * understands natively — they need no suppressions. The macros exist
 * for any future pattern that must express a happens-before edge TSan
 * cannot infer; prefer std::atomic first.
 */
#ifndef SNIP_UTIL_THREAD_ANNOTATIONS_H
#define SNIP_UTIL_THREAD_ANNOTATIONS_H

#include <condition_variable>
#include <mutex>

// --------------------------------------------------- attribute macros

#if defined(__clang__) && !defined(SNIP_NO_THREAD_SAFETY_ANALYSIS_BUILD)
#define SNIP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SNIP_THREAD_ANNOTATION_(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define SNIP_CAPABILITY(x) SNIP_THREAD_ANNOTATION_(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define SNIP_SCOPED_CAPABILITY SNIP_THREAD_ANNOTATION_(scoped_lockable)

/** Data member readable/writable only while holding the mutex. */
#define SNIP_GUARDED_BY(x) SNIP_THREAD_ANNOTATION_(guarded_by(x))

/** Pointer member whose *pointee* is protected by the mutex. */
#define SNIP_PT_GUARDED_BY(x) SNIP_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Function callable only with the listed capabilities held. */
#define SNIP_REQUIRES(...)                                                   \
    SNIP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Function that acquires the listed capabilities (and returns holding
 *  them). */
#define SNIP_ACQUIRE(...)                                                    \
    SNIP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function that releases the listed capabilities. */
#define SNIP_RELEASE(...)                                                    \
    SNIP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Function that acquires the capability when returning @p ret. */
#define SNIP_TRY_ACQUIRE(...)                                                \
    SNIP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/** Function that must NOT be entered with the listed capabilities held
 *  (deadlock guard for self-locking entry points). */
#define SNIP_EXCLUDES(...)                                                   \
    SNIP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Static lock-ordering declarations (documented hierarchy). */
#define SNIP_ACQUIRED_BEFORE(...)                                            \
    SNIP_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define SNIP_ACQUIRED_AFTER(...)                                             \
    SNIP_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/** Escape hatch for functions the analysis cannot model; every use
 *  needs a comment stating the manual proof. */
#define SNIP_NO_THREAD_SAFETY_ANALYSIS                                       \
    SNIP_THREAD_ANNOTATION_(no_thread_safety_analysis)

// ------------------------------------------------- TSan annotations

#if defined(__SANITIZE_THREAD__)
#define SNIP_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SNIP_TSAN_ENABLED 1
#endif
#endif

#if defined(SNIP_TSAN_ENABLED)
extern "C" {
void AnnotateHappensBefore(const char *file, int line,
                           const volatile void *addr);
void AnnotateHappensAfter(const char *file, int line,
                          const volatile void *addr);
void AnnotateIgnoreWritesBegin(const char *file, int line);
void AnnotateIgnoreWritesEnd(const char *file, int line);
}
/** Declare a happens-before edge TSan cannot infer (publisher side). */
#define SNIP_TSAN_HAPPENS_BEFORE(addr)                                       \
    AnnotateHappensBefore(__FILE__, __LINE__, (addr))
/** Consumer side of SNIP_TSAN_HAPPENS_BEFORE. */
#define SNIP_TSAN_HAPPENS_AFTER(addr)                                        \
    AnnotateHappensAfter(__FILE__, __LINE__, (addr))
/** Bracket a documented benign-race write region (use sparingly; a
 *  suppressed real race is still a real race). */
#define SNIP_TSAN_IGNORE_WRITES_BEGIN()                                      \
    AnnotateIgnoreWritesBegin(__FILE__, __LINE__)
#define SNIP_TSAN_IGNORE_WRITES_END()                                        \
    AnnotateIgnoreWritesEnd(__FILE__, __LINE__)
#else
#define SNIP_TSAN_HAPPENS_BEFORE(addr) ((void)0)
#define SNIP_TSAN_HAPPENS_AFTER(addr) ((void)0)
#define SNIP_TSAN_IGNORE_WRITES_BEGIN() ((void)0)
#define SNIP_TSAN_IGNORE_WRITES_END() ((void)0)
#endif

namespace snip {
namespace util {

// ------------------------------------------------ annotated mutexes

/** std::mutex with annotated operations so the analysis can track it.
 *  Same cost as std::mutex; prefer MutexLock over manual lock(). */
class SNIP_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() SNIP_ACQUIRE() { mu_.lock(); }
    void unlock() SNIP_RELEASE() { mu_.unlock(); }
    bool try_lock() SNIP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_;
};

/** RAII lock over Mutex (the annotated std::lock_guard). */
class SNIP_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) SNIP_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() SNIP_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable paired with Mutex. wait() requires the caller to
 * hold the mutex (re-acquired before returning); write waits as
 * explicit `while (!cond) cv.wait(mu);` loops — see the file comment.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p mu and sleep; holds @p mu again on
     *  return. Spurious wakeups happen — always re-check in a loop. */
    void wait(Mutex &mu) SNIP_REQUIRES(mu) { cv_.wait(mu); }

    void notifyOne() noexcept { cv_.notify_one(); }
    void notifyAll() noexcept { cv_.notify_all(); }

  private:
    // condition_variable_any works with any Lockable, which lets the
    // annotated Mutex participate directly (std::condition_variable
    // would force an unannotated unique_lock<std::mutex> back in).
    std::condition_variable_any cv_;
};

} // namespace util
} // namespace snip

#endif // SNIP_UTIL_THREAD_ANNOTATIONS_H
