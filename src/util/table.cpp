#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/file_io.h"
#include "util/logging.h"

namespace snip {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::newRow()
{
    rows_.emplace_back();
}

void
TablePrinter::cell(const std::string &value)
{
    SNIP_ASSERT(!rows_.empty(), "call newRow() before cell()");
    rows_.back().push_back(value);
}

void
TablePrinter::cell(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    cell(std::string(buf));
}

void
TablePrinter::cell(int64_t value)
{
    cell(std::to_string(value));
}

std::string
TablePrinter::toString() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &v = c < row.size() ? row[c] : std::string();
            oss << v;
            for (size_t pad = v.size(); pad < widths[c] + 2; ++pad)
                oss << ' ';
        }
        oss << '\n';
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    oss << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return oss.str();
}

std::string
TablePrinter::toCsv() const
{
    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                oss << ',';
            oss << row[c];
        }
        oss << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
    return oss.str();
}

void
TablePrinter::print() const
{
    std::fputs(toString().c_str(), stdout);
}

bool
writeFile(const std::string &path, const std::string &contents)
{
    // Delegates to fsio so every file publication in the library goes
    // through one audited code path (the snip_lint.py ofstream rule).
    return fsio::writeFile(path, contents);
}

} // namespace snip
