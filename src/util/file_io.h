/**
 * @file
 * Small file-I/O helpers shared by every durable-state writer
 * (checkpoints, the ILP solve cache, the telemetry/trace exporters).
 *
 * The common discipline is write-tmp-then-rename so a reader (or a
 * crash) never observes a half-written file at the published path.
 * Rename alone is only atomic with respect to *readers*, though: after
 * a power loss the freshly renamed file may still be empty or torn
 * unless the data was fsync'd first and the directory entry after.
 * writeFileAtomic() implements both flavors — `durable = false` is the
 * cheap readers-only guarantee (telemetry exports), `durable = true`
 * adds the fsync-before-rename + parent-directory fsync that
 * checkpoints need to survive a crash.
 */
#ifndef SNIP_UTIL_FILE_IO_H
#define SNIP_UTIL_FILE_IO_H

#include <string>

namespace snip {
namespace fsio {

/** Read the whole file at @p path into @p out (replacing its
 *  contents). False when the file cannot be opened or read. */
bool readFile(const std::string &path, std::string *out);

/** Write @p content verbatim to @p path (truncating). False on any
 *  open/write/close error; a failed write leaves whatever partial
 *  bytes made it to disk (callers wanting atomicity use
 *  writeFileAtomic). */
bool writeFile(const std::string &path, const std::string &content);

/** fsync the file at @p path. False when it cannot be opened or the
 *  sync fails. */
bool syncFile(const std::string &path);

/** fsync the directory containing @p path, making a completed rename
 *  of @p path itself durable. False on open/sync failure. */
bool syncParentDir(const std::string &path);

/**
 * Publish @p content at @p path via tmp + rename. Readers always see
 * the old complete file or the new complete file, never a mix. With
 * @p durable, the tmp file is fsync'd before the rename and the
 * parent directory after it, so the publication also survives a
 * crash/power loss. False on any error (the tmp file is removed).
 */
bool writeFileAtomic(const std::string &path, const std::string &content,
                     bool durable);

} // namespace fsio
} // namespace snip

#endif // SNIP_UTIL_FILE_IO_H
