/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component of the library (data synthesis, weight init,
 * stochastic rounding, noise probes, random baselines) draws from an
 * explicitly seeded Rng so that experiments are bit-reproducible across
 * runs. The generator is xoshiro256**, seeded through SplitMix64, the
 * standard recommendation of its authors.
 */
#ifndef SNIP_UTIL_RNG_H
#define SNIP_UTIL_RNG_H

#include <array>
#include <cstdint>

namespace snip {

/**
 * Deterministic pseudo-random generator (xoshiro256**).
 *
 * Cheap to copy; copies continue the same stream independently. Use
 * split() to derive decorrelated child streams for sub-components.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    uint64_t nextU64();

    /** Uniform in [0, 1). */
    double nextDouble();

    /** Uniform float in [0, 1). */
    float nextFloat();

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t nextBelow(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller (no state besides the stream). */
    double nextGaussian();

    /** Gaussian with given mean and standard deviation. */
    double nextGaussian(double mean, double stddev);

    /** Bernoulli draw with probability p of returning true. */
    bool nextBernoulli(double p);

    /** Derive an independent child generator (hash-mixed). */
    Rng split();

    /** Opaque 256-bit stream position, for checkpointing: restoring a
     *  captured state replays the exact draw sequence (stochastic
     *  rounding, probe noise) a resumed run would have seen. */
    std::array<uint64_t, 4> state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }
    void setState(const std::array<uint64_t, 4> &state)
    {
        for (int i = 0; i < 4; ++i)
            s_[i] = state[static_cast<std::size_t>(i)];
    }

  private:
    uint64_t s_[4];
};

} // namespace snip

#endif // SNIP_UTIL_RNG_H
