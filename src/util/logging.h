/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: fatal() terminates because the *user* did
 * something unsupportable (bad configuration, impossible request), while
 * panic() terminates because an internal invariant of the library was
 * violated (a bug in this code). inform()/warn() report status without
 * stopping anything.
 */
#ifndef SNIP_UTIL_LOGGING_H
#define SNIP_UTIL_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace snip {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the global log verbosity (default: Info). */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

namespace detail {

/** Concatenate any streamable arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

/** Emit one log line with a severity prefix; honors the global level. */
void emit(LogLevel level, const std::string &prefix, const std::string &msg);

[[noreturn]] void die(const std::string &prefix, const std::string &msg,
                      bool abort_process);

} // namespace detail

/** Informative message the user should see but not worry about. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit(LogLevel::Info, "info", detail::concat(args...));
}

/** Verbose diagnostic output, off unless LogLevel::Debug is set. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::emit(LogLevel::Debug, "debug", detail::concat(args...));
}

/** Something may be off, but execution can continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit(LogLevel::Warn, "warn", detail::concat(args...));
}

/** Unrecoverable *user* error (bad config / arguments): exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::die("fatal", detail::concat(args...), /*abort_process=*/false);
}

/** Unrecoverable *internal* error (library bug): abort(). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::die("panic", detail::concat(args...), /*abort_process=*/true);
}

/** panic() unless a library invariant holds. */
#define SNIP_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::snip::panic("assertion failed: " #cond " ", ##__VA_ARGS__);    \
        }                                                                    \
    } while (0)

} // namespace snip

#endif // SNIP_UTIL_LOGGING_H
