#include "util/file_io.h"

#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

namespace snip {
namespace fsio {

bool
readFile(const std::string &path, std::string *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    out->clear();
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out->append(buf, got);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return false;
    const bool ok =
        std::fwrite(content.data(), 1, content.size(), f) ==
        content.size();
    return (std::fclose(f) == 0) && ok;
}

bool
syncFile(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

bool
syncParentDir(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

bool
writeFileAtomic(const std::string &path, const std::string &content,
                bool durable)
{
    // The pid suffix keeps concurrent writer processes racing for the
    // same published path from clobbering each other's staging file.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    if (!writeFile(tmp, content)) {
        std::remove(tmp.c_str());
        return false;
    }
    if (durable && !syncFile(tmp)) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    if (durable)
        (void)syncParentDir(path); // rename landed; sync is advisory
    return true;
}

} // namespace fsio
} // namespace snip
