#include "util/logging.h"

#include <atomic>

namespace snip {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
} // namespace

void
setLogLevel(LogLevel level)
{
    // Relaxed: the level is an independent config flag — readers need
    // no ordering with any other memory, only eventual visibility.
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace detail {

void
emit(LogLevel level, const std::string &prefix, const std::string &msg)
{
    if (static_cast<int>(level) >
        static_cast<int>(g_level.load(std::memory_order_relaxed)))
        return;
    std::fprintf(stderr, "[%s] %s\n", prefix.c_str(), msg.c_str());
}

void
die(const std::string &prefix, const std::string &msg, bool abort_process)
{
    std::fprintf(stderr, "[%s] %s\n", prefix.c_str(), msg.c_str());
    if (abort_process)
        std::abort();
    std::exit(1);
}

} // namespace detail
} // namespace snip
