/**
 * @file
 * Background scheme-update service (paper Sec. 6.3).
 *
 * The paper hides the scheme-search overhead by running the statistics
 * analysis and the ILP solve asynchronously on the CPU while training
 * continues. This service reproduces that split for the CPU-only
 * reproduction:
 *
 *   1. At an update boundary the trainer runs Steps 1-3 (instrumented
 *      iteration + the two noise probes) inline — these need the model
 *      — and snapshots their outputs into a SchemeUpdateRequest. The
 *      snapshot is self-contained (stats, probe responses, FLOPs model,
 *      option set, solver knobs), so the worker never touches the
 *      model or the trainer's thread pool.
 *   2. The worker runs Steps 4-5 (divergence analysis + ILP solve,
 *      optionally through the persistent SolveCache) on a dedicated
 *      runtime::TaskThread and publishes the SchemeUpdateResult through
 *      a double-buffered, epoch-tagged handoff slot.
 *   3. The trainer adopts the published scheme at a *predetermined*
 *      step boundary (request.apply_step), blocking if the worker has
 *      not finished by then. Because both the snapshot content and the
 *      application step are independent of worker timing, training is
 *      bit-identical for any thread count and any worker speed.
 *
 * Mode::Inline computes the result synchronously inside submit() using
 * the exact same runSchemeUpdate() path, so the inline fallback is
 * bit-identical to the async mode with apply_delay = 0 — tests assert
 * the same scheme sequence either way.
 */
#ifndef SNIP_ASYNC_SCHEME_SERVICE_H
#define SNIP_ASYNC_SCHEME_SERVICE_H

#include "core/snip_optimizer.h"
#include "runtime/task_thread.h"
#include "util/thread_annotations.h"

namespace snip {

/**
 * Snapshot of everything Steps 4-5 need, taken at an update boundary.
 * Owns deep copies: after submit() the trainer may freely mutate the
 * model, optimizer and its statistics buffers.
 */
struct SchemeUpdateRequest
{
    /** Monotonic update id (1-based); tags the handoff slot. */
    uint64_t epoch = 0;
    /** Trainer step the snapshot was taken at. */
    int64_t snapshot_step = 0;
    /** Step boundary the result must be applied at (>= snapshot_step).
     */
    int64_t apply_step = 0;

    /** Step 1-3 outputs. Gradient dumps should be cleared before
     *  submission (the probes already consumed them). */
    TrainingStats stats;
    ProbeResult bwd_probe;
    ProbeResult fwd_probe;

    /** Analysis/solve inputs (value copies; FlopsModel owns its data).
     */
    FlopsModel flops;
    std::vector<LayerScheme> options;
    DivergenceOptions divergence;
    double target_fp4_fraction = 0.5;
    IlpSolveOptions solve; ///< may carry a SolveCache pointer
    PipelineConstraint pipeline;
};

/** What the worker publishes for one epoch. */
struct SchemeUpdateResult
{
    uint64_t epoch = 0;
    int64_t apply_step = 0;
    SchemeSelection selection;
    DivergenceTable table;
    /** Wall-clock seconds the worker spent on Steps 4-5 (analysis +
     *  solve, including cache lookups). */
    double work_seconds = 0.0;
    /** The solve threw (or an injected scheme.solve fault fired):
     *  selection/table are empty and the controller resolves the
     *  epoch by keeping the current scheme (skip-update). */
    bool failed = false;
};

/**
 * Steps 4-5 as a pure function of the snapshot — the single code path
 * both the inline fallback and the async worker execute, which is what
 * makes the two modes bit-identical. Throws whatever the analysis or
 * the solver throws.
 */
SchemeUpdateResult runSchemeUpdate(const SchemeUpdateRequest &request);

/**
 * runSchemeUpdate with failure containment: an exception (including
 * an injected "scheme.solve" fault) is logged and converted into a
 * `failed` result carrying the request's epoch and apply step, so the
 * trainer's deterministic apply boundary is still honored — the
 * worker never takes the process down.
 */
SchemeUpdateResult
runSchemeUpdateGuarded(const SchemeUpdateRequest &request);

/** Owns the worker and the epoch-tagged handoff (see file comment). */
class SchemeUpdateService
{
  public:
    enum class Mode
    {
        Inline, ///< submit() computes synchronously on the caller
        Async,  ///< submit() enqueues onto the dedicated worker
    };

    explicit SchemeUpdateService(Mode mode) : mode_(mode) {}

    Mode mode() const { return mode_; }

    /** Hand over a snapshot. Returns request.epoch. At most one update
     *  may be in flight per service (the controller enforces this). */
    uint64_t submit(SchemeUpdateRequest request);

    /** True when @p epoch has been published (non-blocking). */
    bool ready(uint64_t epoch) const;

    /** Block until @p epoch is published and return a copy of it. */
    SchemeUpdateResult wait(uint64_t epoch);

    /** Newest published epoch (0 = none yet). */
    uint64_t publishedEpoch() const;

  private:
    void publish(SchemeUpdateResult result);

    Mode mode_;

    /**
     * Double buffer: the worker writes a finished result into the slot
     * the trainer is NOT reading (the one not holding the newest
     * published epoch) and then flips front_ under the lock, so a
     * trainer copying the previous result never races the next
     * publication.
     */
    mutable util::Mutex mu_;
    util::CondVar published_cv_;
    SchemeUpdateResult slots_[2] SNIP_GUARDED_BY(mu_);
    /** Slot of the newest published result; -1 none. */
    int front_ SNIP_GUARDED_BY(mu_) = -1;

    /** Declared last: destroyed (drained + joined) first, so in-flight
     *  tasks can still publish into the members above. */
    runtime::TaskThread worker_;
};

} // namespace snip

#endif // SNIP_ASYNC_SCHEME_SERVICE_H
