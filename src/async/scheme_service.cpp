#include "async/scheme_service.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "runtime/fault_injection.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/logging.h"

namespace snip {

SchemeUpdateResult
runSchemeUpdate(const SchemeUpdateRequest &request)
{
    trace::TraceScope span(trace::Category::Scheme, "scheme_solve",
                           "epoch",
                           static_cast<int64_t>(request.epoch));
    const auto start = std::chrono::steady_clock::now();

    if (SNIP_FAULT_POINT("scheme.solve"))
        throw std::runtime_error("injected scheme.solve fault");

    // Step 4: divergence analysis on the snapshotted statistics.
    DivergenceAnalyzer analyzer(request.stats, &request.bwd_probe,
                                &request.fwd_probe, request.flops);
    SchemeUpdateResult result;
    result.epoch = request.epoch;
    result.apply_step = request.apply_step;
    result.table = analyzer.analyze(request.options, request.divergence);

    // Step 5: ILP solve (through the SolveCache when configured).
    result.selection =
        selectScheme(result.table, request.target_fp4_fraction,
                     request.flops, request.solve, request.pipeline);

    result.work_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    return result;
}

SchemeUpdateResult
runSchemeUpdateGuarded(const SchemeUpdateRequest &request)
{
    try {
        return runSchemeUpdate(request);
    } catch (const std::exception &e) {
        warn("scheme update epoch ", request.epoch, " failed: ",
             e.what(), "; the current scheme stays in effect");
        SchemeUpdateResult result;
        result.epoch = request.epoch;
        result.apply_step = request.apply_step;
        result.failed = true;
        return result;
    }
}

uint64_t
SchemeUpdateService::submit(SchemeUpdateRequest request)
{
    SNIP_ASSERT(request.epoch > 0, "epochs are 1-based");
    const uint64_t epoch = request.epoch;
    if (mode_ == Mode::Inline) {
        publish(runSchemeUpdateGuarded(request));
        return epoch;
    }
    // The worker owns the snapshot; nothing in it aliases trainer
    // state, so the solve proceeds while training continues. The
    // guarded runner publishes even on failure, so the trainer's
    // blocking wait at the apply boundary always completes.
    auto req = std::make_shared<SchemeUpdateRequest>(std::move(request));
    worker_.submit([this, req] {
        trace::setCurrentThreadName("scheme-worker");
        publish(runSchemeUpdateGuarded(*req));
    });
    return epoch;
}

bool
SchemeUpdateService::ready(uint64_t epoch) const
{
    util::MutexLock lock(mu_);
    return front_ >= 0 && slots_[front_].epoch >= epoch;
}

SchemeUpdateResult
SchemeUpdateService::wait(uint64_t epoch)
{
    util::MutexLock lock(mu_);
    while (!(front_ >= 0 && slots_[front_].epoch >= epoch))
        published_cv_.wait(mu_);
    SNIP_ASSERT(slots_[front_].epoch == epoch,
                "waited-for epoch was overwritten — more than one "
                "update in flight?");
    return slots_[front_];
}

uint64_t
SchemeUpdateService::publishedEpoch() const
{
    util::MutexLock lock(mu_);
    return front_ >= 0 ? slots_[front_].epoch : 0;
}

void
SchemeUpdateService::publish(SchemeUpdateResult result)
{
    telemetry::count(telemetry::Counter::SchemePublishes);
    telemetry::addSeconds(telemetry::Seconds::SchemeWorker,
                          result.work_seconds);
    {
        util::MutexLock lock(mu_);
        const int back = front_ == 0 ? 1 : 0;
        slots_[back] = std::move(result);
        front_ = back;
    }
    published_cv_.notifyAll();
}

} // namespace snip
