#include "data/batch.h"

#include <cstddef>

namespace snip {

BatchIterator::BatchIterator(const SyntheticCorpus &corpus,
                             int64_t batch_size, uint64_t stream_seed)
    : corpus_(corpus),
      batch_size_(batch_size),
      stream_seed_(stream_seed),
      rng_(stream_seed)
{
}

Batch
BatchIterator::next()
{
    const int64_t seq = corpus_.config().seq_len;
    Batch b;
    b.batch = batch_size_;
    b.seq = seq;
    b.tokens.reserve(static_cast<size_t>(batch_size_ * seq));
    b.targets.reserve(static_cast<size_t>(batch_size_ * seq));
    for (int64_t i = 0; i < batch_size_; ++i) {
        std::vector<int32_t> row = corpus_.sampleSequence(rng_);
        for (int64_t s = 0; s < seq; ++s) {
            b.tokens.push_back(row[static_cast<size_t>(s)]);
            b.targets.push_back(row[static_cast<size_t>(s + 1)]);
        }
    }
    return b;
}

void
BatchIterator::reset()
{
    rng_ = Rng(stream_seed_);
}

} // namespace snip
