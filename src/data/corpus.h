/**
 * @file
 * Synthetic pretraining corpus.
 *
 * Substitute for the paper's SlimPajama/StarcoderData/RedPajama mixtures
 * (Sec. 6.1): a deterministic generator producing a mixture of
 *   - second-order Markov "natural text" with a sparse, seed-fixed
 *     transition structure (the bulk of the stream), and
 *   - algorithmic segments (copy, reverse, modular addition, parity,
 *     induction) that give the model sharp, quantization-sensitive
 *     skills the eval harness later probes.
 * The mixture yields a loss that decreases smoothly with training and
 * degrades measurably under precision noise, which is what every
 * experiment in the paper measures.
 */
#ifndef SNIP_DATA_CORPUS_H
#define SNIP_DATA_CORPUS_H

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace snip {

/** Reserved token ids shared by the corpus and the eval tasks. */
namespace tokens {
inline constexpr int32_t kBos = 0;
inline constexpr int32_t kSep = 1;
inline constexpr int32_t kTrue = 2;
inline constexpr int32_t kFalse = 3;
inline constexpr int32_t kDigit0 = 4;   ///< digits occupy [4, 14)
inline constexpr int32_t kText0 = 16;   ///< free text ids start here
} // namespace tokens

/** Kinds of algorithmic segments mixed into the stream. */
enum class SegmentKind
{
    Markov = 0,
    Copy,
    Reverse,
    ModularAdd,
    Parity,
    Induction,
};

/** Mixture weights and shape of the synthetic corpus. */
struct CorpusConfig
{
    int64_t vocab_size = 128;
    /** Sampled sequence length (tokens per training row). */
    int64_t seq_len = 32;
    uint64_t seed = 1234;
    /** Fraction of segments drawn from the Markov chain. */
    double markov_frac = 0.6;
    /** Markov successors per token (sparsity of the chain). */
    int branching = 4;
};

/**
 * Deterministic synthetic corpus.
 *
 * The transition structure is fixed by the seed at construction; the
 * per-sample randomness comes from the caller's Rng so that data order
 * is reproducible given (corpus seed, stream seed).
 */
class SyntheticCorpus
{
  public:
    explicit SyntheticCorpus(const CorpusConfig &config);

    /**
     * Sample seq_len + 1 tokens (callers split into input / shifted
     * target).
     */
    std::vector<int32_t> sampleSequence(Rng &rng) const;

    /** Sample one segment of a specific kind (used by tests). */
    std::vector<int32_t> sampleSegment(SegmentKind kind, Rng &rng) const;

    /**
     * True continuation distribution of the Markov chain (used by the
     * eval harness to construct "plausible continuation" tasks):
     * successors of @p token with their probabilities.
     */
    const std::vector<std::pair<int32_t, float>> &
    successors(int32_t token) const;

    const CorpusConfig &config() const { return config_; }

    /** First text token id (inclusive). */
    int32_t textLo() const { return tokens::kText0; }

    /** One past the last text token id. */
    int32_t textHi() const
    {
        return static_cast<int32_t>(config_.vocab_size);
    }

  private:
    int32_t sampleMarkovNext(int32_t token, Rng &rng) const;

    CorpusConfig config_;
    /** successors_[t - kText0] = {(next, prob)} for text tokens. */
    std::vector<std::vector<std::pair<int32_t, float>>> successors_;
};

} // namespace snip

#endif // SNIP_DATA_CORPUS_H
