#include "data/corpus.h"

#include <algorithm>

#include "util/logging.h"

namespace snip {

SyntheticCorpus::SyntheticCorpus(const CorpusConfig &config)
    : config_(config)
{
    SNIP_ASSERT(config.vocab_size > tokens::kText0 + 8,
                "vocab too small for the synthetic corpus");
    Rng structure_rng(config.seed);
    const int32_t lo = textLo(), hi = textHi();
    const int32_t n_text = hi - lo;
    successors_.resize(static_cast<size_t>(n_text));
    for (int32_t t = 0; t < n_text; ++t) {
        auto &succ = successors_[static_cast<size_t>(t)];
        double remaining = 1.0;
        for (int b = 0; b < config.branching; ++b) {
            int32_t next =
                lo + static_cast<int32_t>(
                         structure_rng.nextBelow(
                             static_cast<uint64_t>(n_text)));
            double p = (b + 1 == config.branching)
                           ? remaining
                           : remaining *
                                 (0.3 + 0.5 * structure_rng.nextDouble());
            succ.emplace_back(next, static_cast<float>(p));
            remaining -= p;
        }
    }
}

const std::vector<std::pair<int32_t, float>> &
SyntheticCorpus::successors(int32_t token) const
{
    SNIP_ASSERT(token >= textLo() && token < textHi());
    return successors_[static_cast<size_t>(token - textLo())];
}

int32_t
SyntheticCorpus::sampleMarkovNext(int32_t token, Rng &rng) const
{
    const auto &succ = successors(token);
    double u = rng.nextDouble();
    for (const auto &[next, p] : succ) {
        u -= p;
        if (u <= 0.0)
            return next;
    }
    return succ.back().first;
}

std::vector<int32_t>
SyntheticCorpus::sampleSegment(SegmentKind kind, Rng &rng) const
{
    const int32_t lo = textLo(), hi = textHi();
    auto rand_text = [&] {
        return lo + static_cast<int32_t>(rng.nextBelow(
                        static_cast<uint64_t>(hi - lo)));
    };
    std::vector<int32_t> seg;
    switch (kind) {
        case SegmentKind::Markov: {
            int len = static_cast<int>(rng.nextRange(8, 16));
            int32_t t = rand_text();
            seg.push_back(t);
            for (int i = 1; i < len; ++i) {
                t = sampleMarkovNext(t, rng);
                seg.push_back(t);
            }
            break;
        }
        case SegmentKind::Copy: {
            int len = static_cast<int>(rng.nextRange(3, 6));
            std::vector<int32_t> pat;
            for (int i = 0; i < len; ++i)
                pat.push_back(rand_text());
            seg.push_back(tokens::kBos);
            seg.insert(seg.end(), pat.begin(), pat.end());
            seg.push_back(tokens::kSep);
            seg.insert(seg.end(), pat.begin(), pat.end());
            break;
        }
        case SegmentKind::Reverse: {
            int len = static_cast<int>(rng.nextRange(3, 6));
            std::vector<int32_t> pat;
            for (int i = 0; i < len; ++i)
                pat.push_back(rand_text());
            seg.push_back(tokens::kBos);
            seg.insert(seg.end(), pat.begin(), pat.end());
            seg.push_back(tokens::kSep);
            seg.insert(seg.end(), pat.rbegin(), pat.rend());
            break;
        }
        case SegmentKind::ModularAdd: {
            int a = static_cast<int>(rng.nextBelow(10));
            int b = static_cast<int>(rng.nextBelow(10));
            seg = {tokens::kBos, tokens::kDigit0 + a, tokens::kDigit0 + b,
                   tokens::kSep, tokens::kDigit0 + (a + b) % 10};
            break;
        }
        case SegmentKind::Parity: {
            int len = static_cast<int>(rng.nextRange(4, 9));
            int ones = 0;
            seg.push_back(tokens::kBos);
            for (int i = 0; i < len; ++i) {
                int bit = static_cast<int>(rng.nextBelow(2));
                ones += bit;
                seg.push_back(tokens::kDigit0 + bit);
            }
            seg.push_back(tokens::kSep);
            seg.push_back(ones % 2 ? tokens::kTrue : tokens::kFalse);
            break;
        }
        case SegmentKind::Induction: {
            // A B ... A -> B: repeated bigram the model must recall.
            int32_t a = rand_text(), b = rand_text();
            int filler = static_cast<int>(rng.nextRange(2, 5));
            seg.push_back(tokens::kBos);
            seg.push_back(a);
            seg.push_back(b);
            for (int i = 0; i < filler; ++i)
                seg.push_back(rand_text());
            seg.push_back(a);
            seg.push_back(b);
            break;
        }
    }
    return seg;
}

std::vector<int32_t>
SyntheticCorpus::sampleSequence(Rng &rng) const
{
    std::vector<int32_t> out;
    out.reserve(static_cast<size_t>(config_.seq_len) + 1);
    while (out.size() < static_cast<size_t>(config_.seq_len) + 1) {
        SegmentKind kind;
        if (rng.nextDouble() < config_.markov_frac) {
            kind = SegmentKind::Markov;
        } else {
            kind = static_cast<SegmentKind>(1 + rng.nextBelow(5));
        }
        std::vector<int32_t> seg = sampleSegment(kind, rng);
        for (int32_t t : seg) {
            if (out.size() >= static_cast<size_t>(config_.seq_len) + 1)
                break;
            out.push_back(t);
        }
    }
    return out;
}

} // namespace snip
