/**
 * @file
 * Training batches and the corpus-backed batch iterator.
 */
#ifndef SNIP_DATA_BATCH_H
#define SNIP_DATA_BATCH_H

#include <cstdint>
#include <vector>

#include "data/corpus.h"

namespace snip {

/** One training batch: batch*seq input tokens and shifted targets. */
struct Batch
{
    std::vector<int32_t> tokens;
    std::vector<int32_t> targets;
    int64_t batch = 0;
    int64_t seq = 0;
};

/**
 * Draws fixed-shape next-token-prediction batches from a corpus.
 *
 * Deterministic: the sequence of batches depends only on the corpus
 * seed and this iterator's stream seed, so BF16 and quantized runs can
 * consume *identical* data (the paper's divergence metrics compare runs
 * on the same batches).
 */
class BatchIterator
{
  public:
    BatchIterator(const SyntheticCorpus &corpus, int64_t batch_size,
                  uint64_t stream_seed);

    /** Produce the next batch. */
    Batch next();

    /** Restart the stream from its seed (replays the same batches). */
    void reset();

    int64_t batchSize() const { return batch_size_; }

  private:
    const SyntheticCorpus &corpus_;
    int64_t batch_size_;
    uint64_t stream_seed_;
    Rng rng_;
};

} // namespace snip

#endif // SNIP_DATA_BATCH_H
