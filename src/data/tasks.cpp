#include "data/tasks.h"

#include <algorithm>

#include "util/logging.h"

namespace snip {

const char *
taskFamilyName(TaskFamily family)
{
    switch (family) {
        case TaskFamily::CopySeq:
            return "CopySeq";
        case TaskFamily::RevSeq:
            return "RevSeq";
        case TaskFamily::ModAdd:
            return "ModAdd";
        case TaskFamily::ParityQ:
            return "ParityQ";
        case TaskFamily::MarkovCont:
            return "MarkovCont";
        case TaskFamily::InductRecall:
            return "InductRecall";
        case TaskFamily::MaxToken:
            return "MaxToken";
        case TaskFamily::PairMatch:
            return "PairMatch";
    }
    return "?";
}

const char *
taskFamilyAnalog(TaskFamily family)
{
    switch (family) {
        case TaskFamily::CopySeq:
            return "ARC_e";
        case TaskFamily::RevSeq:
            return "ARC_c";
        case TaskFamily::ModAdd:
            return "MMLU";
        case TaskFamily::ParityQ:
            return "BoolQ";
        case TaskFamily::MarkovCont:
            return "HellaSwag";
        case TaskFamily::InductRecall:
            return "Obqa";
        case TaskFamily::MaxToken:
            return "PiQa";
        case TaskFamily::PairMatch:
            return "WinoGrande";
    }
    return "?";
}

namespace {

/** Random text token. */
int32_t
randText(const SyntheticCorpus &corpus, Rng &rng)
{
    return corpus.textLo() +
           static_cast<int32_t>(rng.nextBelow(static_cast<uint64_t>(
               corpus.textHi() - corpus.textLo())));
}

/** Random pattern of text tokens. */
std::vector<int32_t>
randPattern(const SyntheticCorpus &corpus, Rng &rng, int lo, int hi)
{
    int len = static_cast<int>(rng.nextRange(lo, hi));
    std::vector<int32_t> out;
    for (int i = 0; i < len; ++i)
        out.push_back(randText(corpus, rng));
    return out;
}

/**
 * Build distractor options by perturbing the correct answer, then
 * shuffle so the correct index is uniform.
 */
EvalItem
finalizeItem(std::vector<int32_t> context,
             std::vector<std::vector<int32_t>> options, Rng &rng)
{
    EvalItem item;
    item.context = std::move(context);
    // options[0] is correct on entry; shuffle positions.
    int n = static_cast<int>(options.size());
    std::vector<int> perm(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        perm[static_cast<size_t>(i)] = i;
    for (int i = n - 1; i > 0; --i) {
        int j = static_cast<int>(rng.nextBelow(
            static_cast<uint64_t>(i + 1)));
        std::swap(perm[static_cast<size_t>(i)],
                  perm[static_cast<size_t>(j)]);
    }
    item.options.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        item.options[static_cast<size_t>(perm[static_cast<size_t>(i)])] =
            std::move(options[static_cast<size_t>(i)]);
        if (i == 0)
            item.correct = perm[static_cast<size_t>(i)];
    }
    return item;
}

EvalItem
makeItem(TaskFamily family, const SyntheticCorpus &corpus, Rng &rng)
{
    using namespace tokens;
    switch (family) {
        case TaskFamily::CopySeq: {
            auto pat = randPattern(corpus, rng, 3, 5);
            std::vector<int32_t> ctx = {kBos};
            ctx.insert(ctx.end(), pat.begin(), pat.end());
            ctx.push_back(kSep);
            // Distractors are unrelated patterns of the same length:
            // any copy/familiarity signal the model learns favors the
            // correct option (near-copy distractors proved adversarial to
            // sequence statistics rather than to copying ability).
            std::vector<std::vector<int32_t>> opts = {pat};
            for (int i = 0; i < 3; ++i) {
                std::vector<int32_t> alt;
                for (size_t p = 0; p < pat.size(); ++p)
                    alt.push_back(randText(corpus, rng));
                opts.push_back(std::move(alt));
            }
            return finalizeItem(std::move(ctx), std::move(opts), rng);
        }
        case TaskFamily::RevSeq: {
            auto pat = randPattern(corpus, rng, 3, 5);
            std::vector<int32_t> ctx = {kBos};
            ctx.insert(ctx.end(), pat.begin(), pat.end());
            ctx.push_back(kSep);
            std::vector<int32_t> rev(pat.rbegin(), pat.rend());
            std::vector<std::vector<int32_t>> opts = {rev};
            opts.push_back(pat); // the unreversed pattern is a distractor
            for (int i = 0; i < 2; ++i) {
                std::vector<int32_t> alt;
                for (size_t p = 0; p < pat.size(); ++p)
                    alt.push_back(randText(corpus, rng));
                opts.push_back(std::move(alt));
            }
            return finalizeItem(std::move(ctx), std::move(opts), rng);
        }
        case TaskFamily::ModAdd: {
            int a = static_cast<int>(rng.nextBelow(10));
            int b = static_cast<int>(rng.nextBelow(10));
            std::vector<int32_t> ctx = {kBos, kDigit0 + a, kDigit0 + b, kSep};
            int ans = (a + b) % 10;
            std::vector<std::vector<int32_t>> opts = {{kDigit0 + ans}};
            std::vector<int> used = {ans};
            while (opts.size() < 4) {
                int d = static_cast<int>(rng.nextBelow(10));
                if (std::find(used.begin(), used.end(), d) != used.end())
                    continue;
                used.push_back(d);
                opts.push_back({kDigit0 + d});
            }
            return finalizeItem(std::move(ctx), std::move(opts), rng);
        }
        case TaskFamily::ParityQ: {
            int len = static_cast<int>(rng.nextRange(4, 8));
            int ones = 0;
            std::vector<int32_t> ctx = {kBos};
            for (int i = 0; i < len; ++i) {
                int bit = static_cast<int>(rng.nextBelow(2));
                ones += bit;
                ctx.push_back(kDigit0 + bit);
            }
            ctx.push_back(kSep);
            int32_t ans = ones % 2 ? kTrue : kFalse;
            int32_t other = ones % 2 ? kFalse : kTrue;
            std::vector<std::vector<int32_t>> opts = {{ans}, {other}};
            return finalizeItem(std::move(ctx), std::move(opts), rng);
        }
        case TaskFamily::MarkovCont: {
            // Walk the true chain; the correct continuation follows the
            // chain, distractors are random text.
            int32_t t = randText(corpus, rng);
            std::vector<int32_t> ctx = {t};
            for (int i = 0; i < 6; ++i) {
                const auto &succ = corpus.successors(ctx.back());
                double u = rng.nextDouble();
                int32_t next = succ.back().first;
                for (const auto &[cand, p] : succ) {
                    u -= p;
                    if (u <= 0.0) {
                        next = cand;
                        break;
                    }
                }
                ctx.push_back(next);
            }
            // Correct option: the highest-probability successor path.
            std::vector<int32_t> cont;
            int32_t cur = ctx.back();
            for (int i = 0; i < 3; ++i) {
                const auto &succ = corpus.successors(cur);
                auto best = std::max_element(
                    succ.begin(), succ.end(),
                    [](const auto &a, const auto &b) {
                        return a.second < b.second;
                    });
                cur = best->first;
                cont.push_back(cur);
            }
            std::vector<std::vector<int32_t>> opts = {cont};
            for (int i = 0; i < 3; ++i)
                opts.push_back(randPattern(corpus, rng, 3, 4));
            return finalizeItem(std::move(ctx), std::move(opts), rng);
        }
        case TaskFamily::InductRecall: {
            int32_t a = randText(corpus, rng);
            int32_t b = randText(corpus, rng);
            std::vector<int32_t> ctx = {kBos, a, b};
            for (int i = 0; i < 3; ++i)
                ctx.push_back(randText(corpus, rng));
            ctx.push_back(a);
            std::vector<std::vector<int32_t>> opts = {{b}};
            while (opts.size() < 4) {
                int32_t d = randText(corpus, rng);
                if (d != b)
                    opts.push_back({d});
            }
            return finalizeItem(std::move(ctx), std::move(opts), rng);
        }
        case TaskFamily::MaxToken: {
            auto pat = randPattern(corpus, rng, 4, 7);
            std::vector<int32_t> ctx = {kBos};
            ctx.insert(ctx.end(), pat.begin(), pat.end());
            ctx.push_back(kSep);
            int32_t mx = *std::max_element(pat.begin(), pat.end());
            std::vector<std::vector<int32_t>> opts = {{mx}};
            // Distractors from the pattern itself; bounded attempts since
            // the pattern may have few distinct values.
            for (int attempt = 0; attempt < 32 && opts.size() < 4;
                 ++attempt) {
                int32_t d = pat[rng.nextBelow(pat.size())];
                if (d != mx &&
                    std::none_of(opts.begin(), opts.end(),
                                 [d](const auto &o) { return o[0] == d; }))
                    opts.push_back({d});
            }
            while (opts.size() < 2) {
                int32_t d = randText(corpus, rng);
                if (d != mx)
                    opts.push_back({d});
            }
            return finalizeItem(std::move(ctx), std::move(opts), rng);
        }
        case TaskFamily::PairMatch: {
            // Context: x y ... x' SEP, where x' equals one of two earlier
            // tokens; the answer is the token that followed it.
            int32_t x1 = randText(corpus, rng);
            int32_t y1 = randText(corpus, rng);
            int32_t x2 = x1;
            while (x2 == x1)
                x2 = randText(corpus, rng);
            int32_t y2 = y1;
            while (y2 == y1)
                y2 = randText(corpus, rng);
            bool ask_first = rng.nextBernoulli(0.5);
            std::vector<int32_t> ctx = {kBos, x1, y1, x2, y2,
                                        ask_first ? x1 : x2, kSep};
            std::vector<std::vector<int32_t>> opts = {
                {ask_first ? y1 : y2}, {ask_first ? y2 : y1}};
            return finalizeItem(std::move(ctx), std::move(opts), rng);
        }
    }
    panic("bad task family");
}

} // namespace

EvalTask
makeTask(TaskFamily family, const SyntheticCorpus &corpus, int n_items,
         uint64_t seed)
{
    EvalTask task;
    task.name = taskFamilyName(family);
    task.analog_of = taskFamilyAnalog(family);
    Rng rng(seed ^ (0x1000ull + static_cast<uint64_t>(family) * 0x9E37ull));
    for (int i = 0; i < n_items; ++i)
        task.items.push_back(makeItem(family, corpus, rng));
    return task;
}

std::vector<EvalTask>
makeEvalSuite(const SyntheticCorpus &corpus, int n_items_per_task,
              uint64_t seed)
{
    std::vector<EvalTask> suite;
    for (int f = 0; f < kNumTaskFamilies; ++f) {
        suite.push_back(makeTask(static_cast<TaskFamily>(f), corpus,
                                 n_items_per_task, seed));
    }
    return suite;
}

} // namespace snip
