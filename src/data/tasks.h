/**
 * @file
 * Synthetic multiple-choice evaluation tasks.
 *
 * Substitute for the LM-Evaluation-Harness benchmarks (Sec. 6.1): eight
 * task families whose skills the synthetic corpus teaches, scored the
 * way lm-eval scores 0-shot multiple choice — per-option length-
 * normalized log-likelihood. The family names record which paper
 * benchmark each one stands in for.
 */
#ifndef SNIP_DATA_TASKS_H
#define SNIP_DATA_TASKS_H

#include <string>
#include <vector>

#include "data/corpus.h"

namespace snip {

/** One multiple-choice item: context + candidate completions. */
struct EvalItem
{
    std::vector<int32_t> context;
    std::vector<std::vector<int32_t>> options;
    int correct = 0;
};

/** A named set of items. */
struct EvalTask
{
    std::string name;      ///< e.g. "RevSeq"
    std::string analog_of; ///< e.g. "ARC_c"
    std::vector<EvalItem> items;
};

/** The eight synthetic task families. */
enum class TaskFamily
{
    CopySeq = 0,   ///< ARC_e analog: copy the shown pattern
    RevSeq,        ///< ARC_c analog: reverse the shown pattern
    ModAdd,        ///< MMLU analog: modular addition
    ParityQ,       ///< BoolQ analog: yes/no parity question
    MarkovCont,    ///< HellaSwag analog: most plausible continuation
    InductRecall,  ///< OpenBookQA analog: recall the bigram
    MaxToken,      ///< PiQA analog: pick the max token seen
    PairMatch,     ///< WinoGrande analog: 2-way disambiguation
};

/** Number of task families. */
inline constexpr int kNumTaskFamilies = 8;

/** Name of the family ("CopySeq"...). */
const char *taskFamilyName(TaskFamily family);

/** Paper benchmark each family stands in for ("ARC_e"...). */
const char *taskFamilyAnalog(TaskFamily family);

/** Generate @p n_items items for one family. */
EvalTask makeTask(TaskFamily family, const SyntheticCorpus &corpus,
                  int n_items, uint64_t seed);

/** Generate the full 8-task suite. */
std::vector<EvalTask> makeEvalSuite(const SyntheticCorpus &corpus,
                                    int n_items_per_task, uint64_t seed);

} // namespace snip

#endif // SNIP_DATA_TASKS_H
