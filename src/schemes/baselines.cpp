#include "schemes/baselines.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace snip {

PrecisionScheme
fillToTarget(const std::vector<int> &layer_order,
             const std::vector<double> &layer_flops, double target)
{
    const size_t m = layer_flops.size();
    SNIP_ASSERT(layer_order.size() == m, "order/flops size mismatch");
    PrecisionScheme scheme =
        PrecisionScheme::uniform(m, Precision::FP8);
    double total = 0.0;
    for (double f : layer_flops)
        total += f;
    double fp4 = 0.0;
    for (int idx : layer_order) {
        if (fp4 >= target * total - 1e-12)
            break;
        scheme.layers[static_cast<size_t>(idx)] =
            LayerScheme::uniform(Precision::FP4);
        fp4 += layer_flops[static_cast<size_t>(idx)];
    }
    return scheme;
}

PrecisionScheme
randomScheme(const std::vector<double> &layer_flops, double target,
             Rng &rng)
{
    std::vector<int> order(layer_flops.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    for (size_t i = order.size(); i > 1; --i) {
        size_t j = rng.nextBelow(i);
        std::swap(order[i - 1], order[j]);
    }
    return fillToTarget(order, layer_flops, target);
}

PrecisionScheme
layerIdScheme(const std::vector<double> &layer_flops, double target,
              int n_blocks)
{
    const int m = static_cast<int>(layer_flops.size());
    SNIP_ASSERT(m == n_blocks * kRolesPerBlock);
    // Order blocks by distance from the middle (closest first), then
    // emit each block's seven layers.
    std::vector<int> blocks(static_cast<size_t>(n_blocks));
    for (int b = 0; b < n_blocks; ++b)
        blocks[static_cast<size_t>(b)] = b;
    const double mid = (n_blocks - 1) / 2.0;
    std::stable_sort(blocks.begin(), blocks.end(), [mid](int a, int b) {
        return std::fabs(a - mid) < std::fabs(b - mid);
    });
    std::vector<int> order;
    for (int b : blocks)
        for (int r = 0; r < kRolesPerBlock; ++r)
            order.push_back(b * kRolesPerBlock + r);
    return fillToTarget(order, layer_flops, target);
}

PrecisionScheme
layerTypeScheme(const std::vector<double> &layer_flops, double target,
                int n_blocks)
{
    const int m = static_cast<int>(layer_flops.size());
    SNIP_ASSERT(m == n_blocks * kRolesPerBlock);
    // Empirical insensitivity order; Down/V are most sensitive
    // (Fig. 10) so they convert last.
    static const LayerRole kOrder[kRolesPerBlock] = {
        LayerRole::Q, LayerRole::K,  LayerRole::Up, LayerRole::Gate,
        LayerRole::O, LayerRole::V,  LayerRole::Down};
    std::vector<int> order;
    for (LayerRole role : kOrder)
        for (int b = 0; b < n_blocks; ++b)
            order.push_back(b * kRolesPerBlock + static_cast<int>(role));
    return fillToTarget(order, layer_flops, target);
}

} // namespace snip
