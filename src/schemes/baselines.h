/**
 * @file
 * Baseline precision-selection schemes (Sec. 6.1, "Baselines").
 *
 * Each baseline produces a PrecisionScheme whose FP4 FLOP fraction meets
 * a target E_t, assigning whole layers to FP4 (all three GEMMs) in some
 * priority order:
 *   - random:      a seeded random layer order;
 *   - E-layer-id:  middle layers first (the empirical rule that the
 *                  first/last layers are precision-sensitive);
 *   - E-layer-type: "non-sensitive" layer types first (Q/K before
 *                  attention-output and MLP-down projections).
 * The min-abs-err / min-rel-err baselines run through the same ILP as
 * SNIP with the error-based quality metrics (see QualityMetric), as the
 * paper does for fairness.
 */
#ifndef SNIP_SCHEMES_BASELINES_H
#define SNIP_SCHEMES_BASELINES_H

#include "schemes/scheme.h"

namespace snip {

class Rng;

/**
 * Greedy fill: walk @p layer_order, switching layers to uniform FP4
 * until the FLOP-weighted FP4 fraction reaches @p target; remaining
 * layers stay uniform FP8. The layer whose inclusion crosses the target
 * is included (so the fraction is >= target, matching the ILP's >=
 * constraint).
 */
PrecisionScheme fillToTarget(const std::vector<int> &layer_order,
                             const std::vector<double> &layer_flops,
                             double target);

/** Uniformly random layer order (the paper's random0/1/2 seeds). */
PrecisionScheme randomScheme(const std::vector<double> &layer_flops,
                             double target, Rng &rng);

/** Middle blocks first, radiating outward (E-layer-id). */
PrecisionScheme layerIdScheme(const std::vector<double> &layer_flops,
                              double target, int n_blocks);

/** Layer types in empirical insensitivity order (E-layer-type):
 *  Q, K, Up, Gate, O, V, Down; within a type, by block order. */
PrecisionScheme layerTypeScheme(const std::vector<double> &layer_flops,
                                double target, int n_blocks);

} // namespace snip

#endif // SNIP_SCHEMES_BASELINES_H
