#include "schemes/scheme.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace snip {

const char *
layerRoleName(LayerRole role)
{
    switch (role) {
        case LayerRole::Q:
            return "Q";
        case LayerRole::K:
            return "K";
        case LayerRole::V:
            return "V";
        case LayerRole::O:
            return "O";
        case LayerRole::Gate:
            return "Gate";
        case LayerRole::Up:
            return "Up";
        case LayerRole::Down:
            return "Down";
    }
    return "?";
}

const std::array<LayerRole, kRolesPerBlock> &
allLayerRoles()
{
    static const std::array<LayerRole, kRolesPerBlock> roles = {
        LayerRole::Q, LayerRole::K,  LayerRole::V,    LayerRole::O,
        LayerRole::Gate, LayerRole::Up, LayerRole::Down};
    return roles;
}

const char *
gemmKindName(GemmKind kind)
{
    switch (kind) {
        case GemmKind::Fwd:
            return "fwd";
        case GemmKind::Dgrad:
            return "dgrad";
        case GemmKind::Wgrad:
            return "wgrad";
    }
    return "?";
}

double
LayerScheme::fp4Fraction() const
{
    int n = 0;
    for (Precision p : gemm)
        n += (p == Precision::FP4);
    return static_cast<double>(n) / kGemmsPerLayer;
}

Precision
LayerScheme::dominant() const
{
    // Lowest precision wins the display cell.
    bool any4 = false, any6 = false, any8 = false;
    for (Precision p : gemm) {
        any4 |= (p == Precision::FP4);
        any6 |= (p == Precision::FP6);
        any8 |= (p == Precision::FP8);
    }
    if (any4)
        return Precision::FP4;
    if (any6)
        return Precision::FP6;
    if (any8)
        return Precision::FP8;
    return Precision::BF16;
}

std::string
LayerScheme::describe() const
{
    std::string out;
    for (int g = 0; g < kGemmsPerLayer; ++g) {
        if (g)
            out += '/';
        out += precisionName(gemm[static_cast<size_t>(g)]);
    }
    return out;
}

PrecisionScheme
PrecisionScheme::uniform(size_t n_layers, Precision p)
{
    PrecisionScheme s(n_layers);
    for (auto &l : s.layers)
        l = LayerScheme::uniform(p);
    return s;
}

double
PrecisionScheme::fp4FlopFraction(
    const std::vector<double> &layer_flops) const
{
    SNIP_ASSERT(layer_flops.size() == layers.size());
    double total = 0.0, fp4 = 0.0;
    for (size_t i = 0; i < layers.size(); ++i) {
        total += layer_flops[i];
        fp4 += layer_flops[i] * layers[i].fp4Fraction();
    }
    return total > 0 ? fp4 / total : 0.0;
}

double
PrecisionScheme::fp4FractionUnweighted() const
{
    if (layers.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto &l : layers)
        acc += l.fp4Fraction();
    return acc / static_cast<double>(layers.size());
}

std::string
PrecisionScheme::renderHeatmap() const
{
    SNIP_ASSERT(layers.size() % kRolesPerBlock == 0,
                "heatmap requires whole blocks");
    const size_t n_blocks = layers.size() / kRolesPerBlock;
    std::ostringstream oss;
    oss << "blk   ";
    for (LayerRole role : allLayerRoles()) {
        std::string name = layerRoleName(role);
        oss << name;
        for (size_t pad = name.size(); pad < 6; ++pad)
            oss << ' ';
    }
    oss << '\n';
    for (size_t b = 0; b < n_blocks; ++b) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%-6zu", b);
        oss << buf;
        for (int r = 0; r < kRolesPerBlock; ++r) {
            Precision p =
                layers[b * kRolesPerBlock + static_cast<size_t>(r)]
                    .dominant();
            const char *cell = p == Precision::FP4   ? "4"
                               : p == Precision::FP6 ? "6"
                               : p == Precision::FP8 ? "8"
                                                     : "-";
            oss << cell << "     ";
        }
        oss << '\n';
    }
    return oss.str();
}

std::vector<LayerScheme>
makeOptionSet(OptionSetKind kind)
{
    using P = Precision;
    std::vector<LayerScheme> opts;
    switch (kind) {
        case OptionSetKind::Simple:
            opts.push_back(LayerScheme::uniform(P::FP8));
            opts.push_back(LayerScheme::uniform(P::FP4));
            break;
        case OptionSetKind::Standard:
            opts.push_back(LayerScheme::uniform(P::FP8));
            opts.push_back(LayerScheme{{P::FP4, P::FP8, P::FP8}});
            opts.push_back(LayerScheme{{P::FP8, P::FP4, P::FP4}});
            opts.push_back(LayerScheme::uniform(P::FP4));
            break;
        case OptionSetKind::Full:
            for (int bits = 0; bits < 8; ++bits) {
                LayerScheme s;
                for (int g = 0; g < kGemmsPerLayer; ++g) {
                    s.gemm[static_cast<size_t>(g)] =
                        (bits >> g) & 1 ? P::FP4 : P::FP8;
                }
                opts.push_back(s);
            }
            std::stable_sort(opts.begin(), opts.end(),
                             [](const LayerScheme &a, const LayerScheme &b) {
                                 return a.fp4Fraction() < b.fp4Fraction();
                             });
            break;
    }
    return opts;
}

OptionSetKind
optionSetKindByName(const std::string &name)
{
    if (name == "simple")
        return OptionSetKind::Simple;
    if (name == "standard")
        return OptionSetKind::Standard;
    if (name == "full")
        return OptionSetKind::Full;
    fatal("unknown option set kind: ", name);
}

} // namespace snip
