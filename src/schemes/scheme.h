/**
 * @file
 * Precision schemes: the per-layer quantization decisions SNIP and the
 * baselines produce.
 *
 * A Llama transformer block contains seven linear layers (Q, K, V, O,
 * Gate, Up, Down — Fig. 4); these are the only quantized operators
 * (Sec. 2.1: they account for >90% of training FLOPs). Each linear layer
 * performs three equal-FLOP GEMMs per training step (forward, input-
 * gradient, weight-gradient — Fig. 5), and a *layer scheme* assigns a
 * precision to each GEMM. Linear layers are indexed globally as
 *
 *     index = block * 7 + role
 *
 * which every component of the library (registry, stats, ILP, heatmap
 * renderers) relies on.
 */
#ifndef SNIP_SCHEMES_SCHEME_H
#define SNIP_SCHEMES_SCHEME_H

#include <array>
#include <string>
#include <vector>

#include "quant/quantizer.h"

namespace snip {

/** Role of a linear layer inside a transformer block (Fig. 4). */
enum class LayerRole
{
    Q = 0,
    K = 1,
    V = 2,
    O = 3,
    Gate = 4,
    Up = 5,
    Down = 6,
};

/** Number of linear layers per transformer block. */
inline constexpr int kRolesPerBlock = 7;

/** Short name ("Q".."Down"). */
const char *layerRoleName(LayerRole role);

/** All roles in index order. */
const std::array<LayerRole, kRolesPerBlock> &allLayerRoles();

/** The three GEMMs of a linear layer during one training step. */
enum class GemmKind
{
    Fwd = 0,    ///< Y  = X W^T
    Dgrad = 1,  ///< dX = dY W
    Wgrad = 2,  ///< dW = dY^T X
};

/** Number of GEMMs per linear layer per step. */
inline constexpr int kGemmsPerLayer = 3;

/** Name for tables. */
const char *gemmKindName(GemmKind kind);

/** Precision assignment for one linear layer's three GEMMs. */
struct LayerScheme
{
    std::array<Precision, kGemmsPerLayer> gemm{
        Precision::BF16, Precision::BF16, Precision::BF16};

    /** Uniform assignment across the three GEMMs. */
    static LayerScheme uniform(Precision p)
    {
        return LayerScheme{{p, p, p}};
    }

    /** Precision of one GEMM. */
    Precision of(GemmKind kind) const
    {
        return gemm[static_cast<size_t>(kind)];
    }

    /** Fraction of this layer's GEMM FLOPs executed in FP4 (0, 1/3,
     *  2/3 or 1). */
    double fp4Fraction() const;

    /** Dominant precision for single-cell heatmap display: FP4 if any
     *  GEMM is FP4, else FP8 if any is FP8, else BF16. */
    Precision dominant() const;

    /** e.g. "FP4/FP8/FP8" in fwd/dgrad/wgrad order. */
    std::string describe() const;

    bool operator==(const LayerScheme &other) const
    {
        return gemm == other.gemm;
    }
    bool operator!=(const LayerScheme &other) const
    {
        return !(*this == other);
    }
};

/** Whole-model precision assignment, one LayerScheme per linear layer. */
struct PrecisionScheme
{
    std::vector<LayerScheme> layers;

    PrecisionScheme() = default;
    explicit PrecisionScheme(size_t n_layers) : layers(n_layers) {}

    /** All layers at the same precision (the BF16/FP8/FP4 baselines). */
    static PrecisionScheme uniform(size_t n_layers, Precision p);

    size_t numLayers() const { return layers.size(); }

    /**
     * Fraction of total linear-layer FLOPs executed in FP4, weighting
     * each layer by @p layer_flops (the paper's efficiency metric E).
     */
    double fp4FlopFraction(const std::vector<double> &layer_flops) const;

    /** Unweighted average FP4 fraction (equal-FLOP layers). */
    double fp4FractionUnweighted() const;

    /**
     * Render the Fig. 7/11-style heatmap: rows are block ids, columns
     * the seven roles; cells show the dominant precision ("4"/"8"/"-").
     * Requires layers.size() to be a multiple of kRolesPerBlock.
     */
    std::string renderHeatmap() const;

    bool operator==(const PrecisionScheme &other) const
    {
        return layers == other.layers;
    }
    bool operator!=(const PrecisionScheme &other) const
    {
        return !(*this == other);
    }
};

/** Families of per-layer option sets offered to the ILP (Sec. 5.2: "for
 *  each layer the options are combinations of FP8 and FP4 formats"). */
enum class OptionSetKind
{
    /** {all-FP8, all-FP4}: the paper's headline configuration space. */
    Simple,
    /** {all-FP8, fwd-FP4, bwd-FP4, all-FP4}. */
    Standard,
    /** All 8 per-GEMM FP8/FP4 combinations. */
    Full,
};

/** Materialize the option list for a kind. Options are ordered by
 *  ascending FP4 fraction; index 0 is always all-FP8. */
std::vector<LayerScheme> makeOptionSet(OptionSetKind kind);

/** Parse "simple"/"standard"/"full". */
OptionSetKind optionSetKindByName(const std::string &name);

} // namespace snip

#endif // SNIP_SCHEMES_SCHEME_H
