#include "parallel/pipeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace snip {

std::vector<int>
evenStageSplit(int n_blocks, int n_stages)
{
    SNIP_ASSERT(n_stages > 0 && n_blocks >= n_stages,
                "need at least one block per stage");
    const int base = (n_blocks + n_stages - 1) / n_stages;
    std::vector<int> split;
    int assigned = 0;
    for (int s = 0; s < n_stages; ++s) {
        int take = std::min(base, n_blocks - assigned);
        // Never leave a later stage empty.
        int remaining_stages = n_stages - s - 1;
        take = std::min(take, n_blocks - assigned - remaining_stages);
        SNIP_ASSERT(take >= 1);
        split.push_back(take);
        assigned += take;
    }
    SNIP_ASSERT(assigned == n_blocks);
    return split;
}

std::vector<PipelineStage>
buildStages(const FlopsModel &flops, const PrecisionScheme &scheme,
            const std::vector<int> &split)
{
    std::vector<PipelineStage> stages;
    int first = 0;
    for (int take : split) {
        PipelineStage st;
        st.first_block = first;
        st.n_blocks = take;
        double fwd = 0.0;
        double stage_flops = 0.0, stage_fp4 = 0.0;
        for (int b = first; b < first + take; ++b) {
            for (int r = 0; r < kRolesPerBlock; ++r) {
                const int idx = b * kRolesPerBlock + r;
                const LayerScheme &ls =
                    scheme.layers[static_cast<size_t>(idx)];
                const double lf =
                    flops.layerFlops()[static_cast<size_t>(idx)];
                // Forward is one of the three GEMMs; backward the
                // other two.
                const double per_gemm = lf / kGemmsPerLayer;
                fwd += per_gemm /
                       precisionThroughput(ls.of(GemmKind::Fwd));
                st.bwd_time +=
                    per_gemm /
                        precisionThroughput(ls.of(GemmKind::Dgrad)) +
                    per_gemm /
                        precisionThroughput(ls.of(GemmKind::Wgrad));
                stage_flops += lf;
                stage_fp4 += lf * ls.fp4Fraction();
            }
        }
        st.fwd_time = fwd;
        st.fp4_fraction = stage_flops > 0 ? stage_fp4 / stage_flops : 0.0;
        stages.push_back(st);
        first += take;
    }
    return stages;
}

PipelineTimeline
simulatePipeline(const std::vector<PipelineStage> &stages,
                 int n_microbatches)
{
    const int S = static_cast<int>(stages.size());
    const int M = n_microbatches;
    SNIP_ASSERT(S > 0 && M > 0);

    // Static 1F1B op order per stage.
    struct Op
    {
        bool fwd;
        int mb;
    };
    std::vector<std::vector<Op>> order(static_cast<size_t>(S));
    for (int s = 0; s < S; ++s) {
        const int warmup = std::min(S - 1 - s, M);
        auto &ops = order[static_cast<size_t>(s)];
        for (int m = 0; m < warmup; ++m)
            ops.push_back({true, m});
        int next_fwd = warmup, next_bwd = 0;
        while (next_fwd < M || next_bwd < M) {
            if (next_fwd < M)
                ops.push_back({true, next_fwd++});
            if (next_bwd < M && (next_bwd < next_fwd || next_fwd >= M))
                ops.push_back({false, next_bwd++});
        }
    }

    constexpr double kUnset = -1.0;
    std::vector<std::vector<double>> fwd_done(
        static_cast<size_t>(S),
        std::vector<double>(static_cast<size_t>(M), kUnset));
    std::vector<std::vector<double>> bwd_done = fwd_done;
    std::vector<double> stage_free(static_cast<size_t>(S), 0.0);
    std::vector<size_t> cursor(static_cast<size_t>(S), 0);

    PipelineTimeline tl;
    tl.stages = stages;

    bool progress = true;
    size_t remaining = 0;
    for (int s = 0; s < S; ++s)
        remaining += order[static_cast<size_t>(s)].size();
    while (remaining > 0) {
        SNIP_ASSERT(progress, "pipeline schedule deadlocked");
        progress = false;
        for (int s = 0; s < S; ++s) {
            auto &ops = order[static_cast<size_t>(s)];
            while (cursor[static_cast<size_t>(s)] < ops.size()) {
                const Op op = ops[cursor[static_cast<size_t>(s)]];
                double dep = 0.0;
                if (op.fwd) {
                    if (s > 0) {
                        dep = fwd_done[static_cast<size_t>(s - 1)]
                                      [static_cast<size_t>(op.mb)];
                        if (dep == kUnset)
                            break;
                    }
                } else {
                    if (s < S - 1) {
                        dep = bwd_done[static_cast<size_t>(s + 1)]
                                      [static_cast<size_t>(op.mb)];
                    } else {
                        dep = fwd_done[static_cast<size_t>(s)]
                                      [static_cast<size_t>(op.mb)];
                    }
                    if (dep == kUnset)
                        break;
                }
                const double dur =
                    op.fwd ? stages[static_cast<size_t>(s)].fwd_time
                           : stages[static_cast<size_t>(s)].bwd_time;
                const double start =
                    std::max(stage_free[static_cast<size_t>(s)], dep);
                const double end = start + dur;
                stage_free[static_cast<size_t>(s)] = end;
                auto &done = op.fwd ? fwd_done : bwd_done;
                done[static_cast<size_t>(s)]
                    [static_cast<size_t>(op.mb)] = end;
                tl.events.push_back(
                    {s, op.mb, op.fwd, start, end});
                ++cursor[static_cast<size_t>(s)];
                --remaining;
                progress = true;
            }
        }
    }

    double busy = 0.0;
    for (const auto &e : tl.events) {
        tl.makespan = std::max(tl.makespan, e.end);
        busy += e.end - e.start;
    }
    tl.bubble_fraction =
        tl.makespan > 0
            ? 1.0 - busy / (tl.makespan * static_cast<double>(S))
            : 0.0;
    return tl;
}

std::string
PipelineTimeline::render(int width) const
{
    if (events.empty() || makespan <= 0)
        return "(empty timeline)\n";
    const int S = static_cast<int>(stages.size());
    std::vector<std::string> rows(
        static_cast<size_t>(S),
        std::string(static_cast<size_t>(width), '.'));
    for (const auto &e : events) {
        int c0 = static_cast<int>(e.start / makespan * width);
        int c1 = static_cast<int>(e.end / makespan * width);
        c1 = std::max(c1, c0 + 1);
        c1 = std::min(c1, width);
        const char fill =
            e.is_forward
                ? static_cast<char>('0' + e.microbatch % 10)
                : static_cast<char>('a' + e.microbatch % 26);
        for (int c = c0; c < c1; ++c)
            rows[static_cast<size_t>(e.stage)][static_cast<size_t>(c)] =
                fill;
    }
    std::ostringstream oss;
    oss << "time ->  (digits: forward mb, letters: backward mb, '.': "
           "bubble)\n";
    for (int s = 0; s < S; ++s) {
        oss << "stage" << s << " [" << rows[static_cast<size_t>(s)]
            << "]  blocks " << stages[static_cast<size_t>(s)].first_block
            << ".."
            << stages[static_cast<size_t>(s)].first_block +
                   stages[static_cast<size_t>(s)].n_blocks - 1
            << "  fp4=" << static_cast<int>(std::lround(
                              stages[static_cast<size_t>(s)].fp4_fraction *
                              100))
            << "%\n";
    }
    return oss.str();
}

} // namespace snip
