/**
 * @file
 * Pipeline-parallelism model (Sec. 5.3, Fig. 12).
 *
 * The paper cannot measure FP4/FP8 wall-clock on real hardware, so the
 * pipeline analysis is analytical: blocks are partitioned into stages,
 * each stage's forward/backward time follows the FLOPs model with the
 * Blackwell throughput ratios, and a synchronous 1F1B (GPipe-style
 * flush) schedule is simulated over microbatches to obtain the
 * timeline, makespan and bubble fraction.
 */
#ifndef SNIP_PARALLEL_PIPELINE_H
#define SNIP_PARALLEL_PIPELINE_H

#include <string>
#include <vector>

#include "core/flops_model.h"

namespace snip {

/** Static description of one pipeline stage. */
struct PipelineStage
{
    int first_block = 0;
    int n_blocks = 0;
    /** Relative forward time of one microbatch through this stage. */
    double fwd_time = 0.0;
    /** Relative backward time (2x forward FLOPs). */
    double bwd_time = 0.0;
    /** FP4 FLOP fraction inside this stage. */
    double fp4_fraction = 0.0;
};

/** One scheduled work item on the timeline. */
struct PipelineEvent
{
    int stage = 0;
    int microbatch = 0;
    bool is_forward = true;
    double start = 0.0;
    double end = 0.0;
};

/** Complete simulation result. */
struct PipelineTimeline
{
    std::vector<PipelineStage> stages;
    std::vector<PipelineEvent> events;
    double makespan = 0.0;
    /** Fraction of stage-time slots spent idle. */
    double bubble_fraction = 0.0;

    /** ASCII Gantt rendering (Fig. 12 style). */
    std::string render(int width = 72) const;
};

/** Split n_blocks into n_stages: ceil-sized stages first, remainder
 *  last (TinyLlama 22 blocks over 4 stages -> 6,6,6,4 as in Fig. 12). */
std::vector<int> evenStageSplit(int n_blocks, int n_stages);

/** Build stage descriptions for a scheme. */
std::vector<PipelineStage> buildStages(const FlopsModel &flops,
                                       const PrecisionScheme &scheme,
                                       const std::vector<int> &split);

/**
 * Simulate a synchronous 1F1B schedule: forwards fill in order, each
 * stage alternating with backwards once steady state is reached;
 * dependencies are microbatch-order within a stage, stage-order within
 * a microbatch (forward downstream, backward upstream).
 */
PipelineTimeline simulatePipeline(const std::vector<PipelineStage> &stages,
                                  int n_microbatches);

} // namespace snip

#endif // SNIP_PARALLEL_PIPELINE_H
