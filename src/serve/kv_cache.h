/**
 * @file
 * Paged KV cache for incremental decoding.
 *
 * Storage is organized as fixed-size token pages drawn from a
 * preallocated pool through a free-list, so resident memory is
 * O(active tokens) rather than O(max_seqs * max_seq): a sequence only
 * holds the pages its tokens actually fill, and retiring a sequence
 * returns its pages for immediate reuse.
 *
 * Two storage modes (SNIP_KV_CACHE):
 *
 *   fp8   (default) K/V values are stored as FP8-E4M3 byte codes with
 *         one scale per (token, kv-head) head_dim block — the paper's
 *         scale-per-block recipe (Sec. 2.3) applied as a storage
 *         format via quant/codec. A stored value decodes to exactly
 *         the float the fake quantizer would have produced, so the
 *         dequantize-on-gather path is the fake-quantized attention
 *         input, nothing looser.
 *   fp32  reference mode: values are stored verbatim; a decode step
 *         reading this cache is bit-identical to the full-sequence
 *         forward (the serving determinism baseline).
 *
 * Concurrency contract: the cache is not thread-safe — the engine
 * serializes begin/append/end on one thread, so there is no mutex to
 * annotate (src/util/thread_annotations.h). gatherHeadK/V are const
 * and safe to call from pool workers while no mutation is in flight
 * (the decode schedule appends serially, then fans gathers out);
 * parallelFor's join is the happens-before edge that publishes the
 * appended pages to those workers.
 */
#ifndef SNIP_SERVE_KV_CACHE_H
#define SNIP_SERVE_KV_CACHE_H

#include <cstdint>
#include <vector>

namespace snip {
namespace serve {

/** SNIP_KV_CACHE spellings. */
enum class KvCacheMode
{
    Fp8,
    Fp32,
};

/** Name for logging/tables ("fp8" | "fp32"). */
const char *kvCacheModeName(KvCacheMode mode);

/** Parse a SNIP_KV_CACHE spelling; false and unchanged for unknown
 *  names (null/empty select the default, fp8). */
bool parseKvCacheMode(const char *spec, KvCacheMode *out);

/** The process-wide mode from SNIP_KV_CACHE (warns and falls back to
 *  fp8 on unknown spellings). */
KvCacheMode kvCacheModeFromEnv();

/** Geometry and capacity of one cache. */
struct KvCacheConfig
{
    int64_t n_layers = 0;
    int64_t n_kv_heads = 0;
    int64_t head_dim = 0;
    /** Tokens per page (SNIP_KV_PAGE; envConfig().kvPageTokens()). */
    int64_t page_tokens = 16;
    /** Pool capacity in pages, shared by every sequence and layer. */
    int64_t max_pages = 0;
    /** Sequence slots ([0, max_seqs) are valid seq ids). */
    int64_t max_seqs = 0;
    /** Longest sequence a slot may hold (sizes the page tables). */
    int64_t max_seq_tokens = 0;
    KvCacheMode mode = KvCacheMode::Fp8;

    int64_t kvDim() const { return n_kv_heads * head_dim; }
};

/** Paged K/V storage for up to max_seqs concurrent sequences. */
class KvCache
{
  public:
    explicit KvCache(const KvCacheConfig &config);

    const KvCacheConfig &config() const { return config_; }

    /** Claim slot @p seq_id for a new sequence. The slot must be
     *  inactive; its per-layer lengths start at zero. */
    void beginSequence(int64_t seq_id);

    /** Retire slot @p seq_id: every page it holds (all layers)
     *  returns to the free list in ascending page order. */
    void endSequence(int64_t seq_id);

    /** Append one token's K and V rows (each [kv_dim] floats) for
     *  @p layer of @p seq_id, allocating a page on boundary. */
    void append(int64_t seq_id, int64_t layer, const float *k,
                const float *v);

    /** Tokens stored for (seq, layer). */
    int64_t length(int64_t seq_id, int64_t layer) const;

    /**
     * Copy kv-head @p kvh of every stored K row for (seq, layer) into
     * @p dst as a contiguous [length, head_dim] slab, dequantizing in
     * fp8 mode. Performs no allocation.
     */
    void gatherHeadK(int64_t seq_id, int64_t layer, int64_t kvh,
                     float *dst) const;

    /** V-side gatherHeadK. */
    void gatherHeadV(int64_t seq_id, int64_t layer, int64_t kvh,
                     float *dst) const;

    int64_t pagesInUse() const { return pages_in_use_; }
    int64_t pagesFree() const
    {
        return static_cast<int64_t>(free_.size());
    }
    int64_t activeSequences() const { return active_seqs_; }
    bool sequenceActive(int64_t seq_id) const;

  private:
    struct SeqLayer
    {
        std::vector<int32_t> pages;
        int64_t length = 0;
    };

    SeqLayer &slot(int64_t seq_id, int64_t layer);
    const SeqLayer &slot(int64_t seq_id, int64_t layer) const;
    int64_t allocPage();

    /** Flat float offset of (page, k-or-v, token-slot). */
    int64_t rowOffset(int64_t page, int64_t kv, int64_t tok) const;

    void encodeRow(int64_t page, int64_t kv, int64_t tok,
                   const float *src);
    void gatherHead(int64_t seq_id, int64_t layer, int64_t kv,
                    int64_t kvh, float *dst) const;

    KvCacheConfig config_;
    std::vector<SeqLayer> slots_;     ///< [max_seqs * n_layers]
    std::vector<char> seq_active_;    ///< [max_seqs]
    std::vector<int32_t> free_;       ///< LIFO page free list
    int64_t pages_in_use_ = 0;
    int64_t active_seqs_ = 0;

    // fp32 mode: [max_pages][2][page_tokens][kv_dim] floats.
    std::vector<float> data_;
    // fp8 mode: byte codes with the same geometry plus one inverse
    // scale per (page, k/v, token, kv-head) head_dim block.
    std::vector<uint8_t> codes_;
    std::vector<float> inv_scales_;
};

} // namespace serve
} // namespace snip

#endif // SNIP_SERVE_KV_CACHE_H
