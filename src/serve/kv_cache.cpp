#include "serve/kv_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "quant/codec.h"
#include "quant/format.h"
#include "quant/scaling.h"
#include "runtime/env_config.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "telemetry/telemetry.h"
#include "util/logging.h"

namespace snip {
namespace serve {

namespace {

/**
 * Every positive FP8-E4M3 magnitude in ascending order, index 0 = 0.
 * quantizeNearest() lands exactly on this grid, so encoding is an
 * exact binary search and a byte code decodes to exactly the float
 * the fake quantizer would have produced.
 */
const std::vector<float> &
e4m3Magnitudes()
{
    static const std::vector<float> mags = [] {
        const FloatFormat &fmt = fp8E4m3();
        const int m = fmt.mantissa_bits;
        const int e_top = (1 << fmt.exponent_bits) - 1;
        std::vector<float> out;
        out.push_back(0.0f);
        for (int e = 0; e <= e_top; ++e) {
            for (int frac = 0; frac < (1 << m); ++frac) {
                if (e == 0 && frac == 0)
                    continue; // zero already present
                if (e == e_top) {
                    if (!fmt.finite_only)
                        break; // IEEE-like: Inf/NaN codes
                    if (fmt.has_nan && frac == (1 << m) - 1)
                        continue; // the single NaN pattern
                }
                const double mant =
                    static_cast<double>(frac) /
                    static_cast<double>(1 << m);
                const double val =
                    (e == 0)
                        ? std::ldexp(mant, 1 - fmt.bias)
                        : std::ldexp(1.0 + mant, e - fmt.bias);
                out.push_back(static_cast<float>(val));
            }
        }
        std::sort(out.begin(), out.end());
        SNIP_ASSERT(out.size() ==
                        static_cast<size_t>(fmt.magnitudeCount() + 1),
                    "e4m3 magnitude table size mismatch");
        SNIP_ASSERT(out.size() <= 128, "magnitude index must fit 7 bits");
        return out;
    }();
    return mags;
}

/** Byte code for one already-grid-snapped value. */
uint8_t
encodeE4m3(float q)
{
    const std::vector<float> &mags = e4m3Magnitudes();
    const float mag = std::fabs(q);
    const auto it =
        std::lower_bound(mags.begin(), mags.end(), mag);
    SNIP_ASSERT(it != mags.end() && *it == mag,
                "value ", q, " is not on the e4m3 grid");
    const uint8_t idx =
        static_cast<uint8_t>(it - mags.begin());
    return std::signbit(q) ? static_cast<uint8_t>(idx | 0x80) : idx;
}

} // namespace

const char *
kvCacheModeName(KvCacheMode mode)
{
    return mode == KvCacheMode::Fp8 ? "fp8" : "fp32";
}

bool
parseKvCacheMode(const char *spec, KvCacheMode *out)
{
    if (spec == nullptr || *spec == '\0' ||
        std::strcmp(spec, "fp8") == 0) {
        *out = KvCacheMode::Fp8;
        return true;
    }
    if (std::strcmp(spec, "fp32") == 0) {
        *out = KvCacheMode::Fp32;
        return true;
    }
    return false;
}

KvCacheMode
kvCacheModeFromEnv()
{
    KvCacheMode m = KvCacheMode::Fp8;
    const char *spec = runtime::envConfig().kvCache().cstrOrNull();
    if (!parseKvCacheMode(spec, &m)) {
        warn("unknown SNIP_KV_CACHE value '", spec,
             "' (expected fp8|fp32); using fp8");
        m = KvCacheMode::Fp8;
    }
    return m;
}

KvCache::KvCache(const KvCacheConfig &config) : config_(config)
{
    SNIP_ASSERT(config.n_layers > 0 && config.n_kv_heads > 0 &&
                    config.head_dim > 0,
                "KvCache needs positive geometry");
    SNIP_ASSERT(config.page_tokens > 0 && config.max_pages > 0 &&
                    config.max_seqs > 0 && config.max_seq_tokens > 0,
                "KvCache needs positive capacity");

    slots_.resize(
        static_cast<size_t>(config.max_seqs * config.n_layers));
    const int64_t pages_per_seq_layer =
        (config.max_seq_tokens + config.page_tokens - 1) /
        config.page_tokens;
    for (auto &sl : slots_)
        sl.pages.reserve(static_cast<size_t>(pages_per_seq_layer));
    seq_active_.assign(static_cast<size_t>(config.max_seqs), 0);

    // LIFO free list holding every page; pop_back hands out the
    // lowest-numbered pages first.
    free_.reserve(static_cast<size_t>(config.max_pages));
    for (int64_t p = config.max_pages - 1; p >= 0; --p)
        free_.push_back(static_cast<int32_t>(p));

    const size_t row_floats = static_cast<size_t>(
        config.max_pages * 2 * config.page_tokens * config.kvDim());
    if (config.mode == KvCacheMode::Fp32) {
        data_.assign(row_floats, 0.0f);
    } else {
        codes_.assign(row_floats, 0);
        inv_scales_.assign(
            static_cast<size_t>(config.max_pages * 2 *
                                config.page_tokens *
                                config.n_kv_heads),
            0.0f);
        e4m3Magnitudes(); // build the codec table up front
    }
}

KvCache::SeqLayer &
KvCache::slot(int64_t seq_id, int64_t layer)
{
    SNIP_ASSERT(seq_id >= 0 && seq_id < config_.max_seqs,
                "bad KV seq id ", seq_id);
    SNIP_ASSERT(layer >= 0 && layer < config_.n_layers,
                "bad KV layer ", layer);
    return slots_[static_cast<size_t>(seq_id * config_.n_layers +
                                      layer)];
}

const KvCache::SeqLayer &
KvCache::slot(int64_t seq_id, int64_t layer) const
{
    return const_cast<KvCache *>(this)->slot(seq_id, layer);
}

bool
KvCache::sequenceActive(int64_t seq_id) const
{
    SNIP_ASSERT(seq_id >= 0 && seq_id < config_.max_seqs,
                "bad KV seq id ", seq_id);
    return seq_active_[static_cast<size_t>(seq_id)] != 0;
}

void
KvCache::beginSequence(int64_t seq_id)
{
    SNIP_ASSERT(!sequenceActive(seq_id), "KV seq ", seq_id,
                " is already active");
    for (int64_t l = 0; l < config_.n_layers; ++l) {
        SeqLayer &sl = slot(seq_id, l);
        SNIP_ASSERT(sl.pages.empty() && sl.length == 0,
                    "stale KV state for seq ", seq_id);
    }
    seq_active_[static_cast<size_t>(seq_id)] = 1;
    ++active_seqs_;
}

void
KvCache::endSequence(int64_t seq_id)
{
    SNIP_ASSERT(sequenceActive(seq_id), "KV seq ", seq_id,
                " is not active");
    int64_t released = 0;
    for (int64_t l = 0; l < config_.n_layers; ++l) {
        SeqLayer &sl = slot(seq_id, l);
        // Pages were acquired in ascending token order; return them in
        // the same order so the LIFO list re-issues the most recently
        // freed pages first.
        for (int32_t p : sl.pages) {
            free_.push_back(p);
            ++released;
        }
        sl.pages.clear();
        sl.length = 0;
    }
    pages_in_use_ -= released;
    seq_active_[static_cast<size_t>(seq_id)] = 0;
    --active_seqs_;
    if (telemetry::enabled())
        telemetry::count(telemetry::Counter::KvPageReleases, released);
}

int64_t
KvCache::allocPage()
{
    SNIP_ASSERT(!free_.empty(),
                "KV cache out of pages (", config_.max_pages,
                " total); raise max_pages or retire sequences");
    const int32_t p = free_.back();
    free_.pop_back();
    ++pages_in_use_;
    if (telemetry::enabled())
        telemetry::count(telemetry::Counter::KvPageAllocs);
    return p;
}

int64_t
KvCache::rowOffset(int64_t page, int64_t kv, int64_t tok) const
{
    return ((page * 2 + kv) * config_.page_tokens + tok) *
           config_.kvDim();
}

void
KvCache::encodeRow(int64_t page, int64_t kv, int64_t tok,
                   const float *src)
{
    const int64_t off = rowOffset(page, kv, tok);
    if (config_.mode == KvCacheMode::Fp32) {
        std::memcpy(data_.data() + off, src,
                    static_cast<size_t>(config_.kvDim()) *
                        sizeof(float));
        return;
    }
    const FloatFormat &fmt = fp8E4m3();
    const double fmt_max = fmt.maxValue();
    const simd::KernelTable &kt = simd::activeKernels();
    const int64_t hd = config_.head_dim;
    uint8_t *out = codes_.data() + off;
    float *inv_out =
        inv_scales_.data() +
        ((page * 2 + kv) * config_.page_tokens + tok) *
            config_.n_kv_heads;
    for (int64_t h = 0; h < config_.n_kv_heads; ++h) {
        const float *block = src + h * hd;
        // One scale per (token, kv-head) head_dim block — the same
        // max-abs/rescale recipe FakeQuantizer applies to a tile.
        const double max_abs =
            static_cast<double>(kt.maxAbs(block, hd));
        const double scale = regionScale(max_abs, fmt_max);
        const float fscale = static_cast<float>(scale);
        const float inv = static_cast<float>(1.0 / scale);
        inv_out[h] = inv;
        for (int64_t i = 0; i < hd; ++i)
            out[h * hd + i] =
                encodeE4m3(quantizeNearest(block[i] * fscale, fmt));
    }
}

void
KvCache::append(int64_t seq_id, int64_t layer, const float *k,
                const float *v)
{
    SNIP_ASSERT(sequenceActive(seq_id), "append to inactive KV seq ",
                seq_id);
    SeqLayer &sl = slot(seq_id, layer);
    SNIP_ASSERT(sl.length < config_.max_seq_tokens, "KV seq ", seq_id,
                " exceeds max_seq_tokens");
    const int64_t page_idx = sl.length / config_.page_tokens;
    const int64_t tok = sl.length % config_.page_tokens;
    if (page_idx == static_cast<int64_t>(sl.pages.size()))
        sl.pages.push_back(static_cast<int32_t>(allocPage()));
    const int64_t page = sl.pages[static_cast<size_t>(page_idx)];
    encodeRow(page, 0, tok, k);
    encodeRow(page, 1, tok, v);
    ++sl.length;
}

int64_t
KvCache::length(int64_t seq_id, int64_t layer) const
{
    return slot(seq_id, layer).length;
}

void
KvCache::gatherHead(int64_t seq_id, int64_t layer, int64_t kv,
                    int64_t kvh, float *dst) const
{
    const SeqLayer &sl = slot(seq_id, layer);
    const int64_t hd = config_.head_dim;
    if (config_.mode == KvCacheMode::Fp32) {
        for (int64_t t = 0; t < sl.length; ++t) {
            const int64_t page =
                sl.pages[static_cast<size_t>(t / config_.page_tokens)];
            const int64_t tok = t % config_.page_tokens;
            std::memcpy(dst + t * hd,
                        data_.data() + rowOffset(page, kv, tok) +
                            kvh * hd,
                        static_cast<size_t>(hd) * sizeof(float));
        }
        return;
    }
    const std::vector<float> &mags = e4m3Magnitudes();
    for (int64_t t = 0; t < sl.length; ++t) {
        const int64_t page =
            sl.pages[static_cast<size_t>(t / config_.page_tokens)];
        const int64_t tok = t % config_.page_tokens;
        const int64_t off = rowOffset(page, kv, tok) + kvh * hd;
        float *out = dst + t * hd;
        const uint8_t *codes = codes_.data() + off;
        const float inv =
            inv_scales_[static_cast<size_t>(
                ((page * 2 + kv) * config_.page_tokens + tok) *
                    config_.n_kv_heads +
                kvh)];
        for (int64_t i = 0; i < hd; ++i) {
            const uint8_t c = codes[i];
            const float mag = mags[static_cast<size_t>(c & 0x7f)];
            const float val = mag * inv;
            out[i] = (c & 0x80) ? -val : val;
        }
    }
}

void
KvCache::gatherHeadK(int64_t seq_id, int64_t layer, int64_t kvh,
                     float *dst) const
{
    gatherHead(seq_id, layer, 0, kvh, dst);
}

void
KvCache::gatherHeadV(int64_t seq_id, int64_t layer, int64_t kvh,
                     float *dst) const
{
    gatherHead(seq_id, layer, 1, kvh, dst);
}

} // namespace serve
} // namespace snip
