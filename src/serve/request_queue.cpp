#include "serve/request_queue.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace snip {
namespace serve {

RequestQueue
RequestQueue::synthetic(const SyntheticStreamConfig &config)
{
    SNIP_ASSERT(config.vocab > 0 && config.min_prompt > 0 &&
                    config.max_prompt >= config.min_prompt &&
                    config.min_new > 0 &&
                    config.max_new >= config.min_new,
                "bad synthetic stream config");
    RequestQueue q;
    Rng rng(config.seed);
    double clock = 0.0;
    for (int64_t i = 0; i < config.n_requests; ++i) {
        if (config.arrival_rate > 0.0) {
            // Exponential interarrival: an open-loop Poisson stream.
            const double u = rng.nextDouble();
            clock += -std::log1p(-u) / config.arrival_rate;
        }
        ServeRequest r;
        r.id = i;
        r.arrival_s = clock;
        const int64_t plen =
            config.min_prompt +
            static_cast<int64_t>(rng.nextBelow(static_cast<uint64_t>(
                config.max_prompt - config.min_prompt + 1)));
        r.prompt.resize(static_cast<size_t>(plen));
        for (auto &t : r.prompt)
            t = static_cast<int32_t>(
                rng.nextBelow(static_cast<uint64_t>(config.vocab)));
        r.max_new_tokens =
            config.min_new +
            static_cast<int64_t>(rng.nextBelow(static_cast<uint64_t>(
                config.max_new - config.min_new + 1)));
        r.eos_token = config.eos_token;
        if (config.deadline_s > 0.0)
            r.deadline_s = r.arrival_s + config.deadline_s;
        q.push(std::move(r));
    }
    return q;
}

void
RequestQueue::push(ServeRequest request)
{
    SNIP_ASSERT(next_ == 0, "push after consumption started");
    requests_.push_back(std::move(request));
    std::stable_sort(requests_.begin(), requests_.end(),
                     [](const ServeRequest &a, const ServeRequest &b) {
                         return a.arrival_s < b.arrival_s;
                     });
}

const ServeRequest &
RequestQueue::peek() const
{
    SNIP_ASSERT(!empty(), "peek on empty queue");
    return requests_[next_];
}

ServeRequest
RequestQueue::pop()
{
    SNIP_ASSERT(!empty(), "pop on empty queue");
    return std::move(requests_[next_++]);
}

} // namespace serve
} // namespace snip
