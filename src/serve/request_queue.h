/**
 * @file
 * Serving request stream: request records plus a deterministic
 * synthetic open-loop generator.
 *
 * The engine consumes requests in arrival order; the synthetic stream
 * draws prompt contents, lengths and exponential interarrival gaps
 * from one seeded Rng, so a (seed, config) pair names a workload
 * exactly — benches and tests replay identical traffic.
 */
#ifndef SNIP_SERVE_REQUEST_QUEUE_H
#define SNIP_SERVE_REQUEST_QUEUE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snip {
namespace serve {

/** One generation request. */
struct ServeRequest
{
    int64_t id = 0;
    /** Arrival time on the engine's logical clock, seconds. */
    double arrival_s = 0.0;
    std::vector<int32_t> prompt;
    /** Tokens to generate (greedy), counting the prefill token. */
    int64_t max_new_tokens = 1;
    /** Stop token, or -1 to always run to max_new_tokens. */
    int32_t eos_token = -1;
    /** Absolute deadline on the engine's logical clock, seconds;
     *  <= 0 = none. A request past its deadline is cancelled cleanly
     *  (queued: rejected; mid-flight: stopped, pages released). */
    double deadline_s = 0.0;
};

/** Knobs of the synthetic open-loop stream. */
struct SyntheticStreamConfig
{
    int64_t n_requests = 16;
    uint64_t seed = 0x5EEDull;
    /** Prompt token ids are drawn uniformly from [0, vocab). */
    int64_t vocab = 128;
    int64_t min_prompt = 4;
    int64_t max_prompt = 24;
    int64_t min_new = 4;
    int64_t max_new = 16;
    /** Mean arrival rate, requests/second; <= 0 = all arrive at 0. */
    double arrival_rate = 0.0;
    int32_t eos_token = -1;
    /** Per-request deadline relative to its arrival, seconds;
     *  <= 0 = none. */
    double deadline_s = 0.0;
};

/** Arrival-ordered request queue. */
class RequestQueue
{
  public:
    RequestQueue() = default;

    /** Build the deterministic synthetic stream for @p config. */
    static RequestQueue synthetic(const SyntheticStreamConfig &config);

    void push(ServeRequest request);

    bool empty() const { return next_ >= requests_.size(); }
    std::size_t pending() const { return requests_.size() - next_; }

    /** The next request by arrival; queue must be non-empty. */
    const ServeRequest &peek() const;
    ServeRequest pop();

  private:
    std::vector<ServeRequest> requests_; ///< sorted by arrival_s
    std::size_t next_ = 0;
};

} // namespace serve
} // namespace snip

#endif // SNIP_SERVE_REQUEST_QUEUE_H
