/**
 * @file
 * Continuous-batching inference engine.
 *
 * One engine thread drives the whole loop: admit arrived requests into
 * free sequence slots, prefill each new prompt through the batched
 * forward (ForwardMode::Prefill populates the paged KV cache), then
 * coalesce every active sequence into ONE decode step per iteration —
 * the decode batch shrinks and grows as sequences retire mid-flight
 * and new arrivals take their slots, never idling on a straggler.
 *
 * Generation is greedy argmax (lowest index wins ties), so the token
 * stream of a request depends only on model weights and its prompt:
 * continuous batching returns the same tokens as running requests one
 * at a time (tests/test_serve.cpp pins this).
 *
 * Admission runs on a logical clock that tracks real elapsed time but
 * skips ahead to the next arrival whenever the engine is idle, so a
 * sparse trace doesn't stall the loop; TTFT/ITL latencies are measured
 * on the same clock.
 *
 * Overload and failure behavior (every request gets a result, the
 * engine never asserts on traffic and never deadlocks):
 *
 *  - Structurally impossible requests — empty prompt, prompt +
 *    generation beyond max_seq, worst-case KV footprint beyond the
 *    whole pool — are rejected at admission with a per-request status.
 *  - A request that fits but not *right now* waits in the queue
 *    (backpressure) until retirements free pages.
 *  - Deadlines (ServeRequest::deadline_s) are enforced on the logical
 *    clock: a queued request past its deadline is rejected, an active
 *    one is cancelled cleanly with every KV page released.
 *  - Before each decode step the engine reserves the pages that step
 *    will allocate; when the pool can't cover them (admission
 *    overcommit, or an injected "kv.alloc" fault) it preempts the
 *    NEWEST-admitted sequence — deterministically, independent of
 *    timing — instead of asserting inside the allocator.
 *  - An injected "serve.admit" fault defers the head admission
 *    (deterministic requeue); an idle engine bounds the deferrals so
 *    a hostile schedule cannot spin it forever.
 *
 * Concurrency contract: the engine is single-threaded BY DESIGN — one
 * engine thread owns all mutable state below, and parallelism lives
 * inside the batched forward (ThreadPool's parallelFor, whose chunks
 * only read the engine's inputs). There is therefore no mutex to
 * annotate (src/util/thread_annotations.h): the contract is that no
 * Engine method is called from two threads, which is what lets the
 * serve path stay bit-identical at any thread count.
 */
#ifndef SNIP_SERVE_ENGINE_H
#define SNIP_SERVE_ENGINE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/kv_cache.h"
#include "serve/request_queue.h"

namespace snip {

class LlamaModel;

namespace serve {

/** Engine sizing; KV knobs default from SNIP_KV_CACHE/SNIP_KV_PAGE. */
struct EngineConfig
{
    /** Sequence slots = widest coalesced decode batch. */
    int64_t max_concurrency = 8;
    /** Tokens per KV page; 0 = envConfig().kvPageTokens(). */
    int64_t kv_page_tokens = 0;
    /** KV pool capacity in pages; 0 = worst case for max_concurrency
     *  sequences of max_seq tokens (no admission ever blocks). */
    int64_t max_pages = 0;
    /** KV storage mode; parsed from SNIP_KV_CACHE by default. */
    KvCacheMode kv_mode = kvCacheModeFromEnv();
};

/** How a request's service ended. */
enum class RequestStatus
{
    Ok = 0,               ///< ran to eos/max_new_tokens
    RejectedEmptyPrompt,  ///< no prompt tokens to prefill
    RejectedTooLong,      ///< prompt + max_new beyond model max_seq
    RejectedPoolTooSmall, ///< worst-case KV beyond the whole pool
    RejectedAdmission,    ///< admission fault, retries exhausted
    Expired,              ///< deadline passed (queued or mid-flight)
    Preempted,            ///< cancelled to relieve KV page pressure
};

/** Stable name of @p status ("ok", "expired", ...). */
const char *requestStatusName(RequestStatus status);

/** Per-request outcome. */
struct RequestResult
{
    int64_t id = 0;
    RequestStatus status = RequestStatus::Ok;
    std::vector<int32_t> tokens; ///< generated (greedy) tokens
    double ttft_s = 0.0;         ///< arrival -> first token
    std::vector<double> itl_s;   ///< inter-token gaps, decode only
};

/** Aggregate run statistics. */
struct ServeStats
{
    int64_t requests = 0;
    int64_t prefill_tokens = 0;
    int64_t decode_tokens = 0; ///< includes each prefill's first token
    int64_t decode_steps = 0;
    int64_t peak_kv_pages = 0;
    int64_t rejected = 0;  ///< requests refused at admission
    int64_t preempted = 0; ///< sequences cancelled for page pressure
    int64_t expired = 0;   ///< requests past their deadline
    int64_t admission_retries = 0; ///< deferred head admissions
    double elapsed_s = 0.0;
    double prefill_s = 0.0;
    double decode_s = 0.0;
    double p50_ttft_s = 0.0, p99_ttft_s = 0.0;
    double p50_itl_s = 0.0, p99_itl_s = 0.0;

    double
    tokensPerSecond() const
    {
        return elapsed_s > 0.0
                   ? static_cast<double>(decode_tokens) / elapsed_s
                   : 0.0;
    }
};

/** Continuous-batching engine over one model. */
class Engine
{
  public:
    /** @p model must outlive the engine; its max_seq bounds
     *  prompt + generation length per request. */
    Engine(LlamaModel &model, const EngineConfig &config);

    /** Drain @p queue to completion; results ordered by request id. */
    std::vector<RequestResult> run(RequestQueue &queue);

    /** Statistics of the most recent run(). */
    const ServeStats &stats() const { return stats_; }

    const KvCache &kvCache() const { return cache_; }

  private:
    struct ActiveSeq
    {
        int64_t slot = -1; ///< cache sequence id
        ServeRequest request;
        RequestResult result;
        double last_token_s = 0.0;
        int64_t admit_ns = 0;    ///< trace clock at admission (0 = off)
        int64_t admit_order = 0; ///< admission sequence number
        bool done = false;
    };

    double now() const;
    int64_t pagesNeeded(int64_t tokens) const;
    void admit(ServeRequest request, double now_s);
    void decodeOnce(double now_s);
    void retire(std::size_t idx);
    /** Reject @p request before admission with @p status. */
    void rejectRequest(ServeRequest request, RequestStatus status);
    /** Cancel active @p idx with @p status, releasing its pages. */
    void finishEarly(std::size_t idx, RequestStatus status);
    /** Expire active sequences past their deadline at @p now_s. */
    void expireActive(double now_s);
    /** Pages the next decode step will allocate across @p active_. */
    int64_t pagesNeededThisStep() const;

    LlamaModel &model_;
    EngineConfig config_;
    KvCache cache_;
    ServeStats stats_;

    std::vector<ActiveSeq> active_;
    std::vector<int64_t> free_slots_;
    std::vector<RequestResult> done_;
    // Preallocated decode-step staging (zero allocs per iteration).
    std::vector<int64_t> seq_ids_;
    std::vector<int32_t> step_tokens_;
    std::vector<float> logits_;

    double t0_s_ = 0.0;       ///< real-clock run start
    double idle_skip_s_ = 0.0; ///< logical time skipped while idle
    int64_t admit_counter_ = 0; ///< admissions so far this run
    int64_t head_deferrals_ = 0; ///< consecutive idle head deferrals
};

} // namespace serve
} // namespace snip

#endif // SNIP_SERVE_ENGINE_H
