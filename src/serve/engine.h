/**
 * @file
 * Continuous-batching inference engine.
 *
 * One engine thread drives the whole loop: admit arrived requests into
 * free sequence slots, prefill each new prompt through the batched
 * forward (ForwardMode::Prefill populates the paged KV cache), then
 * coalesce every active sequence into ONE decode step per iteration —
 * the decode batch shrinks and grows as sequences retire mid-flight
 * and new arrivals take their slots, never idling on a straggler.
 *
 * Generation is greedy argmax (lowest index wins ties), so the token
 * stream of a request depends only on model weights and its prompt:
 * continuous batching returns the same tokens as running requests one
 * at a time (tests/test_serve.cpp pins this).
 *
 * Admission runs on a logical clock that tracks real elapsed time but
 * skips ahead to the next arrival whenever the engine is idle, so a
 * sparse trace doesn't stall the loop; TTFT/ITL latencies are measured
 * on the same clock.
 */
#ifndef SNIP_SERVE_ENGINE_H
#define SNIP_SERVE_ENGINE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/kv_cache.h"
#include "serve/request_queue.h"

namespace snip {

class LlamaModel;

namespace serve {

/** Engine sizing; KV knobs default from SNIP_KV_CACHE/SNIP_KV_PAGE. */
struct EngineConfig
{
    /** Sequence slots = widest coalesced decode batch. */
    int64_t max_concurrency = 8;
    /** Tokens per KV page; 0 = envConfig().kvPageTokens(). */
    int64_t kv_page_tokens = 0;
    /** KV pool capacity in pages; 0 = worst case for max_concurrency
     *  sequences of max_seq tokens (no admission ever blocks). */
    int64_t max_pages = 0;
    /** KV storage mode; parsed from SNIP_KV_CACHE by default. */
    KvCacheMode kv_mode = kvCacheModeFromEnv();
};

/** Per-request outcome. */
struct RequestResult
{
    int64_t id = 0;
    std::vector<int32_t> tokens; ///< generated (greedy) tokens
    double ttft_s = 0.0;         ///< arrival -> first token
    std::vector<double> itl_s;   ///< inter-token gaps, decode only
};

/** Aggregate run statistics. */
struct ServeStats
{
    int64_t requests = 0;
    int64_t prefill_tokens = 0;
    int64_t decode_tokens = 0; ///< includes each prefill's first token
    int64_t decode_steps = 0;
    int64_t peak_kv_pages = 0;
    double elapsed_s = 0.0;
    double prefill_s = 0.0;
    double decode_s = 0.0;
    double p50_ttft_s = 0.0, p99_ttft_s = 0.0;
    double p50_itl_s = 0.0, p99_itl_s = 0.0;

    double
    tokensPerSecond() const
    {
        return elapsed_s > 0.0
                   ? static_cast<double>(decode_tokens) / elapsed_s
                   : 0.0;
    }
};

/** Continuous-batching engine over one model. */
class Engine
{
  public:
    /** @p model must outlive the engine; its max_seq bounds
     *  prompt + generation length per request. */
    Engine(LlamaModel &model, const EngineConfig &config);

    /** Drain @p queue to completion; results ordered by request id. */
    std::vector<RequestResult> run(RequestQueue &queue);

    /** Statistics of the most recent run(). */
    const ServeStats &stats() const { return stats_; }

    const KvCache &kvCache() const { return cache_; }

  private:
    struct ActiveSeq
    {
        int64_t slot = -1; ///< cache sequence id
        ServeRequest request;
        RequestResult result;
        double last_token_s = 0.0;
        int64_t admit_ns = 0; ///< trace clock at admission (0 = off)
        bool done = false;
    };

    double now() const;
    int64_t pagesNeeded(int64_t tokens) const;
    void admit(ServeRequest request, double now_s);
    void decodeOnce(double now_s);
    void retire(std::size_t idx);

    LlamaModel &model_;
    EngineConfig config_;
    KvCache cache_;
    ServeStats stats_;

    std::vector<ActiveSeq> active_;
    std::vector<int64_t> free_slots_;
    std::vector<RequestResult> done_;
    // Preallocated decode-step staging (zero allocs per iteration).
    std::vector<int64_t> seq_ids_;
    std::vector<int32_t> step_tokens_;
    std::vector<float> logits_;

    double t0_s_ = 0.0;       ///< real-clock run start
    double idle_skip_s_ = 0.0; ///< logical time skipped while idle
};

} // namespace serve
} // namespace snip

#endif // SNIP_SERVE_ENGINE_H
