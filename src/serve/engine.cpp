#include "serve/engine.h"

#include <algorithm>
#include <chrono>

#include "nn/model.h"
#include "runtime/env_config.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/logging.h"

namespace snip {
namespace serve {

namespace {

/** Greedy sampling: argmax with lowest-index tie-break. */
int32_t
argmaxRow(const float *row, int64_t n)
{
    int64_t best = 0;
    for (int64_t i = 1; i < n; ++i)
        if (row[i] > row[best])
            best = i;
    return static_cast<int32_t>(best);
}

double
percentile(std::vector<double> &v, double q)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const double pos = static_cast<double>(v.size() - 1) * q;
    return v[static_cast<size_t>(pos + 0.5)];
}

double
realSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

Engine::Engine(LlamaModel &model, const EngineConfig &config)
    : model_(model),
      config_(config),
      cache_([&] {
          const ModelConfig &mc = model.config();
          KvCacheConfig kc;
          kc.n_layers = mc.n_blocks;
          kc.n_kv_heads = mc.n_kv_heads;
          kc.head_dim = mc.headDim();
          kc.page_tokens = config.kv_page_tokens > 0
                               ? config.kv_page_tokens
                               : runtime::envConfig().kvPageTokens();
          kc.max_seqs = config.max_concurrency;
          kc.max_seq_tokens = mc.max_seq;
          const int64_t worst_per_seq =
              mc.n_blocks *
              ((mc.max_seq + kc.page_tokens - 1) / kc.page_tokens);
          kc.max_pages = config.max_pages > 0
                             ? config.max_pages
                             : config.max_concurrency * worst_per_seq;
          kc.mode = config.kv_mode;
          return kc;
      }())
{
    SNIP_ASSERT(config_.max_concurrency > 0,
                "engine needs at least one sequence slot");
    const int64_t vocab = model_.config().vocab_size;
    seq_ids_.reserve(static_cast<size_t>(config_.max_concurrency));
    step_tokens_.reserve(static_cast<size_t>(config_.max_concurrency));
    logits_.resize(static_cast<size_t>(config_.max_concurrency * vocab));
    active_.reserve(static_cast<size_t>(config_.max_concurrency));
}

double
Engine::now() const
{
    return realSeconds() - t0_s_ + idle_skip_s_;
}

int64_t
Engine::pagesNeeded(int64_t tokens) const
{
    const KvCacheConfig &kc = cache_.config();
    return kc.n_layers *
           ((tokens + kc.page_tokens - 1) / kc.page_tokens);
}

void
Engine::admit(ServeRequest request, double now_s)
{
    const int64_t plen = static_cast<int64_t>(request.prompt.size());
    SNIP_ASSERT(plen > 0, "empty prompt in request ", request.id);
    SNIP_ASSERT(plen + request.max_new_tokens <= model_.config().max_seq,
                "request ", request.id, " needs ",
                plen + request.max_new_tokens,
                " tokens but max_seq is ", model_.config().max_seq);

    ActiveSeq seq;
    seq.slot = free_slots_.back();
    free_slots_.pop_back();
    cache_.beginSequence(seq.slot);

    if (trace::enabled()) {
        // The queue wait ended the instant this admission started;
        // backdate the span so the timeline shows the full wait.
        seq.admit_ns = trace::nowNs();
        const int64_t queued_ns = static_cast<int64_t>(
            std::max(0.0, now_s - request.arrival_s) * 1e9);
        trace::record(trace::Category::Serve, "queued",
                      seq.admit_ns - queued_ns, queued_ns, "id",
                      request.id);
    }

    const double t_pre = realSeconds();
    KvCacheHandle handle;
    handle.cache = &cache_;
    handle.seq_ids = &seq.slot;
    handle.count = 1;
    Tensor logits = [&] {
        trace::TraceScope span(trace::Category::Serve, "prefill", "id",
                               request.id, "tokens", plen);
        return model_.forward(request.prompt, 1, plen,
                              ForwardMode::Prefill, handle);
    }();
    const double prefill_s = realSeconds() - t_pre;
    stats_.prefill_s += prefill_s;
    stats_.prefill_tokens += plen;
    telemetry::addSeconds(telemetry::Seconds::ServePrefill, prefill_s);
    telemetry::count(telemetry::Counter::ServePrefillTokens, plen);

    const int32_t first = argmaxRow(
        logits.data() + (plen - 1) * model_.config().vocab_size,
        model_.config().vocab_size);
    const double t_first = now_s + prefill_s;
    seq.result.id = request.id;
    seq.result.tokens.push_back(first);
    seq.result.ttft_s = t_first - request.arrival_s;
    seq.last_token_s = t_first;
    stats_.decode_tokens += 1;
    seq.done = (first == request.eos_token &&
                request.eos_token >= 0) ||
               request.max_new_tokens <= 1;
    seq.request = std::move(request);
    active_.push_back(std::move(seq));
    if (active_.back().done)
        retire(active_.size() - 1);

    stats_.peak_kv_pages =
        std::max(stats_.peak_kv_pages, cache_.pagesInUse());
    telemetry::gaugeSet(telemetry::LastGauge::KvPagesInUse,
                        cache_.pagesInUse());
    telemetry::gaugeMax(telemetry::MaxGauge::KvPagesPeak,
                        cache_.pagesInUse());
    telemetry::gaugeSet(telemetry::LastGauge::ServeActiveSeqs,
                        static_cast<int64_t>(active_.size()));
}

void
Engine::decodeOnce(double now_s)
{
    const int64_t vocab = model_.config().vocab_size;
    seq_ids_.clear();
    step_tokens_.clear();
    for (const ActiveSeq &seq : active_) {
        seq_ids_.push_back(seq.slot);
        step_tokens_.push_back(seq.result.tokens.back());
    }
    const int64_t count = static_cast<int64_t>(active_.size());
    trace::TraceScope span(trace::Category::Serve, "decode_step",
                           "width", count, "step",
                           stats_.decode_steps);

    KvCacheHandle handle;
    handle.cache = &cache_;
    handle.seq_ids = seq_ids_.data();
    handle.count = count;

    const double t_dec = realSeconds();
    model_.decodeStep(step_tokens_.data(), count, handle,
                      logits_.data());
    const double decode_s = realSeconds() - t_dec;
    stats_.decode_s += decode_s;
    stats_.decode_steps += 1;
    stats_.decode_tokens += count;
    telemetry::addSeconds(telemetry::Seconds::ServeDecode, decode_s);
    telemetry::count(telemetry::Counter::ServeDecodeSteps);
    telemetry::count(telemetry::Counter::ServeDecodeTokens, count);

    const double t_tok = now_s + decode_s;
    for (size_t i = active_.size(); i-- > 0;) {
        ActiveSeq &seq = active_[i];
        const int32_t next = argmaxRow(
            logits_.data() + static_cast<int64_t>(i) * vocab, vocab);
        seq.result.tokens.push_back(next);
        seq.result.itl_s.push_back(t_tok - seq.last_token_s);
        seq.last_token_s = t_tok;
        if (static_cast<int64_t>(seq.result.tokens.size()) >=
                seq.request.max_new_tokens ||
            (seq.request.eos_token >= 0 &&
             next == seq.request.eos_token))
            retire(i);
    }

    stats_.peak_kv_pages =
        std::max(stats_.peak_kv_pages, cache_.pagesInUse());
    telemetry::gaugeSet(telemetry::LastGauge::KvPagesInUse,
                        cache_.pagesInUse());
    telemetry::gaugeMax(telemetry::MaxGauge::KvPagesPeak,
                        cache_.pagesInUse());
    telemetry::gaugeSet(telemetry::LastGauge::ServeActiveSeqs,
                        static_cast<int64_t>(active_.size()));
}

void
Engine::retire(std::size_t idx)
{
    ActiveSeq &seq = active_[idx];
    if (trace::enabled() && seq.admit_ns > 0)
        trace::record(
            trace::Category::Serve, "request", seq.admit_ns,
            trace::nowNs() - seq.admit_ns, "id", seq.result.id,
            "tokens",
            static_cast<int64_t>(seq.result.tokens.size()));
    cache_.endSequence(seq.slot);
    free_slots_.push_back(seq.slot);
    done_.push_back(std::move(seq.result));
    stats_.requests += 1;
    telemetry::count(telemetry::Counter::ServeRequests);
    active_.erase(active_.begin() + static_cast<int64_t>(idx));
}

std::vector<RequestResult>
Engine::run(RequestQueue &queue)
{
    stats_ = ServeStats{};
    trace::setCurrentThreadName("serve-engine");
    done_.clear();
    active_.clear();
    free_slots_.clear();
    for (int64_t s = config_.max_concurrency; s-- > 0;)
        free_slots_.push_back(s); // lowest slot admits first
    idle_skip_s_ = 0.0;
    t0_s_ = realSeconds();

    while (!queue.empty() || !active_.empty()) {
        double t = now();
        if (active_.empty() && !queue.empty() &&
            queue.peek().arrival_s > t) {
            // Idle: skip the logical clock to the next arrival
            // instead of spinning.
            idle_skip_s_ += queue.peek().arrival_s - t;
            t = now();
        }
        while (!queue.empty() && !free_slots_.empty() &&
               queue.peek().arrival_s <= t) {
            const ServeRequest &head = queue.peek();
            const int64_t need = pagesNeeded(
                static_cast<int64_t>(head.prompt.size()) +
                head.max_new_tokens);
            if (cache_.pagesFree() < need) {
                SNIP_ASSERT(!active_.empty(),
                            "request ", head.id, " needs ", need,
                            " KV pages but the pool only holds ",
                            cache_.pagesFree(),
                            " free; raise EngineConfig::max_pages");
                break; // wait for a retirement to free pages
            }
            admit(queue.pop(), t);
            t = now();
        }
        if (!active_.empty())
            decodeOnce(now());
    }

    stats_.elapsed_s = realSeconds() - t0_s_;
    std::vector<double> ttfts, itls;
    for (const RequestResult &r : done_) {
        ttfts.push_back(r.ttft_s);
        for (double itl : r.itl_s)
            itls.push_back(itl);
    }
    stats_.p50_ttft_s = percentile(ttfts, 0.50);
    stats_.p99_ttft_s = percentile(ttfts, 0.99);
    stats_.p50_itl_s = percentile(itls, 0.50);
    stats_.p99_itl_s = percentile(itls, 0.99);

    std::sort(done_.begin(), done_.end(),
              [](const RequestResult &a, const RequestResult &b) {
                  return a.id < b.id;
              });
    return std::move(done_);
}

} // namespace serve
} // namespace snip
