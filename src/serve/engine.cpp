#include "serve/engine.h"

#include <algorithm>
#include <chrono>

#include "nn/model.h"
#include "runtime/env_config.h"
#include "runtime/fault_injection.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/logging.h"

namespace snip {
namespace serve {

namespace {

/** Greedy sampling: argmax with lowest-index tie-break. */
int32_t
argmaxRow(const float *row, int64_t n)
{
    int64_t best = 0;
    for (int64_t i = 1; i < n; ++i)
        if (row[i] > row[best])
            best = i;
    return static_cast<int32_t>(best);
}

double
percentile(std::vector<double> &v, double q)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const double pos = static_cast<double>(v.size() - 1) * q;
    return v[static_cast<size_t>(pos + 0.5)];
}

double
realSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Idle head-admission deferrals tolerated under an injected
 *  "serve.admit" fault before the request is rejected outright — the
 *  bound that keeps a hostile fault schedule from spinning an idle
 *  engine forever. */
constexpr int64_t kMaxHeadDeferrals = 64;

} // namespace

const char *
requestStatusName(RequestStatus status)
{
    switch (status) {
    case RequestStatus::Ok:
        return "ok";
    case RequestStatus::RejectedEmptyPrompt:
        return "rejected-empty-prompt";
    case RequestStatus::RejectedTooLong:
        return "rejected-too-long";
    case RequestStatus::RejectedPoolTooSmall:
        return "rejected-pool-too-small";
    case RequestStatus::RejectedAdmission:
        return "rejected-admission";
    case RequestStatus::Expired:
        return "expired";
    case RequestStatus::Preempted:
        return "preempted";
    }
    return "?";
}

Engine::Engine(LlamaModel &model, const EngineConfig &config)
    : model_(model),
      config_(config),
      cache_([&] {
          const ModelConfig &mc = model.config();
          KvCacheConfig kc;
          kc.n_layers = mc.n_blocks;
          kc.n_kv_heads = mc.n_kv_heads;
          kc.head_dim = mc.headDim();
          kc.page_tokens = config.kv_page_tokens > 0
                               ? config.kv_page_tokens
                               : runtime::envConfig().kvPageTokens();
          kc.max_seqs = config.max_concurrency;
          kc.max_seq_tokens = mc.max_seq;
          const int64_t worst_per_seq =
              mc.n_blocks *
              ((mc.max_seq + kc.page_tokens - 1) / kc.page_tokens);
          kc.max_pages = config.max_pages > 0
                             ? config.max_pages
                             : config.max_concurrency * worst_per_seq;
          kc.mode = config.kv_mode;
          return kc;
      }())
{
    SNIP_ASSERT(config_.max_concurrency > 0,
                "engine needs at least one sequence slot");
    const int64_t vocab = model_.config().vocab_size;
    seq_ids_.reserve(static_cast<size_t>(config_.max_concurrency));
    step_tokens_.reserve(static_cast<size_t>(config_.max_concurrency));
    logits_.resize(static_cast<size_t>(config_.max_concurrency * vocab));
    active_.reserve(static_cast<size_t>(config_.max_concurrency));
}

double
Engine::now() const
{
    return realSeconds() - t0_s_ + idle_skip_s_;
}

int64_t
Engine::pagesNeeded(int64_t tokens) const
{
    const KvCacheConfig &kc = cache_.config();
    return kc.n_layers *
           ((tokens + kc.page_tokens - 1) / kc.page_tokens);
}

void
Engine::admit(ServeRequest request, double now_s)
{
    // Structural fit was vetted by the admission loop in run();
    // everything past this point can only fail by page pressure,
    // which the pre-decode reservation pass resolves by preemption.
    const int64_t plen = static_cast<int64_t>(request.prompt.size());

    ActiveSeq seq;
    seq.slot = free_slots_.back();
    free_slots_.pop_back();
    seq.admit_order = admit_counter_++;
    cache_.beginSequence(seq.slot);

    if (trace::enabled()) {
        // The queue wait ended the instant this admission started;
        // backdate the span so the timeline shows the full wait.
        seq.admit_ns = trace::nowNs();
        const int64_t queued_ns = static_cast<int64_t>(
            std::max(0.0, now_s - request.arrival_s) * 1e9);
        trace::record(trace::Category::Serve, "queued",
                      seq.admit_ns - queued_ns, queued_ns, "id",
                      request.id);
    }

    const double t_pre = realSeconds();
    KvCacheHandle handle;
    handle.cache = &cache_;
    handle.seq_ids = &seq.slot;
    handle.count = 1;
    Tensor logits = [&] {
        trace::TraceScope span(trace::Category::Serve, "prefill", "id",
                               request.id, "tokens", plen);
        return model_.forward(request.prompt, 1, plen,
                              ForwardMode::Prefill, handle);
    }();
    const double prefill_s = realSeconds() - t_pre;
    stats_.prefill_s += prefill_s;
    stats_.prefill_tokens += plen;
    telemetry::addSeconds(telemetry::Seconds::ServePrefill, prefill_s);
    telemetry::count(telemetry::Counter::ServePrefillTokens, plen);

    const int32_t first = argmaxRow(
        logits.data() + (plen - 1) * model_.config().vocab_size,
        model_.config().vocab_size);
    const double t_first = now_s + prefill_s;
    seq.result.id = request.id;
    seq.result.tokens.push_back(first);
    seq.result.ttft_s = t_first - request.arrival_s;
    seq.last_token_s = t_first;
    stats_.decode_tokens += 1;
    seq.done = (first == request.eos_token &&
                request.eos_token >= 0) ||
               request.max_new_tokens <= 1;
    seq.request = std::move(request);
    active_.push_back(std::move(seq));
    if (active_.back().done)
        retire(active_.size() - 1);

    stats_.peak_kv_pages =
        std::max(stats_.peak_kv_pages, cache_.pagesInUse());
    telemetry::gaugeSet(telemetry::LastGauge::KvPagesInUse,
                        cache_.pagesInUse());
    telemetry::gaugeMax(telemetry::MaxGauge::KvPagesPeak,
                        cache_.pagesInUse());
    telemetry::gaugeSet(telemetry::LastGauge::ServeActiveSeqs,
                        static_cast<int64_t>(active_.size()));
}

void
Engine::decodeOnce(double now_s)
{
    const int64_t vocab = model_.config().vocab_size;
    seq_ids_.clear();
    step_tokens_.clear();
    for (const ActiveSeq &seq : active_) {
        seq_ids_.push_back(seq.slot);
        step_tokens_.push_back(seq.result.tokens.back());
    }
    const int64_t count = static_cast<int64_t>(active_.size());
    trace::TraceScope span(trace::Category::Serve, "decode_step",
                           "width", count, "step",
                           stats_.decode_steps);

    KvCacheHandle handle;
    handle.cache = &cache_;
    handle.seq_ids = seq_ids_.data();
    handle.count = count;

    const double t_dec = realSeconds();
    model_.decodeStep(step_tokens_.data(), count, handle,
                      logits_.data());
    const double decode_s = realSeconds() - t_dec;
    stats_.decode_s += decode_s;
    stats_.decode_steps += 1;
    stats_.decode_tokens += count;
    telemetry::addSeconds(telemetry::Seconds::ServeDecode, decode_s);
    telemetry::count(telemetry::Counter::ServeDecodeSteps);
    telemetry::count(telemetry::Counter::ServeDecodeTokens, count);

    const double t_tok = now_s + decode_s;
    for (size_t i = active_.size(); i-- > 0;) {
        ActiveSeq &seq = active_[i];
        const int32_t next = argmaxRow(
            logits_.data() + static_cast<int64_t>(i) * vocab, vocab);
        seq.result.tokens.push_back(next);
        seq.result.itl_s.push_back(t_tok - seq.last_token_s);
        seq.last_token_s = t_tok;
        if (static_cast<int64_t>(seq.result.tokens.size()) >=
                seq.request.max_new_tokens ||
            (seq.request.eos_token >= 0 &&
             next == seq.request.eos_token))
            retire(i);
    }

    stats_.peak_kv_pages =
        std::max(stats_.peak_kv_pages, cache_.pagesInUse());
    telemetry::gaugeSet(telemetry::LastGauge::KvPagesInUse,
                        cache_.pagesInUse());
    telemetry::gaugeMax(telemetry::MaxGauge::KvPagesPeak,
                        cache_.pagesInUse());
    telemetry::gaugeSet(telemetry::LastGauge::ServeActiveSeqs,
                        static_cast<int64_t>(active_.size()));
}

void
Engine::retire(std::size_t idx)
{
    ActiveSeq &seq = active_[idx];
    if (trace::enabled() && seq.admit_ns > 0)
        trace::record(
            trace::Category::Serve, "request", seq.admit_ns,
            trace::nowNs() - seq.admit_ns, "id", seq.result.id,
            "tokens",
            static_cast<int64_t>(seq.result.tokens.size()));
    cache_.endSequence(seq.slot);
    free_slots_.push_back(seq.slot);
    done_.push_back(std::move(seq.result));
    stats_.requests += 1;
    telemetry::count(telemetry::Counter::ServeRequests);
    active_.erase(active_.begin() + static_cast<int64_t>(idx));
}

void
Engine::rejectRequest(ServeRequest request, RequestStatus status)
{
    debugLog("serve request ", request.id,
             " rejected at admission: ", requestStatusName(status));
    RequestResult r;
    r.id = request.id;
    r.status = status;
    done_.push_back(std::move(r));
    stats_.requests += 1;
    if (status == RequestStatus::Expired) {
        stats_.expired += 1;
        telemetry::count(telemetry::Counter::ServeExpired);
    } else {
        stats_.rejected += 1;
        telemetry::count(telemetry::Counter::ServeRejected);
    }
    telemetry::count(telemetry::Counter::ServeRequests);
}

void
Engine::finishEarly(std::size_t idx, RequestStatus status)
{
    ActiveSeq &seq = active_[idx];
    seq.result.status = status;
    if (status == RequestStatus::Preempted) {
        stats_.preempted += 1;
        telemetry::count(telemetry::Counter::ServePreempted);
        debugLog("serve request ", seq.result.id,
                 " preempted to relieve KV page pressure");
    } else {
        stats_.expired += 1;
        telemetry::count(telemetry::Counter::ServeExpired);
        debugLog("serve request ", seq.result.id,
                 " expired mid-flight");
    }
    retire(idx); // releases every KV page and frees the slot
}

void
Engine::expireActive(double now_s)
{
    for (std::size_t i = active_.size(); i-- > 0;) {
        const ServeRequest &req = active_[i].request;
        if (req.deadline_s > 0.0 && now_s > req.deadline_s)
            finishEarly(i, RequestStatus::Expired);
    }
}

int64_t
Engine::pagesNeededThisStep() const
{
    // Decode appends one token to every layer of every active
    // sequence; a page is allocated exactly when the current length
    // sits on a page boundary (all layers advance in lockstep, so
    // layer 0 speaks for the sequence).
    const KvCacheConfig &kc = cache_.config();
    int64_t needed = 0;
    for (const ActiveSeq &seq : active_)
        if (cache_.length(seq.slot, 0) % kc.page_tokens == 0)
            needed += kc.n_layers;
    return needed;
}

std::vector<RequestResult>
Engine::run(RequestQueue &queue)
{
    stats_ = ServeStats{};
    trace::setCurrentThreadName("serve-engine");
    done_.clear();
    active_.clear();
    free_slots_.clear();
    for (int64_t s = config_.max_concurrency; s-- > 0;)
        free_slots_.push_back(s); // lowest slot admits first
    idle_skip_s_ = 0.0;
    admit_counter_ = 0;
    head_deferrals_ = 0;
    t0_s_ = realSeconds();

    while (!queue.empty() || !active_.empty()) {
        double t = now();
        if (active_.empty() && !queue.empty() &&
            queue.peek().arrival_s > t) {
            // Idle: skip the logical clock to the next arrival
            // instead of spinning.
            idle_skip_s_ += queue.peek().arrival_s - t;
            t = now();
        }
        expireActive(t);
        while (!queue.empty() && queue.peek().arrival_s <= t) {
            const ServeRequest &head = queue.peek();
            const int64_t plen =
                static_cast<int64_t>(head.prompt.size());
            // Structural rejects come before the slot check: a request
            // that can never run must not block the queue behind it.
            if (plen <= 0) {
                rejectRequest(queue.pop(),
                              RequestStatus::RejectedEmptyPrompt);
                continue;
            }
            if (plen + head.max_new_tokens > model_.config().max_seq) {
                rejectRequest(queue.pop(),
                              RequestStatus::RejectedTooLong);
                continue;
            }
            const int64_t need =
                pagesNeeded(plen + head.max_new_tokens);
            if (need > cache_.config().max_pages) {
                rejectRequest(queue.pop(),
                              RequestStatus::RejectedPoolTooSmall);
                continue;
            }
            if (head.deadline_s > 0.0 && t > head.deadline_s) {
                rejectRequest(queue.pop(), RequestStatus::Expired);
                continue;
            }
            if (free_slots_.empty())
                break; // wait for a retirement to free a slot
            if (cache_.pagesFree() < need) {
                if (!active_.empty())
                    break; // retirements will free pages
                // Idle yet short of pages: the never-fit check above
                // vetted the whole pool, so something else pinned
                // pages — reject rather than deadlock.
                rejectRequest(queue.pop(),
                              RequestStatus::RejectedPoolTooSmall);
                continue;
            }
            if (SNIP_FAULT_POINT("serve.admit")) {
                // Deterministic requeue: the head stays queued and is
                // retried next iteration. An idle engine bounds the
                // deferrals so the loop always makes progress.
                ++stats_.admission_retries;
                if (active_.empty() &&
                    ++head_deferrals_ > kMaxHeadDeferrals) {
                    head_deferrals_ = 0;
                    rejectRequest(queue.pop(),
                                  RequestStatus::RejectedAdmission);
                    continue;
                }
                break;
            }
            head_deferrals_ = 0;
            admit(queue.pop(), t);
            t = now();
        }
        if (!active_.empty()) {
            // Reserve this step's page allocations up front; when the
            // pool cannot cover them (or an injected "kv.alloc" fault
            // models an allocation failure), preempt the NEWEST
            // admission until the step fits — deterministic, and the
            // oldest work always completes.
            int64_t needed = pagesNeededThisStep();
            bool fault = SNIP_FAULT_POINT("kv.alloc");
            while ((cache_.pagesFree() < needed || fault) &&
                   !active_.empty()) {
                fault = false;
                std::size_t newest = 0;
                for (std::size_t i = 1; i < active_.size(); ++i)
                    if (active_[i].admit_order >
                        active_[newest].admit_order)
                        newest = i;
                finishEarly(newest, RequestStatus::Preempted);
                needed = pagesNeededThisStep();
            }
        }
        if (!active_.empty())
            decodeOnce(now());
    }

    stats_.elapsed_s = realSeconds() - t0_s_;
    std::vector<double> ttfts, itls;
    for (const RequestResult &r : done_) {
        if (r.tokens.empty())
            continue; // rejected before prefill: no latency sample
        ttfts.push_back(r.ttft_s);
        for (double itl : r.itl_s)
            itls.push_back(itl);
    }
    stats_.p50_ttft_s = percentile(ttfts, 0.50);
    stats_.p99_ttft_s = percentile(ttfts, 0.99);
    stats_.p50_itl_s = percentile(itls, 0.50);
    stats_.p99_itl_s = percentile(itls, 0.99);

    std::sort(done_.begin(), done_.end(),
              [](const RequestResult &a, const RequestResult &b) {
                  return a.id < b.id;
              });
    return std::move(done_);
}

} // namespace serve
} // namespace snip
