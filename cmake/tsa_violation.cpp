/**
 * @file
 * Compile-FAIL probe for the thread-safety analysis (see
 * CMakeLists.txt): reads a SNIP_GUARDED_BY member without holding its
 * mutex. Under clang with -Werror=thread-safety this translation unit
 * MUST be rejected — if it compiles, the analysis is silently off and
 * the configure step aborts.
 */
#include "util/thread_annotations.h"

struct Guarded
{
    snip::util::Mutex mu;
    int value SNIP_GUARDED_BY(mu) = 0;
};

int
main()
{
    Guarded g;
    return g.value; // unguarded read: -Wthread-safety must reject this
}
