/**
 * @file
 * Compile-PASS control for the thread-safety analysis probe (see
 * CMakeLists.txt and cmake/tsa_violation.cpp): the same guarded access
 * done correctly under a MutexLock. If THIS fails, the annotation
 * header itself is broken (not the violation detection), and the
 * configure step aborts with the real error.
 */
#include "util/thread_annotations.h"

struct Guarded
{
    snip::util::Mutex mu;
    int value SNIP_GUARDED_BY(mu) = 0;
};

int
main()
{
    Guarded g;
    snip::util::MutexLock lock(g.mu);
    return g.value;
}
