#!/usr/bin/env python3
"""Tolerant google-benchmark regression gate.

Compares a fresh ``--benchmark_out`` JSON file against a checked-in
baseline (bench/baseline_kernels.json) and fails when any benchmark
regressed by more than the tolerance.

Because CI runners and developer machines differ in absolute speed,
the comparison is *relative* by default: each benchmark's cost ratio
(new / baseline) is normalized by the median ratio across all common
benchmarks, so a uniformly slower machine cancels out and only
benchmarks that regressed relative to their peers trip the gate. Use
--absolute to compare raw ratios instead (same-machine runs).

Cost is 1/items_per_second when the benchmark reports it, else
real_time (normalized to nanoseconds). Aggregate rows (mean/median/
stddev) and error rows are skipped; rows matching --exclude (e.g. the
thread-sweep rows, whose scaling depends on the runner's core count)
are ignored. Benchmarks present on only one side are reported but
never fail the gate, so adding or retiring benchmarks does not require
a lockstep baseline update.

Usage:
  check_bench.py NEW.json [--baseline bench/baseline_kernels.json]
                 [--tolerance 0.25] [--exclude REGEX] [--absolute]
                 [--update]
"""

import argparse
import json
import re
import shutil
import statistics
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_costs(path, exclude):
    """Map benchmark name -> cost (lower is better) from a JSON file."""
    with open(path) as f:
        data = json.load(f)
    costs = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if bench.get("run_type") == "aggregate":
            continue
        if bench.get("error_occurred"):
            continue
        if exclude and exclude.search(name):
            continue
        if bench.get("items_per_second"):
            costs[name] = 1.0 / bench["items_per_second"]
        elif "real_time" in bench:
            unit = TIME_UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
            costs[name] = bench["real_time"] * unit
    return costs


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("new", help="fresh --benchmark_out JSON file")
    parser.add_argument(
        "--baseline",
        default="bench/baseline_kernels.json",
        help="checked-in baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression (default: %(default)s)",
    )
    parser.add_argument(
        "--exclude",
        default=None,
        help="regex of benchmark names to ignore (e.g. 'threads:')",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="skip median normalization (same-machine comparison)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy NEW over the baseline instead of comparing",
    )
    args = parser.parse_args()

    if args.update:
        shutil.copyfile(args.new, args.baseline)
        print(f"baseline updated: {args.baseline} <- {args.new}")
        return 0

    exclude = re.compile(args.exclude) if args.exclude else None
    new = load_costs(args.new, exclude)
    base = load_costs(args.baseline, exclude)

    common = sorted(set(new) & set(base))
    only_new = sorted(set(new) - set(base))
    only_base = sorted(set(base) - set(new))
    if only_new:
        print(f"note: {len(only_new)} benchmark(s) not in baseline "
              f"(not gated): {', '.join(only_new)}")
    if only_base:
        print(f"note: {len(only_base)} baseline benchmark(s) not in "
              f"this run: {', '.join(only_base)}")
    if not common:
        print("error: no common benchmarks between run and baseline")
        return 1

    ratios = {name: new[name] / base[name] for name in common}
    scale = 1.0 if args.absolute else statistics.median(ratios.values())
    if scale <= 0:
        print(f"error: non-positive normalization scale {scale}")
        return 1
    if not args.absolute:
        print(f"machine-speed normalization: median cost ratio "
              f"{scale:.3f} (1.0 = baseline machine)")

    limit = 1.0 + args.tolerance
    regressions = []
    print(f"{'benchmark':<44} {'ratio':>8} {'norm':>8}")
    for name in common:
        norm = ratios[name] / scale
        flag = ""
        if norm > limit:
            regressions.append((name, norm))
            flag = f"  <-- REGRESSION (> {limit:.2f}x)"
        print(f"{name:<44} {ratios[name]:>8.3f} {norm:>8.3f}{flag}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more "
              f"than {args.tolerance:.0%} vs {args.baseline}:")
        for name, norm in regressions:
            print(f"  {name}: {norm:.2f}x normalized cost")
        print("If the slowdown is intended, refresh the baseline with "
              "--update and commit it.")
        return 1
    print(f"\nOK: {len(common)} benchmark(s) within {args.tolerance:.0%} "
          f"of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
