#!/usr/bin/env python3
"""Tolerant google-benchmark regression gate + perf-trend emitter.

Compares a fresh ``--benchmark_out`` JSON file against a checked-in
baseline (bench/baseline_kernels.json) and fails when any benchmark
regressed by more than the tolerance.

Because CI runners and developer machines differ in absolute speed,
the comparison is *relative* by default: each benchmark's cost ratio
(new / baseline) is normalized by the median ratio across all common
benchmarks, so a uniformly slower machine cancels out and only
benchmarks that regressed relative to their peers trip the gate. Use
--absolute to compare raw ratios instead (same-machine runs).

Cost is 1/items_per_second when the benchmark reports it, else
real_time (normalized to nanoseconds). Aggregate rows (mean/median/
stddev) and error rows are skipped; rows matching --exclude (e.g. the
thread-sweep rows, whose scaling depends on the runner's core count)
are ignored. Benchmarks present only in the fresh run are reported but
never fail the gate (a new benchmark does not require a lockstep
baseline update). A baseline benchmark MISSING from the fresh run is
an error (exit 2) naming the row — a renamed or dropped bench must
either ship a baseline refresh or be waved through explicitly with
--allow-missing.

Perf-trend support (CI archives one record per run):

  --emit-trend TREND.json    write a snip-perf-trend-v1 record holding
                             the bench medians of this run, optional
                             embedded telemetry (--telemetry T.json)
                             and free-form --meta key=value pairs.
                             The record always holds EVERY row of the
                             run — --exclude filters the gate only, so
                             ungated rows (thread sweeps, ITL
                             percentiles, /traced runs) still land in
                             the archived trend.
  --compare-trends OLD NEW   print the per-benchmark cost deltas of
                             two previously emitted trend records
                             (exit 0 always; it reports, not gates).

Usage:
  check_bench.py NEW.json [--baseline bench/baseline_kernels.json]
                 [--tolerance 0.25] [--exclude REGEX] [--absolute]
                 [--update] [--allow-missing]
                 [--emit-trend TREND.json] [--telemetry T.json]
                 [--meta key=value ...]
  check_bench.py --compare-trends OLD.json NEW.json
"""

import argparse
import json
import re
import shutil
import statistics
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

TREND_SCHEMA = "snip-perf-trend-v1"


def load_costs(path, exclude):
    """Map benchmark name -> cost (lower is better) from a JSON file."""
    with open(path) as f:
        data = json.load(f)
    costs = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if bench.get("run_type") == "aggregate":
            continue
        if bench.get("error_occurred"):
            continue
        if exclude and exclude.search(name):
            continue
        if bench.get("items_per_second"):
            costs[name] = 1.0 / bench["items_per_second"]
        elif "real_time" in bench:
            unit = TIME_UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
            costs[name] = bench["real_time"] * unit
    return costs


def emit_trend(path, costs, telemetry_path, meta_pairs):
    """Write one snip-perf-trend-v1 record for this run."""
    meta = {}
    for pair in meta_pairs or []:
        key, sep, value = pair.partition("=")
        if not sep:
            print(f"error: --meta expects key=value, got '{pair}'")
            return False
        meta[key] = value
    telemetry = None
    if telemetry_path:
        try:
            with open(telemetry_path) as f:
                telemetry = json.load(f)
        except (OSError, ValueError) as exc:
            print(f"error: could not embed telemetry "
                  f"{telemetry_path}: {exc}")
            return False
    record = {
        "schema": TREND_SCHEMA,
        "meta": meta,
        "bench": costs,
        "telemetry": telemetry,
    }
    with open(path, "w") as f:
        json.dump(record, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"trend record written: {path} ({len(costs)} benchmark(s), "
          f"telemetry {'embedded' if telemetry else 'absent'})")
    return True


def load_trend(path):
    with open(path) as f:
        record = json.load(f)
    if record.get("schema") != TREND_SCHEMA:
        raise ValueError(f"{path}: not a {TREND_SCHEMA} record")
    return record


def compare_trends(old_path, new_path):
    """Report per-benchmark cost movement between two trend records."""
    old = load_trend(old_path)
    new = load_trend(new_path)
    old_bench = old.get("bench", {})
    new_bench = new.get("bench", {})
    common = sorted(set(old_bench) & set(new_bench))
    print(f"comparing {old_path} ({old.get('meta', {})})")
    print(f"  against {new_path} ({new.get('meta', {})})")
    if not common:
        print("no common benchmarks")
        return 0
    print(f"{'benchmark':<44} {'old':>12} {'new':>12} {'ratio':>8}")
    for name in common:
        ratio = (new_bench[name] / old_bench[name]
                 if old_bench[name] > 0 else float("inf"))
        print(f"{name:<44} {old_bench[name]:>12.4g} "
              f"{new_bench[name]:>12.4g} {ratio:>8.3f}")
    for name in sorted(set(new_bench) - set(old_bench)):
        print(f"{name:<44} {'-':>12} {new_bench[name]:>12.4g}  (new)")
    for name in sorted(set(old_bench) - set(new_bench)):
        print(f"{name:<44} {old_bench[name]:>12.4g} {'-':>12}  (gone)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "new", nargs="?", help="fresh --benchmark_out JSON file"
    )
    parser.add_argument(
        "--baseline",
        default="bench/baseline_kernels.json",
        help="checked-in baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression (default: %(default)s)",
    )
    parser.add_argument(
        "--exclude",
        default=None,
        help="regex of benchmark names to ignore (e.g. 'threads:')",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="skip median normalization (same-machine comparison)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy NEW over the baseline instead of comparing",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="tolerate baseline benchmarks absent from this run",
    )
    parser.add_argument(
        "--emit-trend",
        metavar="TREND.json",
        default=None,
        help="also write a perf-trend record for this run",
    )
    parser.add_argument(
        "--telemetry",
        metavar="T.json",
        default=None,
        help="telemetry JSON to embed in the trend record",
    )
    parser.add_argument(
        "--meta",
        action="append",
        metavar="KEY=VALUE",
        default=None,
        help="meta entry for the trend record (repeatable)",
    )
    parser.add_argument(
        "--compare-trends",
        nargs=2,
        metavar=("OLD.json", "NEW.json"),
        default=None,
        help="diff two previously emitted trend records and exit",
    )
    args = parser.parse_args()

    if args.compare_trends:
        return compare_trends(*args.compare_trends)
    if args.new is None:
        parser.error("NEW.json is required unless --compare-trends")

    if args.update:
        shutil.copyfile(args.new, args.baseline)
        print(f"baseline updated: {args.baseline} <- {args.new}")
        return 0

    exclude = re.compile(args.exclude) if args.exclude else None
    new = load_costs(args.new, exclude)
    base = load_costs(args.baseline, exclude)

    # The trend record archives the WHOLE run: --exclude only filters
    # the gate, so ungated rows (thread sweeps, ITL percentiles,
    # /traced invocations) stay visible to --compare-trends.
    if args.emit_trend and not emit_trend(args.emit_trend,
                                          load_costs(args.new, None),
                                          args.telemetry, args.meta):
        return 2

    common = sorted(set(new) & set(base))
    only_new = sorted(set(new) - set(base))
    only_base = sorted(set(base) - set(new))
    if only_new:
        print(f"note: {len(only_new)} benchmark(s) not in baseline "
              f"(not gated): {', '.join(only_new)}")
    if only_base:
        level = "note" if args.allow_missing else "error"
        print(f"{level}: {len(only_base)} baseline benchmark(s) missing "
              f"from this run: {', '.join(only_base)}")
        if not args.allow_missing:
            print("A renamed or removed benchmark must refresh the "
                  "baseline (--update) or be acknowledged with "
                  "--allow-missing.")
            return 2
    if not common:
        print("error: no common benchmarks between run and baseline")
        return 1

    ratios = {name: new[name] / base[name] for name in common}
    scale = 1.0 if args.absolute else statistics.median(ratios.values())
    if scale <= 0:
        print(f"error: non-positive normalization scale {scale}")
        return 1
    if not args.absolute:
        print(f"machine-speed normalization: median cost ratio "
              f"{scale:.3f} (1.0 = baseline machine)")

    limit = 1.0 + args.tolerance
    regressions = []
    print(f"{'benchmark':<44} {'ratio':>8} {'norm':>8}")
    for name in common:
        norm = ratios[name] / scale
        flag = ""
        if norm > limit:
            regressions.append((name, norm))
            flag = f"  <-- REGRESSION (> {limit:.2f}x)"
        print(f"{name:<44} {ratios[name]:>8.3f} {norm:>8.3f}{flag}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more "
              f"than {args.tolerance:.0%} vs {args.baseline}:")
        for name, norm in regressions:
            print(f"  {name}: {norm:.2f}x normalized cost")
        print("If the slowdown is intended, refresh the baseline with "
              "--update and commit it.")
        return 1
    print(f"\nOK: {len(common)} benchmark(s) within {args.tolerance:.0%} "
          f"of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
