#!/usr/bin/env python3
"""Repo-invariant linter for src/ (see README "Static analysis").

Machine-checks the house rules that the codebase's determinism and
durability guarantees rest on but that no compiler enforces:

  env-access      all environment access goes through runtime/env_config
                  (one snapshot at startup -> every knob is replayable).
  nondeterminism  no rand()/random_device/wall-clock in library code;
                  randomness comes from seeded generators, time from
                  steady_clock (telemetry durations only).
  file-publish    no direct ofstream/fopen publishing: every file write
                  goes through util/file_io (writeFile/writeFileAtomic),
                  the single audited crash-safe publication path.
  naked-thread    no std::thread outside src/runtime/ - all parallelism
                  flows through ThreadPool/TaskThread so the
                  bit-identical-at-any-thread-count contract holds.
  fault-site      every SNIP_FAULT_POINT("name") is registered in the
                  README fault-grammar table (sites are user-facing API).
  atomic-order    every atomic load/store/RMW names its memory_order -
                  an implicit seq_cst is indistinguishable from an
                  unconsidered one; the order at each site must be a
                  documented decision.

Usage:  tools/snip_lint.py [--readme README.md] [paths...]
Paths default to src/. Exit status 1 when any finding is reported.

Suppression: a line (or the line before it) containing
`snip-lint: allow(<rule>)` silences that rule for that line. Every
suppression needs an adjacent comment saying why.
"""

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Per-rule path exemptions (prefix match on the repo-relative path).
# These are the designated owners of the pattern each rule bans.
EXEMPT = {
    "env-access": ("src/runtime/env_config.cpp",),
    "file-publish": ("src/util/file_io.cpp",),
    "naked-thread": ("src/runtime/",),
}

SOURCE_SUFFIXES = (".h", ".hpp", ".c", ".cc", ".cpp")

SUPPRESS_RE = re.compile(r"snip-lint:\s*allow\(([\w,\s-]+)\)")
FAULT_SITE_RE = re.compile(r'SNIP_FAULT_POINT\s*\(\s*"([^"]+)"')

# Patterns checked against comment- and string-stripped lines.
SIMPLE_RULES = [
    ("env-access", re.compile(r"\bgetenv\s*\("),
     "environment access outside runtime/env_config (knobs must be "
     "snapshotted once for replayability)"),
    ("nondeterminism",
     re.compile(r"\b(?:std::)?(?:rand|srand)\s*\(|random_device"
                r"|system_clock|gettimeofday|\blocaltime\b|\bgmtime\b"
                r"|(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0|\))"),
     "nondeterministic source in library code (use a seeded generator "
     "or steady_clock)"),
    ("file-publish",
     re.compile(r"\bofstream\b|\bfopen\s*\("),
     "direct file write outside util/file_io (publish through "
     "fsio::writeFile / writeFileAtomic)"),
    ("naked-thread",
     re.compile(r"\bstd::thread\b"),
     "std::thread outside src/runtime/ (route parallelism through "
     "ThreadPool / TaskThread)"),
]

ATOMIC_CALL_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or"
    r"|fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure so reported line numbers match the file."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if ch == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if ch in "\"'":
                state = ch
                out.append(ch)
                i += 1
                continue
            out.append(ch)
        elif state == "line":
            if ch == "\n":
                state = None
                out.append(ch)
            else:
                out.append(" ")
        elif state == "block":
            if ch == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(ch if ch == "\n" else " ")
        else:  # inside a string/char literal
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == state:
                state = None
                out.append(ch)
            elif ch == "\n":  # unterminated (raw string etc.) - bail
                state = None
                out.append(ch)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def suppressions(raw_lines):
    """Map line number -> set of rules allowed on that line (a marker
    suppresses its own line and the one after, so it can sit on the
    line above the finding)."""
    allowed = {}
    for idx, line in enumerate(raw_lines, 1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        for ln in (idx, idx + 1):
            allowed.setdefault(ln, set()).update(rules)
    return allowed


def is_exempt(rule, rel):
    return any(rel.startswith(p) for p in EXEMPT.get(rule, ()))


def check_atomic_orders(stripped_lines, rel, allowed, findings):
    """Flag atomic member calls that do not name a memory_order. The
    call's argument text (joined across up to 4 lines) must contain a
    memory_order token; loads/stores with defaulted order are banned."""
    for idx, line in enumerate(stripped_lines):
        for m in ATOMIC_CALL_RE.finditer(line):
            ln = idx + 1
            # The call's arguments may wrap; look from the call site
            # through the next few lines for an order token.
            window = " ".join([line[m.start():]] +
                              stripped_lines[idx + 1:idx + 4])[:240]
            if "memory_order" in window:
                continue
            if "atomic-order" in allowed.get(ln, set()):
                continue
            findings.append(
                (rel, ln, "atomic-order",
                 f"atomic {m.group(1)}() without an explicit "
                 "memory_order (state the required ordering, with a "
                 "comment, at every site)"))


def lint_file(path, rel, findings):
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.split("\n")
    allowed = suppressions(raw_lines)
    stripped = strip_comments_and_strings(raw)
    stripped_lines = stripped.split("\n")

    for rule, pattern, message in SIMPLE_RULES:
        if is_exempt(rule, rel):
            continue
        for idx, line in enumerate(stripped_lines):
            if pattern.search(line):
                ln = idx + 1
                if rule in allowed.get(ln, set()):
                    continue
                findings.append((rel, ln, rule, message))

    check_atomic_orders(stripped_lines, rel, allowed, findings)

    sites = []
    for idx, line in enumerate(raw_lines, 1):
        for m in FAULT_SITE_RE.finditer(line):
            sites.append((idx, m.group(1)))
    return sites


def check_fault_sites(sites_by_file, readme_path, findings):
    try:
        readme = readme_path.read_text(encoding="utf-8")
    except OSError:
        for rel, sites in sites_by_file.items():
            for ln, name in sites:
                findings.append((rel, ln, "fault-site",
                                 f"cannot read {readme_path} to verify "
                                 f"site '{name}'"))
        return
    for rel, sites in sites_by_file.items():
        for ln, name in sites:
            if f"`{name}`" not in readme:
                findings.append(
                    (rel, ln, "fault-site",
                     f"fault site '{name}' is not registered in the "
                     "README fault-grammar table (add it as `" + name +
                     "` under the SNIP_FAULT section)"))


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to lint (default: src/)")
    ap.add_argument("--readme", default=str(REPO / "README.md"),
                    help="README holding the fault-grammar table")
    args = ap.parse_args(argv)

    roots = [Path(p) for p in (args.paths or [REPO / "src"])]
    files = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(p for p in root.rglob("*")
                                if p.suffix in SOURCE_SUFFIXES))
        elif root.suffix in SOURCE_SUFFIXES:
            files.append(root)

    findings = []
    sites_by_file = {}
    for path in files:
        try:
            rel = str(path.resolve().relative_to(REPO))
        except ValueError:
            rel = str(path)
        sites = lint_file(path, rel, findings)
        if sites:
            sites_by_file[rel] = sites
    check_fault_sites(sites_by_file, Path(args.readme), findings)

    findings.sort()
    for rel, ln, rule, message in findings:
        print(f"{rel}:{ln}: [{rule}] {message}")
    if findings:
        print(f"snip_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"snip_lint: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
