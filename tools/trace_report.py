#!/usr/bin/env python3
"""Summarize (or validate) a snip Chrome trace-event JSON.

The C++ runtime (src/telemetry/trace.h, SNIP_TRACE=json:<path>) writes
{"traceEvents": [...]} documents loadable in Perfetto/chrome://tracing.
This tool answers the quick questions without a UI:

  - where did the time go, per category and span name (total time and
    SELF time, i.e. minus enclosed same-thread spans)?
  - which requests were slowest end to end (the serve "request" spans)?
  - how wide were the coalesced decode iterations (the "decode_step"
    width histogram)?

Validation mode for CI:

  trace_report.py --check [--require name1,name2,...] trace.json

exits non-zero unless the document is structurally sound (traceEvents
is a non-empty list; every X event carries pid/tid/ts/dur/name) and
every required span name appears at least once.

Usage:
  python3 tools/trace_report.py trace.json
  python3 tools/trace_report.py --check --require queued,prefill trace.json
"""

import argparse
import collections
import json
import sys


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("missing top-level traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents is not a list")
    return events


def check(events, required):
    """Structural validation; returns a list of problems."""
    problems = []
    if not events:
        problems.append("traceEvents is empty")
    names = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"event {i}: unexpected ph {ph!r}")
            continue
        if ph == "M":
            continue
        for key in ("pid", "tid", "ts", "dur", "name", "cat"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        if isinstance(ev.get("dur"), (int, float)) and ev["dur"] < 0:
            problems.append(f"event {i}: negative dur")
        names.add(ev.get("name"))
    for name in required:
        if name not in names:
            problems.append(f"required span {name!r} never recorded")
    return problems


def spans(events):
    return [ev for ev in events if ev.get("ph") == "X"]


def self_times(xs):
    """Per-(cat, name) total and self time in us.

    Self time subtracts enclosed same-thread spans: sorted by start
    (ties: longer first), a span's parent is the innermost open span
    on its thread, which loses the child's duration. Spans that merely
    OVERLAP a parent without nesting inside it (concurrent logical
    spans like the serve "request" lifecycles) are not subtracted —
    they aren't stack-shaped, and subtracting them would drive parent
    self time negative.
    """
    totals = collections.defaultdict(float)
    selfs = collections.defaultdict(float)
    counts = collections.defaultdict(int)
    by_tid = collections.defaultdict(list)
    for ev in xs:
        by_tid[(ev["pid"], ev["tid"])].append(ev)
    for tid_events in by_tid.values():
        tid_events.sort(key=lambda ev: (ev["ts"], -ev["dur"]))
        stack = []  # (end_ts, key) of open spans
        for ev in tid_events:
            key = (ev.get("cat", "?"), ev["name"])
            end = ev["ts"] + ev["dur"]
            totals[key] += ev["dur"]
            selfs[key] += ev["dur"]
            counts[key] += 1
            while stack and stack[-1][0] <= ev["ts"]:
                stack.pop()
            if stack and end <= stack[-1][0]:  # fully nested only
                selfs[stack[-1][1]] -= ev["dur"]
            stack.append((end, key))
    return totals, selfs, counts


def report(events):
    xs = spans(events)
    if not xs:
        print("no spans recorded")
        return

    totals, selfs, counts = self_times(xs)
    n_threads = len({(ev["pid"], ev["tid"]) for ev in xs})
    print(f"{len(xs)} spans across {n_threads} thread(s)\n")
    print(f"{'category':<8} {'span':<22} {'count':>7} "
          f"{'total_ms':>10} {'self_ms':>10}")
    for key in sorted(totals, key=lambda k: -selfs[k]):
        cat, name = key
        print(f"{cat:<8} {name:<22} {counts[key]:>7} "
              f"{totals[key] / 1e3:>10.3f} {selfs[key] / 1e3:>10.3f}")

    requests = [ev for ev in xs if ev["name"] == "request"]
    if requests:
        requests.sort(key=lambda ev: -ev["dur"])
        print("\nslowest requests (admission -> retirement):")
        for ev in requests[:10]:
            args = ev.get("args", {})
            print(f"  request {args.get('id', '?'):>4}: "
                  f"{ev['dur'] / 1e3:8.3f} ms, "
                  f"{args.get('tokens', '?')} tokens")

    widths = collections.Counter(
        ev.get("args", {}).get("width", 0)
        for ev in xs if ev["name"] == "decode_step")
    if widths:
        print("\ndecode-step width histogram (batch coalescing):")
        peak = max(widths.values())
        for width in sorted(widths):
            n = widths[width]
            bar = "#" * max(1, round(40 * n / peak))
            print(f"  width {width:>3}: {n:>6}  {bar}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace-event JSON path")
    ap.add_argument("--check", action="store_true",
                    help="validate structure instead of reporting")
    ap.add_argument("--require", default="",
                    help="comma-separated span names that must appear "
                         "(implies --check semantics for them)")
    args = ap.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {args.trace}: {e}", file=sys.stderr)
        return 1

    required = [n for n in args.require.split(",") if n]
    if args.check or required:
        problems = check(events, required)
        if problems:
            for p in problems[:20]:
                print(f"error: {args.trace}: {p}", file=sys.stderr)
            return 1
        n_spans = len(spans(events))
        print(f"{args.trace}: OK ({n_spans} spans"
              + (f", all of [{', '.join(required)}] present"
                 if required else "") + ")")
        if not args.check:
            report(events)
        return 0

    report(events)
    return 0


if __name__ == "__main__":
    sys.exit(main())
