/**
 * @file
 * Micro-benchmarks (google-benchmark): quantization kernels at each
 * granularity/format, GEMM throughput, statistics-collection cost (the
 * paper claims it is negligible, Sec. 3.1), ILP solve time for
 * paper-sized instances (paper: "usually takes a few seconds" with a
 * 30 s limit — exact solves here are far below both), and the DP-vs-
 * B&B ablation.
 */
#include <benchmark/benchmark.h>

#include "core/snip_optimizer.h"
#include "core/stats_collector.h"
#include "quant/quantizer.h"
#include "runtime/thread_pool.h"
#include "simd/dispatch.h"
#include "tensor/gemm.h"
#include "train/presets.h"

namespace snip {
namespace {

void
BM_QuantizeTensor(benchmark::State &state, QuantConfig cfg)
{
    Rng rng(1);
    Tensor t = Tensor::randn({256, 256}, rng);
    FakeQuantizer q(2);
    for (auto _ : state) {
        Tensor out = q.quantize(t, cfg);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * t.numel());
}

void
BM_Gemm(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(3);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmulNT(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}

void
BM_StatsCollection(benchmark::State &state)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(2);
    Batch batch = trainer.nextBatch();
    for (auto _ : state) {
        TrainingStats stats = collectTrainingStats(
            trainer.model(), &trainer.optimizer(), batch);
        benchmark::DoNotOptimize(stats.loss);
    }
}

void
BM_PlainStep(benchmark::State &state)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(trainer.trainStep());
}

/**
 * Serial-vs-parallel sweep: the same GEMM at a pinned global-pool
 * width. Arg 0 is the square matrix size, arg 1 the thread count
 * ("/threads:1" rows are the serial baseline; the runtime guarantees
 * all rows compute bit-identical results). CI smoke-runs this sweep so
 * kernel regressions show up as timing diffs in the job log.
 */
void
BM_GemmThreads(benchmark::State &state)
{
    const int64_t n = state.range(0);
    runtime::setGlobalThreadCount(static_cast<int>(state.range(1)));
    Rng rng(3);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmulNT(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
    runtime::setGlobalThreadCount(0);
}

/** Same sweep for the FP4 tile-wise fake-quantization kernel. */
void
BM_QuantizeThreads(benchmark::State &state)
{
    const int64_t n = state.range(0);
    runtime::setGlobalThreadCount(static_cast<int>(state.range(1)));
    Rng rng(1);
    Tensor t = Tensor::randn({n, n}, rng);
    FakeQuantizer q(2);
    QuantConfig cfg{fp4E2m1(), {Granularity::Tilewise, 128},
                    Rounding::Nearest};
    for (auto _ : state) {
        Tensor out = q.quantize(t, cfg);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * t.numel());
    runtime::setGlobalThreadCount(0);
}

/**
 * SIMD-backend sweep: the same single-threaded GEMM under each kernel
 * backend ("scalar" rows are the portable baseline; "avx2" rows skip
 * on hosts without AVX2+FMA). CI's bench-perf job runs this sweep with
 * JSON output and gates on regressions vs bench/baseline_kernels.json.
 */
void
BM_GemmBackend(benchmark::State &state, const char *backend)
{
    if (!simd::setBackendByName(backend)) {
        state.SkipWithError("backend unavailable on this host");
        return;
    }
    runtime::setGlobalThreadCount(1);
    const int64_t n = state.range(0);
    Rng rng(3);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmulNT(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
    runtime::setGlobalThreadCount(0);
    simd::setBackendByName("auto");
}

/** Same sweep for the FP4 tile-wise nearest-rounding quantizer. */
void
BM_QuantizeBackend(benchmark::State &state, const char *backend)
{
    if (!simd::setBackendByName(backend)) {
        state.SkipWithError("backend unavailable on this host");
        return;
    }
    runtime::setGlobalThreadCount(1);
    const int64_t n = state.range(0);
    Rng rng(1);
    Tensor t = Tensor::randn({n, n}, rng);
    FakeQuantizer q(2);
    QuantConfig cfg{fp4E2m1(), {Granularity::Tilewise, 128},
                    Rounding::Nearest};
    for (auto _ : state) {
        Tensor out = q.quantize(t, cfg);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * t.numel());
    runtime::setGlobalThreadCount(0);
    simd::setBackendByName("auto");
}

/** Paper-sized ILP: 80 blocks x 7 layers, 4 options. */
IlpProblem
paperIlp(int n_layers, double target)
{
    Rng rng(11);
    IlpProblem p;
    p.target = target;
    for (int i = 0; i < n_layers; ++i) {
        std::vector<double> q, e;
        double base = rng.nextDouble() * 1e-3;
        for (int j = 0; j < 4; ++j) {
            q.push_back(base * j * (0.5 + rng.nextDouble()));
            e.push_back(static_cast<double>(j) / 3.0 / n_layers);
        }
        p.quality.push_back(q);
        p.efficiency.push_back(e);
    }
    return p;
}

void
BM_IlpBranchAndBound(benchmark::State &state)
{
    IlpProblem p = paperIlp(static_cast<int>(state.range(0)), 0.5);
    for (auto _ : state) {
        IlpSolution s = solveBranchAndBound(p);
        benchmark::DoNotOptimize(s.objective);
    }
}

void
BM_IlpDp(benchmark::State &state)
{
    IlpProblem p = paperIlp(static_cast<int>(state.range(0)), 0.5);
    for (auto _ : state) {
        IlpSolution s = solveDp(p);
        benchmark::DoNotOptimize(s.objective);
    }
}

BENCHMARK_CAPTURE(BM_QuantizeTensor, fp4_tile128,
                  QuantConfig{fp4E2m1(),
                              {Granularity::Tilewise, 128},
                              Rounding::Nearest});
BENCHMARK_CAPTURE(BM_QuantizeTensor, fp4_tile128_stochastic,
                  QuantConfig{fp4E2m1(),
                              {Granularity::Tilewise, 128},
                              Rounding::Stochastic});
BENCHMARK_CAPTURE(BM_QuantizeTensor, fp8_block128,
                  QuantConfig{fp8E4m3(),
                              {Granularity::Blockwise, 128},
                              Rounding::Nearest});
BENCHMARK_CAPTURE(BM_QuantizeTensor, fp8_tensorwise,
                  QuantConfig{fp8E4m3(),
                              {Granularity::Tensorwise, 0},
                              Rounding::Nearest});
BENCHMARK_CAPTURE(BM_QuantizeTensor, bf16_fastpath,
                  QuantConfig{bf16(),
                              {Granularity::Tensorwise, 0},
                              Rounding::Nearest});
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK_CAPTURE(BM_GemmBackend, scalar, "scalar")->Arg(256)->Arg(512);
BENCHMARK_CAPTURE(BM_GemmBackend, avx2, "avx2")->Arg(256)->Arg(512);
BENCHMARK_CAPTURE(BM_QuantizeBackend, scalar, "scalar")->Arg(512);
BENCHMARK_CAPTURE(BM_QuantizeBackend, avx2, "avx2")->Arg(512);
BENCHMARK(BM_GemmThreads)
    ->ArgNames({"n", "threads"})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({512, 8})
    ->UseRealTime();
BENCHMARK(BM_QuantizeThreads)
    ->ArgNames({"n", "threads"})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({512, 8})
    ->UseRealTime();
BENCHMARK(BM_StatsCollection);
BENCHMARK(BM_PlainStep);
BENCHMARK(BM_IlpBranchAndBound)->Arg(154)->Arg(560);
BENCHMARK(BM_IlpDp)->Arg(154)->Arg(560);

} // namespace
} // namespace snip

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // Land the dispatch decision in the JSON context so regression
    // reports say which backend produced the numbers.
    benchmark::AddCustomContext("snip_simd_backend",
                                snip::simd::activeBackendName());
    benchmark::AddCustomContext(
        "snip_threads",
        std::to_string(snip::runtime::defaultThreadCount()));
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
