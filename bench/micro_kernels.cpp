/**
 * @file
 * Micro-benchmarks (google-benchmark): quantization kernels at each
 * granularity/format, GEMM throughput, statistics-collection cost (the
 * paper claims it is negligible, Sec. 3.1), ILP solve time for
 * paper-sized instances (paper: "usually takes a few seconds" with a
 * 30 s limit — exact solves here are far below both), and the DP-vs-
 * B&B ablation.
 */
#include <benchmark/benchmark.h>

#include "core/snip_optimizer.h"
#include "core/stats_collector.h"
#include "nn/attention.h"
#include "quant/quantizer.h"
#include "runtime/thread_pool.h"
#include "simd/dispatch.h"
#include "tensor/gemm.h"
#include "train/presets.h"

namespace snip {
namespace {

/** Attach FLOP accounting to a GEMM benchmark: items/s stays the raw
 *  FLOP rate (the regression gate's cost metric) and a humanized
 *  GFLOP/s counter lands in the console/JSON output. */
void
setGemmThroughput(benchmark::State &state, int64_t flops_per_iter)
{
    state.SetItemsProcessed(state.iterations() * flops_per_iter);
    state.counters["GFLOPS"] = benchmark::Counter(
        static_cast<double>(flops_per_iter) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

void
BM_QuantizeTensor(benchmark::State &state, QuantConfig cfg)
{
    Rng rng(1);
    Tensor t = Tensor::randn({256, 256}, rng);
    FakeQuantizer q(2);
    for (auto _ : state) {
        Tensor out = q.quantize(t, cfg);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * t.numel());
}

void
BM_Gemm(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(3);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmulNT(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    setGemmThroughput(state, 2 * n * n * n);
}

/**
 * Packed-vs-unpacked A/B at L2-outgrowing shapes: the same
 * single-thread NT GEMM under SNIP_GEMM_PACK=on and =off on the
 * dispatched backend. The large shapes (512/1024/2048) are the ones
 * whose operand panels no longer fit L2, where the packed pipeline's
 * contiguous strip-major traffic and 6x16 register tile pay off; the
 * acceptance target is >= 1.5x at n=2048 on AVX2.
 */
void
BM_GemmPack(benchmark::State &state, const char *mode)
{
    if (!setGemmPackModeByName(mode)) {
        state.SkipWithError("bad pack mode");
        return;
    }
    runtime::setGlobalThreadCount(1);
    const int64_t n = state.range(0);
    Rng rng(3);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmulNT(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    setGemmThroughput(state, 2 * n * n * n);
    runtime::setGlobalThreadCount(0);
    setGemmPackModeByName("auto");
}

/**
 * Fused quantize-on-pack vs materialize-then-multiply: the forward
 * GEMM with FP8 operand quantization either fused into the operand
 * packs (no quantized copy exists) or via FakeQuantizer tensor copies
 * feeding the same packed GEMM.
 */
void
BM_QuantGemmNT(benchmark::State &state, bool fused)
{
    setGemmPackModeByName("on");
    runtime::setGlobalThreadCount(1);
    const int64_t n = state.range(0);
    Rng rng(5);
    Tensor x = Tensor::randn({n, n}, rng);
    Tensor w = Tensor::randn({n, n}, rng);
    const QuantConfig xq = rolePolicy(Precision::FP8,
                                      TensorRole::Activation);
    const QuantConfig wq = rolePolicy(Precision::FP8,
                                      TensorRole::Weight);
    FakeQuantizer q(2);
    for (auto _ : state) {
        if (fused) {
            Tensor y = quantMatmulNT(x, &xq, w, &wq, nullptr);
            benchmark::DoNotOptimize(y.data());
        } else {
            Tensor xm = q.quantize(x, xq);
            Tensor wm = q.quantize(w, wq);
            Tensor y = matmulNT(xm, wm);
            benchmark::DoNotOptimize(y.data());
        }
    }
    setGemmThroughput(state, 2 * n * n * n);
    runtime::setGlobalThreadCount(0);
    setGemmPackModeByName("auto");
}

void
BM_StatsCollection(benchmark::State &state)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(2);
    Batch batch = trainer.nextBatch();
    for (auto _ : state) {
        TrainingStats stats = collectTrainingStats(
            trainer.model(), &trainer.optimizer(), batch);
        benchmark::DoNotOptimize(stats.loss);
    }
}

void
BM_PlainStep(benchmark::State &state)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(trainer.trainStep());
}

/**
 * fig8-style training step, packed vs unpacked (excluded from the CI
 * regression gate — end-to-end steps are too noisy for a 25% bound).
 * The model is sized so its GEMMs clear the Auto pack threshold, and
 * layers run FP8 so the step exercises fused quantize-on-pack and the
 * per-step weight-pack cache. The packed side runs the shipped
 * SNIP_GEMM_PACK=auto policy (large GEMMs pack, the tiny per-head
 * attention GEMMs stay on the legacy path where packing cannot pay
 * off); "off" pins everything to the legacy path.
 */
void
BM_TrainStepPack(benchmark::State &state, const char *mode)
{
    if (!setGemmPackModeByName(mode)) {
        state.SkipWithError("bad pack mode");
        return;
    }
    ModelConfig model = tinyTestModel();
    model.d_model = 128;
    model.n_heads = 4;
    model.n_kv_heads = 4;
    model.ffn_hidden = 512;
    model.n_blocks = 2;
    TrainerConfig cfg = trainerPreset(model);
    cfg.batch_size = 8;
    Trainer trainer(cfg);
    trainer.model().setScheme(PrecisionScheme::uniform(
        static_cast<size_t>(trainer.model().registry().numLinear()),
        Precision::FP8));
    trainer.train(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(trainer.trainStep());
    setGemmPackModeByName("auto");
}

/**
 * Serial-vs-parallel sweep: the same GEMM at a pinned global-pool
 * width. Arg 0 is the square matrix size, arg 1 the thread count
 * ("/threads:1" rows are the serial baseline; the runtime guarantees
 * all rows compute bit-identical results). CI smoke-runs this sweep so
 * kernel regressions show up as timing diffs in the job log.
 */
void
BM_GemmThreads(benchmark::State &state)
{
    const int64_t n = state.range(0);
    runtime::setGlobalThreadCount(static_cast<int>(state.range(1)));
    Rng rng(3);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmulNT(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    setGemmThroughput(state, 2 * n * n * n);
    runtime::setGlobalThreadCount(0);
}

/** Same sweep for the FP4 tile-wise fake-quantization kernel. */
void
BM_QuantizeThreads(benchmark::State &state)
{
    const int64_t n = state.range(0);
    runtime::setGlobalThreadCount(static_cast<int>(state.range(1)));
    Rng rng(1);
    Tensor t = Tensor::randn({n, n}, rng);
    FakeQuantizer q(2);
    QuantConfig cfg{fp4E2m1(), {Granularity::Tilewise, 128},
                    Rounding::Nearest};
    for (auto _ : state) {
        Tensor out = q.quantize(t, cfg);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * t.numel());
    runtime::setGlobalThreadCount(0);
}

/**
 * SIMD-backend sweep: the same single-threaded GEMM under each kernel
 * backend ("scalar" rows are the portable baseline; "avx2" rows skip
 * on hosts without AVX2+FMA). CI's bench-perf job runs this sweep with
 * JSON output and gates on regressions vs bench/baseline_kernels.json.
 */
void
BM_GemmBackend(benchmark::State &state, const char *backend)
{
    if (!simd::setBackendByName(backend)) {
        state.SkipWithError("backend unavailable on this host");
        return;
    }
    runtime::setGlobalThreadCount(1);
    const int64_t n = state.range(0);
    Rng rng(3);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        Tensor c = matmulNT(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    setGemmThroughput(state, 2 * n * n * n);
    runtime::setGlobalThreadCount(0);
    simd::setBackendByName("auto");
}

/** Same sweep for the FP4 tile-wise nearest-rounding quantizer. */
void
BM_QuantizeBackend(benchmark::State &state, const char *backend)
{
    if (!simd::setBackendByName(backend)) {
        state.SkipWithError("backend unavailable on this host");
        return;
    }
    runtime::setGlobalThreadCount(1);
    const int64_t n = state.range(0);
    Rng rng(1);
    Tensor t = Tensor::randn({n, n}, rng);
    FakeQuantizer q(2);
    QuantConfig cfg{fp4E2m1(), {Granularity::Tilewise, 128},
                    Rounding::Nearest};
    for (auto _ : state) {
        Tensor out = q.quantize(t, cfg);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * t.numel());
    runtime::setGlobalThreadCount(0);
    simd::setBackendByName("auto");
}

// ---------------------------------------------------------- attention

/** Bench shapes for the attention core. Arg 0 selects: 0 = small
 *  (micro-model-like, per-head GEMMs far below any pack threshold),
 *  1 = fig8-scale (training-step-sized (b,h) space with GQA, where
 *  the batched runtime amortizes packing across 64 heads). */
AttnShape
attnBenchShape(int64_t id)
{
    if (id == 0)
        return AttnShape{2, 16, 4, 4, 16};
    return AttnShape{8, 64, 8, 4, 32};
}

/** Forward GEMM FLOPs of the attention core (QK^T + PV); softmax is
 *  excluded so par/serial rows share one denominator. */
int64_t
attnFwdFlops(const AttnShape &s)
{
    return 4 * s.batch * s.n_heads * s.seq * s.seq * s.head_dim;
}

/**
 * The attention core (scores + fused softmax + context) under
 * SNIP_ATTN=par (batched runtime) vs =serial (historical per-head
 * loop), single-thread pinned so the rows isolate the batched-GEMM +
 * fused-kernel win; BM_AttnThreads sweeps the thread count.
 */
void
BM_AttnFwd(benchmark::State &state, const char *mode)
{
    if (!setAttnModeByName(mode)) {
        state.SkipWithError("bad attention mode");
        return;
    }
    runtime::setGlobalThreadCount(1);
    const AttnShape s = attnBenchShape(state.range(0));
    Rng rng(21);
    Tensor q = Tensor::randn({s.batch * s.seq, s.n_heads * s.head_dim},
                             rng);
    Tensor k = Tensor::randn(
        {s.batch * s.seq, s.n_kv_heads * s.head_dim}, rng);
    Tensor v = Tensor::randn(
        {s.batch * s.seq, s.n_kv_heads * s.head_dim}, rng);
    Tensor probs(s.batch * s.n_heads * s.seq, s.seq);
    Tensor ctx(s.batch * s.seq, s.n_heads * s.head_dim);
    for (auto _ : state) {
        attentionForwardCore(s, q.data(), k.data(), v.data(),
                             probs.data(), ctx.data());
        benchmark::DoNotOptimize(ctx.data());
    }
    setGemmThroughput(state, attnFwdFlops(s));
    runtime::setGlobalThreadCount(0);
    setAttnModeByName("par");
}

/** Backward half of the attention core (4 GEMMs + fused softmax
 *  backward); dq/dk/dv zeroing is timed — it is part of a real step. */
void
BM_AttnBwd(benchmark::State &state, const char *mode)
{
    if (!setAttnModeByName(mode)) {
        state.SkipWithError("bad attention mode");
        return;
    }
    runtime::setGlobalThreadCount(1);
    const AttnShape s = attnBenchShape(state.range(0));
    Rng rng(22);
    Tensor q = Tensor::randn({s.batch * s.seq, s.n_heads * s.head_dim},
                             rng);
    Tensor k = Tensor::randn(
        {s.batch * s.seq, s.n_kv_heads * s.head_dim}, rng);
    Tensor v = Tensor::randn(
        {s.batch * s.seq, s.n_kv_heads * s.head_dim}, rng);
    Tensor dctx = Tensor::randn(
        {s.batch * s.seq, s.n_heads * s.head_dim}, rng);
    Tensor probs(s.batch * s.n_heads * s.seq, s.seq);
    Tensor ctx(s.batch * s.seq, s.n_heads * s.head_dim);
    attentionForwardCore(s, q.data(), k.data(), v.data(), probs.data(),
                         ctx.data());
    Tensor dq(s.batch * s.seq, s.n_heads * s.head_dim);
    Tensor dk(s.batch * s.seq, s.n_kv_heads * s.head_dim);
    Tensor dv(s.batch * s.seq, s.n_kv_heads * s.head_dim);
    for (auto _ : state) {
        dq.zero();
        dk.zero();
        dv.zero();
        attentionBackwardCore(s, q.data(), k.data(), v.data(),
                              probs.data(), dctx.data(), dq.data(),
                              dk.data(), dv.data());
        benchmark::DoNotOptimize(dq.data());
    }
    setGemmThroughput(state, 2 * attnFwdFlops(s));
    runtime::setGlobalThreadCount(0);
    setAttnModeByName("par");
}

/** Thread sweep of the batched forward core at the fig8-scale shape
 *  (serial rows would be flat by construction). */
void
BM_AttnThreads(benchmark::State &state)
{
    setAttnModeByName("par");
    runtime::setGlobalThreadCount(static_cast<int>(state.range(0)));
    const AttnShape s = attnBenchShape(1);
    Rng rng(23);
    Tensor q = Tensor::randn({s.batch * s.seq, s.n_heads * s.head_dim},
                             rng);
    Tensor k = Tensor::randn(
        {s.batch * s.seq, s.n_kv_heads * s.head_dim}, rng);
    Tensor v = Tensor::randn(
        {s.batch * s.seq, s.n_kv_heads * s.head_dim}, rng);
    Tensor probs(s.batch * s.n_heads * s.seq, s.seq);
    Tensor ctx(s.batch * s.seq, s.n_heads * s.head_dim);
    for (auto _ : state) {
        attentionForwardCore(s, q.data(), k.data(), v.data(),
                             probs.data(), ctx.data());
        benchmark::DoNotOptimize(ctx.data());
    }
    setGemmThroughput(state, attnFwdFlops(s));
    runtime::setGlobalThreadCount(0);
}

/** Paper-sized ILP: 80 blocks x 7 layers, 4 options. */
IlpProblem
paperIlp(int n_layers, double target)
{
    Rng rng(11);
    IlpProblem p;
    p.target = target;
    for (int i = 0; i < n_layers; ++i) {
        std::vector<double> q, e;
        double base = rng.nextDouble() * 1e-3;
        for (int j = 0; j < 4; ++j) {
            q.push_back(base * j * (0.5 + rng.nextDouble()));
            e.push_back(static_cast<double>(j) / 3.0 / n_layers);
        }
        p.quality.push_back(q);
        p.efficiency.push_back(e);
    }
    return p;
}

void
BM_IlpBranchAndBound(benchmark::State &state)
{
    IlpProblem p = paperIlp(static_cast<int>(state.range(0)), 0.5);
    for (auto _ : state) {
        IlpSolution s = solveBranchAndBound(p);
        benchmark::DoNotOptimize(s.objective);
    }
}

void
BM_IlpDp(benchmark::State &state)
{
    IlpProblem p = paperIlp(static_cast<int>(state.range(0)), 0.5);
    for (auto _ : state) {
        IlpSolution s = solveDp(p);
        benchmark::DoNotOptimize(s.objective);
    }
}

BENCHMARK_CAPTURE(BM_QuantizeTensor, fp4_tile128,
                  QuantConfig{fp4E2m1(),
                              {Granularity::Tilewise, 128},
                              Rounding::Nearest});
BENCHMARK_CAPTURE(BM_QuantizeTensor, fp4_tile128_stochastic,
                  QuantConfig{fp4E2m1(),
                              {Granularity::Tilewise, 128},
                              Rounding::Stochastic});
BENCHMARK_CAPTURE(BM_QuantizeTensor, fp8_block128,
                  QuantConfig{fp8E4m3(),
                              {Granularity::Blockwise, 128},
                              Rounding::Nearest});
BENCHMARK_CAPTURE(BM_QuantizeTensor, fp8_tensorwise,
                  QuantConfig{fp8E4m3(),
                              {Granularity::Tensorwise, 0},
                              Rounding::Nearest});
BENCHMARK_CAPTURE(BM_QuantizeTensor, bf16_fastpath,
                  QuantConfig{bf16(),
                              {Granularity::Tensorwise, 0},
                              Rounding::Nearest});
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK_CAPTURE(BM_GemmPack, on, "on")
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048);
BENCHMARK_CAPTURE(BM_GemmPack, off, "off")
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048);
BENCHMARK_CAPTURE(BM_QuantGemmNT, fused, true)->Arg(1024);
BENCHMARK_CAPTURE(BM_QuantGemmNT, materialized, false)->Arg(1024);
BENCHMARK_CAPTURE(BM_GemmBackend, scalar, "scalar")->Arg(256)->Arg(512);
BENCHMARK_CAPTURE(BM_GemmBackend, avx2, "avx2")->Arg(256)->Arg(512);
BENCHMARK_CAPTURE(BM_QuantizeBackend, scalar, "scalar")->Arg(512);
BENCHMARK_CAPTURE(BM_QuantizeBackend, avx2, "avx2")->Arg(512);
BENCHMARK(BM_GemmThreads)
    ->ArgNames({"n", "threads"})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({512, 8})
    ->UseRealTime();
BENCHMARK(BM_QuantizeThreads)
    ->ArgNames({"n", "threads"})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({512, 8})
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_AttnFwd, par, "par")
    ->ArgName("shape")
    ->Arg(0)
    ->Arg(1);
BENCHMARK_CAPTURE(BM_AttnFwd, serial, "serial")
    ->ArgName("shape")
    ->Arg(0)
    ->Arg(1);
BENCHMARK_CAPTURE(BM_AttnBwd, par, "par")
    ->ArgName("shape")
    ->Arg(0)
    ->Arg(1);
BENCHMARK_CAPTURE(BM_AttnBwd, serial, "serial")
    ->ArgName("shape")
    ->Arg(0)
    ->Arg(1);
BENCHMARK(BM_AttnThreads)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();
BENCHMARK(BM_StatsCollection);
BENCHMARK(BM_PlainStep);
BENCHMARK_CAPTURE(BM_TrainStepPack, auto_pack, "auto");
BENCHMARK_CAPTURE(BM_TrainStepPack, off, "off");
BENCHMARK(BM_IlpBranchAndBound)->Arg(154)->Arg(560);
BENCHMARK(BM_IlpDp)->Arg(154)->Arg(560);

} // namespace
} // namespace snip

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // Land the dispatch decision in the JSON context so regression
    // reports say which backend produced the numbers.
    benchmark::AddCustomContext("snip_simd_backend",
                                snip::simd::activeBackendName());
    benchmark::AddCustomContext(
        "snip_threads",
        std::to_string(snip::runtime::defaultThreadCount()));
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
