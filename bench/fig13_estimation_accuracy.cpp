/**
 * @file
 * Figure 13: SNIP's estimated per-layer loss impact (Sec. 4.2) vs the
 * measured ground truth: quantize one layer at a time, run a real
 * forward pass, and record the loss change vs the BF16 baseline.
 *
 * Expected shape (paper): the estimate tracks the measured impact in
 * both relative magnitude and trend across layers. (Per-block means
 * are reported; a rank-correlation summary quantifies the agreement.)
 */
#include <algorithm>
#include <cmath>

#include "bench_common.h"

using namespace snip;
using namespace snip::bench;

namespace {

/** Spearman rank correlation of two equal-length series. */
double
spearman(const std::vector<double> &a, const std::vector<double> &b)
{
    auto ranks = [](const std::vector<double> &v) {
        std::vector<size_t> idx(v.size());
        for (size_t i = 0; i < v.size(); ++i)
            idx[i] = i;
        std::sort(idx.begin(), idx.end(),
                  [&](size_t x, size_t y) { return v[x] < v[y]; });
        std::vector<double> r(v.size());
        for (size_t i = 0; i < idx.size(); ++i)
            r[idx[i]] = static_cast<double>(i);
        return r;
    };
    auto ra = ranks(a), rb = ranks(b);
    const double n = static_cast<double>(a.size());
    double d2 = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
    return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const int64_t warmup = args.getInt("warmup", 400);
    const Precision prec =
        args.get("precision", "fp4") == "fp8" ? Precision::FP8
                                              : Precision::FP4;

    banner("Figure 13", "estimated vs ground-truth per-layer loss "
                        "impact");
    Setup setup = makeSetup(tinyllamaSim(), warmup, /*eval_items=*/5);
    Trainer &trainer = *setup.trainer;
    LlamaModel &model = trainer.model();
    FlopsModel flops(model.registry());
    const int n = model.registry().numLinear();

    Batch batch = BatchIterator(trainer.corpus(),
                                trainer.config().batch_size, 0x57A7)
                      .next();

    // Estimate via the Sec. 4.2 expression.
    TrainingStats stats =
        collectTrainingStats(model, &trainer.optimizer(), batch);
    DivergenceAnalyzer analyzer(stats, nullptr, nullptr, flops);
    std::vector<double> est(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        est[static_cast<size_t>(i)] =
            analyzer.estimateLossImpact(i, prec);

    // Ground truth: quantize each layer alone, forward, measure |dL|/L.
    const size_t nl = static_cast<size_t>(n);
    const PrecisionScheme bf16 =
        PrecisionScheme::uniform(nl, Precision::BF16);
    model.setScheme(bf16);
    const double base_loss =
        model.forwardLoss(batch.tokens, batch.targets, batch.batch,
                          batch.seq)
            .loss;
    std::vector<double> truth(nl);
    for (int i = 0; i < n; ++i) {
        PrecisionScheme s = bf16;
        // Forward-pass impact only: quantize this layer's Fwd GEMM.
        s.layers[static_cast<size_t>(i)].gemm[0] = prec;
        model.setScheme(s);
        const double loss =
            model.forwardLoss(batch.tokens, batch.targets, batch.batch,
                              batch.seq)
                .loss;
        truth[static_cast<size_t>(i)] =
            std::fabs(loss - base_loss) / std::fabs(base_loss);
    }
    model.setScheme(bf16);

    TablePrinter table({"block", "estimate(mean%)", "truth(mean%)"});
    const int n_blocks = static_cast<int>(model.config().n_blocks);
    for (int b = 0; b < n_blocks; ++b) {
        double e = 0, t = 0;
        for (int r = 0; r < kRolesPerBlock; ++r) {
            e += est[static_cast<size_t>(b * kRolesPerBlock + r)];
            t += truth[static_cast<size_t>(b * kRolesPerBlock + r)];
        }
        table.newRow();
        table.cell(static_cast<int64_t>(b));
        table.cell(100.0 * e / kRolesPerBlock, 4);
        table.cell(100.0 * t / kRolesPerBlock, 4);
    }
    table.print();
    std::printf("\nper-layer Spearman rank correlation "
                "(estimate vs truth): %.3f  (paper: close alignment)\n",
                spearman(est, truth));
    writeFile("fig13_estimation_accuracy.csv", table.toCsv());
    return 0;
}
