/**
 * @file
 * Table 1: per-benchmark accuracy of every quantization scheme at fixed
 * FP4-FLOP budgets (25/50/75%, plus SNIP at 80/85% and uniform FP4),
 * for the TinyLlama-class model at its mid-training checkpoint.
 *
 * Expected shape (paper): SNIP tracks the BF16 row at every budget;
 * min-abs/min-rel hold up at 25% but collapse at >= 50%; random and
 * E-layer-type collapse earlier; uniform FP4 is degenerate.
 */
#include "bench_common.h"

using namespace snip;
using namespace snip::bench;

namespace {

void
emitRow(TablePrinter &table, const std::string &label,
        const RunOutcome &out)
{
    table.newRow();
    table.cell(label);
    for (const auto &t : out.eval.tasks)
        table.cell(t.accuracy, 1);
    table.cell(out.eval.average, 2);
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const bool full = args.has("full");
    const int64_t warmup = args.getInt("warmup", 400);
    const int64_t steps = args.getInt("steps", full ? 100 : 30);
    const int eval_items = static_cast<int>(
        args.getInt("eval-items", full ? 30 : 15));

    banner("Table 1", "per-benchmark accuracy across quantization "
                      "schemes (tinyllama_sim @ mid checkpoint)");
    Setup setup = makeSetup(tinyllamaSim(), warmup, eval_items);

    std::vector<std::string> headers = {"scheme"};
    for (const auto &task : setup.suite)
        headers.push_back(task.name + "(" + task.analog_of + ")");
    headers.push_back("Average");
    TablePrinter table(headers);

    // Reference rows.
    for (const char *ref : {"BF16", "FP8"}) {
        RunOutcome out = runScheme(
            setup, makeMethodScheme(*setup.trainer, ref, 0.0), steps);
        emitRow(table, strformat("0%%/%s", ref), out);
    }

    const std::vector<double> budgets = {0.25, 0.50, 0.75};
    std::vector<std::string> methods = {"SNIP", "min-abs-err",
                                        "min-rel-err", "random0",
                                        "random1", "random2",
                                        "E-layer-id", "E-layer-type"};
    if (!full) {
        methods = {"SNIP", "min-abs-err", "min-rel-err", "random0",
                   "E-layer-type"};
    }
    for (double budget : budgets) {
        for (const auto &method : methods) {
            setup.trainer->restore(setup.checkpoint);
            PrecisionScheme scheme =
                makeMethodScheme(*setup.trainer, method, budget);
            RunOutcome out = runScheme(setup, scheme, steps);
            emitRow(table,
                    strformat("%d%%/%s",
                              static_cast<int>(budget * 100),
                              method.c_str()),
                    out);
        }
    }

    // SNIP's high-budget rows and the FP4 endpoint.
    for (double budget : {0.80, 0.85}) {
        setup.trainer->restore(setup.checkpoint);
        PrecisionScheme scheme =
            makeMethodScheme(*setup.trainer, "SNIP", budget);
        RunOutcome out = runScheme(setup, scheme, steps);
        emitRow(table,
                strformat("%d%%/SNIP", static_cast<int>(budget * 100)),
                out);
    }
    emitRow(table, "100%/FP4",
            runScheme(setup,
                      makeMethodScheme(*setup.trainer, "FP4", 0.0),
                      steps));

    table.print();
    writeFile("table1_benchmark_accuracy.csv", table.toCsv());
    std::printf("\n(rows written to table1_benchmark_accuracy.csv)\n");
    return 0;
}
