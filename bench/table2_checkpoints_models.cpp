/**
 * @file
 * Table 2: average accuracy across training checkpoints and model
 * sizes. TinyLlama-class at early/mid/late checkpoints under a 75%
 * budget; 3B- and 7B-class models under 50% (the paper notes OpenLlama
 * is more precision-sensitive).
 *
 * Expected shape (paper): SNIP within noise of BF16 in every column;
 * min-abs/min-rel fail on at least the mid-1B column; random seeds are
 * erratic across columns.
 */
#include "bench_common.h"

using namespace snip;
using namespace snip::bench;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const bool full = args.has("full");
    const int64_t steps = args.getInt("steps", full ? 60 : 20);
    const int eval_items = static_cast<int>(
        args.getInt("eval-items", full ? 25 : 12));

    banner("Table 2", "accuracy across checkpoints and model sizes");

    struct Column
    {
        ModelConfig model;
        int64_t ckpt;
        double budget;
    };
    std::vector<Column> cols = {
        {tinyllamaSim(), 100, 0.75},
        {tinyllamaSim(), 400, 0.75},
        {tinyllamaSim(), 800, 0.75},
        {openllama3bSim(), 300, 0.50},
        {openllama7bSim(), 300, 0.50},
    };
    if (full) {
        cols.push_back({openllama3bSim(), 600, 0.50});
        cols.push_back({openllama7bSim(), 600, 0.50});
    }

    std::vector<std::string> methods = {
        "BF16",    "SNIP",    "min-abs-err", "min-rel-err",
        "random0", "random1", "random2"};
    if (!full)
        methods = {"BF16", "SNIP", "min-abs-err", "min-rel-err",
                   "random0"};

    std::vector<std::string> headers = {"scheme"};
    for (const auto &c : cols) {
        headers.push_back(strformat("%s@%lld(%d%%)",
                                    c.model.name.c_str(),
                                    static_cast<long long>(c.ckpt),
                                    static_cast<int>(c.budget * 100)));
    }
    TablePrinter table(headers);
    std::vector<std::vector<double>> grid(
        methods.size(), std::vector<double>(cols.size(), 0.0));

    for (size_t ci = 0; ci < cols.size(); ++ci) {
        const Column &col = cols[ci];
        Setup setup = makeSetup(col.model, col.ckpt, eval_items);
        for (size_t mi = 0; mi < methods.size(); ++mi) {
            setup.trainer->restore(setup.checkpoint);
            PrecisionScheme scheme = makeMethodScheme(
                *setup.trainer, methods[mi], col.budget);
            RunOutcome out = runScheme(setup, scheme, steps);
            grid[mi][ci] = out.eval.average;
            std::printf(".");
            std::fflush(stdout);
        }
    }
    std::printf("\n");

    for (size_t mi = 0; mi < methods.size(); ++mi) {
        table.newRow();
        table.cell(methods[mi]);
        for (size_t ci = 0; ci < cols.size(); ++ci)
            table.cell(grid[mi][ci], 2);
    }
    table.print();
    writeFile("table2_checkpoints_models.csv", table.toCsv());
    std::printf("\n(rows written to table2_checkpoints_models.csv)\n");
    return 0;
}
