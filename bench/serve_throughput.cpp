/**
 * @file
 * Serving throughput/latency bench: drives the continuous-batching
 * engine over a synthetic open-loop request stream in both KV-cache
 * storage modes and reports tokens/s plus p50/p99 TTFT and
 * inter-token latency.
 *
 * With --json=PATH the results are additionally written as
 * google-benchmark-shaped rows (items_per_second for the throughput
 * rows, real_time ns for the latency rows) so CI merges them into the
 * kernel sweep and gates them with tools/check_bench.py like any
 * other benchmark.
 *
 * With --trace[=PATH] span tracing is enabled for the measured runs
 * and a Chrome trace-event JSON (Perfetto-loadable, summarizable with
 * tools/trace_report.py) is written at exit. Traced bench rows get a
 * "/traced" name suffix so they never gate against untraced baselines.
 *
 * Usage:
 *   serve_throughput [--requests=64] [--concurrency=8] [--seed=7]
 *                    [--threads=N] [--json=PATH] [--trace[=PATH]]
 */
#include <cstdio>
#include <string>
#include <vector>

#include "nn/model.h"
#include "runtime/env_config.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"
#include "telemetry/trace.h"
#include "train/presets.h"
#include "util/string_util.h"

namespace snip {
namespace {

struct ModeResult
{
    const char *mode;
    serve::ServeStats stats;
};

ModelConfig
benchModel()
{
    ModelConfig m = tinyTestModel();
    m.max_seq = 256;
    return m;
}

ModeResult
runMode(LlamaModel &model, serve::KvCacheMode mode, int64_t requests,
        int64_t concurrency, uint64_t seed)
{
    serve::SyntheticStreamConfig sc;
    sc.n_requests = requests;
    sc.seed = seed;
    sc.vocab = model.config().vocab_size;
    sc.min_prompt = 16;
    sc.max_prompt = 96;
    sc.min_new = 16;
    sc.max_new = 64;
    sc.arrival_rate = 0.0; // closed burst: engine stays saturated

    serve::EngineConfig ec;
    ec.max_concurrency = concurrency;
    ec.kv_mode = mode;
    serve::Engine engine(model, ec);

    auto queue = serve::RequestQueue::synthetic(sc);
    engine.run(queue);
    return {serve::kvCacheModeName(mode), engine.stats()};
}

double
prefillTokensPerSecond(const serve::ServeStats &s)
{
    if (s.prefill_s <= 0.0)
        return 0.0;
    return static_cast<double>(s.prefill_tokens) / s.prefill_s;
}

void
printMode(const ModeResult &r)
{
    const serve::ServeStats &s = r.stats;
    std::printf("%-5s %9.0f tok/s  prefill %7.0f tok/s  "
                "ttft p50 %7.3f ms p99 %7.3f ms  "
                "itl p50 %7.3f ms p99 %7.3f ms  steps %lld\n",
                r.mode, s.tokensPerSecond(),
                prefillTokensPerSecond(s), s.p50_ttft_s * 1e3,
                s.p99_ttft_s * 1e3, s.p50_itl_s * 1e3,
                s.p99_itl_s * 1e3,
                static_cast<long long>(s.decode_steps));
}

/** One google-benchmark-shaped row. */
std::string
jsonRow(const std::string &name, double items_per_second,
        double real_time_ns)
{
    std::string row = "    {\n";
    row += strformat("      \"name\": \"%s\",\n", name.c_str());
    row += strformat("      \"run_name\": \"%s\",\n", name.c_str());
    row += "      \"run_type\": \"iteration\",\n";
    row += "      \"repetitions\": 1,\n";
    row += "      \"repetition_index\": 0,\n";
    row += "      \"threads\": 1,\n";
    row += "      \"iterations\": 1,\n";
    row += strformat("      \"real_time\": %.6f,\n", real_time_ns);
    row += strformat("      \"cpu_time\": %.6f,\n", real_time_ns);
    row += "      \"time_unit\": \"ns\"";
    if (items_per_second > 0.0)
        row += strformat(",\n      \"items_per_second\": %.6f",
                         items_per_second);
    row += "\n    }";
    return row;
}

bool
writeJson(const std::string &path, const std::vector<ModeResult> &runs,
          bool traced)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    // Traced runs carry recording overhead; the suffix keeps their
    // rows from ever gating against untraced baselines (CI excludes
    // "/traced" like the thread sweeps).
    const char *suffix = traced ? "/traced" : "";
    std::vector<std::string> rows;
    for (const ModeResult &r : runs) {
        const serve::ServeStats &s = r.stats;
        rows.push_back(
            jsonRow(strformat("BM_ServeDecode/%s%s", r.mode, suffix),
                    s.tokensPerSecond(), s.elapsed_s * 1e9));
        rows.push_back(jsonRow(strformat("BM_ServePrefillTokens/%s%s",
                                         r.mode, suffix),
                               prefillTokensPerSecond(s),
                               s.prefill_s * 1e9));
        rows.push_back(
            jsonRow(strformat("BM_ServeItlP50/%s%s", r.mode, suffix),
                    0.0, s.p50_itl_s * 1e9));
    }
    std::fprintf(f, "{\n  \"context\": {\"executable\": "
                    "\"serve_throughput\"},\n  \"benchmarks\": [\n");
    for (size_t i = 0; i < rows.size(); ++i)
        std::fprintf(f, "%s%s\n", rows[i].c_str(),
                     i + 1 < rows.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
}

int
serveMain(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const int64_t requests = args.getInt("requests", 64);
    const int64_t concurrency = args.getInt("concurrency", 8);
    const uint64_t seed =
        static_cast<uint64_t>(args.getInt("seed", 7));
    const int64_t threads = args.getInt("threads", 0);
    if (threads > 0)
        runtime::setGlobalThreadCount(static_cast<int>(threads));

    const bool tracing = args.has("trace");
    std::string trace_path;
    if (tracing) {
        trace_path = args.get("trace", "");
        if (trace_path.empty())
            trace_path = "serve_trace.json";
        trace::Config tc;
        tc.enabled = true;
        tc.json_path = trace_path;
        trace::configure(tc);
    }

    std::printf("%s", runtime::envConfig().dump().c_str());
    std::printf("requests=%lld concurrency=%lld seed=%llu\n",
                static_cast<long long>(requests),
                static_cast<long long>(concurrency),
                static_cast<unsigned long long>(seed));

    LlamaModel model(benchModel(), seed);
    model.setScheme(PrecisionScheme::uniform(
        model.registry().numLinear(), Precision::FP8));

    std::vector<ModeResult> runs;
    // Warm-up pass (arena growth, quantized-weight caches) then the
    // measured pass, per mode.
    for (serve::KvCacheMode mode :
         {serve::KvCacheMode::Fp8, serve::KvCacheMode::Fp32}) {
        runMode(model, mode, std::min<int64_t>(requests, 8),
                concurrency, seed);
        runs.push_back(
            runMode(model, mode, requests, concurrency, seed));
        printMode(runs.back());
    }

    const std::string json = args.get("json", "");
    if (!json.empty()) {
        if (!writeJson(json, runs, tracing)) {
            std::fprintf(stderr, "cannot write %s\n", json.c_str());
            return 1;
        }
        std::printf("wrote %s\n", json.c_str());
    }
    if (tracing) {
        if (!trace::flush()) {
            std::fprintf(stderr, "cannot write %s\n",
                         trace_path.c_str());
            return 1;
        }
        std::printf("wrote %s (%lld spans)\n", trace_path.c_str(),
                    static_cast<long long>(trace::spansRecorded()));
    }
    return 0;
}

} // namespace
} // namespace snip

int
main(int argc, char **argv)
{
    return snip::serveMain(argc, argv);
}
