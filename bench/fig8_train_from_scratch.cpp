/**
 * @file
 * Figure 8: training-loss curves when training the TinyLlama-class
 * model from scratch under a 75% FP4-FLOP budget.
 *
 * Expected shape (paper): BF16 and SNIP curves nearly overlap (SNIP a
 * hair above); min-abs/min-rel/random curves destabilize or diverge.
 *
 * Like the paper (whose released checkpoints lack optimizer states), a
 * few BF16 warmup steps precede scheme selection so the weight-
 * divergence statistics see real optimizer moments.
 */
#include "bench_common.h"

using namespace snip;
using namespace snip::bench;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const bool full = args.has("full");
    const int64_t steps = args.getInt("steps", full ? 300 : 120);
    const int64_t scheme_warmup = args.getInt("scheme-warmup", 10);
    const double budget = args.getDouble("budget", 0.75);

    banner("Figure 8", "train-from-scratch loss curves @ 75% FP4");
    Setup setup = makeSetup(tinyllamaSim(), scheme_warmup,
                            /*eval_items=*/5);

    const std::vector<std::string> methods = {
        "BF16",    "SNIP",    "min-abs-err", "min-rel-err",
        "random0", "random1", "random2"};

    std::vector<std::vector<double>> curves;
    for (const auto &method : methods) {
        setup.trainer->restore(setup.checkpoint);
        PrecisionScheme scheme =
            method == "BF16"
                ? PrecisionScheme::uniform(
                      static_cast<size_t>(
                          setup.trainer->model().registry().numLinear()),
                      Precision::BF16)
                : makeMethodScheme(*setup.trainer, method, budget);
        RunOutcome out = runScheme(setup, scheme, steps,
                                   /*do_eval=*/false);
        curves.push_back(out.losses);
        std::printf("%-12s final(5-step mean) loss %.4f\n",
                    method.c_str(), tailMean(out.losses, 5));
        std::fflush(stdout);
    }

    // Loss table every 10 steps.
    TablePrinter table([&] {
        std::vector<std::string> h = {"step"};
        for (const auto &m : methods)
            h.push_back(m);
        return h;
    }());
    for (size_t i = 9; i < curves[0].size(); i += 10) {
        table.newRow();
        table.cell(static_cast<int64_t>(i + 1 + scheme_warmup));
        for (const auto &c : curves)
            table.cell(c[i], 4);
    }
    table.print();
    writeFile("fig8_train_from_scratch.csv", table.toCsv());
    std::printf("\n(curves written to fig8_train_from_scratch.csv)\n");
    return 0;
}
