/**
 * @file
 * Figure 9: relative training-loss difference vs the BF16 baseline for
 * the 70B-class dense model under a 50% FP4-FLOP budget, tracked over
 * resumed-training steps (uniform FP4 shown for reference).
 *
 * Expected shape (paper): uniform FP4 drifts upward gradually (slower
 * than the 1B model — larger models tolerate precision loss better);
 * SNIP and E-layer-id stay closest to zero; min-rel-err and
 * E-layer-type show spikes/larger deviations.
 */
#include "bench_common.h"

using namespace snip;
using namespace snip::bench;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const bool full = args.has("full");
    const int64_t warmup = args.getInt("warmup", full ? 300 : 120);
    const int64_t steps = args.getInt("steps", full ? 80 : 40);
    const double budget = args.getDouble("budget", 0.50);

    banner("Figure 9", "relative loss difference vs BF16, "
                       "llama70b_sim @ 50% FP4");
    ModelConfig model = llama70bSim();
    Setup setup = makeSetup(model, warmup, /*eval_items=*/5);
    // Keep the 70B-class run affordable: smaller batch.
    // (The architecture — 40 blocks, GQA — is what matters here.)

    const std::vector<std::string> methods = {
        "FP4",         "E-layer-id", "E-layer-type",
        "min-abs-err", "min-rel-err", "SNIP"};

    // BF16 reference curve.
    RunOutcome ref = runScheme(
        setup,
        PrecisionScheme::uniform(
            static_cast<size_t>(
                setup.trainer->model().registry().numLinear()),
            Precision::BF16),
        steps, /*do_eval=*/false);

    std::vector<std::vector<double>> rel;
    for (const auto &method : methods) {
        setup.trainer->restore(setup.checkpoint);
        PrecisionScheme scheme =
            method == "FP4"
                ? PrecisionScheme::uniform(
                      static_cast<size_t>(
                          setup.trainer->model().registry().numLinear()),
                      Precision::FP4)
                : makeMethodScheme(*setup.trainer, method, budget);
        RunOutcome out =
            runScheme(setup, scheme, steps, /*do_eval=*/false);
        std::vector<double> r;
        for (size_t i = 0; i < out.losses.size(); ++i) {
            r.push_back(100.0 * (out.losses[i] - ref.losses[i]) /
                        ref.losses[i]);
        }
        rel.push_back(r);
        std::printf("%-12s mean rel loss diff %.3f%%  (last %.3f%%)\n",
                    method.c_str(), tailMean(r, r.size()),
                    tailMean(r, 5));
        std::fflush(stdout);
    }

    TablePrinter table([&] {
        std::vector<std::string> h = {"step"};
        for (const auto &m : methods)
            h.push_back(m + "(%)");
        return h;
    }());
    for (size_t i = 4; i < rel[0].size(); i += 5) {
        table.newRow();
        table.cell(static_cast<int64_t>(warmup + i + 1));
        for (const auto &r : rel)
            table.cell(r[i], 3);
    }
    table.print();
    writeFile("fig9_llama70b_loss_diff.csv", table.toCsv());
    std::printf("\n(series written to fig9_llama70b_loss_diff.csv)\n");
    return 0;
}
