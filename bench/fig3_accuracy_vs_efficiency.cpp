/**
 * @file
 * Figure 3: accuracy vs fraction of FP4 FLOPs for the TinyLlama-class
 * model, comparing SNIP against every baseline selector.
 *
 * Expected shape (paper): FP8 tops accuracy at 0% FP4; SNIP stays near
 * the FP8/BF16 level out to ~80% FP4; heuristic and random selectors
 * decay sharply past 25-50%; uniform FP4 (100%) is worst.
 */
#include "bench_common.h"

using namespace snip;
using namespace snip::bench;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const bool full = args.has("full");
    const int64_t warmup = args.getInt("warmup", 400);
    const int64_t steps = args.getInt("steps", full ? 100 : 30);
    const int eval_items = static_cast<int>(
        args.getInt("eval-items", full ? 30 : 15));

    banner("Figure 3", "accuracy vs fraction of FP4 FLOPs "
                       "(tinyllama_sim)");
    Setup setup = makeSetup(tinyllamaSim(), warmup, eval_items);

    const std::vector<double> budgets = {0.25, 0.50, 0.75, 0.80};
    const std::vector<std::string> methods = {
        "SNIP",   "min-rel-err", "min-abs-err",
        "random0", "E-layer-id", "E-layer-type"};

    TablePrinter table({"method", "fp4_fraction(%)", "avg_accuracy(%)",
                        "final_loss"});

    // Endpoints: FP8 (0% FP4) and FP4 (100%).
    for (const char *endpoint : {"FP8", "FP4"}) {
        PrecisionScheme scheme =
            makeMethodScheme(*setup.trainer, endpoint, 0.0);
        RunOutcome out = runScheme(setup, scheme, steps);
        table.newRow();
        table.cell(std::string(endpoint));
        table.cell(out.fp4_fraction * 100.0, 1);
        table.cell(out.eval.average, 2);
        table.cell(tailMean(out.losses, 5), 4);
    }

    for (const std::string &method : methods) {
        for (double budget : budgets) {
            setup.trainer->restore(setup.checkpoint);
            PrecisionScheme scheme =
                makeMethodScheme(*setup.trainer, method, budget);
            RunOutcome out = runScheme(setup, scheme, steps);
            table.newRow();
            table.cell(strformat("%s@%d%%", method.c_str(),
                                 static_cast<int>(budget * 100)));
            table.cell(out.fp4_fraction * 100.0, 1);
            table.cell(out.eval.average, 2);
            table.cell(tailMean(out.losses, 5), 4);
            std::fflush(stdout);
        }
    }

    table.print();
    writeFile("fig3_accuracy_vs_efficiency.csv", table.toCsv());
    std::printf("\n(series written to fig3_accuracy_vs_efficiency.csv)\n");
    return 0;
}
