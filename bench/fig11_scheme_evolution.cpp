/**
 * @file
 * Figure 11: evolution of SNIP's per-layer precision assignment at a
 * 75% FP4 budget across training checkpoints (the paper's 5k/10k/20k/
 * 50k/240k, scaled to simulator step counts).
 *
 * Expected shape (paper): assignments stay stable between nearby
 * checkpoints and shift at the latest one. Also reproduces the
 * overhead accounting of Sec. 6.3 (3 extra passes + CPU-side solve).
 */
#include "bench_common.h"

using namespace snip;
using namespace snip::bench;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const bool full = args.has("full");
    const std::vector<int64_t> ckpts =
        full ? std::vector<int64_t>{50, 100, 200, 400, 800}
             : std::vector<int64_t>{50, 100, 200, 400};
    const double budget = args.getDouble("budget", 0.75);

    banner("Figure 11", "evolution of SNIP assignments across "
                        "checkpoints @ 75% FP4");

    TrainerConfig cfg = trainerPreset(tinyllamaSim());
    Trainer trainer(cfg);

    PrecisionScheme prev;
    int64_t trained = 0;
    for (int64_t ckpt : ckpts) {
        trainer.train(ckpt - trained);
        trained = ckpt;
        // Selecting a scheme dirties gradients only; weights are
        // untouched, so training can continue afterwards.
        PrecisionScheme scheme =
            makeMethodScheme(trainer, "SNIP", budget);
        std::printf("\n--- checkpoint %lld steps ---\n%s",
                    static_cast<long long>(ckpt),
                    scheme.renderHeatmap().c_str());
        if (prev.numLayers() > 0) {
            int changed = 0;
            for (size_t i = 0; i < scheme.layers.size(); ++i)
                changed += !(scheme.layers[i] == prev.layers[i]);
            std::printf("layers changed vs previous checkpoint: %d/%zu\n",
                        changed, scheme.layers.size());
        }
        prev = scheme;
        // Keep training in BF16 between checkpoints, like the paper's
        // released BF16 checkpoints.
        trainer.applyScheme(PrecisionScheme::uniform(
            scheme.layers.size(), Precision::BF16));
        std::fflush(stdout);
    }

    // Overhead accounting (Sec. 6.3).
    SnipController::Config cc;
    cc.target_fp4_fraction = budget;
    SnipController controller(cc);
    Batch batch = BatchIterator(trainer.corpus(), cfg.batch_size, 0x57A7)
                      .next();
    controller.updateScheme(trainer.model(), &trainer.optimizer(),
                            batch);
    const UpdateOverhead &oh = controller.lastOverhead();
    std::printf("\nscheme-update overhead: %d extra fwd+bwd passes, "
                "ILP solve %.3fs (%lld nodes)\n",
                oh.extra_passes, oh.solve_seconds,
                static_cast<long long>(oh.ilp_nodes));
    return 0;
}
