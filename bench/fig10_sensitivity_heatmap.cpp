/**
 * @file
 * Figure 10: heatmap of per-layer quality loss Q under FP4 quantization
 * for the TinyLlama-class model at its mid checkpoint.
 *
 * Expected shape (paper): the last block's MLP is most sensitive;
 * down-projections (especially in later blocks) and V projections are
 * more sensitive than Q/K.
 */
#include <cmath>

#include "bench_common.h"

using namespace snip;
using namespace snip::bench;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const int64_t warmup = args.getInt("warmup", 400);

    banner("Figure 10", "layer-wise quality loss under FP4 "
                        "(0=lowest .. 9=highest, log scale)");
    Setup setup = makeSetup(tinyllamaSim(), warmup, /*eval_items=*/5);
    Trainer &trainer = *setup.trainer;
    LlamaModel &model = trainer.model();
    FlopsModel flops(model.registry());

    Batch batch = BatchIterator(trainer.corpus(),
                                trainer.config().batch_size, 0x57A7)
                      .next();
    TrainingStats stats =
        collectTrainingStats(model, &trainer.optimizer(), batch);
    ProbeResult bwd =
        runNoiseProbe(model, batch, stats, ProbeKind::Backward);
    ProbeResult fwd =
        runNoiseProbe(model, batch, stats, ProbeKind::Forward);
    DivergenceAnalyzer analyzer(stats, &bwd, &fwd, flops);

    const int n = model.registry().numLinear();
    std::vector<double> q(static_cast<size_t>(n));
    double qmin = 1e300, qmax = 0.0;
    const LayerScheme fp4 = LayerScheme::uniform(Precision::FP4);
    for (int i = 0; i < n; ++i) {
        q[static_cast<size_t>(i)] =
            analyzer.lossDivergence(i, fp4) +
            analyzer.weightDivergence(i, fp4);
        qmin = std::min(qmin, q[static_cast<size_t>(i)]);
        qmax = std::max(qmax, q[static_cast<size_t>(i)]);
    }

    // Log-scale 0..9 bins.
    const double lo = std::log10(std::max(qmin, 1e-300));
    const double hi = std::log10(std::max(qmax, 1e-299));
    auto bin = [&](double v) {
        if (hi <= lo)
            return 0;
        double t = (std::log10(std::max(v, 1e-300)) - lo) / (hi - lo);
        return std::min(9, static_cast<int>(t * 10.0));
    };

    std::printf("blk   ");
    for (LayerRole role : allLayerRoles())
        std::printf("%-6s", layerRoleName(role));
    std::printf("\n");
    for (int b = 0; b < model.config().n_blocks; ++b) {
        std::printf("%-6d", b);
        for (int r = 0; r < kRolesPerBlock; ++r)
            std::printf("%-6d",
                        bin(q[static_cast<size_t>(
                            b * kRolesPerBlock + r)]));
        std::printf("\n");
    }

    // Aggregates the paper calls out.
    double down_mean = 0, qk_mean = 0, v_mean = 0;
    for (int b = 0; b < model.config().n_blocks; ++b) {
        down_mean += q[static_cast<size_t>(
            b * kRolesPerBlock + static_cast<int>(LayerRole::Down))];
        v_mean += q[static_cast<size_t>(
            b * kRolesPerBlock + static_cast<int>(LayerRole::V))];
        qk_mean +=
            0.5 * (q[static_cast<size_t>(b * kRolesPerBlock)] +
                   q[static_cast<size_t>(b * kRolesPerBlock + 1)]);
    }
    std::printf("\nmean Q by type: Down=%.3e  V=%.3e  Q/K=%.3e "
                "(expect Down > V > Q/K)\n",
                down_mean / model.config().n_blocks,
                v_mean / model.config().n_blocks,
                qk_mean / model.config().n_blocks);
    return 0;
}
