/**
 * @file
 * Table 3: accuracy difference vs the BF16 baseline for the 70B-class
 * dense model under a 50% FP4-FLOP budget, on three representative
 * benchmarks (the paper reports ARC_c, MMLU, HellaSwag).
 *
 * Expected shape (paper): deltas are small for every scheme at this
 * scale; SNIP is consistently near-zero-or-positive while heuristic
 * schemes are inconsistent across tasks.
 */
#include "bench_common.h"

using namespace snip;
using namespace snip::bench;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const bool full = args.has("full");
    const int64_t warmup = args.getInt("warmup", full ? 300 : 120);
    const int64_t steps = args.getInt("steps", full ? 60 : 25);
    const int eval_items = static_cast<int>(
        args.getInt("eval-items", full ? 25 : 12));
    const double budget = args.getDouble("budget", 0.50);

    banner("Table 3", "accuracy delta vs BF16, llama70b_sim @ 50% FP4");
    Setup setup = makeSetup(llama70bSim(), warmup, eval_items);

    // The paper's three reported benchmarks and their analogs here.
    const std::vector<std::string> reported = {"ARC_c", "MMLU",
                                               "HellaSwag"};

    RunOutcome bf16 = runScheme(
        setup,
        makeMethodScheme(*setup.trainer, "BF16", 0.0), steps);

    const std::vector<std::string> methods = {
        "FP8",        "FP4",          "SNIP",       "E-layer-id",
        "E-layer-type", "min-abs-err", "min-rel-err"};

    std::vector<std::string> headers = {"scheme"};
    for (const auto &r : reported)
        headers.push_back(r + " delta");
    TablePrinter table(headers);

    for (const auto &method : methods) {
        setup.trainer->restore(setup.checkpoint);
        PrecisionScheme scheme =
            (method == "FP8" || method == "FP4")
                ? makeMethodScheme(*setup.trainer, method, 0.0)
                : makeMethodScheme(*setup.trainer, method, budget);
        RunOutcome out = runScheme(setup, scheme, steps);
        table.newRow();
        table.cell(method);
        for (const auto &r : reported) {
            table.cell(out.eval.taskAccuracy(r) -
                           bf16.eval.taskAccuracy(r),
                       2);
        }
        std::fflush(stdout);
    }
    table.print();
    writeFile("table3_llama70b_accuracy.csv", table.toCsv());
    std::printf("\n(rows written to table3_llama70b_accuracy.csv)\n");
    return 0;
}
