/**
 * @file
 * Ablation (DESIGN.md Sec. 5): the quantization recipe itself.
 *   1. Stochastic rounding vs round-to-nearest for FP4 gradients
 *      (Sec. 6.1: SR "avoids training stagnation").
 *   2. Scaling granularity: DeepSeek tile/block vs tensorwise vs
 *      rowwise, measured as quantization error and as training loss.
 *
 * Expected shape: tensorwise scaling has the largest error; the
 * tile/block recipe the smallest among the cheap options; RNE-on-
 * gradients trains worse than SR at FP4.
 */
#include <cstdio>

#include "bench_common.h"
#include "quant/error_metrics.h"

using namespace snip;
using namespace snip::bench;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const bool full = args.has("full");
    const int64_t steps = args.getInt("steps", full ? 120 : 60);

    banner("Ablation B", "rounding mode and scaling granularity");

    // Part 1: quantization error by granularity on real layer tensors.
    {
        Setup setup = makeSetup(tinyllamaSim(), 400, 5);
        Trainer &trainer = *setup.trainer;
        Batch batch = BatchIterator(trainer.corpus(),
                                    trainer.config().batch_size, 0x77)
                          .next();
        TrainingStats stats = collectTrainingStats(
            trainer.model(), &trainer.optimizer(), batch);
        (void)stats;

        // Use a middle layer's weight as a representative tensor.
        Tensor w = trainer.model()
                       .linear(trainer.model().registry().numLinear() /
                               2)
                       .weight();
        FakeQuantizer q(3);
        TablePrinter t({"granularity", "fp4 rel err", "fp8 rel err"});
        const std::pair<const char *, ScalingSpec> specs[] = {
            {"tensorwise", {Granularity::Tensorwise, 0}},
            {"rowwise", {Granularity::Rowwise, 0}},
            {"blockwise128", {Granularity::Blockwise, 128}},
            {"blockwise32", {Granularity::Blockwise, 32}},
            {"tilewise128", {Granularity::Tilewise, 128}},
        };
        for (const auto &[name, spec] : specs) {
            t.newRow();
            t.cell(std::string(name));
            t.cell(measureQuantError(
                       w, QuantConfig{fp4E2m1(), spec,
                                      Rounding::Nearest},
                       q)
                       .rel_error,
                   5);
            t.cell(measureQuantError(
                       w, QuantConfig{fp8E4m3(), spec,
                                      Rounding::Nearest},
                       q)
                       .rel_error,
                   5);
        }
        t.print();
    }

    // Part 2: SR vs RNE for FP4 gradients during actual training.
    // RNE is emulated by overriding the layer scheme's gradient
    // rounding via a custom run: we retrain at uniform FP4 twice, once
    // with the standard policy (SR on grads) and once by quantizing
    // gradients through a nearest-rounding pre-pass.
    {
        std::printf("\nFP4 training, stochastic vs nearest rounding on "
                    "gradients (%lld steps from scratch):\n",
                    static_cast<long long>(steps));
        TrainerConfig cfg = trainerPreset(tinyllamaSim());
        struct Row
        {
            const char *name;
            Precision precision;
            Rounding grad_rounding;
        };
        const Row rows[] = {
            {"BF16", Precision::BF16, Rounding::Stochastic},
            {"FP4, SR gradients (paper)", Precision::FP4,
             Rounding::Stochastic},
            {"FP4, RNE gradients", Precision::FP4, Rounding::Nearest},
        };
        TablePrinter t({"config", "final loss (5-step mean)"});
        for (const Row &r : rows) {
            setFp4GradRounding(r.grad_rounding);
            Trainer trainer(cfg);
            const size_t n = static_cast<size_t>(
                trainer.model().registry().numLinear());
            trainer.applyScheme(
                PrecisionScheme::uniform(n, r.precision));
            auto losses = trainer.train(steps);
            t.newRow();
            t.cell(std::string(r.name));
            t.cell(tailMean(losses, 5), 4);
            std::fflush(stdout);
        }
        setFp4GradRounding(Rounding::Stochastic);
        t.print();
    }
    return 0;
}
