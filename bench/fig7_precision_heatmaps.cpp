/**
 * @file
 * Figure 7: per-layer precision assignments of SNIP vs min-abs-err vs
 * min-rel-err at 25/50/75% FP4-FLOP budgets (22-block model).
 *
 * Expected shape (paper): at 25% the three selectors roughly agree; at
 * 50-75% the error-minimizing heuristics push early layers to FP4 while
 * SNIP protects down-projections in middle/late blocks.
 */
#include "bench_common.h"

using namespace snip;
using namespace snip::bench;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const int64_t warmup = args.getInt("warmup", 400);

    banner("Figure 7", "per-layer precision heatmaps at 25/50/75% "
                       "(4=FP4, 8=FP8)");
    Setup setup = makeSetup(tinyllamaSim(), warmup, /*eval_items=*/5);

    for (double budget : {0.25, 0.50, 0.75}) {
        for (const char *method :
             {"SNIP", "min-abs-err", "min-rel-err"}) {
            setup.trainer->restore(setup.checkpoint);
            PrecisionScheme scheme =
                makeMethodScheme(*setup.trainer, method, budget);
            FlopsModel fm(setup.trainer->model().registry());
            std::printf("\n--- %s @ %d%% FP4 FLOPs (achieved %.1f%%) "
                        "---\n%s",
                        method, static_cast<int>(budget * 100),
                        fm.fp4Fraction(scheme) * 100.0,
                        scheme.renderHeatmap().c_str());
            std::fflush(stdout);
        }
    }
    return 0;
}
