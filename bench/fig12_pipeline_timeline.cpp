/**
 * @file
 * Figure 12: pipeline-parallel timeline of the 22-block model under
 * SNIP with a 50% FP4 budget and 4 stages (blocks split 6/6/6/4 as in
 * the paper), with the grouped ILP of Sec. 5.3 balancing per-stage
 * efficiency.
 *
 * Expected shape (paper): per-stage FP4 fractions are balanced (the
 * last, smaller stage may hold a different local fraction while the
 * pipeline stays balanced in time), and the grouped solution has a
 * lower bubble fraction than an unbalanced (global-constraint) one.
 */
#include "bench_common.h"
#include "parallel/pipeline.h"

using namespace snip;
using namespace snip::bench;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const int64_t warmup = args.getInt("warmup", 400);
    const int n_stages = static_cast<int>(args.getInt("stages", 4));
    const int microbatches = static_cast<int>(args.getInt("mb", 8));
    const double budget = args.getDouble("budget", 0.50);

    banner("Figure 12", "pipeline timeline, 4 stages @ 50% FP4");
    Setup setup = makeSetup(tinyllamaSim(), warmup, /*eval_items=*/5);
    Trainer &trainer = *setup.trainer;
    LlamaModel &model = trainer.model();
    FlopsModel flops(model.registry());

    const auto split = evenStageSplit(
        static_cast<int>(model.config().n_blocks), n_stages);
    std::printf("stage split (blocks): ");
    for (int s : split)
        std::printf("%d ", s);
    std::printf("\n\n");

    // SNIP with the grouped (pipeline-aware) constraint.
    Batch batch = BatchIterator(trainer.corpus(),
                                trainer.config().batch_size, 0x57A7)
                      .next();
    TrainingStats stats =
        collectTrainingStats(model, &trainer.optimizer(), batch);
    ProbeResult bwd =
        runNoiseProbe(model, batch, stats, ProbeKind::Backward);
    ProbeResult fwd =
        runNoiseProbe(model, batch, stats, ProbeKind::Forward);
    DivergenceAnalyzer analyzer(stats, &bwd, &fwd, flops);
    DivergenceTable table =
        analyzer.analyze(makeOptionSet(OptionSetKind::Standard));

    PipelineConstraint pc;
    pc.n_stages = n_stages;
    pc.blocks_per_stage = split;
    SchemeSelection grouped =
        selectScheme(table, budget, flops, {}, pc);
    SchemeSelection global = selectScheme(table, budget, flops, {});

    for (const auto &[label, sel] :
         {std::pair<const char *, SchemeSelection &>{"grouped (Sec. 5.3)",
                                                     grouped},
          std::pair<const char *, SchemeSelection &>{"global constraint",
                                                     global}}) {
        auto stages = buildStages(flops, sel.scheme, split);
        PipelineTimeline tl = simulatePipeline(stages, microbatches);
        std::printf("--- %s: fp4=%.1f%%, makespan=%.3g, bubble=%.1f%% "
                    "---\n%s\n",
                    label, sel.fp4_fraction * 100.0, tl.makespan,
                    tl.bubble_fraction * 100.0,
                    tl.render().c_str());
        std::printf("per-stage precision heatmaps:\n%s\n",
                    sel.scheme.renderHeatmap().c_str());
    }
    return 0;
}
