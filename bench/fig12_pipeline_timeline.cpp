/**
 * @file
 * Figure 12: pipeline-parallel timeline of the 22-block model under
 * SNIP with a 50% FP4 budget and 4 stages (blocks split 6/6/6/4 as in
 * the paper), with the grouped ILP of Sec. 5.3 balancing per-stage
 * efficiency.
 *
 * Expected shape (paper): per-stage FP4 fractions are balanced (the
 * last, smaller stage may hold a different local fraction while the
 * pipeline stays balanced in time), and the grouped solution has a
 * lower bubble fraction than an unbalanced (global-constraint) one.
 *
 * Part two reproduces the Sec. 6.3 overhead discussion with the async
 * scheme-update service: training continues while the background
 * worker runs the divergence analysis and the (pipeline-grouped) ILP,
 * so nearly all solve wall-clock is hidden behind training steps; the
 * deterministic inline fallback reproduces the async scheme sequence
 * exactly; and a warm rerun answers every repeated problem hash from
 * the persistent solve cache.
 */
#include <cstdio>

#include "bench_common.h"
#include "ilp/solve_cache.h"
#include "parallel/pipeline.h"
#include "telemetry/telemetry.h"

using namespace snip;
using namespace snip::bench;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const int64_t warmup = args.getInt("warmup", 400);
    const int n_stages = static_cast<int>(args.getInt("stages", 4));
    const int microbatches = static_cast<int>(args.getInt("mb", 8));
    const double budget = args.getDouble("budget", 0.50);

    banner("Figure 12", "pipeline timeline, 4 stages @ 50% FP4");
    Setup setup = makeSetup(tinyllamaSim(), warmup, /*eval_items=*/5);
    Trainer &trainer = *setup.trainer;
    LlamaModel &model = trainer.model();
    FlopsModel flops(model.registry());

    const auto split = evenStageSplit(
        static_cast<int>(model.config().n_blocks), n_stages);
    std::printf("stage split (blocks): ");
    for (int s : split)
        std::printf("%d ", s);
    std::printf("\n\n");

    // SNIP with the grouped (pipeline-aware) constraint.
    Batch batch = BatchIterator(trainer.corpus(),
                                trainer.config().batch_size, 0x57A7)
                      .next();
    TrainingStats stats =
        collectTrainingStats(model, &trainer.optimizer(), batch);
    ProbeResult bwd =
        runNoiseProbe(model, batch, stats, ProbeKind::Backward);
    ProbeResult fwd =
        runNoiseProbe(model, batch, stats, ProbeKind::Forward);
    DivergenceAnalyzer analyzer(stats, &bwd, &fwd, flops);
    DivergenceTable table =
        analyzer.analyze(makeOptionSet(OptionSetKind::Standard));

    PipelineConstraint pc;
    pc.n_stages = n_stages;
    pc.blocks_per_stage = split;
    SchemeSelection grouped =
        selectScheme(table, budget, flops, {}, pc);
    SchemeSelection global = selectScheme(table, budget, flops, {});

    for (const auto &[label, sel] :
         {std::pair<const char *, SchemeSelection &>{"grouped (Sec. 5.3)",
                                                     grouped},
          std::pair<const char *, SchemeSelection &>{"global constraint",
                                                     global}}) {
        auto stages = buildStages(flops, sel.scheme, split);
        PipelineTimeline tl = simulatePipeline(stages, microbatches);
        std::printf("--- %s: fp4=%.1f%%, makespan=%.3g, bubble=%.1f%% "
                    "---\n%s\n",
                    label, sel.fp4_fraction * 100.0, tl.makespan,
                    tl.bubble_fraction * 100.0,
                    tl.render().c_str());
        std::printf("per-stage precision heatmaps:\n%s\n",
                    sel.scheme.renderHeatmap().c_str());
    }

    // --- Sec. 6.3: the async service hides the search overhead ------
    const int64_t steps = args.getInt("steps", 25);
    const int64_t interval = args.getInt("interval", 10);
    const int64_t delay = args.getInt("delay", 8);
    const std::string cache_path = "fig12_solve_cache.bin";
    std::remove(cache_path.c_str());

    SnipController::Config base;
    base.target_fp4_fraction = budget;
    base.update_interval = interval;
    base.pipeline = pc;

    struct Pass
    {
        std::vector<PrecisionScheme> schemes;
        OverheadTotals totals;
    };
    auto runPass = [&](bool async, int64_t apply_delay,
                       SolveCache *cache, int64_t n_steps) {
        trainer.restore(setup.checkpoint);
        SnipController::Config cc = base;
        cc.async = async;
        cc.apply_delay = apply_delay;
        cc.solve.cache = cache;
        SnipController controller(cc);
        Pass pass;
        for (int64_t i = 0; i < n_steps; ++i) {
            trainer.trainStep(&controller);
            pass.schemes.push_back(trainer.model().currentScheme());
        }
        pass.totals = controller.totals();
        return pass;
    };

    std::printf("--- async scheme updates (Sec. 6.3): %lld steps, "
                "interval %lld, apply delay %lld ---\n",
                static_cast<long long>(steps),
                static_cast<long long>(interval),
                static_cast<long long>(delay));
    SolveCache cold_cache(cache_path);
    Pass cold = runPass(/*async=*/true, delay, &cold_cache, steps);
    const double overlap =
        cold.totals.work_seconds > 0.0
            ? 100.0 * cold.totals.hidden_seconds /
                  cold.totals.work_seconds
            : 0.0;
    std::printf("updates: %d   solve+analysis wall: %.1f ms   "
                "hidden: %.1f ms   exposed: %.1f ms\n",
                cold.totals.updates,
                1e3 * cold.totals.work_seconds,
                1e3 * cold.totals.hidden_seconds,
                1e3 * cold.totals.exposed_seconds);
    std::printf("solve wall-clock overlapped with training: %.1f%% "
                "(target >= 80%%)\n\n",
                overlap);

    // Deterministic fallback: inline mode and async submit-and-wait
    // must walk the identical scheme sequence.
    Pass inline_pass =
        runPass(/*async=*/false, 0, nullptr, steps);
    Pass fallback = runPass(/*async=*/true, 0, nullptr, steps);
    bool identical = inline_pass.schemes.size() == fallback.schemes.size();
    for (size_t i = 0; identical && i < inline_pass.schemes.size(); ++i)
        identical = inline_pass.schemes[i] == fallback.schemes[i];
    std::printf("inline fallback scheme sequence identical to "
                "async(delay=0): %s\n\n",
                identical ? "yes" : "NO — determinism bug");

    // Warm rerun: deterministic training re-poses bit-identical ILPs,
    // so every solve is answered by the persistent cache. Lookups can
    // exceed adopted updates: the last snapshot of a pass is solved
    // (and cached) even when its apply boundary lies past the run.
    SolveCache warm_cache(cache_path);
    warm_cache.resetStats();
    Pass warm = runPass(/*async=*/true, delay, &warm_cache, steps);
    const long long lookups = static_cast<long long>(
        warm_cache.hits() + warm_cache.misses());
    std::printf("warm rerun: %d updates adopted, %lld/%lld solves "
                "served from %s\n",
                warm.totals.updates,
                static_cast<long long>(warm_cache.hits()), lookups,
                cache_path.c_str());

    if (telemetry::enabled()) {
        telemetry::flush();
        std::printf("\ntelemetry (%lld step records): %s\n",
                    static_cast<long long>(telemetry::stepsRecorded()),
                    telemetry::summary().c_str());
    }
    return 0;
}
