/**
 * @file
 * Ablation (DESIGN.md Sec. 5): which part of SNIP's quality metric
 * matters? Compares resumed-training outcomes at a fixed budget when
 * the ILP objective uses:
 *   - loss divergence + weight divergence (the paper's Q),
 *   - loss divergence only,
 *   - weight divergence only,
 * plus the option-set granularity (Simple 2-option vs Standard
 * 4-option vs Full 8-option spaces).
 *
 * Expected shape: the combined metric is at least as good as either
 * component alone (the paper's motivation for using both, Sec. 4), and
 * finer option sets achieve the same target with equal or lower
 * objective.
 */
#include "bench_common.h"

using namespace snip;
using namespace snip::bench;

namespace {

PrecisionScheme
snipVariant(Trainer &trainer, double target, QualityMetric metric,
            OptionSetKind options)
{
    SnipController::Config cc;
    cc.target_fp4_fraction = target;
    cc.metric = metric;
    cc.option_set = options;
    SnipController controller(cc);
    Batch batch = BatchIterator(trainer.corpus(),
                                trainer.config().batch_size, 0x57A7)
                      .next();
    return controller
        .updateScheme(trainer.model(), &trainer.optimizer(), batch)
        .scheme;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const bool full = args.has("full");
    const int64_t warmup = args.getInt("warmup", 400);
    const int64_t steps = args.getInt("steps", full ? 80 : 30);
    const double budget = args.getDouble("budget", 0.75);

    banner("Ablation A", "SNIP quality-metric components @ 75% FP4");
    Setup setup = makeSetup(tinyllamaSim(), warmup, 15);

    TablePrinter table({"variant", "fp4(%)", "avg_acc(%)",
                        "final_loss"});
    struct Variant
    {
        const char *name;
        QualityMetric metric;
        OptionSetKind options;
    };
    const Variant variants[] = {
        {"loss+weight (SNIP)", QualityMetric::Snip,
         OptionSetKind::Standard},
        {"loss_only", QualityMetric::LossOnly, OptionSetKind::Standard},
        {"weight_only", QualityMetric::WeightOnly,
         OptionSetKind::Standard},
        {"SNIP/simple_opts", QualityMetric::Snip, OptionSetKind::Simple},
        {"SNIP/full_opts", QualityMetric::Snip, OptionSetKind::Full},
    };
    for (const Variant &v : variants) {
        setup.trainer->restore(setup.checkpoint);
        PrecisionScheme scheme = snipVariant(*setup.trainer, budget,
                                             v.metric, v.options);
        RunOutcome out = runScheme(setup, scheme, steps);
        table.newRow();
        table.cell(std::string(v.name));
        table.cell(out.fp4_fraction * 100.0, 1);
        table.cell(out.eval.average, 2);
        table.cell(tailMean(out.losses, 5), 4);
        std::fflush(stdout);
    }
    table.print();
    writeFile("ablation_quality_metric.csv", table.toCsv());
    return 0;
}
