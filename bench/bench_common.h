/**
 * @file
 * Shared experiment harness for the table/figure reproduction benches.
 *
 * Implements the paper's methodology (Sec. 6.1): train a model to a
 * checkpoint in BF16 (cached on disk so the bench suite pays the cost
 * once), then resume pretraining from that identical checkpoint under
 * each precision-selection method on identical data, and score the
 * result with the synthetic lm-eval suite.
 */
#ifndef SNIP_BENCH_BENCH_COMMON_H
#define SNIP_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "eval/harness.h"
#include "schemes/baselines.h"
#include "train/checkpoint.h"
#include "train/presets.h"
#include "util/string_util.h"
#include "util/table.h"

namespace snip {
namespace bench {

/** A prepared experiment: trainer + checkpoint + eval suite. */
struct Setup
{
    TrainerConfig cfg;
    std::unique_ptr<Trainer> trainer;
    TrainerSnapshot checkpoint;
    std::vector<EvalTask> suite;
};

/**
 * Build a Setup: construct the preset trainer, warm it up for
 * @p warmup_steps in BF16 (loading/saving a disk cache named after the
 * model and step count), snapshot, and generate the eval suite.
 */
inline Setup
makeSetup(const ModelConfig &model, int64_t warmup_steps,
          int eval_items = 15, uint64_t seed = 42)
{
    Setup s;
    s.cfg = trainerPreset(model, seed);
    s.trainer = std::make_unique<Trainer>(s.cfg);

    const std::string cache = strformat("snip_ckpt_%s_%lld.bin",
                                        model.name.c_str(),
                                        static_cast<long long>(
                                            warmup_steps));
    if (loadCheckpoint(*s.trainer, cache)) {
        inform("loaded cached checkpoint ", cache);
    } else {
        inform("warming up ", model.name, " for ", warmup_steps,
               " BF16 steps (cached to ", cache, ")");
        s.trainer->train(warmup_steps);
        if (!saveCheckpoint(*s.trainer, cache))
            warn("could not cache checkpoint to ", cache);
    }
    s.checkpoint = s.trainer->snapshot();
    s.suite = makeEvalSuite(s.trainer->corpus(), eval_items, seed ^ 0x99);
    return s;
}

/** The selection methods compared throughout the evaluation. */
inline const std::vector<std::string> &
allMethods()
{
    static const std::vector<std::string> m = {
        "SNIP",    "min-abs-err", "min-rel-err", "random0",
        "random1", "random2",     "E-layer-id",  "E-layer-type"};
    return m;
}

/**
 * Produce the scheme a method selects at the trainer's current state
 * for efficiency target @p target. SNIP/min-abs-err/min-rel-err run the
 * full Fig. 6 pipeline (stats + probes + ILP) with their respective
 * quality metrics; the rest are the heuristic baselines of Sec. 6.1.
 * Leaves model gradients dirty but weights untouched.
 */
inline PrecisionScheme
makeMethodScheme(Trainer &trainer, const std::string &method,
                 double target, uint64_t seed = 7)
{
    LlamaModel &model = trainer.model();
    const size_t n = static_cast<size_t>(model.registry().numLinear());
    const auto flops = model.registry().allFlopsPerToken();

    if (method == "BF16")
        return PrecisionScheme::uniform(n, Precision::BF16);
    if (method == "FP8")
        return PrecisionScheme::uniform(n, Precision::FP8);
    if (method == "FP4")
        return PrecisionScheme::uniform(n, Precision::FP4);
    if (startsWith(method, "random")) {
        uint64_t idx = method.size() > 6
                           ? static_cast<uint64_t>(method[6] - '0')
                           : 0;
        Rng rng(seed * 1000003 + idx);
        return randomScheme(flops, target, rng);
    }
    if (method == "E-layer-id") {
        return layerIdScheme(flops, target,
                             static_cast<int>(model.config().n_blocks));
    }
    if (method == "E-layer-type") {
        return layerTypeScheme(flops, target,
                               static_cast<int>(model.config().n_blocks));
    }

    QualityMetric metric = QualityMetric::Snip;
    if (method == "min-abs-err")
        metric = QualityMetric::AbsError;
    else if (method == "min-rel-err")
        metric = QualityMetric::RelError;
    else if (method != "SNIP")
        fatal("unknown method: ", method);

    SnipController::Config cc;
    cc.target_fp4_fraction = target;
    cc.metric = metric;
    SnipController controller(cc);
    Batch stats_batch =
        BatchIterator(trainer.corpus(), trainer.config().batch_size,
                      seed ^ 0x57A7)
            .next();
    SchemeSelection sel = controller.updateScheme(
        model, &trainer.optimizer(), stats_batch);
    return sel.scheme;
}

/** Losses + eval accuracy of resuming under one scheme. */
struct RunOutcome
{
    std::vector<double> losses;
    EvalResult eval;
    double final_loss = 0.0;
    double fp4_fraction = 0.0;
};

/** Restore the checkpoint, apply @p scheme, resume @p steps, eval. */
inline RunOutcome
runScheme(Setup &s, const PrecisionScheme &scheme, int64_t steps,
          bool do_eval = true)
{
    s.trainer->restore(s.checkpoint);
    s.trainer->applyScheme(scheme);
    RunOutcome out;
    out.losses = s.trainer->train(steps);
    out.final_loss = out.losses.empty() ? 0.0 : out.losses.back();
    FlopsModel fm(s.trainer->model().registry());
    out.fp4_fraction = fm.fp4Fraction(scheme);
    if (do_eval)
        out.eval = evaluate(s.trainer->model(), s.suite,
                            &s.trainer->pool());
    return out;
}

/** Mean of the last @p k entries (loss smoothing for noisy curves). */
inline double
tailMean(const std::vector<double> &v, size_t k)
{
    if (v.empty())
        return 0.0;
    k = std::min(k, v.size());
    double acc = 0.0;
    for (size_t i = v.size() - k; i < v.size(); ++i)
        acc += v[i];
    return acc / static_cast<double>(k);
}

/** Standard bench banner. */
inline void
banner(const char *id, const char *what)
{
    std::printf("=================================================="
                "====\n%s — %s\n"
                "=================================================="
                "====\n",
                id, what);
}

} // namespace bench
} // namespace snip

#endif // SNIP_BENCH_BENCH_COMMON_H
