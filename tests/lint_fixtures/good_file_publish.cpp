// Fixture: publishing through util/file_io is the approved path.
#include <string>
namespace fsio { bool writeFileAtomic(const std::string &, const std::string &, bool); }
bool save(const std::string &path) {
    return fsio::writeFileAtomic(path, "data", true);
}
