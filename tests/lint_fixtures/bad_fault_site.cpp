// Fixture: a fault site missing from the README table must fire.
bool SNIP_FAULT_POINT(const char *);
bool risky() { return SNIP_FAULT_POINT("bogus.site.not.in.readme"); }
