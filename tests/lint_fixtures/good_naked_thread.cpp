// Fixture: parallelism through the runtime primitives is approved.
namespace snip { namespace runtime {
void parallelFor(long, long, long, void (*)(long, long));
} }
void spawn() { snip::runtime::parallelFor(0, 8, 1, nullptr); }
