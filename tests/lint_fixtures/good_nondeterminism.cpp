// Fixture: seeded generators and steady_clock are the approved tools.
#include <chrono>
#include <random>
int seeded() { std::mt19937 gen(42); return static_cast<int>(gen()); }
long now() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
