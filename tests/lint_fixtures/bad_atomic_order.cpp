// Fixture: defaulted (seq_cst) atomic operations must fire.
#include <atomic>
std::atomic<int> g{0};
int bump() { g.store(1); return g.load(); }
