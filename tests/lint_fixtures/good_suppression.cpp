// Fixture: an adjacent allow() marker silences a rule, with rationale.
#include <atomic>
std::atomic<int> g{0};
// Benchmark-only counter; ordering is irrelevant by construction.
// snip-lint: allow(atomic-order)
int bump() { return g.load(); }
