// Fixture: ckpt.write is registered in the README grammar table.
bool SNIP_FAULT_POINT(const char *);
bool risky() { return SNIP_FAULT_POINT("ckpt.write"); }
