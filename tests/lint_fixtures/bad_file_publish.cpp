// Fixture: direct ofstream publishing must fire file-publish.
#include <fstream>
bool save(const char *path) {
    std::ofstream out(path);
    out << "data";
    return static_cast<bool>(out);
}
