// Fixture: mentioning getenv in comments or strings is fine.
// std::getenv is banned here; the string below is not code either.
const char *kDoc = "do not call getenv directly";
int threads() { return 1; }
