// Fixture: getenv outside runtime/env_config must fire env-access.
#include <cstdlib>
int threads() { return std::getenv("SNIP_THREADS") != nullptr; }
