// Fixture: rand() and wall clocks must fire nondeterminism.
#include <chrono>
#include <cstdlib>
int noisy() { return std::rand(); }
long now() {
    return std::chrono::system_clock::now().time_since_epoch().count();
}
