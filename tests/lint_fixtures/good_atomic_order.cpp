// Fixture: explicit orders (wrapped across lines) are approved.
#include <atomic>
std::atomic<int> g{0};
int bump() {
    g.store(1,
            std::memory_order_release); // publishes the flag
    return g.load(std::memory_order_acquire);
}
