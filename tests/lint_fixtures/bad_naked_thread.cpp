// Fixture: std::thread outside src/runtime/ must fire naked-thread.
#include <thread>
void spawn() { std::thread t([] {}); t.join(); }
