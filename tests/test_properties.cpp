/**
 * @file
 * Property-based sweeps across module boundaries:
 *   - quantizer algebraic invariants over formats x granularities,
 *   - attention/model well-formedness over architecture shapes,
 *   - divergence-analyzer invariants,
 *   - failure handling (corrupt checkpoints, rounding-knob restore).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/controller.h"
#include "quant/error_metrics.h"
#include "tensor/ops.h"
#include "train/checkpoint.h"
#include "train/presets.h"
#include "util/table.h"

namespace snip {
namespace {

// ---------------------------------------------------------------- quant

struct QuantCase
{
    const FloatFormat *fmt;
    Granularity gran;
    int block;
};

class QuantProperties : public ::testing::TestWithParam<QuantCase>
{
};

TEST_P(QuantProperties, Idempotent)
{
    auto [fmt, gran, block] = GetParam();
    Rng rng(1);
    Tensor t = Tensor::randn({13, 37}, rng, 2.0f);
    FakeQuantizer q(2);
    QuantConfig cfg{*fmt, {gran, block}, Rounding::Nearest};
    Tensor once = q.quantize(t, cfg);
    Tensor twice = q.quantize(once, cfg);
    // Quantizing an already-quantized tensor is a no-op (same regions
    // -> same scales -> every value already on the grid).
    EXPECT_LT(diffNorm(once, twice), 1e-5 * (1.0 + frobeniusNorm(once)));
}

TEST_P(QuantProperties, PowerOfTwoScaleEquivariant)
{
    // q(alpha x) = alpha q(x) for power-of-two alpha: scaling factors
    // absorb the factor exactly.
    auto [fmt, gran, block] = GetParam();
    Rng rng(3);
    Tensor t = Tensor::randn({8, 24}, rng);
    Tensor t4 = t;
    scaleInPlace(t4, 4.0f);
    FakeQuantizer q(4);
    QuantConfig cfg{*fmt, {gran, block}, Rounding::Nearest};
    Tensor a = q.quantize(t, cfg);
    Tensor b = q.quantize(t4, cfg);
    scaleInPlace(a, 4.0f);
    EXPECT_LT(diffNorm(a, b), 1e-5 * (1.0 + frobeniusNorm(b)));
}

TEST_P(QuantProperties, SignSymmetric)
{
    auto [fmt, gran, block] = GetParam();
    Rng rng(5);
    Tensor t = Tensor::randn({6, 18}, rng);
    Tensor neg = t;
    scaleInPlace(neg, -1.0f);
    FakeQuantizer q(6);
    QuantConfig cfg{*fmt, {gran, block}, Rounding::Nearest};
    Tensor a = q.quantize(t, cfg);
    Tensor b = q.quantize(neg, cfg);
    scaleInPlace(b, -1.0f);
    EXPECT_LT(diffNorm(a, b), 1e-6);
}

TEST_P(QuantProperties, ErrorBoundedByRelativeUlp)
{
    // With max-abs scaling, the relative error of a region is bounded
    // by ~2^-m per element (half ULP at the top of the range).
    auto [fmt, gran, block] = GetParam();
    Rng rng(7);
    Tensor t = Tensor::randn({16, 32}, rng);
    FakeQuantizer q(8);
    QuantConfig cfg{*fmt, {gran, block}, Rounding::Nearest};
    QuantError err = measureQuantError(t, cfg, q);
    // Loose format-derived bound (covers subnormal flushes too).
    const double bound = std::ldexp(1.0, -fmt->mantissa_bits);
    EXPECT_LT(err.rel_error, bound);
    EXPECT_GT(err.rel_error, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    FormatsByGranularity, QuantProperties,
    ::testing::Values(
        QuantCase{&fp4E2m1(), Granularity::Tensorwise, 0},
        QuantCase{&fp4E2m1(), Granularity::Rowwise, 0},
        QuantCase{&fp4E2m1(), Granularity::Tilewise, 16},
        QuantCase{&fp4E2m1(), Granularity::Blockwise, 8},
        QuantCase{&fp8E4m3(), Granularity::Tensorwise, 0},
        QuantCase{&fp8E4m3(), Granularity::Tilewise, 16},
        QuantCase{&fp8E5m2(), Granularity::Blockwise, 8},
        QuantCase{&fp6E3m2(), Granularity::Tilewise, 16}));

// ---------------------------------------------------------------- model

struct ShapeCase
{
    int64_t blocks, d_model, heads, kv_heads, ffn, seq, batch;
};

class ModelShapes : public ::testing::TestWithParam<ShapeCase>
{
};

TEST_P(ModelShapes, TrainStepIsFiniteAndLearns)
{
    auto p = GetParam();
    ModelConfig m;
    m.name = "shape_case";
    m.vocab_size = 64;
    m.n_blocks = p.blocks;
    m.d_model = p.d_model;
    m.n_heads = p.heads;
    m.n_kv_heads = p.kv_heads;
    m.ffn_hidden = p.ffn;
    m.max_seq = p.seq;
    TrainerConfig cfg = trainerPreset(m);
    cfg.corpus.seq_len = p.seq;
    cfg.batch_size = p.batch;
    Trainer trainer(cfg);
    auto losses = trainer.train(8);
    for (double l : losses)
        ASSERT_TRUE(std::isfinite(l));
    EXPECT_LT(losses.back(), losses.front() + 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, ModelShapes,
    ::testing::Values(ShapeCase{1, 8, 1, 1, 16, 8, 1},
                      ShapeCase{2, 16, 4, 2, 24, 16, 2},
                      ShapeCase{3, 24, 4, 1, 32, 12, 2},
                      ShapeCase{2, 16, 2, 2, 48, 24, 3}));

// ------------------------------------------------------------ divergence

TEST(DivergenceProperties, QualityScalesWithWeightDivScale)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(4);
    Batch batch = trainer.nextBatch();
    FlopsModel flops(trainer.model().registry());
    TrainingStats stats = collectTrainingStats(
        trainer.model(), &trainer.optimizer(), batch);
    ProbeResult bwd = runNoiseProbe(trainer.model(), batch, stats,
                                    ProbeKind::Backward);
    ProbeResult fwd = runNoiseProbe(trainer.model(), batch, stats,
                                    ProbeKind::Forward);
    DivergenceAnalyzer an(stats, &bwd, &fwd, flops);
    auto opts = makeOptionSet(OptionSetKind::Simple);

    DivergenceOptions d1;
    d1.weight_div_scale = 1.0;
    DivergenceOptions d2;
    d2.weight_div_scale = 2.0;
    DivergenceTable t1 = an.analyze(opts, d1);
    DivergenceTable t2 = an.analyze(opts, d2);
    for (int i = 0; i < t1.numLayers(); ++i) {
        const auto &c1 = t1.cell[static_cast<size_t>(i)][1];
        const auto &c2 = t2.cell[static_cast<size_t>(i)][1];
        EXPECT_NEAR(c2.quality - c1.quality, c1.weight_div, 1e-12);
        // loss_div and efficiency unchanged by the scale.
        EXPECT_EQ(c1.loss_div, c2.loss_div);
        EXPECT_EQ(c1.efficiency, c2.efficiency);
    }
}

TEST(DivergenceProperties, WithoutProbesWeightDivIsLocalOnly)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(4);
    Batch batch = trainer.nextBatch();
    FlopsModel flops(trainer.model().registry());
    TrainingStats stats = collectTrainingStats(
        trainer.model(), &trainer.optimizer(), batch);
    ProbeResult bwd = runNoiseProbe(trainer.model(), batch, stats,
                                    ProbeKind::Backward);
    ProbeResult fwd = runNoiseProbe(trainer.model(), batch, stats,
                                    ProbeKind::Forward);
    DivergenceAnalyzer with(stats, &bwd, &fwd, flops);
    DivergenceAnalyzer without(stats, nullptr, nullptr, flops);
    const LayerScheme fp4 = LayerScheme::uniform(Precision::FP4);
    for (int i = 0; i < trainer.model().registry().numLinear(); ++i) {
        // Propagated channels only add cost.
        EXPECT_GE(with.weightDivergence(i, fp4) + 1e-15,
                  without.weightDivergence(i, fp4));
    }
}

// --------------------------------------------------------------- failure

TEST(Failure, TruncatedCheckpointReturnsFalse)
{
    const std::string path = "test_truncated.bin";
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(2);
    ASSERT_TRUE(saveCheckpoint(trainer, path));
    // Truncate the file to half.
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
    out.close();
    Trainer fresh(cfg);
    EXPECT_FALSE(loadCheckpoint(fresh, path));
    std::remove(path.c_str());
}

TEST(Failure, NonCheckpointFileFailsCleanly)
{
    const std::string path = "test_not_ckpt.bin";
    ASSERT_TRUE(writeFile(path, "definitely not a checkpoint"));
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    CheckpointStatus status = CheckpointStatus::Ok;
    EXPECT_FALSE(loadCheckpoint(trainer, path, nullptr, &status));
    EXPECT_EQ(status, CheckpointStatus::BadMagic);
    std::remove(path.c_str());
}

TEST(Failure, InvalidModelConfigDies)
{
    ModelConfig m = tinyTestModel();
    m.d_model = 30; // not divisible by n_heads=2? 30/2=15 ok; use heads 4
    m.n_heads = 4;
    EXPECT_EXIT(m.validate(), ::testing::ExitedWithCode(1),
                "not divisible");
}

TEST(AblationKnob, Fp4GradRoundingOverrideAndRestore)
{
    EXPECT_EQ(fp4GradRounding(), Rounding::Stochastic);
    setFp4GradRounding(Rounding::Nearest);
    EXPECT_EQ(rolePolicy(Precision::FP4, TensorRole::OutputGrad)
                  .rounding,
              Rounding::Nearest);
    setFp4GradRounding(Rounding::Stochastic);
    EXPECT_EQ(rolePolicy(Precision::FP4, TensorRole::OutputGrad)
                  .rounding,
              Rounding::Stochastic);
}

TEST(Fp6Extension, UniformFp6SchemeTrainsAndSitsBetweenFp8AndFp4)
{
    // The paper's extensibility claim (Sec. 3.2): a new precision
    // level slots into the scheme machinery. FP6's quantization error
    // and throughput sit between FP8 and FP4.
    EXPECT_EQ(precisionBits(Precision::FP6), 6);
    EXPECT_STREQ(precisionName(Precision::FP6), "FP6");
    EXPECT_EQ(rolePolicy(Precision::FP6, TensorRole::Weight).format.name,
              "fp6_e3m2");
    EXPECT_GT(precisionThroughput(Precision::FP6),
              precisionThroughput(Precision::FP8));
    EXPECT_LT(precisionThroughput(Precision::FP6),
              precisionThroughput(Precision::FP4));

    Rng rng(21);
    Tensor t = Tensor::randn({16, 32}, rng);
    FakeQuantizer q(22);
    auto err = [&](Precision p) {
        return measureQuantError(
                   t, rolePolicy(p, TensorRole::Weight), q)
            .rel_error;
    };
    EXPECT_LT(err(Precision::FP8), err(Precision::FP6));
    EXPECT_LT(err(Precision::FP6), err(Precision::FP4));

    // A uniform-FP6 scheme trains without blowing up.
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.applyScheme(PrecisionScheme::uniform(
        static_cast<size_t>(trainer.model().registry().numLinear()),
        Precision::FP6));
    for (double l : trainer.train(6))
        EXPECT_TRUE(std::isfinite(l));
}

TEST(Fp6Extension, DominantPrecisionOrdersFp6BetweenFp8AndFp4)
{
    using P = Precision;
    EXPECT_EQ((LayerScheme{{P::FP8, P::FP6, P::FP8}}.dominant()),
              P::FP6);
    EXPECT_EQ((LayerScheme{{P::FP4, P::FP6, P::FP8}}.dominant()),
              P::FP4);
}

TEST(Failure, NonFiniteInputsDoNotCrashQuantizer)
{
    Tensor t(2, 4);
    t.at(0, 0) = std::numeric_limits<float>::infinity();
    t.at(0, 1) = -std::numeric_limits<float>::infinity();
    t.at(1, 2) = 1.5f;
    FakeQuantizer q(1);
    // Infinite max-abs makes the region scale zero-ish; quantizer must
    // still produce finite output for the finite entries.
    QuantConfig cfg{fp4E2m1(), {Granularity::Rowwise, 0},
                    Rounding::Nearest};
    Tensor out = q.quantize(t, cfg);
    EXPECT_TRUE(std::isfinite(out.at(1, 2)));
}

} // namespace
} // namespace snip
