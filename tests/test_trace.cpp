/**
 * @file
 * Span tracer contracts: the flight-recorder ring keeps the newest
 * spans across wraparound, the Chrome trace JSON export is well-formed
 * and non-empty, the warmed traced hot path (bare recording AND a
 * traced decode step) performs zero heap allocations (this binary
 * overrides the global allocation operators with counting wrappers,
 * like test_workspace.cpp), and SNIP_TRACE=off leaves training
 * bit-identical across thread counts.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <new>
#include <sstream>
#include <vector>

#include "nn/model.h"
#include "runtime/thread_pool.h"
#include "serve/kv_cache.h"
#include "telemetry/trace.h"
#include "tensor/gemm.h"
#include "testing_util.h"
#include "train/presets.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace {
std::atomic<int64_t> g_allocs{0};
}

// Counting allocation operators (all flavors the library can reach:
// plain, array, and the aligned forms the arena uses).
void *
operator new(size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t n)
{
    return ::operator new(n);
}

void *
operator new(size_t n, const std::nothrow_t &) noexcept
{
    // std::stable_sort's temporary buffer (and anything else using
    // the nothrow flavor) must allocate through the counting wrapper
    // too, or its storage would come from the default (possibly
    // sanitizer-intercepted) new yet be freed by our delete.
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n ? n : 1);
}

void *
operator new[](size_t n, const std::nothrow_t &tag) noexcept
{
    return ::operator new(n, tag);
}

void *
operator new(size_t n, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, static_cast<size_t>(align), n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](size_t n, std::align_val_t align)
{
    return ::operator new(n, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace snip {
namespace {

int64_t
allocDelta(const std::function<void()> &fn)
{
    const int64_t before = g_allocs.load();
    fn();
    return g_allocs.load() - before;
}

/** Restores whatever SNIP_TRACE asks for when a trace-reconfiguring
 *  test ends (disabled when the variable is unset). */
struct TraceGuard
{
    TraceGuard() = default;
    TraceGuard(const TraceGuard &) = delete;
    TraceGuard &operator=(const TraceGuard &) = delete;
    ~TraceGuard()
    {
        trace::configureFromSpec(std::getenv("SNIP_TRACE"));
    }
};

ModelConfig
microModel()
{
    ModelConfig m = tinyTestModel();
    m.n_blocks = 2;
    m.d_model = 16;
    m.ffn_hidden = 24;
    m.vocab_size = 32;
    m.n_heads = 4;
    m.n_kv_heads = 2;
    m.max_seq = 32;
    m.init_std = 0.3f;
    return m;
}

serve::KvCacheConfig
cacheConfigFor(const ModelConfig &m, int64_t max_seqs)
{
    serve::KvCacheConfig kc;
    kc.n_layers = m.n_blocks;
    kc.n_kv_heads = m.n_kv_heads;
    kc.head_dim = m.headDim();
    kc.page_tokens = 4;
    kc.max_seqs = max_seqs;
    kc.max_seq_tokens = m.max_seq;
    kc.max_pages = max_seqs * m.n_blocks * ((m.max_seq + 3) / 4);
    kc.mode = serve::KvCacheMode::Fp8;
    return kc;
}

TEST(Trace, ConfigureFromSpecParsing)
{
    TraceGuard trace_guard;
    EXPECT_TRUE(trace::configureFromSpec("off"));
    EXPECT_FALSE(trace::enabled());
    EXPECT_TRUE(trace::configureFromSpec("on"));
    EXPECT_TRUE(trace::enabled());
    EXPECT_TRUE(trace::configureFromSpec("json:some_path.json"));
    EXPECT_TRUE(trace::enabled());
    EXPECT_TRUE(trace::configureFromSpec(nullptr)); // unset = off
    EXPECT_FALSE(trace::enabled());
    EXPECT_FALSE(trace::configureFromSpec("bogus"));
    EXPECT_FALSE(trace::configureFromSpec("json:"));
}

TEST(Trace, RingWraparoundKeepsNewestSpans)
{
    TraceGuard trace_guard;
    trace::Config cfg;
    cfg.enabled = true;
    trace::configure(cfg);

    // Overfill this thread's ring; the oldest 100 spans must be the
    // ones overwritten (flight-recorder semantics: newest win).
    const int64_t total = trace::kRingCapacity + 100;
    for (int64_t i = 0; i < total; ++i)
        trace::record(trace::Category::Train, "wrap_probe", i, 1,
                      "wrap_i", i);

    const std::string doc = trace::renderJson();
    EXPECT_NE(doc.find("\"wrap_i\": " + std::to_string(total - 1)),
              std::string::npos)
        << "newest span missing after wraparound";
    EXPECT_NE(doc.find("\"wrap_i\": 100}"), std::string::npos)
        << "oldest surviving span missing";
    EXPECT_EQ(doc.find("\"wrap_i\": 42}"), std::string::npos)
        << "overwritten span still exported";
    EXPECT_EQ(doc.find("\"wrap_i\": 99}"), std::string::npos)
        << "overwritten span still exported";
}

TEST(Trace, JsonExportIsWellFormedAndNonEmpty)
{
    TraceGuard trace_guard;
    const std::string path = "test_trace_out.json";
    std::remove(path.c_str());

    // The spec string is exactly what SNIP_TRACE=json:<path> hands
    // over at startup.
    ASSERT_TRUE(trace::configureFromSpec(("json:" + path).c_str()));

    {
        trace::TraceScope outer(trace::Category::Train, "export_outer",
                                "step", 7);
        trace::TraceScope inner(trace::Category::Serve, "export_inner",
                                "id", 3, "tokens", 11);
    }
    trace::setCurrentThreadName("trace-test");
    ASSERT_TRUE(trace::flush());
    EXPECT_GT(trace::spansRecorded(), 0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();
    EXPECT_NE(doc.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"export_outer\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"export_inner\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"cat\": \"train\""), std::string::npos);
    EXPECT_NE(doc.find("\"cat\": \"serve\""), std::string::npos);
    EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
    for (const char *key : {"\"pid\":", "\"tid\":", "\"ts\":",
                            "\"dur\":", "\"args\":"})
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    std::remove(path.c_str());
}

TEST(Trace, WarmedHotPathAllocatesNothing)
{
    TraceGuard trace_guard;
    trace::Config cfg;
    cfg.enabled = true;
    trace::configure(cfg);

    // Warm-up creates this thread's ring; everything after is plain
    // stores into preallocated cells.
    trace::record(trace::Category::Gemm, "warm", 0, 1);

    const int64_t allocs = allocDelta([] {
        for (int i = 0; i < 20000; ++i) {
            trace::record(trace::Category::Gemm, "hot", i, 1, "m", i,
                          "n", i);
            trace::TraceScope scoped(trace::Category::Pool, "scoped",
                                     "n", i);
        }
    });
    EXPECT_EQ(allocs, 0);
}

TEST(Trace, WarmedTracedDecodeStepPerformsZeroHeapAllocations)
{
    TraceGuard trace_guard;
    PackModeGuard pack_guard;
    ASSERT_TRUE(setGemmPackModeByName("off"));
    GlobalPoolGuard pool_guard;
    runtime::setGlobalThreadCount(1); // inline path: no pool Jobs

    trace::Config cfg;
    cfg.enabled = true;
    trace::configure(cfg);

    ModelConfig mc = microModel();
    LlamaModel model(mc, 71);
    model.setScheme(PrecisionScheme::uniform(
        model.registry().numLinear(), Precision::FP8));

    serve::KvCache cache(cacheConfigFor(mc, /*max_seqs=*/2));
    const std::vector<int64_t> sids = {0, 1};
    cache.beginSequence(0);
    cache.beginSequence(1);
    KvCacheHandle h;
    h.cache = &cache;
    h.seq_ids = sids.data();
    h.count = 2;

    Rng rng(72);
    std::vector<int32_t> prompt;
    for (int64_t i = 0; i < 5; ++i)
        prompt.push_back(static_cast<int32_t>(
            rng.nextBelow(static_cast<uint64_t>(mc.vocab_size))));
    for (int64_t sid = 0; sid < 2; ++sid) {
        KvCacheHandle one;
        one.cache = &cache;
        one.seq_ids = &sids[static_cast<size_t>(sid)];
        one.count = 1;
        model.forward(prompt, 1, 5, ForwardMode::Prefill, one);
    }

    std::vector<int32_t> toks = {3, 4};
    std::vector<float> logits(static_cast<size_t>(2 * mc.vocab_size));

    // Warm up arenas, quantized-weight caches, and the trace ring.
    for (int i = 0; i < 3; ++i)
        model.decodeStep(toks.data(), 2, h, logits.data());

    // The GEMM/attention spans inside the decode step must not break
    // the serving zero-alloc contract.
    const int64_t allocs = allocDelta(
        [&] { model.decodeStep(toks.data(), 2, h, logits.data()); });
    EXPECT_EQ(allocs, 0);
}

TEST(Trace, DisabledModeIsFree)
{
    TraceGuard trace_guard;
    ASSERT_TRUE(trace::configureFromSpec("off"));

    const int64_t spans_before = trace::spansRecorded();
    const int64_t allocs = allocDelta([] {
        for (int i = 0; i < 1000; ++i) {
            trace::record(trace::Category::Serve, "off_probe", i, 1);
            trace::TraceScope scoped(trace::Category::Serve,
                                     "off_scoped");
        }
    });
    EXPECT_EQ(allocs, 0);
    EXPECT_EQ(trace::spansRecorded(), spans_before);
}

TEST(Trace, OffModeTrainingBitIdenticalAcrossThreadCounts)
{
    TraceGuard trace_guard;
    GlobalPoolGuard pool_guard;
    ASSERT_TRUE(trace::configureFromSpec("off"));

    TrainerConfig cfg = trainerPreset(tinyTestModel());
    std::vector<double> ref;
    for (int threads : {1, 2, 8}) {
        runtime::setGlobalThreadCount(threads);
        Trainer trainer(cfg);
        const std::vector<double> losses = trainer.train(6);
        if (ref.empty())
            ref = losses;
        else
            EXPECT_EQ(losses, ref)
                << "trace-off training diverged at " << threads
                << " threads";
    }
    ASSERT_FALSE(ref.empty());

    // Tracing observes, never steers: the traced run reproduces the
    // same bits (the spans only watch the phases).
    runtime::setGlobalThreadCount(2);
    trace::Config on;
    on.enabled = true;
    trace::configure(on);
    Trainer traced(cfg);
    EXPECT_EQ(traced.train(6), ref);
}

} // namespace
} // namespace snip
