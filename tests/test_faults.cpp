/**
 * @file
 * Fault-injection framework + crash/overload hardening contracts:
 * schedules parse and fire exactly as specified (and probabilistic
 * schedules are bit-reproducible), a disarmed fault point is free (no
 * allocations, training bit-identical across thread counts), every
 * checkpoint corruption fails the load cleanly without half-restoring,
 * torn writes recover through the rotation chain bit-exactly, the
 * solve cache salvages its validated prefix, a failed scheme solve
 * resolves as a skip, and the serve engine survives overload,
 * deadlines and injected allocation faults with zero page leaks.
 *
 * Like test_trace.cpp, this binary overrides the global allocation
 * operators with counting wrappers for the zero-overhead assertions.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <new>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/controller.h"
#include "ilp/solve_cache.h"
#include "nn/model.h"
#include "runtime/fault_injection.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"
#include "telemetry/telemetry.h"
#include "testing_util.h"
#include "train/checkpoint.h"
#include "train/presets.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace {
std::atomic<int64_t> g_allocs{0};
}

// Counting allocation operators (all flavors the library can reach).
void *
operator new(size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t n)
{
    return ::operator new(n);
}

void *
operator new(size_t n, const std::nothrow_t &) noexcept
{
    // std::stable_sort's temporary buffer allocates through this
    // flavor; without the override its storage would come from the
    // default (ASan-intercepted) new but be freed by our delete.
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n ? n : 1);
}

void *
operator new[](size_t n, const std::nothrow_t &tag) noexcept
{
    return ::operator new(n, tag);
}

void *
operator new(size_t n, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, static_cast<size_t>(align), n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](size_t n, std::align_val_t align)
{
    return ::operator new(n, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace snip {
namespace {

int64_t
allocDelta(const std::function<void()> &fn)
{
    const int64_t before = g_allocs.load();
    fn();
    return g_allocs.load() - before;
}

/** Restores whatever SNIP_FAULT asks for when a fault-arming test
 *  ends (disarmed when the variable is unset). */
struct FaultGuard
{
    FaultGuard() = default;
    FaultGuard(const FaultGuard &) = delete;
    FaultGuard &operator=(const FaultGuard &) = delete;
    ~FaultGuard()
    {
        fault::configureFromSpec(std::getenv("SNIP_FAULT"));
    }
};

bool
readFileBytes(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return false;
    out->assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
    return true;
}

bool
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return out.good();
}

void
removeCheckpointChain(const std::string &path)
{
    std::remove(path.c_str());
    for (int i = 1; i <= 8; ++i)
        std::remove((path + "." + std::to_string(i)).c_str());
    std::remove((path + ".tmp").c_str());
    std::remove(
        (path + ".tmp." + std::to_string(getpid())).c_str());
}

ModelConfig
microModel()
{
    ModelConfig m = tinyTestModel();
    m.n_blocks = 2;
    m.d_model = 16;
    m.ffn_hidden = 24;
    m.vocab_size = 32;
    m.n_heads = 4;
    m.n_kv_heads = 2;
    m.max_seq = 32;
    m.init_std = 0.3f;
    return m;
}

std::vector<int32_t>
somePrompt(int64_t n, int64_t vocab, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int32_t> t;
    for (int64_t i = 0; i < n; ++i)
        t.push_back(static_cast<int32_t>(
            rng.nextBelow(static_cast<uint64_t>(vocab))));
    return t;
}

// ------------------------------------------------------------ framework

TEST(Fault, SpecParsing)
{
    FaultGuard fault_guard;
    EXPECT_TRUE(fault::configureFromSpec("off"));
    EXPECT_FALSE(fault::enabled());
    EXPECT_TRUE(fault::configureFromSpec(nullptr));
    EXPECT_FALSE(fault::enabled());
    EXPECT_TRUE(fault::configureFromSpec("ckpt.write:3"));
    EXPECT_TRUE(fault::enabled());
    EXPECT_TRUE(fault::configureFromSpec(
        "ckpt.rename:2,kv.alloc:every-7,serve.admit:p=0.1@42"));
    EXPECT_TRUE(fault::enabled());

    // Malformed specs leave the installed schedule unchanged.
    EXPECT_FALSE(fault::configureFromSpec("no-trigger"));
    EXPECT_FALSE(fault::configureFromSpec("site:"));
    EXPECT_FALSE(fault::configureFromSpec(":3"));
    EXPECT_FALSE(fault::configureFromSpec("site:every-0"));
    EXPECT_FALSE(fault::configureFromSpec("site:p=1.5"));
    EXPECT_FALSE(fault::configureFromSpec("site:p=x"));
    EXPECT_FALSE(fault::configureFromSpec("site:p=nan"));
    EXPECT_FALSE(fault::configureFromSpec("site:p=-nan"));
    EXPECT_FALSE(fault::configureFromSpec("site:p=inf"));
    EXPECT_TRUE(fault::enabled());

    fault::reset();
    EXPECT_FALSE(fault::enabled());
    EXPECT_EQ(fault::totalInjected(), 0);
}

TEST(Fault, NthAndEveryKSchedulesAreExact)
{
    FaultGuard fault_guard;
    ASSERT_TRUE(fault::configureFromSpec("a:3,b:every-2"));

    std::vector<bool> a_fired, b_fired;
    for (int i = 0; i < 6; ++i) {
        a_fired.push_back(SNIP_FAULT_POINT("a"));
        b_fired.push_back(SNIP_FAULT_POINT("b"));
    }
    EXPECT_EQ(a_fired, (std::vector<bool>{
                           false, false, true, false, false, false}));
    EXPECT_EQ(b_fired, (std::vector<bool>{
                           false, true, false, true, false, true}));
    EXPECT_EQ(fault::siteHits("a"), 6);
    EXPECT_EQ(fault::siteInjected("a"), 1);
    EXPECT_EQ(fault::siteInjected("b"), 3);
    EXPECT_EQ(fault::totalInjected(), 4);

    // Unscheduled sites never fire.
    EXPECT_FALSE(SNIP_FAULT_POINT("unscheduled"));
    EXPECT_EQ(fault::siteInjected("unscheduled"), 0);
}

TEST(Fault, ProbabilisticScheduleIsBitReproducible)
{
    FaultGuard fault_guard;
    const char *spec = "p.site:p=0.4@1234";
    std::vector<bool> first, second;
    ASSERT_TRUE(fault::configureFromSpec(spec));
    for (int i = 0; i < 200; ++i)
        first.push_back(SNIP_FAULT_POINT("p.site"));
    ASSERT_TRUE(fault::configureFromSpec(spec));
    for (int i = 0; i < 200; ++i)
        second.push_back(SNIP_FAULT_POINT("p.site"));
    EXPECT_EQ(first, second)
        << "probabilistic schedule is not a pure function of the spec";

    // Sanity: p=0.4 over 200 hits fires sometimes, not always.
    const int64_t injected = fault::siteInjected("p.site");
    EXPECT_GT(injected, 0);
    EXPECT_LT(injected, 200);
}

TEST(Fault, DisarmedFaultPointIsFree)
{
    FaultGuard fault_guard;
    fault::reset();
    const int64_t allocs = allocDelta([] {
        for (int i = 0; i < 20000; ++i)
            if (SNIP_FAULT_POINT("hot.site"))
                std::abort(); // unreachable: nothing is armed
    });
    EXPECT_EQ(allocs, 0);
    EXPECT_EQ(fault::totalInjected(), 0);
}

TEST(Fault, OffModeTrainingBitIdenticalAcrossThreadCounts)
{
    FaultGuard fault_guard;
    GlobalPoolGuard pool_guard;
    fault::reset();

    TrainerConfig cfg = trainerPreset(tinyTestModel());
    std::vector<double> ref;
    for (int threads : {1, 2, 8}) {
        runtime::setGlobalThreadCount(threads);
        Trainer trainer(cfg);
        const std::vector<double> losses = trainer.train(6);
        if (ref.empty())
            ref = losses;
        else
            EXPECT_EQ(losses, ref)
                << "faults-off training diverged at " << threads
                << " threads";
    }
    ASSERT_FALSE(ref.empty());
}

// ----------------------------------------------------------- checkpoint

TEST(FaultCheckpoint, StatusReportsWhy)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    CheckpointStatus status = CheckpointStatus::Ok;
    EXPECT_FALSE(
        loadCheckpoint(trainer, "no_such_ckpt.bin", nullptr, &status));
    EXPECT_EQ(status, CheckpointStatus::FileMissing);
    EXPECT_STREQ(checkpointStatusName(status), "file_missing");
}

TEST(FaultCheckpoint, CorruptionMatrixNeverHalfRestores)
{
    const std::string path = "test_faults_corrupt.ckpt";
    removeCheckpointChain(path);
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(3);
    CheckpointWriteOptions opts;
    opts.durable = false;
    ASSERT_TRUE(saveCheckpoint(trainer, path, nullptr, nullptr, opts));
    std::string good;
    ASSERT_TRUE(readFileBytes(path, &good));
    const size_t size = good.size();
    ASSERT_GT(size, 64u);

    // Truncation at every region boundary: empty, mid-magic, header,
    // tensor payload, just before / inside the CRC footer.
    const size_t cuts[] = {0,        7,        16,       size / 4,
                           size / 2, size - 25, size - 24, size - 9,
                           size - 1};
    for (size_t cut : cuts) {
        ASSERT_TRUE(writeFileBytes(path, good.substr(0, cut)));
        Trainer fresh(cfg);
        CheckpointStatus status = CheckpointStatus::Ok;
        EXPECT_FALSE(loadCheckpoint(fresh, path, nullptr, &status))
            << "load survived truncation to " << cut << " bytes";
        EXPECT_NE(status, CheckpointStatus::Ok);
    }

    // Single-bit flips across the image: header, payload, footer.
    const size_t flips[] = {2,        9,        size / 3,
                            size / 2, size - 30, size - 4};
    for (size_t flip : flips) {
        std::string bad = good;
        bad[flip] = static_cast<char>(bad[flip] ^ 0x20);
        ASSERT_TRUE(writeFileBytes(path, bad));
        Trainer fresh(cfg);
        CheckpointStatus status = CheckpointStatus::Ok;
        EXPECT_FALSE(loadCheckpoint(fresh, path, nullptr, &status))
            << "load survived a bit flip at offset " << flip;
        EXPECT_NE(status, CheckpointStatus::Ok);
    }

    // Never half-restore: a trainer whose load failed trains exactly
    // like one that never saw the file.
    ASSERT_TRUE(
        writeFileBytes(path, good.substr(0, size / 2)));
    Trainer touched(cfg);
    EXPECT_FALSE(loadCheckpoint(touched, path));
    Trainer untouched(cfg);
    EXPECT_EQ(touched.train(3), untouched.train(3));

    std::string flipped = good;
    flipped[size / 2] = static_cast<char>(flipped[size / 2] ^ 0x01);
    ASSERT_TRUE(writeFileBytes(path, flipped));
    Trainer touched2(cfg);
    EXPECT_FALSE(loadCheckpoint(touched2, path));
    Trainer untouched2(cfg);
    EXPECT_EQ(touched2.train(3), untouched2.train(3));

    removeCheckpointChain(path);
}

TEST(FaultCheckpoint, TornWriteRecoversThroughRotationBitExactly)
{
    FaultGuard fault_guard;
    const std::string path = "test_faults_torn.ckpt";
    removeCheckpointChain(path);
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    CheckpointWriteOptions opts;
    opts.keep = 2;
    opts.durable = false;

    Trainer trainer(cfg);
    trainer.train(3);
    ASSERT_TRUE(saveCheckpoint(trainer, path, nullptr, nullptr, opts));
    trainer.train(2);
    ASSERT_TRUE(saveCheckpoint(trainer, path, nullptr, nullptr, opts));

    // The newest intact checkpoint (step 5) is the recovery target.
    Trainer ref(cfg);
    ASSERT_TRUE(loadCheckpoint(ref, path));
    const std::vector<double> expect = ref.train(4);

    // The third save is torn mid-publish: the final path holds a
    // truncated image, the previous checkpoint was already rotated.
    trainer.train(2);
    ASSERT_TRUE(fault::configureFromSpec("ckpt.torn:1"));
    CheckpointStatus status = CheckpointStatus::Ok;
    EXPECT_FALSE(
        saveCheckpoint(trainer, path, nullptr, &status, opts));
    EXPECT_EQ(status, CheckpointStatus::TornWrite);
    EXPECT_EQ(fault::siteInjected("ckpt.torn"), 1);
    fault::reset();

    // Direct load fails; the fallback walks to <path>.1 and the
    // resumed trajectory is bit-exact.
    Trainer direct(cfg);
    EXPECT_FALSE(loadCheckpoint(direct, path));
    Trainer recovered(cfg);
    std::string loaded;
    status = CheckpointStatus::Ok;
    ASSERT_TRUE(loadCheckpointWithFallback(recovered, path, nullptr,
                                           &status, 8, &loaded));
    EXPECT_EQ(status, CheckpointStatus::Ok);
    EXPECT_EQ(loaded, path + ".1");
    EXPECT_EQ(recovered.step(), 5);
    EXPECT_EQ(recovered.train(4), expect);

    removeCheckpointChain(path);
}

TEST(FaultCheckpoint, WriteFaultsLeavePreviousCheckpointLoadable)
{
    FaultGuard fault_guard;
    const std::string path = "test_faults_write.ckpt";
    removeCheckpointChain(path);
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(2);
    ASSERT_TRUE(saveCheckpoint(trainer, path));

    struct Case
    {
        const char *spec;
        CheckpointStatus expect;
        bool durable;
    };
    const Case cases[] = {
        {"ckpt.write:1", CheckpointStatus::WriteFailed, false},
        {"ckpt.fsync:1", CheckpointStatus::SyncFailed, true},
        {"ckpt.rename:1", CheckpointStatus::RenameFailed, false},
        {"ckpt.publish:1", CheckpointStatus::RenameFailed, false},
    };
    for (const Case &c : cases) {
        trainer.train(1);
        ASSERT_TRUE(fault::configureFromSpec(c.spec));
        CheckpointWriteOptions opts;
        opts.durable = c.durable;
        CheckpointStatus status = CheckpointStatus::Ok;
        EXPECT_FALSE(
            saveCheckpoint(trainer, path, nullptr, &status, opts))
            << c.spec;
        EXPECT_EQ(status, c.expect) << c.spec;
        fault::reset();

        // The previously published checkpoint survived untouched.
        Trainer fresh(cfg);
        ASSERT_TRUE(loadCheckpoint(fresh, path)) << c.spec;
        EXPECT_EQ(fresh.step(), 2) << c.spec;
    }
    removeCheckpointChain(path);
}

TEST(FaultCheckpoint, FailedPublishRollsBackRotation)
{
    FaultGuard fault_guard;
    const std::string path = "test_faults_publish.ckpt";
    removeCheckpointChain(path);
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    CheckpointWriteOptions opts;
    opts.keep = 2;
    opts.durable = false;

    Trainer trainer(cfg);
    trainer.train(2);
    ASSERT_TRUE(saveCheckpoint(trainer, path, nullptr, nullptr, opts));

    // The publish rename fails AFTER the live checkpoint was rotated
    // aside: the rollback must restore it, so a plain loadCheckpoint
    // of <path> (no fallback walker) still sees the step-2 state.
    trainer.train(3);
    ASSERT_TRUE(fault::configureFromSpec("ckpt.publish:1"));
    CheckpointStatus status = CheckpointStatus::Ok;
    EXPECT_FALSE(saveCheckpoint(trainer, path, nullptr, &status, opts));
    EXPECT_EQ(status, CheckpointStatus::RenameFailed);
    fault::reset();

    Trainer fresh(cfg);
    status = CheckpointStatus::Ok;
    ASSERT_TRUE(loadCheckpoint(fresh, path, nullptr, &status));
    EXPECT_EQ(status, CheckpointStatus::Ok);
    EXPECT_EQ(fresh.step(), 2);

    removeCheckpointChain(path);
}

// ---------------------------------------------------------- solve cache

TEST(FaultSolveCache, CorruptTailKeepsValidatedPrefix)
{
    const std::string path = "test_faults_solve_cache.bin";
    std::remove(path.c_str());
    {
        SolveCache cache(path);
        for (uint64_t key = 1; key <= 3; ++key) {
            IlpSolution s;
            s.feasible = true;
            s.choice = {0, 1, static_cast<int>(key)};
            s.objective = 1.0 + static_cast<double>(key);
            s.achieved_efficiency = 0.5;
            s.nodes_explored = 10;
            s.solve_seconds = 0.01;
            cache.insert(key, s);
        }
        ASSERT_EQ(cache.size(), 3u);
    }

    std::string bytes;
    ASSERT_TRUE(readFileBytes(path, &bytes));
    ASSERT_GT(bytes.size(), 16u);
    // Tear off the CRC trailer and part of the coldest entry: the
    // validated prefix (persisted most-recently-used first) survives.
    ASSERT_TRUE(
        writeFileBytes(path, bytes.substr(0, bytes.size() - 12)));
    SolveCache salvaged(path);
    EXPECT_GE(salvaged.size(), 1u);
    EXPECT_LT(salvaged.size(), 3u);
    IlpSolution out;
    EXPECT_TRUE(salvaged.lookup(3, &out)); // newest entry = first
    EXPECT_EQ(out.choice, (std::vector<int>{0, 1, 3}));

    std::remove(path.c_str());
}

TEST(FaultSolveCache, TruncatedHeaderLoadsAsEmpty)
{
    const std::string path = "test_faults_solve_cache_trunc.bin";
    std::remove(path.c_str());
    {
        SolveCache cache(path);
        IlpSolution s;
        s.feasible = true;
        s.choice = {1};
        s.objective = 2.0;
        cache.insert(7, s);
    }
    std::string bytes;
    ASSERT_TRUE(readFileBytes(path, &bytes));
    ASSERT_GT(bytes.size(), 24u);
    // Files torn inside magic+count+CRC (under 24 bytes) have no
    // entry region at all; every such prefix must load as empty
    // without reading past the buffer (the 16..23-byte range once
    // placed the CRC trailer boundary *before* the read cursor).
    for (size_t n = 0; n < 24; ++n) {
        ASSERT_TRUE(writeFileBytes(path, bytes.substr(0, n)));
        SolveCache torn(path);
        EXPECT_EQ(torn.size(), 0u) << "prefix of " << n << " bytes";
    }
    std::remove(path.c_str());
}

TEST(FaultSolveCache, InjectedLoadFaultDegradesToSalvage)
{
    FaultGuard fault_guard;
    const std::string path = "test_faults_solve_cache2.bin";
    std::remove(path.c_str());
    {
        SolveCache cache(path);
        IlpSolution s;
        s.feasible = true;
        s.choice = {1};
        s.objective = 2.0;
        cache.insert(7, s);
    }
    ASSERT_TRUE(fault::configureFromSpec("solve_cache.load:1"));
    SolveCache reloaded(path); // ctor load sees the flipped bit
    EXPECT_EQ(fault::siteInjected("solve_cache.load"), 1);
    EXPECT_LE(reloaded.size(), 1u); // degraded, never crashed
    fault::reset();
    std::remove(path.c_str());
}

// --------------------------------------------------------- scheme solve

TEST(FaultScheme, FailedSolveResolvesAsSkipInline)
{
    FaultGuard fault_guard;
    ASSERT_TRUE(fault::configureFromSpec("scheme.solve:1"));
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    SnipController::Config cc;
    cc.update_interval = 4;
    cc.update_at_start = true;
    SnipController controller(cc);
    // Update 1 (step 0) hits the fault and skips; because no scheme
    // was ever selected, the start trigger re-arms and the next
    // update solves normally. Training never stops.
    for (int64_t i = 0; i < 6; ++i)
        trainer.trainStep(&controller);
    EXPECT_EQ(controller.totals().skipped, 1);
    EXPECT_GE(controller.totals().updates, 1);
    EXPECT_TRUE(controller.hasSelection());
    fault::reset();
}

TEST(FaultScheme, FailedAsyncSolveIsContainedToASkip)
{
    FaultGuard fault_guard;
    ASSERT_TRUE(fault::configureFromSpec("scheme.solve:1"));
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    SnipController::Config cc;
    cc.update_interval = 3;
    cc.update_at_start = true;
    cc.async = true;
    cc.apply_delay = 1;
    SnipController controller(cc);
    // The worker's solve throws; the guarded runner contains it, the
    // apply boundary resolves as a skip, later updates succeed.
    for (int64_t i = 0; i < 8; ++i)
        trainer.trainStep(&controller);
    EXPECT_EQ(controller.totals().skipped, 1);
    EXPECT_GE(controller.totals().updates, 1);
    fault::reset();
}

// -------------------------------------------------------------- serving

TEST(FaultServe, StructuralRejectsCarryStatus)
{
    GlobalPoolGuard pool_guard;
    runtime::setGlobalThreadCount(1);
    ModelConfig mc = microModel();
    LlamaModel model(mc, 91);
    model.setScheme(PrecisionScheme::uniform(
        model.registry().numLinear(), Precision::FP8));

    serve::EngineConfig ec;
    ec.max_concurrency = 2;
    ec.kv_page_tokens = 4;
    ec.max_pages = mc.n_blocks * 3; // 12 tokens per sequence, max
    serve::Engine engine(model, ec);

    serve::RequestQueue queue;
    serve::ServeRequest good;
    good.id = 0;
    good.prompt = somePrompt(4, mc.vocab_size, 92);
    good.max_new_tokens = 4;
    queue.push(good);
    serve::ServeRequest empty;
    empty.id = 1;
    queue.push(empty);
    serve::ServeRequest too_long;
    too_long.id = 2;
    too_long.prompt = somePrompt(4, mc.vocab_size, 93);
    too_long.max_new_tokens = mc.max_seq;
    queue.push(too_long);
    serve::ServeRequest never_fits;
    never_fits.id = 3;
    never_fits.prompt = somePrompt(8, mc.vocab_size, 94);
    never_fits.max_new_tokens = 12; // 20 tokens > 12-token pool
    queue.push(never_fits);

    auto results = engine.run(queue);
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].status, serve::RequestStatus::Ok);
    EXPECT_EQ(results[0].tokens.size(), 4u);
    EXPECT_EQ(results[1].status,
              serve::RequestStatus::RejectedEmptyPrompt);
    EXPECT_EQ(results[2].status, serve::RequestStatus::RejectedTooLong);
    EXPECT_EQ(results[3].status,
              serve::RequestStatus::RejectedPoolTooSmall);
    EXPECT_EQ(engine.stats().rejected, 3);
    EXPECT_EQ(engine.kvCache().pagesInUse(), 0);
}

TEST(FaultServe, KvAllocFaultPreemptsNewestDeterministically)
{
    FaultGuard fault_guard;
    GlobalPoolGuard pool_guard;
    runtime::setGlobalThreadCount(1);
    ModelConfig mc = microModel();
    LlamaModel model(mc, 95);
    model.setScheme(PrecisionScheme::uniform(
        model.registry().numLinear(), Precision::FP8));

    serve::EngineConfig ec;
    ec.max_concurrency = 2;
    ec.kv_page_tokens = 4;

    auto makeQueue = [&] {
        serve::RequestQueue queue;
        for (int64_t id = 0; id < 2; ++id) {
            serve::ServeRequest r;
            r.id = id;
            r.prompt = somePrompt(5, mc.vocab_size,
                                  96 + static_cast<uint64_t>(id));
            r.max_new_tokens = 8;
            queue.push(r);
        }
        return queue;
    };

    auto runOnce = [&] {
        serve::Engine engine(model, ec);
        auto queue = makeQueue();
        auto results = engine.run(queue);
        EXPECT_EQ(engine.kvCache().pagesInUse(), 0);
        EXPECT_EQ(engine.stats().preempted, 1);
        return results;
    };

    ASSERT_TRUE(fault::configureFromSpec("kv.alloc:1"));
    auto first = runOnce();
    ASSERT_EQ(first.size(), 2u);
    // The NEWEST admission (request 1, admitted second) is the victim;
    // the oldest runs to completion.
    EXPECT_EQ(first[0].status, serve::RequestStatus::Ok);
    EXPECT_EQ(first[0].tokens.size(), 8u);
    EXPECT_EQ(first[1].status, serve::RequestStatus::Preempted);

    // The same schedule replays to the same bits.
    ASSERT_TRUE(fault::configureFromSpec("kv.alloc:1"));
    auto second = runOnce();
    ASSERT_EQ(second.size(), 2u);
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].status, second[i].status);
        EXPECT_EQ(first[i].tokens, second[i].tokens);
    }
    fault::reset();
}

TEST(FaultServe, DeadlinesDrainCleanly)
{
    GlobalPoolGuard pool_guard;
    runtime::setGlobalThreadCount(1);
    ModelConfig mc = microModel();
    LlamaModel model(mc, 97);
    model.setScheme(PrecisionScheme::uniform(
        model.registry().numLinear(), Precision::FP8));

    serve::SyntheticStreamConfig sc;
    sc.n_requests = 6;
    sc.seed = 98;
    sc.vocab = mc.vocab_size;
    sc.min_prompt = 4;
    sc.max_prompt = 8;
    sc.min_new = 4;
    sc.max_new = 8;
    sc.deadline_s = 1e-9; // expires before any service completes

    serve::EngineConfig ec;
    ec.max_concurrency = 2;
    ec.kv_page_tokens = 4;
    serve::Engine engine(model, ec);
    auto queue = serve::RequestQueue::synthetic(sc);
    auto results = engine.run(queue);

    ASSERT_EQ(results.size(), 6u);
    for (const serve::RequestResult &r : results)
        EXPECT_TRUE(r.status == serve::RequestStatus::Ok ||
                    r.status == serve::RequestStatus::Expired)
            << serve::requestStatusName(r.status);
    EXPECT_GT(engine.stats().expired, 0);
    EXPECT_EQ(engine.kvCache().pagesInUse(), 0);
}

TEST(FaultServe, SoakUnderFaultScheduleDrainsWithZeroPageLeak)
{
    FaultGuard fault_guard;
    GlobalPoolGuard pool_guard;
    runtime::setGlobalThreadCount(1);
    ModelConfig mc = microModel();
    LlamaModel model(mc, 99);
    model.setScheme(PrecisionScheme::uniform(
        model.registry().numLinear(), Precision::FP8));

    serve::SyntheticStreamConfig sc;
    sc.n_requests = 20;
    sc.seed = 100;
    sc.vocab = mc.vocab_size;
    sc.min_prompt = 4;
    sc.max_prompt = 12;
    sc.min_new = 4;
    sc.max_new = 10;
    sc.arrival_rate = 500.0;
    sc.deadline_s = 0.25;

    serve::EngineConfig ec;
    ec.max_concurrency = 3;
    ec.kv_page_tokens = 4;
    ASSERT_TRUE(fault::configureFromSpec(
        "kv.alloc:every-3,serve.admit:every-4"));
    serve::Engine engine(model, ec);
    auto queue = serve::RequestQueue::synthetic(sc);
    auto results = engine.run(queue);
    fault::reset();

    // Every request got exactly one result, the engine drained, and
    // the page accounting is back to zero.
    ASSERT_EQ(results.size(), 20u);
    for (size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].id, static_cast<int64_t>(i));
    EXPECT_EQ(engine.kvCache().pagesInUse(), 0);
    EXPECT_GT(engine.stats().admission_retries, 0);
}

// ------------------------------------------------------------ telemetry

TEST(FaultTelemetry, ExportFaultFailsFlushCleanly)
{
    FaultGuard fault_guard;
    const std::string path = "test_faults_telemetry.json";
    std::remove(path.c_str());
    telemetry::Config tc;
    tc.enabled = true;
    tc.json_path = path;
    telemetry::configure(tc);
    telemetry::stepBoundary(0);

    ASSERT_TRUE(fault::configureFromSpec("telemetry.export:1"));
    EXPECT_FALSE(telemetry::flush());
    fault::reset();
    EXPECT_TRUE(telemetry::flush());
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
    in.close();

    telemetry::configureFromSpec(std::getenv("SNIP_TELEMETRY")
                                     ? std::getenv("SNIP_TELEMETRY")
                                     : "off");
    std::remove(path.c_str());
}

} // namespace
} // namespace snip
