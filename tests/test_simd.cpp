/**
 * @file
 * SIMD backend dispatch and scalar-vs-AVX2 agreement.
 *
 * Contracts under test (simd/kernels.h):
 *   - SNIP_SIMD forces a backend and activeBackendName() reports it;
 *   - quantize / bf16-round / max-abs agree bit for bit across
 *     backends (asserted exactly, which is stronger than the 1-ULP
 *     requirement);
 *   - GEMM agrees across backends within a relative-error bound and
 *     is bit-identical across 1/2/8 threads within each backend.
 * AVX2 comparisons skip with a message on hosts without AVX2+FMA.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "quant/codec.h"
#include "quant/error_metrics.h"
#include "quant/quantizer.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "testing_util.h"
#include "util/rng.h"

namespace snip {
namespace {

/** Restores the pre-test SNIP_SIMD value (and the dispatch decision
 *  derived from it) when a test ends, so an externally forced backend
 *  — e.g. CI's `SNIP_SIMD=scalar ctest -L simd` — stays forced for
 *  the tests that follow. */
struct BackendGuard
{
    BackendGuard()
    {
        const char *v = std::getenv("SNIP_SIMD");
        had_value_ = v != nullptr;
        if (had_value_)
            saved_ = v;
    }
    BackendGuard(const BackendGuard &) = delete;
    BackendGuard &operator=(const BackendGuard &) = delete;
    ~BackendGuard()
    {
        if (had_value_)
            setenv("SNIP_SIMD", saved_.c_str(), 1);
        else
            unsetenv("SNIP_SIMD");
        simd::reinitFromEnv();
    }

  private:
    bool had_value_ = false;
    std::string saved_;
};

#define SKIP_WITHOUT_AVX2()                                               \
    do {                                                                  \
        if (!simd::cpuSupportsAvx2())                                     \
            GTEST_SKIP() << "AVX2+FMA not available on this host/build"; \
    } while (0)

TEST(SimdDispatch, EnvForcesScalar)
{
    BackendGuard guard;
    setenv("SNIP_SIMD", "scalar", 1);
    simd::reinitFromEnv();
    EXPECT_STREQ(simd::activeBackendName(), "scalar");
    EXPECT_EQ(simd::activeBackend(), simd::Backend::Scalar);
}

TEST(SimdDispatch, EnvForcesAvx2)
{
    SKIP_WITHOUT_AVX2();
    BackendGuard guard;
    setenv("SNIP_SIMD", "avx2", 1);
    simd::reinitFromEnv();
    EXPECT_STREQ(simd::activeBackendName(), "avx2");
    EXPECT_EQ(simd::activeBackend(), simd::Backend::Avx2);
}

TEST(SimdDispatch, AutoPicksBestAvailable)
{
    BackendGuard guard;
    setenv("SNIP_SIMD", "auto", 1);
    simd::reinitFromEnv();
    EXPECT_STREQ(simd::activeBackendName(),
                 simd::cpuSupportsAvx2() ? "avx2" : "scalar");
}

TEST(SimdDispatch, SetBackendByName)
{
    BackendGuard guard;
    EXPECT_TRUE(simd::setBackendByName("scalar"));
    EXPECT_STREQ(simd::activeBackendName(), "scalar");
    EXPECT_FALSE(simd::setBackendByName("neon"));
    EXPECT_STREQ(simd::activeBackendName(), "scalar");
    EXPECT_EQ(simd::setBackendByName("avx2"),
              simd::cpuSupportsAvx2());
}

/** Values exercising every quantizer branch: normals across binades,
 *  subnormals, ties, saturation, zeros, and non-finites. */
std::vector<float>
adversarialValues(const FloatFormat &fmt)
{
    const float max_v = static_cast<float>(fmt.maxValue());
    const float min_n = static_cast<float>(fmt.minNormal());
    const float min_s = static_cast<float>(fmt.minSubnormal());
    std::vector<float> vals = {
        0.0f,
        -0.0f,
        min_s * 0.25f,
        -min_s * 0.25f,
        min_s * 0.5f, // tie on the subnormal grid
        min_s,
        min_n * 0.999f,
        min_n,
        max_v * 0.999f,
        max_v,
        -max_v,
        max_v * 1.5f,
        -max_v * 1.5f,
        std::numeric_limits<float>::infinity(),
        -std::numeric_limits<float>::infinity(),
        std::numeric_limits<float>::quiet_NaN(),
        std::numeric_limits<float>::denorm_min(),
        std::numeric_limits<float>::max(),
    };
    // Dense coverage of the grid, including exact ties: odd multiples
    // of half a ULP land exactly between grid points.
    Rng rng(7);
    for (int i = 0; i < 4000; ++i) {
        float v = static_cast<float>(rng.nextGaussian() *
                                     std::pow(10.0, rng.nextRange(-9, 9)));
        vals.push_back(v);
        double ulp = ulpAt(v, fmt);
        vals.push_back(static_cast<float>(
            std::fabs(static_cast<double>(v)) + 0.5 * ulp));
    }
    return vals;
}

TEST(SimdQuantize, BitExactAcrossBackendsEveryFormat)
{
    SKIP_WITHOUT_AVX2();
    const FloatFormat *formats[] = {&fp4E2m1(),  &fp6E3m2(), &fp8E4m3(),
                                    &fp8E5m2(),  &bf16(),    &fp16()};
    for (const FloatFormat *fmt : formats) {
        std::vector<float> vals = adversarialValues(*fmt);
        const QuantGrid grid = quantGrid(*fmt);
        for (float scale : {1.0f, 0.731f, 512.0f}) {
            std::vector<float> a = vals, b = vals;
            const float inv = 1.0f / scale;
            simd::scalarKernels().quantizeNearest(
                a.data(), static_cast<int64_t>(a.size()), *fmt, grid,
                scale, inv);
            simd::avx2Kernels().quantizeNearest(
                b.data(), static_cast<int64_t>(b.size()), *fmt, grid,
                scale, inv);
            ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                                     a.size() * sizeof(float)))
                << fmt->name << " scale=" << scale;
        }
    }
}

TEST(SimdQuantize, Bf16RoundBitExactAcrossBackends)
{
    SKIP_WITHOUT_AVX2();
    std::vector<float> vals = adversarialValues(bf16());
    std::vector<float> a = vals, b = vals;
    simd::scalarKernels().bf16Round(a.data(),
                                    static_cast<int64_t>(a.size()));
    simd::avx2Kernels().bf16Round(b.data(),
                                  static_cast<int64_t>(b.size()));
    EXPECT_EQ(0,
              std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
}

TEST(SimdQuantize, MaxAbsBitExactAcrossBackends)
{
    SKIP_WITHOUT_AVX2();
    Rng rng(17);
    for (int64_t n : {0, 1, 7, 8, 9, 1000}) {
        std::vector<float> v(static_cast<size_t>(n));
        for (auto &x : v)
            x = static_cast<float>(rng.nextGaussian() * 100.0);
        if (n > 3)
            v[3] = std::numeric_limits<float>::quiet_NaN();
        float s = simd::scalarKernels().maxAbs(v.data(), n);
        float a = simd::avx2Kernels().maxAbs(v.data(), n);
        EXPECT_EQ(s, a) << "n=" << n;
    }
}

TEST(SimdQuantize, FakeQuantizerEndToEndMatchesAt128Threads)
{
    SKIP_WITHOUT_AVX2();
    BackendGuard backend_guard;
    GlobalPoolGuard pool_guard;
    Rng rng(5);
    Tensor t = Tensor::randn({130, 257}, rng, 3.0f);
    const QuantConfig cfg{fp4E2m1(),
                          {Granularity::Tilewise, 128},
                          Rounding::Nearest};

    setenv("SNIP_SIMD", "scalar", 1);
    simd::reinitFromEnv();
    runtime::setGlobalThreadCount(1);
    FakeQuantizer qs(9);
    const Tensor ref = qs.quantize(t, cfg);

    for (const char *backend : {"scalar", "avx2"}) {
        setenv("SNIP_SIMD", backend, 1);
        simd::reinitFromEnv();
        for (int threads : {1, 2, 8}) {
            runtime::setGlobalThreadCount(threads);
            FakeQuantizer q(9);
            EXPECT_TRUE(q.quantize(t, cfg) == ref)
                << backend << " @ " << threads << " threads";
        }
    }
}

TEST(SimdGemm, BackendsAgreeWithinTolerance)
{
    SKIP_WITHOUT_AVX2();
    BackendGuard backend_guard;
    GlobalPoolGuard pool_guard;
    // Shapes straddle the 64-wide block and the 2x4 register tile to
    // exercise every remainder path.
    const int64_t m = 131, n = 97, k = 71;
    Rng rng(23);
    Tensor a_nt = Tensor::randn({m, k}, rng);
    Tensor b_nt = Tensor::randn({n, k}, rng);
    Tensor a_nn = Tensor::randn({m, k}, rng);
    Tensor b_nn = Tensor::randn({k, n}, rng);
    Tensor a_tn = Tensor::randn({k, m}, rng);
    Tensor b_tn = Tensor::randn({k, n}, rng);

    auto compute = [&]() {
        std::vector<Tensor> r;
        r.push_back(matmulNT(a_nt, b_nt));
        r.push_back(matmulNN(a_nn, b_nn));
        r.push_back(matmulTN(a_tn, b_tn));
        return r;
    };

    setenv("SNIP_SIMD", "scalar", 1);
    simd::reinitFromEnv();
    runtime::setGlobalThreadCount(1);
    const std::vector<Tensor> ref = compute();

    for (const char *backend : {"scalar", "avx2"}) {
        setenv("SNIP_SIMD", backend, 1);
        simd::reinitFromEnv();
        runtime::setGlobalThreadCount(1);
        const std::vector<Tensor> base = compute();
        // Within one backend: bit-identical for any thread count.
        for (int threads : {2, 8}) {
            runtime::setGlobalThreadCount(threads);
            const std::vector<Tensor> got = compute();
            for (size_t v = 0; v < got.size(); ++v) {
                EXPECT_TRUE(got[v] == base[v])
                    << backend << " variant " << v << " @ " << threads
                    << " threads";
            }
        }
        // Across backends: low-order bits may differ (FMA, lane
        // order); bound the relative Frobenius error.
        for (size_t v = 0; v < base.size(); ++v) {
            EXPECT_LT(diffNorm(base[v], ref[v]),
                      1e-6 * (1.0 + frobeniusNorm(ref[v])))
                << backend << " variant " << v;
        }
    }
}

TEST(SimdGemm, AccumulateAgreesAcrossBackends)
{
    SKIP_WITHOUT_AVX2();
    BackendGuard guard;
    const int64_t m = 66, n = 35, k = 19;
    Rng rng(29);
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({n, k}, rng);
    Tensor init = Tensor::randn({m, n}, rng);

    Tensor cs = init;
    setenv("SNIP_SIMD", "scalar", 1);
    simd::reinitFromEnv();
    gemmNT(a.data(), b.data(), cs.data(), m, n, k, /*accumulate=*/true);

    Tensor ca = init;
    setenv("SNIP_SIMD", "avx2", 1);
    simd::reinitFromEnv();
    gemmNT(a.data(), b.data(), ca.data(), m, n, k, /*accumulate=*/true);

    EXPECT_LT(diffNorm(cs, ca), 1e-6 * (1.0 + frobeniusNorm(cs)));
}

/** Pack one full operand with a backend table. */
std::vector<float>
packWith(const simd::KernelTable &kt, bool pack_a, const Tensor &src,
         bool k_major, int64_t extent, int64_t k,
         const simd::PackQuant *pq)
{
    const int64_t strip = pack_a ? simd::kGemmPackMR : simd::kGemmPackNR;
    // +8: PackAFn transpose-store headroom (simd/kernels.h).
    std::vector<float> out(static_cast<size_t>(
                               simd::packStrips(extent, strip) * strip *
                                   k +
                               8),
                           -7.5f);
    const int64_t ld = k_major ? extent : k;
    if (pack_a)
        kt.packA(src.data(), ld, k_major, out.data(), 0, extent, k, pq);
    else
        kt.packB(src.data(), ld, k_major, out.data(), 0, extent, extent,
                 k, pq);
    out.resize(static_cast<size_t>(
        simd::packStrips(extent, strip) * strip * k));
    return out;
}

TEST(SimdPack, PackKernelsBitExactAcrossBackends)
{
    // Packing is copies plus the grid-snap quantizer, both of which
    // the backends must reproduce bit for bit — so packed panels are
    // asserted EXACTLY equal, fused quantization included, for both
    // orientations of both operands at ragged extents.
    SKIP_WITHOUT_AVX2();
    const int64_t ext = 45, k = 147; // ragged strips, ragged regions
    Rng rng(31);
    const QuantConfig cfg =
        rolePolicy(Precision::FP4, TensorRole::Weight);
    const QuantGrid grid = quantGrid(cfg.format);
    for (bool pack_a : {true, false}) {
        for (bool k_major : {true, false}) {
            Tensor src = k_major
                             ? Tensor::randn({k, ext}, rng)
                             : Tensor::randn({ext, k}, rng);
            const int64_t rows = k_major ? k : ext;
            const int64_t cols = k_major ? ext : k;
            // Region scales shared by both backends (their maxAbs
            // kernels already agree bitwise).
            const int64_t rb = std::min<int64_t>(128, rows);
            const int64_t cb = std::min<int64_t>(128, cols);
            const int64_t ncr = (cols + cb - 1) / cb;
            const int64_t nrr = (rows + rb - 1) / rb;
            std::vector<float> scale, inv;
            for (int64_t r = 0; r < nrr; ++r) {
                for (int64_t c = 0; c < ncr; ++c) {
                    scale.push_back(1.5f + static_cast<float>(r + c));
                    inv.push_back(1.0f / scale.back());
                }
            }
            const simd::PackQuant pq{&cfg.format, &grid,
                                     scale.data(),  inv.data(),
                                     rb,            cb,
                                     ncr};
            for (const simd::PackQuant *q :
                 {static_cast<const simd::PackQuant *>(nullptr), &pq}) {
                auto s = packWith(simd::scalarKernels(), pack_a, src,
                                  k_major, ext, k, q);
                auto v = packWith(simd::avx2Kernels(), pack_a, src,
                                  k_major, ext, k, q);
                EXPECT_EQ(s, v)
                    << (pack_a ? "packA" : "packB")
                    << (k_major ? " k_major" : " row_major")
                    << (q ? " quantized" : " plain");
            }
        }
    }
}

TEST(SimdPack, PackedBlockGemmBackendsAgreeWithinTolerance)
{
    SKIP_WITHOUT_AVX2();
    const int64_t mb = 45, n = 39, k = 83;
    Rng rng(37);
    Tensor a = Tensor::randn({mb, k}, rng);
    Tensor b = Tensor::randn({n, k}, rng);
    auto ap = packWith(simd::scalarKernels(), true, a, false, mb, k,
                       nullptr);
    auto bp = packWith(simd::scalarKernels(), false, b, false, n, k,
                       nullptr);
    Tensor cs(mb, n), cv(mb, n);
    simd::scalarKernels().gemmPackedBlock(ap.data(), bp.data(),
                                          cs.data(), n, mb, n, k);
    simd::avx2Kernels().gemmPackedBlock(ap.data(), bp.data(), cv.data(),
                                        n, mb, n, k);
    EXPECT_LT(diffNorm(cs, cv), 1e-6 * (1.0 + frobeniusNorm(cs)));
}

/** Reference transcription of the historical open-coded attention
 *  softmax loops (nn/attention.cpp pre-batching): the semantics both
 *  backends' fused kernels must reproduce bit for bit. */
void
refAttnSoftmaxFwd(float *prob, int64_t seq, float scale)
{
    for (int64_t i = 0; i < seq; ++i) {
        float *row = prob + i * seq;
        float maxv = -1e30f;
        for (int64_t j = 0; j <= i; ++j) {
            row[j] *= scale;
            maxv = std::max(maxv, row[j]);
        }
        double denom = 0.0;
        for (int64_t j = 0; j <= i; ++j) {
            row[j] = std::exp(row[j] - maxv);
            denom += row[j];
        }
        const float inv = static_cast<float>(1.0 / std::max(denom, 1e-30));
        for (int64_t j = 0; j <= i; ++j)
            row[j] *= inv;
        for (int64_t j = i + 1; j < seq; ++j)
            row[j] = 0.0f;
    }
}

void
refAttnSoftmaxBwd(const float *prob, const float *dp, float *ds,
                  int64_t seq, float scale)
{
    for (int64_t i = 0; i < seq; ++i) {
        const float *prow = prob + i * seq;
        const float *dprow = dp + i * seq;
        float *dsrow = ds + i * seq;
        double dot = 0.0;
        for (int64_t j = 0; j <= i; ++j)
            dot += static_cast<double>(dprow[j]) * prow[j];
        for (int64_t j = 0; j < seq; ++j)
            dsrow[j] = j <= i ? prow[j] *
                                    (dprow[j] - static_cast<float>(dot)) *
                                    scale
                              : 0.0f;
    }
}

TEST(SimdAttnSoftmax, FwdBitExactAcrossBackendsAndVsReference)
{
    Rng rng(51);
    for (int64_t seq : {1, 2, 7, 8, 9, 16, 33, 64}) {
        const float scale =
            1.0f / std::sqrt(static_cast<float>(seq));
        std::vector<float> scores(static_cast<size_t>(seq * seq));
        for (auto &x : scores)
            x = static_cast<float>(rng.nextGaussian() * 3.0);
        std::vector<float> ref = scores, sc = scores;
        refAttnSoftmaxFwd(ref.data(), seq, scale);
        simd::scalarKernels().attnSoftmaxFwd(sc.data(), seq, scale);
        ASSERT_EQ(0, std::memcmp(ref.data(), sc.data(),
                                 ref.size() * sizeof(float)))
            << "scalar vs reference, seq=" << seq;
        if (simd::cpuSupportsAvx2()) {
            std::vector<float> av = scores;
            simd::avx2Kernels().attnSoftmaxFwd(av.data(), seq, scale);
            ASSERT_EQ(0, std::memcmp(ref.data(), av.data(),
                                     ref.size() * sizeof(float)))
                << "avx2 vs reference, seq=" << seq;
        }
    }
}

TEST(SimdAttnSoftmax, BwdBitExactAcrossBackendsAndVsReference)
{
    Rng rng(52);
    for (int64_t seq : {1, 2, 7, 8, 9, 16, 33, 64}) {
        const float scale = 0.25f;
        std::vector<float> prob(static_cast<size_t>(seq * seq));
        refAttnSoftmaxFwd(prob.data(), seq, 1.0f); // valid row dists
        std::vector<float> dp(static_cast<size_t>(seq * seq));
        for (auto &x : dp)
            x = static_cast<float>(rng.nextGaussian());
        std::vector<float> ref(dp.size()), sc(dp.size());
        refAttnSoftmaxBwd(prob.data(), dp.data(), ref.data(), seq,
                          scale);
        simd::scalarKernels().attnSoftmaxBwd(prob.data(), dp.data(),
                                             sc.data(), seq, scale);
        ASSERT_EQ(0, std::memcmp(ref.data(), sc.data(),
                                 ref.size() * sizeof(float)))
            << "scalar vs reference, seq=" << seq;
        // In-place (ds aliasing dp) — the batched attention runtime
        // overwrites dP with dS through this contract.
        std::vector<float> sc_inplace = dp;
        simd::scalarKernels().attnSoftmaxBwd(prob.data(),
                                             sc_inplace.data(),
                                             sc_inplace.data(), seq,
                                             scale);
        ASSERT_EQ(0, std::memcmp(ref.data(), sc_inplace.data(),
                                 ref.size() * sizeof(float)))
            << "scalar in-place, seq=" << seq;
        if (simd::cpuSupportsAvx2()) {
            std::vector<float> av(dp.size());
            simd::avx2Kernels().attnSoftmaxBwd(prob.data(), dp.data(),
                                               av.data(), seq, scale);
            ASSERT_EQ(0, std::memcmp(ref.data(), av.data(),
                                     ref.size() * sizeof(float)))
                << "avx2 vs reference, seq=" << seq;
            // In-place (ds aliasing dp) must match the out-of-place
            // result — the attention runtime relies on row locality.
            std::vector<float> inplace = dp;
            simd::avx2Kernels().attnSoftmaxBwd(prob.data(),
                                               inplace.data(),
                                               inplace.data(), seq,
                                               scale);
            ASSERT_EQ(0, std::memcmp(ref.data(), inplace.data(),
                                     ref.size() * sizeof(float)))
                << "avx2 in-place, seq=" << seq;
        }
    }
}

TEST(SimdErrorStats, BackendsAgree)
{
    SKIP_WITHOUT_AVX2();
    Rng rng(31);
    for (int64_t n : {0, 1, 5, 8, 13, 4096}) {
        std::vector<float> ref(static_cast<size_t>(n)),
            q(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
            ref[static_cast<size_t>(i)] =
                static_cast<float>(rng.nextGaussian());
            q[static_cast<size_t>(i)] =
                ref[static_cast<size_t>(i)] +
                static_cast<float>(rng.nextGaussian() * 1e-3);
        }
        double ss = 0, sm = 0, as = 0, am = 0;
        simd::scalarKernels().errorStats(ref.data(), q.data(), n, &ss,
                                         &sm);
        simd::avx2Kernels().errorStats(ref.data(), q.data(), n, &as,
                                       &am);
        EXPECT_EQ(sm, am) << "max must be exact, n=" << n;
        EXPECT_NEAR(ss, as, 1e-12 * (1.0 + ss)) << "n=" << n;
    }
}

TEST(SimdReductions, SumSquaresBackendsAgree)
{
    SKIP_WITHOUT_AVX2();
    Rng rng(41);
    for (int64_t n : {0, 1, 5, 8, 13, 4096}) {
        std::vector<float> v(static_cast<size_t>(n));
        for (auto &x : v)
            x = static_cast<float>(rng.nextGaussian() * 10.0);
        const double s =
            simd::scalarKernels().sumSquares(v.data(), n);
        const double a = simd::avx2Kernels().sumSquares(v.data(), n);
        EXPECT_NEAR(s, a, 1e-12 * (1.0 + s)) << "n=" << n;
    }
}

TEST(SimdReductions, TensorOpsFollowTheActiveBackend)
{
    // The stats-collector/eval reductions (tensor/ops.cpp) dispatch
    // through the KernelTable: maxAbs must agree bit for bit across
    // backends, the sum-of-squares norms within low-order bits.
    SKIP_WITHOUT_AVX2();
    BackendGuard guard;
    Rng rng(43);
    Tensor t = Tensor::randn({130, 257}, rng, 5.0f);
    Tensor u = Tensor::randn({130, 257}, rng, 5.0f);

    setenv("SNIP_SIMD", "scalar", 1);
    simd::reinitFromEnv();
    const double norm_s = frobeniusNorm(t);
    const double sumsq_s = sumSquares(t);
    const double diff_s = diffNorm(t, u);
    const float max_s = maxAbs(t);

    setenv("SNIP_SIMD", "avx2", 1);
    simd::reinitFromEnv();
    EXPECT_EQ(maxAbs(t), max_s);
    EXPECT_NEAR(frobeniusNorm(t), norm_s, 1e-9 * (1.0 + norm_s));
    EXPECT_NEAR(sumSquares(t), sumsq_s, 1e-9 * (1.0 + sumsq_s));
    EXPECT_NEAR(diffNorm(t, u), diff_s, 1e-9 * (1.0 + diff_s));
}

TEST(SimdErrorStats, MeasureQuantErrorStableAcrossBackends)
{
    SKIP_WITHOUT_AVX2();
    BackendGuard guard;
    Rng rng(37);
    Tensor t = Tensor::randn({64, 96}, rng);
    FakeQuantizer quant(1);
    const QuantConfig cfg{fp8E4m3(),
                          {Granularity::Blockwise, 128},
                          Rounding::Nearest};

    setenv("SNIP_SIMD", "scalar", 1);
    simd::reinitFromEnv();
    QuantError es = measureQuantError(t, cfg, quant);

    setenv("SNIP_SIMD", "avx2", 1);
    simd::reinitFromEnv();
    QuantError ea = measureQuantError(t, cfg, quant);

    EXPECT_EQ(es.max_error, ea.max_error);
    EXPECT_NEAR(es.abs_error, ea.abs_error, 1e-9 * (1.0 + es.abs_error));
    EXPECT_NEAR(es.rel_error, ea.rel_error, 1e-9);
}

} // namespace
} // namespace snip
