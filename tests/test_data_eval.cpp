/**
 * @file
 * Synthetic corpus, batch iterator, eval-task generators and the
 * lm-eval-style scoring harness.
 */
#include <gtest/gtest.h>

#include <set>

#include "data/batch.h"
#include "data/tasks.h"
#include "eval/harness.h"
#include "testing_util.h"
#include "train/presets.h"

namespace snip {
namespace {

CorpusConfig
smallCorpus()
{
    CorpusConfig c;
    c.vocab_size = 64;
    c.seq_len = 24;
    c.seed = 5;
    return c;
}

TEST(Corpus, SequencesHaveRequestedLengthAndRange)
{
    SyntheticCorpus corpus(smallCorpus());
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        auto seq = corpus.sampleSequence(rng);
        ASSERT_EQ(seq.size(), 25u); // seq_len + 1
        for (int32_t t : seq) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, 64);
        }
    }
}

TEST(Corpus, MarkovSuccessorsAreAProbabilityDistribution)
{
    SyntheticCorpus corpus(smallCorpus());
    for (int32_t t = corpus.textLo(); t < corpus.textHi(); ++t) {
        const auto &succ = corpus.successors(t);
        EXPECT_EQ(static_cast<int>(succ.size()),
                  corpus.config().branching);
        double sum = 0;
        for (const auto &[next, p] : succ) {
            EXPECT_GE(next, corpus.textLo());
            EXPECT_LT(next, corpus.textHi());
            EXPECT_GT(p, 0.0f);
            sum += p;
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Corpus, StructureFixedBySeed)
{
    SyntheticCorpus a(smallCorpus()), b(smallCorpus());
    Rng r1(9), r2(9);
    EXPECT_EQ(a.sampleSequence(r1), b.sampleSequence(r2));
    CorpusConfig other = smallCorpus();
    other.seed = 6;
    SyntheticCorpus c(other);
    Rng r3(9);
    EXPECT_NE(a.successors(20), c.successors(20));
    (void)r3;
}

TEST(Corpus, SegmentsAreWellFormed)
{
    SyntheticCorpus corpus(smallCorpus());
    Rng rng(2);
    // Copy: BOS pat SEP pat.
    auto seg = corpus.sampleSegment(SegmentKind::Copy, rng);
    ASSERT_GE(seg.size(), 7u);
    EXPECT_EQ(seg[0], tokens::kBos);
    size_t sep = 0;
    for (size_t i = 1; i < seg.size(); ++i)
        if (seg[i] == tokens::kSep)
            sep = i;
    ASSERT_GT(sep, 0u);
    EXPECT_EQ(seg.size(), 2 * sep);
    for (size_t i = 1; i < sep; ++i)
        EXPECT_EQ(seg[i], seg[sep + i]);

    // Parity: answer token matches the bit count.
    auto par = corpus.sampleSegment(SegmentKind::Parity, rng);
    int ones = 0;
    for (size_t i = 1; i + 2 < par.size(); ++i)
        ones += (par[i] == tokens::kDigit0 + 1);
    EXPECT_EQ(par.back(),
              ones % 2 ? tokens::kTrue : tokens::kFalse);

    // Modular addition: a + b mod 10.
    auto mod = corpus.sampleSegment(SegmentKind::ModularAdd, rng);
    ASSERT_EQ(mod.size(), 5u);
    int a = mod[1] - tokens::kDigit0;
    int b = mod[2] - tokens::kDigit0;
    EXPECT_EQ(mod[4] - tokens::kDigit0, (a + b) % 10);
}

TEST(Batches, ShiftedTargets)
{
    SyntheticCorpus corpus(smallCorpus());
    BatchIterator it(corpus, 3, 7);
    Batch b = it.next();
    EXPECT_EQ(b.batch, 3);
    EXPECT_EQ(b.seq, 24);
    EXPECT_EQ(b.tokens.size(), 72u);
    EXPECT_EQ(b.targets.size(), 72u);
    // Within each row, targets are tokens shifted by one.
    for (int64_t r = 0; r < 3; ++r)
        for (int64_t s = 0; s + 1 < 24; ++s)
            EXPECT_EQ(b.targets[static_cast<size_t>(r * 24 + s)],
                      b.tokens[static_cast<size_t>(r * 24 + s + 1)]);
}

TEST(Batches, ResetReplaysIdenticalStream)
{
    SyntheticCorpus corpus(smallCorpus());
    BatchIterator it(corpus, 2, 11);
    Batch b1 = it.next();
    Batch b2 = it.next();
    it.reset();
    EXPECT_EQ(it.next().tokens, b1.tokens);
    EXPECT_EQ(it.next().tokens, b2.tokens);
}

TEST(Tasks, SuiteHasEightFamiliesWithValidItems)
{
    SyntheticCorpus corpus(smallCorpus());
    auto suite = makeEvalSuite(corpus, 20, 3);
    ASSERT_EQ(suite.size(), 8u);
    std::set<std::string> names;
    for (const auto &task : suite) {
        names.insert(task.name);
        EXPECT_FALSE(task.analog_of.empty());
        ASSERT_EQ(task.items.size(), 20u);
        for (const auto &item : task.items) {
            EXPECT_GE(item.options.size(), 2u);
            ASSERT_GE(item.correct, 0);
            ASSERT_LT(item.correct,
                      static_cast<int>(item.options.size()));
            EXPECT_FALSE(item.context.empty());
            for (const auto &opt : item.options)
                EXPECT_FALSE(opt.empty());
            // All tokens in range.
            for (int32_t t : item.context) {
                EXPECT_GE(t, 0);
                EXPECT_LT(t, 64);
            }
        }
    }
    EXPECT_EQ(names.size(), 8u);
}

TEST(Tasks, CorrectIndexIsUniformish)
{
    // The shuffle in finalizeItem must not bias the answer position.
    SyntheticCorpus corpus(smallCorpus());
    auto task = makeTask(TaskFamily::CopySeq, corpus, 400, 17);
    int counts[4] = {};
    for (const auto &item : task.items)
        counts[item.correct]++;
    for (int c : counts)
        EXPECT_NEAR(c, 100, 45);
}

TEST(Tasks, CopyItemsContainTheContextPattern)
{
    SyntheticCorpus corpus(smallCorpus());
    auto task = makeTask(TaskFamily::CopySeq, corpus, 30, 19);
    for (const auto &item : task.items) {
        const auto &correct =
            item.options[static_cast<size_t>(item.correct)];
        // context = BOS pattern SEP; correct option = pattern.
        ASSERT_EQ(item.context.size(), correct.size() + 2);
        for (size_t i = 0; i < correct.size(); ++i)
            EXPECT_EQ(item.context[i + 1], correct[i]);
    }
}

TEST(Harness, OracleModelScoresHundredOnMarkovCont)
{
    // After real training MarkovCont saturates; here we check the
    // harness mechanics instead: a deterministic model that always
    // assigns probability ~1 to a fixed token ranks options purely by
    // token identity, so accuracy is exactly computable... use a tiny
    // trained model and verify scores are within [0, 100].
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(5);
    auto suite = makeEvalSuite(trainer.corpus(), 6, 3);
    EvalResult res = evaluate(trainer.model(), suite);
    ASSERT_EQ(res.tasks.size(), 8u);
    for (const auto &t : res.tasks) {
        EXPECT_GE(t.accuracy, 0.0);
        EXPECT_LE(t.accuracy, 100.0);
        EXPECT_EQ(t.n_items, 6);
    }
    EXPECT_NEAR(res.average,
                (res.tasks[0].accuracy + res.tasks[1].accuracy +
                 res.tasks[2].accuracy + res.tasks[3].accuracy +
                 res.tasks[4].accuracy + res.tasks[5].accuracy +
                 res.tasks[6].accuracy + res.tasks[7].accuracy) /
                    8.0,
                1e-9);
}

TEST(Harness, EvaluationRestoresActiveScheme)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(2);
    const size_t n = static_cast<size_t>(
        trainer.model().registry().numLinear());
    PrecisionScheme fp4 = PrecisionScheme::uniform(n, Precision::FP4);
    trainer.applyScheme(fp4);
    auto suite = makeEvalSuite(trainer.corpus(), 3, 3);
    evaluate(trainer.model(), suite);
    EXPECT_TRUE(trainer.model().currentScheme() == fp4);
}

TEST(Harness, TaskAccuracyLookupByNameAndAnalog)
{
    EvalResult res;
    res.tasks = {{"CopySeq", "ARC_e", 50.0, 10},
                 {"ModAdd", "MMLU", 25.0, 10}};
    EXPECT_EQ(res.taskAccuracy("CopySeq"), 50.0);
    EXPECT_EQ(res.taskAccuracy("ARC_e"), 50.0);
    EXPECT_EQ(res.taskAccuracy("MMLU"), 25.0);
}

TEST(Harness, DeterministicScores)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(3);
    auto suite = makeEvalSuite(trainer.corpus(), 5, 3);
    EvalResult a = evaluate(trainer.model(), suite);
    EvalResult b = evaluate(trainer.model(), suite);
    EXPECT_EQ(a.average, b.average);
}

TEST(Harness, AccuraciesIdenticalAcrossThreadCounts)
{
    // Parallel eval shards items across weight replicas; every item's
    // verdict must be independent of the shard layout, so scores can
    // never move with the pool width.
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(3);
    auto suite = makeEvalSuite(trainer.corpus(), 5, 3);

    GlobalPoolGuard guard;
    runtime::setGlobalThreadCount(1);
    EvalResult serial = evaluate(trainer.model(), suite);
    for (int threads : {2, 8}) {
        runtime::setGlobalThreadCount(threads);
        EvalResult par = evaluate(trainer.model(), suite);
        ASSERT_EQ(par.tasks.size(), serial.tasks.size());
        for (size_t t = 0; t < par.tasks.size(); ++t)
            EXPECT_EQ(par.tasks[t].accuracy, serial.tasks[t].accuracy)
                << serial.tasks[t].name << " at " << threads
                << " threads";
        EXPECT_EQ(par.average, serial.average);
    }
}

} // namespace
} // namespace snip
